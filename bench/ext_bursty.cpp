// Extension (paper §VI: "dynamically changing send and receive message
// sizes and burstiness during a connection"): how the dynamic protocol
// adapts when the workload is not a continuous blast.
//
// Part 1 — bursty traffic: between bursts the receiver drains its buffer
// and resynchronises, so each burst can begin with direct transfers; as
// the idle gap shrinks the connection behaves like a continuous blast and
// settles into whichever mode the outstanding-operation balance dictates.
// Mode switches therefore *increase* with burstiness: that is adaptation,
// not instability.
//
// Part 2 — mid-run message-size shift: the connection starts with small
// messages (where equal outstanding counts favour indirect service) and
// shifts to large ones (whose transmission delay exceeds the ADVERT round
// trip); the dynamic protocol follows the workload across the boundary.
#include <iostream>

#include "support.hpp"

namespace exs::bench {
namespace {

void RunBursts(const Args& args) {
  PrintBanner(std::cout, "Ext: bursty traffic",
              "dynamic protocol under on/off bursts (recvs=8, sends=8)",
              args);
  Table table({"burst size", "idle gap (us)", "throughput Mb/s",
               "direct:total ratio", "mode switches"});
  struct Case {
    std::uint64_t burst;
    double idle_us;
  };
  for (const Case& cs : {Case{0, 0.0}, Case{64, 100.0}, Case{64, 500.0},
                         Case{16, 500.0}, Case{16, 2000.0}, Case{4, 2000.0}}) {
    blast::BlastConfig c = FdrBaseConfig(args);
    // Equal windows: a continuous blast locks into indirect service, so
    // any direct transfers seen here come from per-burst resynchronisation.
    c.outstanding_recvs = 8;
    c.outstanding_sends = 8;
    c.burst_messages = cs.burst;
    c.burst_idle = Microseconds(cs.idle_us);
    blast::BlastSummary s = blast::RunRepeated(c, args.runs);
    table.AddRow({cs.burst == 0 ? "continuous" : std::to_string(cs.burst),
                  FormatDouble(cs.idle_us, 0),
                  FormatMetric(s.throughput_mbps, 0),
                  FormatMetric(s.direct_ratio, 2),
                  FormatMetric(s.mode_switches, 1)});
  }
  table.Print(std::cout, args.csv);
  std::cout << "\n";
}

void RunSizeShift(const Args& args) {
  PrintBanner(std::cout, "Ext: mid-run size shift",
              "small -> large messages at the half-way point (recvs=4, "
              "sends=2)",
              args);
  Table table({"workload", "throughput Mb/s", "direct:total ratio",
               "mode switches"});
  struct Case {
    const char* name;
    double mean1;
    double mean2;
  };
  for (const Case& cs :
       {Case{"small only (16 KiB mean)", 16.0 * kKiB, 0.0},
        Case{"large only (1 MiB mean)", 1.0 * kMiB, 0.0},
        Case{"small -> large shift", 16.0 * kKiB, 1.0 * kMiB},
        Case{"large -> small shift", 1.0 * kMiB, 16.0 * kKiB}}) {
    blast::BlastConfig c = FdrBaseConfig(args);
    c.outstanding_recvs = 4;
    c.outstanding_sends = 2;
    c.exponential_mean_bytes = cs.mean1;
    c.shifted_mean_bytes = cs.mean2;
    c.shift_at_message = c.message_count / 2;
    blast::BlastSummary s = blast::RunRepeated(c, args.runs);
    table.AddRow({cs.name, FormatMetric(s.throughput_mbps, 0),
                  FormatMetric(s.direct_ratio, 2),
                  FormatMetric(s.mode_switches, 1)});
  }
  table.Print(std::cout, args.csv);
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  RunBursts(args);
  RunSizeShift(args);
  return 0;
}
