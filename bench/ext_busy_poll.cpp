// Ablation: event notification vs. busy polling for completions.
//
// The paper ran everything with event notification, noting that "most
// messages in this study are large enough that there is little advantage
// to busy polling" (§IV-B, citing the authors' programming-decisions
// study).  This ablation quantifies the claim: polling removes the
// wake-up latency (and its jitter) from every completion, which matters
// enormously for small-message latency and for the ADVERT replenishment
// race — and not at all for large-message throughput.  The price, a core
// pinned at 100% per polling thread, is not captured in the CPU% column
// (the spin itself is not modelled as work).
#include <iostream>
#include <vector>

#include "support.hpp"

namespace exs::bench {
namespace {

double PingPongRttUs(const simnet::HardwareProfile& profile,
                     std::uint64_t size, int iterations,
                     std::uint64_t seed) {
  Simulation sim(profile, seed, /*carry_payload=*/false);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
  std::vector<std::uint8_t> buf(size);
  client->RegisterMemory(buf.data(), size);
  server->RegisterMemory(buf.data(), size);

  int remaining = iterations;
  SimTime done = 0;
  server->events().SetHandler([&, server = server](const Event& ev) {
    if (ev.type != EventType::kRecvComplete) return;
    server->Send(buf.data(), size);
    server->Recv(buf.data(), size, RecvFlags{.waitall = true});
  });
  client->events().SetHandler([&, client = client](const Event& ev) {
    if (ev.type != EventType::kRecvComplete) return;
    if (--remaining <= 0) {
      done = sim.Now();
      return;
    }
    client->Recv(buf.data(), size, RecvFlags{.waitall = true});
    client->Send(buf.data(), size);
  });
  server->Recv(buf.data(), size, RecvFlags{.waitall = true});
  client->Recv(buf.data(), size, RecvFlags{.waitall = true});
  sim.RunFor(Microseconds(50));
  SimTime start = sim.Now();
  client->Send(buf.data(), size);
  sim.Run();
  return ToMicroseconds(done - start) / iterations;
}

void Run(const Args& args) {
  PrintBanner(std::cout, "Ablation: busy polling",
              "event notification vs busy-polled completions, FDR IB",
              args);
  const auto notified = simnet::HardwareProfile::FdrInfiniBand();
  const auto polled = notified.WithBusyPolling();
  const int iterations = args.quick ? 50 : 200;

  Table table({"message size", "notify RTT us", "poll RTT us",
               "notify blast Mb/s", "poll blast Mb/s",
               "poll direct ratio"});
  for (std::uint64_t size :
       {512ull, 8ull * kKiB, 128ull * kKiB, 1ull * kMiB}) {
    std::string name = size >= kMiB ? std::to_string(size / kMiB) + " MiB"
                       : size >= kKiB ? std::to_string(size / kKiB) + " KiB"
                                      : std::to_string(size) + " B";
    RunningStats nrtt, prtt;
    for (int r = 0; r < args.runs; ++r) {
      nrtt.Add(PingPongRttUs(notified, size, iterations, 300 + r));
      prtt.Add(PingPongRttUs(polled, size, iterations, 300 + r));
    }
    std::vector<std::string> row = {name, FormatDouble(nrtt.Mean(), 1),
                                    FormatDouble(prtt.Mean(), 1)};
    double poll_ratio = 0;
    for (const auto& profile : {notified, polled}) {
      blast::BlastConfig c = FdrBaseConfig(args);
      c.profile = profile;
      c.outstanding_recvs = 8;
      c.outstanding_sends = 8;  // the equal-window race of Fig. 9a
      c.fixed_message_bytes = size;
      c.recv_buffer_bytes = size;
      blast::BlastSummary s = blast::RunRepeated(c, args.runs);
      row.push_back(FormatDouble(s.throughput_mbps.mean, 0));
      poll_ratio = s.direct_ratio.mean;
    }
    row.push_back(FormatDouble(poll_ratio, 2));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout, args.csv);
  std::cout << "\n(note: the spin loop's own 100% core burn is the price "
               "and is not shown)\n";
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  Run(args);
  return 0;
}
