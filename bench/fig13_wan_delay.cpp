// Reproduces Fig. 13 of the paper: throughput over distance — 10 GbE RoCE
// through a delay emulator set to a 48 ms round trip, equal outstanding
// sends and receives.
//
// Paper shape: over distance all three protocols perform similarly and far
// below the link rate (the round trip dominates); with 4-32 outstanding
// operations the indirect protocol is slightly *faster* than direct-only,
// because buffered transfers avoid waiting a full round trip for each
// ADVERT, and the dynamic protocol adapts to match the better mode.
#include <iostream>

#include "support.hpp"

namespace exs::bench {
namespace {

void Run(const Args& args) {
  PrintBanner(
      std::cout, "Fig 13",
      "throughput vs outstanding ops, 10GbE RoCE + 48 ms RTT (sends==recvs)",
      args);
  Table table({"outstanding ops", "indirect-only Mb/s", "dynamic Mb/s",
               "direct-only Mb/s"});
  // --quick keeps the sweep's endpoints and midpoint.
  const std::vector<std::uint32_t> sweep =
      args.quick ? std::vector<std::uint32_t>{1, 4, 16} : kOutstandingSweep;
  for (std::uint32_t k : sweep) {
    std::vector<std::string> row = {std::to_string(k)};
    for (ProtocolMode mode :
         {ProtocolMode::kIndirectOnly, ProtocolMode::kDynamic,
          ProtocolMode::kDirectOnly}) {
      blast::BlastConfig c = WanBaseConfig(args);
      c.outstanding_recvs = k;
      c.outstanding_sends = k;
      c.stream.mode = mode;
      // Runs over distance are long in simulated time; keep them bounded.
      c.message_count = std::min<std::uint64_t>(args.messages, 200);
      blast::BlastSummary s = blast::RunRepeated(c, args.runs);
      row.push_back(FormatMetric(s.throughput_mbps, 0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout, args.csv);
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  Run(args);
  return 0;
}
