// Reproduces Fig. 9 of the paper: throughput vs. number of simultaneous
// outstanding operations on FDR InfiniBand, for the direct-only, dynamic,
// and indirect-only protocols.  Message sizes are random from a truncated
// exponential distribution (max 4 MiB).
//
//   Fig. 9a — outstanding sends == outstanding receives
//   Fig. 9b — outstanding sends == outstanding receives / 2
//
// Paper shape: direct-only 35-44 Gb/s rising with outstanding ops;
// indirect-only 20-27 Gb/s (memcpy-bound); dynamic tracks indirect-only
// when the counts are equal and direct-only when receives are doubled,
// with one anomalous point at (receives=4, sends=2).
#include <iostream>

#include "support.hpp"

namespace exs::bench {
namespace {

void RunPart(const Args& args, const std::string& id,
             const std::string& description, bool halve_sends) {
  PrintBanner(std::cout, id, description, args);
  Table table({"outstanding recvs", "outstanding sends",
               "direct-only Mb/s", "dynamic Mb/s", "indirect-only Mb/s"});
  for (std::uint32_t k : kOutstandingSweep) {
    std::uint32_t sends = halve_sends ? k / 2 : k;
    if (sends == 0) continue;
    std::vector<std::string> row = {std::to_string(k), std::to_string(sends)};
    for (ProtocolMode mode :
         {ProtocolMode::kDirectOnly, ProtocolMode::kDynamic,
          ProtocolMode::kIndirectOnly}) {
      blast::BlastConfig c = FdrBaseConfig(args);
      c.outstanding_recvs = k;
      c.outstanding_sends = sends;
      c.stream.mode = mode;
      blast::BlastSummary s = blast::RunRepeated(c, args.runs);
      row.push_back(FormatMetric(s.throughput_mbps, 0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout, args.csv);
  std::cout << "\n";
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  RunPart(args, "Fig 9a",
          "throughput vs outstanding ops (sends == recvs), FDR InfiniBand",
          /*halve_sends=*/false);
  RunPart(args, "Fig 9b",
          "throughput vs outstanding ops (sends == recvs/2), FDR InfiniBand",
          /*halve_sends=*/true);
  return 0;
}
