// Reproduces Fig. 9 of the paper: throughput vs. number of simultaneous
// outstanding operations on FDR InfiniBand, for the direct-only, dynamic,
// and indirect-only protocols.  Message sizes are random from a truncated
// exponential distribution (max 4 MiB).
//
//   Fig. 9a — outstanding sends == outstanding receives
//   Fig. 9b — outstanding sends == outstanding receives / 2
//
// Paper shape: direct-only 35-44 Gb/s rising with outstanding ops;
// indirect-only 20-27 Gb/s (memcpy-bound); dynamic tracks indirect-only
// when the counts are equal and direct-only when receives are doubled,
// with one anomalous point at (receives=4, sends=2).
#include <fstream>
#include <iostream>
#include <sstream>

#include "support.hpp"

namespace exs::bench {
namespace {

struct Point {
  std::uint32_t recvs = 0;
  std::uint32_t sends = 0;
  double direct_mbps = 0.0;
  double dynamic_mbps = 0.0;
  double indirect_mbps = 0.0;
};

std::vector<Point> RunPart(const Args& args, const std::string& id,
                           const std::string& description, bool halve_sends) {
  PrintBanner(std::cout, id, description, args);
  Table table({"outstanding recvs", "outstanding sends",
               "direct-only Mb/s", "dynamic Mb/s", "indirect-only Mb/s"});
  std::vector<Point> points;
  // --quick keeps the sweep's endpoints and midpoint; the full run covers
  // every doubling.
  const std::vector<std::uint32_t> sweep =
      args.quick ? std::vector<std::uint32_t>{1, 4, 16} : kOutstandingSweep;
  for (std::uint32_t k : sweep) {
    std::uint32_t sends = halve_sends ? k / 2 : k;
    if (sends == 0) continue;
    std::vector<std::string> row = {std::to_string(k), std::to_string(sends)};
    Point p;
    p.recvs = k;
    p.sends = sends;
    double* slots[] = {&p.direct_mbps, &p.dynamic_mbps, &p.indirect_mbps};
    std::size_t slot = 0;
    for (ProtocolMode mode :
         {ProtocolMode::kDirectOnly, ProtocolMode::kDynamic,
          ProtocolMode::kIndirectOnly}) {
      blast::BlastConfig c = FdrBaseConfig(args);
      c.outstanding_recvs = k;
      c.outstanding_sends = sends;
      c.stream.mode = mode;
      blast::BlastSummary s = blast::RunRepeated(c, args.runs);
      *slots[slot++] = s.throughput_mbps.mean;
      row.push_back(FormatMetric(s.throughput_mbps, 0));
    }
    table.AddRow(std::move(row));
    points.push_back(p);
  }
  table.Print(std::cout, args.csv);
  std::cout << "\n";
  return points;
}

void WriteJson(const Args& args,
               const std::vector<std::pair<std::string, std::vector<Point>>>&
                   parts) {
  if (args.results_json_path.empty()) return;
  std::ostringstream json;
  json << "{\"bench\":\"fig09\",\"schema_version\":"
       << kBenchJsonSchemaVersion << ",\"runs\":" << args.runs
       << ",\"messages\":" << args.messages << ",\"parts\":[";
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) json << ",";
    json << "{\"part\":\"" << parts[i].first << "\",\"points\":[";
    const auto& points = parts[i].second;
    for (std::size_t j = 0; j < points.size(); ++j) {
      const Point& p = points[j];
      if (j) json << ",";
      json << "{\"recvs\":" << p.recvs << ",\"sends\":" << p.sends
           << ",\"direct_mbps\":" << p.direct_mbps
           << ",\"dynamic_mbps\":" << p.dynamic_mbps
           << ",\"indirect_mbps\":" << p.indirect_mbps << "}";
    }
    json << "]}";
  }
  json << "]}";
  if (args.results_json_path == "-") {
    std::cout << json.str() << "\n";
    return;
  }
  std::ofstream file(args.results_json_path, std::ios::trunc);
  if (!file.good()) {
    std::cerr << "cannot write " << args.results_json_path << "\n";
    std::exit(2);
  }
  file << json.str() << "\n";
  std::cout << "results written to " << args.results_json_path << "\n";
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  std::vector<std::pair<std::string, std::vector<Point>>> parts;
  parts.emplace_back(
      "9a", RunPart(args, "Fig 9a",
                    "throughput vs outstanding ops (sends == recvs), "
                    "FDR InfiniBand",
                    /*halve_sends=*/false));
  parts.emplace_back(
      "9b", RunPart(args, "Fig 9b",
                    "throughput vs outstanding ops (sends == recvs/2), "
                    "FDR InfiniBand",
                    /*halve_sends=*/true));
  WriteJson(args, parts);
  return 0;
}
