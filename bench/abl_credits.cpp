// Ablation: the size of the pre-posted receive pool (§II-B).  Every
// control message and every data chunk consumes one credit, so a small
// pool serialises the pipeline — the prior study the paper builds on
// ("using many simultaneous outstanding operations is essential") shows up
// here directly.  The chunk cap multiplies the pressure: smaller chunks
// mean more credits per message.
#include <iostream>

#include "support.hpp"

namespace exs::bench {
namespace {

void Run(const Args& args) {
  PrintBanner(std::cout, "Ablation: credit pool size",
              "dynamic-protocol throughput vs pre-posted receive pool",
              args);
  Table table({"credits", "unbounded chunks Mb/s", "64 KiB chunks Mb/s"});
  for (std::uint32_t credits : {4u, 8u, 16u, 32u, 64u, 128u}) {
    std::vector<std::string> row = {std::to_string(credits)};
    for (std::uint64_t chunk : {std::uint64_t{0}, 64 * kKiB}) {
      blast::BlastConfig c = FdrBaseConfig(args);
      c.outstanding_recvs = 16;
      c.outstanding_sends = 16;
      c.stream.credits = credits;
      c.stream.max_wwi_chunk = chunk;
      blast::BlastSummary s = blast::RunRepeated(c, args.runs);
      row.push_back(FormatMetric(s.throughput_mbps, 0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout, args.csv);
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  Run(args);
  return 0;
}
