// Extension: hot-path doorbell/WR batching (StreamOptions::batching).
//
// In the WR-bound regime — messages small enough that posting cost, not
// wire serialisation, bounds throughput — every WWI pays the full
// doorbell: an MMIO write plus driver entry (~140 ns on the FDR testbed)
// on top of the per-WR descriptor work (~60 ns).  Batched posting
// (QueuePair::PostSendBatch behind StreamOptions::Batching::doorbell)
// rings one doorbell for up to max_wrs chunks, so the amortised posting
// cost per WR falls from doorbell+per_wr toward per_wr alone.
//
// The regime needs two things the stock profile buries.  First, a fast
// event path: the paper's interrupt-driven software charges ~1.5 us of
// host CPU per completion, which dwarfs the ~200 ns posting cost — so
// this sweep runs a polling-grade variant of FDR (60 ns inlined handlers,
// 1 us wake-up, no jitter) where the HCA posting path is the genuine
// bottleneck at small sizes.  Second, clumped submission: doorbell
// batches only form when several chunks are posted at one simulated
// instant, which is what batched CQ dispatch (Batching::cq_drain, the
// ibv_poll_cq drain-loop idiom) provides — each wake-up hands the socket
// a clump of send completions, the window refills in one pass, and the
// whole clump rides one doorbell.
//
// This bench sweeps batch depth {1 (batching off), 2, 4, 8, 16} against
// message size 256 B – 4 KiB with a deep send window, and reports
// per-depth throughput, the gain over the unbatched baseline, and the
// achieved batch depth (batched WRs per doorbell).  Past the WR-bound
// regime (large messages) the columns converge: serialisation dominates
// and the doorbell is noise.  CI gates on the 512 B depth-8 point (see
// .github/workflows/ci.yml, job `batching`).
#include <fstream>
#include <iostream>
#include <sstream>

#include "support.hpp"

namespace exs::bench {
namespace {

constexpr std::uint64_t kSizes[] = {256, 512, 1024, 2048, 4096};
constexpr std::uint32_t kDepths[] = {1, 2, 4, 8, 16};

struct Point {
  std::uint64_t size = 0;
  std::uint32_t depth = 0;
  double mbps = 0.0;
  double gain = 0.0;           ///< vs depth-1 (batching off) at this size
  double achieved_depth = 0.0; ///< batched WRs per doorbell ring
};

// FDR with a polling-grade event path: inlined handlers on a pinned core
// (60 ns per completion instead of 1.5 us of interrupt-driven software)
// and a short wake-up.  Jitter off — the sweep isolates the posting-cost
// effect.  The wire, HCA and memcpy constants are stock FDR.
simnet::HardwareProfile WrBoundFdr() {
  simnet::HardwareProfile p = simnet::HardwareProfile::FdrInfiniBand();
  p.per_event_cpu = Nanoseconds(60);
  p.completion_notify_delay = Microseconds(1);
  p.notify_jitter = 0.0;
  p.cpu_jitter = 0.0;
  return p;
}

blast::BlastConfig BaseFor(const Args& args, std::uint64_t size,
                           std::uint32_t depth) {
  blast::BlastConfig c = FdrBaseConfig(args);
  c.profile = WrBoundFdr();
  c.fixed_message_bytes = size;
  // The WR-bound regime: a deep send window keeps the posting path the
  // bottleneck; a matching receive window keeps the receiver out of the
  // way.
  c.outstanding_sends = 64;
  c.outstanding_recvs = 8;
  if (depth > 1) {
    c.stream.batching.doorbell = true;
    c.stream.batching.max_wrs = depth;
    // Drain completions in clumps of up to 2x the batch depth so one CPU
    // pass refills enough of the window to fill a doorbell batch.
    c.stream.batching.cq_drain = 2 * depth;
  }
  return c;
}

double MeanAchievedDepth(const blast::BlastSummary& s) {
  if (s.runs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : s.runs) {
    sum += r.client_stats.doorbell_batches == 0
               ? 1.0
               : static_cast<double>(r.client_stats.batched_wrs) /
                     static_cast<double>(r.client_stats.doorbell_batches);
  }
  return sum / static_cast<double>(s.runs.size());
}

std::vector<Point> RunSweep(const Args& args) {
  PrintBanner(std::cout, "Ext: doorbell/WR batching (fdr, polling-grade)",
              "batch depth 1-16 vs message size 256 B - 4 KiB "
              "(sends=64, cq_drain=2x depth; depth 1 = batching off)",
              args);
  Table table({"message size", "depth", "Mb/s", "gain vs depth-1",
               "achieved depth"});
  std::vector<Point> points;
  // --quick keeps the 512 B point CI gates on plus one larger size, with
  // the depth-1 baseline (first, so gains stay well-defined) and depth 8.
  const std::vector<std::uint64_t> sizes =
      args.quick ? std::vector<std::uint64_t>{512, 2048}
                 : std::vector<std::uint64_t>(std::begin(kSizes),
                                              std::end(kSizes));
  const std::vector<std::uint32_t> depths =
      args.quick ? std::vector<std::uint32_t>{1, 8}
                 : std::vector<std::uint32_t>(std::begin(kDepths),
                                              std::end(kDepths));
  for (std::uint64_t size : sizes) {
    double baseline = 0.0;
    for (std::uint32_t depth : depths) {
      blast::BlastSummary s =
          blast::RunRepeated(BaseFor(args, size, depth), args.runs);
      Point p;
      p.size = size;
      p.depth = depth;
      p.mbps = s.throughput_mbps.mean;
      if (depth == 1) baseline = p.mbps;
      p.gain = baseline > 0.0 ? p.mbps / baseline : 0.0;
      p.achieved_depth = MeanAchievedDepth(s);
      points.push_back(p);
      table.AddRow({std::to_string(size) + " B", std::to_string(depth),
                    FormatMetric(s.throughput_mbps, 0),
                    FormatDouble(p.gain, 2) + "x",
                    FormatDouble(p.achieved_depth, 1)});
    }
  }
  table.Print(std::cout, args.csv);
  std::cout << "\n";
  return points;
}

void WriteJson(const Args& args, const std::vector<Point>& points) {
  if (args.results_json_path.empty()) return;
  std::ostringstream json;
  json << "{\"bench\":\"ext_batching\",\"schema_version\":"
       << kBenchJsonSchemaVersion << ",\"runs\":" << args.runs
       << ",\"messages\":" << args.messages
       << ",\"profiles\":[{\"profile\":\"fdr\",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    if (i) json << ",";
    json << "{\"size\":" << p.size << ",\"depth\":" << p.depth
         << ",\"mbps\":" << p.mbps << ",\"gain\":" << p.gain
         << ",\"achieved_depth\":" << p.achieved_depth << "}";
  }
  json << "]}]}";
  if (args.results_json_path == "-") {
    std::cout << json.str() << "\n";
    return;
  }
  std::ofstream file(args.results_json_path, std::ios::trunc);
  if (!file.good()) {
    std::cerr << "cannot write " << args.results_json_path << "\n";
    std::exit(2);
  }
  file << json.str() << "\n";
  std::cout << "results written to " << args.results_json_path << "\n";
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  WriteJson(args, RunSweep(args));
  return 0;
}
