// Shared scaffolding for the figure/table reproduction binaries: CLI
// options, aligned table printing, and CSV output.
//
// Every binary prints the same series the corresponding paper figure
// plots, as mean ± 95% confidence half-width over repeated seeded runs
// (the paper averages 10 runs per point).  Pass --csv for
// machine-readable output, --runs/--messages to trade accuracy for time,
// and --quick for a fast smoke configuration.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "blast/blast.hpp"

namespace exs::bench {

/// Version of the machine-readable results JSON each bench emits (the
/// `schema_version` field).  Bump when a field is added, renamed, or its
/// meaning changes, so CI's regression differ can refuse to compare
/// baselines written under a different schema.
inline constexpr int kBenchJsonSchemaVersion = 2;

struct Args {
  bool csv = false;
  int runs = 10;
  std::uint64_t messages = 500;
  bool quick = false;
  /// Exporter outputs for the first run of each configuration ("-" =
  /// stdout).  With several swept configurations the last one wins — meant
  /// for single-point inspection, see docs/OBSERVABILITY.md.
  std::string metrics_json_path;
  std::string timeline_json_path;
  /// Machine-readable results file for benches that emit one ("-" =
  /// stdout); CI archives it as an artifact.  Ignored by benches that
  /// don't.
  std::string results_json_path;
  /// Per-stage latency provenance (common/spans.hpp) for benches that
  /// support it ("-" = stdout): a LatencyReport::ToJson() document, merged
  /// into BENCH_streams.json by bench/run_all.sh.  Ignored by benches that
  /// don't trace.
  std::string latency_json_path;

  static Args Parse(int argc, char** argv);
};

/// Aligned text table; first column left-aligned, the rest right-aligned.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os, bool csv) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "<mean> ± <ci95>" with sensible precision.
std::string FormatMetric(const blast::Metric& m, int precision = 1);
std::string FormatDouble(double v, int precision = 1);

/// Banner naming the experiment and the paper artefact it regenerates.
void PrintBanner(std::ostream& os, const std::string& experiment_id,
                 const std::string& description, const Args& args);

/// The paper's outstanding-operation sweep.
inline const std::vector<std::uint32_t> kOutstandingSweep = {1, 2, 4, 8, 16,
                                                             32};

/// Baseline configuration shared by the FDR InfiniBand experiments:
/// exponential message sizes (mean 256 KiB, max 4 MiB), 4 MiB receive
/// buffers, timing-only payloads.
blast::BlastConfig FdrBaseConfig(const Args& args);

/// The distance testbed: 10 GbE RoCE through the emulator at 48 ms RTT.
blast::BlastConfig WanBaseConfig(const Args& args);

}  // namespace exs::bench
