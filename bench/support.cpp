#include "support.hpp"

#include <cstring>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace exs::bench {

Args Args::Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both "--flag value" and "--flag=value".
    std::string inline_value;
    bool has_inline_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline_value = true;
    }
    auto next_value = [&](const char* name) -> std::string {
      if (has_inline_value) return inline_value;
      if (i + 1 >= argc) {
        std::cerr << name << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--csv") {
      args.csv = true;
    } else if (arg == "--quick") {
      args.quick = true;
      args.runs = 3;
      args.messages = 150;
    } else if (arg == "--runs") {
      args.runs = std::stoi(next_value("--runs"));
    } else if (arg == "--messages") {
      args.messages = std::stoull(next_value("--messages"));
    } else if (arg == "--metrics-json") {
      args.metrics_json_path = next_value("--metrics-json");
    } else if (arg == "--timeline-json") {
      args.timeline_json_path = next_value("--timeline-json");
    } else if (arg == "--json") {
      args.results_json_path = next_value("--json");
    } else if (arg == "--latency-json") {
      args.latency_json_path = next_value("--latency-json");
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: --csv --quick --runs N --messages N "
                   "--metrics-json FILE --timeline-json FILE --json FILE "
                   "--latency-json FILE\n";
      std::exit(0);
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      std::exit(2);
    }
  }
  return args;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os, bool csv) const {
  if (csv) {
    auto emit = [&os](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) os << ",";
        // CSV cells drop the " ± " decoration into a plain dash-free form.
        std::string c = cells[i];
        auto pos = c.find(" ± ");
        if (pos != std::string::npos) c = c.substr(0, pos);
        os << c;
      }
      os << "\n";
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
    return;
  }
  std::vector<std::size_t> widths(headers_.size(), 0);
  auto measure = [&widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths.size(); ++i) {
      // " ± " is three bytes of UTF-8 punctuation; width accounting uses
      // display length, so count the multibyte character once.
      std::size_t display = cells[i].size();
      std::size_t pos = cells[i].find("±");
      if (pos != std::string::npos) display -= 2;  // UTF-8 extra bytes
      if (display > widths[i]) widths[i] = display;
    }
  };
  measure(headers_);
  for (const auto& row : rows_) measure(row);

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::size_t display = cells[i].size();
      std::size_t pos = cells[i].find("±");
      if (pos != std::string::npos) display -= 2;
      std::size_t pad = widths[i] > display ? widths[i] - display : 0;
      if (i == 0) {
        os << cells[i] << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << cells[i];
      }
      os << (i + 1 == cells.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

std::string FormatDouble(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string FormatMetric(const blast::Metric& m, int precision) {
  return FormatDouble(m.mean, precision) + " ± " +
         FormatDouble(m.ci95, precision);
}

void PrintBanner(std::ostream& os, const std::string& experiment_id,
                 const std::string& description, const Args& args) {
  os << "=== " << experiment_id << ": " << description << " ===\n";
  os << "(" << args.runs << " runs per point, " << args.messages
     << " messages per run; mean ± 95% CI)\n\n";
}

blast::BlastConfig FdrBaseConfig(const Args& args) {
  blast::BlastConfig c;
  c.profile = simnet::HardwareProfile::FdrInfiniBand();
  c.message_count = args.messages;
  c.exponential_mean_bytes = 256.0 * static_cast<double>(kKiB);
  c.max_message_bytes = 4 * kMiB;
  c.recv_buffer_bytes = 4 * kMiB;
  c.carry_payload = false;  // timing model is payload-independent
  c.metrics_json_path = args.metrics_json_path;
  c.timeline_json_path = args.timeline_json_path;
  return c;
}

blast::BlastConfig WanBaseConfig(const Args& args) {
  blast::BlastConfig c = FdrBaseConfig(args);
  c.profile = simnet::HardwareProfile::RoCE10GWithDelay(Milliseconds(24));
  return c;
}

}  // namespace exs::bench
