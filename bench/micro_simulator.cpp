// Google-benchmark microbenchmarks of the substrate itself: these measure
// *wall-clock* cost of the simulator and library plumbing (event
// scheduling, CPU resource, verbs data path, a full blast run), which is
// what bounds how large an experiment the harness can sweep.
#include <benchmark/benchmark.h>

#include <vector>

#include "blast/blast.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "exs/exs.hpp"
#include "verbs/queue_pair.hpp"

namespace {

using namespace exs;  // NOLINT

void BM_SchedulerEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    simnet::EventScheduler sched;
    std::uint64_t count = 0;
    for (int i = 0; i < 1000; ++i) {
      sched.ScheduleAt(i, [&count] { ++count; });
    }
    sched.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerEventThroughput);

void BM_CpuTaskChain(benchmark::State& state) {
  for (auto _ : state) {
    simnet::EventScheduler sched;
    simnet::Cpu cpu(sched);
    for (int i = 0; i < 1000; ++i) cpu.Submit(10, [] {});
    sched.Run();
    benchmark::DoNotOptimize(cpu.BusyTime());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CpuTaskChain);

void BM_RingCursorCycle(benchmark::State& state) {
  RingCursor ring(4096);
  std::uint64_t x = 0;
  for (auto _ : state) {
    std::uint64_t w = ring.ContiguousWritable() & 127;
    ring.CommitWrite(w);
    std::uint64_t r = ring.ContiguousReadable();
    ring.CommitRead(r);
    x += w + r;
  }
  benchmark::DoNotOptimize(x);
}
BENCHMARK(BM_RingCursorCycle);

void BM_RngExponential(benchmark::State& state) {
  Rng rng(1);
  ExponentialSizeDistribution dist(256.0 * 1024, 4 << 20);
  std::uint64_t x = 0;
  for (auto _ : state) x += dist.Sample(rng);
  benchmark::DoNotOptimize(x);
}
BENCHMARK(BM_RngExponential);

void BM_VerbsMessageRate(benchmark::State& state) {
  const auto payload = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    simnet::Fabric fabric(simnet::HardwareProfile::FdrInfiniBand(), 1);
    verbs::Device d0(fabric, 0, /*carry_payload=*/false);
    verbs::Device d1(fabric, 1, /*carry_payload=*/false);
    auto scq0 = d0.CreateCompletionQueue();
    auto rcq0 = d0.CreateCompletionQueue();
    auto scq1 = d1.CreateCompletionQueue();
    auto rcq1 = d1.CreateCompletionQueue();
    verbs::QueuePair q0(d0, *scq0, *rcq0), q1(d1, *scq1, *rcq1);
    verbs::QueuePair::ConnectPair(q0, q1);
    std::vector<std::uint8_t> buf(payload);
    auto mr0 = d0.RegisterMemory(buf.data(), buf.size());
    auto mr1 = d1.RegisterMemory(buf.data(), buf.size());
    constexpr int kMessages = 256;
    for (int i = 0; i < kMessages; ++i) {
      q1.PostRecv({.wr_id = 0,
                   .sge = {reinterpret_cast<std::uint64_t>(buf.data()),
                           payload, mr1->lkey()}});
    }
    for (int i = 0; i < kMessages; ++i) {
      q0.PostSend({.wr_id = 0,
                   .opcode = verbs::Opcode::kSend,
                   .sge = {reinterpret_cast<std::uint64_t>(buf.data()),
                           payload, mr0->lkey()}});
    }
    fabric.scheduler().Run();
    benchmark::DoNotOptimize(q1.stats().messages_delivered);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_VerbsMessageRate)->Arg(64)->Arg(4096);

void BM_FullBlastRun(benchmark::State& state) {
  for (auto _ : state) {
    blast::BlastConfig c;
    c.message_count = 100;
    c.outstanding_sends = 8;
    c.outstanding_recvs = 8;
    c.carry_payload = false;
    blast::BlastResult r = blast::RunBlast(c);
    benchmark::DoNotOptimize(r.throughput_mbps);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FullBlastRun);

}  // namespace

BENCHMARK_MAIN();
