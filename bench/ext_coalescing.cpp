// Extension: small-transfer coalescing (StreamOptions::coalesce).
//
// Small messages are where stream-over-RDMA overheads dominate: every
// send pays a work-request posting, a completion, and an event delivery
// that each dwarf the ~tens of nanoseconds its bytes occupy the wire.
// The coalescing stage merges consecutive small indirect sends into one
// WWI (per-send completions preserved) and the receiver folds pending ACK
// free-counts into outgoing ADVERTs, so the steady-state small-message
// loop pays one posting and one control message where it paid many.
//
// This bench sweeps message size from 64 B to 4 KiB with coalescing off
// and on, on the FDR testbed and over the 48 ms RTT WAN emulation, and
// reports the throughput gain plus how much merging actually happened.
// Past the staging capacity (4 KiB default) the two columns converge by
// construction: sends bigger than the buffer are never staged.
#include <fstream>
#include <iostream>
#include <sstream>

#include "support.hpp"

namespace exs::bench {
namespace {

constexpr std::uint64_t kSizes[] = {64, 128, 256, 512, 1024, 2048, 4096};

struct Point {
  std::uint64_t size = 0;
  double off_mbps = 0.0;
  double on_mbps = 0.0;
  double coalesced_per_flush = 0.0;
  double acks_piggybacked = 0.0;
};

blast::BlastConfig BaseFor(const std::string& profile, const Args& args) {
  blast::BlastConfig c =
      profile == "wan" ? WanBaseConfig(args) : FdrBaseConfig(args);
  // The small-message regime: a deep send window against a shallower
  // receive window keeps the indirect path busy — the workload the
  // staging buffer targets.
  c.outstanding_sends = 16;
  c.outstanding_recvs = 4;
  return c;
}

double MeanOverRuns(const blast::BlastSummary& s,
                    double (*extract)(const blast::BlastResult&)) {
  if (s.runs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : s.runs) sum += extract(r);
  return sum / static_cast<double>(s.runs.size());
}

std::vector<Point> RunProfile(const std::string& profile, const Args& args) {
  PrintBanner(std::cout, "Ext: small-transfer coalescing (" + profile + ")",
              "fixed sizes 64 B – 4 KiB, coalescing off vs on (recvs=4, "
              "sends=16)",
              args);
  Table table({"message size", "off Mb/s", "on Mb/s", "gain",
               "merged sends/flush", "acks piggybacked"});
  std::vector<Point> points;
  // --quick keeps the smallest size, the 256 B point CI gates on, and the
  // staging-capacity boundary where the columns converge.
  const std::vector<std::uint64_t> sizes =
      args.quick ? std::vector<std::uint64_t>{64, 256, 4096}
                 : std::vector<std::uint64_t>(std::begin(kSizes),
                                              std::end(kSizes));
  for (std::uint64_t size : sizes) {
    blast::BlastConfig off = BaseFor(profile, args);
    off.fixed_message_bytes = size;
    blast::BlastConfig on = off;
    on.stream.coalesce.enabled = true;

    blast::BlastSummary off_s = blast::RunRepeated(off, args.runs);
    blast::BlastSummary on_s = blast::RunRepeated(on, args.runs);

    Point p;
    p.size = size;
    p.off_mbps = off_s.throughput_mbps.mean;
    p.on_mbps = on_s.throughput_mbps.mean;
    p.coalesced_per_flush = MeanOverRuns(on_s, [](const blast::BlastResult& r) {
      return r.client_stats.coalesce_flushes == 0
                 ? 0.0
                 : static_cast<double>(r.client_stats.coalesced_sends) /
                       static_cast<double>(r.client_stats.coalesce_flushes);
    });
    p.acks_piggybacked = MeanOverRuns(on_s, [](const blast::BlastResult& r) {
      return static_cast<double>(r.server_stats.acks_piggybacked);
    });
    points.push_back(p);

    double gain = p.off_mbps > 0.0 ? p.on_mbps / p.off_mbps : 0.0;
    table.AddRow({std::to_string(size) + " B",
                  FormatMetric(off_s.throughput_mbps, 0),
                  FormatMetric(on_s.throughput_mbps, 0),
                  FormatDouble(gain, 2) + "x",
                  FormatDouble(p.coalesced_per_flush, 1),
                  FormatDouble(p.acks_piggybacked, 0)});
  }
  table.Print(std::cout, args.csv);
  std::cout << "\n";
  return points;
}

void WriteJson(const Args& args,
               const std::vector<std::pair<std::string, std::vector<Point>>>&
                   profiles) {
  if (args.results_json_path.empty()) return;
  std::ostringstream json;
  json << "{\"bench\":\"ext_coalescing\",\"schema_version\":"
       << kBenchJsonSchemaVersion << ",\"runs\":" << args.runs
       << ",\"messages\":" << args.messages << ",\"profiles\":[";
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    if (i) json << ",";
    json << "{\"profile\":\"" << profiles[i].first << "\",\"points\":[";
    const auto& points = profiles[i].second;
    for (std::size_t j = 0; j < points.size(); ++j) {
      const Point& p = points[j];
      if (j) json << ",";
      json << "{\"size\":" << p.size << ",\"off_mbps\":" << p.off_mbps
           << ",\"on_mbps\":" << p.on_mbps << ",\"gain\":"
           << (p.off_mbps > 0.0 ? p.on_mbps / p.off_mbps : 0.0)
           << ",\"coalesced_per_flush\":" << p.coalesced_per_flush
           << ",\"acks_piggybacked\":" << p.acks_piggybacked << "}";
    }
    json << "]}";
  }
  json << "]}";
  if (args.results_json_path == "-") {
    std::cout << json.str() << "\n";
    return;
  }
  std::ofstream file(args.results_json_path, std::ios::trunc);
  if (!file.good()) {
    std::cerr << "cannot write " << args.results_json_path << "\n";
    std::exit(2);
  }
  file << json.str() << "\n";
  std::cout << "results written to " << args.results_json_path << "\n";
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  std::vector<std::pair<std::string, std::vector<Point>>> results;
  results.emplace_back("fdr", RunProfile("fdr", args));
  results.emplace_back("wan", RunProfile("wan", args));
  WriteJson(args, results);
  return 0;
}
