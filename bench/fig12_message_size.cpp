// Reproduces Fig. 12 of the paper: the dynamic protocol's throughput and
// direct:total transfer ratio as a function of message size, with 4
// outstanding receives and 2 outstanding sends.
//
// Paper shape: throughput rises with message size toward the link limit
// (with a peak around 2 MiB); the direct ratio is low for small and
// mid-size messages, bottoms out near 32 KiB, then rises — at 512 KiB and
// above every transfer is direct, because a message's transmission delay
// exceeds the ADVERT round trip and the receiver always resupplies
// ADVERTs in time.
#include <fstream>
#include <iostream>
#include <sstream>

#include "support.hpp"

namespace exs::bench {
namespace {

const std::vector<std::uint64_t> kSizes = {
    512,        2 * kKiB,   8 * kKiB,  32 * kKiB, 128 * kKiB,
    512 * kKiB, 2 * kMiB,   8 * kMiB,  32 * kMiB, 128 * kMiB};

std::string SizeName(std::uint64_t s) {
  if (s >= kMiB) return std::to_string(s / kMiB) + " MiB";
  if (s >= kKiB) return std::to_string(s / kKiB) + " KiB";
  return std::to_string(s) + " B";
}

struct Point {
  std::uint64_t size = 0;
  double mbps = 0.0;
  double direct_ratio = 0.0;
  double mode_switches = 0.0;
};

std::vector<Point> Run(const Args& args) {
  PrintBanner(std::cout, "Fig 12",
              "dynamic protocol vs message size (recvs=4, sends=2)", args);
  Table table({"message size", "throughput Mb/s", "direct:total ratio",
               "mode switches"});
  std::vector<Point> points;
  // --quick samples the small / knee / large regimes of the size curve.
  const std::vector<std::uint64_t> sizes =
      args.quick ? std::vector<std::uint64_t>{512, 32 * kKiB, 2 * kMiB}
                 : kSizes;
  for (std::uint64_t size : sizes) {
    blast::BlastConfig c = FdrBaseConfig(args);
    c.outstanding_recvs = 4;
    c.outstanding_sends = 2;
    c.fixed_message_bytes = size;
    c.recv_buffer_bytes = size;
    c.max_message_bytes = size;
    // Bound total bytes per run: huge messages need few repetitions for a
    // stable mean, and 128 MiB x 500 would be wasteful.
    if (size >= 2 * kMiB) {
      c.message_count = std::min<std::uint64_t>(c.message_count, 100);
    }
    if (size >= 32 * kMiB) {
      c.message_count = std::min<std::uint64_t>(c.message_count, 30);
    }
    blast::BlastSummary s = blast::RunRepeated(c, args.runs);
    table.AddRow({SizeName(size), FormatMetric(s.throughput_mbps, 0),
                  FormatMetric(s.direct_ratio, 2),
                  FormatMetric(s.mode_switches, 1)});
    points.push_back(Point{size, s.throughput_mbps.mean, s.direct_ratio.mean,
                           s.mode_switches.mean});
  }
  table.Print(std::cout, args.csv);
  return points;
}

void WriteJson(const Args& args, const std::vector<Point>& points) {
  if (args.results_json_path.empty()) return;
  std::ostringstream json;
  json << "{\"bench\":\"fig12\",\"schema_version\":"
       << kBenchJsonSchemaVersion << ",\"runs\":" << args.runs
       << ",\"messages\":" << args.messages << ",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    if (i) json << ",";
    json << "{\"size\":" << p.size << ",\"mbps\":" << p.mbps
         << ",\"direct_ratio\":" << p.direct_ratio
         << ",\"mode_switches\":" << p.mode_switches << "}";
  }
  json << "]}";
  if (args.results_json_path == "-") {
    std::cout << json.str() << "\n";
    return;
  }
  std::ofstream file(args.results_json_path, std::ios::trunc);
  if (!file.good()) {
    std::cerr << "cannot write " << args.results_json_path << "\n";
    std::exit(2);
  }
  file << json.str() << "\n";
  std::cout << "results written to " << args.results_json_path << "\n";
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  WriteJson(args, Run(args));
  return 0;
}
