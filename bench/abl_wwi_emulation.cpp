// Ablation: native RDMA WRITE WITH IMM vs. the legacy-iWARP emulation
// (RDMA WRITE + trailing SEND, §II-B).
//
// Finding: blast *throughput* is essentially unchanged — per-message cost
// is dominated by event-notification latency, which the extra SEND hides
// behind — so supporting legacy iWARP is nearly free for bulk streams.
// The cost is visible where it belongs: every transfer puts one extra
// message on the wire, and ping-pong latency pays the extra work-request
// and delivery overheads on every hop.
#include <iostream>
#include <vector>

#include "support.hpp"

namespace exs::bench {
namespace {

double PingPongRttUs(const simnet::HardwareProfile& profile,
                     std::uint64_t size, int iterations,
                     std::uint64_t seed) {
  Simulation sim(profile, seed, /*carry_payload=*/false);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
  std::vector<std::uint8_t> buf(size);
  client->RegisterMemory(buf.data(), size);
  server->RegisterMemory(buf.data(), size);  // distinct MRs, same memory

  int remaining = iterations;
  SimTime done = 0;
  server->events().SetHandler([&, server = server](const Event& ev) {
    if (ev.type != EventType::kRecvComplete) return;
    server->Send(buf.data(), size);
    server->Recv(buf.data(), size, RecvFlags{.waitall = true});
  });
  client->events().SetHandler([&, client = client](const Event& ev) {
    if (ev.type != EventType::kRecvComplete) return;
    if (--remaining <= 0) {
      done = sim.Now();
      return;
    }
    client->Recv(buf.data(), size, RecvFlags{.waitall = true});
    client->Send(buf.data(), size);
  });
  server->Recv(buf.data(), size, RecvFlags{.waitall = true});
  client->Recv(buf.data(), size, RecvFlags{.waitall = true});
  sim.RunFor(Microseconds(50));
  SimTime start = sim.Now();
  client->Send(buf.data(), size);
  sim.Run();
  return ToMicroseconds(done - start) / iterations;
}

double WireMessagesPerTransfer(const simnet::HardwareProfile& profile) {
  Simulation sim(profile, 1, /*carry_payload=*/false);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
  std::vector<std::uint8_t> out(4096), in(4096);
  client->RegisterMemory(out.data(), out.size());
  server->RegisterMemory(in.data(), in.size());
  constexpr int kTransfers = 64;
  std::uint64_t before = 0;
  int posted = 0;
  server->events().SetHandler([&, server = server](const Event&) {
    server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  });
  client->events().SetHandler([&, client = client](const Event&) {
    if (++posted < kTransfers) client->Send(out.data(), out.size());
  });
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim.RunFor(Microseconds(50));
  before = sim.fabric().channel_from(0).MessagesCarried();
  client->Send(out.data(), out.size());
  sim.Run();
  std::uint64_t carried =
      sim.fabric().channel_from(0).MessagesCarried() - before;
  return static_cast<double>(carried) / kTransfers;
}

void Run(const Args& args) {
  PrintBanner(std::cout, "Ablation: WWI emulation",
              "native WRITE-WITH-IMM vs RDMA WRITE + SEND (legacy iWARP)",
              args);
  const auto native = simnet::HardwareProfile::RoCE10G();
  const auto emulated = simnet::HardwareProfile::Iwarp10G();

  std::cout << "wire messages per direct transfer: native "
            << FormatDouble(WireMessagesPerTransfer(native), 2)
            << ", emulated "
            << FormatDouble(WireMessagesPerTransfer(emulated), 2) << "\n\n";

  const int iterations = args.quick ? 50 : 200;
  Table table({"message size", "native RTT us", "emulated RTT us",
               "blast native Mb/s", "blast emulated Mb/s"});
  for (std::uint64_t size : {512ull, 4ull * kKiB, 64ull * kKiB,
                             512ull * kKiB}) {
    std::string name = size >= kKiB ? std::to_string(size / kKiB) + " KiB"
                                    : std::to_string(size) + " B";
    RunningStats nat, emu;
    for (int r = 0; r < args.runs; ++r) {
      nat.Add(PingPongRttUs(native, size, iterations, 100 + r));
      emu.Add(PingPongRttUs(emulated, size, iterations, 100 + r));
    }
    std::vector<std::string> row = {name, FormatDouble(nat.Mean(), 2),
                                    FormatDouble(emu.Mean(), 2)};
    for (const auto& profile : {native, emulated}) {
      blast::BlastConfig c = FdrBaseConfig(args);
      c.profile = profile;
      c.outstanding_recvs = 16;
      c.outstanding_sends = 8;
      c.fixed_message_bytes = size;
      c.recv_buffer_bytes = size;
      blast::BlastSummary s = blast::RunRepeated(c, args.runs);
      row.push_back(FormatDouble(s.throughput_mbps.mean, 0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout, args.csv);
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  Run(args);
  return 0;
}
