// Reproduces Fig. 11 of the paper: the dynamic protocol with the number of
// outstanding receive operations held at 32 while the number of
// outstanding sends sweeps 1..32, for four fixed message sizes.
//
//   Fig. 11a — throughput
//   Fig. 11b — ratio of direct transfers to total transfers
//
// Paper shape: throughput increases with message size; above a few
// outstanding sends it is largely flat — except near the marginal message
// size (128 KiB in the paper), where the direct-transfer ratio has very
// high variance and drags throughput with it.
#include <iostream>

#include "support.hpp"

namespace exs::bench {
namespace {

const std::vector<std::uint64_t> kSizes = {512, 8 * kKiB, 128 * kKiB,
                                           2 * kMiB};
const std::vector<std::uint32_t> kSends = {1, 2, 4, 5, 8, 16, 32};

void Run(const Args& args) {
  PrintBanner(std::cout, "Fig 11",
              "dynamic protocol vs outstanding sends (recvs fixed at 32)",
              args);
  Table tput({"outstanding sends", "512 B Mb/s", "8 KiB Mb/s",
              "128 KiB Mb/s", "2 MiB Mb/s"});
  Table ratio({"outstanding sends", "512 B ratio", "8 KiB ratio",
               "128 KiB ratio", "2 MiB ratio"});
  // --quick samples the shallow, paper-anomaly (5), and deep ends.
  const std::vector<std::uint32_t> send_sweep =
      args.quick ? std::vector<std::uint32_t>{1, 5, 32} : kSends;
  for (std::uint32_t sends : send_sweep) {
    std::vector<std::string> trow = {std::to_string(sends)};
    std::vector<std::string> rrow = {std::to_string(sends)};
    for (std::uint64_t size : kSizes) {
      blast::BlastConfig c = FdrBaseConfig(args);
      c.outstanding_recvs = 32;
      c.outstanding_sends = sends;
      c.fixed_message_bytes = size;
      c.recv_buffer_bytes = size;
      // Keep per-point cost bounded for the big sizes.
      if (size >= 2 * kMiB && c.message_count > 200) c.message_count = 200;
      blast::BlastSummary s = blast::RunRepeated(c, args.runs);
      trow.push_back(FormatMetric(s.throughput_mbps, 0));
      rrow.push_back(FormatMetric(s.direct_ratio, 2));
    }
    tput.AddRow(std::move(trow));
    ratio.AddRow(std::move(rrow));
  }
  std::cout << "-- Fig 11a: throughput --\n";
  tput.Print(std::cout, args.csv);
  std::cout << "\n-- Fig 11b: direct:total transfer ratio --\n";
  ratio.Print(std::cout, args.csv);
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  Run(args);
  return 0;
}
