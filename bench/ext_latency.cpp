// Extension (paper §VI: "We also plan on performing latency studies"):
// ping-pong round-trip latency vs. message size for the three protocols on
// FDR InfiniBand.
//
// Expected shape: direct transfers carry no copy cost, so direct-only and
// the dynamic protocol (which runs direct here — the echoing receiver
// always has its ADVERT out before the next ping) track each other, while
// indirect-only pays the receiver-side copy on every hop and falls behind
// by a growing margin as messages get larger.
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "support.hpp"

namespace exs::bench {
namespace {

/// One ping-pong session; returns mean RTT in microseconds.  When
/// `latency_json` is non-null the run is span-instrumented (which cannot
/// perturb timing — the collector schedules nothing) and the per-stage
/// LatencyReport JSON is stored there.
double MeasureRttUs(ProtocolMode mode, std::uint64_t size, int iterations,
                    std::uint64_t seed, std::string* latency_json = nullptr) {
  StreamOptions opts;
  opts.mode = mode;
  Simulation sim(simnet::HardwareProfile::FdrInfiniBand(), seed,
                 /*carry_payload=*/false);
  if (latency_json != nullptr) sim.EnableChunkSpans();
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream, opts);

  std::vector<std::uint8_t> ping(size), pong(size), ping_in(size),
      pong_in(size);
  client->RegisterMemory(ping.data(), size);
  client->RegisterMemory(pong_in.data(), size);
  server->RegisterMemory(pong.data(), size);
  server->RegisterMemory(ping_in.data(), size);

  int remaining = iterations;
  SimTime first_send = 0;
  SimTime last_recv = 0;

  // Server: echo every fully-received ping.
  server->events().SetHandler([&, server = server](const Event& ev) {
    if (ev.type != EventType::kRecvComplete) return;
    server->Send(pong.data(), size);
    server->Recv(ping_in.data(), size, RecvFlags{.waitall = true});
  });
  // Client: next ping on every fully-received pong.
  client->events().SetHandler([&, client = client](const Event& ev) {
    if (ev.type != EventType::kRecvComplete) return;
    if (--remaining <= 0) {
      last_recv = sim.Now();
      return;
    }
    client->Recv(pong_in.data(), size, RecvFlags{.waitall = true});
    client->Send(ping.data(), size);
  });

  server->Recv(ping_in.data(), size, RecvFlags{.waitall = true});
  client->Recv(pong_in.data(), size, RecvFlags{.waitall = true});
  sim.RunFor(Microseconds(50));  // let initial ADVERTs settle
  first_send = sim.Now();
  client->Send(ping.data(), size);
  sim.Run();

  if (latency_json != nullptr) {
    *latency_json = sim.chunk_spans()->BuildReport().ToJson();
  }
  return ToMicroseconds(last_recv - first_send) / iterations;
}

/// --latency-json: one span-instrumented dynamic-mode session at a
/// representative mid-size point; run_all.sh merges the per-stage
/// breakdown into BENCH_streams.json.
void WriteLatencyJson(const Args& args, int iterations) {
  if (args.latency_json_path.empty()) return;
  constexpr std::uint64_t kSize = 32 * kKiB;
  std::string report;
  MeasureRttUs(ProtocolMode::kDynamic, kSize, iterations, /*seed=*/1000,
               &report);
  std::ostringstream json;
  json << "{\"bench\":\"ext_latency\",\"schema_version\":"
       << kBenchJsonSchemaVersion
       << ",\"mode\":\"dynamic\",\"message_bytes\":" << kSize
       << ",\"iterations\":" << iterations << ",\"latency\":" << report << "}";
  if (args.latency_json_path == "-") {
    std::cout << json.str() << "\n";
    return;
  }
  std::ofstream file(args.latency_json_path, std::ios::trunc);
  if (!file.good()) {
    std::cerr << "cannot write " << args.latency_json_path << "\n";
    std::exit(2);
  }
  file << json.str() << "\n";
  std::cout << "latency breakdown written to " << args.latency_json_path
            << "\n";
}

void Run(const Args& args) {
  PrintBanner(std::cout, "Ext: latency",
              "ping-pong round-trip time vs message size (§VI future work)",
              args);
  const int iterations = args.quick ? 40 : 200;
  Table table({"message size", "direct-only RTT us", "dynamic RTT us",
               "indirect-only RTT us"});
  for (std::uint64_t size :
       {64ull, 512ull, 4096ull, 32768ull, 262144ull, 1048576ull}) {
    std::string name = size >= kMiB ? std::to_string(size / kMiB) + " MiB"
                       : size >= kKiB ? std::to_string(size / kKiB) + " KiB"
                                      : std::to_string(size) + " B";
    std::vector<std::string> row = {name};
    for (ProtocolMode mode :
         {ProtocolMode::kDirectOnly, ProtocolMode::kDynamic,
          ProtocolMode::kIndirectOnly}) {
      RunningStats stats;
      for (int r = 0; r < args.runs; ++r) {
        stats.Add(MeasureRttUs(mode, size, iterations, 1000 + r));
      }
      blast::Metric m{stats.Mean(), stats.ConfidenceHalfWidth95(),
                      stats.Min(), stats.Max()};
      row.push_back(FormatMetric(m, 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout, args.csv);
  WriteLatencyJson(args, iterations);
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  Run(args);
  return 0;
}
