// Extension: why is the paper's protocol sender-driven?
//
// §II-B notes that RDMA READ "works in the opposite direction, but is not
// used in our solution" — without measuring the alternative.  This bench
// does: the read-rendezvous engine (receiver pulls with RDMA READ after a
// source advertisement) against the paper's three protocols.
//
// Expected story: on the LAN, rendezvous is competitive — zero-copy like
// direct, and the sender never stalls like indirect.  Over distance it
// loses badly: every byte pays SRC-ADVERT (half trip) plus a full READ
// round trip before it lands, 3x the wire crossings of a sender-driven
// WRITE — which is precisely why a stream library aimed at RDMA over
// distance chooses WRITE.
#include <iostream>

#include "support.hpp"

namespace exs::bench {
namespace {

void RunPart(const Args& args, const std::string& id, bool wan) {
  PrintBanner(std::cout, id,
              wan ? "10GbE RoCE + 48 ms RTT, sends == recvs"
                  : "FDR InfiniBand, sends == recvs",
              args);
  Table table({"outstanding ops", "direct-only Mb/s", "dynamic Mb/s",
               "indirect-only Mb/s", "read-rendezvous Mb/s",
               "rendezvous recv CPU%"});
  for (std::uint32_t k : {2u, 8u, 32u}) {
    std::vector<std::string> row = {std::to_string(k)};
    double rendezvous_cpu = 0.0;
    for (ProtocolMode mode :
         {ProtocolMode::kDirectOnly, ProtocolMode::kDynamic,
          ProtocolMode::kIndirectOnly, ProtocolMode::kReadRendezvous}) {
      blast::BlastConfig c = wan ? WanBaseConfig(args) : FdrBaseConfig(args);
      c.outstanding_recvs = k;
      c.outstanding_sends = k;
      c.stream.mode = mode;
      if (wan) c.message_count = std::min<std::uint64_t>(args.messages, 150);
      blast::BlastSummary s = blast::RunRepeated(c, args.runs);
      row.push_back(FormatMetric(s.throughput_mbps, 0));
      if (mode == ProtocolMode::kReadRendezvous) {
        rendezvous_cpu = s.receiver_cpu_percent.mean;
      }
    }
    row.push_back(FormatDouble(rendezvous_cpu, 1));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout, args.csv);
  std::cout << "\n";
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  RunPart(args, "Ext: read-rendezvous (LAN)", /*wan=*/false);
  RunPart(args, "Ext: read-rendezvous (WAN)", /*wan=*/true);
  return 0;
}
