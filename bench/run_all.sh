#!/usr/bin/env bash
# Run the headline stream benchmarks and merge their JSON results into one
# machine-readable file at the repo root (BENCH_streams.json), which CI
# archives as an artifact and gates on (see .github/workflows/ci.yml).
#
#   bench/run_all.sh [--quick] [--build-dir DIR] [--out FILE]
#
# Extra arguments after `--` are passed through to every bench
# (e.g. `bench/run_all.sh -- --runs 5 --messages 300`).
#
# Failure discipline: `set -e` alone is not enough — a bench invocation
# that ever grows a `| tee`-style consumer, or runs inside a context that
# disables errexit (command substitution, `if` guards), would swallow the
# bench's exit code.  So every bench run below also carries an explicit
# `|| { ...; exit 1; }` wrapper, and `pipefail` is set so any future
# pipeline stage failing is fatal too.  (Audit 2026-08: the merge step's
# `tr -d '\n' < file` redirections are not pipelines; the only pipelines
# this script could grow are around the bench invocations, which the
# explicit wrappers already cover.)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
out_file="${repo_root}/BENCH_streams.json"
bench_args=()
passthrough=()

while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) bench_args+=(--quick); shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --out) out_file="$2"; shift 2 ;;
    --) shift; passthrough=("$@"); break ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
done

# Top-level merged-file schema.  Distinct from the per-bench
# schema_version (bench/support.hpp): this one covers the envelope below.
suite_schema_version=2

benches=(fig09_throughput_outstanding fig12_message_size ext_coalescing
         ext_batching ext_striping ext_manystream ext_openloop)
# Benches that also emit a per-stage latency provenance document
# (--latency-json, see docs/OBSERVABILITY.md "Latency provenance").
latency_benches=(ext_latency ext_manystream)

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

require_bin() {
  if [[ ! -x "$1" ]]; then
    echo "missing bench binary: $1 (build the 'bench' targets first)" >&2
    exit 1
  fi
}

# A bench that exits 0 but writes no (or an empty) results document would
# otherwise surface only as a cryptic redirect error — or an empty entry —
# at merge time; fail at the offending bench instead.
require_json() {
  if [[ ! -s "$2" ]]; then
    echo "bench $1 emitted no results JSON at $2" >&2
    exit 1
  fi
}

json_files=()
for bench in "${benches[@]}"; do
  bin="${build_dir}/bench/${bench}"
  require_bin "${bin}"
  json="${tmp_dir}/${bench}.json"
  extra=()
  # ext_manystream doubles as a latency bench: collect its span breakdown
  # in the same invocation rather than running the sweep twice.
  for lb in "${latency_benches[@]}"; do
    if [[ "${lb}" == "${bench}" ]]; then
      extra+=(--latency-json "${tmp_dir}/${bench}.latency.json")
    fi
  done
  echo "== ${bench} =="
  "${bin}" "${bench_args[@]}" "${passthrough[@]}" --json "${json}" \
    "${extra[@]}" || { echo "bench ${bench} failed (exit $?)" >&2; exit 1; }
  require_json "${bench}" "${json}"
  json_files+=("${json}")
done

latency_files=()
for bench in "${latency_benches[@]}"; do
  latency_json="${tmp_dir}/${bench}.latency.json"
  if [[ ! -f "${latency_json}" ]]; then
    bin="${build_dir}/bench/${bench}"
    require_bin "${bin}"
    echo "== ${bench} (latency provenance) =="
    "${bin}" "${bench_args[@]}" "${passthrough[@]}" \
      --latency-json "${latency_json}" ||
      { echo "bench ${bench} (latency) failed (exit $?)" >&2; exit 1; }
  fi
  require_json "${bench}" "${latency_json}"
  latency_files+=("${latency_json}")
done

# Merge: one top-level object keyed by bench name.  Each bench emitted a
# single-line JSON object with a "bench" discriminator; stitching them
# preserves every byte of the per-bench payloads.
{
  printf '{"suite":"exs-stream-benches","schema_version":%s,"benches":[' \
    "${suite_schema_version}"
  first=1
  for json in "${json_files[@]}"; do
    [[ ${first} -eq 1 ]] || printf ','
    first=0
    tr -d '\n' < "${json}"
  done
  printf '],"latency":['
  first=1
  for json in "${latency_files[@]}"; do
    [[ ${first} -eq 1 ]] || printf ','
    first=0
    tr -d '\n' < "${json}"
  done
  printf ']}\n'
} > "${out_file}"

echo "merged results written to ${out_file}"
