#!/usr/bin/env bash
# Run the headline stream benchmarks and merge their JSON results into one
# machine-readable file at the repo root (BENCH_streams.json), which CI
# archives as an artifact and gates on (see .github/workflows/ci.yml).
#
#   bench/run_all.sh [--quick] [--build-dir DIR] [--out FILE]
#
# Extra arguments after `--` are passed through to every bench
# (e.g. `bench/run_all.sh -- --runs 5 --messages 300`).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
out_file="${repo_root}/BENCH_streams.json"
bench_args=()
passthrough=()

while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) bench_args+=(--quick); shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --out) out_file="$2"; shift 2 ;;
    --) shift; passthrough=("$@"); break ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
done

benches=(fig09_throughput_outstanding fig12_message_size ext_coalescing
         ext_striping ext_manystream)

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

json_files=()
for bench in "${benches[@]}"; do
  bin="${build_dir}/bench/${bench}"
  if [[ ! -x "${bin}" ]]; then
    echo "missing bench binary: ${bin} (build the 'bench' targets first)" >&2
    exit 1
  fi
  json="${tmp_dir}/${bench}.json"
  echo "== ${bench} =="
  "${bin}" "${bench_args[@]}" "${passthrough[@]}" --json "${json}"
  json_files+=("${json}")
done

# Merge: one top-level object keyed by bench name.  Each bench emitted a
# single-line JSON object with a "bench" discriminator; stitching them
# preserves every byte of the per-bench payloads.
{
  printf '{"suite":"exs-stream-benches","benches":['
  first=1
  for json in "${json_files[@]}"; do
    [[ ${first} -eq 1 ]] || printf ','
    first=0
    tr -d '\n' < "${json}"
  done
  printf ']}\n'
} > "${out_file}"

echo "merged results written to ${out_file}"
