// Reproduces Table III of the paper: for every Fig. 9 configuration of the
// dynamic protocol, the average number of direct/indirect mode switches
// and the ratio of direct transfers to total transfers.
//
// Paper shape: with equal outstanding counts the connection flips to
// indirect service once, almost immediately (switch count ~1, ratio well
// under 0.1, except many switches at 1/1); with doubled receives it stays
// fully direct (ratio ~1) except the anomalous (4,2) point, whose ratio is
// low with a confidence interval nearly as large as its mean.
#include <iostream>

#include "support.hpp"

namespace exs::bench {
namespace {

void Run(const Args& args) {
  PrintBanner(std::cout, "Table III",
              "dynamic-protocol mode switches and direct:total ratio", args);
  Table table({"outstanding recvs", "outstanding sends", "mode switches",
               "direct:total ratio"});
  auto add_case = [&](std::uint32_t recvs, std::uint32_t sends) {
    blast::BlastConfig c = FdrBaseConfig(args);
    c.outstanding_recvs = recvs;
    c.outstanding_sends = sends;
    blast::BlastSummary s = blast::RunRepeated(c, args.runs);
    table.AddRow({std::to_string(recvs), std::to_string(sends),
                  FormatMetric(s.mode_switches, 1),
                  FormatMetric(s.direct_ratio, 2)});
  };
  // --quick keeps the sweep's endpoints and midpoint.
  const std::vector<std::uint32_t> sweep =
      args.quick ? std::vector<std::uint32_t>{1, 4, 16} : kOutstandingSweep;
  for (std::uint32_t k : sweep) add_case(k, k);
  for (std::uint32_t k : sweep) {
    if (k >= 2) add_case(k, k / 2);
  }
  table.Print(std::cout, args.csv);
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  Run(args);
  return 0;
}
