// Extension: shared-QP stream multiplexing (the MuxGroup tier).
//
// The classic library dedicates one RC queue pair — with its completion
// queues and pre-posted credit pool — to every connection, so verbs state
// grows linearly with stream count and a 64 Ki-stream server would need
// 64 Ki queue pairs.  The mux tier pins any number of streams to a fixed
// pool of slot queue pairs (stream ids ride the wire header, per-stream
// credit windows layer over the slot's §II-B credits, and a deficit-
// round-robin dispatch arbitrates parked streams).  This bench is the
// budget proof and its price tag:
//
//   * the dedicated arm sweeps 64 → 4096 streams and reports the queue
//     pairs the classic tier creates (== streams),
//   * the muxed arm sweeps 1024 → 65536 streams — the full 16-bit stream
//     id space at the top point — over a pool of eight slot queue pairs
//     per endpoint, and asserts the device-level QP count never exceeds
//     the pool width,
//   * fairness (slowest/median stream completion — the starvation
//     detector) stays tight under the DRR dispatch even when thousands of
//     streams contend for one slot's credit window, and
//   * the head-of-line price of sharing is quantified, not hidden: the
//     mux.hol_wait histograms of every stream merge into an aggregate
//     park-to-send p99.
//
// The mux conservation laws (CheckMuxGroupPair) run at every point; the
// per-pair trace checker runs at the counts where tracing is affordable.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "exs/exs.hpp"
#include "exs/invariant_checker.hpp"
#include "exs/mux.hpp"
#include "support.hpp"

namespace exs::bench {
namespace {

/// Slot queue pairs per MuxGroup in the muxed arm: the whole QP budget.
constexpr std::uint32_t kPoolWidth = 8;
/// Replaying every per-pair trace is O(events); affordable up to this
/// stream count, skipped (not failed) above it.
constexpr std::uint32_t kMaxTracedStreams = 64;
/// Muxed fairness gate: with uniform per-stream work the DRR dispatch
/// must keep the slowest stream within this factor of the median.
constexpr double kFairnessBound = 2.0;

constexpr std::uint32_t kDedicatedFull[] = {64, 1024, 4096};
constexpr std::uint32_t kDedicatedQuick[] = {64, 1024};
constexpr std::uint32_t kMuxedFull[] = {1024, 4096, 16384, 65536};
constexpr std::uint32_t kMuxedQuick[] = {1024, 4096};

struct Point {
  bool muxed = false;
  std::uint32_t streams = 0;
  std::uint32_t width = 0;  ///< QP budget (dedicated: == streams)
  std::uint64_t per_stream_bytes = 0;
  std::uint64_t qps_created = 0;  ///< device 1 (the endpoints are symmetric)
  double goodput_mbps = 0.0;
  /// Slowest finish / median finish (>= 1): the starvation detector the
  /// fairness gate runs on.  A stream the DRR under-serves drags the
  /// slowest finish out and blows this up; it is deliberately insensitive
  /// to the handful of early streams that complete inside the pre-
  /// saturation startup window (see `spread`).
  double fairness = 0.0;
  /// Slowest finish / fastest finish (>= 1), informational: at thousands
  /// of streams per slot this measures that startup head, not the
  /// dispatch (p1..p100 of the finish distribution stays tight).
  double spread = 0.0;
  std::uint64_t parks = 0;
  double hol_p99_us = 0.0;
  double hol_p999_us = 0.0;
  bool checker_ran = false;
  std::uint64_t checker_violations = 0;
};

/// One deterministic run: N stream pairs (dedicated queue pairs or muxed
/// over a kPoolWidth slot pool), every client pushes `per_stream` bytes in
/// round-robin slices so all streams stay backlogged, and the clock stops
/// at each stream's completion.  `failures` collects any correctness
/// problem (the bench exits nonzero if it is non-empty).
Point RunPoint(bool muxed, std::uint32_t streams,
               std::uint64_t aggregate_bytes,
               std::vector<std::string>* failures) {
  Point pt;
  pt.muxed = muxed;
  pt.streams = streams;
  pt.width = muxed ? kPoolWidth : streams;
  // Floor per-stream bytes at several DRR laps' worth of chunks: a stream
  // whose whole payload fits its in-flight window completes on its first
  // credit grant, and fairness would then measure the oversubscription
  // ratio (first grantee vs last in the rotation), not the dispatch.
  pt.per_stream_bytes =
      std::max<std::uint64_t>(aggregate_bytes / streams, 16 * kKiB);
  const std::uint64_t per_stream = pt.per_stream_bytes;
  const bool trace = streams <= kMaxTracedStreams;
  auto fail = [&](const std::string& msg) {
    failures->push_back(std::string(muxed ? "muxed" : "dedicated") +
                        " streams=" + std::to_string(streams) + ": " + msg);
  };

  simnet::HardwareProfile profile = simnet::HardwareProfile::FdrInfiniBand();
  Simulation sim(profile, /*seed=*/1, /*carry_payload=*/false);

  // Token-sized receive rings: with the sink Recv posted before any Send,
  // bulk bytes ride ADVERT-gated direct WWIs and the ring only buffers
  // protocol edges — 8 MiB defaults would put ring memory, not verbs
  // state, on trial at 65536 streams.
  StreamOptions opts;
  opts.credits = 8;
  opts.intermediate_buffer_bytes = 2 * kKiB;
  // Several WWIs per stream so windows and quanta actually arbitrate.
  opts.max_wwi_chunk = 2 * kKiB;

  MuxOptions mopts;
  mopts.width = kPoolWidth;
  mopts.qp_credits = 256;
  mopts.per_stream_credits = 2;

  std::optional<MuxGroup> g0;
  std::optional<MuxGroup> g1;
  if (muxed) {
    g0.emplace(sim.device(0), mopts);
    g1.emplace(sim.device(1), mopts);
    MuxGroup::Connect(*g0, *g1);
  }

  struct Pair {
    Socket* client = nullptr;
    Socket* server = nullptr;
    std::uint64_t received = 0;
    SimTime finish = 0;
  };
  std::vector<Pair> pairs(streams);
  // Timing-only payloads (carry_payload = false): every stream sends from
  // and sinks into shared buffers, keeping host memory O(per-stream).
  std::vector<std::uint8_t> sink(per_stream);
  std::vector<std::uint8_t> payload(per_stream);

  for (std::uint32_t i = 0; i < streams; ++i) {
    Pair& pair = pairs[i];
    if (muxed) {
      auto [c, s] = sim.CreateMuxedPair(*g0, *g1, opts);
      pair.client = c;
      pair.server = s;
    } else {
      auto [c, s] = sim.CreateConnectedPair(SocketType::kStream, opts);
      pair.client = c;
      pair.server = s;
    }
    if (trace) {
      pair.client->EnableTracing(0);
      pair.server->EnableTracing(0);
    }
    Pair* raw = &pair;
    pair.server->events().SetHandler([raw, per_stream, &sim](const Event& ev) {
      if (ev.type != EventType::kRecvComplete) return;
      raw->received += ev.bytes;
      if (raw->received >= per_stream && raw->finish == 0) {
        raw->finish = sim.Now();
      }
    });
    pair.server->Recv(sink.data(), per_stream, RecvFlags{.waitall = true});
  }

  pt.qps_created = sim.device(1).QueuePairsCreated();
  if (muxed && pt.qps_created != kPoolWidth) {
    fail("QP budget exceeded: " + std::to_string(pt.qps_created) +
         " queue pairs for a width-" + std::to_string(kPoolWidth) + " pool");
    return pt;
  }

  // Timed section: round-robin slices keep every stream backlogged across
  // the whole window — one Send per client would let the streams drain
  // sequentially in posting order and fairness would measure the posting
  // loop, not the dispatch.
  constexpr std::uint64_t kRounds = 8;
  const std::uint64_t slice = (per_stream + kRounds - 1) / kRounds;
  const SimTime start = sim.Now();
  for (std::uint64_t off = 0; off < per_stream; off += slice) {
    const std::uint64_t len = std::min(slice, per_stream - off);
    for (Pair& pair : pairs) pair.client->Send(payload.data() + off, len);
  }
  sim.Run();

  std::vector<SimTime> finishes;
  finishes.reserve(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const Pair& pair = pairs[i];
    if (pair.received != per_stream || pair.finish == 0) {
      fail("stream " + std::to_string(i) + " short delivery: " +
           std::to_string(pair.received) + "/" + std::to_string(per_stream));
      return pt;
    }
    finishes.push_back(pair.finish);
  }
  std::sort(finishes.begin(), finishes.end());
  const SimTime first = finishes.front();
  const SimTime median = finishes[finishes.size() / 2];
  const SimTime last = finishes.back();
  pt.goodput_mbps = ThroughputMbps(per_stream * streams, last - start);
  pt.fairness = median > start
                    ? static_cast<double>(last - start) /
                          static_cast<double>(median - start)
                    : 1.0;
  pt.spread = first > start
                  ? static_cast<double>(last - start) /
                        static_cast<double>(first - start)
                  : 1.0;
  if (muxed && streams > 1 && pt.fairness > kFairnessBound) {
    fail("DRR fairness " + FormatDouble(pt.fairness, 2) + "x exceeds the " +
         FormatDouble(kFairnessBound, 1) + "x bound");
  }

  if (muxed) {
    // Merge every client's park-to-send histogram bucket-wise (bucket
    // lower bounds re-land in their own bucket, so the merged percentile
    // is exact at bucket granularity).
    metrics::Histogram merged;
    for (const Pair& pair : pairs) {
      metrics::Histogram& h =
          pair.client->metrics_registry().GetHistogram("mux.hol_wait", "ps");
      const auto& buckets = h.buckets();
      for (std::size_t b = 0; b < metrics::Histogram::kBuckets; ++b) {
        for (std::uint64_t n = 0; n < buckets[b]; ++n) {
          merged.Record(metrics::Histogram::BucketLowerBound(b));
        }
      }
      pt.parks += static_cast<std::uint64_t>(
          pair.client->metrics_registry().GetCounter("mux.parks", "events")
              .value());
    }
    pt.hol_p99_us = merged.Percentile(99.0) / 1e6;  // ps -> us
    pt.hol_p999_us = merged.Percentile(99.9) / 1e6;
  }

  InvariantReport report;
  if (trace) {
    for (const Pair& pair : pairs) {
      report.Merge(CheckConnection(*pair.client, *pair.server));
    }
  }
  if (muxed) report.Merge(CheckMuxGroupPair(*g0, *g1));
  pt.checker_ran = trace || muxed;
  pt.checker_violations = report.violations.size();
  for (const std::string& v : report.violations) fail("checker: " + v);
  return pt;
}

void WriteJson(const Args& args, const std::vector<Point>& points,
               std::uint64_t aggregate_bytes) {
  if (args.results_json_path.empty()) return;
  std::ostringstream json;
  json << "{\"bench\":\"ext_mux\",\"schema_version\":"
       << kBenchJsonSchemaVersion << ",\"pool_width\":" << kPoolWidth
       << ",\"aggregate_bytes\":" << aggregate_bytes
       << ",\"fairness_bound\":" << kFairnessBound << ",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    if (i) json << ",";
    json << "{\"tier\":\"" << (p.muxed ? "muxed" : "dedicated")
         << "\",\"streams\":" << p.streams << ",\"width\":" << p.width
         << ",\"per_stream_bytes\":" << p.per_stream_bytes
         << ",\"qps_created\":" << p.qps_created
         << ",\"goodput_mbps\":" << p.goodput_mbps
         << ",\"fairness\":" << p.fairness << ",\"spread\":" << p.spread
         << ",\"parks\":" << p.parks
         << ",\"hol_p99_us\":" << p.hol_p99_us
         << ",\"hol_p999_us\":" << p.hol_p999_us
         << ",\"checker_ran\":" << (p.checker_ran ? "true" : "false")
         << ",\"checker_violations\":" << p.checker_violations << "}";
  }
  json << "]}";
  if (args.results_json_path == "-") {
    std::cout << json.str() << "\n";
    return;
  }
  std::ofstream file(args.results_json_path, std::ios::trunc);
  if (!file.good()) {
    std::cerr << "cannot write " << args.results_json_path << "\n";
    std::exit(2);
  }
  file << json.str() << "\n";
  std::cout << "results written to " << args.results_json_path << "\n";
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  PrintBanner(std::cout, "Ext: shared-QP stream multiplexing (fdr)",
              "dedicated tier (one QP per stream) vs MuxGroup tier (64 Ki "
              "streams over eight slot QPs), with the DRR fairness and "
              "head-of-line price of sharing",
              args);
  std::cout << "(one deterministic run per point; --runs/--messages do not "
               "apply)\n\n";

  const std::uint64_t aggregate_bytes =
      args.quick ? 8 * exs::kMiB : 64 * exs::kMiB;
  std::vector<std::uint32_t> dedicated;
  std::vector<std::uint32_t> muxed;
  if (args.quick) {
    dedicated.assign(std::begin(kDedicatedQuick), std::end(kDedicatedQuick));
    muxed.assign(std::begin(kMuxedQuick), std::end(kMuxedQuick));
  } else {
    dedicated.assign(std::begin(kDedicatedFull), std::end(kDedicatedFull));
    muxed.assign(std::begin(kMuxedFull), std::end(kMuxedFull));
  }

  Table table({"tier", "streams", "QPs", "per-stream", "goodput Mb/s",
               "fairness", "spread", "parks", "HoL p99 us", "checker"});
  std::vector<Point> points;
  std::vector<std::string> failures;
  auto add = [&](bool is_muxed, std::uint32_t streams) {
    Point p = RunPoint(is_muxed, streams, aggregate_bytes, &failures);
    points.push_back(p);
    table.AddRow({is_muxed ? "muxed" : "dedicated", std::to_string(p.streams),
                  std::to_string(p.qps_created),
                  std::to_string(p.per_stream_bytes / exs::kKiB) + " KiB",
                  FormatDouble(p.goodput_mbps, 0),
                  FormatDouble(p.fairness, 2) + "x",
                  FormatDouble(p.spread, 2) + "x", std::to_string(p.parks),
                  p.muxed ? FormatDouble(p.hol_p99_us, 1) : "-",
                  p.checker_ran
                      ? (p.checker_violations == 0 ? "ok" : "FAIL")
                      : "skipped"});
  };
  for (std::uint32_t streams : dedicated) add(/*is_muxed=*/false, streams);
  for (std::uint32_t streams : muxed) add(/*is_muxed=*/true, streams);
  table.Print(std::cout, args.csv);
  std::cout << "\n";
  WriteJson(args, points, aggregate_bytes);

  for (const std::string& f : failures) std::cerr << "FAIL " << f << "\n";
  return failures.empty() ? 0 : 1;
}
