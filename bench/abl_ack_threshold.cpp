// Ablation: ACK batching.  The receiver returns freed buffer space with
// periodic ACKs (Fig. 5 line 2); the threshold trades control-message
// volume against how quickly the sender's b_s view recovers.
//
// Expected shape: with a generous buffer the threshold hardly matters; as
// the threshold approaches the buffer size, the sender stalls in long
// gulps waiting for one big ACK and throughput collapses — worst with a
// small buffer, where fine-grained ACKs are essential.
#include <iostream>

#include "support.hpp"

namespace exs::bench {
namespace {

void Run(const Args& args) {
  PrintBanner(std::cout, "Ablation: ACK threshold",
              "indirect-only throughput vs ACK batching threshold", args);
  Table table({"ack threshold", "1 MiB buffer Mb/s", "8 MiB buffer Mb/s",
               "acks per MiB (1 MiB buffer)"});
  for (std::uint64_t thresh :
       {16 * kKiB, 64 * kKiB, 256 * kKiB, 512 * kKiB, 1 * kMiB}) {
    std::string name = thresh >= kMiB
                           ? std::to_string(thresh / kMiB) + " MiB"
                           : std::to_string(thresh / kKiB) + " KiB";
    std::vector<std::string> row = {name};
    double acks_per_mib = 0.0;
    for (std::uint64_t buf : {1 * kMiB, 8 * kMiB}) {
      blast::BlastConfig c = FdrBaseConfig(args);
      c.outstanding_recvs = 16;
      c.outstanding_sends = 16;
      c.stream.mode = ProtocolMode::kIndirectOnly;
      c.stream.intermediate_buffer_bytes = buf;
      c.stream.ack_threshold_bytes = thresh;
      blast::BlastSummary s = blast::RunRepeated(c, args.runs);
      row.push_back(FormatMetric(s.throughput_mbps, 0));
      if (buf == 1 * kMiB) {
        double total_acks = 0, total_bytes = 0;
        for (const auto& r : s.runs) {
          total_acks += static_cast<double>(r.server_stats.acks_sent);
          total_bytes += static_cast<double>(r.bytes_transferred);
        }
        acks_per_mib = total_acks / (total_bytes / static_cast<double>(kMiB));
      }
    }
    row.push_back(FormatDouble(acks_per_mib, 2));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout, args.csv);
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  Run(args);
  return 0;
}
