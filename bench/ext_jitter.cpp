// Extension (paper §VI: "use our network emulator to set a jitter function
// ... to see the effect of jitter on our implementation"): throughput over
// the 48 ms RTT emulated path as per-message delay jitter grows.
//
// Expected shape: because the modelled transport is reliable and in-order,
// jitter mostly *defers* deliveries (a delayed message holds back everyone
// behind it — head-of-line ordering), so throughput degrades gently with
// the jitter magnitude for all three protocols, and the dynamic protocol
// continues to track the better baseline.
#include <iostream>

#include "support.hpp"

namespace exs::bench {
namespace {

void Run(const Args& args) {
  PrintBanner(std::cout, "Ext: jitter",
              "throughput vs emulator jitter, 10GbE RoCE + 48 ms RTT", args);
  Table table({"jitter (ms)", "indirect-only Mb/s", "dynamic Mb/s",
               "direct-only Mb/s"});
  for (double jitter_ms : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    std::vector<std::string> row = {FormatDouble(jitter_ms, 1)};
    for (ProtocolMode mode :
         {ProtocolMode::kIndirectOnly, ProtocolMode::kDynamic,
          ProtocolMode::kDirectOnly}) {
      blast::BlastConfig c = WanBaseConfig(args);
      c.profile = simnet::HardwareProfile::RoCE10GWithDelay(
          Milliseconds(24), Milliseconds(jitter_ms));
      c.outstanding_recvs = 16;
      c.outstanding_sends = 16;
      c.stream.mode = mode;
      c.message_count = std::min<std::uint64_t>(args.messages, 200);
      blast::BlastSummary s = blast::RunRepeated(c, args.runs);
      row.push_back(FormatMetric(s.throughput_mbps, 0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout, args.csv);
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  Run(args);
  return 0;
}
