// Reproduces Fig. 10 of the paper: receiver CPU usage vs. number of
// simultaneous outstanding operations on FDR InfiniBand.
//
// Paper shape: indirect-only approaches 100% as outstanding operations
// increase (the intermediate-buffer copies saturate the receiver CPU);
// direct-only stays far lower thanks to zero-copy; dynamic matches
// whichever mode it is operating in.
#include <iostream>

#include "support.hpp"

namespace exs::bench {
namespace {

void RunPart(const Args& args, const std::string& id,
             const std::string& description, bool halve_sends) {
  PrintBanner(std::cout, id, description, args);
  Table table({"outstanding recvs", "outstanding sends", "direct-only CPU%",
               "dynamic CPU%", "indirect-only CPU%"});
  // --quick keeps the sweep's endpoints and midpoint.
  const std::vector<std::uint32_t> sweep =
      args.quick ? std::vector<std::uint32_t>{1, 4, 16} : kOutstandingSweep;
  for (std::uint32_t k : sweep) {
    std::uint32_t sends = halve_sends ? k / 2 : k;
    if (sends == 0) continue;
    std::vector<std::string> row = {std::to_string(k), std::to_string(sends)};
    for (ProtocolMode mode :
         {ProtocolMode::kDirectOnly, ProtocolMode::kDynamic,
          ProtocolMode::kIndirectOnly}) {
      blast::BlastConfig c = FdrBaseConfig(args);
      c.outstanding_recvs = k;
      c.outstanding_sends = sends;
      c.stream.mode = mode;
      blast::BlastSummary s = blast::RunRepeated(c, args.runs);
      row.push_back(FormatMetric(s.receiver_cpu_percent, 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout, args.csv);
  std::cout << "\n";
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  RunPart(args, "Fig 10a",
          "receiver CPU usage vs outstanding ops (sends == recvs)",
          /*halve_sends=*/false);
  RunPart(args, "Fig 10b",
          "receiver CPU usage vs outstanding ops (sends == recvs/2)",
          /*halve_sends=*/true);
  return 0;
}
