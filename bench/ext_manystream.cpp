// Extension: many-stream server engine (acceptor + shared pool + engine).
//
// The classic socket allocates a private intermediate ring per incoming
// stream, so a server's receive memory grows O(streams).  The engine
// inverts that: one 2 MiB slab — the memory of just EIGHT classic
// 256 KiB single-stream rings — is carved into per-stream ring leases,
// and every accepted connection draws its indirect ring and its SRQ
// control slots from the shared pools.  This bench is the scaling proof:
// it sweeps 1 → 4096 concurrent streams over that fixed slab (the lease
// shrinks as the stream count grows) and shows that
//
//   * aggregate goodput stays at the link's plateau — ADVERTs still let
//     bulk bytes bypass the (now tiny) leased rings entirely, so shared
//     buffering costs nothing on the data path,
//   * the deficit-round-robin engine keeps completion times tight across
//     streams (fairness = slowest/fastest stream time), and
//   * pool occupancy never exceeds the slab, which the trace-replay
//     conservation checker re-verifies event-by-event at the counts
//     where tracing is affordable.
//
// Unlike the figure benches this cannot ride on blast (which drives one
// connected pair); it stands up the real server path: listen, N timed
// handshakes through the acceptor's admission gate, engine-dispatched
// receive completions, close, lease reclaim.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/spans.hpp"
#include "exs/engine/acceptor.hpp"
#include "exs/engine/progress_engine.hpp"
#include "exs/exs.hpp"
#include "exs/invariant_checker.hpp"
#include "support.hpp"

namespace exs::bench {
namespace {

/// The fixed receiver budget: eight classic single-stream rings' worth.
constexpr std::uint64_t kSingleStreamRing = 256 * kKiB;
constexpr std::uint64_t kSlabBytes = 8 * kSingleStreamRing;  // 2 MiB
constexpr std::uint32_t kCredits = 8;
constexpr std::uint16_t kPort = 4000;
/// Replaying every trace through the conservation checker is O(events);
/// affordable up to this stream count, skipped (not failed) above it.
constexpr std::uint32_t kMaxTracedStreams = 64;

constexpr std::uint32_t kFullSweep[] = {1, 8, 64, 256, 1024, 4096};
constexpr std::uint32_t kQuickSweep[] = {1, 64, 1024};

struct Point {
  std::uint32_t streams = 0;
  std::uint64_t lease_bytes = 0;
  std::uint64_t per_stream_bytes = 0;
  double goodput_mbps = 0.0;
  double link_fraction = 0.0;
  double fairness = 0.0;  ///< slowest finish / fastest finish (>= 1)
  std::uint64_t pool_peak_bytes = 0;
  std::uint64_t admission_refusals = 0;
  bool checker_ran = false;
  std::uint64_t checker_violations = 0;
};

/// One deterministic run: N clients connect, each streams `per_stream`
/// bytes to an engine-driven sink, then closes.  `failures` collects any
/// correctness problem (the bench exits nonzero if it is non-empty).
/// `span_collector`, when non-null, attaches causal chunk tracing to every
/// client and accepted socket (--latency-json); the collector schedules no
/// events, so the measured numbers are unchanged.
Point RunPoint(std::uint32_t streams, std::uint64_t aggregate_bytes,
               std::vector<std::string>* failures,
               spans::SpanCollector* span_collector = nullptr) {
  Point pt;
  pt.streams = streams;
  pt.lease_bytes = kSlabBytes / streams;
  // Floor per-stream bytes so the posting slices stay comfortably above
  // the receiver's per-completion CPU cost (1.5 us per event at 47 Gb/s
  // ≈ 9 KiB of wire time) — below that the bench measures the event path,
  // not the shared-pool engine.
  pt.per_stream_bytes = std::max<std::uint64_t>(aggregate_bytes / streams,
                                                256 * kKiB);
  const std::uint64_t per_stream = pt.per_stream_bytes;
  const bool trace = streams <= kMaxTracedStreams;
  auto fail = [&](const std::string& msg) {
    failures->push_back("streams=" + std::to_string(streams) + ": " + msg);
  };

  simnet::HardwareProfile profile = simnet::HardwareProfile::FdrInfiniBand();
  const double link_mbps = profile.link_bandwidth.bytes_per_second * 8.0 / 1e6;
  Simulation sim(profile, /*seed=*/1, /*carry_payload=*/false);
  engine::ProgressEngine eng(sim.fabric().node(1).cpu(),
                             engine::ProgressEngineOptions{});
  engine::AcceptorOptions aopts;
  // Watermarks at 1.0: the slab holds exactly `streams` leases and the
  // sweep wants all of them admitted (the hysteresis band is covered by
  // the engine unit tests).
  aopts.pool = {.pool_bytes = kSlabBytes,
                .lease_bytes = pt.lease_bytes,
                .high_watermark = 1.0,
                .low_watermark = 1.0};
  aopts.control_slots = streams * kCredits;
  engine::Acceptor acceptor(sim.device(1), eng, aopts);

  struct Rx {
    Socket* socket = nullptr;
    std::uint64_t received = 0;
    SimTime finish = 0;
    bool eof = false;
  };
  std::vector<std::unique_ptr<Rx>> rxs;
  std::unordered_map<Socket*, Rx*> rx_by_socket;
  // Payloads are timing-only (carry_payload = false), so every stream can
  // sink into ONE shared buffer — host memory stays O(per-stream), which
  // is what makes the 4096-stream point affordable to run.
  std::vector<std::uint8_t> sink(per_stream);

  StreamOptions sopts;
  sopts.credits = kCredits;
  sopts.intermediate_buffer_bytes = pt.lease_bytes;  // replaced by the lease
  StreamOptions copts;
  copts.credits = kCredits;
  // The clients' own (unused) receive rings: keep them token-sized so the
  // *server's* memory is what the sweep measures.
  copts.intermediate_buffer_bytes = 4 * kKiB;

  acceptor.Listen(
      sim.connections(), kPort, sopts,
      [&](Socket& s, const Event& ev) {
        auto it = rx_by_socket.find(&s);
        if (it == rx_by_socket.end()) return;
        Rx& rx = *it->second;
        if (ev.type == EventType::kRecvComplete) {
          rx.received += ev.bytes;
          if (rx.received >= per_stream && rx.finish == 0) {
            rx.finish = sim.Now();
          }
        }
        if (ev.type == EventType::kPeerClosed) rx.eof = true;
      },
      [&](Socket& s) {
        auto rx = std::make_unique<Rx>();
        rx->socket = &s;
        if (trace) s.EnableTracing(0);
        if (span_collector != nullptr) s.EnableChunkSpans(span_collector);
        s.Recv(sink.data(), per_stream, RecvFlags{.waitall = true});
        rx_by_socket.emplace(&s, rx.get());
        rxs.push_back(std::move(rx));
      });

  std::vector<Socket*> clients;
  int rejected = 0;
  for (std::uint32_t i = 0; i < streams; ++i) {
    clients.push_back(sim.Connect(0, kPort, SocketType::kStream, copts,
                                  [&](Socket* s) {
                                    if (s == nullptr) ++rejected;
                                  }));
    if (span_collector != nullptr) {
      clients.back()->EnableChunkSpans(span_collector);
    }
  }
  sim.Run();  // all handshakes settle
  if (rejected != 0) {
    fail("acceptor refused " + std::to_string(rejected) +
         " planned connections");
    return pt;
  }
  if (rxs.size() != streams) {
    fail("accepted " + std::to_string(rxs.size()) + " streams, expected " +
         std::to_string(streams));
    return pt;
  }

  // Timed section: every client pushes its whole stream, the engine
  // drains the receiver, and the clock stops at each stream's completion.
  // Posting is round-robin in kRounds slices so every stream stays
  // backlogged across the whole window — one Send per client would let
  // the HCA drain the streams sequentially in posting order, and the
  // fairness column would measure the posting loop, not the engine.
  std::vector<std::uint8_t> payload(per_stream);  // timing-only, shared
  constexpr std::uint64_t kRounds = 8;
  const std::uint64_t slice = (per_stream + kRounds - 1) / kRounds;
  const SimTime start = sim.Now();
  for (std::uint64_t off = 0; off < per_stream; off += slice) {
    const std::uint64_t len = std::min(slice, per_stream - off);
    for (Socket* c : clients) c->Send(payload.data() + off, len);
  }
  sim.Run();

  SimTime first = 0, last = 0;
  for (std::size_t i = 0; i < rxs.size(); ++i) {
    const Rx& rx = *rxs[i];
    if (rx.received != per_stream || rx.finish == 0) {
      fail("stream " + std::to_string(i) + " short delivery: " +
           std::to_string(rx.received) + "/" + std::to_string(per_stream));
      return pt;
    }
    if (first == 0 || rx.finish < first) first = rx.finish;
    if (rx.finish > last) last = rx.finish;
  }
  pt.goodput_mbps = ThroughputMbps(per_stream * streams, last - start);
  pt.link_fraction = link_mbps > 0.0 ? pt.goodput_mbps / link_mbps : 0.0;
  pt.fairness = first > start
                    ? static_cast<double>(last - start) /
                          static_cast<double>(first - start)
                    : 1.0;
  pt.pool_peak_bytes = acceptor.pool().PeakBytesLeased();
  pt.admission_refusals = acceptor.AdmissionRefusals();
  if (pt.pool_peak_bytes > kSlabBytes) {
    fail("pool peak " + std::to_string(pt.pool_peak_bytes) +
         " exceeds the slab");
  }

  if (trace) {
    std::vector<const TraceLog*> rx_logs;
    for (const auto& rx : rxs) rx_logs.push_back(&rx->socket->rx_trace());
    PoolCheckOptions popts;
    popts.pool_capacity_bytes = kSlabBytes;
    popts.lease_bytes = pt.lease_bytes;
    InvariantReport report = CheckPoolConservation(rx_logs, popts);
    pt.checker_ran = true;
    pt.checker_violations = report.violations.size();
    for (const std::string& v : report.violations) {
      fail("pool conservation: " + v);
    }
  }

  for (Socket* c : clients) c->Close();
  sim.Run();
  for (std::size_t i = 0; i < rxs.size(); ++i) {
    if (!rxs[i]->eof) {
      fail("stream " + std::to_string(i) + " never observed peer close");
    }
  }
  if (acceptor.pool().LeasesActive() != 0) {
    fail(std::to_string(acceptor.pool().LeasesActive()) +
         " ring leases still held after every stream closed");
  }
  return pt;
}

void WriteJson(const Args& args, const std::vector<Point>& points,
               std::uint64_t aggregate_bytes) {
  if (args.results_json_path.empty()) return;
  std::ostringstream json;
  json << "{\"bench\":\"ext_manystream\",\"schema_version\":"
       << kBenchJsonSchemaVersion << ",\"slab_bytes\":" << kSlabBytes
       << ",\"single_stream_ring_bytes\":" << kSingleStreamRing
       << ",\"aggregate_bytes\":" << aggregate_bytes
       << ",\"credits\":" << kCredits << ",\"profiles\":[";
  json << "{\"profile\":\"fdr\",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    if (i) json << ",";
    json << "{\"streams\":" << p.streams
         << ",\"lease_bytes\":" << p.lease_bytes
         << ",\"per_stream_bytes\":" << p.per_stream_bytes
         << ",\"goodput_mbps\":" << p.goodput_mbps
         << ",\"link_fraction\":" << p.link_fraction
         << ",\"fairness\":" << p.fairness
         << ",\"pool_peak_bytes\":" << p.pool_peak_bytes
         << ",\"admission_refusals\":" << p.admission_refusals
         << ",\"checker_ran\":" << (p.checker_ran ? "true" : "false")
         << ",\"checker_violations\":" << p.checker_violations << "}";
  }
  json << "]}]}";
  if (args.results_json_path == "-") {
    std::cout << json.str() << "\n";
    return;
  }
  std::ofstream file(args.results_json_path, std::ios::trunc);
  if (!file.good()) {
    std::cerr << "cannot write " << args.results_json_path << "\n";
    std::exit(2);
  }
  file << json.str() << "\n";
  std::cout << "results written to " << args.results_json_path << "\n";
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  PrintBanner(std::cout, "Ext: many-stream server engine (fdr)",
              "1..4096 streams through listen/accept into one fixed 2 MiB "
              "slab (= 8 classic 256 KiB rings), engine-dispatched sinks",
              args);
  std::cout << "(one deterministic run per point; --runs/--messages do not "
               "apply)\n\n";

  const std::uint64_t aggregate_bytes =
      args.quick ? 16 * exs::kMiB : 64 * exs::kMiB;
  std::vector<std::uint32_t> sweep;
  if (args.quick) {
    sweep.assign(std::begin(kQuickSweep), std::end(kQuickSweep));
  } else {
    sweep.assign(std::begin(kFullSweep), std::end(kFullSweep));
  }

  Table table({"streams", "lease", "per-stream", "goodput Mb/s", "% link",
               "fairness", "pool peak KiB", "refused", "pool check"});
  std::vector<Point> points;
  std::vector<std::string> failures;
  for (std::uint32_t streams : sweep) {
    Point p = RunPoint(streams, aggregate_bytes, &failures);
    points.push_back(p);
    std::string lease = p.lease_bytes >= exs::kKiB
                            ? std::to_string(p.lease_bytes / exs::kKiB) + " KiB"
                            : std::to_string(p.lease_bytes) + " B";
    table.AddRow({std::to_string(p.streams), lease,
                  std::to_string(p.per_stream_bytes / exs::kKiB) + " KiB",
                  FormatDouble(p.goodput_mbps, 0),
                  FormatDouble(p.link_fraction * 100.0, 1),
                  FormatDouble(p.fairness, 2) + "x",
                  std::to_string(p.pool_peak_bytes / exs::kKiB),
                  std::to_string(p.admission_refusals),
                  p.checker_ran ? (p.checker_violations == 0 ? "ok" : "FAIL")
                                : "skipped"});
  }
  table.Print(std::cout, args.csv);
  std::cout << "\n";
  WriteJson(args, points, aggregate_bytes);

  if (!args.latency_json_path.empty()) {
    // A dedicated span-instrumented run at the largest traced point.  The
    // collector must be declared before the point's Simulation (sockets
    // hold a raw pointer into it), which RunPoint's inner scope satisfies.
    constexpr std::uint32_t kLatencyStreams = kMaxTracedStreams;
    exs::spans::SpanCollector collector(/*seed=*/1, /*sample_period=*/1);
    Point p = RunPoint(kLatencyStreams, aggregate_bytes, &failures, &collector);
    std::ostringstream json;
    json << "{\"bench\":\"ext_manystream\",\"schema_version\":"
         << kBenchJsonSchemaVersion << ",\"streams\":" << kLatencyStreams
         << ",\"per_stream_bytes\":" << p.per_stream_bytes
         << ",\"sample_period\":" << collector.sample_period()
         << ",\"latency\":" << collector.BuildReport().ToJson() << "}";
    if (args.latency_json_path == "-") {
      std::cout << json.str() << "\n";
    } else {
      std::ofstream file(args.latency_json_path, std::ios::trunc);
      if (!file.good()) {
        std::cerr << "cannot write " << args.latency_json_path << "\n";
        return 2;
      }
      file << json.str() << "\n";
      std::cout << "latency breakdown written to " << args.latency_json_path
                << "\n";
    }
  }

  for (const std::string& f : failures) std::cerr << "FAIL " << f << "\n";
  return failures.empty() ? 0 : 1;
}
