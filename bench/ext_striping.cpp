// Extension: multi-rail striping (StreamOptions::rails).
//
// One stream, N queue pairs.  The shared link serialises bytes no matter
// how many rails carry them, so striping pays off exactly where the
// *per-work-request* costs dominate: the HCA's WR processing pipeline
// (send_wr_overhead, charged FIFO per queue pair) and the per-rail credit
// pool.  This bench drives that regime deliberately — WWI chunks are
// capped at 512 B, modelling a WR-rate-bound NIC — and sweeps message
// size × rails ∈ {1, 2, 4}:
//
//   * FDR: one rail is HCA-bound (~200 ns per WR against ~94 ns of wire
//     time per chunk); four rails overlap the WR overhead and push the
//     link back to being the bottleneck.
//   * WAN (48 ms RTT): one rail's 128-credit pool caps the bytes in
//     flight far below the bandwidth-delay product; each extra rail adds
//     a whole credit pool.
//
// The rails=1 column runs the identical chunked configuration, so the
// comparison isolates the striping mechanism itself.
#include <fstream>
#include <iostream>
#include <sstream>

#include "support.hpp"

namespace exs::bench {
namespace {

constexpr std::uint64_t kSizes[] = {4 * 1024, 16 * 1024, 64 * 1024,
                                    256 * 1024};
constexpr std::uint32_t kRails[] = {1, 2, 4};
constexpr std::uint64_t kChunk = 512;
constexpr std::uint32_t kOutstanding = 8;

struct Point {
  std::uint64_t size = 0;
  double mbps[3] = {0.0, 0.0, 0.0};  // rails 1, 2, 4
};

blast::BlastConfig BaseFor(const std::string& profile, const Args& args,
                           std::uint32_t rails) {
  blast::BlastConfig c =
      profile == "wan" ? WanBaseConfig(args) : FdrBaseConfig(args);
  c.outstanding_sends = kOutstanding;
  c.outstanding_recvs = kOutstanding;
  c.stream.max_wwi_chunk = kChunk;
  c.stream.rails = rails;
  return c;
}

std::vector<Point> RunProfile(const std::string& profile, const Args& args) {
  PrintBanner(std::cout, "Ext: multi-rail striping (" + profile + ")",
              "fixed sizes, 512 B WWI chunks, outstanding=8, "
              "rails 1 vs 2 vs 4 (adaptive scheduler)",
              args);
  Table table({"message size", "rails=1 Mb/s", "rails=2 Mb/s",
               "rails=4 Mb/s", "gain x2", "gain x4"});
  std::vector<Point> points;
  // --quick keeps a mid size plus the 64 KiB point CI gates on.
  const std::vector<std::uint64_t> sizes =
      args.quick ? std::vector<std::uint64_t>{16 * 1024, 64 * 1024}
                 : std::vector<std::uint64_t>(std::begin(kSizes),
                                              std::end(kSizes));
  for (std::uint64_t size : sizes) {
    Point p;
    p.size = size;
    std::string row_label = size >= kMiB
                                ? std::to_string(size / kMiB) + " MiB"
                                : std::to_string(size / 1024) + " KiB";
    std::vector<std::string> row = {row_label};
    for (std::size_t i = 0; i < 3; ++i) {
      blast::BlastConfig cfg = BaseFor(profile, args, kRails[i]);
      cfg.fixed_message_bytes = size;
      blast::BlastSummary s = blast::RunRepeated(cfg, args.runs);
      p.mbps[i] = s.throughput_mbps.mean;
      row.push_back(FormatMetric(s.throughput_mbps, 0));
    }
    row.push_back(FormatDouble(p.mbps[0] > 0 ? p.mbps[1] / p.mbps[0] : 0, 2) +
                  "x");
    row.push_back(FormatDouble(p.mbps[0] > 0 ? p.mbps[2] / p.mbps[0] : 0, 2) +
                  "x");
    table.AddRow(row);
    points.push_back(p);
  }
  table.Print(std::cout, args.csv);
  std::cout << "\n";
  return points;
}

void WriteJson(const Args& args,
               const std::vector<std::pair<std::string, std::vector<Point>>>&
                   profiles) {
  if (args.results_json_path.empty()) return;
  std::ostringstream json;
  json << "{\"bench\":\"ext_striping\",\"schema_version\":"
       << kBenchJsonSchemaVersion << ",\"runs\":" << args.runs
       << ",\"messages\":" << args.messages << ",\"chunk\":" << kChunk
       << ",\"outstanding\":" << kOutstanding << ",\"profiles\":[";
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    if (i) json << ",";
    json << "{\"profile\":\"" << profiles[i].first << "\",\"points\":[";
    const auto& points = profiles[i].second;
    for (std::size_t j = 0; j < points.size(); ++j) {
      const Point& p = points[j];
      if (j) json << ",";
      json << "{\"size\":" << p.size << ",\"rails1_mbps\":" << p.mbps[0]
           << ",\"rails2_mbps\":" << p.mbps[1]
           << ",\"rails4_mbps\":" << p.mbps[2] << ",\"gain2\":"
           << (p.mbps[0] > 0.0 ? p.mbps[1] / p.mbps[0] : 0.0) << ",\"gain4\":"
           << (p.mbps[0] > 0.0 ? p.mbps[2] / p.mbps[0] : 0.0) << "}";
    }
    json << "]}";
  }
  json << "]}";
  if (args.results_json_path == "-") {
    std::cout << json.str() << "\n";
    return;
  }
  std::ofstream file(args.results_json_path, std::ios::trunc);
  if (!file.good()) {
    std::cerr << "cannot write " << args.results_json_path << "\n";
    std::exit(2);
  }
  file << json.str() << "\n";
  std::cout << "results written to " << args.results_json_path << "\n";
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  std::vector<std::pair<std::string, std::vector<Point>>> results;
  results.emplace_back("fdr", RunProfile("fdr", args));
  results.emplace_back("wan", RunProfile("wan", args));
  WriteJson(args, results);
  return 0;
}
