// Ablation: how big must the hidden intermediate buffer be?
//
// On the LAN the buffer only needs to cover the copy pipeline, so
// indirect throughput saturates at modest sizes.  Over distance the buffer
// is the indirect path's flow-control window: sustained throughput is
// bounded by buffer_size / RTT until the buffer covers the
// bandwidth-delay product (~60 MB at 10 Gb/s x 48 ms), which is why the
// paper's distance results depend on buffering depth.
#include <iostream>

#include "support.hpp"

namespace exs::bench {
namespace {

void Run(const Args& args) {
  PrintBanner(std::cout, "Ablation: intermediate buffer size",
              "indirect-only throughput vs buffer capacity", args);
  Table table({"buffer size", "FDR LAN Mb/s", "10GbE + 48 ms RTT Mb/s"});
  for (std::uint64_t buf :
       {256 * kKiB, 1 * kMiB, 4 * kMiB, 8 * kMiB, 16 * kMiB, 64 * kMiB}) {
    std::string name = buf >= kMiB ? std::to_string(buf / kMiB) + " MiB"
                                   : std::to_string(buf / kKiB) + " KiB";
    std::vector<std::string> row = {name};
    for (bool wan : {false, true}) {
      blast::BlastConfig c = wan ? WanBaseConfig(args) : FdrBaseConfig(args);
      c.outstanding_recvs = 16;
      c.outstanding_sends = 16;
      c.stream.mode = ProtocolMode::kIndirectOnly;
      c.stream.intermediate_buffer_bytes = buf;
      if (wan) c.message_count = std::min<std::uint64_t>(args.messages, 150);
      blast::BlastSummary s = blast::RunRepeated(c, args.runs);
      row.push_back(FormatMetric(s.throughput_mbps, 0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout, args.csv);
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  Run(args);
  return 0;
}
