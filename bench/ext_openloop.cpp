// Extension: open-loop RPC/KV traffic at many-thousand-client scale.
//
// Every other bench in this directory is closed-loop: a sender pushes, a
// completion refills the window, and a slow receiver slows the offered
// load down with it.  Real front-end traffic is the opposite — arrivals
// come from *users*, on their own clock.  This bench drives the RPC/KV
// tier (src/exs/rpc) with a deterministic seeded open-loop generator
// (src/exs/loadgen): per-client Poisson or bursty on/off arrival
// processes, Zipf key popularity, a mixed value-size distribution, all in
// simulated time — so 65536 simulated clients and their full response
// latency distribution cost one process and zero wall-clock-dependent
// noise.
//
// Two arms:
//
//   * mux — N clients multiplexed over one shared width-8 QP pool
//     (PR "shared-QP stream multiplexing"), each issuing a fixed number
//     of requests from its own arrival process against one sharded KV
//     server.  Reported per point: exact nearest-rank p50/p99/p999
//     response latency, goodput, refusal rate (remote REFUSED + local
//     shed), timeout rate, stale responses, and lost == 0 enforced by
//     the RPC conservation checker.  A slab-pressure point shrinks the
//     server's value slab so a bounded slice of PUTs is refused — the
//     overload regime, exercised deliberately.
//
//   * churn — clients connect through the engine acceptor's admission
//     gate in waves, run a short RPC burst, and disconnect; the acceptor
//     pool is sized below the wave width so a bounded share of connects
//     is REFUSED at the handshake (admission refusal rate), and leases
//     reclaimed by departing clients re-admit the next wave.
//
// The simulation carries real payload bytes (the frame decoder reads
// them), unlike the timing-only figure benches.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/spans.hpp"
#include "exs/engine/acceptor.hpp"
#include "exs/engine/progress_engine.hpp"
#include "exs/exs.hpp"
#include "exs/invariant_checker.hpp"
#include "exs/loadgen/arrivals.hpp"
#include "exs/loadgen/workload.hpp"
#include "exs/mux.hpp"
#include "exs/rpc/kv_server.hpp"
#include "exs/rpc/rpc_client.hpp"
#include "support.hpp"

namespace exs::bench {
namespace {

constexpr std::uint32_t kPoolWidth = 8;
constexpr std::uint32_t kRequestsPerClient = 4;
/// Aggregate arrival spacing: one RPC every ~12 us across the whole
/// client population (~83K req/s offered), independent of N — so every
/// point offers the same load and N sweeps *concurrency*, not rate.  The
/// rate sits below the server event loop's capacity (each request costs
/// a few ~1.5 us completion dispatches on the server CPU), the classic
/// open-loop operating point: queues form and drain, a bounded tail
/// times out, and the generator never slows down.  Both ends busy-poll
/// their completion queues, as a latency-sensitive KV front end would —
/// under event notification the 8 us wake-up per completion caps the
/// server near 35K req/s (the ext_busy_poll ablation quantifies this).
constexpr SimDuration kAggregateGap = Microseconds(12);
constexpr SimDuration kDeadline = Milliseconds(4);
constexpr std::uint16_t kChurnPort = 4100;

struct PointSpec {
  const char* arm = "mux";        ///< "mux" | "churn"
  const char* arrivals = "poisson";  ///< "poisson" | "onoff"
  std::uint32_t clients = 0;
  /// Value-slab slots on the server; small values force PUT refusals
  /// (the slab-pressure point).
  std::uint32_t slab_slots = 4096;
};

struct Point {
  PointSpec spec;
  std::uint64_t issued = 0;
  std::uint64_t answered = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t refused = 0;       ///< remote REFUSED + local shed
  std::uint64_t shed_local = 0;
  std::uint64_t stale = 0;
  std::uint64_t lost = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double goodput_mbps = 0.0;      ///< response bytes over the active span
  double rpc_per_sec = 0.0;
  double timeout_rate = 0.0;
  double refusal_rate = 0.0;
  std::uint64_t qps_created = 0;
  std::uint64_t admission_attempts = 0;  ///< churn arm only
  std::uint64_t admission_refusals = 0;
  bool checker_ran = false;
  std::uint64_t checker_violations = 0;
};

/// Per-client open-loop driver: owns the arrival process and the request
/// train, self-schedules on the simulator's timer wheel, and issues RPCs
/// against its RpcClient until the train is exhausted.
struct Driver {
  rpc::RpcClient* rpc = nullptr;
  loadgen::WorkloadGenerator workload;
  /// Added to the first gap only.  Bursty sources need it: every on/off
  /// train opens in an ON period, so a population starting at one instant
  /// would fire N synchronized bursts — a uniform draw over the on+off
  /// cycle gives each source an independent phase, the stationary regime.
  SimDuration initial_phase = 0;
  Rng arrival_rng;
  loadgen::PoissonProcess poisson;
  loadgen::OnOffBurstProcess onoff;
  bool bursty = false;
  std::uint32_t remaining = 0;

  Driver(loadgen::WorkloadGenerator gen, std::uint64_t arrival_seed,
         SimDuration mean_gap, bool is_bursty, std::uint32_t requests)
      : workload(std::move(gen)),
        arrival_rng(arrival_seed),
        poisson(mean_gap),
        onoff([mean_gap] {
          // Same long-run rate as the Poisson arm, delivered in bursts:
          // per-arrival average gap = burst_ia + mean_off / burst_size.
          loadgen::OnOffBurstProcess::Options o;
          o.burst_interarrival = mean_gap / 8;
          o.mean_burst_size = 16.0;
          o.mean_off = 14 * mean_gap;
          return o;
        }()),
        bursty(is_bursty),
        remaining(requests) {}

  SimDuration NextGap() {
    return bursty ? onoff.Next(arrival_rng) : poisson.Next(arrival_rng);
  }
};

void ScheduleArrivals(Simulation& sim, Driver* d, SimTime* last_done) {
  if (d->remaining == 0) return;
  const SimDuration gap = d->initial_phase + d->NextGap();
  d->initial_phase = 0;
  sim.scheduler().ScheduleAfter(gap, [&sim, d, last_done] {
    --d->remaining;
    const loadgen::WorkloadGenerator::Request req = d->workload.Next();
    std::uint8_t value[4096];  // >= the largest workload size class
    if (req.op == rpc::Op::kPut) {
      loadgen::WorkloadGenerator::FillValue(req.key, value, req.value_len);
    }
    d->rpc->Call(req.op, req.key,
                 req.op == rpc::Op::kPut ? value : nullptr, req.value_len,
                 [&sim, last_done](const rpc::RpcClient::Result&) {
                   if (sim.Now() > *last_done) *last_done = sim.Now();
                 });
    ScheduleArrivals(sim, d, last_done);
  });
}

/// Fold the per-client ledgers and latency vectors into the point report
/// and run the conservation checker.
void Summarise(Point* pt, const std::vector<const rpc::RpcLedger*>& ledgers,
               std::vector<SimDuration>* latencies,
               const rpc::RpcServerCounters& server, SimTime start,
               SimTime last_done, std::uint64_t response_bytes,
               std::vector<std::string>* failures,
               const std::string& where) {
  for (const rpc::RpcLedger* l : ledgers) {
    pt->issued += l->issued();
    pt->answered += l->Count(rpc::Outcome::kAnswered);
    pt->timed_out += l->Count(rpc::Outcome::kTimedOut);
    pt->refused += l->Count(rpc::Outcome::kRefused);
    pt->shed_local += l->shed_local;
    pt->stale += l->stale_responses;
    pt->lost += l->Count(rpc::Outcome::kPending);
  }
  if (pt->issued != 0) {
    pt->timeout_rate =
        static_cast<double>(pt->timed_out) / static_cast<double>(pt->issued);
    pt->refusal_rate =
        static_cast<double>(pt->refused) / static_cast<double>(pt->issued);
  }
  if (!latencies->empty()) {
    const spans::StageStats stats = spans::Summarise(latencies);
    pt->p50_us = static_cast<double>(stats.p50_ps) / 1e6;
    pt->p99_us = static_cast<double>(stats.p99_ps) / 1e6;
    pt->p999_us = static_cast<double>(stats.p999_ps) / 1e6;
  }
  if (last_done > start) {
    pt->goodput_mbps = ThroughputMbps(response_bytes, last_done - start);
    pt->rpc_per_sec = static_cast<double>(pt->answered) * 1e12 /
                      static_cast<double>(last_done - start);
  }

  InvariantReport report = CheckRpcConservation(ledgers, &server);
  pt->checker_ran = true;
  pt->checker_violations = report.violations.size();
  for (const std::string& v : report.violations) {
    failures->push_back(where + ": rpc conservation: " + v);
  }
  if (pt->lost != 0) {
    failures->push_back(where + ": " + std::to_string(pt->lost) +
                        " requests lost (no outcome at quiescence)");
  }
}

/// The scale arm: `spec.clients` muxed streams over one width-8 QP pool,
/// one sharded KV server, per-client open-loop arrival processes.
Point RunMuxPoint(const PointSpec& spec, std::uint64_t seed,
                  std::vector<std::string>* failures) {
  Point pt;
  pt.spec = spec;
  const std::string where = std::string("mux/") + spec.arrivals +
                            "/clients=" + std::to_string(spec.clients);

  Simulation sim(simnet::HardwareProfile::FdrInfiniBand().WithBusyPolling(),
                 seed, /*carry_payload=*/true);
  MuxOptions mopts;
  mopts.width = kPoolWidth;
  MuxGroup g0(sim.device(0), mopts);
  MuxGroup g1(sim.device(1), mopts);
  MuxGroup::Connect(g0, g1);

  // Token-sized rings: the whole point of the mux tier is that per-stream
  // state stays tiny at 64Ki streams.
  StreamOptions sopts;
  sopts.credits = 8;
  sopts.intermediate_buffer_bytes = 2 * kKiB;
  sopts.max_wwi_chunk = 2 * kKiB;

  rpc::KvServerOptions kv_opts;
  kv_opts.slab_slots = spec.slab_slots;
  kv_opts.recv_chunk_bytes = 512;
  rpc::KvServer server(kv_opts);

  rpc::RpcClientOptions copts;
  copts.default_deadline = kDeadline;
  copts.max_outstanding = 16;
  copts.recv_chunk_bytes = 512;
  copts.deliver_values = false;  // timing the responses, not reading them

  loadgen::WorkloadOptions wl;
  wl.key_space = 1024;

  const SimDuration mean_gap =
      kAggregateGap * static_cast<SimDuration>(spec.clients);
  const bool bursty = std::string(spec.arrivals) == "onoff";
  std::vector<std::unique_ptr<rpc::RpcClient>> rpcs;
  std::vector<std::unique_ptr<Driver>> drivers;
  rpcs.reserve(spec.clients);
  drivers.reserve(spec.clients);
  SimTime last_done = 0;
  for (std::uint32_t c = 0; c < spec.clients; ++c) {
    auto [a, b] = sim.CreateMuxedPair(g0, g1, sopts);
    server.Attach(*b);
    rpcs.push_back(std::make_unique<rpc::RpcClient>(*a, sim.scheduler(),
                                                    copts));
    const std::uint64_t client_tag = 0x6f70656e6c6f6f70ULL + c;  // "openloop"
    drivers.push_back(std::make_unique<Driver>(
        loadgen::WorkloadGenerator(wl, SplitMix64(seed ^ client_tag).Next()),
        SplitMix64(seed ^ ~client_tag).Next(), mean_gap, bursty,
        kRequestsPerClient));
    Driver* d = drivers.back().get();
    d->rpc = rpcs.back().get();
    if (bursty) {
      // One on+off cycle = mean_burst_size * burst_ia + mean_off =
      // 16 * mean_gap / 8 + 14 * mean_gap.
      d->initial_phase = static_cast<SimDuration>(
          d->arrival_rng.NextDouble() *
          static_cast<double>(16 * mean_gap));
    }
  }
  // Settle the setup transient before starting the measured section.
  // Attaching N connections enqueues N initial-Recv posts (a few us of
  // CPU work each) at t=0; unlike steady-state work this backlog scales
  // with the *population*, not the offered rate, and at 64Ki clients it
  // would stall the server's event loop for hundreds of simulated
  // milliseconds — every early arrival would time out behind it.  A real
  // deployment amortises connection setup over seconds of ramp-up.
  sim.Run();
  const SimTime start = sim.Now();
  for (auto& d : drivers) ScheduleArrivals(sim, d.get(), &last_done);
  sim.Run();

  pt.qps_created = sim.device(0).QueuePairsCreated();
  if (pt.qps_created != kPoolWidth) {
    failures->push_back(where + ": expected " + std::to_string(kPoolWidth) +
                        " queue pairs, got " + std::to_string(pt.qps_created));
  }

  std::vector<const rpc::RpcLedger*> ledgers;
  std::vector<SimDuration> latencies;
  std::uint64_t response_bytes = 0;
  for (const auto& r : rpcs) {
    ledgers.push_back(&r->ledger());
    latencies.insert(latencies.end(), r->answer_latencies().begin(),
                     r->answer_latencies().end());
    response_bytes += r->response_bytes();
    if (r->framing_failed()) {
      failures->push_back(where + ": client frame decoder failed");
    }
  }
  Summarise(&pt, ledgers, &latencies, server.counters(), start, last_done,
            response_bytes, failures, where);

  InvariantReport mux_report = CheckMuxGroupPair(g0, g1);
  for (const std::string& v : mux_report.violations) {
    failures->push_back(where + ": mux conservation: " + v);
  }
  pt.checker_violations += mux_report.violations.size();
  return pt;
}

/// The churn arm: waves of clients through the engine acceptor's
/// admission gate; the pool under-provisions the wave so a bounded share
/// of connects is refused, and departures re-admit the next wave.
///
/// Admission is gated by ring leases only: leases are reclaimed the
/// moment the incoming stream hits EOF, so a departing client re-admits
/// a queued one.  Control-slot reservations, in contrast, live as long
/// as the accepted socket object (a closed peer can still be sent to),
/// and the bench never destroys server sockets mid-run — so the slot
/// pool gets full-population headroom or every post-first-wave connect
/// would be refused on slots alone.
Point RunChurnPoint(std::uint32_t clients, std::uint64_t seed,
                    std::vector<std::string>* failures) {
  Point pt;
  pt.spec.arm = "churn";
  pt.spec.clients = clients;
  const std::string where = "churn/clients=" + std::to_string(clients);

  Simulation sim(simnet::HardwareProfile::FdrInfiniBand().WithBusyPolling(),
                 seed, /*carry_payload=*/true);
  engine::ProgressEngine eng(sim.fabric().node(1).cpu(),
                             engine::ProgressEngineOptions{});
  // Admit at most half a wave's worth of concurrent rings: the rest of
  // each wave must be REFUSED at the handshake until departures free
  // leases.
  const std::uint32_t admit = std::max<std::uint32_t>(clients / 4, 8);
  engine::AcceptorOptions aopts;
  aopts.pool = {.pool_bytes = static_cast<std::uint64_t>(admit) * 2 * kKiB,
                .lease_bytes = 2 * kKiB,
                .high_watermark = 1.0,
                .low_watermark = 1.0};
  aopts.control_slots = clients * 8;
  engine::Acceptor acceptor(sim.device(1), eng, aopts);

  rpc::KvServerOptions kv_opts;
  kv_opts.recv_chunk_bytes = 512;
  rpc::KvServer server(kv_opts);

  StreamOptions sopts;
  sopts.credits = 8;
  sopts.intermediate_buffer_bytes = 2 * kKiB;
  acceptor.Listen(
      sim.connections(), kChurnPort, sopts,
      [&server](Socket& s, const Event& ev) { server.HandleEvent(s, ev); },
      [&server](Socket& s) { server.OnAccept(s); });

  StreamOptions copts;
  copts.credits = 8;
  copts.intermediate_buffer_bytes = 2 * kKiB;

  rpc::RpcClientOptions rpc_opts;
  rpc_opts.default_deadline = kDeadline;
  rpc_opts.recv_chunk_bytes = 512;

  loadgen::WorkloadOptions wl;
  wl.key_space = 256;

  std::vector<std::unique_ptr<rpc::RpcClient>> rpcs;
  std::vector<std::unique_ptr<Driver>> drivers;
  SimTime last_done = 0;
  const SimTime start = sim.Now();

  // Waves of `admit` attempted connects, spaced so the previous wave's
  // survivors have disconnected (their RPC train is ~4 x mean gap, far
  // under the spacing) and freed their leases.
  const std::uint32_t wave = admit;
  const SimDuration wave_gap = Milliseconds(4);
  const SimDuration mean_gap = Milliseconds(1);
  std::uint32_t launched = 0;
  for (std::uint32_t w = 0; launched < clients; ++w) {
    const std::uint32_t in_wave = std::min(wave, clients - launched);
    sim.scheduler().ScheduleAt(
        start + static_cast<SimDuration>(w) * wave_gap, [&, in_wave] {
          for (std::uint32_t i = 0; i < in_wave; ++i) {
            ++pt.admission_attempts;
            const std::uint64_t tag =
                0x636875726eULL + pt.admission_attempts;  // "churn"
            sim.Connect(
                0, kChurnPort, SocketType::kStream, copts,
                [&, tag](Socket* s) {
                  if (s == nullptr) {
                    ++pt.admission_refusals;
                    return;
                  }
                  rpcs.push_back(std::make_unique<rpc::RpcClient>(
                      *s, sim.scheduler(), rpc_opts));
                  drivers.push_back(std::make_unique<Driver>(
                      loadgen::WorkloadGenerator(
                          wl, SplitMix64(seed ^ tag).Next()),
                      SplitMix64(seed ^ ~tag).Next(), mean_gap,
                      /*is_bursty=*/false, kRequestsPerClient));
                  Driver* d = drivers.back().get();
                  d->rpc = rpcs.back().get();
                  rpc::RpcClient* rpc = rpcs.back().get();
                  ScheduleArrivals(sim, d, &last_done);
                  // Disconnect once the train is issued and resolved:
                  // poll on the timer wheel rather than threading a
                  // completion count through every response callback.
                  auto poll = std::make_shared<std::function<void()>>();
                  *poll = [d, rpc, &sim, poll] {
                    if (d->remaining == 0 && rpc->pending_calls() == 0) {
                      rpc->CloseSend();
                      return;
                    }
                    sim.scheduler().ScheduleAfter(Microseconds(50), *poll);
                  };
                  sim.scheduler().ScheduleAfter(Microseconds(50), *poll);
                });
          }
        });
    launched += in_wave;
  }
  sim.Run();

  std::vector<const rpc::RpcLedger*> ledgers;
  std::vector<SimDuration> latencies;
  std::uint64_t response_bytes = 0;
  for (const auto& r : rpcs) {
    ledgers.push_back(&r->ledger());
    latencies.insert(latencies.end(), r->answer_latencies().begin(),
                     r->answer_latencies().end());
    response_bytes += r->response_bytes();
  }
  Summarise(&pt, ledgers, &latencies, server.counters(), start, last_done,
            response_bytes, failures, where);

  if (pt.admission_refusals == 0) {
    failures->push_back(where +
                        ": expected a bounded nonzero admission refusal "
                        "share, got zero (pool not under pressure)");
  }
  if (pt.admission_refusals >= pt.admission_attempts) {
    failures->push_back(where + ": every connect refused");
  }
  if (server.stats().connections_closed != rpcs.size()) {
    failures->push_back(
        where + ": server reaped " +
        std::to_string(server.stats().connections_closed) + " of " +
        std::to_string(rpcs.size()) + " connections");
  }
  return pt;
}

void WriteJson(const Args& args, const std::vector<Point>& points) {
  if (args.results_json_path.empty()) return;
  std::ostringstream json;
  json << "{\"bench\":\"ext_openloop\",\"schema_version\":"
       << kBenchJsonSchemaVersion
       << ",\"requests_per_client\":" << kRequestsPerClient
       << ",\"aggregate_gap_ps\":" << kAggregateGap
       << ",\"deadline_ps\":" << kDeadline << ",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    if (i) json << ",";
    json << "{\"arm\":\"" << p.spec.arm << "\",\"arrivals\":\""
         << p.spec.arrivals << "\",\"clients\":" << p.spec.clients
         << ",\"slab_slots\":" << p.spec.slab_slots
         << ",\"issued\":" << p.issued << ",\"answered\":" << p.answered
         << ",\"timed_out\":" << p.timed_out << ",\"refused\":" << p.refused
         << ",\"shed_local\":" << p.shed_local << ",\"stale\":" << p.stale
         << ",\"lost\":" << p.lost << ",\"p50_us\":" << p.p50_us
         << ",\"p99_us\":" << p.p99_us << ",\"p999_us\":" << p.p999_us
         << ",\"goodput_mbps\":" << p.goodput_mbps
         << ",\"rpc_per_sec\":" << p.rpc_per_sec
         << ",\"timeout_rate\":" << p.timeout_rate
         << ",\"refusal_rate\":" << p.refusal_rate
         << ",\"qps_created\":" << p.qps_created
         << ",\"admission_attempts\":" << p.admission_attempts
         << ",\"admission_refusals\":" << p.admission_refusals
         << ",\"checker_ran\":" << (p.checker_ran ? "true" : "false")
         << ",\"checker_violations\":" << p.checker_violations << "}";
  }
  json << "]}";
  if (args.results_json_path == "-") {
    std::cout << json.str() << "\n";
    return;
  }
  std::ofstream file(args.results_json_path, std::ios::trunc);
  if (!file.good()) {
    std::cerr << "cannot write " << args.results_json_path << "\n";
    std::exit(2);
  }
  file << json.str() << "\n";
  std::cout << "results written to " << args.results_json_path << "\n";
}

}  // namespace
}  // namespace exs::bench

int main(int argc, char** argv) {
  using namespace exs::bench;
  Args args = Args::Parse(argc, argv);
  PrintBanner(std::cout, "Ext: open-loop RPC/KV traffic (fdr)",
              "seeded per-client arrival processes (Poisson / bursty "
              "on/off), Zipf keys, mixed value sizes, muxed transports + "
              "acceptor churn",
              args);
  std::cout << "(one deterministic run per point; --runs/--messages do not "
               "apply)\n\n";

  std::vector<PointSpec> specs;
  if (args.quick) {
    specs = {{"mux", "poisson", 1024},
             {"mux", "onoff", 1024},
             {"mux", "poisson", 1024, /*slab_slots=*/64},
             {"mux", "poisson", 4096}};
  } else {
    specs = {{"mux", "poisson", 4096},
             {"mux", "onoff", 4096},
             {"mux", "poisson", 4096, /*slab_slots=*/64},
             {"mux", "poisson", 16384},
             {"mux", "poisson", 65536}};
  }
  const std::uint32_t churn_clients = args.quick ? 256 : 512;

  Table table({"arm", "arrivals", "clients", "slab", "p50 us", "p99 us",
               "p999 us", "goodput Mb/s", "timeout %", "refusal %",
               "admission ref", "check"});
  std::vector<Point> points;
  std::vector<std::string> failures;
  auto add_row = [&](const Point& p) {
    points.push_back(p);
    table.AddRow(
        {p.spec.arm, p.spec.arrivals, std::to_string(p.spec.clients),
         std::to_string(p.spec.slab_slots), FormatDouble(p.p50_us, 1),
         FormatDouble(p.p99_us, 1), FormatDouble(p.p999_us, 1),
         FormatDouble(p.goodput_mbps, 0),
         FormatDouble(p.timeout_rate * 100.0, 2),
         FormatDouble(p.refusal_rate * 100.0, 2),
         std::to_string(p.admission_refusals),
         p.checker_ran ? (p.checker_violations == 0 ? "ok" : "FAIL")
                       : "skipped"});
  };
  for (const PointSpec& spec : specs) {
    add_row(RunMuxPoint(spec, /*seed=*/1, &failures));
  }
  add_row(RunChurnPoint(churn_clients, /*seed=*/1, &failures));
  table.Print(std::cout, args.csv);
  std::cout << "\n";
  WriteJson(args, points);

  for (const std::string& f : failures) std::cerr << "FAIL " << f << "\n";
  return failures.empty() ? 0 : 1;
}
