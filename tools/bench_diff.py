#!/usr/bin/env python3
"""Compare a fresh BENCH_streams.json against the committed baseline.

Usage: tools/bench_diff.py BASELINE FRESH [--tolerance 0.10]

The simulator is deterministic, so on an unchanged tree the two files are
byte-identical and this differ is a no-op.  Its job is to catch
*unintentional* regressions: every numeric leaf must stay within
--tolerance (relative) of the baseline, every non-numeric leaf must match
exactly, and nothing the baseline records may go missing.  A deliberate
performance change shows up here too — regenerate the baseline with
bench/run_all.sh and commit it alongside the change.

Fields present only in the fresh results are *additive* (a bench started
exporting a new statistic, e.g. a p999 percentile) and are reported as
notices, not failures — the schema_version gate below is the tripwire for
incompatible shape changes, so a pure addition must not force a version
bump across every baseline.

Schema versions gate everything: if the suite or any per-bench
`schema_version` differs, the comparison refuses to run (exit 3) rather
than produce misleading per-field noise — regenerate the baseline instead.

Exit codes: 0 in tolerance, 1 regression, 2 usage/IO, 3 schema mismatch.
"""

import argparse
import json
import sys


def walk(path, base, fresh, tolerance, problems, notices):
    """Append a human-readable problem line for every mismatched leaf."""
    if type(base) is not type(fresh) and not (
        isinstance(base, (int, float)) and isinstance(fresh, (int, float))
    ):
        problems.append(f"{path}: type changed "
                        f"({type(base).__name__} -> {type(fresh).__name__})")
        return
    if isinstance(base, dict):
        for key in base.keys() | fresh.keys():
            if key not in base:
                # Additive: a bench grew a new exported field.  Surface it
                # so the baseline gets regenerated eventually, but do not
                # fail the diff over data the baseline never measured.
                notices.append(f"{path}.{key}: new field (not in baseline)")
            elif key not in fresh:
                problems.append(f"{path}.{key}: missing from fresh results")
            else:
                walk(f"{path}.{key}", base[key], fresh[key], tolerance,
                     problems, notices)
    elif isinstance(base, list):
        if len(base) != len(fresh):
            problems.append(f"{path}: length {len(base)} -> {len(fresh)}")
            return
        for i, (b, f) in enumerate(zip(base, fresh)):
            walk(f"{path}[{i}]", b, f, tolerance, problems, notices)
    elif isinstance(base, bool) or base is None or isinstance(base, str):
        if base != fresh:
            problems.append(f"{path}: {base!r} -> {fresh!r}")
    else:  # numeric leaf
        if base == fresh:
            return
        if base == 0:
            problems.append(f"{path}: 0 -> {fresh}")
            return
        rel = abs(fresh - base) / abs(base)
        if rel > tolerance:
            problems.append(
                f"{path}: {base} -> {fresh} ({rel * 100:+.1f}%, "
                f"tolerance {tolerance * 100:.0f}%)")


def schema_versions(doc):
    """(suite_version, {bench_name: version, ...}) of a merged results file."""
    per_bench = {}
    for section in ("benches", "latency"):
        for entry in doc.get(section, []):
            key = f"{section}:{entry.get('bench', '?')}"
            per_bench[key] = entry.get("schema_version")
    return doc.get("schema_version"), per_bench


def main():
    parser = argparse.ArgumentParser(
        description="diff merged bench results against a baseline")
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max relative drift per numeric leaf (0.10)")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            base = json.load(f)
        with open(args.fresh) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: {e}", file=sys.stderr)
        return 2

    base_suite, base_benches = schema_versions(base)
    fresh_suite, fresh_benches = schema_versions(fresh)
    if base_suite != fresh_suite or base_benches != fresh_benches:
        print(f"bench_diff: schema mismatch — baseline suite={base_suite} "
              f"{base_benches}, fresh suite={fresh_suite} {fresh_benches}",
              file=sys.stderr)
        print("regenerate the baseline: bench/run_all.sh --quick && "
              "git add BENCH_streams.json", file=sys.stderr)
        return 3

    problems = []
    notices = []
    walk("$", base, fresh, args.tolerance, problems, notices)
    for n in notices:
        print(f"bench_diff: note: {n} — regenerate the baseline to record it")
    if problems:
        print(f"bench_diff: {len(problems)} field(s) out of tolerance:")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"bench_diff: fresh results within {args.tolerance * 100:.0f}% "
          f"of baseline ({args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
