// latency_report — end-to-end latency provenance for one simulated run.
//
// Drives a deterministic stream workload with causal chunk tracing
// enabled (common/spans.hpp), then prints the per-stage latency
// attribution table: p50/p99/p999/max per stage, end-to-end, and the
// per-rail head-of-line-blocking view.  Every number is an exact
// nearest-rank percentile over integer picoseconds, so the same flags
// always render the same bytes — the output is a determinism witness as
// much as a report.
//
//   ./latency_report                          # default: 200 mixed sends, FDR
//   ./latency_report --mode indirect --size 2K
//   ./latency_report --rails 4 --messages 500 --json report.json
//   ./latency_report --timeline-json flow.json   # Perfetto, with flow arrows
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "exs/invariant_checker.hpp"
#include "exs/simulation.hpp"

namespace {

using namespace exs;  // NOLINT

[[noreturn]] void Usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --profile fdr|iwarp|wan   fabric profile (fdr)\n"
      "  --mode dynamic|direct|indirect   transfer policy (dynamic)\n"
      "  --rails N        stripe across N queue pairs (1)\n"
      "  --messages N     messages to send (200)\n"
      "  --size BYTES     fixed message size (0 = seed-derived mix)\n"
      "  --max BYTES      cap for the seed-derived mix (32K)\n"
      "  --buffer BYTES   intermediate buffer capacity (64K)\n"
      "  --coalesce       enable small-send coalescing\n"
      "  --seed N         simulation seed (1)\n"
      "  --sample N       keep ~1 in N chunks (1 = every chunk)\n"
      "  --json FILE      also write the report as JSON ('-' for stdout)\n"
      "  --timeline-json FILE  write a Chrome trace-event timeline with\n"
      "                        per-chunk flow events ('-' for stdout)\n",
      argv0);
  std::exit(2);
}

std::uint64_t ParseSize(const std::string& s) {
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) {
    std::fprintf(stderr, "bad size: %s\n", s.c_str());
    std::exit(2);
  }
  std::string suffix = end;
  if (suffix == "K" || suffix == "k") {
    return static_cast<std::uint64_t>(v * 1024);
  }
  if (suffix == "M" || suffix == "m") {
    return static_cast<std::uint64_t>(v * 1024 * 1024);
  }
  if (!suffix.empty()) {
    std::fprintf(stderr, "bad size suffix: %s\n", suffix.c_str());
    std::exit(2);
  }
  return static_cast<std::uint64_t>(v);
}

/// SplitMix64 finalizer — the message-size mix must be a pure function of
/// (seed, index) so reruns are bit-identical.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void WriteOut(const std::string& path, const std::string& payload,
              const char* what) {
  if (path == "-") {
    std::fputs(payload.c_str(), stdout);
    std::fputc('\n', stdout);
    return;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s to '%s'\n", what, path.c_str());
    std::exit(1);
  }
  out << payload << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string profile_name = "fdr";
  std::string mode_name = "dynamic";
  std::uint32_t rails = 1;
  std::uint64_t messages = 200;
  std::uint64_t fixed_size = 0;
  std::uint64_t max_size = 32 * 1024;
  std::uint64_t buffer_bytes = 64 * 1024;
  bool coalesce = false;
  std::uint64_t seed = 1;
  std::uint64_t sample = 1;
  std::string json_path;
  std::string timeline_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--profile") {
      profile_name = next();
    } else if (arg == "--mode") {
      mode_name = next();
    } else if (arg == "--rails") {
      rails = static_cast<std::uint32_t>(std::strtoull(next().c_str(),
                                                       nullptr, 10));
    } else if (arg == "--messages") {
      messages = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--size") {
      fixed_size = ParseSize(next());
    } else if (arg == "--max") {
      max_size = ParseSize(next());
    } else if (arg == "--buffer") {
      buffer_bytes = ParseSize(next());
    } else if (arg == "--coalesce") {
      coalesce = true;
    } else if (arg == "--seed") {
      seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--sample") {
      sample = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--timeline-json") {
      timeline_path = next();
    } else {
      Usage(argv[0]);
    }
  }
  if (messages == 0 || sample == 0) Usage(argv[0]);

  simnet::HardwareProfile profile = simnet::HardwareProfile::FdrInfiniBand();
  if (profile_name == "iwarp") {
    profile = simnet::HardwareProfile::Iwarp10G();
  } else if (profile_name == "wan") {
    profile = simnet::HardwareProfile::RoCE10GWithDelay(Milliseconds(24));
  } else if (profile_name != "fdr") {
    Usage(argv[0]);
  }

  StreamOptions opts;
  if (mode_name == "direct") {
    opts.mode = ProtocolMode::kDirectOnly;
  } else if (mode_name == "indirect") {
    opts.mode = ProtocolMode::kIndirectOnly;
  } else if (mode_name != "dynamic") {
    Usage(argv[0]);
  }
  opts.rails = rails;
  opts.intermediate_buffer_bytes = buffer_bytes;
  opts.coalesce.enabled = coalesce;

  Simulation sim(profile, seed, /*carry_payload=*/false);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();
  spans::SpanCollector& spans = sim.EnableChunkSpans(sample);

  // Seed-derived message sizes; both sides derive the same sequence, so a
  // WAITALL receive pairs with each send exactly.
  std::vector<std::uint64_t> sizes(messages);
  for (std::uint64_t i = 0; i < messages; ++i) {
    sizes[i] = fixed_size != 0 ? fixed_size : 1 + Mix(seed ^ i) % max_size;
  }
  std::uint64_t total = 0;
  for (std::uint64_t s : sizes) total += s;

  std::vector<std::uint8_t> tx_buf(fixed_size != 0 ? fixed_size : max_size);
  std::vector<std::uint8_t> rx_buf(tx_buf.size());
  for (std::uint64_t i = 0; i < messages; ++i) {
    client->Send(tx_buf.data(), sizes[i]);
    server->Recv(rx_buf.data(), sizes[i], RecvFlags{.waitall = true});
  }
  client->Close();
  sim.Run();

  // The conservation rule is the report's warrant: refuse to print numbers
  // the checker cannot reconcile.
  InvariantReport check = CheckConnection(*client, *server);
  check.Merge(CheckSpanConservation(spans));
  if (!check.ok()) {
    std::fprintf(stderr, "%s\n", check.Summary().c_str());
    return 1;
  }
  for (const auto& w : check.warnings) {
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  }

  spans::LatencyReport report = spans.BuildReport();
  std::printf("profile=%s mode=%s rails=%u messages=%llu bytes=%llu\n",
              profile_name.c_str(), mode_name.c_str(), rails,
              static_cast<unsigned long long>(messages),
              static_cast<unsigned long long>(total));
  std::fputs(report.ToText().c_str(), stdout);

  if (!json_path.empty()) {
    WriteOut(json_path, report.ToJson(), "report JSON");
  }
  if (!timeline_path.empty()) {
    WriteOut(timeline_path, sim.TimelineJson(), "timeline JSON");
  }
  return 0;
}
