// blast — the paper's measurement tool as a command-line program.
//
// Runs a one-directional blast between the two simulated nodes and prints
// throughput (Eq. 1), time per message, CPU usage on both sides, and the
// dynamic protocol's transfer statistics.  All the knobs of the paper's
// evaluation are flags:
//
//   ./blast --protocol dynamic --sends 8 --recvs 16 --messages 1000
//   ./blast --protocol indirect --profile wan --size 128K
//   ./blast --profile fdr --mean 256K --max 4M --runs 10 --csv
//
// Sizes accept K/M suffixes (KiB/MiB).  With --runs > 1, prints
// mean ± 95% confidence interval over seeded repetitions.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "blast/blast.hpp"

namespace {

using namespace exs;         // NOLINT
using namespace exs::blast;  // NOLINT

[[noreturn]] void Usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --protocol dynamic|direct|indirect|rendezvous\n"
      "                   transfer policy (dynamic)\n"
      "  --profile fdr|qdr|roce|iwarp|wan     fabric profile (fdr)\n"
      "  --type stream|seqpacket              socket type (stream)\n"
      "  --sends N        outstanding send operations (4)\n"
      "  --recvs N        outstanding receive operations (8)\n"
      "  --messages N     messages per run (1000)\n"
      "  --size BYTES     fixed message size (default: exponential)\n"
      "  --mean BYTES     exponential mean (256K)\n"
      "  --max BYTES      maximum message size (4M)\n"
      "  --buffer BYTES   intermediate buffer capacity (8M)\n"
      "  --credits N      pre-posted receive pool (128)\n"
      "  --runs N         repetitions with distinct seeds (1)\n"
      "  --seed N         base seed (1)\n"
      "  --delay MS       extra one-way delay, any profile (0)\n"
      "  --verify         carry and verify real payload bytes\n"
      "  --csv            machine-readable one-line output\n"
      "  --quick          small smoke run (150 messages)\n"
      "  --metrics-json FILE   write a metrics snapshot of the first run\n"
      "                        (JSON; '-' for stdout)\n"
      "  --timeline-json FILE  write a Chrome trace-event timeline of the\n"
      "                        first run, loadable in Perfetto ('-' stdout)\n",
      argv0);
  std::exit(2);
}

std::uint64_t ParseSize(const std::string& s) {
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) {
    std::fprintf(stderr, "bad size: %s\n", s.c_str());
    std::exit(2);
  }
  std::string suffix = end;
  if (suffix == "K" || suffix == "k") return static_cast<std::uint64_t>(v * 1024);
  if (suffix == "M" || suffix == "m") {
    return static_cast<std::uint64_t>(v * 1024 * 1024);
  }
  if (suffix == "G" || suffix == "g") {
    return static_cast<std::uint64_t>(v * 1024 * 1024 * 1024);
  }
  if (!suffix.empty()) {
    std::fprintf(stderr, "bad size suffix: %s\n", suffix.c_str());
    std::exit(2);
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
  BlastConfig config;
  config.message_count = 1000;
  config.outstanding_sends = 4;
  config.outstanding_recvs = 8;
  int runs = 1;
  bool csv = false;
  double extra_delay_ms = 0;
  std::string profile = "fdr";

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both "--flag value" and "--flag=value".
    std::string inline_value;
    bool has_inline_value = false;
    if (std::size_t eq = arg.find('='); eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline_value = true;
    }
    auto value = [&]() -> std::string {
      if (has_inline_value) return inline_value;
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--protocol") {
      std::string v = value();
      if (v == "dynamic") config.stream.mode = ProtocolMode::kDynamic;
      else if (v == "direct") config.stream.mode = ProtocolMode::kDirectOnly;
      else if (v == "indirect") {
        config.stream.mode = ProtocolMode::kIndirectOnly;
      } else if (v == "rendezvous") {
        config.stream.mode = ProtocolMode::kReadRendezvous;
      } else Usage(argv[0]);
    } else if (arg == "--profile") {
      profile = value();
    } else if (arg == "--type") {
      std::string v = value();
      if (v == "stream") config.socket_type = SocketType::kStream;
      else if (v == "seqpacket") config.socket_type = SocketType::kSeqPacket;
      else Usage(argv[0]);
    } else if (arg == "--sends") {
      config.outstanding_sends = static_cast<std::uint32_t>(
          std::stoul(value()));
    } else if (arg == "--recvs") {
      config.outstanding_recvs = static_cast<std::uint32_t>(
          std::stoul(value()));
    } else if (arg == "--messages") {
      config.message_count = std::stoull(value());
    } else if (arg == "--size") {
      config.fixed_message_bytes = ParseSize(value());
    } else if (arg == "--mean") {
      config.exponential_mean_bytes = static_cast<double>(ParseSize(value()));
    } else if (arg == "--max") {
      config.max_message_bytes = ParseSize(value());
    } else if (arg == "--buffer") {
      config.stream.intermediate_buffer_bytes = ParseSize(value());
    } else if (arg == "--credits") {
      config.stream.credits = static_cast<std::uint32_t>(
          std::stoul(value()));
    } else if (arg == "--runs") {
      runs = std::stoi(value());
    } else if (arg == "--seed") {
      config.seed = std::stoull(value());
    } else if (arg == "--delay") {
      extra_delay_ms = std::stod(value());
    } else if (arg == "--verify") {
      config.carry_payload = true;
      config.verify_data = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--quick") {
      config.message_count = 150;
    } else if (arg == "--metrics-json") {
      config.metrics_json_path = value();
    } else if (arg == "--timeline-json") {
      config.timeline_json_path = value();
    } else {
      Usage(argv[0]);
    }
  }

  if (profile == "fdr") {
    config.profile = simnet::HardwareProfile::FdrInfiniBand();
  } else if (profile == "qdr") {
    config.profile = simnet::HardwareProfile::QdrInfiniBand();
  } else if (profile == "roce") {
    config.profile = simnet::HardwareProfile::RoCE10G();
  } else if (profile == "iwarp") {
    config.profile = simnet::HardwareProfile::Iwarp10G();
  } else if (profile == "wan") {
    config.profile = simnet::HardwareProfile::RoCE10GWithDelay(
        Milliseconds(24));
  } else {
    Usage(argv[0]);
  }
  if (extra_delay_ms > 0) {
    config.profile.netem.extra_delay = Milliseconds(extra_delay_ms);
  }
  if (config.fixed_message_bytes != 0) {
    config.max_message_bytes = config.fixed_message_bytes;
    if (config.recv_buffer_bytes < config.fixed_message_bytes) {
      config.recv_buffer_bytes = config.fixed_message_bytes;
    }
  }

  BlastSummary summary = RunRepeated(config, runs);

  if (csv) {
    std::printf(
        "protocol,profile,sends,recvs,messages,throughput_mbps,ci95,"
        "time_per_msg_us,recv_cpu_pct,send_cpu_pct,direct_ratio,"
        "mode_switches\n");
    std::printf("%s,%s,%u,%u,%llu,%.1f,%.1f,%.2f,%.1f,%.1f,%.3f,%.1f\n",
                ToString(config.stream.mode), config.profile.name.c_str(),
                config.outstanding_sends, config.outstanding_recvs,
                static_cast<unsigned long long>(config.message_count),
                summary.throughput_mbps.mean, summary.throughput_mbps.ci95,
                summary.time_per_message_us.mean,
                summary.receiver_cpu_percent.mean,
                summary.sender_cpu_percent.mean, summary.direct_ratio.mean,
                summary.mode_switches.mean);
    return 0;
  }

  const BlastResult& first = summary.runs.front();
  std::printf("blast: %llu messages, %s protocol, %s profile\n",
              static_cast<unsigned long long>(config.message_count),
              ToString(config.stream.mode), config.profile.name.c_str());
  std::printf("  outstanding: %u sends / %u recvs; buffer %llu KiB; "
              "credits %u\n",
              config.outstanding_sends, config.outstanding_recvs,
              static_cast<unsigned long long>(
                  config.stream.intermediate_buffer_bytes / 1024),
              config.stream.credits);
  std::printf("  throughput        %.1f ± %.1f Mb/s (%d run%s)\n",
              summary.throughput_mbps.mean, summary.throughput_mbps.ci95,
              runs, runs == 1 ? "" : "s");
  std::printf("  time per message  %.2f ± %.2f us\n",
              summary.time_per_message_us.mean,
              summary.time_per_message_us.ci95);
  std::printf("  receiver CPU      %.1f ± %.1f %%\n",
              summary.receiver_cpu_percent.mean,
              summary.receiver_cpu_percent.ci95);
  std::printf("  sender CPU        %.1f ± %.1f %%\n",
              summary.sender_cpu_percent.mean,
              summary.sender_cpu_percent.ci95);
  std::printf("  direct:total      %.3f ± %.3f (switches %.1f ± %.1f)\n",
              summary.direct_ratio.mean, summary.direct_ratio.ci95,
              summary.mode_switches.mean, summary.mode_switches.ci95);
  if (first.data_verified) std::printf("  payload verified byte-for-byte\n");
  return 0;
}
