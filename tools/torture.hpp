// exs_torture — seeded fault-injection torture harness for the EXS stack.
//
// One torture run = one seed: the seed fixes the hardware schedule, the
// workload (message sizes, WAITALL mix, posting interleave) AND the fault
// plan (simnet/faults.hpp), so any failure reproduces byte-for-byte from
// its corpus line alone.  After the run the TraceLogs are replayed through
// the invariant checker (exs/invariant_checker.hpp) and the delivered
// bytes verified against the position-dependent pattern — a run passes
// only if the stream is intact AND every invariant of the safety theorem
// held throughout.
//
// Failing configurations encode to one `key=value` line (a replay-corpus
// entry, see docs/FAULTS.md); `exs_torture --replay corpus.txt` re-runs
// each entry twice and compares trace fingerprints to prove determinism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exs/types.hpp"
#include "simnet/profile.hpp"

namespace exs::torture {

struct TortureConfig {
  std::uint64_t seed = 1;
  /// Hardware profile: "fdr", "iwarp", or "wan" (RoCE through 24 ms of
  /// emulated one-way delay, the paper's distance experiment).
  std::string profile = "fdr";
  /// Protocol mode: "dynamic", "direct", "indirect", "coalesce" (the
  /// dynamic algorithm with StreamOptions::coalesce armed — staging buffer
  /// plus ACK piggyback), "stripe" (multi-rail striping: the seed derives
  /// rails ∈ {2,4}, an inner mode of dynamic or indirect, and the rail
  /// scheduler, unless `rails`/`sched` pin them below) for stream
  /// sockets, "seqpacket" (message socket), or "many" (the server engine:
  /// N clients connect through the acceptor into one shared buffer pool /
  /// SRQ slot pool and the progress engine drives every accepted socket;
  /// the seed derives N from {4,8,16} unless `streams` pins it, and the
  /// checker additionally replays pool conservation across all streams),
  /// "kill" (the recovery equivalence harness: twin runs of one
  /// seed-derived workload variant — classic dynamic, coalesce, or
  /// striped — one unkilled and one with a fatal QP kill landing
  /// mid-transfer followed by Socket::ResumePair; the run passes only if
  /// both deliver the byte-identical stream, proven by comparing FNV
  /// fingerprints of the delivered payloads), or "mux" (the shared-QP
  /// multiplexing tier: N streams ride a MuxGroup slot pool of `width`
  /// queue pairs per endpoint — the seed derives N ∈ {4,8,16}, width ∈
  /// {1,2,4} and the per-stream window unless `streams`/`width` pin
  /// them — and the checker additionally replays the mux conservation
  /// laws: group data accounting, per-stream sequence continuity, and
  /// per-slot credit conservation), or "batch" (the hot-path batching
  /// stack armed in full — coalescing with sendv aggregation, doorbell
  /// batching, and the MR registration cache — driven through vectored
  /// Sendv postings; the seed derives the batch depth ∈ {2,4,8} and the
  /// Sendv arity ∈ {1,2,4} unless `batch`/`arity` pin them, and the
  /// checker additionally audits per-rail gather-byte and doorbell
  /// conservation), or "rpc" (the RPC/KV tier: N RpcClients over a
  /// shared MuxGroup slot pool drive one sharded KV server through
  /// seeded Zipf/size-mixed request trains under a tight deadline, a
  /// small pipeline bound, and a starved value slab — the seed derives
  /// N ∈ {4,8,16}, width ∈ {1,2,4} and the train length unless
  /// `streams`/`width` pin them, and the checker additionally replays
  /// the RPC conservation law: exactly one terminal outcome per issued
  /// call, stale responses never double-resolving, server counters
  /// agreeing with the client ledgers).
  std::string mode = "dynamic";
  /// "stripe" mode only: rail count (0 = derive {2,4} from the seed).
  std::uint32_t rails = 0;
  /// "stripe" mode only: "rr" | "adaptive" ("" = derive from the seed).
  std::string sched;
  /// "many"/"mux"/"rpc" modes: concurrent stream/client count (0 =
  /// derive from the seed).
  std::uint32_t streams = 0;
  /// "mux"/"rpc" modes: slot queue pairs per MuxGroup (0 = derive
  /// {1,2,4} from the seed).  Encoded to a corpus entry only when
  /// pinned, so older corpus files round-trip byte-identically.
  std::uint32_t width = 0;
  /// "kill" mode only: when (in permille of the fault horizon) the fatal
  /// QP kill lands (0 = derive from the seed).  Encoded to a corpus entry
  /// only when pinned, so older corpus files round-trip byte-identically.
  std::uint32_t kill_permille = 0;
  /// "batch" mode only: WRs per doorbell ring (0 = derive {2,4,8} from
  /// the seed).  Encoded to a corpus entry only when pinned, so older
  /// corpus files round-trip byte-identically.
  std::uint32_t batch = 0;
  /// "batch" mode only: slices per vectored Sendv posting (0 = derive
  /// {1,2,4} from the seed).  Encoded only when pinned, like `batch`.
  std::uint32_t arity = 0;
  std::uint64_t total_bytes = 192 * 1024;
  std::uint64_t max_message = 24 * 1024;
  std::uint64_t buffer_bytes = 64 * 1024;
  /// TraceLog capacity per direction (0 = unbounded).
  std::size_t trace_capacity = 0;
  bool enable_faults = true;
  /// Test-only protocol sabotage (StreamOptions::Sabotage); the run is
  /// then *expected* to fail and the checker must say why.
  bool sabotage_stale_adverts = false;
  bool sabotage_advert_gate = false;
  /// Fingerprint recorded when this entry was written to a corpus (0 =
  /// unknown); replay compares against it.
  std::uint64_t expect_fingerprint = 0;
};

struct TortureResult {
  /// Stream intact, run quiescent, and no invariant violations.
  bool ok = false;
  /// Integrity/progress/quiescence failures observed while driving.
  std::vector<std::string> failures;
  /// Violations reported by the trace invariant checker specifically.
  std::vector<std::string> checker_violations;
  /// Non-fatal checker caveats (truncated traces, undelivered sampled
  /// chunks): the run still passes, but the caveats are printed so a
  /// partially validated run never masquerades as a fully validated one.
  std::vector<std::string> checker_warnings;
  std::uint64_t fingerprint = 0;    ///< ConnectionFingerprint of the run
  std::uint64_t events_checked = 0;
  std::uint64_t faults_armed = 0;
  std::uint64_t faults_applied = 0;
  /// "kill" mode only: fatal kills that took effect and the ResumePair
  /// invocations that recovered from them (zero in every other mode).
  std::uint64_t kills_applied = 0;
  std::uint64_t resumes = 0;

  std::string Describe() const;
};

/// Map a profile name ("fdr" | "iwarp" | "wan") to its HardwareProfile.
/// Throws exs::InvariantViolation on an unknown name.
simnet::HardwareProfile ResolveProfile(const std::string& name);

/// True if `mode` names a valid protocol mode for TortureConfig.
bool ValidMode(const std::string& mode);

/// Execute one fully deterministic torture run.
TortureResult RunTorture(const TortureConfig& cfg);

/// One-line `key=value` corpus encoding of a configuration.
std::string EncodeCorpusEntry(const TortureConfig& cfg);

/// Parse a corpus line; returns false (and leaves `out` untouched) on a
/// malformed line.  Blank lines and lines starting with '#' are rejected
/// here and skipped by LoadCorpus.
bool DecodeCorpusEntry(const std::string& line, TortureConfig* out);

/// Load every entry of a corpus file (skipping blanks and '#' comments).
/// Throws exs::InvariantViolation if the file cannot be read or a
/// non-comment line is malformed.
std::vector<TortureConfig> LoadCorpus(const std::string& path);

/// Append one entry (with its fingerprint) to a corpus file.
void AppendCorpusEntry(const std::string& path, const TortureConfig& cfg,
                       std::uint64_t fingerprint);

}  // namespace exs::torture
