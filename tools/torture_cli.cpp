// exs_torture — seeded fault-injection sweep / replay driver.
//
//   ./torture --seeds 1..200                        # default sweep
//   ./torture --seeds 1..50 --profiles wan --modes dynamic,seqpacket
//   ./torture --seeds 1..50 --corpus fails.txt      # record failing seeds
//   ./torture --replay fails.txt                    # byte-for-byte replay
//   ./torture --seeds 1..20 --sabotage stale --expect-failure
//
// Every failing configuration is printed as a corpus line; `--replay` runs
// each corpus entry twice and insists the trace fingerprints match each
// other (and the recorded one, when present) — the determinism proof.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "torture.hpp"

namespace {

using exs::torture::TortureConfig;
using exs::torture::TortureResult;

[[noreturn]] void Usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --seeds A..B     inclusive seed range (1..20)\n"
      "  --seed N         single seed (same as --seeds N..N)\n"
      "  --profiles CSV   subset of fdr,iwarp,wan (all)\n"
      "  --modes CSV      subset of dynamic,direct,indirect,coalesce,\n"
      "                   stripe,seqpacket,many,kill,mux,batch,rpc\n"
      "                   (dynamic,direct,indirect,coalesce,stripe,kill,\n"
      "                   mux,batch,rpc)\n"
      "  --kill-permille N     kill mode: pin when the fatal QP kill\n"
      "                   lands, in permille of the fault horizon\n"
      "                   (0 = derive from the seed)\n"
      "  --batch N        batch mode: pin the WRs per doorbell ring\n"
      "                   (0 = derive 2, 4 or 8 from the seed)\n"
      "  --arity N        batch mode: pin the slices per Sendv posting\n"
      "                   (0 = derive 1, 2 or 4 from the seed)\n"
      "  --rails N        stripe mode: pin the rail count (0 = derive\n"
      "                   2 or 4 from the seed)\n"
      "  --sched S        stripe mode: pin the rail scheduler, rr or\n"
      "                   adaptive (default: derive from the seed)\n"
      "  --streams N      many/mux/rpc modes: pin the concurrent stream\n"
      "                   count (0 = derive 4, 8 or 16 from the seed)\n"
      "  --width N        mux/rpc modes: pin the slot queue pairs per\n"
      "                   group (0 = derive 1, 2 or 4 from the seed)\n"
      "  --total BYTES    stream bytes per run (192K; K/M suffixes ok)\n"
      "  --max-message BYTES   largest send/recv posting (24K)\n"
      "  --buffer BYTES   intermediate buffer capacity (64K)\n"
      "  --trace-capacity N    TraceLog ring capacity, 0 = unbounded (0)\n"
      "  --no-faults      drive the workload without the fault plan\n"
      "  --corpus FILE    append each failing configuration to FILE\n"
      "  --replay FILE    ignore sweep flags; re-run every corpus entry\n"
      "                   twice and compare trace fingerprints\n"
      "  --sabotage stale|gate    enable a protocol sabotage hook\n"
      "  --expect-failure exit 0 only if the invariant checker fired at\n"
      "                   least once (proves the checker catches the bug)\n"
      "  --verbose        print every run, not just failures\n",
      argv0);
  std::exit(2);
}

std::uint64_t ParseSize(const std::string& s) {
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) {
    std::fprintf(stderr, "bad size: %s\n", s.c_str());
    std::exit(2);
  }
  std::string suffix = end;
  if (suffix == "K" || suffix == "k") {
    return static_cast<std::uint64_t>(v * 1024);
  }
  if (suffix == "M" || suffix == "m") {
    return static_cast<std::uint64_t>(v * 1024 * 1024);
  }
  if (!suffix.empty()) {
    std::fprintf(stderr, "bad size suffix: %s\n", suffix.c_str());
    std::exit(2);
  }
  return static_cast<std::uint64_t>(v);
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool ParseSeedRange(const std::string& s, std::uint64_t* lo,
                    std::uint64_t* hi) {
  std::size_t dots = s.find("..");
  try {
    if (dots == std::string::npos) {
      *lo = *hi = std::stoull(s);
    } else {
      *lo = std::stoull(s.substr(0, dots));
      *hi = std::stoull(s.substr(dots + 2));
    }
  } catch (const std::exception&) {
    return false;
  }
  return *lo <= *hi;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed_lo = 1, seed_hi = 20;
  std::vector<std::string> profiles = {"fdr", "iwarp", "wan"};
  std::vector<std::string> modes = {"dynamic", "direct", "indirect",
                                    "coalesce", "stripe", "kill", "mux",
                                    "batch", "rpc"};
  TortureConfig base;
  std::string corpus_path;
  std::string replay_path;
  bool expect_failure = false;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--seeds" || arg == "--seed") {
      if (!ParseSeedRange(next(), &seed_lo, &seed_hi)) Usage(argv[0]);
    } else if (arg == "--profiles") {
      profiles = SplitCsv(next());
    } else if (arg == "--modes") {
      modes = SplitCsv(next());
    } else if (arg == "--total") {
      base.total_bytes = ParseSize(next());
    } else if (arg == "--max-message") {
      base.max_message = ParseSize(next());
    } else if (arg == "--buffer") {
      base.buffer_bytes = ParseSize(next());
    } else if (arg == "--batch") {
      base.batch = static_cast<std::uint32_t>(ParseSize(next()));
    } else if (arg == "--arity") {
      base.arity = static_cast<std::uint32_t>(ParseSize(next()));
    } else if (arg == "--rails") {
      base.rails = static_cast<std::uint32_t>(ParseSize(next()));
    } else if (arg == "--sched") {
      base.sched = next();
      if (base.sched != "rr" && base.sched != "adaptive") Usage(argv[0]);
    } else if (arg == "--streams") {
      base.streams = static_cast<std::uint32_t>(ParseSize(next()));
    } else if (arg == "--width") {
      base.width = static_cast<std::uint32_t>(ParseSize(next()));
    } else if (arg == "--kill-permille") {
      base.kill_permille = static_cast<std::uint32_t>(ParseSize(next()));
    } else if (arg == "--trace-capacity") {
      base.trace_capacity = static_cast<std::size_t>(ParseSize(next()));
    } else if (arg == "--no-faults") {
      base.enable_faults = false;
    } else if (arg == "--corpus") {
      corpus_path = next();
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--sabotage") {
      std::string which = next();
      if (which == "stale") {
        base.sabotage_stale_adverts = true;
      } else if (which == "gate") {
        base.sabotage_advert_gate = true;
      } else {
        Usage(argv[0]);
      }
    } else if (arg == "--expect-failure") {
      expect_failure = true;
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else {
      Usage(argv[0]);
    }
  }

  std::uint64_t runs = 0, failures = 0, checker_hits = 0;
  std::uint64_t replay_mismatches = 0;

  auto run_one = [&](const TortureConfig& cfg) -> TortureResult {
    TortureResult res = exs::torture::RunTorture(cfg);
    ++runs;
    if (!res.checker_violations.empty()) ++checker_hits;
    if (!res.ok) {
      ++failures;
      std::printf("FAIL %s\n  %s\n", exs::torture::EncodeCorpusEntry(cfg).c_str(),
                  res.Describe().c_str());
      if (!corpus_path.empty()) {
        exs::torture::AppendCorpusEntry(corpus_path, cfg, res.fingerprint);
      }
    } else if (verbose) {
      std::printf("ok   %s\n  %s\n", exs::torture::EncodeCorpusEntry(cfg).c_str(),
                  res.Describe().c_str());
    }
    return res;
  };

  try {
    if (!replay_path.empty()) {
      // Replay mode: determinism is part of the contract, so each entry
      // runs twice and the fingerprints must agree.
      for (const TortureConfig& cfg : exs::torture::LoadCorpus(replay_path)) {
        TortureResult first = run_one(cfg);
        TortureResult second = exs::torture::RunTorture(cfg);
        ++runs;
        if (second.fingerprint != first.fingerprint) {
          ++failures;
          ++replay_mismatches;
          std::printf(
              "FAIL %s\n  nondeterministic replay: fp 0x%llx vs 0x%llx\n",
              exs::torture::EncodeCorpusEntry(cfg).c_str(),
              static_cast<unsigned long long>(first.fingerprint),
              static_cast<unsigned long long>(second.fingerprint));
        } else if (cfg.expect_fingerprint != 0 &&
                   first.fingerprint != cfg.expect_fingerprint) {
          ++failures;
          ++replay_mismatches;
          std::printf(
              "FAIL %s\n  fingerprint drift from recorded corpus entry: "
              "0x%llx (recorded 0x%llx)\n",
              exs::torture::EncodeCorpusEntry(cfg).c_str(),
              static_cast<unsigned long long>(first.fingerprint),
              static_cast<unsigned long long>(cfg.expect_fingerprint));
        }
      }
    } else {
      for (const std::string& profile : profiles) {
        for (const std::string& mode : modes) {
          if (!exs::torture::ValidMode(mode)) Usage(argv[0]);
          for (std::uint64_t seed = seed_lo; seed <= seed_hi; ++seed) {
            TortureConfig cfg = base;
            cfg.seed = seed;
            cfg.profile = profile;
            cfg.mode = mode;
            run_one(cfg);
          }
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  }

  std::printf("torture: %llu runs, %llu failures, %llu checker hits\n",
              static_cast<unsigned long long>(runs),
              static_cast<unsigned long long>(failures),
              static_cast<unsigned long long>(checker_hits));
  if (expect_failure) {
    if (checker_hits == 0) {
      std::printf("expected the invariant checker to fire, but it never did\n");
      return 1;
    }
    return replay_mismatches == 0 ? 0 : 1;
  }
  return failures == 0 ? 0 : 1;
}
