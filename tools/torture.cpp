#include "torture.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/pattern.hpp"
#include "common/rng.hpp"
#include "exs/engine/acceptor.hpp"
#include "exs/engine/progress_engine.hpp"
#include "exs/exs.hpp"
#include "exs/invariant_checker.hpp"
#include "exs/loadgen/workload.hpp"
#include "exs/mux.hpp"
#include "exs/rpc/kv_server.hpp"
#include "exs/rpc/rpc_client.hpp"
#include "simnet/faults.hpp"
#include "verbs/types.hpp"

namespace exs::torture {

namespace {

/// Rough upper bound on when protocol activity happens, used to place
/// fault windows.  Overshoot is harmless (a window opening after the run
/// quiesces perturbs nothing); undershoot just concentrates faults early.
SimDuration EstimateHorizon(const simnet::HardwareProfile& p,
                            std::uint64_t total_bytes) {
  SimDuration wire = p.link_bandwidth.TransmissionTime(total_bytes);
  SimDuration rtt = 2 * (p.propagation + p.netem.extra_delay);
  return wire * 8 + rtt * 16 + Microseconds(500);
}

struct DriveOutcome {
  bool aborted = false;  ///< a runtime invariant check threw mid-run
};

}  // namespace

simnet::HardwareProfile ResolveProfile(const std::string& name) {
  if (name == "fdr") return simnet::HardwareProfile::FdrInfiniBand();
  if (name == "iwarp") return simnet::HardwareProfile::Iwarp10G();
  if (name == "wan") {
    // The paper's distance experiment: RoCE through 48 ms of emulated RTT.
    return simnet::HardwareProfile::RoCE10GWithDelay(Milliseconds(24));
  }
  EXS_CHECK_MSG(false, "unknown profile '" << name
                                           << "' (expected fdr|iwarp|wan)");
  return simnet::HardwareProfile::FdrInfiniBand();  // unreachable
}

bool ValidMode(const std::string& mode) {
  return mode == "dynamic" || mode == "direct" || mode == "indirect" ||
         mode == "coalesce" || mode == "stripe" || mode == "seqpacket" ||
         mode == "many" || mode == "kill" || mode == "mux" ||
         mode == "batch" || mode == "rpc";
}

std::string TortureResult::Describe() const {
  std::ostringstream oss;
  oss << (ok ? "PASS" : "FAIL") << " fp=0x" << std::hex << fingerprint
      << std::dec << " events=" << events_checked
      << " faults=" << faults_applied << "/" << faults_armed;
  if (kills_applied != 0 || resumes != 0) {
    oss << " kills=" << kills_applied << " resumes=" << resumes;
  }
  for (const auto& f : failures) oss << "\n    failure: " << f;
  for (const auto& v : checker_violations) oss << "\n    invariant: " << v;
  for (const auto& w : checker_warnings) oss << "\n    warning: " << w;
  return oss.str();
}

namespace {

/// "many" mode: N clients through the server engine (acceptor + shared
/// buffer pool + SRQ slot pool + progress engine) instead of one
/// ConnectPair.  The per-pair invariant checks run on every stream, and
/// CheckPoolConservation replays all receiver traces against the shared
/// slab — the O(pool) memory claim, validated under a seeded interleave.
TortureResult RunManyTorture(const TortureConfig& cfg) {
  TortureResult res;
  simnet::HardwareProfile profile = ResolveProfile(cfg.profile);

  // Seed-derived configuration (domain-separated like "stripe"): the
  // stream count and whether the inner mode forces every byte through the
  // leased rings (indirect) or lets ADVERTs bypass them (dynamic).
  std::uint64_t bits = SplitMix64(cfg.seed ^ 0x9a11e57e4e61e4ull).Next();
  const std::uint32_t streams =
      cfg.streams != 0 ? cfg.streams
                       : (bits % 3 == 0 ? 4u : bits % 3 == 1 ? 8u : 16u);
  EXS_CHECK_MSG(streams > 0, "many mode needs at least one stream");

  StreamOptions opts;
  opts.credits = 8;
  opts.intermediate_buffer_bytes = cfg.buffer_bytes;  // the lease size
  if ((bits & 8) != 0) opts.mode = ProtocolMode::kIndirectOnly;
  opts.sabotage.accept_stale_adverts = cfg.sabotage_stale_adverts;
  opts.sabotage.advertise_without_gate = cfg.sabotage_advert_gate;

  std::uint64_t per_stream = cfg.total_bytes / streams;
  if (per_stream < 4096) per_stream = 4096;
  const std::uint64_t max_message =
      cfg.max_message < per_stream ? cfg.max_message : per_stream;
  const SimDuration horizon =
      EstimateHorizon(profile, per_stream * streams);

  // Causal chunk tracing, sampling every chunk: the stage-attribution
  // conservation rule below replays it.  Declared before the simulation so
  // the sockets holding a pointer to it die first.
  spans::SpanCollector span_collector(cfg.seed, /*sample_period=*/1);
  Simulation sim(profile, cfg.seed, /*carry_payload=*/true);
  engine::ProgressEngine engine(sim.fabric().node(1).cpu(),
                                engine::ProgressEngineOptions{});
  engine::AcceptorOptions aopts;
  // Slab sized for exactly `streams` leases; watermarks at 1.0 so the
  // torture run admits every planned stream (the hysteresis band is
  // exercised by the unit tests and the manystream bench).
  aopts.pool = {.pool_bytes = streams * cfg.buffer_bytes,
                .lease_bytes = cfg.buffer_bytes,
                .high_watermark = 1.0,
                .low_watermark = 1.0};
  aopts.control_slots = streams * opts.credits;
  engine::Acceptor acceptor(sim.device(1), engine, aopts);

  struct Rx {
    Socket* socket = nullptr;
    std::vector<std::uint8_t> data;
    std::uint64_t received = 0;
    bool eof = false;
  };
  std::vector<std::unique_ptr<Rx>> rxs;
  std::unordered_map<Socket*, Rx*> rx_by_socket;
  std::uint64_t total_received = 0;

  // Destroyed before `sim` (reverse declaration order), same rule as the
  // single-pair driver.
  simnet::FaultInjector injector(sim.fabric());

  acceptor.Listen(
      sim.connections(), 4000, opts,
      [&](Socket& s, const Event& ev) {
        auto it = rx_by_socket.find(&s);
        if (it == rx_by_socket.end()) return;
        if (ev.type == EventType::kRecvComplete) {
          it->second->received += ev.bytes;
          total_received += ev.bytes;
        }
        if (ev.type == EventType::kPeerClosed) it->second->eof = true;
      },
      [&](Socket& s) {
        auto rx = std::make_unique<Rx>();
        rx->socket = &s;
        rx->data.resize(per_stream);
        s.EnableTracing(cfg.trace_capacity);
        s.EnableChunkSpans(&span_collector);
        s.Recv(rx->data.data(), per_stream, RecvFlags{.waitall = true});
        if (rxs.empty()) {
          // Control-delay faults hold one channel per node; aim them at
          // the first stream on each side.
          injector.AttachControlTarget(1, &s.channel_internal());
        }
        rx_by_socket.emplace(&s, rx.get());
        rxs.push_back(std::move(rx));
      });

  if (cfg.enable_faults) {
    injector.Arm(simnet::FaultPlan::Generate(
        cfg.seed, simnet::FaultPlanConfig::ScaledTo(horizon)));
  }

  std::vector<Socket*> clients;
  int rejected = 0;
  for (std::uint32_t i = 0; i < streams; ++i) {
    Socket* pending = sim.Connect(0, 4000, SocketType::kStream, opts,
                                  [&](Socket* s) {
                                    if (s == nullptr) ++rejected;
                                  });
    pending->EnableTracing(cfg.trace_capacity);
    pending->EnableChunkSpans(&span_collector);
    clients.push_back(pending);
    if (i == 0) {
      injector.AttachControlTarget(0, &pending->channel_internal());
    }
  }
  sim.Run();
  if (rejected != 0) {
    res.failures.push_back("engine refused " + std::to_string(rejected) +
                           " of " + std::to_string(streams) +
                           " planned streams");
  }
  if (rxs.size() != streams) {
    res.failures.push_back("accepted " + std::to_string(rxs.size()) +
                           " streams, expected " + std::to_string(streams));
  }

  // Seeded interleave: every iteration pushes one chunk on a random
  // still-sending stream, then lets a random slice of time pass.
  Rng rng(SplitMix64(cfg.seed ^ 0x70e7f1c70ffe12edull).Next());
  std::vector<std::vector<std::uint8_t>> payloads(clients.size());
  std::vector<std::uint64_t> sent(clients.size(), 0);
  for (std::size_t i = 0; i < clients.size(); ++i) {
    payloads[i].resize(per_stream);
    FillPattern(payloads[i].data(), per_stream, 0, cfg.seed * 131 + i);
  }

  const std::uint64_t total = per_stream * rxs.size();
  try {
    std::uint64_t guard = 0;
    while (res.failures.empty() && total_received < total) {
      if (++guard > 2000000u) {
        res.failures.push_back(
            "no progress: stuck at " + std::to_string(total_received) + "/" +
            std::to_string(total) + " bytes");
        break;
      }
      std::vector<std::size_t> sendable;
      for (std::size_t i = 0; i < clients.size(); ++i) {
        if (sent[i] < per_stream) sendable.push_back(i);
      }
      if (!sendable.empty()) {
        std::size_t i = sendable[static_cast<std::size_t>(
            rng.NextInRange(0, sendable.size() - 1))];
        std::uint64_t s = rng.NextInRange(1, max_message);
        if (s > per_stream - sent[i]) s = per_stream - sent[i];
        clients[i]->Send(payloads[i].data() + sent[i], s);
        sent[i] += s;
        sim.RunFor(static_cast<SimDuration>(rng.NextInRange(
            0, static_cast<std::uint64_t>(Microseconds(30)))));
        if (rng.NextBool(0.08)) sim.Run();
      } else {
        sim.Run();  // everything posted: drain to completion
      }
    }
    if (res.failures.empty()) {
      sim.Run();
      for (Socket* c : clients) c->Close();
      sim.Run();
    }
  } catch (const InvariantViolation& violation) {
    res.failures.push_back(std::string("runtime invariant violation: ") +
                           violation.what());
  }

  if (res.failures.empty()) {
    for (std::size_t i = 0; i < rxs.size(); ++i) {
      const Rx& rx = *rxs[i];
      if (rx.received != per_stream) {
        res.failures.push_back("stream " + std::to_string(i) +
                               " short delivery: " +
                               std::to_string(rx.received) + "/" +
                               std::to_string(per_stream) + " bytes");
      } else if (std::size_t good = VerifyPattern(rx.data.data(), per_stream,
                                                  0, cfg.seed * 131 + i);
                 good != per_stream) {
        // Accepts complete in connect order over the in-order handshake
        // wire, so stream i's sink must hold client i's pattern.
        res.failures.push_back("stream " + std::to_string(i) +
                               " payload corrupt at offset " +
                               std::to_string(good));
      }
      if (!rx.eof) {
        res.failures.push_back("stream " + std::to_string(i) +
                               " never observed peer close");
      }
      if (!rx.socket->Quiescent() || !clients[i]->Quiescent()) {
        res.failures.push_back("stream " + std::to_string(i) +
                               " endpoints not quiescent after drain");
      }
    }
    // Reclaim-on-idle: every lease must be back in the pool after EOF.
    if (acceptor.pool().LeasesActive() != 0) {
      res.failures.push_back(
          std::to_string(acceptor.pool().LeasesActive()) +
          " ring leases still held after every stream closed");
    }
  }

  // Per-pair protocol invariants plus the cross-stream pool conservation
  // replay.  The fingerprint chains all pairs in acceptance order.
  std::uint64_t fp = 0xcbf29ce484222325ull;
  auto mix = [&fp](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      fp ^= (v >> (8 * i)) & 0xff;
      fp *= 0x100000001b3ull;
    }
  };
  InvariantReport report;
  std::vector<const TraceLog*> rx_logs;
  for (std::size_t i = 0; i < rxs.size() && i < clients.size(); ++i) {
    report.Merge(CheckConnection(*clients[i], *rxs[i]->socket));
    rx_logs.push_back(&rxs[i]->socket->rx_trace());
    mix(ConnectionFingerprint(*clients[i], *rxs[i]->socket));
  }
  PoolCheckOptions pool_opts;
  pool_opts.pool_capacity_bytes = aopts.pool.pool_bytes;
  pool_opts.lease_bytes = aopts.pool.lease_bytes;
  pool_opts.allow_truncated = cfg.trace_capacity != 0;
  report.Merge(CheckPoolConservation(rx_logs, pool_opts));
  report.Merge(CheckSpanConservation(span_collector));

  res.checker_violations = report.violations;
  res.checker_warnings = report.warnings;
  res.events_checked = report.events_checked;
  res.fingerprint = fp;
  res.faults_armed = injector.FaultsArmed();
  res.faults_applied = injector.FaultsApplied();
  res.ok = res.failures.empty() && res.checker_violations.empty();
  return res;
}

// ---------------------------------------------------------------------------
// "mux" mode: the shared-QP multiplexing tier (docs/PROTOCOL.md §13).
// ---------------------------------------------------------------------------

/// N streams over two MuxGroups whose slot pool is `width` queue pairs per
/// endpoint.  The seeded interleave from "many" mode drives every stream
/// through the shared slots while control-delay faults hold slot 0 on each
/// side (one held slot stalls every stream pinned to it — exactly the HoL
/// coupling the tier must survive).  Beyond the per-pair protocol checks,
/// the run replays the mux conservation laws (CheckMuxGroupPair): group
/// data accounting, per-stream sequence continuity, and per-slot credit
/// conservation at quiescence.
TortureResult RunMuxTorture(const TortureConfig& cfg) {
  TortureResult res;
  simnet::HardwareProfile profile = ResolveProfile(cfg.profile);

  // Seed-derived mux shape (domain-separated like "stripe"/"many"): the
  // stream count, the slot-pool width, the per-stream window, and whether
  // every byte is forced through the leased rings (indirect).
  std::uint64_t bits = SplitMix64(cfg.seed ^ 0x3f9c2e57b8a4d1ull).Next();
  const std::uint32_t streams =
      cfg.streams != 0 ? cfg.streams
                       : (bits % 3 == 0 ? 4u : bits % 3 == 1 ? 8u : 16u);
  const std::uint32_t width =
      cfg.width != 0
          ? cfg.width
          : ((bits >> 8) % 3 == 0 ? 1u : (bits >> 8) % 3 == 1 ? 2u : 4u);
  EXS_CHECK_MSG(streams > 0, "mux mode needs at least one stream");
  EXS_CHECK_MSG(width > 0, "mux mode needs at least one slot");

  StreamOptions opts;
  opts.intermediate_buffer_bytes = cfg.buffer_bytes;
  // Bound the chunk size so bulk sends become several WWIs and the
  // per-stream window actually parks streams (otherwise a whole direct
  // transfer is one WWI and the DRR layer never engages).
  opts.max_wwi_chunk = 8 * 1024;
  if ((bits & 8) != 0) opts.mode = ProtocolMode::kIndirectOnly;
  opts.sabotage.accept_stale_adverts = cfg.sabotage_stale_adverts;
  opts.sabotage.advertise_without_gate = cfg.sabotage_advert_gate;

  MuxOptions mopts;
  mopts.width = width;
  mopts.qp_credits = 64;
  mopts.per_stream_credits =
      (bits >> 4) % 3 == 0 ? 2u : (bits >> 4) % 3 == 1 ? 4u : 8u;

  std::uint64_t per_stream = cfg.total_bytes / streams;
  if (per_stream < 4096) per_stream = 4096;
  const std::uint64_t max_message =
      cfg.max_message < per_stream ? cfg.max_message : per_stream;
  const SimDuration horizon = EstimateHorizon(profile, per_stream * streams);

  Simulation sim(profile, cfg.seed, /*carry_payload=*/true);
  // Groups after `sim` (their devices), before the injector (its hold
  // targets are slot channels).  Sockets outliving the groups at sim
  // teardown is safe: a MuxStream whose group died is inert.
  MuxGroup g0(sim.device(0), mopts);
  MuxGroup g1(sim.device(1), mopts);
  MuxGroup::Connect(g0, g1);

  simnet::FaultInjector injector(sim.fabric());
  injector.AttachControlTarget(0, &g0.slot(0));
  injector.AttachControlTarget(1, &g1.slot(0));
  if (cfg.enable_faults) {
    injector.Arm(simnet::FaultPlan::Generate(
        cfg.seed, simnet::FaultPlanConfig::ScaledTo(horizon)));
  }

  struct Pair {
    Socket* client = nullptr;
    Socket* server = nullptr;
    std::vector<std::uint8_t> in;
    std::uint64_t received = 0;
  };
  std::vector<std::unique_ptr<Pair>> pairs;
  std::uint64_t total_received = 0;
  for (std::uint32_t i = 0; i < streams; ++i) {
    auto pair = std::make_unique<Pair>();
    auto [c, s] = sim.CreateMuxedPair(g0, g1, opts);
    pair->client = c;
    pair->server = s;
    pair->in.resize(per_stream);
    c->EnableTracing(cfg.trace_capacity);
    s->EnableTracing(cfg.trace_capacity);
    Pair* raw = pair.get();
    s->events().SetHandler([raw, &total_received](const Event& ev) {
      if (ev.type != EventType::kRecvComplete) return;
      raw->received += ev.bytes;
      total_received += ev.bytes;
    });
    s->Recv(pair->in.data(), per_stream, RecvFlags{.waitall = true});
    pairs.push_back(std::move(pair));
  }

  // Seeded interleave (the "many" discipline): every iteration pushes one
  // chunk on a random still-sending stream, then lets a random slice of
  // time pass — slot sharing makes the cross-stream orderings the point.
  Rng rng(SplitMix64(cfg.seed ^ 0x70e7f1c70ffe12edull).Next());
  std::vector<std::vector<std::uint8_t>> payloads(pairs.size());
  std::vector<std::uint64_t> sent(pairs.size(), 0);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    payloads[i].resize(per_stream);
    FillPattern(payloads[i].data(), per_stream, 0, cfg.seed * 131 + i);
  }

  const std::uint64_t total = per_stream * pairs.size();
  try {
    std::uint64_t guard = 0;
    while (res.failures.empty() && total_received < total) {
      if (++guard > 2000000u) {
        res.failures.push_back(
            "no progress: stuck at " + std::to_string(total_received) + "/" +
            std::to_string(total) + " bytes");
        break;
      }
      std::vector<std::size_t> sendable;
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        if (sent[i] < per_stream) sendable.push_back(i);
      }
      if (!sendable.empty()) {
        std::size_t i = sendable[static_cast<std::size_t>(
            rng.NextInRange(0, sendable.size() - 1))];
        std::uint64_t s = rng.NextInRange(1, max_message);
        if (s > per_stream - sent[i]) s = per_stream - sent[i];
        pairs[i]->client->Send(payloads[i].data() + sent[i], s);
        sent[i] += s;
        sim.RunFor(static_cast<SimDuration>(rng.NextInRange(
            0, static_cast<std::uint64_t>(Microseconds(30)))));
        if (rng.NextBool(0.08)) sim.Run();
      } else {
        sim.Run();  // everything posted: drain to completion
      }
    }
    if (res.failures.empty()) sim.Run();
  } catch (const InvariantViolation& violation) {
    res.failures.push_back(std::string("runtime invariant violation: ") +
                           violation.what());
  }

  if (res.failures.empty()) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const Pair& pair = *pairs[i];
      if (pair.received != per_stream) {
        res.failures.push_back("stream " + std::to_string(i) +
                               " short delivery: " +
                               std::to_string(pair.received) + "/" +
                               std::to_string(per_stream) + " bytes");
      } else if (std::size_t good = VerifyPattern(pair.in.data(), per_stream,
                                                  0, cfg.seed * 131 + i);
                 good != per_stream) {
        // The group demuxed a chunk to the wrong stream iff this fires.
        res.failures.push_back("stream " + std::to_string(i) +
                               " payload corrupt at offset " +
                               std::to_string(good));
      }
      if (!pair.client->Quiescent() || !pair.server->Quiescent()) {
        res.failures.push_back("stream " + std::to_string(i) +
                               " endpoints not quiescent after drain");
      }
    }
    // The point of the tier: stream count never touched the QP budget.
    if (sim.device(0).QueuePairsCreated() != width ||
        sim.device(1).QueuePairsCreated() != width) {
      res.failures.push_back(
          "QP budget exceeded: created " +
          std::to_string(sim.device(0).QueuePairsCreated()) + "/" +
          std::to_string(sim.device(1).QueuePairsCreated()) +
          " queue pairs for a width-" + std::to_string(width) + " pool");
    }
  }

  // Per-pair protocol invariants plus the mux conservation laws; the
  // fingerprint chains all pairs in attach order.
  std::uint64_t fp = 0xcbf29ce484222325ull;
  auto mix = [&fp](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      fp ^= (v >> (8 * i)) & 0xff;
      fp *= 0x100000001b3ull;
    }
  };
  InvariantReport report;
  for (auto& pair : pairs) {
    report.Merge(CheckConnection(*pair->client, *pair->server));
    mix(ConnectionFingerprint(*pair->client, *pair->server));
  }
  report.Merge(CheckMuxGroupPair(g0, g1));

  res.checker_violations = report.violations;
  res.checker_warnings = report.warnings;
  res.events_checked = report.events_checked;
  res.fingerprint = fp;
  res.faults_armed = injector.FaultsArmed();
  res.faults_applied = injector.FaultsApplied();
  res.ok = res.failures.empty() && res.checker_violations.empty();
  return res;
}

// ---------------------------------------------------------------------------
// "rpc" mode: the RPC/KV tier (src/exs/rpc) under transient faults.
// ---------------------------------------------------------------------------

/// N RpcClients over a shared MuxGroup slot pool drive one sharded KV
/// server through seeded request trains (Zipf keys, GET/PUT/DEL mix,
/// mixed value sizes) while control-delay faults hold slot 0 on each
/// side.  A tight per-call deadline, a small client pipeline bound, and
/// a deliberately starved value slab keep every terminal outcome live in
/// one run — answered, timed out, refused (remote slab/oversize refusals
/// plus local sheds) — and the run passes only if the RPC conservation
/// law holds: every issued call reaches exactly one outcome, stale
/// post-timeout responses never double-resolve, the server's counters
/// agree with the union of the client ledgers, and the mux conservation
/// laws hold underneath.  The fingerprint chains every client's outcome
/// sequence with the server's counters, so a replay that resolves even
/// one call differently is caught by the corpus comparison.
TortureResult RunRpcTorture(const TortureConfig& cfg) {
  TortureResult res;
  simnet::HardwareProfile profile = ResolveProfile(cfg.profile);

  // Seed-derived shape (domain-separated like "many"/"mux"): the client
  // count, the slot-pool width, and the per-client call train length.
  std::uint64_t bits = SplitMix64(cfg.seed ^ 0x59c4a11e57e21ull).Next();
  const std::uint32_t streams =
      cfg.streams != 0 ? cfg.streams
                       : (bits % 3 == 0 ? 4u : bits % 3 == 1 ? 8u : 16u);
  const std::uint32_t width =
      cfg.width != 0
          ? cfg.width
          : ((bits >> 8) % 3 == 0 ? 1u : (bits >> 8) % 3 == 1 ? 2u : 4u);
  const std::uint32_t calls_per_client =
      (bits >> 16) % 3 == 0 ? 24u : (bits >> 16) % 3 == 1 ? 48u : 96u;
  EXS_CHECK_MSG(streams > 0, "rpc mode needs at least one client");
  EXS_CHECK_MSG(width > 0, "rpc mode needs at least one slot");

  // Token-sized per-stream state, the mux tier's operating point.
  StreamOptions opts;
  opts.credits = 8;
  opts.intermediate_buffer_bytes = 2 * 1024;
  opts.max_wwi_chunk = 2 * 1024;
  opts.sabotage.accept_stale_adverts = cfg.sabotage_stale_adverts;
  opts.sabotage.advertise_without_gate = cfg.sabotage_advert_gate;

  MuxOptions mopts;
  mopts.width = width;

  const SimDuration horizon = EstimateHorizon(
      profile, static_cast<std::uint64_t>(streams) * calls_per_client * 512);

  Simulation sim(profile, cfg.seed, /*carry_payload=*/true);
  MuxGroup g0(sim.device(0), mopts);
  MuxGroup g1(sim.device(1), mopts);
  MuxGroup::Connect(g0, g1);

  simnet::FaultInjector injector(sim.fabric());
  injector.AttachControlTarget(0, &g0.slot(0));
  injector.AttachControlTarget(1, &g1.slot(0));
  if (cfg.enable_faults) {
    injector.Arm(simnet::FaultPlan::Generate(
        cfg.seed, simnet::FaultPlanConfig::ScaledTo(horizon)));
  }

  // Starved slab: a slice of PUTs is REFUSED slab-full, and the 480-byte
  // size class overflows the 256-byte slots (oversize refusals) — the
  // conservation law must hold straight through the overload regime.
  rpc::KvServerOptions kv_opts;
  kv_opts.slab_slots = 12;
  kv_opts.slot_bytes = 256;
  kv_opts.recv_chunk_bytes = 512;
  rpc::KvServer server(kv_opts);

  rpc::RpcClientOptions copts;
  copts.default_deadline = Microseconds(400);  // fault holds overrun this
  copts.max_outstanding = 4;                   // tight => local sheds
  copts.recv_chunk_bytes = 512;
  copts.deliver_values = false;

  loadgen::WorkloadOptions wl;
  wl.key_space = 64;  // small, so DELs and overwriting PUTs land on keys

  std::vector<std::unique_ptr<rpc::RpcClient>> rpcs;
  std::vector<loadgen::WorkloadGenerator> gens;
  rpcs.reserve(streams);
  gens.reserve(streams);
  for (std::uint32_t i = 0; i < streams; ++i) {
    auto [c, s] = sim.CreateMuxedPair(g0, g1, opts);
    server.Attach(*s);
    rpcs.push_back(
        std::make_unique<rpc::RpcClient>(*c, sim.scheduler(), copts));
    gens.emplace_back(wl, SplitMix64(cfg.seed ^ (0x4b5ull + i)).Next());
  }

  // Seeded interleave (the "many" discipline, calls instead of chunks):
  // every iteration issues one call on a random client with train left,
  // then lets a random slice of time pass.
  Rng rng(SplitMix64(cfg.seed ^ 0x70e7f1c70ffe12edull).Next());
  std::vector<std::uint32_t> remaining(streams, calls_per_client);
  std::uint64_t total_remaining =
      static_cast<std::uint64_t>(streams) * calls_per_client;
  try {
    while (total_remaining > 0) {
      std::vector<std::size_t> issuable;
      for (std::size_t i = 0; i < remaining.size(); ++i) {
        if (remaining[i] > 0) issuable.push_back(i);
      }
      std::size_t i = issuable[static_cast<std::size_t>(
          rng.NextInRange(0, issuable.size() - 1))];
      --remaining[i];
      --total_remaining;
      const loadgen::WorkloadGenerator::Request req = gens[i].Next();
      std::uint8_t value[512];
      if (req.op == rpc::Op::kPut) {
        loadgen::WorkloadGenerator::FillValue(req.key, value, req.value_len);
      }
      rpcs[i]->Call(req.op, req.key,
                    req.op == rpc::Op::kPut ? value : nullptr, req.value_len);
      sim.RunFor(static_cast<SimDuration>(rng.NextInRange(
          0, static_cast<std::uint64_t>(Microseconds(30)))));
      if (rng.NextBool(0.08)) sim.Run();
    }
    // Drain: every pending call resolves (response or deadline timer).
    sim.Run();
    for (auto& rpc : rpcs) rpc->CloseSend();
    sim.Run();
  } catch (const InvariantViolation& violation) {
    res.failures.push_back(std::string("runtime invariant violation: ") +
                           violation.what());
  }

  if (res.failures.empty()) {
    for (std::size_t i = 0; i < rpcs.size(); ++i) {
      if (rpcs[i]->pending_calls() != 0) {
        res.failures.push_back(
            "client " + std::to_string(i) + " still has " +
            std::to_string(rpcs[i]->pending_calls()) +
            " pending calls after drain");
      }
      if (rpcs[i]->framing_failed()) {
        res.failures.push_back("client " + std::to_string(i) +
                               " frame decoder failed");
      }
    }
    if (server.stats().framing_errors != 0) {
      res.failures.push_back(
          std::to_string(server.stats().framing_errors) +
          " server-side framing errors");
    }
    // Zombie slots exist only while a send pins them; at quiescence the
    // slab must hold exactly the live keys.
    if (server.slab().zombies() != 0) {
      res.failures.push_back(std::to_string(server.slab().zombies()) +
                             " zombie slab slots after drain");
    }
    if (sim.device(0).QueuePairsCreated() != width ||
        sim.device(1).QueuePairsCreated() != width) {
      res.failures.push_back(
          "QP budget exceeded: created " +
          std::to_string(sim.device(0).QueuePairsCreated()) + "/" +
          std::to_string(sim.device(1).QueuePairsCreated()) +
          " queue pairs for a width-" + std::to_string(width) + " pool");
    }
  }

  // The conservation replay, plus the mux laws underneath.  The
  // fingerprint chains every outcome in issue order per client — a
  // replay resolving one call differently (answered vs timed out, say)
  // diverges here even though both runs pass the checker.
  std::uint64_t fp = 0xcbf29ce484222325ull;
  auto mix = [&fp](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      fp ^= (v >> (8 * i)) & 0xff;
      fp *= 0x100000001b3ull;
    }
  };
  std::vector<const rpc::RpcLedger*> ledgers;
  for (const auto& rpc : rpcs) {
    const rpc::RpcLedger& ledger = rpc->ledger();
    ledgers.push_back(&ledger);
    for (std::uint8_t o : ledger.outcome) mix(o);
    mix(ledger.stale_responses);
    mix(ledger.shed_local);
  }
  mix(server.counters().requests_received);
  mix(server.counters().answered);
  mix(server.counters().refused);
  mix(server.stats().hits);
  mix(server.stats().misses);
  mix(server.stats().slab_full_refusals);
  mix(server.stats().oversize_refusals);

  InvariantReport report = CheckRpcConservation(ledgers, &server.counters());
  report.Merge(CheckMuxGroupPair(g0, g1));

  res.checker_violations = report.violations;
  res.checker_warnings = report.warnings;
  res.events_checked = report.events_checked;
  res.fingerprint = fp;
  res.faults_armed = injector.FaultsArmed();
  res.faults_applied = injector.FaultsApplied();
  res.ok = res.failures.empty() && res.checker_violations.empty();
  return res;
}

// ---------------------------------------------------------------------------
// "kill" mode: the recovery equivalence harness (docs/PROTOCOL.md §12).
// ---------------------------------------------------------------------------

/// FNV-1a over the delivered byte stream — the fingerprint the kill/resume
/// equivalence claim is stated over.  Trace fingerprints legitimately
/// differ between the twin runs (the killed run carries kill/resume
/// markers and retransmission postings); the *payload* must not.
std::uint64_t PayloadFingerprint(const std::uint8_t* data, std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

struct KillLegOutcome {
  std::uint64_t payload_fp = 0;     ///< FNV over the delivered bytes
  std::uint64_t connection_fp = 0;  ///< trace fingerprint of this leg
};

/// One leg of the kill-mode twin: the single-pair stream workload with
/// recovery armed and — when `kill` — one fatal QP kill landing at the
/// seed-derived (or pinned) fraction of the fault horizon, recovered
/// in-line by Socket::ResumePair the moment both transport halves are
/// dead.  Failures are prefixed with `label` so the twin report reads.
void RunKillLeg(const TortureConfig& cfg, bool kill, const char* label,
                TortureResult* res, KillLegOutcome* outcome) {
  simnet::HardwareProfile profile = ResolveProfile(cfg.profile);
  const SimDuration horizon = EstimateHorizon(profile, cfg.total_bytes);
  auto fail = [&](const std::string& what) {
    res->failures.push_back(std::string(label) + ": " + what);
  };

  // Seed-derived workload variant (domain-separated from the fault plan
  // and the workload RNG): the recovery path must hold under every
  // chunking discipline, so the sweep rotates classic dynamic, coalesce,
  // and striped streams.  Pinning cfg.rails forces the striped variant.
  std::uint64_t bits = SplitMix64(cfg.seed ^ 0x4b111f7e57a7e5ull).Next();
  StreamOptions opts;
  opts.recovery.enabled = true;
  opts.intermediate_buffer_bytes = cfg.buffer_bytes;
  const std::uint64_t variant = cfg.rails != 0 ? 2 : bits % 3;
  if (variant == 1) opts.coalesce.enabled = true;
  if (variant == 2) {
    opts.rails =
        cfg.rails != 0 ? cfg.rails : (((bits >> 2) & 1) != 0 ? 2u : 4u);
    const bool rr =
        cfg.sched.empty() ? ((bits >> 3) & 1) != 0 : cfg.sched == "rr";
    opts.rail_scheduler =
        rr ? RailScheduler::kRoundRobin : RailScheduler::kShortestOutstanding;
    opts.max_wwi_chunk = 16 * 1024;
  }

  Simulation sim(profile, cfg.seed, /*carry_payload=*/true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing(cfg.trace_capacity);
  server->EnableTracing(cfg.trace_capacity);

  // Destroyed before `sim` (reverse declaration order), like every driver.
  simnet::FaultInjector injector(sim.fabric());
  injector.AttachControlTarget(0, &client->channel_internal());
  injector.AttachControlTarget(1, &server->channel_internal());
  injector.AttachKillTarget(0, client);
  injector.AttachKillTarget(1, server);
  simnet::FaultPlan plan;
  if (cfg.enable_faults) {
    // The transient base plan is identical in both legs; the kill below is
    // appended outside the plan RNG, so golden and killed runs share every
    // stall and jitter window byte-for-byte until the kill lands.
    plan = simnet::FaultPlan::Generate(
        cfg.seed, simnet::FaultPlanConfig::ScaledTo(horizon));
  }
  if (kill) {
    const std::uint32_t permille =
        cfg.kill_permille != 0
            ? cfg.kill_permille
            : static_cast<std::uint32_t>(50 + (bits >> 8) % 350);
    simnet::FaultEvent ev;
    ev.kind = simnet::FaultKind::kQpKill;
    ev.target = bits & 1;
    ev.at = static_cast<SimTime>(horizon / 1000 * permille);
    plan.events.push_back(ev);
  }
  if (!plan.events.empty()) injector.Arm(plan);

  // Workload RNG: the same domain separation as the classic driver, so a
  // kill-mode seed exercises a comparable posting interleave.
  Rng rng(SplitMix64(cfg.seed ^ 0x70e7f1c70ffe12edull).Next());
  const std::uint64_t total = cfg.total_bytes;
  const std::uint64_t max_message =
      cfg.max_message < total ? cfg.max_message : total;

  std::vector<std::uint8_t> out(total);
  FillPattern(out.data(), out.size(), 0, cfg.seed);
  std::vector<std::uint8_t> in(total, 0);

  constexpr std::size_t kScratch = 6;
  std::vector<std::vector<std::uint8_t>> scratch(
      kScratch, std::vector<std::uint8_t>(max_message));
  std::vector<std::size_t> free_scratch;
  for (std::size_t i = 0; i < kScratch; ++i) free_scratch.push_back(i);

  struct Posted {
    std::size_t scratch_index;
    std::uint64_t len;
  };
  std::unordered_map<std::uint64_t, Posted> posted;

  std::uint64_t send_off = 0;
  std::uint64_t recv_done = 0;
  std::uint64_t pending_posted = 0;

  server->events().SetHandler([&](const Event& ev) {
    if (ev.type != EventType::kRecvComplete) return;
    auto it = posted.find(ev.id);
    if (it == posted.end()) {
      fail("completion for unknown receive id");
      return;
    }
    Posted rec = it->second;
    posted.erase(it);
    if (ev.bytes > rec.len || recv_done + ev.bytes > total) {
      fail("receive completion exceeds posted/total size");
      return;
    }
    std::memcpy(in.data() + recv_done, scratch[rec.scratch_index].data(),
                ev.bytes);
    recv_done += ev.bytes;
    pending_posted -= rec.len;
    free_scratch.push_back(rec.scratch_index);
  });

  std::uint64_t resumes_here = 0;
  auto maybe_resume = [&]() {
    if (!client->TransportDead() && !server->TransportDead()) return;
    // The kill flushes one side instantly; the peer's QPs die one ack
    // delay later.  Pump simulated time until both halves are down, then
    // reconnect and resume at the delivered frontier.
    std::uint64_t spins = 0;
    while (!(client->TransportDead() && server->TransportDead())) {
      sim.RunFor(Microseconds(100));
      if (++spins > 100000u) {
        fail("peer transport never observed the kill");
        return;
      }
    }
    Socket::ResumePair(*client, *server);
    ++resumes_here;
  };

  try {
    std::uint64_t guard = 0;
    while (res->failures.empty() && recv_done < total) {
      if (++guard > 2000000u) {
        fail("no progress: stuck at " + std::to_string(recv_done) + "/" +
             std::to_string(total) + " bytes");
        break;
      }
      bool can_send = send_off < total;
      bool can_recv = !free_scratch.empty() &&
                      recv_done + pending_posted < total;
      if (can_send && (rng.NextBool() || !can_recv)) {
        std::uint64_t s = rng.NextInRange(1, max_message);
        if (s > total - send_off) s = total - send_off;
        client->Send(out.data() + send_off, s);
        send_off += s;
      } else if (can_recv) {
        std::size_t idx = free_scratch.back();
        free_scratch.pop_back();
        std::uint64_t room = total - recv_done - pending_posted;
        std::uint64_t r = rng.NextInRange(1, max_message);
        if (r > room) r = room;
        std::uint64_t id = server->Recv(scratch[idx].data(), r,
                                        RecvFlags{.waitall = rng.NextBool(0.4)});
        posted.emplace(id, Posted{idx, r});
        pending_posted += r;
      }
      sim.RunFor(static_cast<SimDuration>(
          rng.NextInRange(0, static_cast<std::uint64_t>(Microseconds(30)))));
      if (!can_send && !can_recv) {
        sim.Run();
      } else if (rng.NextBool(0.08)) {
        sim.Run();
      }
      maybe_resume();
    }
    if (res->failures.empty()) {
      sim.Run();
      // A late kill can land after the last byte delivered; resume anyway
      // so quiescence below means "fully recovered", never "dead quiet".
      maybe_resume();
      sim.Run();
    }
  } catch (const InvariantViolation& violation) {
    fail(std::string("runtime invariant violation: ") + violation.what());
  }

  if (res->failures.empty()) {
    if (recv_done != total) {
      fail("short delivery: " + std::to_string(recv_done) + "/" +
           std::to_string(total) + " bytes");
    } else if (std::size_t good =
                   VerifyPattern(in.data(), in.size(), 0, cfg.seed);
               good != in.size()) {
      fail("payload corrupt at stream offset " + std::to_string(good));
    }
    if (!client->Quiescent() || !server->Quiescent()) {
      fail("endpoints not quiescent after drain");
    }
    std::uint64_t tx_seq = client->stream_tx()->sequence();
    std::uint64_t rx_seq = server->stream_rx()->sequence();
    std::uint64_t rx_est = server->stream_rx()->sequence_estimate();
    if (tx_seq != total || rx_seq != total || rx_est != total) {
      fail("sequence disagreement: S_s=" + std::to_string(tx_seq) +
           " S_r=" + std::to_string(rx_seq) +
           " S'_r=" + std::to_string(rx_est) + " expected " +
           std::to_string(total));
    }
    if (kill && injector.KillsApplied() == 0) {
      fail("the fatal kill never took effect");
    }
  }

  // The resume-aware checker: delivered-byte continuity (gap-free and
  // duplicate-free through the markers) still runs; only the cross-log
  // conservation rules are skipped on the killed leg.
  InvariantReport report = CheckConnection(*client, *server);
  for (const auto& v : report.violations) {
    res->checker_violations.push_back(std::string(label) + ": " + v);
  }
  for (const auto& w : report.warnings) {
    res->checker_warnings.push_back(std::string(label) + ": " + w);
  }
  res->events_checked += report.events_checked;
  res->faults_armed += injector.FaultsArmed();
  res->faults_applied += injector.FaultsApplied();
  res->kills_applied += injector.KillsApplied();
  res->resumes += resumes_here;
  outcome->payload_fp = PayloadFingerprint(in.data(), in.size());
  outcome->connection_fp = ConnectionFingerprint(*client, *server);
}

/// Twin-run equivalence: the same seed drives an unkilled golden leg and a
/// killed/resumed leg; the run passes only if both legs individually pass
/// AND deliver the byte-identical stream.
TortureResult RunKillTorture(const TortureConfig& cfg) {
  TortureResult res;
  KillLegOutcome golden;
  KillLegOutcome killed;
  RunKillLeg(cfg, /*kill=*/false, "golden", &res, &golden);
  RunKillLeg(cfg, /*kill=*/true, "killed", &res, &killed);
  if (golden.payload_fp != killed.payload_fp) {
    std::ostringstream oss;
    oss << "delivered stream diverged across kill/resume: golden payload "
        << "fp 0x" << std::hex << golden.payload_fp << ", killed 0x"
        << killed.payload_fp;
    res.failures.push_back(oss.str());
  }
  // The replay/determinism fingerprint chains both legs' payloads and the
  // killed leg's trace fingerprint (which covers the kill/resume markers
  // and the retransmission schedule).
  std::uint64_t fp = 0xcbf29ce484222325ull;
  auto mix = [&fp](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      fp ^= (v >> (8 * i)) & 0xff;
      fp *= 0x100000001b3ull;
    }
  };
  mix(golden.payload_fp);
  mix(killed.payload_fp);
  mix(killed.connection_fp);
  res.fingerprint = fp;
  res.ok = res.failures.empty() && res.checker_violations.empty();
  return res;
}

}  // namespace

TortureResult RunTorture(const TortureConfig& cfg) {
  EXS_CHECK_MSG(ValidMode(cfg.mode), "unknown mode '" << cfg.mode << "'");
  if (cfg.mode == "many") return RunManyTorture(cfg);
  if (cfg.mode == "kill") return RunKillTorture(cfg);
  if (cfg.mode == "mux") return RunMuxTorture(cfg);
  if (cfg.mode == "rpc") return RunRpcTorture(cfg);
  TortureResult res;

  simnet::HardwareProfile profile = ResolveProfile(cfg.profile);
  const SimDuration horizon = EstimateHorizon(profile, cfg.total_bytes);
  const bool seqpacket = cfg.mode == "seqpacket";

  StreamOptions opts;
  if (cfg.mode == "direct") opts.mode = ProtocolMode::kDirectOnly;
  if (cfg.mode == "indirect") opts.mode = ProtocolMode::kIndirectOnly;
  // "coalesce" is the dynamic algorithm with the small-transfer staging
  // buffer and ACK piggyback armed — the corpus round-trips it through the
  // existing mode key.
  if (cfg.mode == "coalesce") opts.coalesce.enabled = true;
  // "batch" arms the whole hot-path batching stack — coalescing with
  // gather-list (sendv) aggregation, doorbell batching, and the MR
  // registration cache — and drives sends through vectored Sendv.  The
  // seed picks the batch depth and Sendv arity (domain-separated from the
  // fault plan and workload RNGs); explicit cfg.batch / cfg.arity pin
  // their axes so a corpus line replays the exact configuration.
  std::uint32_t sendv_arity = 1;
  if (cfg.mode == "batch") {
    std::uint64_t bits = SplitMix64(cfg.seed ^ 0xba7c4d00bbe11ull).Next();
    std::uint32_t depth =
        cfg.batch != 0 ? cfg.batch : (2u << (bits % 3));  // {2,4,8}
    sendv_arity =
        cfg.arity != 0 ? cfg.arity : (1u << ((bits >> 2) % 3));  // {1,2,4}
    EXS_CHECK_MSG(sendv_arity >= 1 && sendv_arity <= verbs::kMaxSge,
                  "sendv arity out of [1, kMaxSge]");
    opts.coalesce.enabled = true;
    opts.batching.doorbell = true;
    opts.batching.max_wrs = depth;
    opts.batching.sendv_aggregation = true;
    opts.batching.mr_cache_entries = 32;
    // Batched CQ dispatch: {1, 4, 16} completions per CPU pass, so the
    // completion-clocked refills also exercise the clumped-post path.
    opts.batching.cq_drain = 1u << (2 * ((bits >> 5) % 3));
    // Small chunks so a single posting becomes several WRs per pump pass
    // — otherwise the doorbell batch never fills.
    opts.max_wwi_chunk = 16 * 1024;
  }
  if (cfg.mode == "stripe") {
    // Multi-rail striping.  The seed picks the point in the
    // {2,4 rails} × {dynamic,indirect} × {rr,adaptive} cube (domain-
    // separated from both the fault plan and the workload RNG); explicit
    // cfg.rails / cfg.sched pin their axes so a corpus line replays the
    // exact configuration.
    std::uint64_t bits = SplitMix64(cfg.seed ^ 0x57a1be5c0de4a115ull).Next();
    std::uint32_t rails = cfg.rails != 0 ? cfg.rails
                                         : ((bits & 1) != 0 ? 2u : 4u);
    std::string sched =
        !cfg.sched.empty() ? cfg.sched
                           : ((bits & 2) != 0 ? "rr" : "adaptive");
    EXS_CHECK_MSG(sched == "rr" || sched == "adaptive",
                  "unknown rail scheduler '" << sched << "'");
    opts.rails = rails;
    opts.rail_scheduler = sched == "rr" ? RailScheduler::kRoundRobin
                                        : RailScheduler::kShortestOutstanding;
    if ((bits & 4) != 0) opts.mode = ProtocolMode::kIndirectOnly;
    // Striped chunks should actually spread: bound the chunk size so even
    // a single large send becomes several WWIs.
    opts.max_wwi_chunk = 16 * 1024;
  }
  opts.intermediate_buffer_bytes = cfg.buffer_bytes;
  opts.sabotage.accept_stale_adverts = cfg.sabotage_stale_adverts;
  opts.sabotage.advertise_without_gate = cfg.sabotage_advert_gate;

  Simulation sim(profile, cfg.seed, /*carry_payload=*/true);
  auto [client, server] = sim.CreateConnectedPair(
      seqpacket ? SocketType::kSeqPacket : SocketType::kStream, opts);
  client->EnableTracing(cfg.trace_capacity);
  server->EnableTracing(cfg.trace_capacity);
  // Sample every chunk: the stage-attribution conservation rule runs on
  // each torture mode (a no-op for SEQPACKET, which traces no chunks).
  sim.EnableChunkSpans();

  // Destroyed before `sim` (reverse declaration order): no simulated time
  // advances after the injector dies, so its scheduled lambdas never run
  // dangling.
  simnet::FaultInjector injector(sim.fabric());
  if (cfg.enable_faults) {
    injector.AttachControlTarget(0, &client->channel_internal());
    injector.AttachControlTarget(1, &server->channel_internal());
    injector.Arm(simnet::FaultPlan::Generate(
        cfg.seed, simnet::FaultPlanConfig::ScaledTo(horizon)));
  }

  // Workload RNG, domain-separated from the fault plan and the fabric.
  Rng rng(SplitMix64(cfg.seed ^ 0x70e7f1c70ffe12edull).Next());
  const std::uint64_t total = cfg.total_bytes;
  const std::uint64_t max_message =
      cfg.max_message < total ? cfg.max_message : total;

  std::vector<std::uint8_t> out(total);
  FillPattern(out.data(), out.size(), 0, cfg.seed);
  std::vector<std::uint8_t> in(total, 0);

  // Message sizes for SEQPACKET are fixed up front (message boundaries are
  // preserved, so the receive side must know how many messages to await).
  std::vector<std::uint64_t> sizes;
  if (seqpacket) {
    std::uint64_t planned = 0;
    while (planned < total) {
      std::uint64_t s = rng.NextInRange(1, max_message);
      if (s > total - planned) s = total - planned;
      sizes.push_back(s);
      planned += s;
    }
  }

  constexpr std::size_t kScratch = 6;
  std::vector<std::vector<std::uint8_t>> scratch(
      kScratch, std::vector<std::uint8_t>(max_message));
  std::vector<std::size_t> free_scratch;
  for (std::size_t i = 0; i < kScratch; ++i) free_scratch.push_back(i);

  struct Posted {
    std::size_t scratch_index;
    std::uint64_t len;
  };
  std::unordered_map<std::uint64_t, Posted> posted;

  std::uint64_t send_off = 0;
  std::size_t msgs_sent = 0;
  std::uint64_t recv_done = 0;
  std::size_t msgs_received = 0;
  std::uint64_t pending_posted = 0;
  std::size_t recvs_posted = 0;

  server->events().SetHandler([&](const Event& ev) {
    if (ev.type != EventType::kRecvComplete) return;
    auto it = posted.find(ev.id);
    if (it == posted.end()) {
      res.failures.push_back("completion for unknown receive id");
      return;
    }
    Posted rec = it->second;
    posted.erase(it);
    if (ev.bytes > rec.len || recv_done + ev.bytes > total) {
      res.failures.push_back("receive completion exceeds posted/total size");
      return;
    }
    std::memcpy(in.data() + recv_done, scratch[rec.scratch_index].data(),
                ev.bytes);
    recv_done += ev.bytes;
    ++msgs_received;
    pending_posted -= rec.len;
    free_scratch.push_back(rec.scratch_index);
  });

  // Drive loop (the stream_property_test pattern): interleave postings
  // with short runs of simulated time so the relative order of sends,
  // receives, control traffic — and now faults — varies by seed.
  DriveOutcome drive;
  try {
    std::uint64_t guard = 0;
    auto done = [&]() {
      return seqpacket ? msgs_received >= sizes.size() : recv_done >= total;
    };
    while (!done()) {
      if (++guard > 2000000u) {
        res.failures.push_back(
            "no progress: stuck at " + std::to_string(recv_done) + "/" +
            std::to_string(total) + " bytes");
        break;
      }
      bool can_send =
          seqpacket ? msgs_sent < sizes.size() : send_off < total;
      bool can_recv =
          !free_scratch.empty() &&
          (seqpacket ? recvs_posted < sizes.size()
                     : recv_done + pending_posted < total);

      if (can_send && (rng.NextBool() || !can_recv)) {
        if (seqpacket) {
          client->Send(out.data() + send_off, sizes[msgs_sent]);
          send_off += sizes[msgs_sent];
          ++msgs_sent;
        } else {
          std::uint64_t s = rng.NextInRange(1, max_message);
          if (s > total - send_off) s = total - send_off;
          if (cfg.mode == "batch") {
            // Vectored posting: carve the message into `sendv_arity`
            // slices (zero-length middles are legal padding) — one
            // logical send, one completion, gathered by the HCA.
            Socket::IoSlice iov[verbs::kMaxSge];
            std::uint64_t off = send_off, left = s;
            std::uint32_t n = 0;
            for (std::uint32_t k = 0; k < sendv_arity; ++k) {
              std::uint64_t take =
                  (k + 1 == sendv_arity) ? left : rng.NextInRange(0, left);
              iov[n++] = {out.data() + off, take};
              off += take;
              left -= take;
            }
            client->Sendv(iov, n);
          } else {
            client->Send(out.data() + send_off, s);
          }
          send_off += s;
        }
      } else if (can_recv) {
        std::size_t idx = free_scratch.back();
        free_scratch.pop_back();
        std::uint64_t r = max_message;
        bool waitall = false;
        if (!seqpacket) {
          std::uint64_t room = total - recv_done - pending_posted;
          r = rng.NextInRange(1, max_message);
          if (r > room) r = room;
          waitall = rng.NextBool(0.4);
        }
        std::uint64_t id = server->Recv(scratch[idx].data(), r,
                                        RecvFlags{.waitall = waitall});
        posted.emplace(id, Posted{idx, r});
        pending_posted += r;
        ++recvs_posted;
      }
      sim.RunFor(static_cast<SimDuration>(
          rng.NextInRange(0, static_cast<std::uint64_t>(Microseconds(30)))));
      // Occasional full drains let the receiver catch up and empty the
      // ring, so dynamic runs actually flip between indirect and direct
      // phases instead of degenerating to pure-indirect.
      if (!can_send && !can_recv) {
        sim.Run();
      } else if (rng.NextBool(0.08)) {
        sim.Run();
      }
    }
    if (res.failures.empty()) sim.Run();
  } catch (const InvariantViolation& violation) {
    // A runtime EXS_CHECK fired mid-run (expected under sabotage).  The
    // traces recorded up to this point still go through the checker.
    drive.aborted = true;
    res.failures.push_back(std::string("runtime invariant violation: ") +
                           violation.what());
  }

  if (!drive.aborted && res.failures.empty()) {
    if (recv_done != total) {
      res.failures.push_back("short delivery: " + std::to_string(recv_done) +
                             "/" + std::to_string(total) + " bytes");
    } else if (std::size_t good = VerifyPattern(in.data(), in.size(), 0,
                                                cfg.seed);
               good != in.size()) {
      res.failures.push_back("payload corrupt at stream offset " +
                             std::to_string(good));
    }
    if (!client->Quiescent() || !server->Quiescent()) {
      res.failures.push_back("endpoints not quiescent after drain");
    }
    if (!seqpacket) {
      std::uint64_t tx_seq = client->stream_tx()->sequence();
      std::uint64_t rx_seq = server->stream_rx()->sequence();
      std::uint64_t rx_est = server->stream_rx()->sequence_estimate();
      if (tx_seq != total || rx_seq != total || rx_est != total) {
        res.failures.push_back(
            "sequence disagreement: S_s=" + std::to_string(tx_seq) +
            " S_r=" + std::to_string(rx_seq) +
            " S'_r=" + std::to_string(rx_est) + " expected " +
            std::to_string(total));
      }
    }
  }

  InvariantReport report = CheckConnection(*client, *server);
  report.Merge(CheckSpanConservation(*sim.chunk_spans()));
  res.checker_violations = report.violations;
  res.checker_warnings = report.warnings;
  res.events_checked = report.events_checked;
  res.fingerprint = ConnectionFingerprint(*client, *server);
  res.faults_armed = injector.FaultsArmed();
  res.faults_applied = injector.FaultsApplied();
  res.ok = res.failures.empty() && res.checker_violations.empty();
  return res;
}

// ---------------------------------------------------------------------------
// Replay corpus: one `key=value` line per failing configuration.
// ---------------------------------------------------------------------------

std::string EncodeCorpusEntry(const TortureConfig& cfg) {
  std::ostringstream oss;
  oss << "seed=" << cfg.seed << " profile=" << cfg.profile
      << " mode=" << cfg.mode << " total=" << cfg.total_bytes
      << " maxmsg=" << cfg.max_message << " buffer=" << cfg.buffer_bytes
      << " tracecap=" << cfg.trace_capacity
      << " faults=" << (cfg.enable_faults ? 1 : 0)
      << " sab_stale=" << (cfg.sabotage_stale_adverts ? 1 : 0)
      << " sab_gate=" << (cfg.sabotage_advert_gate ? 1 : 0);
  // Mode-specific keys appear only when pinned, so older corpus files
  // round-trip byte-identically.
  if (cfg.rails != 0) oss << " rails=" << cfg.rails;
  if (!cfg.sched.empty()) oss << " sched=" << cfg.sched;
  if (cfg.streams != 0) oss << " streams=" << cfg.streams;
  if (cfg.width != 0) oss << " width=" << cfg.width;
  if (cfg.kill_permille != 0) oss << " killpm=" << cfg.kill_permille;
  if (cfg.batch != 0) oss << " batch=" << cfg.batch;
  if (cfg.arity != 0) oss << " arity=" << cfg.arity;
  oss << " fp=0x" << std::hex << cfg.expect_fingerprint;
  return oss.str();
}

bool DecodeCorpusEntry(const std::string& line, TortureConfig* out) {
  TortureConfig cfg;
  bool have_seed = false;
  std::istringstream iss(line);
  std::string token;
  while (iss >> token) {
    std::size_t eq = token.find('=');
    if (eq == std::string::npos) return false;
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (value.empty()) return false;
    try {
      if (key == "seed") {
        cfg.seed = std::stoull(value);
        have_seed = true;
      } else if (key == "profile") {
        cfg.profile = value;
      } else if (key == "mode") {
        cfg.mode = value;
      } else if (key == "total") {
        cfg.total_bytes = std::stoull(value);
      } else if (key == "maxmsg") {
        cfg.max_message = std::stoull(value);
      } else if (key == "buffer") {
        cfg.buffer_bytes = std::stoull(value);
      } else if (key == "tracecap") {
        cfg.trace_capacity = std::stoull(value);
      } else if (key == "faults") {
        cfg.enable_faults = value != "0";
      } else if (key == "sab_stale") {
        cfg.sabotage_stale_adverts = value != "0";
      } else if (key == "sab_gate") {
        cfg.sabotage_advert_gate = value != "0";
      } else if (key == "rails") {
        cfg.rails = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "sched") {
        if (value != "rr" && value != "adaptive") return false;
        cfg.sched = value;
      } else if (key == "streams") {
        cfg.streams = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "width") {
        cfg.width = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "killpm") {
        cfg.kill_permille = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "batch") {
        cfg.batch = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "arity") {
        cfg.arity = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "fp") {
        cfg.expect_fingerprint = std::stoull(value, nullptr, 0);
      } else {
        return false;  // unknown key: refuse rather than silently drift
      }
    } catch (const std::exception&) {
      return false;
    }
  }
  if (!have_seed || !ValidMode(cfg.mode)) return false;
  *out = cfg;
  return true;
}

std::vector<TortureConfig> LoadCorpus(const std::string& path) {
  std::ifstream file(path);
  EXS_CHECK_MSG(file.good(), "cannot read corpus file " << path);
  std::vector<TortureConfig> entries;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(file, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    TortureConfig cfg;
    EXS_CHECK_MSG(DecodeCorpusEntry(line, &cfg),
                  "malformed corpus entry at " << path << ":" << lineno);
    entries.push_back(cfg);
  }
  return entries;
}

void AppendCorpusEntry(const std::string& path, const TortureConfig& cfg,
                       std::uint64_t fingerprint) {
  std::ofstream file(path, std::ios::app);
  EXS_CHECK_MSG(file.good(), "cannot append to corpus file " << path);
  TortureConfig stamped = cfg;
  stamped.expect_fingerprint = fingerprint;
  file << EncodeCorpusEntry(stamped) << "\n";
}

}  // namespace exs::torture
