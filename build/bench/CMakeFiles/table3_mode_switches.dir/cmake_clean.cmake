file(REMOVE_RECURSE
  "CMakeFiles/table3_mode_switches.dir/table3_mode_switches.cpp.o"
  "CMakeFiles/table3_mode_switches.dir/table3_mode_switches.cpp.o.d"
  "table3_mode_switches"
  "table3_mode_switches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_mode_switches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
