# Empty dependencies file for table3_mode_switches.
# This may be replaced when dependencies are built.
