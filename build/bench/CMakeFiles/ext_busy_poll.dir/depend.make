# Empty dependencies file for ext_busy_poll.
# This may be replaced when dependencies are built.
