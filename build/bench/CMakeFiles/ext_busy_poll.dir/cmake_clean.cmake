file(REMOVE_RECURSE
  "CMakeFiles/ext_busy_poll.dir/ext_busy_poll.cpp.o"
  "CMakeFiles/ext_busy_poll.dir/ext_busy_poll.cpp.o.d"
  "ext_busy_poll"
  "ext_busy_poll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_busy_poll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
