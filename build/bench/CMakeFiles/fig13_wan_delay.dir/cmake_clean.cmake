file(REMOVE_RECURSE
  "CMakeFiles/fig13_wan_delay.dir/fig13_wan_delay.cpp.o"
  "CMakeFiles/fig13_wan_delay.dir/fig13_wan_delay.cpp.o.d"
  "fig13_wan_delay"
  "fig13_wan_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_wan_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
