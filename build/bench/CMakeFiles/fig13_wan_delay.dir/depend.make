# Empty dependencies file for fig13_wan_delay.
# This may be replaced when dependencies are built.
