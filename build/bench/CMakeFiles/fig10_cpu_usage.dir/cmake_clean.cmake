file(REMOVE_RECURSE
  "CMakeFiles/fig10_cpu_usage.dir/fig10_cpu_usage.cpp.o"
  "CMakeFiles/fig10_cpu_usage.dir/fig10_cpu_usage.cpp.o.d"
  "fig10_cpu_usage"
  "fig10_cpu_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cpu_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
