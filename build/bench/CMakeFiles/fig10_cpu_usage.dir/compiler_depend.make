# Empty compiler generated dependencies file for fig10_cpu_usage.
# This may be replaced when dependencies are built.
