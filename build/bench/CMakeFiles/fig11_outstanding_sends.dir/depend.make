# Empty dependencies file for fig11_outstanding_sends.
# This may be replaced when dependencies are built.
