file(REMOVE_RECURSE
  "CMakeFiles/fig11_outstanding_sends.dir/fig11_outstanding_sends.cpp.o"
  "CMakeFiles/fig11_outstanding_sends.dir/fig11_outstanding_sends.cpp.o.d"
  "fig11_outstanding_sends"
  "fig11_outstanding_sends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_outstanding_sends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
