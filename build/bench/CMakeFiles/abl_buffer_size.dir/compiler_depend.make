# Empty compiler generated dependencies file for abl_buffer_size.
# This may be replaced when dependencies are built.
