file(REMOVE_RECURSE
  "CMakeFiles/abl_buffer_size.dir/abl_buffer_size.cpp.o"
  "CMakeFiles/abl_buffer_size.dir/abl_buffer_size.cpp.o.d"
  "abl_buffer_size"
  "abl_buffer_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_buffer_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
