# Empty compiler generated dependencies file for micro_simulator.
# This may be replaced when dependencies are built.
