file(REMOVE_RECURSE
  "CMakeFiles/micro_simulator.dir/micro_simulator.cpp.o"
  "CMakeFiles/micro_simulator.dir/micro_simulator.cpp.o.d"
  "micro_simulator"
  "micro_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
