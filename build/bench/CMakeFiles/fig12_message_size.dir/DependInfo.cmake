
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_message_size.cpp" "bench/CMakeFiles/fig12_message_size.dir/fig12_message_size.cpp.o" "gcc" "bench/CMakeFiles/fig12_message_size.dir/fig12_message_size.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/exs_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/blast/CMakeFiles/exs_blast.dir/DependInfo.cmake"
  "/root/repo/build/src/exs/CMakeFiles/exs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/verbs/CMakeFiles/exs_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/exs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
