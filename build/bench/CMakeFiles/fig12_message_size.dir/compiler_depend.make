# Empty compiler generated dependencies file for fig12_message_size.
# This may be replaced when dependencies are built.
