file(REMOVE_RECURSE
  "CMakeFiles/fig12_message_size.dir/fig12_message_size.cpp.o"
  "CMakeFiles/fig12_message_size.dir/fig12_message_size.cpp.o.d"
  "fig12_message_size"
  "fig12_message_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_message_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
