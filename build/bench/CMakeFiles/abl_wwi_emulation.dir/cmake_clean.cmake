file(REMOVE_RECURSE
  "CMakeFiles/abl_wwi_emulation.dir/abl_wwi_emulation.cpp.o"
  "CMakeFiles/abl_wwi_emulation.dir/abl_wwi_emulation.cpp.o.d"
  "abl_wwi_emulation"
  "abl_wwi_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_wwi_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
