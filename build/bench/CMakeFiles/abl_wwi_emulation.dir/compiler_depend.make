# Empty compiler generated dependencies file for abl_wwi_emulation.
# This may be replaced when dependencies are built.
