# Empty dependencies file for exs_bench_support.
# This may be replaced when dependencies are built.
