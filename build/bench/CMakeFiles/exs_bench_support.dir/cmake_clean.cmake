file(REMOVE_RECURSE
  "../lib/libexs_bench_support.a"
  "../lib/libexs_bench_support.pdb"
  "CMakeFiles/exs_bench_support.dir/support.cpp.o"
  "CMakeFiles/exs_bench_support.dir/support.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exs_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
