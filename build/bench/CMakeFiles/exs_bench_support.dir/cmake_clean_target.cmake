file(REMOVE_RECURSE
  "../lib/libexs_bench_support.a"
)
