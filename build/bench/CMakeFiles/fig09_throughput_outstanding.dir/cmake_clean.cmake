file(REMOVE_RECURSE
  "CMakeFiles/fig09_throughput_outstanding.dir/fig09_throughput_outstanding.cpp.o"
  "CMakeFiles/fig09_throughput_outstanding.dir/fig09_throughput_outstanding.cpp.o.d"
  "fig09_throughput_outstanding"
  "fig09_throughput_outstanding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_throughput_outstanding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
