# Empty dependencies file for fig09_throughput_outstanding.
# This may be replaced when dependencies are built.
