file(REMOVE_RECURSE
  "CMakeFiles/ext_bursty.dir/ext_bursty.cpp.o"
  "CMakeFiles/ext_bursty.dir/ext_bursty.cpp.o.d"
  "ext_bursty"
  "ext_bursty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bursty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
