# Empty dependencies file for ext_bursty.
# This may be replaced when dependencies are built.
