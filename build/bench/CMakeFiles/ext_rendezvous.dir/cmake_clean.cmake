file(REMOVE_RECURSE
  "CMakeFiles/ext_rendezvous.dir/ext_rendezvous.cpp.o"
  "CMakeFiles/ext_rendezvous.dir/ext_rendezvous.cpp.o.d"
  "ext_rendezvous"
  "ext_rendezvous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_rendezvous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
