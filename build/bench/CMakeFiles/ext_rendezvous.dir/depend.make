# Empty dependencies file for ext_rendezvous.
# This may be replaced when dependencies are built.
