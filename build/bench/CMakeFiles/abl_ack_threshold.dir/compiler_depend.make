# Empty compiler generated dependencies file for abl_ack_threshold.
# This may be replaced when dependencies are built.
