file(REMOVE_RECURSE
  "CMakeFiles/abl_ack_threshold.dir/abl_ack_threshold.cpp.o"
  "CMakeFiles/abl_ack_threshold.dir/abl_ack_threshold.cpp.o.d"
  "abl_ack_threshold"
  "abl_ack_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ack_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
