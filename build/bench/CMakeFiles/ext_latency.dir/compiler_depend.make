# Empty compiler generated dependencies file for ext_latency.
# This may be replaced when dependencies are built.
