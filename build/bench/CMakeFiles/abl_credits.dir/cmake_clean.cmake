file(REMOVE_RECURSE
  "CMakeFiles/abl_credits.dir/abl_credits.cpp.o"
  "CMakeFiles/abl_credits.dir/abl_credits.cpp.o.d"
  "abl_credits"
  "abl_credits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_credits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
