# Empty compiler generated dependencies file for abl_credits.
# This may be replaced when dependencies are built.
