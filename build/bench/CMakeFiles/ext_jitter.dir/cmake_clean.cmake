file(REMOVE_RECURSE
  "CMakeFiles/ext_jitter.dir/ext_jitter.cpp.o"
  "CMakeFiles/ext_jitter.dir/ext_jitter.cpp.o.d"
  "ext_jitter"
  "ext_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
