# Empty compiler generated dependencies file for ext_jitter.
# This may be replaced when dependencies are built.
