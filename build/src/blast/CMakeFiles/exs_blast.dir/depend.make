# Empty dependencies file for exs_blast.
# This may be replaced when dependencies are built.
