file(REMOVE_RECURSE
  "libexs_blast.a"
)
