file(REMOVE_RECURSE
  "CMakeFiles/exs_blast.dir/blast.cpp.o"
  "CMakeFiles/exs_blast.dir/blast.cpp.o.d"
  "libexs_blast.a"
  "libexs_blast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exs_blast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
