# Empty dependencies file for exs_verbs.
# This may be replaced when dependencies are built.
