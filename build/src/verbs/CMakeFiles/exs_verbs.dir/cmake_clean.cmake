file(REMOVE_RECURSE
  "CMakeFiles/exs_verbs.dir/device.cpp.o"
  "CMakeFiles/exs_verbs.dir/device.cpp.o.d"
  "CMakeFiles/exs_verbs.dir/queue_pair.cpp.o"
  "CMakeFiles/exs_verbs.dir/queue_pair.cpp.o.d"
  "libexs_verbs.a"
  "libexs_verbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exs_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
