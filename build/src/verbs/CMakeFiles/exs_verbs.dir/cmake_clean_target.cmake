file(REMOVE_RECURSE
  "libexs_verbs.a"
)
