file(REMOVE_RECURSE
  "CMakeFiles/exs_core.dir/channel.cpp.o"
  "CMakeFiles/exs_core.dir/channel.cpp.o.d"
  "CMakeFiles/exs_core.dir/connection.cpp.o"
  "CMakeFiles/exs_core.dir/connection.cpp.o.d"
  "CMakeFiles/exs_core.dir/rendezvous.cpp.o"
  "CMakeFiles/exs_core.dir/rendezvous.cpp.o.d"
  "CMakeFiles/exs_core.dir/seqpacket.cpp.o"
  "CMakeFiles/exs_core.dir/seqpacket.cpp.o.d"
  "CMakeFiles/exs_core.dir/socket.cpp.o"
  "CMakeFiles/exs_core.dir/socket.cpp.o.d"
  "CMakeFiles/exs_core.dir/stream_rx.cpp.o"
  "CMakeFiles/exs_core.dir/stream_rx.cpp.o.d"
  "CMakeFiles/exs_core.dir/stream_tx.cpp.o"
  "CMakeFiles/exs_core.dir/stream_tx.cpp.o.d"
  "CMakeFiles/exs_core.dir/trace.cpp.o"
  "CMakeFiles/exs_core.dir/trace.cpp.o.d"
  "libexs_core.a"
  "libexs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
