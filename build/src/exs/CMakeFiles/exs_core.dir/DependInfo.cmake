
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exs/channel.cpp" "src/exs/CMakeFiles/exs_core.dir/channel.cpp.o" "gcc" "src/exs/CMakeFiles/exs_core.dir/channel.cpp.o.d"
  "/root/repo/src/exs/connection.cpp" "src/exs/CMakeFiles/exs_core.dir/connection.cpp.o" "gcc" "src/exs/CMakeFiles/exs_core.dir/connection.cpp.o.d"
  "/root/repo/src/exs/rendezvous.cpp" "src/exs/CMakeFiles/exs_core.dir/rendezvous.cpp.o" "gcc" "src/exs/CMakeFiles/exs_core.dir/rendezvous.cpp.o.d"
  "/root/repo/src/exs/seqpacket.cpp" "src/exs/CMakeFiles/exs_core.dir/seqpacket.cpp.o" "gcc" "src/exs/CMakeFiles/exs_core.dir/seqpacket.cpp.o.d"
  "/root/repo/src/exs/socket.cpp" "src/exs/CMakeFiles/exs_core.dir/socket.cpp.o" "gcc" "src/exs/CMakeFiles/exs_core.dir/socket.cpp.o.d"
  "/root/repo/src/exs/stream_rx.cpp" "src/exs/CMakeFiles/exs_core.dir/stream_rx.cpp.o" "gcc" "src/exs/CMakeFiles/exs_core.dir/stream_rx.cpp.o.d"
  "/root/repo/src/exs/stream_tx.cpp" "src/exs/CMakeFiles/exs_core.dir/stream_tx.cpp.o" "gcc" "src/exs/CMakeFiles/exs_core.dir/stream_tx.cpp.o.d"
  "/root/repo/src/exs/trace.cpp" "src/exs/CMakeFiles/exs_core.dir/trace.cpp.o" "gcc" "src/exs/CMakeFiles/exs_core.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/exs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/verbs/CMakeFiles/exs_verbs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
