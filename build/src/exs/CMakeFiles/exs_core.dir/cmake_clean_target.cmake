file(REMOVE_RECURSE
  "libexs_core.a"
)
