# Empty compiler generated dependencies file for exs_core.
# This may be replaced when dependencies are built.
