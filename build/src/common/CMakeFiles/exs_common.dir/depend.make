# Empty dependencies file for exs_common.
# This may be replaced when dependencies are built.
