file(REMOVE_RECURSE
  "libexs_common.a"
)
