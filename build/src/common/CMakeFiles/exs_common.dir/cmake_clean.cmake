file(REMOVE_RECURSE
  "CMakeFiles/exs_common.dir/logging.cpp.o"
  "CMakeFiles/exs_common.dir/logging.cpp.o.d"
  "CMakeFiles/exs_common.dir/stats.cpp.o"
  "CMakeFiles/exs_common.dir/stats.cpp.o.d"
  "libexs_common.a"
  "libexs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
