# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/verbs_test[1]_include.cmake")
include("/root/repo/build/tests/exs_test[1]_include.cmake")
include("/root/repo/build/tests/blast_test[1]_include.cmake")
