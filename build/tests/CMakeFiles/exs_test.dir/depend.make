# Empty dependencies file for exs_test.
# This may be replaced when dependencies are built.
