
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/channel_test.cpp" "tests/CMakeFiles/exs_test.dir/channel_test.cpp.o" "gcc" "tests/CMakeFiles/exs_test.dir/channel_test.cpp.o.d"
  "/root/repo/tests/close_test.cpp" "tests/CMakeFiles/exs_test.dir/close_test.cpp.o" "gcc" "tests/CMakeFiles/exs_test.dir/close_test.cpp.o.d"
  "/root/repo/tests/connection_test.cpp" "tests/CMakeFiles/exs_test.dir/connection_test.cpp.o" "gcc" "tests/CMakeFiles/exs_test.dir/connection_test.cpp.o.d"
  "/root/repo/tests/cross_profile_test.cpp" "tests/CMakeFiles/exs_test.dir/cross_profile_test.cpp.o" "gcc" "tests/CMakeFiles/exs_test.dir/cross_profile_test.cpp.o.d"
  "/root/repo/tests/event_queue_test.cpp" "tests/CMakeFiles/exs_test.dir/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/exs_test.dir/event_queue_test.cpp.o.d"
  "/root/repo/tests/rendezvous_integration_test.cpp" "tests/CMakeFiles/exs_test.dir/rendezvous_integration_test.cpp.o" "gcc" "tests/CMakeFiles/exs_test.dir/rendezvous_integration_test.cpp.o.d"
  "/root/repo/tests/rendezvous_test.cpp" "tests/CMakeFiles/exs_test.dir/rendezvous_test.cpp.o" "gcc" "tests/CMakeFiles/exs_test.dir/rendezvous_test.cpp.o.d"
  "/root/repo/tests/scenario_test.cpp" "tests/CMakeFiles/exs_test.dir/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/exs_test.dir/scenario_test.cpp.o.d"
  "/root/repo/tests/seqpacket_property_test.cpp" "tests/CMakeFiles/exs_test.dir/seqpacket_property_test.cpp.o" "gcc" "tests/CMakeFiles/exs_test.dir/seqpacket_property_test.cpp.o.d"
  "/root/repo/tests/seqpacket_test.cpp" "tests/CMakeFiles/exs_test.dir/seqpacket_test.cpp.o" "gcc" "tests/CMakeFiles/exs_test.dir/seqpacket_test.cpp.o.d"
  "/root/repo/tests/socket_api_test.cpp" "tests/CMakeFiles/exs_test.dir/socket_api_test.cpp.o" "gcc" "tests/CMakeFiles/exs_test.dir/socket_api_test.cpp.o.d"
  "/root/repo/tests/stream_basic_test.cpp" "tests/CMakeFiles/exs_test.dir/stream_basic_test.cpp.o" "gcc" "tests/CMakeFiles/exs_test.dir/stream_basic_test.cpp.o.d"
  "/root/repo/tests/stream_dynamic_test.cpp" "tests/CMakeFiles/exs_test.dir/stream_dynamic_test.cpp.o" "gcc" "tests/CMakeFiles/exs_test.dir/stream_dynamic_test.cpp.o.d"
  "/root/repo/tests/stream_edge_test.cpp" "tests/CMakeFiles/exs_test.dir/stream_edge_test.cpp.o" "gcc" "tests/CMakeFiles/exs_test.dir/stream_edge_test.cpp.o.d"
  "/root/repo/tests/stream_property_test.cpp" "tests/CMakeFiles/exs_test.dir/stream_property_test.cpp.o" "gcc" "tests/CMakeFiles/exs_test.dir/stream_property_test.cpp.o.d"
  "/root/repo/tests/stream_wan_test.cpp" "tests/CMakeFiles/exs_test.dir/stream_wan_test.cpp.o" "gcc" "tests/CMakeFiles/exs_test.dir/stream_wan_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/exs_test.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/exs_test.dir/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exs/CMakeFiles/exs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/blast/CMakeFiles/exs_blast.dir/DependInfo.cmake"
  "/root/repo/build/src/verbs/CMakeFiles/exs_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/exs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
