file(REMOVE_RECURSE
  "CMakeFiles/verbs_test.dir/iwarp_emulation_test.cpp.o"
  "CMakeFiles/verbs_test.dir/iwarp_emulation_test.cpp.o.d"
  "CMakeFiles/verbs_test.dir/verbs_extra_test.cpp.o"
  "CMakeFiles/verbs_test.dir/verbs_extra_test.cpp.o.d"
  "CMakeFiles/verbs_test.dir/verbs_test.cpp.o"
  "CMakeFiles/verbs_test.dir/verbs_test.cpp.o.d"
  "verbs_test"
  "verbs_test.pdb"
  "verbs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
