
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pattern_test.cpp" "tests/CMakeFiles/common_test.dir/pattern_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/pattern_test.cpp.o.d"
  "/root/repo/tests/ring_buffer_test.cpp" "tests/CMakeFiles/common_test.dir/ring_buffer_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/ring_buffer_test.cpp.o.d"
  "/root/repo/tests/rng_test.cpp" "tests/CMakeFiles/common_test.dir/rng_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/rng_test.cpp.o.d"
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/common_test.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/stats_test.cpp.o.d"
  "/root/repo/tests/units_test.cpp" "tests/CMakeFiles/common_test.dir/units_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/units_test.cpp.o.d"
  "/root/repo/tests/wire_test.cpp" "tests/CMakeFiles/common_test.dir/wire_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/wire_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exs/CMakeFiles/exs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/blast/CMakeFiles/exs_blast.dir/DependInfo.cmake"
  "/root/repo/build/src/verbs/CMakeFiles/exs_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/exs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
