# Empty compiler generated dependencies file for blast_test.
# This may be replaced when dependencies are built.
