file(REMOVE_RECURSE
  "CMakeFiles/blast_test.dir/blast_test.cpp.o"
  "CMakeFiles/blast_test.dir/blast_test.cpp.o.d"
  "CMakeFiles/blast_test.dir/blast_workload_test.cpp.o"
  "CMakeFiles/blast_test.dir/blast_workload_test.cpp.o.d"
  "CMakeFiles/blast_test.dir/calibration_test.cpp.o"
  "CMakeFiles/blast_test.dir/calibration_test.cpp.o.d"
  "blast_test"
  "blast_test.pdb"
  "blast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
