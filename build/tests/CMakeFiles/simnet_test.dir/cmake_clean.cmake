file(REMOVE_RECURSE
  "CMakeFiles/simnet_test.dir/cpu_test.cpp.o"
  "CMakeFiles/simnet_test.dir/cpu_test.cpp.o.d"
  "CMakeFiles/simnet_test.dir/event_scheduler_test.cpp.o"
  "CMakeFiles/simnet_test.dir/event_scheduler_test.cpp.o.d"
  "CMakeFiles/simnet_test.dir/link_test.cpp.o"
  "CMakeFiles/simnet_test.dir/link_test.cpp.o.d"
  "CMakeFiles/simnet_test.dir/simnet_extra_test.cpp.o"
  "CMakeFiles/simnet_test.dir/simnet_extra_test.cpp.o.d"
  "simnet_test"
  "simnet_test.pdb"
  "simnet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
