# Empty dependencies file for blast_cli.
# This may be replaced when dependencies are built.
