file(REMOVE_RECURSE
  "CMakeFiles/blast_cli.dir/blast_cli.cpp.o"
  "CMakeFiles/blast_cli.dir/blast_cli.cpp.o.d"
  "blast"
  "blast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blast_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
