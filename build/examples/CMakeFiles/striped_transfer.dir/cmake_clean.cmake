file(REMOVE_RECURSE
  "CMakeFiles/striped_transfer.dir/striped_transfer.cpp.o"
  "CMakeFiles/striped_transfer.dir/striped_transfer.cpp.o.d"
  "striped_transfer"
  "striped_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/striped_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
