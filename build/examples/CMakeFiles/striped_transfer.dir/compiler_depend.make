# Empty compiler generated dependencies file for striped_transfer.
# This may be replaced when dependencies are built.
