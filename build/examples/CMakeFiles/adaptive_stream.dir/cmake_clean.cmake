file(REMOVE_RECURSE
  "CMakeFiles/adaptive_stream.dir/adaptive_stream.cpp.o"
  "CMakeFiles/adaptive_stream.dir/adaptive_stream.cpp.o.d"
  "adaptive_stream"
  "adaptive_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
