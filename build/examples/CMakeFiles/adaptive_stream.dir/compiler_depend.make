# Empty compiler generated dependencies file for adaptive_stream.
# This may be replaced when dependencies are built.
