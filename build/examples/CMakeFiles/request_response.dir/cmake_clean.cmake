file(REMOVE_RECURSE
  "CMakeFiles/request_response.dir/request_response.cpp.o"
  "CMakeFiles/request_response.dir/request_response.cpp.o.d"
  "request_response"
  "request_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/request_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
