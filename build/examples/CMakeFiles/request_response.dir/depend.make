# Empty dependencies file for request_response.
# This may be replaced when dependencies are built.
