// Runtime verification of the paper's §IV-A proofs: record full protocol
// traces during adversarial workloads and check Lemmas 1-4 plus the
// monotonicity/conservation facts their proofs rest on.  Where the
// property tests check the *consequence* of the safety theorem (bytes land
// correctly), these check the *stated invariants themselves*.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/pattern.hpp"
#include "common/rng.hpp"
#include "exs/exs.hpp"
#include "exs/trace.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

TEST(TraceLog, DisabledByDefaultAndRecordsWhenEnabled) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 1, false);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
  std::vector<std::uint8_t> buf(4096);
  server->Recv(buf.data(), buf.size());
  client->Send(buf.data(), buf.size());
  sim.Run();
  EXPECT_TRUE(client->tx_trace().events().empty());

  client->EnableTracing();
  server->EnableTracing();
  server->Recv(buf.data(), buf.size());
  client->Send(buf.data(), buf.size());
  sim.Run();
  EXPECT_FALSE(client->tx_trace().events().empty());
  EXPECT_FALSE(server->rx_trace().events().empty());
  EXPECT_FALSE(client->tx_trace().Format().empty());
}

TEST(TraceLemmas, SimpleDirectRunSatisfiesAll) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 2, false);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
  client->EnableTracing();
  server->EnableTracing();
  std::vector<std::uint8_t> buf(64 * 1024);
  for (int i = 0; i < 8; ++i) {
    server->Recv(buf.data(), buf.size(), RecvFlags{.waitall = true});
    sim.RunFor(Microseconds(30));
    client->Send(buf.data(), buf.size());
    sim.Run();
  }
  auto result = ValidateConnectionTraces(client->tx_trace().events(),
                                         server->rx_trace().events());
  EXPECT_TRUE(result.ok()) << result.Summary();
}

TEST(TraceLemmas, IndirectHeavyRunSatisfiesAll) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 3, false);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
  client->EnableTracing();
  server->EnableTracing();
  std::vector<std::uint8_t> out(512 * 1024), in(512 * 1024);
  client->Send(out.data(), out.size());  // everything buffered first
  for (int i = 0; i < 8; ++i) {
    server->Recv(in.data() + i * 64 * 1024, 64 * 1024,
                 RecvFlags{.waitall = true});
    sim.RunFor(Microseconds(50));
  }
  sim.Run();
  auto result = ValidateConnectionTraces(client->tx_trace().events(),
                                         server->rx_trace().events());
  EXPECT_TRUE(result.ok()) << result.Summary();
  // The run must actually have exercised the indirect machinery.
  EXPECT_GE(client->stats().indirect_transfers, 1u);
}

struct LemmaSweepParams {
  std::uint64_t seed;
  std::uint64_t buffer_bytes;
};

class TraceLemmaSweep : public ::testing::TestWithParam<LemmaSweepParams> {};

TEST_P(TraceLemmaSweep, RandomizedWorkloadSatisfiesLemmas) {
  const auto& p = GetParam();
  StreamOptions opts;
  opts.intermediate_buffer_bytes = p.buffer_bytes;
  Simulation sim(HardwareProfile::FdrInfiniBand(), p.seed, false);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();

  Rng rng(p.seed * 31 + 7);
  constexpr std::uint64_t kTotal = 512 * 1024;
  std::vector<std::uint8_t> out(kTotal), in(kTotal);
  std::uint64_t sent = 0, recv_posted = 0, recv_done = 0;
  server->events().SetHandler(
      [&](const Event& ev) { recv_done += ev.bytes; });

  std::uint64_t guard = 0;
  while (recv_done < kTotal) {
    ASSERT_LT(++guard, 100000u);
    if (sent < kTotal && rng.NextBool(0.6)) {
      std::uint64_t n = std::min<std::uint64_t>(
          rng.NextInRange(1, 48 * 1024), kTotal - sent);
      client->Send(out.data() + sent, n);
      sent += n;
    }
    if (recv_posted < kTotal && rng.NextBool(0.6)) {
      std::uint64_t n = std::min<std::uint64_t>(
          rng.NextInRange(1, 48 * 1024), kTotal - recv_posted);
      server->Recv(in.data() + recv_posted, n, RecvFlags{.waitall = true});
      recv_posted += n;
    }
    sim.RunFor(
        static_cast<SimDuration>(rng.NextInRange(0, Microseconds(40))));
    if (sent == kTotal && recv_posted == kTotal) sim.Run();
  }
  sim.Run();

  auto result = ValidateConnectionTraces(client->tx_trace().events(),
                                         server->rx_trace().events());
  EXPECT_TRUE(result.ok()) << result.Summary();

  // Sanity: the sweep genuinely mixes modes across its seeds.
  const StreamStats& stats = client->stats();
  EXPECT_EQ(stats.direct_bytes + stats.indirect_bytes, kTotal);
}

std::vector<LemmaSweepParams> LemmaParams() {
  std::vector<LemmaSweepParams> params;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    params.push_back({seed, 64 * 1024});
  }
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    params.push_back({seed, 4 * 1024});  // tiny buffer: constant churn
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TraceLemmaSweep, ::testing::ValuesIn(LemmaParams()),
    [](const ::testing::TestParamInfo<LemmaSweepParams>& info) {
      return "seed" + std::to_string(info.param.seed) + "_buf" +
             std::to_string(info.param.buffer_bytes / 1024) + "k";
    });

TEST(TraceValidators, CatchFabricatedViolations) {
  // The validators must actually reject bad traces, not rubber-stamp them.
  std::vector<TraceEvent> bad;
  TraceEvent ev;
  ev.type = TraceEventType::kAdvertSent;
  ev.phase = 2;
  ev.msg_phase = 3;  // Lemma 1 violation: indirect phase in an ADVERT
  ev.msg_seq = 10;
  bad.push_back(ev);
  EXPECT_FALSE(ValidateReceiverTrace(bad).ok());

  bad.clear();
  ev = TraceEvent{};
  ev.type = TraceEventType::kIndirectPosted;
  ev.phase = 2;  // indirect transfer in a direct phase
  bad.push_back(ev);
  EXPECT_FALSE(ValidateSenderTrace(bad).ok());

  bad.clear();
  ev = TraceEvent{};
  ev.type = TraceEventType::kCopyOut;
  ev.seq = 100;
  bad.push_back(ev);
  ev.seq = 50;  // sequence going backwards
  bad.push_back(ev);
  EXPECT_FALSE(ValidateReceiverTrace(bad).ok());

  bad.clear();
  ev = TraceEvent{};
  ev.type = TraceEventType::kAdvertAccepted;
  ev.phase = 1;  // indirect phase acceptance...
  ev.seq = 64;
  ev.msg_seq = 32;  // ...with a mismatched sequence number
  ev.msg_phase = 2;
  bad.push_back(ev);
  EXPECT_FALSE(ValidateSenderTrace(bad).ok());
}

TEST(TraceValidators, ConservationCatchesLoss) {
  std::vector<TraceEvent> tx, rx;
  TraceEvent ev;
  ev.type = TraceEventType::kIndirectPosted;
  ev.phase = 1;
  ev.len = 1000;
  tx.push_back(ev);
  ev.type = TraceEventType::kIndirectArrived;
  ev.len = 900;  // 100 bytes vanished
  rx.push_back(ev);
  auto result = ValidateConnectionTraces(tx, rx);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.Summary().find("conservation"), std::string::npos);
}

}  // namespace
}  // namespace exs
