// End-to-end behaviour of the stream socket: byte delivery, splitting,
// MSG_WAITALL, zero-copy registration, and the forced baseline modes.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

struct EventLog {
  std::vector<Event> events;
  void Attach(Socket& s) {
    s.events().SetHandler([this](const Event& ev) { events.push_back(ev); });
  }
  std::uint64_t TotalBytes(EventType type) const {
    std::uint64_t total = 0;
    for (const auto& ev : events) {
      if (ev.type == type) total += ev.bytes;
    }
    return total;
  }
  std::size_t Count(EventType type) const {
    std::size_t n = 0;
    for (const auto& ev : events) n += ev.type == type ? 1 : 0;
    return n;
  }
};

class StreamBasicTest : public ::testing::Test {
 protected:
  Simulation sim_{HardwareProfile::FdrInfiniBand(), /*seed=*/7,
                  /*carry_payload=*/true};
};

TEST_F(StreamBasicTest, SingleMessageDeliversBytes) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  EventLog client_log, server_log;
  client_log.Attach(*client);
  server_log.Attach(*server);

  std::vector<std::uint8_t> out(4096), in(4096, 0);
  FillPattern(out.data(), out.size(), 0, 1);

  server->Recv(in.data(), in.size());
  client->Send(out.data(), out.size());
  sim_.Run();

  ASSERT_EQ(server_log.Count(EventType::kRecvComplete), 1u);
  EXPECT_EQ(server_log.events[0].bytes, 4096u);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 1), in.size());
  ASSERT_EQ(client_log.Count(EventType::kSendComplete), 1u);
  EXPECT_EQ(client_log.events[0].bytes, 4096u);
}

TEST_F(StreamBasicTest, RecvPostedFirstUsesDirectTransfer) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  std::vector<std::uint8_t> out(64 * 1024), in(64 * 1024);

  server->Recv(in.data(), in.size());
  // Let the ADVERT reach the client before it sends.
  sim_.RunFor(Microseconds(20));
  client->Send(out.data(), out.size());
  sim_.Run();

  EXPECT_EQ(client->stats().direct_transfers, 1u);
  EXPECT_EQ(client->stats().indirect_transfers, 0u);
  EXPECT_EQ(client->stats().mode_switches, 0u);
}

TEST_F(StreamBasicTest, SendBeforeRecvUsesIndirectTransfer) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  std::vector<std::uint8_t> out(64 * 1024), in(64 * 1024);
  FillPattern(out.data(), out.size(), 0, 9);

  client->Send(out.data(), out.size());
  sim_.RunFor(Microseconds(50));
  EventLog server_log;
  server_log.Attach(*server);
  server->Recv(in.data(), in.size());
  sim_.Run();

  EXPECT_GE(client->stats().indirect_transfers, 1u);
  EXPECT_EQ(client->stats().direct_transfers, 0u);
  EXPECT_EQ(client->stats().mode_switches, 1u);
  EXPECT_EQ(server_log.TotalBytes(EventType::kRecvComplete), out.size());
  EXPECT_EQ(VerifyPattern(in.data(), out.size(), 0, 9), out.size());
}

TEST_F(StreamBasicTest, LargeSendSplitsAcrossMultipleRecvs) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  constexpr std::uint64_t kTotal = 256 * 1024;
  constexpr std::uint64_t kRecvSize = 64 * 1024;
  std::vector<std::uint8_t> out(kTotal), in(kTotal);
  FillPattern(out.data(), out.size(), 0, 3);

  EventLog server_log;
  server_log.Attach(*server);
  for (int i = 0; i < 4; ++i) {
    server->Recv(in.data() + i * kRecvSize, kRecvSize,
                 RecvFlags{.waitall = true});
  }
  sim_.RunFor(Microseconds(20));
  client->Send(out.data(), kTotal);
  sim_.Run();

  EXPECT_EQ(server_log.Count(EventType::kRecvComplete), 4u);
  EXPECT_EQ(server_log.TotalBytes(EventType::kRecvComplete), kTotal);
  EXPECT_EQ(VerifyPattern(in.data(), kTotal, 0, 3), kTotal);
}

TEST_F(StreamBasicTest, WaitallHoldsCompletionUntilFull) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  constexpr std::uint64_t kRecvSize = 96 * 1024;
  std::vector<std::uint8_t> out(kRecvSize), in(kRecvSize);
  FillPattern(out.data(), out.size(), 0, 4);

  EventLog server_log;
  server_log.Attach(*server);
  server->Recv(in.data(), kRecvSize, RecvFlags{.waitall = true});
  sim_.RunFor(Microseconds(20));

  // Three sends fill one WAITALL receive; only then may it complete.
  client->Send(out.data(), 32 * 1024);
  sim_.Run();
  EXPECT_EQ(server_log.Count(EventType::kRecvComplete), 0u);
  client->Send(out.data() + 32 * 1024, 32 * 1024);
  sim_.Run();
  EXPECT_EQ(server_log.Count(EventType::kRecvComplete), 0u);
  client->Send(out.data() + 64 * 1024, 32 * 1024);
  sim_.Run();

  ASSERT_EQ(server_log.Count(EventType::kRecvComplete), 1u);
  EXPECT_EQ(server_log.events[0].bytes, kRecvSize);
  EXPECT_EQ(VerifyPattern(in.data(), kRecvSize, 0, 4), kRecvSize);
}

TEST_F(StreamBasicTest, WithoutWaitallRecvCompletesOnFirstChunk) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  std::vector<std::uint8_t> out(8 * 1024), in(64 * 1024);

  EventLog server_log;
  server_log.Attach(*server);
  server->Recv(in.data(), in.size());  // bigger than the send
  sim_.RunFor(Microseconds(20));
  client->Send(out.data(), out.size());
  sim_.Run();

  ASSERT_EQ(server_log.Count(EventType::kRecvComplete), 1u);
  EXPECT_EQ(server_log.events[0].bytes, out.size());
}

TEST_F(StreamBasicTest, DirectOnlyModeNeverTouchesBuffer) {
  StreamOptions opts;
  opts.mode = ProtocolMode::kDirectOnly;
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, opts);
  std::vector<std::uint8_t> out(32 * 1024), in(32 * 1024);
  FillPattern(out.data(), out.size(), 0, 5);

  // Send first: the sender must *wait* rather than go indirect.
  client->Send(out.data(), out.size());
  sim_.RunFor(Milliseconds(1));
  EXPECT_EQ(client->stats().TotalTransfers(), 0u);

  server->Recv(in.data(), in.size());
  sim_.Run();
  EXPECT_EQ(client->stats().direct_transfers, 1u);
  EXPECT_EQ(client->stats().indirect_transfers, 0u);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 5), in.size());
}

TEST_F(StreamBasicTest, IndirectOnlyModeSendsNoAdverts) {
  StreamOptions opts;
  opts.mode = ProtocolMode::kIndirectOnly;
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, opts);
  std::vector<std::uint8_t> out(32 * 1024), in(32 * 1024);
  FillPattern(out.data(), out.size(), 0, 6);

  EventLog server_log;
  server_log.Attach(*server);
  server->Recv(in.data(), in.size());
  sim_.RunFor(Microseconds(20));
  client->Send(out.data(), out.size());
  sim_.Run();

  EXPECT_EQ(server->stats().adverts_sent, 0u);
  EXPECT_EQ(client->stats().direct_transfers, 0u);
  EXPECT_GE(client->stats().indirect_transfers, 1u);
  EXPECT_EQ(server_log.TotalBytes(EventType::kRecvComplete), out.size());
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 6), in.size());
}

TEST_F(StreamBasicTest, FullDuplexStreamsAreIndependent) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  std::vector<std::uint8_t> a_out(16 * 1024), a_in(16 * 1024);
  std::vector<std::uint8_t> b_out(24 * 1024), b_in(24 * 1024);
  FillPattern(a_out.data(), a_out.size(), 0, 11);
  FillPattern(b_out.data(), b_out.size(), 0, 22);

  server->Recv(a_in.data(), a_in.size(), RecvFlags{.waitall = true});
  client->Recv(b_in.data(), b_in.size(), RecvFlags{.waitall = true});
  client->Send(a_out.data(), a_out.size());
  server->Send(b_out.data(), b_out.size());
  sim_.Run();

  EXPECT_EQ(VerifyPattern(a_in.data(), a_in.size(), 0, 11), a_in.size());
  EXPECT_EQ(VerifyPattern(b_in.data(), b_in.size(), 0, 22), b_in.size());
  EXPECT_TRUE(client->Quiescent());
  EXPECT_TRUE(server->Quiescent());
}

TEST_F(StreamBasicTest, ZeroLengthSendCompletesImmediately) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  (void)server;
  EventLog log;
  log.Attach(*client);
  client->Send(nullptr, 0);
  sim_.Run();
  ASSERT_EQ(log.Count(EventType::kSendComplete), 1u);
  EXPECT_EQ(log.events[0].bytes, 0u);
}

TEST_F(StreamBasicTest, ExplicitRegistrationIsHonored) {
  StreamOptions opts;
  opts.auto_register_memory = false;
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, opts);
  std::vector<std::uint8_t> out(4096), in(4096);
  client->RegisterMemory(out.data(), out.size());
  server->RegisterMemory(in.data(), in.size());

  server->Recv(in.data(), in.size());
  client->Send(out.data(), out.size());
  sim_.Run();
  EXPECT_EQ(server->stats().recvs_completed, 1u);

  // An unregistered buffer must be rejected when auto-registration is off.
  std::vector<std::uint8_t> rogue(128);
  EXPECT_THROW(client->Send(rogue.data(), rogue.size()), InvariantViolation);
}

TEST_F(StreamBasicTest, ManySmallSendsPreserveOrder) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  constexpr int kMessages = 200;
  constexpr std::uint64_t kSize = 777;
  std::vector<std::uint8_t> out(kMessages * kSize), in(kMessages * kSize);
  FillPattern(out.data(), out.size(), 0, 13);

  EventLog server_log;
  server_log.Attach(*server);
  for (int i = 0; i < kMessages; ++i) {
    server->Recv(in.data() + i * kSize, kSize, RecvFlags{.waitall = true});
  }
  for (int i = 0; i < kMessages; ++i) {
    client->Send(out.data() + i * kSize, kSize);
  }
  sim_.Run();

  EXPECT_EQ(server_log.Count(EventType::kRecvComplete),
            static_cast<std::size_t>(kMessages));
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 13), in.size());
}

}  // namespace
}  // namespace exs
