// SOCK_SEQPACKET message-mode semantics (§II-C): boundaries preserved,
// one ADVERT per receive, truncation of oversize messages.
#include <gtest/gtest.h>

#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

class SeqPacketTest : public ::testing::Test {
 protected:
  Simulation sim_{HardwareProfile::FdrInfiniBand(), /*seed=*/9,
                  /*carry_payload=*/true};
};

TEST_F(SeqPacketTest, MessageBoundariesArePreserved) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kSeqPacket);
  std::vector<std::uint8_t> out(3 * 1024), in(3 * 4096);
  FillPattern(out.data(), out.size(), 0, 1);

  std::vector<Event> recvs;
  server->events().SetHandler([&](const Event& ev) { recvs.push_back(ev); });

  // Three receives, three differently-sized messages: each message lands
  // in its own buffer, never coalesced or split.
  for (int i = 0; i < 3; ++i) server->Recv(in.data() + i * 4096, 4096);
  sim_.RunFor(Microseconds(20));
  client->Send(out.data(), 100);
  client->Send(out.data() + 100, 1000);
  client->Send(out.data() + 1100, 500);
  sim_.Run();

  ASSERT_EQ(recvs.size(), 3u);
  EXPECT_EQ(recvs[0].bytes, 100u);
  EXPECT_EQ(recvs[1].bytes, 1000u);
  EXPECT_EQ(recvs[2].bytes, 500u);
  EXPECT_EQ(VerifyPattern(in.data(), 100, 0, 1), 100u);
  EXPECT_EQ(VerifyPattern(in.data() + 4096, 1000, 100, 1), 1000u);
  EXPECT_EQ(VerifyPattern(in.data() + 8192, 500, 1100, 1), 500u);
}

TEST_F(SeqPacketTest, SendWaitsForAdvert) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kSeqPacket);
  std::vector<std::uint8_t> out(256), in(256);

  client->Send(out.data(), out.size());
  sim_.RunFor(Milliseconds(1));
  // No receive posted: message mode never buffers, so nothing moved.
  EXPECT_EQ(client->stats().TotalTransfers(), 0u);
  EXPECT_EQ(client->stats().sends_completed, 0u);

  server->Recv(in.data(), in.size());
  sim_.Run();
  EXPECT_EQ(client->stats().sends_completed, 1u);
  EXPECT_EQ(server->stats().recvs_completed, 1u);
}

TEST_F(SeqPacketTest, OversizeMessageIsTruncated) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kSeqPacket);
  std::vector<std::uint8_t> out(2048), in(512);
  FillPattern(out.data(), out.size(), 0, 2);

  std::vector<Event> client_events, server_events;
  client->events().SetHandler(
      [&](const Event& ev) { client_events.push_back(ev); });
  server->events().SetHandler(
      [&](const Event& ev) { server_events.push_back(ev); });

  server->Recv(in.data(), in.size());
  sim_.RunFor(Microseconds(20));
  client->Send(out.data(), out.size());  // 2048 into a 512-byte buffer
  sim_.Run();

  // The message-oriented hazard of §I: only the part that fits is sent.
  ASSERT_EQ(client_events.size(), 1u);
  EXPECT_TRUE(client_events[0].truncated);
  EXPECT_EQ(client_events[0].bytes, 512u);
  ASSERT_EQ(server_events.size(), 1u);
  EXPECT_EQ(server_events[0].bytes, 512u);
  EXPECT_EQ(VerifyPattern(in.data(), 512, 0, 2), 512u);
}

TEST_F(SeqPacketTest, ManyOutstandingMessages) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kSeqPacket);
  constexpr int kMessages = 100;
  constexpr std::uint64_t kSize = 2048;
  std::vector<std::uint8_t> out(kMessages * kSize), in(kMessages * kSize);
  FillPattern(out.data(), out.size(), 0, 3);

  std::uint64_t received = 0;
  server->events().SetHandler(
      [&](const Event& ev) { received += ev.bytes; });
  for (int i = 0; i < kMessages; ++i) {
    server->Recv(in.data() + i * kSize, kSize);
  }
  sim_.RunFor(Microseconds(30));
  for (int i = 0; i < kMessages; ++i) {
    client->Send(out.data() + i * kSize, kSize);
  }
  sim_.Run();

  EXPECT_EQ(received, out.size());
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 3), in.size());
  EXPECT_EQ(client->stats().direct_transfers,
            static_cast<std::uint64_t>(kMessages));
  EXPECT_TRUE(client->Quiescent());
  EXPECT_TRUE(server->Quiescent());
}

TEST_F(SeqPacketTest, FullDuplexMessages) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kSeqPacket);
  std::vector<std::uint8_t> ping(64), pong(64), ping_in(64), pong_in(64);
  FillPattern(ping.data(), 64, 0, 4);
  FillPattern(pong.data(), 64, 0, 5);

  server->Recv(ping_in.data(), 64);
  client->Recv(pong_in.data(), 64);
  sim_.RunFor(Microseconds(20));
  client->Send(ping.data(), 64);
  server->Send(pong.data(), 64);
  sim_.Run();

  EXPECT_EQ(VerifyPattern(ping_in.data(), 64, 0, 4), 64u);
  EXPECT_EQ(VerifyPattern(pong_in.data(), 64, 0, 5), 64u);
}

TEST_F(SeqPacketTest, MismatchedTypesRefuseToConnect) {
  Simulation sim2(HardwareProfile::FdrInfiniBand(), 1, true);
  auto& d0 = sim2.device(0);
  auto& d1 = sim2.device(1);
  Socket a(d0, SocketType::kStream, StreamOptions{}, "a");
  Socket b(d1, SocketType::kSeqPacket, StreamOptions{}, "b");
  EXPECT_THROW(Socket::ConnectPair(a, b), InvariantViolation);
}

}  // namespace
}  // namespace exs
