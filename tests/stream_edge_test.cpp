// Deterministic pins for the trickiest byte-accounting paths: one receive
// filled by both transfer kinds, and ADVERTs that cover only the remainder
// of a partially buffered receive.
#include <gtest/gtest.h>

#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

class StreamEdgeTest : public ::testing::Test {
 protected:
  Simulation sim_{HardwareProfile::FdrInfiniBand(), /*seed=*/41,
                  /*carry_payload=*/true};
};

// A WAITALL receive is advertised and half-filled by a direct transfer;
// the sender then races ahead (its remaining data goes indirect because
// the ADVERT was already consumed... held), and the *same* receive must be
// completed by buffer copies continuing at the right offset.
TEST_F(StreamEdgeTest, WaitallRecvFilledDirectThenIndirect) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  client->EnableTracing();
  server->EnableTracing();
  constexpr std::uint64_t kLen = 32 * 1024;
  std::vector<std::uint8_t> out(2 * kLen), in(2 * kLen);
  FillPattern(out.data(), out.size(), 0, 1);

  // Advertise the WAITALL receive and half-fill it directly.
  server->Recv(in.data(), kLen, RecvFlags{.waitall = true});
  sim_.RunFor(Microseconds(20));
  client->Send(out.data(), kLen / 2);
  sim_.Run();
  ASSERT_EQ(server->stats().recvs_completed, 0u);
  ASSERT_EQ(client->stats().direct_transfers, 1u);

  // Now force an indirect phase *while the WAITALL ADVERT is still held at
  // the sender's queue head*: a second receive cannot advertise (the
  // WAITALL head is unfinished), so nothing new reaches the sender; but
  // the sender still prefers the held ADVERT.  To genuinely push it
  // indirect we complete the WAITALL remainder and the extra bytes in one
  // oversized send: the first part goes direct into the held ADVERT, the
  // overflow has no ADVERT and goes through the buffer.
  client->Send(out.data() + kLen / 2, kLen / 2 + kLen);
  sim_.RunFor(Milliseconds(1));
  EXPECT_EQ(server->stats().recvs_completed, 1u);  // WAITALL full, direct
  EXPECT_GE(client->stats().indirect_transfers, 1u);  // overflow buffered

  // The buffered overflow lands in the next receive at the right offset.
  server->Recv(in.data() + kLen, kLen, RecvFlags{.waitall = true});
  sim_.Run();
  EXPECT_EQ(server->stats().recvs_completed, 2u);
  EXPECT_EQ(VerifyPattern(in.data(), 2 * kLen, 0, 1), 2 * kLen);

  auto lemmas = ValidateConnectionTraces(client->tx_trace().events(),
                                         server->rx_trace().events());
  EXPECT_TRUE(lemmas.ok()) << lemmas.Summary();
}

// A receive that is partially satisfied from the intermediate buffer and
// then advertised must advertise only its *remainder*, and the direct
// transfer must land at the fill offset.
TEST_F(StreamEdgeTest, PartiallyBufferedRecvAdvertisesRemainder) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  constexpr std::uint64_t kLen = 24 * 1024;
  std::vector<std::uint8_t> out(kLen), in(kLen);
  FillPattern(out.data(), out.size(), 0, 2);

  // A third of the data arrives with no receive posted: buffered.
  client->Send(out.data(), kLen / 3);
  sim_.RunFor(Milliseconds(1));

  // The WAITALL receive drains the buffer, then — queue empty, buffer
  // empty — its remaining two thirds are advertised with an exact
  // sequence number.
  server->Recv(in.data(), kLen, RecvFlags{.waitall = true});
  sim_.RunFor(Milliseconds(1));
  EXPECT_EQ(server->stats().recvs_completed, 0u);
  EXPECT_EQ(server->stats().adverts_sent, 1u);
  EXPECT_EQ(server->stats().bytes_copied_out, kLen / 3);

  // The rest flows direct, straight into offset kLen/3.
  client->Send(out.data() + kLen / 3, kLen - kLen / 3);
  sim_.Run();
  EXPECT_EQ(server->stats().recvs_completed, 1u);
  EXPECT_GE(client->stats().direct_transfers, 1u);
  EXPECT_EQ(VerifyPattern(in.data(), kLen, 0, 2), kLen);
  EXPECT_EQ(server->stream_rx()->sequence(),
            server->stream_rx()->sequence_estimate());
}

// The same remainder-advertising path under MSG_WAITALL=false: the plain
// receive completes short from the buffer, so it is never re-advertised.
TEST_F(StreamEdgeTest, PlainRecvNeverAdvertisesAfterBufferedFill) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  std::vector<std::uint8_t> out(8 * 1024), in(32 * 1024);
  FillPattern(out.data(), out.size(), 0, 3);

  client->Send(out.data(), out.size());
  sim_.RunFor(Milliseconds(1));
  server->Recv(in.data(), in.size());  // plain, bigger than the data
  sim_.Run();

  EXPECT_EQ(server->stats().recvs_completed, 1u);
  EXPECT_EQ(server->stats().bytes_received, out.size());
  EXPECT_EQ(server->stats().adverts_sent, 0u);  // satisfied wholly buffered
  EXPECT_EQ(VerifyPattern(in.data(), out.size(), 0, 3), out.size());
}

// A zero-length send is a no-op on the wire but not to the caller: it
// completes immediately with zero bytes, leaves a trace event, and does
// not disturb the surrounding stream.
TEST_F(StreamEdgeTest, ZeroLengthSendCompletesImmediately) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  client->EnableTracing();
  server->EnableTracing();
  std::vector<std::uint8_t> out(1024), in(1024);
  FillPattern(out.data(), out.size(), 0, 4);

  std::vector<Event> completions;
  client->events().SetHandler(
      [&](const Event& ev) { completions.push_back(ev); });

  std::uint64_t id0 = client->Send(out.data(), 512);
  std::uint64_t id1 = client->Send(out.data(), 0);  // between real sends
  std::uint64_t id2 = client->Send(out.data() + 512, 512);

  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();
  // The empty send completed without a wire crossing, so its event beat
  // both real sends despite being submitted between them.
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0].id, id1);
  EXPECT_EQ(completions[0].type, EventType::kSendComplete);
  EXPECT_EQ(completions[0].bytes, 0u);
  EXPECT_EQ(completions[1].id, id0);
  EXPECT_EQ(completions[2].id, id2);
  EXPECT_EQ(client->stats().sends_completed, 3u);
  EXPECT_EQ(client->stats().bytes_sent, 1024u);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 4), in.size());

  std::uint64_t traced = 0;
  for (const auto& ev : client->tx_trace().events()) {
    if (ev.type == TraceEventType::kZeroLengthSend) ++traced;
  }
  EXPECT_EQ(traced, 1u);
  auto lemmas = ValidateConnectionTraces(client->tx_trace().events(),
                                         server->rx_trace().events());
  EXPECT_TRUE(lemmas.ok()) << lemmas.Summary();
}

// Submitting after Close() is a caller bug and is rejected loudly — for
// every payload size, including zero.
TEST_F(StreamEdgeTest, SendAfterCloseThrows) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  std::vector<std::uint8_t> out(64);
  client->Close();
  EXPECT_THROW(client->Send(out.data(), out.size()), InvariantViolation);
  EXPECT_THROW(client->Send(out.data(), 0), InvariantViolation);
  sim_.Run();
  EXPECT_TRUE(client->Quiescent());
}

}  // namespace
}  // namespace exs
