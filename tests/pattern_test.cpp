#include <gtest/gtest.h>

#include <vector>

#include "common/pattern.hpp"

namespace exs {
namespace {

TEST(Pattern, FillAndVerifyRoundTrip) {
  std::vector<std::uint8_t> buf(4096);
  FillPattern(buf.data(), buf.size(), 1234, 99);
  EXPECT_EQ(VerifyPattern(buf.data(), buf.size(), 1234, 99), buf.size());
}

TEST(Pattern, DetectsCorruption) {
  std::vector<std::uint8_t> buf(256);
  FillPattern(buf.data(), buf.size(), 0, 1);
  buf[100] ^= 0xff;
  EXPECT_EQ(VerifyPattern(buf.data(), buf.size(), 0, 1), 100u);
}

TEST(Pattern, OffsetDependence) {
  // The same bytes verified at the wrong stream offset must fail — this is
  // what catches reordering and loss, not just corruption.
  std::vector<std::uint8_t> buf(256);
  FillPattern(buf.data(), buf.size(), 1000, 1);
  EXPECT_LT(VerifyPattern(buf.data(), buf.size(), 1001, 1), buf.size());
}

TEST(Pattern, SeedDependence) {
  std::vector<std::uint8_t> buf(256);
  FillPattern(buf.data(), buf.size(), 0, 1);
  EXPECT_LT(VerifyPattern(buf.data(), buf.size(), 0, 2), buf.size());
}

TEST(Pattern, SplitFillsAreSeamless) {
  // Filling [0,100) and [100,256) separately equals one fill — the property
  // the stream tests rely on when sends are split into chunks.
  std::vector<std::uint8_t> whole(256), split(256);
  FillPattern(whole.data(), whole.size(), 500, 7);
  FillPattern(split.data(), 100, 500, 7);
  FillPattern(split.data() + 100, 156, 600, 7);
  EXPECT_EQ(whole, split);
}

}  // namespace
}  // namespace exs
