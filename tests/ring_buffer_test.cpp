#include <gtest/gtest.h>

#include "common/ring_buffer.hpp"

namespace exs {
namespace {

TEST(RingCursor, StartsEmpty) {
  RingCursor ring(100);
  EXPECT_EQ(ring.capacity(), 100u);
  EXPECT_TRUE(ring.Empty());
  EXPECT_FALSE(ring.Full());
  EXPECT_EQ(ring.free(), 100u);
  EXPECT_EQ(ring.ContiguousWritable(), 100u);
  EXPECT_EQ(ring.ContiguousReadable(), 0u);
}

TEST(RingCursor, WriteThenReadAdvancesCursors) {
  RingCursor ring(100);
  ring.CommitWrite(40);
  EXPECT_EQ(ring.used(), 40u);
  EXPECT_EQ(ring.write_offset(), 40u);
  EXPECT_EQ(ring.ContiguousReadable(), 40u);
  ring.CommitRead(40);
  EXPECT_TRUE(ring.Empty());
  EXPECT_EQ(ring.read_offset(), 40u);
}

TEST(RingCursor, ContiguousWritableStopsAtWrap) {
  RingCursor ring(100);
  ring.CommitWrite(80);
  ring.CommitRead(80);
  // Cursors at 80; only 20 bytes remain before the wrap point.
  EXPECT_EQ(ring.free(), 100u);
  EXPECT_EQ(ring.ContiguousWritable(), 20u);
  ring.CommitWrite(20);
  EXPECT_EQ(ring.write_offset(), 0u);
  EXPECT_EQ(ring.ContiguousWritable(), 80u);
}

TEST(RingCursor, ContiguousReadableStopsAtWrap) {
  RingCursor ring(100);
  ring.CommitWrite(90);
  ring.CommitRead(90);
  ring.CommitWrite(10);  // to the wrap point
  ring.CommitWrite(30);  // wrapped
  EXPECT_EQ(ring.used(), 40u);
  EXPECT_EQ(ring.ContiguousReadable(), 10u);
  ring.CommitRead(10);
  EXPECT_EQ(ring.ContiguousReadable(), 30u);
}

TEST(RingCursor, FullStopsWrites) {
  RingCursor ring(64);
  ring.CommitWrite(64);
  EXPECT_TRUE(ring.Full());
  EXPECT_EQ(ring.ContiguousWritable(), 0u);
}

TEST(RingCursor, ReleaseFreeMirrorsRemoteDrain) {
  // The sender side tracks remote free space with ReleaseFree (driven by
  // ACKs) rather than local reads.
  RingCursor remote(128);
  remote.CommitWrite(100);
  EXPECT_EQ(remote.free(), 28u);
  remote.ReleaseFree(60);
  EXPECT_EQ(remote.free(), 88u);
  EXPECT_EQ(remote.used(), 40u);
}

TEST(RingCursor, ManyWrappedCyclesStayConsistent) {
  RingCursor ring(37);  // odd capacity exercises wrap arithmetic
  std::uint64_t pending = 0;
  std::uint64_t written = 0, read = 0;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t w = (i * 7 + 3) % 11;
    w = std::min(w, ring.ContiguousWritable());
    ring.CommitWrite(w);
    written += w;
    pending += w;
    std::uint64_t r = (i * 5 + 1) % 9;
    r = std::min(r, ring.ContiguousReadable());
    ring.CommitRead(r);
    read += r;
    pending -= r;
    ASSERT_EQ(ring.used(), pending);
    ASSERT_EQ(written - read, pending);
    ASSERT_LE(ring.used(), ring.capacity());
  }
}

}  // namespace
}  // namespace exs
