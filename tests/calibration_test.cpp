// Calibration regression tests: the quantitative bands the reproduction
// targets (EXPERIMENTS.md).  Tolerances are generous — these exist so a
// refactor that silently breaks the timing model fails loudly, not to pin
// exact numbers.
#include <gtest/gtest.h>

#include "blast/blast.hpp"

namespace exs::blast {
namespace {

BlastConfig Fdr(std::uint32_t sends, std::uint32_t recvs,
                ProtocolMode mode) {
  BlastConfig c;
  c.message_count = 300;
  c.outstanding_sends = sends;
  c.outstanding_recvs = recvs;
  c.stream.mode = mode;
  c.carry_payload = false;
  return c;
}

TEST(Calibration, SmallMessageOneWayLatency) {
  // The paper quotes 0.76 us one-way for 64-byte messages (ib_write_lat).
  // Measured here as raw verbs delivery time, without software costs.
  simnet::Fabric fabric(simnet::HardwareProfile::FdrInfiniBand(), 1);
  const auto& p = fabric.profile();
  SimDuration one_way = p.send_wr_overhead +
                        p.link_bandwidth.TransmissionTime(64 + 30) +
                        p.propagation + p.recv_delivery_overhead;
  EXPECT_NEAR(ToMicroseconds(one_way), 0.76, 0.1);
}

TEST(Calibration, DirectOnlyPlateauInPaperBand) {
  // Paper Fig. 9: direct-only 35-44 Gb/s once pipelined (we allow up to
  // the 47 Gb/s effective link rate).
  BlastResult r = RunBlast(Fdr(8, 8, ProtocolMode::kDirectOnly));
  EXPECT_GE(r.throughput_mbps, 40000.0);
  EXPECT_LE(r.throughput_mbps, 47500.0);
}

TEST(Calibration, DirectOnlyRisesWithOutstandingOps) {
  BlastResult one = RunBlast(Fdr(1, 1, ProtocolMode::kDirectOnly));
  BlastResult eight = RunBlast(Fdr(8, 8, ProtocolMode::kDirectOnly));
  EXPECT_GT(one.throughput_mbps, 25000.0);  // paper: ~35 Gb/s at the left
  EXPECT_GT(eight.throughput_mbps, one.throughput_mbps * 1.2);
}

TEST(Calibration, IndirectOnlyIsMemcpyBound) {
  // Paper Fig. 9: indirect-only 20-27 Gb/s on FDR; our memcpy model is
  // 3.4 GB/s = 27.2 Gb/s peak.
  BlastResult r = RunBlast(Fdr(8, 8, ProtocolMode::kIndirectOnly));
  EXPECT_GE(r.throughput_mbps, 20000.0);
  EXPECT_LE(r.throughput_mbps, 27500.0);
}

TEST(Calibration, IndirectReceiverCpuSaturates) {
  BlastResult r = RunBlast(Fdr(8, 8, ProtocolMode::kIndirectOnly));
  EXPECT_GE(r.receiver_cpu_percent, 90.0);
  BlastResult d = RunBlast(Fdr(8, 8, ProtocolMode::kDirectOnly));
  EXPECT_LE(d.receiver_cpu_percent, 25.0);
}

TEST(Calibration, EqualWindowsCollapseWithOneSwitch) {
  // Table III equal rows: exactly one mode switch, ratio under 0.1.
  for (std::uint32_t k : {2u, 8u, 32u}) {
    BlastResult r = RunBlast(Fdr(k, k, ProtocolMode::kDynamic));
    EXPECT_EQ(r.mode_switches, 1u) << "k=" << k;
    EXPECT_LE(r.direct_ratio, 0.1) << "k=" << k;
  }
}

TEST(Calibration, DoubledReceivesStayDirect) {
  // Table III (8,4) and up: no switches, all direct.
  for (std::uint32_t k : {8u, 16u, 32u}) {
    BlastResult r = RunBlast(Fdr(k / 2, k, ProtocolMode::kDynamic));
    EXPECT_EQ(r.mode_switches, 0u) << "recvs=" << k;
    EXPECT_DOUBLE_EQ(r.direct_ratio, 1.0) << "recvs=" << k;
  }
}

TEST(Calibration, MarginalPointHasHugeVariance) {
  // The (4,2) anomaly: across seeds, some runs stay direct and some
  // collapse — the paper's 0.21 ± 0.21.  Check both behaviours occur.
  BlastConfig c = Fdr(2, 4, ProtocolMode::kDynamic);
  c.message_count = 400;
  BlastSummary s = RunRepeated(c, 10);
  EXPECT_GT(s.direct_ratio.max, 0.6);
  EXPECT_LT(s.direct_ratio.min, 0.3);
}

TEST(Calibration, LargeMessagesAreAllDirect) {
  // Fig. 12: from 512 KiB (we measure from 128 KiB) every transfer is
  // direct at (recvs=4, sends=2).
  BlastConfig c = Fdr(2, 4, ProtocolMode::kDynamic);
  c.fixed_message_bytes = 512 * kKiB;
  c.recv_buffer_bytes = 512 * kKiB;
  BlastResult r = RunBlast(c);
  EXPECT_DOUBLE_EQ(r.direct_ratio, 1.0);
  EXPECT_EQ(r.mode_switches, 0u);
}

TEST(Calibration, WanIndirectBeatsDirectAtWideWindows) {
  // Fig. 13: over 48 ms RTT, indirect-only >= direct-only at 4-32 ops.
  for (std::uint32_t k : {8u, 16u}) {
    BlastConfig c = Fdr(k, k, ProtocolMode::kIndirectOnly);
    c.profile = simnet::HardwareProfile::RoCE10GWithDelay(Milliseconds(24));
    c.message_count = 150;
    BlastResult ind = RunBlast(c);
    c.stream.mode = ProtocolMode::kDirectOnly;
    BlastResult dir = RunBlast(c);
    EXPECT_GE(ind.throughput_mbps, dir.throughput_mbps) << "k=" << k;
    // ...but the difference is slight (same order), per the paper.
    EXPECT_LE(ind.throughput_mbps, dir.throughput_mbps * 1.3) << "k=" << k;
  }
}

TEST(Calibration, WanDynamicTracksTheBetterMode) {
  BlastConfig c = Fdr(16, 16, ProtocolMode::kDynamic);
  c.profile = simnet::HardwareProfile::RoCE10GWithDelay(Milliseconds(24));
  c.message_count = 150;
  BlastResult dyn = RunBlast(c);
  c.stream.mode = ProtocolMode::kIndirectOnly;
  BlastResult ind = RunBlast(c);
  EXPECT_NEAR(dyn.throughput_mbps, ind.throughput_mbps,
              ind.throughput_mbps * 0.05);
}

TEST(Calibration, QdrNarrowsTheGap) {
  // §IV-B-1: "In tests on QDR InfiniBand, the indirect protocol compares
  // much more favorably" — wire rate close to memcpy rate.
  BlastConfig c = Fdr(8, 8, ProtocolMode::kDirectOnly);
  c.profile = simnet::HardwareProfile::QdrInfiniBand();
  BlastResult dir = RunBlast(c);
  c.stream.mode = ProtocolMode::kIndirectOnly;
  BlastResult ind = RunBlast(c);
  EXPECT_LE(dir.throughput_mbps / ind.throughput_mbps, 1.35);
}

}  // namespace
}  // namespace exs::blast
