#include <gtest/gtest.h>

#include <vector>

#include "simnet/event_scheduler.hpp"

namespace exs::simnet {
namespace {

TEST(EventScheduler, RunsEventsInTimeOrder) {
  EventScheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(300, [&] { order.push_back(3); });
  sched.ScheduleAt(100, [&] { order.push_back(1); });
  sched.ScheduleAt(200, [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.Now(), 300);
}

TEST(EventScheduler, TiesBreakInSchedulingOrder) {
  EventScheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.ScheduleAt(50, [&order, i] { order.push_back(i); });
  }
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventScheduler, ScheduleAfterUsesCurrentTime) {
  EventScheduler sched;
  SimTime seen = -1;
  sched.ScheduleAt(100, [&] {
    sched.ScheduleAfter(50, [&] { seen = sched.Now(); });
  });
  sched.Run();
  EXPECT_EQ(seen, 150);
}

TEST(EventScheduler, CancelPreventsExecution) {
  EventScheduler sched;
  bool ran = false;
  EventHandle h = sched.ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(h.Pending());
  h.Cancel();
  EXPECT_FALSE(h.Pending());
  sched.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sched.ExecutedCount(), 0u);
}

TEST(EventScheduler, CancelAfterExecutionIsHarmless) {
  EventScheduler sched;
  EventHandle h = sched.ScheduleAt(10, [] {});
  sched.Run();
  EXPECT_FALSE(h.Pending());
  h.Cancel();  // no-op
}

TEST(EventScheduler, RunUntilStopsAtDeadline) {
  EventScheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(100, [&] { order.push_back(1); });
  sched.ScheduleAt(200, [&] { order.push_back(2); });
  sched.RunUntil(150);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sched.Now(), 150);
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventScheduler, RunForAdvancesRelative) {
  EventScheduler sched;
  sched.ScheduleAt(100, [] {});
  sched.RunFor(100);
  EXPECT_EQ(sched.Now(), 100);
  sched.RunFor(25);
  EXPECT_EQ(sched.Now(), 125);
}

TEST(EventScheduler, RunUntilPredicate) {
  EventScheduler sched;
  int count = 0;
  for (int t = 1; t <= 10; ++t) {
    sched.ScheduleAt(t, [&] { ++count; });
  }
  EXPECT_TRUE(sched.RunUntilPredicate([&] { return count == 4; }));
  EXPECT_EQ(count, 4);
  EXPECT_FALSE(sched.RunUntilPredicate([&] { return count == 100; }));
  EXPECT_EQ(count, 10);
}

TEST(EventScheduler, SchedulingIntoThePastThrows) {
  EventScheduler sched;
  sched.ScheduleAt(100, [] {});
  sched.Run();
  EXPECT_THROW(sched.ScheduleAt(50, [] {}), InvariantViolation);
}

TEST(EventScheduler, EventsScheduledDuringRunExecute) {
  EventScheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sched.ScheduleAfter(5, recurse);
  };
  sched.ScheduleAt(0, recurse);
  sched.Run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sched.Now(), 45);
}

TEST(EventScheduler, PendingCountIgnoresCancelled) {
  EventScheduler sched;
  EventHandle a = sched.ScheduleAt(10, [] {});
  sched.ScheduleAt(20, [] {});
  EXPECT_EQ(sched.PendingCount(), 2u);
  a.Cancel();
  EXPECT_EQ(sched.PendingCount(), 1u);
}

}  // namespace
}  // namespace exs::simnet
