// Parameterized integrity sweep across every hardware profile, protocol
// mode, and socket workload shape: the stream contract must hold on any
// fabric the library models.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/pattern.hpp"
#include "common/rng.hpp"
#include "exs/exs.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

enum class ProfileKind { kFdr, kQdr, kRoce, kIwarp, kWan };

HardwareProfile MakeProfile(ProfileKind kind) {
  switch (kind) {
    case ProfileKind::kFdr: return HardwareProfile::FdrInfiniBand();
    case ProfileKind::kQdr: return HardwareProfile::QdrInfiniBand();
    case ProfileKind::kRoce: return HardwareProfile::RoCE10G();
    case ProfileKind::kIwarp: return HardwareProfile::Iwarp10G();
    case ProfileKind::kWan:
      return HardwareProfile::RoCE10GWithDelay(Milliseconds(24),
                                               Milliseconds(1));
  }
  return HardwareProfile::FdrInfiniBand();
}

const char* Name(ProfileKind kind) {
  switch (kind) {
    case ProfileKind::kFdr: return "fdr";
    case ProfileKind::kQdr: return "qdr";
    case ProfileKind::kRoce: return "roce";
    case ProfileKind::kIwarp: return "iwarp";
    case ProfileKind::kWan: return "wan";
  }
  return "?";
}

struct CrossParams {
  ProfileKind profile;
  ProtocolMode mode;
  std::uint64_t seed;
};

class CrossProfileTest : public ::testing::TestWithParam<CrossParams> {};

TEST_P(CrossProfileTest, MixedWorkloadIntegrity) {
  const CrossParams& p = GetParam();
  StreamOptions opts;
  opts.mode = p.mode;
  opts.intermediate_buffer_bytes = 256 * kKiB;
  Simulation sim(MakeProfile(p.profile), p.seed, /*carry_payload=*/true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();

  constexpr std::uint64_t kTotal = 384 * 1024;
  std::vector<std::uint8_t> out(kTotal), in(kTotal);
  FillPattern(out.data(), out.size(), 0, p.seed);

  Rng rng(p.seed + 99);
  std::uint64_t sent = 0, posted = 0;
  while (sent < kTotal || posted < kTotal) {
    if (sent < kTotal) {
      std::uint64_t n = std::min<std::uint64_t>(
          rng.NextInRange(1024, 64 * 1024), kTotal - sent);
      client->Send(out.data() + sent, n);
      sent += n;
    }
    if (posted < kTotal) {
      std::uint64_t n = std::min<std::uint64_t>(
          rng.NextInRange(1024, 64 * 1024), kTotal - posted);
      server->Recv(in.data() + posted, n, RecvFlags{.waitall = true});
      posted += n;
    }
    sim.RunFor(static_cast<SimDuration>(
        rng.NextInRange(0, static_cast<std::uint64_t>(Microseconds(200)))));
  }
  sim.Run();

  EXPECT_EQ(server->stats().bytes_received, kTotal);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, p.seed), in.size());
  EXPECT_TRUE(client->Quiescent());
  EXPECT_TRUE(server->Quiescent());
  if (client->stream_tx() != nullptr) {  // not present in rendezvous mode
    EXPECT_EQ(client->stream_tx()->sequence(), kTotal);
    EXPECT_EQ(server->stream_rx()->sequence_estimate(), kTotal);
  }

  auto lemmas = ValidateConnectionTraces(client->tx_trace().events(),
                                         server->rx_trace().events());
  EXPECT_TRUE(lemmas.ok()) << lemmas.Summary();

  EXPECT_EQ(client->channel().qp_stats().rnr_errors, 0u);
  EXPECT_EQ(server->channel().qp_stats().rnr_errors, 0u);
}

std::vector<CrossParams> CrossMatrix() {
  std::vector<CrossParams> params;
  for (ProfileKind profile :
       {ProfileKind::kFdr, ProfileKind::kQdr, ProfileKind::kRoce,
        ProfileKind::kIwarp, ProfileKind::kWan}) {
    for (ProtocolMode mode :
         {ProtocolMode::kDynamic, ProtocolMode::kDirectOnly,
          ProtocolMode::kIndirectOnly, ProtocolMode::kReadRendezvous}) {
      for (std::uint64_t seed : {1ull, 2ull}) {
        params.push_back({profile, mode, seed});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CrossProfileTest, ::testing::ValuesIn(CrossMatrix()),
    [](const ::testing::TestParamInfo<CrossParams>& info) {
      std::string mode = ToString(info.param.mode);
      for (auto& c : mode) {
        if (c == '-') c = '_';
      }
      return std::string(Name(info.param.profile)) + "_" + mode + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace exs
