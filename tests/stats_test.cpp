#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"

namespace exs {
namespace {

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.Count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Variance(), 4.571428571, 1e-8);
  EXPECT_EQ(s.Min(), 2.0);
  EXPECT_EQ(s.Max(), 9.0);
}

TEST(RunningStats, ConfidenceIntervalTenRuns) {
  // The paper's setting: 10 runs, 95% CI uses t(9) = 2.262.
  RunningStats s;
  for (int i = 1; i <= 10; ++i) s.Add(static_cast<double>(i));
  double sem = s.StdDev() / std::sqrt(10.0);
  EXPECT_NEAR(s.ConfidenceHalfWidth95(), 2.262 * sem, 1e-9);
}

TEST(RunningStats, DegenerateCases) {
  RunningStats s;
  EXPECT_EQ(s.ConfidenceHalfWidth95(), 0.0);
  s.Add(3.0);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.ConfidenceHalfWidth95(), 0.0);
  EXPECT_EQ(s.Mean(), 3.0);
}

TEST(RunningStats, ConstantSamplesHaveZeroWidth) {
  RunningStats s;
  for (int i = 0; i < 10; ++i) s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.ConfidenceHalfWidth95(), 0.0);
}

TEST(StudentT, TableValues) {
  EXPECT_DOUBLE_EQ(StudentT975(1), 12.706);
  EXPECT_DOUBLE_EQ(StudentT975(9), 2.262);
  EXPECT_DOUBLE_EQ(StudentT975(30), 2.042);
  EXPECT_DOUBLE_EQ(StudentT975(1000), 1.960);
}

TEST(Summarize, MatchesRunningStats) {
  RunningStats s = Summarize({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.Mean(), 2.0);
  EXPECT_EQ(s.Count(), 3u);
}

}  // namespace
}  // namespace exs
