// Directed pins for the small-transfer coalescing stage and the ACK
// piggyback (StreamOptions::coalesce).  Every flush trigger is exercised
// by a deterministic construction, and the per-send completion contract of
// merged WWIs — one event per Submit, in submission order — is checked
// event by event.
#include <gtest/gtest.h>

#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"
#include "exs/invariant_checker.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

StreamOptions CoalesceOn() {
  StreamOptions opts;
  opts.coalesce.enabled = true;
  return opts;
}

std::uint64_t CountFlushes(const TraceLog& log, CoalesceFlushReason reason) {
  std::uint64_t n = 0;
  for (const auto& ev : log.events()) {
    if (ev.type == TraceEventType::kCoalesceFlushed &&
        ev.msg_phase == static_cast<std::uint64_t>(reason)) {
      ++n;
    }
  }
  return n;
}

class StreamCoalescingTest : public ::testing::Test {
 protected:
  Simulation sim_{HardwareProfile::FdrInfiniBand(), /*seed=*/7,
                  /*carry_payload=*/true};
};

// Three small sends merge into one WWI; the application still sees three
// completion events, in submission order, each reporting its own byte
// count.
TEST_F(StreamCoalescingTest, ThreeMergedSendsCompleteInOrder) {
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, CoalesceOn());
  client->EnableTracing();
  server->EnableTracing();

  std::vector<Event> completions;
  client->events().SetHandler(
      [&](const Event& ev) { completions.push_back(ev); });

  std::vector<std::uint8_t> out(768), in(768);
  FillPattern(out.data(), out.size(), 0, 5);
  std::uint64_t id0 = client->Send(out.data(), 256);
  std::uint64_t id1 = client->Send(out.data() + 256, 256);
  std::uint64_t id2 = client->Send(out.data() + 512, 256);
  sim_.RunFor(Microseconds(50));  // past the 5 µs delay budget

  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0].id, id0);
  EXPECT_EQ(completions[1].id, id1);
  EXPECT_EQ(completions[2].id, id2);
  for (const Event& ev : completions) {
    EXPECT_EQ(ev.type, EventType::kSendComplete);
    EXPECT_EQ(ev.bytes, 256u);
  }

  StreamStats stats = client->stats();
  EXPECT_EQ(stats.coalesced_sends, 3u);
  EXPECT_EQ(stats.coalesced_bytes, 768u);
  EXPECT_EQ(stats.coalesce_flushes, 1u);
  EXPECT_EQ(stats.indirect_transfers, 1u);  // one merged WWI on the wire
  EXPECT_EQ(stats.sends_completed, 3u);
  EXPECT_EQ(stats.bytes_sent, 768u);

  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();
  EXPECT_EQ(server->stats().recvs_completed, 1u);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 5), in.size());

  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// A lone staged send stays put until Coalesce::max_delay expires, then
// flushes with reason kTimeout.
TEST_F(StreamCoalescingTest, FlushOnTimeout) {
  StreamOptions opts = CoalesceOn();
  opts.coalesce.max_delay = Microseconds(20);
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();

  std::vector<std::uint8_t> out(256), in(256);
  FillPattern(out.data(), out.size(), 0, 6);
  client->Send(out.data(), out.size());

  sim_.RunFor(Microseconds(10));  // inside the delay budget: still staged
  EXPECT_EQ(client->stream_tx()->StagedSends(), 1u);
  EXPECT_EQ(client->stream_tx()->StagedBytes(), 256u);
  EXPECT_EQ(client->stats().indirect_transfers, 0u);
  EXPECT_EQ(client->stats().sends_completed, 0u);

  sim_.RunFor(Microseconds(50));  // deadline passed: flushed and posted
  EXPECT_EQ(client->stream_tx()->StagedSends(), 0u);
  EXPECT_EQ(client->stats().indirect_transfers, 1u);
  EXPECT_EQ(client->stats().sends_completed, 1u);
  EXPECT_EQ(CountFlushes(client->tx_trace(), CoalesceFlushReason::kTimeout),
            1u);

  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 6), in.size());
  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// A send that would overflow the staging buffer forces the held bytes out
// first (the overflow split), and an exact fill flushes immediately.
TEST_F(StreamCoalescingTest, MaxBytesOverflowSplits) {
  StreamOptions opts = CoalesceOn();
  opts.coalesce.max_bytes = 1024;
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();

  constexpr std::uint64_t kLead = 8 * 1024;
  std::vector<std::uint8_t> out(kLead + 1800), in(kLead + 1800);
  FillPattern(out.data(), out.size(), 0, 7);

  // A leading oversized send (not coalescing-eligible) puts the sender in
  // an indirect phase, so the splits below are driven purely by the
  // staging capacity and not by a phase switch.
  client->Send(out.data(), kLead);
  ASSERT_EQ(client->stats().coalesced_sends, 0u);

  // 600 stages; the second 600 would overflow (1200 > 1024), so the first
  // flushes alone and the second restarts the staging buffer.
  client->Send(out.data() + kLead, 600);
  client->Send(out.data() + kLead + 600, 600);
  EXPECT_EQ(client->stream_tx()->StagedBytes(), 600u);
  EXPECT_EQ(CountFlushes(client->tx_trace(), CoalesceFlushReason::kMaxBytes),
            1u);

  // 424 more bytes make the restarted buffer exactly full: immediate flush,
  // no timer wait.
  client->Send(out.data() + kLead + 1200, 424);
  EXPECT_EQ(client->stream_tx()->StagedBytes(), 0u);
  EXPECT_EQ(CountFlushes(client->tx_trace(), CoalesceFlushReason::kMaxBytes),
            2u);

  // 176 trailing bytes ride the timer.
  client->Send(out.data() + kLead + 1624, 176);
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();

  StreamStats stats = client->stats();
  EXPECT_EQ(stats.coalesced_sends, 4u);
  EXPECT_EQ(stats.coalesced_bytes, 1800u);
  EXPECT_EQ(stats.sends_completed, 5u);
  EXPECT_EQ(server->stats().bytes_received, kLead + 1800u);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 7), in.size());
  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Close() flushes staged bytes so the SHUTDOWN trails them on the wire:
// the peer sees all data, then end-of-stream.
TEST_F(StreamCoalescingTest, FlushOnClose) {
  StreamOptions opts = CoalesceOn();
  opts.coalesce.max_delay = Milliseconds(10);  // timer must not preempt
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();

  std::vector<std::uint8_t> out(300), in(512);
  FillPattern(out.data(), out.size(), 0, 8);
  client->Send(out.data(), out.size());
  EXPECT_EQ(client->stream_tx()->StagedSends(), 1u);
  client->Close();
  EXPECT_EQ(client->stream_tx()->StagedSends(), 0u);
  EXPECT_EQ(CountFlushes(client->tx_trace(), CoalesceFlushReason::kClose),
            1u);
  sim_.Run();

  // A plain receive completes short with the flushed bytes; end-of-stream
  // has been delivered behind them.
  server->Recv(in.data(), in.size());
  sim_.Run();
  EXPECT_EQ(server->stats().recvs_completed, 1u);
  EXPECT_EQ(server->stats().bytes_received, out.size());
  EXPECT_EQ(VerifyPattern(in.data(), out.size(), 0, 8), out.size());
  EXPECT_TRUE(client->stream_tx()->Quiescent());
  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// The phase-change flush, reached by credit starvation: a large send is
// blocked mid-stream in a direct phase with its ADVERT fully consumed, a
// small send stages behind it, and the receiver's credit return drives the
// remainder indirect — the direct→indirect switch must flush the staged
// bytes into the same burst.
TEST_F(StreamCoalescingTest, FlushOnPhaseChange) {
  StreamOptions opts = CoalesceOn();
  opts.coalesce.max_delay = Milliseconds(10);  // timer must not preempt
  opts.credits = 4;
  opts.max_wwi_chunk = 1024;
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();

  std::vector<std::uint8_t> out(4096 + 256), in(4096 + 256);
  FillPattern(out.data(), out.size(), 0, 9);

  // The WAITALL receive advertises 3 KiB.
  server->Recv(in.data(), 3072, RecvFlags{.waitall = true});
  sim_.RunFor(Microseconds(20));
  ASSERT_EQ(client->stats().adverts_received, 1u);

  // Three direct 1 KiB chunks fill the ADVERT and exhaust the sender's
  // credits (CanSend needs two in reserve), leaving the last KiB of this
  // send blocked at the queue head — still in the direct phase.
  client->Send(out.data(), 4096);
  ASSERT_EQ(client->stats().direct_transfers, 3u);
  ASSERT_EQ(client->stats().indirect_transfers, 0u);

  // The small send stages behind the blocked remainder (the ADVERT queue
  // is empty again, so it is coalescing-eligible).
  client->Send(out.data() + 4096, 256);
  ASSERT_EQ(client->stream_tx()->StagedSends(), 1u);

  // The receiver's credit return unblocks the pump; the remainder has no
  // ADVERT and goes indirect, and the direct→indirect phase switch flushes
  // the staged send into the same burst.
  sim_.RunFor(Milliseconds(1));
  EXPECT_EQ(client->stream_tx()->StagedSends(), 0u);
  EXPECT_EQ(
      CountFlushes(client->tx_trace(), CoalesceFlushReason::kPhaseChange),
      1u);
  EXPECT_EQ(CountFlushes(client->tx_trace(), CoalesceFlushReason::kTimeout),
            0u);
  EXPECT_GE(client->stats().indirect_transfers, 2u);

  server->Recv(in.data() + 3072, 1024 + 256, RecvFlags{.waitall = true});
  sim_.Run();
  EXPECT_EQ(server->stats().bytes_received, out.size());
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 9), in.size());
  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// An arriving ADVERT flushes staged bytes so they can ride it directly
// instead of waiting out the delay budget.
TEST_F(StreamCoalescingTest, FlushOnAdvertGoesDirect) {
  StreamOptions opts = CoalesceOn();
  opts.coalesce.max_delay = Milliseconds(10);  // timer must not preempt
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();

  std::vector<std::uint8_t> out(256), in(256);
  FillPattern(out.data(), out.size(), 0, 10);
  client->Send(out.data(), out.size());
  EXPECT_EQ(client->stream_tx()->StagedSends(), 1u);

  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();

  EXPECT_EQ(CountFlushes(client->tx_trace(), CoalesceFlushReason::kAdvert),
            1u);
  EXPECT_EQ(client->stats().direct_transfers, 1u);
  EXPECT_EQ(client->stats().indirect_transfers, 0u);
  EXPECT_EQ(client->stats().sends_completed, 1u);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 10), in.size());
  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// A large (non-eligible) send submitted behind staged bytes forces an
// ordering flush: the staged bytes reach the wire first.
TEST_F(StreamCoalescingTest, OrderingFlushKeepsStagedBytesFirst) {
  StreamOptions opts = CoalesceOn();
  opts.coalesce.max_delay = Milliseconds(10);  // timer must not preempt
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();

  constexpr std::uint64_t kBig = 16 * 1024;
  std::vector<std::uint8_t> out(256 + kBig), in(256 + kBig);
  FillPattern(out.data(), out.size(), 0, 11);
  client->Send(out.data(), 256);
  EXPECT_EQ(client->stream_tx()->StagedSends(), 1u);
  client->Send(out.data() + 256, kBig);
  EXPECT_EQ(client->stream_tx()->StagedSends(), 0u);
  EXPECT_EQ(CountFlushes(client->tx_trace(), CoalesceFlushReason::kOrdering),
            1u);

  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();
  EXPECT_EQ(server->stats().bytes_received, out.size());
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 11), in.size());
  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// The receiver folds a pending ACK free-count into the ADVERT of a
// partially buffered receive, and the sender releases the space on ADVERT
// arrival: one control message where two used to go.
TEST_F(StreamCoalescingTest, AckPiggybacksOntoAdvert) {
  StreamOptions opts = CoalesceOn();
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();

  constexpr std::uint64_t kBuffered = 4096;
  constexpr std::uint64_t kTotal = 8192;
  std::vector<std::uint8_t> out(kTotal), in(kTotal);
  FillPattern(out.data(), out.size(), 0, 12);

  // 4 KiB arrive with no receive posted: buffered (indirect).
  client->Send(out.data(), kBuffered);
  sim_.RunFor(Milliseconds(1));
  ASSERT_EQ(client->stats().indirect_transfers, 1u);

  // The WAITALL receive drains the ring, then advertises its remainder —
  // with the 4 KiB free-count riding along instead of a standalone ACK.
  server->Recv(in.data(), kTotal, RecvFlags{.waitall = true});
  sim_.RunFor(Milliseconds(1));
  EXPECT_EQ(server->stats().acks_piggybacked, 1u);
  EXPECT_EQ(server->stats().acks_sent, 0u);
  EXPECT_EQ(server->stats().adverts_sent, 1u);

  // The sender learned of the freed space through the ADVERT.
  std::uint64_t acked = 0;
  for (const auto& ev : client->tx_trace().events()) {
    if (ev.type == TraceEventType::kAckReceived) acked += ev.len;
  }
  EXPECT_EQ(acked, kBuffered);

  client->Send(out.data() + kBuffered, kTotal - kBuffered);
  sim_.Run();
  EXPECT_EQ(server->stats().recvs_completed, 1u);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 12), in.size());
  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// A coalesced aggregate larger than max_wwi_chunk must re-chunk through
// the normal Pump() split on the indirect path: the 4096-byte merged WWI
// leaves as ceil(4096/1000) = 5 chunks, byte-continuous, and still fans
// out one completion per member send in submission order.
TEST_F(StreamCoalescingTest, AggregateAboveMaxChunkRechunksIndirect) {
  StreamOptions opts = CoalesceOn();
  opts.coalesce.max_bytes = 4096;
  opts.max_wwi_chunk = 1000;  // deliberately not a divisor of max_bytes
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();

  std::vector<Event> completions;
  client->events().SetHandler(
      [&](const Event& ev) { completions.push_back(ev); });

  constexpr std::uint64_t kSends = 16, kEach = 256;  // exactly max_bytes
  std::vector<std::uint8_t> out(kSends * kEach), in(kSends * kEach);
  FillPattern(out.data(), out.size(), 0, 21);
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < kSends; ++i) {
    ids.push_back(client->Send(out.data() + i * kEach, kEach));
  }
  sim_.RunFor(Milliseconds(1));

  // One exact-fill flush, five WWIs on the wire for it.
  EXPECT_EQ(client->stats().coalesce_flushes, 1u);
  EXPECT_EQ(client->stats().indirect_transfers, 5u);
  ASSERT_EQ(completions.size(), kSends);
  for (std::uint64_t i = 0; i < kSends; ++i) {
    EXPECT_EQ(completions[i].id, ids[i]);
    EXPECT_EQ(completions[i].bytes, kEach);
  }

  // Chunk lengths on the wire: continuity is the checker's job; the split
  // sizes pin the MaxChunk clamp.
  std::vector<std::uint64_t> posted;
  for (const auto& ev : client->tx_trace().events()) {
    if (ev.type == TraceEventType::kIndirectPosted) posted.push_back(ev.len);
  }
  ASSERT_EQ(posted.size(), 5u);
  EXPECT_EQ(posted[0], 1000u);
  EXPECT_EQ(posted[3], 1000u);
  EXPECT_EQ(posted[4], 96u);

  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 21), in.size());
  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// The same oversized aggregate flushed *by an arriving ADVERT* re-chunks
// onto the direct path: staged bytes merge, the ADVERT flush queues the
// aggregate, and it lands in advertised memory as multiple WWIs.
TEST_F(StreamCoalescingTest, AggregateAboveMaxChunkRechunksDirect) {
  StreamOptions opts = CoalesceOn();
  opts.coalesce.max_bytes = 4096;
  opts.coalesce.max_delay = Microseconds(100);  // outlive the handshake
  opts.max_wwi_chunk = 1000;
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();

  constexpr std::uint64_t kSends = 6, kEach = 512;  // 3072 < max_bytes
  std::vector<std::uint8_t> out(kSends * kEach), in(kSends * kEach);
  FillPattern(out.data(), out.size(), 0, 22);
  for (std::uint64_t i = 0; i < kSends; ++i) {
    client->Send(out.data() + i * kEach, kEach);
  }
  EXPECT_EQ(client->stream_tx()->StagedBytes(), kSends * kEach);

  // The WAITALL receive's ADVERT reaches the sender well inside the delay
  // budget and flushes the staged aggregate straight into direct service.
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();

  StreamStats stats = client->stats();
  EXPECT_EQ(stats.coalesce_flushes, 1u);
  EXPECT_EQ(CountFlushes(client->tx_trace(), CoalesceFlushReason::kAdvert),
            1u);
  EXPECT_EQ(stats.indirect_transfers, 0u);
  EXPECT_EQ(stats.direct_transfers, 4u);  // 1000+1000+1000+72
  EXPECT_EQ(stats.sends_completed, kSends);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 22), in.size());
  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Coalescing composes with striping: the re-chunked aggregate's WWIs
// spread across rails and reassemble by stripe sequence.
TEST_F(StreamCoalescingTest, AggregateRechunksAcrossRails) {
  StreamOptions opts = CoalesceOn();
  opts.coalesce.max_bytes = 4096;
  opts.max_wwi_chunk = 1000;
  opts.rails = 2;
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();

  std::vector<std::uint8_t> out(4096), in(4096);
  FillPattern(out.data(), out.size(), 0, 23);
  for (std::uint64_t i = 0; i < 16; ++i) {
    client->Send(out.data() + i * 256, 256);
  }
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();

  EXPECT_EQ(client->stats().coalesce_flushes, 1u);
  EXPECT_EQ(client->stats().sends_completed, 16u);
  std::size_t rails_used = 0;
  bool seen[2] = {false, false};
  for (const auto& ev : client->tx_trace().events()) {
    if (ev.type != TraceEventType::kIndirectPosted &&
        ev.type != TraceEventType::kDirectPosted) {
      continue;
    }
    ASSERT_LT(ev.msg_phase, 2u);
    if (!seen[ev.msg_phase]) {
      seen[ev.msg_phase] = true;
      ++rails_used;
    }
  }
  EXPECT_EQ(rails_used, 2u);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 23), in.size());
  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

}  // namespace
}  // namespace exs
