#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace exs {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(Rng, NextInRangeHitsEndpoints) {
  Rng rng(11);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t v = rng.NextInRange(3, 6);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 6u);
    lo |= v == 3;
    hi |= v == 6;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, ExponentialMeanIsClose) {
  Rng rng(13);
  const double mean = 250.0;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(mean);
  EXPECT_NEAR(sum / n, mean, mean * 0.02);
}

TEST(ExponentialSizeDistribution, TruncatesAtMaxAndFloorsAtOne) {
  Rng rng(17);
  ExponentialSizeDistribution dist(1000.0, 4096);
  bool hit_max = false;
  for (int i = 0; i < 50000; ++i) {
    std::uint64_t s = dist.Sample(rng);
    ASSERT_GE(s, 1u);
    ASSERT_LE(s, 4096u);
    hit_max |= s == 4096;
  }
  EXPECT_TRUE(hit_max);  // P(X > 4096) = e^-4.1 ~ 1.7%, certain in 50k draws
}

TEST(ExponentialSizeDistribution, MeanReflectsTruncation) {
  Rng rng(19);
  const double mean = 1024.0;
  ExponentialSizeDistribution dist(mean, 1 << 22);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(dist.Sample(rng));
  // Truncation at 4096x the mean barely moves it.
  EXPECT_NEAR(sum / n, mean, mean * 0.03);
}

}  // namespace
}  // namespace exs
