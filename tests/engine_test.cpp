// The many-stream server engine: SRQ sharing at the verbs layer, the
// shared indirect buffer pool and its watermark hysteresis, SRQ-backed
// control-slot reservations, the fair progress engine (DRR + bounded work
// per tick), and the acceptor's admission control — ending with an
// end-to-end accept/transfer/reclaim cycle checked by the pool
// conservation validator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/pattern.hpp"
#include "exs/engine/acceptor.hpp"
#include "exs/engine/buffer_pool.hpp"
#include "exs/engine/progress_engine.hpp"
#include "exs/engine/srq_pool.hpp"
#include "exs/exs.hpp"
#include "exs/invariant_checker.hpp"
#include "verbs/queue_pair.hpp"
#include "verbs/srq.hpp"

namespace exs::engine {
namespace {

using simnet::HardwareProfile;

// ---------------------------------------------------------------------------
// Verbs layer: SharedReceiveQueue.
// ---------------------------------------------------------------------------

class SrqTest : public ::testing::Test {
 protected:
  SrqTest()
      : fabric_(HardwareProfile::FdrInfiniBand(), 11),
        dev0_(fabric_, 0),
        dev1_(fabric_, 1),
        send_cq0_(dev0_.CreateCompletionQueue()),
        recv_cq0_(dev0_.CreateCompletionQueue()),
        recv_cq1a_(dev1_.CreateCompletionQueue()),
        recv_cq1b_(dev1_.CreateCompletionQueue()),
        sender_a_(dev0_, *send_cq0_, *recv_cq0_),
        sender_b_(dev0_, *send_cq0_, *recv_cq0_),
        receiver_a_(dev1_, *recv_cq1a_, *recv_cq1a_),
        receiver_b_(dev1_, *recv_cq1b_, *recv_cq1b_),
        srq_(dev1_) {
    receiver_a_.SetSharedReceiveQueue(&srq_);
    receiver_b_.SetSharedReceiveQueue(&srq_);
    verbs::QueuePair::ConnectPair(sender_a_, receiver_a_);
    verbs::QueuePair::ConnectPair(sender_b_, receiver_b_);
  }

  static verbs::Sge MakeSge(const void* addr, std::uint32_t len,
                            std::uint32_t key) {
    return verbs::Sge{reinterpret_cast<std::uint64_t>(addr), len, key};
  }

  void SendOn(verbs::QueuePair& qp, const void* buf, std::uint32_t len,
              std::uint32_t lkey) {
    verbs::SendWorkRequest wr;
    wr.wr_id = next_wr_id_++;
    wr.opcode = verbs::Opcode::kSend;
    wr.sge = MakeSge(buf, len, lkey);
    qp.PostSend(wr);
  }

  simnet::Fabric fabric_;
  verbs::Device dev0_, dev1_;
  std::unique_ptr<verbs::CompletionQueue> send_cq0_, recv_cq0_, recv_cq1a_,
      recv_cq1b_;
  verbs::QueuePair sender_a_, sender_b_, receiver_a_, receiver_b_;
  verbs::SharedReceiveQueue srq_;
  std::uint64_t next_wr_id_ = 100;
};

TEST_F(SrqTest, QueuePairsDrainOneSharedPool) {
  std::vector<std::uint8_t> src(256), dst(4 * 256, 0);
  FillPattern(src.data(), src.size(), 0, 9);
  auto src_mr = dev0_.RegisterMemory(src.data(), src.size());
  auto dst_mr = dev1_.RegisterMemory(dst.data(), dst.size());

  for (std::uint64_t slot = 0; slot < 4; ++slot) {
    srq_.PostRecv({.wr_id = slot,
                   .sge = MakeSge(dst.data() + slot * 256, 256,
                                  dst_mr->lkey())});
  }
  EXPECT_EQ(srq_.PostedRecvCount(), 4u);
  EXPECT_EQ(receiver_a_.PostedRecvCount(), 4u);  // the SRQ view

  // Two messages on each attached QP: all four draw from the one pool.
  SendOn(sender_a_, src.data(), 256, src_mr->lkey());
  SendOn(sender_b_, src.data(), 256, src_mr->lkey());
  SendOn(sender_a_, src.data(), 256, src_mr->lkey());
  SendOn(sender_b_, src.data(), 256, src_mr->lkey());
  fabric_.scheduler().Run();

  EXPECT_EQ(srq_.PostedRecvCount(), 0u);
  EXPECT_EQ(srq_.TotalPosted(), 4u);
  EXPECT_EQ(srq_.TotalConsumed(), 4u);
  EXPECT_EQ(receiver_a_.stats().srq_recvs_consumed, 2u);
  EXPECT_EQ(receiver_b_.stats().srq_recvs_consumed, 2u);

  // Completions land on each QP's own CQ even though the buffers are
  // shared, and every arrival landed in a distinct slot.
  verbs::WorkCompletion wc;
  int completions = 0;
  while (recv_cq1a_->Poll(&wc)) {
    EXPECT_EQ(wc.status, verbs::WcStatus::kSuccess);
    ++completions;
  }
  while (recv_cq1b_->Poll(&wc)) {
    EXPECT_EQ(wc.status, verbs::WcStatus::kSuccess);
    ++completions;
  }
  EXPECT_EQ(completions, 4);
  for (int slot = 0; slot < 4; ++slot) {
    EXPECT_EQ(VerifyPattern(dst.data() + slot * 256, 256, 0, 9), 256u)
        << "slot " << slot;
  }
}

TEST_F(SrqTest, EmptyPoolIsReceiverNotReady) {
  std::vector<std::uint8_t> src(64);
  auto src_mr = dev0_.RegisterMemory(src.data(), src.size());
  SendOn(sender_a_, src.data(), 64, src_mr->lkey());
  fabric_.scheduler().Run();
  EXPECT_EQ(receiver_a_.stats().rnr_errors, 1u);
  EXPECT_EQ(srq_.EmptyPops(), 1u);
  EXPECT_EQ(srq_.TotalConsumed(), 0u);
}

TEST_F(SrqTest, PrivatePostRecvOnAttachedQpIsRefused) {
  std::vector<std::uint8_t> buf(64);
  auto mr = dev1_.RegisterMemory(buf.data(), buf.size());
  EXPECT_THROW(receiver_a_.PostRecv(
                   {.wr_id = 1, .sge = MakeSge(buf.data(), 64, mr->lkey())}),
               InvariantViolation);
}

TEST_F(SrqTest, UnregisteredSrqBufferIsRefused) {
  std::vector<std::uint8_t> buf(64);
  EXPECT_THROW(srq_.PostRecv({.wr_id = 1, .sge = MakeSge(buf.data(), 64, 0)}),
               InvariantViolation);
}

// ---------------------------------------------------------------------------
// BufferPool: carving, exhaustion, watermark hysteresis, reclaim.
// ---------------------------------------------------------------------------

struct PoolHarness {
  simnet::Fabric fabric{HardwareProfile::FdrInfiniBand(), 12};
  verbs::Device device{fabric, 1};
};

TEST(BufferPoolTest, LeasesAreDisjointCarvesOfOneSlab) {
  PoolHarness h;
  BufferPool pool(h.device, {.pool_bytes = 4 * 4096, .lease_bytes = 4096});
  std::vector<RingLease> leases;
  for (int i = 0; i < 4; ++i) {
    leases.push_back(pool.Acquire());
    ASSERT_TRUE(leases.back().valid());
    EXPECT_EQ(leases.back().bytes(), 4096u);
  }
  // All carves come from one registration and never overlap.
  for (std::size_t i = 0; i < leases.size(); ++i) {
    EXPECT_EQ(leases[i].mr(), leases[0].mr());
    for (std::size_t j = i + 1; j < leases.size(); ++j) {
      bool disjoint = leases[i].mem() + 4096 <= leases[j].mem() ||
                      leases[j].mem() + 4096 <= leases[i].mem();
      EXPECT_TRUE(disjoint) << "leases " << i << " and " << j << " overlap";
    }
  }
  EXPECT_EQ(pool.BytesLeased(), 4u * 4096);
  EXPECT_EQ(pool.LeasesActive(), 4u);

  // Exhausted: the next acquire fails rather than oversubscribing.
  EXPECT_FALSE(pool.Acquire().valid());

  leases[1].Release();
  EXPECT_EQ(pool.LeasesActive(), 3u);
  EXPECT_EQ(pool.LeasesReclaimed(), 1u);
  RingLease again = pool.Acquire();
  ASSERT_TRUE(again.valid());
  EXPECT_EQ(again.mem(), leases[1].mem());  // the freed carve is reused
}

TEST(BufferPoolTest, WatermarkHysteresisGatesAdmission) {
  PoolHarness h;
  BufferPool pool(h.device, {.pool_bytes = 10 * 1024,
                             .lease_bytes = 1024,
                             .high_watermark = 0.9,
                             .low_watermark = 0.7});
  std::vector<RingLease> leases;
  for (int i = 0; i < 8; ++i) leases.push_back(pool.Acquire());
  EXPECT_TRUE(pool.AdmissionOpen());  // fill 0.8, below high
  leases.push_back(pool.Acquire());
  EXPECT_FALSE(pool.AdmissionOpen());  // fill 0.9 closed admission

  // Hysteresis: dropping just below high does not reopen...
  leases.back().Release();
  leases.pop_back();
  EXPECT_FALSE(pool.AdmissionOpen());  // fill 0.8, still closed
  // ...only crossing back under the low watermark does.
  leases.back().Release();
  leases.pop_back();
  EXPECT_TRUE(pool.AdmissionOpen());  // fill 0.7 reopened
  EXPECT_EQ(pool.PeakBytesLeased(), 9u * 1024);
}

TEST(BufferPoolTest, ReleaseIsIdempotent) {
  PoolHarness h;
  BufferPool pool(h.device, {.pool_bytes = 2 * 1024, .lease_bytes = 1024});
  RingLease lease = pool.Acquire();
  lease.Release();
  EXPECT_EQ(pool.LeasesReclaimed(), 1u);
  lease.Release();  // the consumed closure cannot refund a second time
  EXPECT_EQ(pool.LeasesReclaimed(), 1u);
  EXPECT_EQ(pool.LeasesActive(), 0u);
}

TEST(BufferPoolTest, DroppedLeaseReturnsItsCarve) {
  // RAII: a lease destroyed without ever reaching EOF+drain (aborted
  // stream, server churn) hands its carve back instead of stranding it.
  PoolHarness h;
  BufferPool pool(h.device, {.pool_bytes = 2 * 1024, .lease_bytes = 1024});
  { RingLease lease = pool.Acquire(); }
  EXPECT_EQ(pool.LeasesActive(), 0u);
  EXPECT_EQ(pool.LeasesReclaimed(), 1u);
}

TEST(BufferPoolTest, SocketTeardownBeforeEofReturnsTheLease) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 18, true);
  BufferPool pool(sim.device(1),
                  {.pool_bytes = 2 * 16 * 1024, .lease_bytes = 16 * 1024});
  StreamOptions options;
  options.credits = 8;
  {
    SocketWiring wiring;
    wiring.ring_lease = pool.Acquire();
    Socket socket(sim.device(1), SocketType::kStream, options, "aborted",
                  std::move(wiring));
    EXPECT_EQ(pool.LeasesActive(), 1u);
  }
  // No EOF, no drain, no explicit release: the receiver's lease is RAII,
  // so the pool cannot monotonically shrink under connection churn.
  EXPECT_EQ(pool.LeasesActive(), 0u);
  EXPECT_EQ(pool.LeasesReclaimed(), 1u);
}

TEST(BufferPoolTest, ReleaseAfterPoolDestructionIsANoOp) {
  // Accepted sockets routinely outlive the acceptor that owns the pool;
  // their EOF/teardown release must degrade to a no-op, exactly like the
  // ControlSlotSource liveness rule for the credit refund.
  PoolHarness h;
  RingLease survivor;
  {
    BufferPool pool(h.device, {.pool_bytes = 1024, .lease_bytes = 1024});
    survivor = pool.Acquire();
    ASSERT_TRUE(survivor.valid());
  }
  survivor.Release();  // pool is gone: guarded by the liveness token
  SUCCEED();           // and the survivor's own destructor is equally safe
}

// ---------------------------------------------------------------------------
// ControlSlotPool: reservation accounting over one SRQ.
// ---------------------------------------------------------------------------

TEST(ControlSlotPoolTest, ReservationsBoundAdmission) {
  PoolHarness h;
  ControlSlotPool slots(h.device, 8);
  EXPECT_EQ(slots.total_slots(), 8u);
  EXPECT_EQ(slots.srq().PostedRecvCount(), 8u);  // all posted up front
  EXPECT_TRUE(slots.CanReserve(8));
  EXPECT_TRUE(slots.ReserveSlots(6));
  EXPECT_EQ(slots.reserved_slots(), 6u);
  EXPECT_FALSE(slots.CanReserve(3));
  EXPECT_TRUE(slots.CanReserve(2));
  EXPECT_FALSE(slots.ReserveSlots(3));  // refused, accounting unchanged
  EXPECT_EQ(slots.reserved_slots(), 6u);
  slots.UnreserveSlots(6);
  EXPECT_EQ(slots.reserved_slots(), 0u);
  EXPECT_TRUE(slots.CanReserve(8));
}

TEST(ControlSlotPoolTest, SlotsAreDistinctAndRepostable) {
  PoolHarness h;
  ControlSlotPool slots(h.device, 4);
  EXPECT_NE(slots.SlotMem(0), nullptr);
  EXPECT_NE(slots.SlotMem(1), slots.SlotMem(0));
  EXPECT_THROW(slots.SlotMem(4), InvariantViolation);
  std::size_t before = slots.srq().PostedRecvCount();
  slots.RepostSlot(0);  // recycle after consumption: additive on the pool
  EXPECT_EQ(slots.srq().PostedRecvCount(), before + 1);
}

// ---------------------------------------------------------------------------
// ProgressEngine: readiness, DRR fairness, bounded ticks.
// ---------------------------------------------------------------------------

struct EngineHarness {
  Simulation sim{HardwareProfile::FdrInfiniBand(), 13, true};
  ProgressEngine engine{sim.fabric().node(1).cpu(), ProgressEngineOptions{}};

  std::pair<Socket*, Socket*> Pair() {
    return sim.CreateConnectedPair(SocketType::kStream);
  }
};

Event FakeEvent(std::uint64_t id) {
  return Event{EventType::kRecvComplete, id, 1, false};
}

TEST(ProgressEngineTest, DispatchesEventsOfRegisteredSockets) {
  EngineHarness h;
  auto [client, server] = h.Pair();
  std::vector<std::uint8_t> out(32 * 1024), in(32 * 1024);
  FillPattern(out.data(), out.size(), 0, 21);

  std::uint64_t received = 0;
  h.engine.Register(server, [&](Socket& s, const Event& ev) {
    EXPECT_EQ(&s, server);
    if (ev.type == EventType::kRecvComplete) received += ev.bytes;
  });
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  client->Send(out.data(), out.size());
  h.sim.Run();

  EXPECT_EQ(received, out.size());
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 21), in.size());
  EXPECT_GE(h.engine.TicksRun(), 1u);
  EXPECT_GT(h.engine.EventsDispatched(), 0u);
  EXPECT_EQ(h.engine.ReadyCount(), 0u);  // drained at quiescence
}

TEST(ProgressEngineTest, DeficitRoundRobinInterleavesBusySockets) {
  EngineHarness h;
  auto [c0, busy] = h.Pair();
  auto [c1, trickle] = h.Pair();
  (void)c0;
  (void)c1;

  std::vector<const Socket*> order;
  auto record = [&](Socket& s, const Event&) { order.push_back(&s); };
  h.engine.Register(busy, record);
  h.engine.Register(trickle, record);

  // A firehose queue and a short queue, made ready back to back.
  for (std::uint64_t i = 0; i < 24; ++i) busy->events().Push(FakeEvent(i));
  for (std::uint64_t i = 0; i < 4; ++i) trickle->events().Push(FakeEvent(i));
  h.sim.Run();

  ASSERT_EQ(order.size(), 28u);
  // DRR with quantum 4: the trickle socket's 4 events are all served
  // within the first 12 dispatches — the firehose cannot starve it.
  std::size_t trickle_served =
      std::count(order.begin(), order.begin() + 12, trickle);
  EXPECT_EQ(trickle_served, 4u);
}

TEST(ProgressEngineTest, WorkPerTickIsBounded) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 14, true);
  ProgressEngineOptions opts;
  opts.max_events_per_tick = 8;
  ProgressEngine engine(sim.fabric().node(1).cpu(), opts);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
  (void)client;

  std::size_t dispatched = 0;
  engine.Register(server, [&](Socket&, const Event&) { ++dispatched; });
  for (std::uint64_t i = 0; i < 32; ++i) server->events().Push(FakeEvent(i));
  sim.Run();

  EXPECT_EQ(dispatched, 32u);
  EXPECT_GE(engine.TicksRun(), 4u);  // at most 8 events per tick
}

TEST(ProgressEngineTest, SchedulingInstrumentsRecordTicksAndDelays) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 14, true);
  metrics::Registry reg;
  ProgressEngineOptions opts;
  opts.tick_overhead = Microseconds(1);
  opts.per_event_cpu = Microseconds(0.5);
  ProgressEngine engine(sim.fabric().node(1).cpu(), opts, &reg);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
  (void)client;

  std::size_t dispatched = 0;
  engine.Register(server, [&](Socket&, const Event&) { ++dispatched; });
  for (std::uint64_t i = 0; i < 16; ++i) server->events().Push(FakeEvent(i));
  sim.Run();
  ASSERT_EQ(dispatched, 16u);

  // The engine-level histograms: one tick_duration entry per tick, one
  // sched_delay entry per serve, both in picoseconds.
  const auto& hists = reg.histograms();
  ASSERT_TRUE(hists.count("engine.tick_duration"));
  const metrics::Histogram& ticks = *hists.at("engine.tick_duration").instrument;
  EXPECT_EQ(ticks.count(), engine.TicksRun());
  EXPECT_GE(ticks.min(), static_cast<std::uint64_t>(Microseconds(1)));
  ASSERT_TRUE(hists.count("engine.sched_delay"));
  EXPECT_GT(hists.at("engine.sched_delay").instrument->count(), 0u);

  // The per-socket mirror (the per-DRR-queue HoL view) lands in the
  // socket's own registry, next to its other instruments.
  const auto& socket_hists = server->metrics_registry().histograms();
  ASSERT_TRUE(socket_hists.count("engine.sched_delay"));
  EXPECT_GT(socket_hists.at("engine.sched_delay").instrument->count(), 0u);
}

TEST(ProgressEngineTest, UnregisterLeavesEventsForDirectPolling) {
  EngineHarness h;
  auto [client, server] = h.Pair();
  (void)client;
  bool called = false;
  h.engine.Register(server, [&](Socket&, const Event&) { called = true; });
  h.engine.Unregister(server);
  server->events().Push(FakeEvent(1));
  h.sim.Run();
  EXPECT_FALSE(called);
  EXPECT_EQ(server->events().Depth(), 1u);  // still there for Poll()
  h.engine.Unregister(server);              // idempotent
}

TEST(ProgressEngineTest, UnregisterSelfFromInsideHandlerIsSafe) {
  // kPeerClosed-style teardown: the handler unregisters the very socket
  // being served.  Dispatch for that socket must stop before the next
  // event, with no use of the (now detached) entry afterwards.
  EngineHarness h;
  auto [client, server] = h.Pair();
  (void)client;
  int dispatched = 0;
  h.engine.Register(server, [&](Socket& s, const Event&) {
    ++dispatched;
    h.engine.Unregister(&s);
    h.engine.Unregister(&s);  // idempotent even while detached
  });
  for (std::uint64_t i = 0; i < 8; ++i) server->events().Push(FakeEvent(i));
  h.sim.Run();
  EXPECT_EQ(dispatched, 1);
  EXPECT_EQ(server->events().Depth(), 7u);  // left for direct polling
  EXPECT_EQ(h.engine.RegisteredCount(), 0u);
  EXPECT_EQ(h.engine.ReadyCount(), 0u);
}

TEST(ProgressEngineTest, ReregisterFromInsideHandlerContinuesDispatch) {
  // Unregister-then-register within one handler call: the old entry dies
  // as a zombie, the fresh registration picks the queue back up.
  EngineHarness h;
  auto [client, server] = h.Pair();
  (void)client;
  int first = 0, second = 0;
  h.engine.Register(server, [&](Socket& s, const Event&) {
    ++first;
    h.engine.Unregister(&s);
    h.engine.Register(&s, [&](Socket&, const Event&) { ++second; });
  });
  for (std::uint64_t i = 0; i < 4; ++i) server->events().Push(FakeEvent(i));
  h.sim.Run();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 3);
  EXPECT_EQ(server->events().Depth(), 0u);
  EXPECT_EQ(h.engine.RegisteredCount(), 1u);
}

// ---------------------------------------------------------------------------
// Acceptor: admission control, shared wiring, reclaim, conservation.
// ---------------------------------------------------------------------------

struct ServerRig {
  explicit ServerRig(AcceptorOptions options, std::uint64_t seed = 15)
      : sim(HardwareProfile::FdrInfiniBand(), seed, true),
        engine(sim.fabric().node(1).cpu(), ProgressEngineOptions{}),
        acceptor(sim.device(1), engine, options, &registry) {}

  Simulation sim;
  metrics::Registry registry;
  ProgressEngine engine;
  Acceptor acceptor;
};

StreamOptions SmallStreams() {
  StreamOptions options;
  options.credits = 8;
  options.intermediate_buffer_bytes = 16 * 1024;
  return options;
}

TEST(AcceptorTest, RefusesConnectionsBeyondThePool) {
  // Pool fits exactly two leased rings; the third connect is REJECTed
  // during the handshake, before any resources are committed.
  AcceptorOptions opts;
  opts.pool = {.pool_bytes = 2 * 16 * 1024, .lease_bytes = 16 * 1024};
  opts.control_slots = 64;
  ServerRig rig(opts);

  std::vector<Socket*> servers;
  Listener* listener = rig.acceptor.Listen(
      rig.sim.connections(), 4000, SmallStreams(),
      [](Socket&, const Event&) {},
      [&](Socket& s) { servers.push_back(&s); });

  std::vector<Socket*> clients;
  int rejected = 0;
  for (int i = 0; i < 3; ++i) {
    rig.sim.Connect(0, 4000, SocketType::kStream, SmallStreams(),
                    [&](Socket* s) {
                      if (s == nullptr) {
                        ++rejected;
                      } else {
                        clients.push_back(s);
                      }
                    });
  }
  rig.sim.Run();

  EXPECT_EQ(servers.size(), 2u);
  EXPECT_EQ(clients.size(), 2u);
  EXPECT_EQ(rejected, 1);
  EXPECT_EQ(listener->AcceptedCount(), 2u);
  EXPECT_EQ(listener->RefusedCount(), 1u);
  EXPECT_EQ(rig.acceptor.AdmissionRefusals(), 1u);
  EXPECT_EQ(rig.acceptor.pool().LeasesActive(), 2u);
  EXPECT_EQ(rig.engine.RegisteredCount(), 2u);
}

TEST(AcceptorTest, RefusesWhenControlSlotsExhausted) {
  AcceptorOptions opts;
  opts.pool = {.pool_bytes = 8 * 16 * 1024, .lease_bytes = 16 * 1024};
  opts.control_slots = 12;  // room for one 8-credit connection, not two
  ServerRig rig(opts, 16);

  rig.acceptor.Listen(rig.sim.connections(), 4000, SmallStreams(),
                      [](Socket&, const Event&) {});
  int accepted = 0, rejected = 0;
  for (int i = 0; i < 2; ++i) {
    rig.sim.Connect(0, 4000, SocketType::kStream, SmallStreams(),
                    [&](Socket* s) { s ? ++accepted : ++rejected; });
  }
  rig.sim.Run();
  EXPECT_EQ(accepted, 1);
  EXPECT_EQ(rejected, 1);
  // Reservation happens at the admission point itself (atomic with the
  // check): the one accepted connection holds exactly its 8 slots and the
  // refused one left no residue.
  EXPECT_EQ(rig.acceptor.control_slots().reserved_slots(), 8u);
}

TEST(AcceptorTest, UnregisterOnPeerClosedInsideHandlerStillReclaims) {
  // The reviewer-facing teardown idiom: the event handler unregisters its
  // socket the moment kPeerClosed arrives.  This must neither crash the
  // engine's dispatch loop nor leak the ring lease — the stream itself
  // releases at EOF, independent of the engine's reap.
  AcceptorOptions opts;
  opts.pool = {.pool_bytes = 2 * 16 * 1024, .lease_bytes = 16 * 1024};
  opts.control_slots = 64;
  ServerRig rig(opts, 19);

  std::vector<std::uint8_t> in(1024);
  std::uint64_t received = 0;
  rig.acceptor.Listen(
      rig.sim.connections(), 4000, SmallStreams(),
      [&](Socket& s, const Event& ev) {
        if (ev.type == EventType::kRecvComplete) received += ev.bytes;
        if (ev.type == EventType::kPeerClosed) rig.engine.Unregister(&s);
      },
      [&](Socket& s) {
        s.Recv(in.data(), in.size(), RecvFlags{.waitall = true});
      });

  Socket* client = nullptr;
  rig.sim.Connect(0, 4000, SocketType::kStream, SmallStreams(),
                  [&](Socket* s) { client = s; });
  rig.sim.Run();
  ASSERT_NE(client, nullptr);

  std::vector<std::uint8_t> out(1024, 7);
  client->Send(out.data(), out.size());
  client->Close();
  rig.sim.Run();

  EXPECT_EQ(received, out.size());
  EXPECT_EQ(rig.engine.RegisteredCount(), 0u);
  EXPECT_EQ(rig.acceptor.pool().LeasesActive(), 0u);
  EXPECT_EQ(rig.acceptor.pool().LeasesReclaimed(), 1u);
}

TEST(AcceptorTest, AcceptedSocketsTransferOverSharedResources) {
  constexpr int kStreams = 4;
  constexpr std::uint64_t kLease = 16 * 1024;
  constexpr std::uint64_t kBytes = 64 * 1024;
  AcceptorOptions opts;
  opts.pool = {.pool_bytes = kStreams * kLease, .lease_bytes = kLease};
  // Slot reservations live as long as the socket (a closed peer can still
  // be sent to); leave headroom so the post-close re-accept below is
  // gated purely by ring-lease reclaim.
  opts.control_slots = (kStreams + 1) * 8;
  ServerRig rig(opts, 17);

  struct Sink {
    Socket* socket = nullptr;
    std::vector<std::uint8_t> data;
    std::uint64_t received = 0;
    bool eof = false;
  };
  std::vector<std::unique_ptr<Sink>> sinks;

  rig.acceptor.Listen(
      rig.sim.connections(), 4000, SmallStreams(),
      [&](Socket& s, const Event& ev) {
        for (auto& sink : sinks) {
          if (sink->socket != &s) continue;
          if (ev.type == EventType::kRecvComplete) sink->received += ev.bytes;
          if (ev.type == EventType::kPeerClosed) sink->eof = true;
        }
      },
      [&](Socket& s) {
        auto sink = std::make_unique<Sink>();
        sink->socket = &s;
        sink->data.resize(kBytes);
        s.EnableTracing();
        s.Recv(sink->data.data(), kBytes, RecvFlags{.waitall = true});
        sinks.push_back(std::move(sink));
      });

  std::vector<Socket*> clients;
  for (int i = 0; i < kStreams; ++i) {
    rig.sim.Connect(0, 4000, SocketType::kStream, SmallStreams(),
                    [&](Socket* s) {
                      ASSERT_NE(s, nullptr);
                      clients.push_back(s);
                    });
  }
  rig.sim.Run();
  ASSERT_EQ(clients.size(), static_cast<std::size_t>(kStreams));

  std::vector<std::vector<std::uint8_t>> payloads(kStreams);
  for (int i = 0; i < kStreams; ++i) {
    payloads[i].resize(kBytes);
    FillPattern(payloads[i].data(), kBytes, 0, 40 + i);
    clients[i]->Send(payloads[i].data(), kBytes);
  }
  rig.sim.Run();

  ASSERT_EQ(sinks.size(), static_cast<std::size_t>(kStreams));
  for (int i = 0; i < kStreams; ++i) {
    EXPECT_EQ(sinks[i]->received, kBytes) << "stream " << i;
  }
  // Each sink's bytes match exactly one client's pattern (streams are
  // independent; ordering of accepts vs connects may differ).
  for (int i = 0; i < kStreams; ++i) {
    bool matched = false;
    for (int j = 0; j < kStreams; ++j) {
      if (VerifyPattern(sinks[i]->data.data(), kBytes, 0, 40 + j) == kBytes) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "sink " << i << " bytes match no client";
  }

  // The shared slab never grew with the stream count, and every stream's
  // ring occupancy stayed within its lease: the pool conservation check
  // replays the receiver traces to prove it.
  std::vector<const TraceLog*> rx_logs;
  for (const auto& sink : sinks) rx_logs.push_back(&sink->socket->rx_trace());
  PoolCheckOptions pool_opts;
  pool_opts.pool_capacity_bytes = opts.pool.pool_bytes;
  pool_opts.lease_bytes = kLease;
  InvariantReport report = CheckPoolConservation(rx_logs, pool_opts);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.events_checked, 0u);

  // Orderly close reclaims every lease (reclaim-on-idle via kPeerClosed).
  for (Socket* c : clients) c->Close();
  rig.sim.Run();
  for (const auto& sink : sinks) EXPECT_TRUE(sink->eof);
  EXPECT_EQ(rig.acceptor.pool().LeasesActive(), 0u);
  EXPECT_EQ(rig.acceptor.pool().LeasesReclaimed(),
            static_cast<std::uint64_t>(kStreams));

  // The reclaimed capacity is immediately admittable again.
  int accepted_again = 0;
  rig.sim.Connect(0, 4000, SocketType::kStream, SmallStreams(),
                  [&](Socket* s) { accepted_again += (s != nullptr); });
  rig.sim.Run();
  EXPECT_EQ(accepted_again, 1);
}

// ---------------------------------------------------------------------------
// CheckPoolConservation: synthetic-trace positive and negative coverage.
// ---------------------------------------------------------------------------

TraceEvent PoolEv(SimTime t, TraceEventType type, std::uint64_t len) {
  TraceEvent ev;
  ev.time = t;
  ev.type = type;
  ev.len = len;
  return ev;
}

bool HasViolation(const InvariantReport& report, const std::string& needle) {
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [&](const std::string& v) {
                       return v.find(needle) != std::string::npos;
                     });
}

TEST(PoolConservationTest, CleanInterleavingPasses) {
  TraceLog a, b;
  a.Enable();
  b.Enable();
  a.Record(PoolEv(Microseconds(1), TraceEventType::kIndirectArrived, 512));
  b.Record(PoolEv(Microseconds(2), TraceEventType::kIndirectArrived, 512));
  a.Record(PoolEv(Microseconds(3), TraceEventType::kCopyOut, 512));
  b.Record(PoolEv(Microseconds(4), TraceEventType::kCopyOut, 512));
  InvariantReport report = CheckPoolConservation(
      {&a, &b}, {.pool_capacity_bytes = 1024, .lease_bytes = 512});
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(PoolConservationTest, LeaseOverrunIsFlagged) {
  TraceLog log;
  log.Enable();
  log.Record(PoolEv(Microseconds(1), TraceEventType::kIndirectArrived, 400));
  log.Record(PoolEv(Microseconds(2), TraceEventType::kIndirectArrived, 200));
  InvariantReport report =
      CheckPoolConservation({&log}, {.pool_capacity_bytes = 4096,
                                     .lease_bytes = 512});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, "exceeds its lease"));
}

TEST(PoolConservationTest, NegativeOccupancyIsFlagged) {
  TraceLog log;
  log.Enable();
  log.Record(PoolEv(Microseconds(1), TraceEventType::kIndirectArrived, 100));
  log.Record(PoolEv(Microseconds(2), TraceEventType::kCopyOut, 200));
  InvariantReport report = CheckPoolConservation({&log}, {});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, "more than ever arrived"));
}

TEST(PoolConservationTest, AggregateOvershootAcrossStreamsIsFlagged) {
  // Each stream stays within its lease, but their sum exceeds the slab —
  // exactly the bug a shared pool with broken admission would produce.
  TraceLog a, b, c;
  for (TraceLog* log : {&a, &b, &c}) {
    log->Enable();
    log->Record(
        PoolEv(Microseconds(1), TraceEventType::kIndirectArrived, 512));
  }
  InvariantReport report = CheckPoolConservation(
      {&a, &b, &c}, {.pool_capacity_bytes = 1024, .lease_bytes = 512});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, "exceeds the shared slab"));
}

TEST(PoolConservationTest, DrainsCreditFirstAtEqualTimestamps) {
  // At t=2 one stream drains 512 and another fills 512: the slab never
  // held more than 1024, and the drain-first merge order must agree.
  TraceLog a, b;
  a.Enable();
  b.Enable();
  a.Record(PoolEv(Microseconds(1), TraceEventType::kIndirectArrived, 1024));
  a.Record(PoolEv(Microseconds(2), TraceEventType::kCopyOut, 512));
  b.Record(PoolEv(Microseconds(2), TraceEventType::kIndirectArrived, 512));
  InvariantReport report = CheckPoolConservation(
      {&a, &b}, {.pool_capacity_bytes = 1024, .lease_bytes = 1024});
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(PoolConservationTest, TruncatedTraceIsRefusedByDefault) {
  TraceLog log;
  log.SetCapacity(1);
  log.Enable();
  log.Record(PoolEv(Microseconds(1), TraceEventType::kIndirectArrived, 64));
  log.Record(PoolEv(Microseconds(2), TraceEventType::kCopyOut, 64));
  InvariantReport report = CheckPoolConservation({&log}, {});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, "truncated"));
  InvariantReport lenient =
      CheckPoolConservation({&log}, {.allow_truncated = true});
  EXPECT_TRUE(lenient.ok()) << lenient.Summary();
}

// ---------------------------------------------------------------------------
// StreamTx::NextChunkLen: the single home of the §II-C chunking rule.
// ---------------------------------------------------------------------------

TEST(NextChunkLenTest, TakesTheBindingConstraint) {
  EXPECT_EQ(StreamTx::NextChunkLen(100, 1000, 1000), 100u);  // remaining
  EXPECT_EQ(StreamTx::NextChunkLen(1000, 100, 1000), 100u);  // room
  EXPECT_EQ(StreamTx::NextChunkLen(1000, 1000, 100), 100u);  // chunk cap
  EXPECT_EQ(StreamTx::NextChunkLen(7, 7, 7), 7u);
  EXPECT_EQ(StreamTx::NextChunkLen(0, 512, 512), 0u);
  EXPECT_EQ(StreamTx::NextChunkLen(512, 0, 512), 0u);
}

TEST(NextChunkLenTest, RechunkingCoversAMessageExactly) {
  // Driving the helper the way both transfer paths do: repeatedly clip
  // the remainder to the cap until the message is consumed.
  std::uint64_t remaining = 10'000;
  std::uint64_t total = 0;
  int chunks = 0;
  while (remaining > 0) {
    std::uint64_t len = StreamTx::NextChunkLen(remaining, 1 << 20, 4096);
    ASSERT_GT(len, 0u);
    ASSERT_LE(len, 4096u);
    remaining -= len;
    total += len;
    ++chunks;
  }
  EXPECT_EQ(total, 10'000u);
  EXPECT_EQ(chunks, 3);  // 4096 + 4096 + 1808
}

}  // namespace
}  // namespace exs::engine
