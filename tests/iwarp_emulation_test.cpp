// WWI emulation for legacy iWARP (§II-B): "The operation can be simulated
// on older iWARP hardware by following an RDMA WRITE with a small SEND."
// The emulation must be invisible above the verbs API: same completions,
// same data placement — just one extra wire message per transfer.
#include <gtest/gtest.h>

#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"
#include "verbs/queue_pair.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

TEST(IwarpEmulation, WwiDeliversDataAndNotification) {
  simnet::Fabric fabric(HardwareProfile::Iwarp10G(), 1);
  verbs::Device d0(fabric, 0), d1(fabric, 1);
  auto scq0 = d0.CreateCompletionQueue();
  auto rcq0 = d0.CreateCompletionQueue();
  auto scq1 = d1.CreateCompletionQueue();
  auto rcq1 = d1.CreateCompletionQueue();
  verbs::QueuePair q0(d0, *scq0, *rcq0), q1(d1, *scq1, *rcq1);
  verbs::QueuePair::ConnectPair(q0, q1);

  std::vector<std::uint8_t> src(1024), dst(1024, 0), slot(64);
  FillPattern(src.data(), src.size(), 0, 21);
  auto src_mr = d0.RegisterMemory(src.data(), src.size());
  auto dst_mr = d1.RegisterMemory(dst.data(), dst.size());
  auto slot_mr = d1.RegisterMemory(slot.data(), slot.size());

  q1.PostRecv({.wr_id = 3,
               .sge = {reinterpret_cast<std::uint64_t>(slot.data()), 64,
                       slot_mr->lkey()}});
  verbs::SendWorkRequest wr;
  wr.wr_id = 9;
  wr.opcode = verbs::Opcode::kRdmaWriteWithImm;
  wr.sge = {reinterpret_cast<std::uint64_t>(src.data()), 1024,
            src_mr->lkey()};
  wr.remote_addr = reinterpret_cast<std::uint64_t>(dst.data());
  wr.rkey = dst_mr->rkey();
  wr.has_imm = true;
  wr.imm = 0xabcd1234;
  q0.PostSend(wr);
  fabric.scheduler().Run();

  // Receiver sees exactly one WWI-style completion with the right length.
  verbs::WorkCompletion wc;
  ASSERT_TRUE(rcq1->Poll(&wc));
  EXPECT_EQ(wc.opcode, verbs::WcOpcode::kRecvRdmaWithImm);
  EXPECT_EQ(wc.wr_id, 3u);
  EXPECT_EQ(wc.byte_len, 1024u);
  EXPECT_TRUE(wc.has_imm);
  EXPECT_EQ(wc.imm, 0xabcd1234u);
  EXPECT_FALSE(rcq1->Poll(&wc));
  EXPECT_EQ(VerifyPattern(dst.data(), dst.size(), 0, 21), dst.size());

  // Sender sees exactly one completion, reported as the WWI it posted.
  ASSERT_TRUE(scq0->Poll(&wc));
  EXPECT_EQ(wc.opcode, verbs::WcOpcode::kRdmaWriteWithImm);
  EXPECT_EQ(wc.wr_id, 9u);
  EXPECT_FALSE(scq0->Poll(&wc));

  // But two messages crossed the wire (write + trailing notification).
  EXPECT_EQ(q1.stats().messages_delivered, 2u);
}

TEST(IwarpEmulation, CostsOneExtraWireMessagePerTransfer) {
  auto count_messages = [](const HardwareProfile& profile) {
    Simulation sim(profile, 2, true);
    auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
    std::vector<std::uint8_t> out(32 * 1024), in(32 * 1024);
    server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
    sim.RunFor(Microseconds(30));
    client->Send(out.data(), out.size());
    sim.Run();
    return sim.fabric().channel_from(0).MessagesCarried();
  };
  std::uint64_t native = count_messages(HardwareProfile::RoCE10G());
  std::uint64_t emulated = count_messages(HardwareProfile::Iwarp10G());
  EXPECT_EQ(emulated, native + 1);  // one direct WWI -> one extra SEND
}

TEST(IwarpEmulation, StreamProtocolRunsUnmodified) {
  // The EXS layer must not notice the emulation: full dynamic-protocol
  // stream with mixed direct and indirect service over legacy iWARP.
  Simulation sim(HardwareProfile::Iwarp10G(), 3, true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
  constexpr std::uint64_t kTotal = 256 * 1024;
  std::vector<std::uint8_t> out(kTotal), in(kTotal);
  FillPattern(out.data(), out.size(), 0, 33);

  client->Send(out.data(), kTotal / 2);  // indirect (no receive posted)
  for (int i = 0; i < 8; ++i) {
    server->Recv(in.data() + i * 32 * 1024, 32 * 1024,
                 RecvFlags{.waitall = true});
    sim.RunFor(Microseconds(60));
  }
  client->Send(out.data() + kTotal / 2, kTotal / 2);  // mostly direct
  sim.Run();

  EXPECT_EQ(server->stats().bytes_received, kTotal);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 33), in.size());
  EXPECT_GE(client->stats().indirect_transfers, 1u);
  EXPECT_GE(client->stats().direct_transfers, 1u);
  EXPECT_TRUE(client->Quiescent());
  EXPECT_TRUE(server->Quiescent());
}

TEST(IwarpEmulation, SeqPacketWorksOverIwarp) {
  Simulation sim(HardwareProfile::Iwarp10G(), 4, true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kSeqPacket);
  std::vector<std::uint8_t> out(2048), in(2048);
  FillPattern(out.data(), out.size(), 0, 44);
  server->Recv(in.data(), in.size());
  sim.RunFor(Microseconds(30));
  client->Send(out.data(), out.size());
  sim.Run();
  EXPECT_EQ(server->stats().recvs_completed, 1u);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 44), in.size());
}

}  // namespace
}  // namespace exs
