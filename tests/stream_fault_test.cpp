// Directed fault-injection scenarios: specific protocol races provoked by
// hand-placed faults (delayed control traffic, CPU stalls, link jitter and
// stall bursts), each asserting full stream integrity AND a clean report
// from the trace invariant checker — plus determinism and corpus-format
// coverage for the seeded torture harness built on the same machinery.
#include <gtest/gtest.h>

#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"
#include "exs/invariant_checker.hpp"
#include "simnet/faults.hpp"
#include "torture.hpp"

namespace exs {
namespace {

using simnet::FaultInjector;
using simnet::FaultKind;
using simnet::FaultPlan;
using simnet::FaultPlanConfig;
using simnet::HardwareProfile;

void ExpectCleanChecker(Socket* client, Socket* server) {
  InvariantReport report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.events_checked, 0u);
}

class StreamFaultTest : public ::testing::Test {
 protected:
  Simulation sim_{HardwareProfile::FdrInfiniBand(), /*seed=*/77,
                  /*carry_payload=*/true};
};

// The fresh ADVERT that would flip the sender back to direct is held at
// the sender's control channel across the phase boundary.  The sender
// keeps servicing indirectly; when the hold releases, the ADVERT arrives
// stale (Fig. 8) and must be discarded — with no integrity loss.
TEST_F(StreamFaultTest, AdvertDelayedAcrossPhaseFlip) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  client->EnableTracing();
  server->EnableTracing();
  std::vector<std::uint8_t> out(96 * 1024), in(96 * 1024);
  FillPattern(out.data(), out.size(), 0, 1);

  // Indirect phase: send with no receive posted.
  client->Send(out.data(), 32 * 1024);
  sim_.RunFor(Microseconds(100));
  ASSERT_EQ(client->stream_tx()->phase() % 2, 1u);

  // Drain, then freeze the sender's incoming control traffic before the
  // fresh receive's ADVERT can arrive.
  server->Recv(in.data(), 32 * 1024, RecvFlags{.waitall = true});
  sim_.RunFor(Milliseconds(1));
  client->channel_internal().HoldIncoming(Microseconds(400));
  server->Recv(in.data() + 32 * 1024, 32 * 1024);
  sim_.RunFor(Microseconds(50));
  EXPECT_GT(client->channel_internal().HeldCompletions(), 0u)
      << "the hold window should have captured the in-flight ADVERT";

  // New data during the hold is serviced indirectly; the held ADVERT is
  // stale by the time it is delivered.
  client->Send(out.data() + 32 * 1024, 32 * 1024);
  sim_.RunFor(Milliseconds(1));
  EXPECT_EQ(client->channel_internal().HeldCompletions(), 0u);

  // The released ADVERT is now stale (S_s moved past it during the hold);
  // the next send's matching loop must discard it, not match it.
  client->Send(out.data() + 64 * 1024, 32 * 1024);
  server->Recv(in.data() + 64 * 1024, 32 * 1024, RecvFlags{.waitall = true});
  sim_.Run();

  EXPECT_GE(client->stats().adverts_discarded, 1u);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 1), in.size());
  EXPECT_EQ(server->stream_rx()->sequence(), in.size());
  ExpectCleanChecker(client, server);
}

// The receiver's CPU stalls in the middle of draining the intermediate
// buffer: copy-out resumes afterwards and every occupancy/continuity
// invariant still holds.
TEST_F(StreamFaultTest, ReceiverCpuStallDuringCopyOut) {
  StreamOptions opts;
  opts.mode = ProtocolMode::kIndirectOnly;
  opts.intermediate_buffer_bytes = 32 * 1024;
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();
  std::vector<std::uint8_t> out(128 * 1024), in(128 * 1024);
  FillPattern(out.data(), out.size(), 0, 2);

  client->Send(out.data(), out.size());
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.RunFor(Microseconds(40));  // copy-out under way

  sim_.fabric().node(1).cpu().InjectStall(Milliseconds(2));
  sim_.Run();

  EXPECT_EQ(sim_.fabric().node(1).cpu().StallsInjected(), 1u);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 2), in.size());
  EXPECT_TRUE(client->Quiescent() && server->Quiescent());
  ExpectCleanChecker(client, server);
}

// Heavy link jitter while the dynamic protocol is switching phases: the
// monotone-delivery clamp keeps RC ordering, so the protocol must come
// through with both integrity and invariants intact.
TEST_F(StreamFaultTest, JitterBurstDuringDynamicSwitching) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  client->EnableTracing();
  server->EnableTracing();
  constexpr std::uint64_t kChunk = 8 * 1024;
  constexpr int kChunks = 16;
  std::vector<std::uint8_t> out(kChunks * kChunk), in(kChunks * kChunk);
  FillPattern(out.data(), out.size(), 0, 3);

  Rng jitter_rng(99);
  sim_.fabric().channel_from(0).AddFaultJitter(Microseconds(20), &jitter_rng);
  sim_.fabric().channel_from(1).AddFaultJitter(Microseconds(20), &jitter_rng);

  for (int i = 0; i < kChunks; ++i) {
    client->Send(out.data() + i * kChunk, kChunk);
    server->Recv(in.data() + i * kChunk, kChunk, RecvFlags{.waitall = true});
    sim_.RunFor(Microseconds(30));
    if (i == kChunks / 2) {
      // Close the jitter window mid-run: the second half runs clean.
      sim_.fabric().channel_from(0).AddFaultJitter(-Microseconds(20),
                                                   &jitter_rng);
      sim_.fabric().channel_from(1).AddFaultJitter(-Microseconds(20),
                                                   &jitter_rng);
    }
  }
  sim_.Run();

  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 3), in.size());
  EXPECT_EQ(client->stream_tx()->sequence(), out.size());
  EXPECT_EQ(server->stream_rx()->sequence_estimate(), out.size());
  ExpectCleanChecker(client, server);
}

// A retransmission-style stall burst on the data direction mid-transfer.
TEST_F(StreamFaultTest, LinkStallBurstMidTransfer) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  client->EnableTracing();
  server->EnableTracing();
  std::vector<std::uint8_t> out(64 * 1024), in(64 * 1024);
  FillPattern(out.data(), out.size(), 0, 4);

  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.RunFor(Microseconds(20));
  client->Send(out.data(), out.size());
  sim_.RunFor(Microseconds(10));

  auto& data_link = sim_.fabric().channel_from(0);
  data_link.AddFaultDelay(Microseconds(300));
  sim_.RunFor(Microseconds(200));
  data_link.AddFaultDelay(-Microseconds(300));
  ASSERT_EQ(data_link.fault_delay(), SimDuration{0});
  sim_.Run();

  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 4), in.size());
  ExpectCleanChecker(client, server);
}

// Overlapping hold windows on the control channel must release everything
// exactly once, in arrival order.
TEST_F(StreamFaultTest, OverlappingControlHoldsDrainOnce) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  client->EnableTracing();
  server->EnableTracing();
  std::vector<std::uint8_t> out(48 * 1024), in(48 * 1024);
  FillPattern(out.data(), out.size(), 0, 5);

  client->channel_internal().HoldIncoming(Microseconds(100));
  client->channel_internal().HoldIncoming(Microseconds(50));  // subsumed
  client->channel_internal().HoldIncoming(Microseconds(250));

  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  client->Send(out.data(), out.size());
  sim_.Run();

  EXPECT_EQ(client->channel_internal().HeldCompletions(), 0u);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 5), in.size());
  ExpectCleanChecker(client, server);
}

TEST(FaultPlanTest, GenerationIsDeterministicPerSeed) {
  FaultPlanConfig cfg = FaultPlanConfig::ScaledTo(Milliseconds(5));
  FaultPlan a = FaultPlan::Generate(42, cfg);
  FaultPlan b = FaultPlan::Generate(42, cfg);
  FaultPlan c = FaultPlan::Generate(43, cfg);

  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_GT(a.events.size(), 0u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].target, b.events[i].target);
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].magnitude, b.events[i].magnitude);
  }
  EXPECT_FALSE(a.Describe().empty());

  bool differs = c.events.size() != a.events.size();
  for (std::size_t i = 0; !differs && i < a.events.size(); ++i) {
    differs = c.events[i].at != a.events[i].at;
  }
  EXPECT_TRUE(differs) << "different seeds should give different plans";
}

TEST(TortureHarnessTest, RunIsDeterministicByFingerprint) {
  torture::TortureConfig cfg;
  cfg.seed = 7;
  cfg.total_bytes = 64 * 1024;
  torture::TortureResult a = torture::RunTorture(cfg);
  torture::TortureResult b = torture::RunTorture(cfg);
  EXPECT_TRUE(a.ok) << a.Describe();
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.events_checked, b.events_checked);
  EXPECT_GT(a.faults_applied, 0u);

  torture::TortureConfig other = cfg;
  other.seed = 8;
  EXPECT_NE(torture::RunTorture(other).fingerprint, a.fingerprint);
}

TEST(TortureHarnessTest, AllProfilesAndModesPass) {
  for (const char* profile : {"fdr", "iwarp", "wan"}) {
    for (const char* mode : {"dynamic", "direct", "indirect", "seqpacket"}) {
      torture::TortureConfig cfg;
      cfg.seed = 11;
      cfg.profile = profile;
      cfg.mode = mode;
      cfg.total_bytes = 64 * 1024;
      torture::TortureResult res = torture::RunTorture(cfg);
      EXPECT_TRUE(res.ok) << profile << "/" << mode << ": " << res.Describe();
    }
  }
}

TEST(TortureHarnessTest, CorpusEntryRoundTrips) {
  torture::TortureConfig cfg;
  cfg.seed = 123;
  cfg.profile = "wan";
  cfg.mode = "seqpacket";
  cfg.total_bytes = 12345;
  cfg.max_message = 777;
  cfg.buffer_bytes = 4096;
  cfg.trace_capacity = 50;
  cfg.enable_faults = false;
  cfg.sabotage_advert_gate = true;
  cfg.expect_fingerprint = 0xdeadbeefull;

  torture::TortureConfig parsed;
  ASSERT_TRUE(
      torture::DecodeCorpusEntry(torture::EncodeCorpusEntry(cfg), &parsed));
  EXPECT_EQ(parsed.seed, cfg.seed);
  EXPECT_EQ(parsed.profile, cfg.profile);
  EXPECT_EQ(parsed.mode, cfg.mode);
  EXPECT_EQ(parsed.total_bytes, cfg.total_bytes);
  EXPECT_EQ(parsed.max_message, cfg.max_message);
  EXPECT_EQ(parsed.buffer_bytes, cfg.buffer_bytes);
  EXPECT_EQ(parsed.trace_capacity, cfg.trace_capacity);
  EXPECT_EQ(parsed.enable_faults, cfg.enable_faults);
  EXPECT_EQ(parsed.sabotage_stale_adverts, cfg.sabotage_stale_adverts);
  EXPECT_EQ(parsed.sabotage_advert_gate, cfg.sabotage_advert_gate);
  EXPECT_EQ(parsed.expect_fingerprint, cfg.expect_fingerprint);

  torture::TortureConfig ignored;
  EXPECT_FALSE(torture::DecodeCorpusEntry("", &ignored));
  EXPECT_FALSE(torture::DecodeCorpusEntry("seed=abc mode=dynamic", &ignored));
  EXPECT_FALSE(torture::DecodeCorpusEntry("seed=1 mode=bogus", &ignored));
  EXPECT_FALSE(torture::DecodeCorpusEntry("mode=dynamic", &ignored))
      << "an entry without a seed is not replayable";
}

}  // namespace
}  // namespace exs
