// The metrics library itself: bucketing, time-weighted averaging,
// deterministic sample decimation, and the JSON/CSV exporters (the JSON is
// parsed back, not string-matched).  Also covers the sim-time stamping of
// EXS_LOG lines, which rides on the same SimClock interface.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/sim_clock.hpp"
#include "common/units.hpp"

namespace exs::metrics {
namespace {

TEST(Counter, AccumulatesIncrementsAndAdds) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.5);
  g.Set(-1.0);
  EXPECT_EQ(g.value(), -1.0);
}

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 holds only the value 0; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(~std::uint64_t{0}), 64u);

  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(11), 1024u);

  Histogram h;
  h.Record(0);
  h.Record(3);
  h.Record(1024);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1027u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[11], 1u);
}

TEST(Histogram, PercentilesAreOrderedAndBounded) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  double p50 = h.Percentile(50);
  double p90 = h.Percentile(90);
  double p99 = h.Percentile(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, static_cast<double>(h.min()));
  EXPECT_LE(p99, 2.0 * static_cast<double>(h.max()));
  EXPECT_EQ(h.Percentile(0), static_cast<double>(h.min()));
  EXPECT_EQ(h.Percentile(100), static_cast<double>(h.max()));
  // A log-bucketed p50 of uniform 1..1000 must land near the median's
  // bucket [512, 1024); anything outside signals broken bucket walking.
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1024.0);
}

TEST(TimeWeightedSeries, AverageWeightsByHeldTime) {
  TimeWeightedSeries s;
  EXPECT_EQ(s.Average(100), 0.0);  // nothing recorded yet
  s.Record(0, 10.0);
  s.Record(100, 20.0);
  // 10 held for [0,100), 20 held for [100,200): average 15.
  EXPECT_DOUBLE_EQ(s.Average(200), 15.0);
  // A short spike barely moves it: 1000 held for the last instant only.
  s.Record(200, 1000.0);
  EXPECT_DOUBLE_EQ(s.Average(200), 15.0);
  EXPECT_EQ(s.last(), 1000.0);
  EXPECT_EQ(s.min(), 10.0);
  EXPECT_EQ(s.max(), 1000.0);
}

TEST(TimeWeightedSeries, SameInstantOverwritesLastSample) {
  TimeWeightedSeries s;
  s.Record(50, 1.0);
  s.Record(50, 2.0);
  ASSERT_EQ(s.samples().size(), 1u);
  EXPECT_EQ(s.samples()[0].value, 2.0);
  // The value that settled at t=50 is what the integral carries forward.
  EXPECT_DOUBLE_EQ(s.Average(150), 2.0);
}

TEST(TimeWeightedSeries, DecimationIsBoundedAndDeterministic) {
  auto fill = [](TimeWeightedSeries& s) {
    for (std::uint64_t i = 0; i < 10 * TimeWeightedSeries::kMaxSamples; ++i) {
      s.Record(static_cast<SimTime>(i * 7), static_cast<double>(i % 13));
    }
  };
  TimeWeightedSeries a, b;
  fill(a);
  fill(b);
  EXPECT_LE(a.samples().size(), TimeWeightedSeries::kMaxSamples);
  EXPECT_GE(a.samples().size(), TimeWeightedSeries::kMaxSamples / 4);
  ASSERT_EQ(a.samples().size(), b.samples().size());
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    EXPECT_EQ(a.samples()[i].time, b.samples()[i].time);
    EXPECT_EQ(a.samples()[i].value, b.samples()[i].value);
  }
  // Retention never distorts the exact integral.
  SimTime end = static_cast<SimTime>(10 * TimeWeightedSeries::kMaxSamples * 7);
  EXPECT_NEAR(a.Average(end), 6.0, 0.1);  // mean of i % 13 over a long run
}

TEST(TimeWeightedSeries, EmptySeriesExportsAsZeroes) {
  Registry reg;
  reg.GetSeries("idle", "bytes");  // registered, never recorded
  const TimeWeightedSeries& s = *reg.series().at("idle").instrument;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Average(1000), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_TRUE(s.samples().empty());

  json::Value root;
  std::string error;
  ASSERT_TRUE(json::Parse(reg.ToJson(/*now=*/1000), &root, &error)) << error;
  const json::Value* series = root.Find("series")->Find("idle");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->Find("avg")->number_value, 0.0);
  EXPECT_TRUE(series->Find("samples")->array_items.empty());
}

TEST(TimeWeightedSeries, SingleSampleHoldsItsValueForever) {
  TimeWeightedSeries s;
  s.Record(50, 3.0);
  EXPECT_EQ(s.count(), 1u);
  ASSERT_EQ(s.samples().size(), 1u);
  EXPECT_EQ(s.samples()[0].time, 50);
  // The step function is constant after its only sample.
  EXPECT_DOUBLE_EQ(s.Average(50), 3.0);
  EXPECT_DOUBLE_EQ(s.Average(100000), 3.0);
  EXPECT_EQ(s.min(), 3.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(TimeWeightedSeries, ExportAfterSameTimestampDoubleWrite) {
  // The overwrite path (two Records at one instant) must leave the
  // exported snapshot well-formed: one retained sample carrying the
  // final value, and the integral built from it alone.
  Registry reg;
  TimeWeightedSeries& s = reg.GetSeries("ring", "bytes");
  s.Record(100, 1.0);
  s.Record(100, 5.0);

  json::Value root;
  std::string error;
  ASSERT_TRUE(json::Parse(reg.ToJson(/*now=*/300), &root, &error)) << error;
  const json::Value* series = root.Find("series")->Find("ring");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->Find("samples")->array_items.size(), 1u);
  EXPECT_EQ(series->Find("samples")->array_items[0].array_items.size(), 2u);
  EXPECT_EQ(series->Find("last")->number_value, 5.0);
  EXPECT_EQ(series->Find("avg")->number_value, 5.0);
  EXPECT_EQ(series->Find("max")->number_value, 5.0);
}

TEST(Registry, JsonSnapshotParsesBack) {
  Registry reg;
  reg.GetCounter("tx.bytes", "bytes").Add(12345);
  reg.GetGauge("tx.phase", "phase").Set(4);
  Histogram& h = reg.GetHistogram("rtt", "ps");
  h.Record(100);
  h.Record(900);
  TimeWeightedSeries& s = reg.GetSeries("ring", "bytes");
  s.Record(0, 0.0);
  s.Record(500, 64.0);

  std::string text = reg.ToJson(/*now=*/1000);
  json::Value root;
  std::string error;
  ASSERT_TRUE(json::Parse(text, &root, &error)) << error << "\n" << text;

  const json::Value* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  const json::Value* counter = counters->Find("tx.bytes");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->Find("value")->number_value, 12345.0);
  EXPECT_EQ(counter->Find("unit")->string_value, "bytes");

  const json::Value* gauge = root.Find("gauges")->Find("tx.phase");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->Find("value")->number_value, 4.0);

  const json::Value* hist = root.Find("histograms")->Find("rtt");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->number_value, 2.0);
  EXPECT_EQ(hist->Find("sum")->number_value, 1000.0);
  ASSERT_NE(hist->Find("p999"), nullptr);
  EXPECT_GE(hist->Find("p999")->number_value,
            hist->Find("p50")->number_value);
  ASSERT_TRUE(hist->Find("buckets")->IsArray());
  EXPECT_EQ(hist->Find("buckets")->array_items.size(), 2u);

  const json::Value* series = root.Find("series")->Find("ring");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->Find("last")->number_value, 64.0);
  // 0 held for [0,500), 64 for [500,1000): time-weighted average 32.
  EXPECT_EQ(series->Find("avg")->number_value, 32.0);
  EXPECT_EQ(series->Find("samples")->array_items.size(), 2u);
}

TEST(Registry, SnapshotsAreDeterministic) {
  auto build = [] {
    Registry reg;
    reg.GetCounter("b", "x").Add(2);
    reg.GetCounter("a", "y").Add(1);
    reg.GetSeries("s", "z").Record(10, 1.5);
    return reg.ToJson(100) + "\n" + reg.ToCsv(100);
  };
  EXPECT_EQ(build(), build());
}

TEST(Registry, CsvHasHeaderAndOneRowPerScalar) {
  Registry reg;
  reg.GetCounter("c", "ops").Increment();
  reg.GetGauge("g", "").Set(1);
  std::string csv = reg.ToCsv(0);
  std::istringstream in(csv);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "name,kind,unit,field,value");
  EXPECT_EQ(lines[1], "c,counter,ops,value,1");
  EXPECT_EQ(lines[2], "g,gauge,,value,1");
}

class FixedClock : public SimClock {
 public:
  explicit FixedClock(SimTime t) : t_(t) {}
  SimTime Now() const override { return t_; }

 private:
  SimTime t_;
};

TEST(Logging, LinesCarrySimTimeWhenClockRegistered) {
  FixedClock clock(Microseconds(125) + Nanoseconds(500));
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  SetLogClock(&clock);
  ::testing::internal::CaptureStderr();
  EXS_INFO("stamped message");
  std::string with_clock = ::testing::internal::GetCapturedStderr();
  SetLogClock(nullptr);
  ::testing::internal::CaptureStderr();
  EXS_INFO("plain message");
  std::string without_clock = ::testing::internal::GetCapturedStderr();
  SetLogLevel(saved);

  EXPECT_NE(with_clock.find("[INFO 125.500us] stamped message"),
            std::string::npos)
      << with_clock;
  EXPECT_NE(without_clock.find("[INFO] plain message"), std::string::npos)
      << without_clock;
}

}  // namespace
}  // namespace exs::metrics
