// Directed pins for multi-rail striping (StreamOptions::rails): in-order
// reassembly via the per-stream delivery sequence, rail negotiation,
// scheduler behaviour, the striped orderly close, wire-header accounting,
// and trace-level parity with the classic protocol at rails = 1.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"
#include "exs/invariant_checker.hpp"
#include "verbs/types.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

StreamOptions Railed(std::uint32_t rails,
                     std::uint64_t max_chunk = 64 * kKiB) {
  StreamOptions opts;
  opts.rails = rails;
  opts.max_wwi_chunk = max_chunk;  // force multi-chunk sends
  return opts;
}

std::uint64_t CounterValue(const Socket& socket, const std::string& name) {
  const auto& counters = socket.metrics_registry().counters();
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second.instrument->value();
}

/// Distinct rails named by posted events (msg_phase on striped posts).
std::size_t DistinctPostRails(const TraceLog& log) {
  std::vector<bool> seen(64, false);
  std::size_t distinct = 0;
  for (const auto& ev : log.events()) {
    if (ev.type != TraceEventType::kDirectPosted &&
        ev.type != TraceEventType::kIndirectPosted) {
      continue;
    }
    if (!seen[ev.msg_phase]) {
      seen[ev.msg_phase] = true;
      ++distinct;
    }
  }
  return distinct;
}

class StreamStripingTest : public ::testing::Test {
 protected:
  Simulation sim_{HardwareProfile::FdrInfiniBand(), /*seed=*/7,
                  /*carry_payload=*/true};
};

// A stream striped across four rails delivers the exact byte sequence the
// application submitted, uses every rail, and the receiver's reassembly
// counter matches the sender's stripe counter.
TEST_F(StreamStripingTest, StripedTransferDeliversBytesInOrder) {
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, Railed(4));
  client->EnableTracing();
  server->EnableTracing();
  EXPECT_EQ(client->effective_rails(), 4u);
  EXPECT_EQ(server->effective_rails(), 4u);

  std::vector<std::uint8_t> out(512 * kKiB), in(512 * kKiB);
  FillPattern(out.data(), out.size(), 0, 11);
  // Send first so the opening chunks go indirect; the receive posted
  // mid-flight flips later chunks direct — both kinds ride the rails.
  client->Send(out.data(), out.size());
  sim_.RunFor(Microseconds(10));
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();

  EXPECT_EQ(server->stats().recvs_completed, 1u);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 11), in.size());
  EXPECT_EQ(DistinctPostRails(client->tx_trace()), 4u);
  EXPECT_EQ(client->stream_tx()->NextStripeSeq(),
            server->stream_rx()->NextStripeSeq());
  EXPECT_GE(client->stream_tx()->NextStripeSeq(), 8u);

  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// The two sides provision different rail counts; the connection settles on
// the minimum and never names a rail beyond it.
TEST_F(StreamStripingTest, NegotiationSettlesOnMinimum) {
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, Railed(4), Railed(2));
  client->EnableTracing();
  server->EnableTracing();
  EXPECT_EQ(client->ProvisionedRails(), 4u);
  EXPECT_EQ(server->ProvisionedRails(), 2u);
  EXPECT_EQ(client->effective_rails(), 2u);
  EXPECT_EQ(server->effective_rails(), 2u);

  std::vector<std::uint8_t> out(256 * kKiB), in(256 * kKiB);
  FillPattern(out.data(), out.size(), 0, 12);
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  client->Send(out.data(), out.size());
  sim_.Run();

  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 12), in.size());
  EXPECT_EQ(DistinctPostRails(client->tx_trace()), 2u);
  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

/// Fixed workload used by the parity pin below.
std::uint64_t WorkloadFingerprint(StreamOptions client_opts,
                                  StreamOptions server_opts) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), /*seed=*/7,
                 /*carry_payload=*/true);
  auto [client, server] = sim.CreateConnectedPair(
      SocketType::kStream, client_opts, server_opts);
  client->EnableTracing();
  server->EnableTracing();
  std::vector<std::uint8_t> out(192 * kKiB), in(192 * kKiB);
  FillPattern(out.data(), out.size(), 0, 13);
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  client->Send(out.data(), out.size());
  client->Close();
  sim.Run();
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 13), in.size());
  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
  return ConnectionFingerprint(*client, *server);
}

// A single-rail peer pins the connection to the classic protocol: the
// trace fingerprint is bit-identical to an all-default run — no stripe
// headers, no timing change, nothing.
TEST(StreamStripingParity, SingleRailPeerPinsClassicProtocol) {
  StreamOptions classic;
  classic.max_wwi_chunk = 64 * kKiB;
  std::uint64_t striped_client = WorkloadFingerprint(Railed(4), classic);
  std::uint64_t baseline = WorkloadFingerprint(classic, classic);
  EXPECT_EQ(striped_client, baseline);
}

// Round-robin scheduling cycles the rails in index order while credits
// last; delivery sequence numbers are dense from zero.
TEST_F(StreamStripingTest, RoundRobinSchedulerCyclesRails) {
  StreamOptions opts = Railed(2, 32 * kKiB);
  opts.mode = ProtocolMode::kIndirectOnly;
  opts.rail_scheduler = RailScheduler::kRoundRobin;
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();

  std::vector<std::uint8_t> out(256 * kKiB), in(256 * kKiB);
  FillPattern(out.data(), out.size(), 0, 14);
  client->Send(out.data(), out.size());  // 8 chunks, posted back to back
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();

  std::size_t index = 0;
  for (const auto& ev : client->tx_trace().events()) {
    if (ev.type != TraceEventType::kIndirectPosted) continue;
    EXPECT_EQ(ev.msg_seq, index) << "stripe sequence must be dense";
    EXPECT_EQ(ev.msg_phase, index % 2) << "round-robin must alternate";
    ++index;
  }
  EXPECT_EQ(index, 8u);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 14), in.size());
  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Orderly close under striping: the SHUTDOWN rides rail 0 but must not
// overtake data still flying on other rails.  Close() immediately after a
// large striped send still delivers every byte before end-of-stream.
TEST_F(StreamStripingTest, ShutdownTrailsStripedData) {
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, Railed(4, 32 * kKiB));
  client->EnableTracing();
  server->EnableTracing();

  bool peer_closed = false;
  std::uint64_t received = 0;
  server->events().SetHandler([&](const Event& ev) {
    if (ev.type == EventType::kPeerClosed) peer_closed = true;
    if (ev.type == EventType::kRecvComplete) received += ev.bytes;
  });

  std::vector<std::uint8_t> out(1 * kMiB), in(1 * kMiB);
  FillPattern(out.data(), out.size(), 0, 15);
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  client->Send(out.data(), out.size());
  client->Close();
  sim_.Run();

  EXPECT_TRUE(peer_closed);
  EXPECT_EQ(received, out.size());
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 15), in.size());
  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Delay one rail's incoming dispatch: chunks from the other rails park in
// the reorder buffer (delivered but not yet processed) and drain in exact
// stripe order once the held rail catches up.  End-of-stream waits for the
// reorder buffer too.
TEST_F(StreamStripingTest, HeldRailParksChunksInReorderBuffer) {
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, Railed(4, 32 * kKiB));
  client->EnableTracing();
  server->EnableTracing();

  std::vector<std::uint8_t> out(256 * kKiB), in(256 * kKiB);
  FillPattern(out.data(), out.size(), 0, 16);
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.RunFor(Microseconds(5));  // the ADVERT reaches the sender

  // Rail 0 carries stripe 0 (shortest-outstanding ties break to the
  // lowest index), so holding it forces every other arrival to wait.
  server->channel_internal().HoldIncoming(Microseconds(300));
  client->Send(out.data(), out.size());
  client->Close();
  sim_.RunFor(Microseconds(150));
  EXPECT_GT(server->stream_rx()->StripeReorderDepth(), 0u);
  EXPECT_EQ(server->stats().recvs_completed, 0u);

  sim_.Run();
  EXPECT_EQ(server->stream_rx()->StripeReorderDepth(), 0u);
  EXPECT_EQ(server->stats().recvs_completed, 1u);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 16), in.size());
  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// The stripe header costs exactly kStripeHeaderBytes per chunk on the
// wire.  Rail 1 of the sender carries nothing but data chunks here, so its
// wire/payload counter difference is the per-chunk overhead, precisely.
TEST_F(StreamStripingTest, StripeHeaderChargedPerChunk) {
  StreamOptions opts = Railed(2, 32 * kKiB);
  opts.mode = ProtocolMode::kIndirectOnly;
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, opts);

  std::vector<std::uint8_t> out(128 * kKiB), in(128 * kKiB);
  FillPattern(out.data(), out.size(), 0, 17);
  client->Send(out.data(), out.size());
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 17), in.size());

  std::uint64_t chunks = CounterValue(*client, "rail1.sends_posted");
  EXPECT_EQ(chunks, 2u);  // 4 chunks round-tripped across 2 rails
  std::uint64_t payload = CounterValue(*client, "rail1.payload_bytes_sent");
  std::uint64_t wire = CounterValue(*client, "rail1.wire_bytes_sent");
  // Data WWI overhead: base wire header + 4-byte immediate + the stripe
  // extension.
  EXPECT_EQ(wire - payload,
            chunks * (verbs::kWireHeaderBytes + 4 + verbs::kStripeHeaderBytes));
}

// Rail metrics exist exactly for the provisioned rails; a classic socket
// has rail 0 only.
TEST_F(StreamStripingTest, RailInstrumentsMatchProvisioning) {
  auto [striped, striped_peer] =
      sim_.CreateConnectedPair(SocketType::kStream, Railed(2));
  auto [classic, classic_peer] =
      sim_.CreateConnectedPair(SocketType::kStream, StreamOptions{});
  (void)striped_peer;
  (void)classic_peer;
  const auto& striped_counters = striped->metrics_registry().counters();
  const auto& classic_counters = classic->metrics_registry().counters();
  EXPECT_EQ(striped_counters.count("rail0.sends_posted"), 1u);
  EXPECT_EQ(striped_counters.count("rail1.sends_posted"), 1u);
  EXPECT_EQ(classic_counters.count("rail0.sends_posted"), 1u);
  EXPECT_EQ(classic_counters.count("rail1.sends_posted"), 0u);
}

// SOCK_SEQPACKET and read-rendezvous sockets clamp to a single rail — a
// message or a READ never splits into chunks, so there is nothing to
// stripe — and still interoperate normally.
TEST_F(StreamStripingTest, NonStreamSocketsClampToOneRail) {
  StreamOptions packet_opts;
  packet_opts.rails = 4;
  auto [pc, ps] =
      sim_.CreateConnectedPair(SocketType::kSeqPacket, packet_opts);
  EXPECT_EQ(pc->options().rails, 1u);
  EXPECT_EQ(pc->effective_rails(), 1u);

  std::vector<std::uint8_t> msg(4 * kKiB), got(4 * kKiB);
  FillPattern(msg.data(), msg.size(), 0, 18);
  ps->Recv(got.data(), got.size());
  pc->Send(msg.data(), msg.size());
  sim_.Run();
  EXPECT_EQ(VerifyPattern(got.data(), got.size(), 0, 18), got.size());

  StreamOptions rdv_opts;
  rdv_opts.rails = 4;
  rdv_opts.mode = ProtocolMode::kReadRendezvous;
  auto [rc, rs] = sim_.CreateConnectedPair(SocketType::kStream, rdv_opts);
  EXPECT_EQ(rc->options().rails, 1u);
  EXPECT_EQ(rc->effective_rails(), 1u);
  std::vector<std::uint8_t> rout(64 * kKiB), rin(64 * kKiB);
  FillPattern(rout.data(), rout.size(), 0, 19);
  rs->Recv(rin.data(), rin.size(), RecvFlags{.waitall = true});
  rc->Send(rout.data(), rout.size());
  sim_.Run();
  EXPECT_EQ(VerifyPattern(rin.data(), rin.size(), 0, 19), rin.size());
}

// Vectored sends compose with striping: a multi-slice Sendv chunked
// across four rails (with doorbell batching armed on every rail)
// reassembles into the exact submitted byte sequence, and the per-rail
// gather/doorbell conservation audit passes.
TEST_F(StreamStripingTest, SendvStripesAcrossRailsIntact) {
  StreamOptions opts = Railed(4, /*max_chunk=*/8 * kKiB);
  opts.batching.doorbell = true;
  opts.batching.max_wrs = 4;
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream, opts);
  ASSERT_EQ(client->effective_rails(), 4u);
  client->EnableTracing();
  server->EnableTracing();

  // Three scattered slices forming one 192 KiB logical stream write —
  // large enough to split into many chunks over every rail.
  std::vector<std::uint8_t> s0(96 * kKiB), s1(64 * kKiB), s2(32 * kKiB);
  FillPattern(s0.data(), s0.size(), 0, 23);
  FillPattern(s1.data(), s1.size(), s0.size(), 23);
  FillPattern(s2.data(), s2.size(), s0.size() + s1.size(), 23);
  Socket::IoSlice iov[3] = {{s0.data(), s0.size()},
                            {s1.data(), s1.size()},
                            {s2.data(), s2.size()}};
  std::vector<std::uint8_t> in(192 * kKiB, 0);
  client->Sendv(iov, 3);
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();

  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 23), in.size());
  EXPECT_GE(DistinctPostRails(client->tx_trace()), 2u);  // actually striped
  StreamStats stats = client->stats();
  EXPECT_EQ(stats.sendv_calls, 1u);
  EXPECT_GT(stats.doorbell_batches, 0u);
  EXPECT_GE(stats.batched_wrs, stats.doorbell_batches);

  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Striping also negotiates over the timed listen/connect/accept handshake
// (the rail count rides the REQ/REP ring credentials).
TEST_F(StreamStripingTest, HandshakeNegotiatesRails) {
  Listener* listener = sim_.Listen(1, 9000, SocketType::kStream, Railed(2));
  Socket* accepted = nullptr;
  listener->SetAcceptHandler([&](Socket* s) { accepted = s; });
  Socket* client = sim_.Connect(0, 9000, SocketType::kStream, Railed(4),
                                [](Socket*) {});
  sim_.Run();
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(client->effective_rails(), 2u);
  EXPECT_EQ(accepted->effective_rails(), 2u);

  std::vector<std::uint8_t> out(128 * kKiB), in(128 * kKiB);
  FillPattern(out.data(), out.size(), 0, 20);
  accepted->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  client->Send(out.data(), out.size());
  sim_.Run();
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 20), in.size());
}

}  // namespace
}  // namespace exs
