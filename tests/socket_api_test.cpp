// Socket API surface: misuse rejection, registration lifecycle, stats
// exposure, multiple coexisting connections, and a long full-duplex soak
// with interleaved closes.
#include <gtest/gtest.h>

#include <vector>

#include "common/pattern.hpp"
#include "common/rng.hpp"
#include "exs/exs.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

TEST(SocketApi, IoBeforeConnectThrows) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 1, false);
  Socket lone(sim.device(0), SocketType::kStream, StreamOptions{}, "lone");
  std::vector<std::uint8_t> buf(64);
  EXPECT_THROW(lone.Send(buf.data(), buf.size()), InvariantViolation);
  EXPECT_THROW(lone.Recv(buf.data(), buf.size()), InvariantViolation);
}

TEST(SocketApi, DoubleConnectThrows) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 2, false);
  auto [a, b] = sim.CreateConnectedPair(SocketType::kStream);
  EXPECT_THROW(Socket::ConnectPair(*a, *b), InvariantViolation);
}

TEST(SocketApi, ZeroLengthRecvThrows) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 3, false);
  auto [a, b] = sim.CreateConnectedPair(SocketType::kStream);
  (void)b;
  std::vector<std::uint8_t> buf(64);
  EXPECT_THROW(a->Recv(buf.data(), 0), InvariantViolation);
}

TEST(SocketApi, RegistrationCoversSubranges) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 4, true);
  StreamOptions opts;
  opts.auto_register_memory = false;
  auto [a, b] = sim.CreateConnectedPair(SocketType::kStream, opts);
  std::vector<std::uint8_t> big(64 * 1024);
  a->RegisterMemory(big.data(), big.size());
  b->RegisterMemory(big.data(), big.size());
  // Interior slices of a registered region are fine without re-registering.
  b->Recv(big.data() + 1024, 2048, RecvFlags{.waitall = true});
  a->Send(big.data() + 10000, 2048);
  sim.Run();
  EXPECT_EQ(b->stats().bytes_received, 2048u);
  // A range extending past the registration is not.
  EXPECT_THROW(a->Send(big.data() + big.size() - 10, 20),
               InvariantViolation);
}

TEST(SocketApi, StatsAndIntrospectionExposed) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 5, false);
  auto [a, b] = sim.CreateConnectedPair(SocketType::kStream);
  EXPECT_EQ(a->type(), SocketType::kStream);
  EXPECT_EQ(a->name(), "client");
  EXPECT_EQ(b->name(), "server");
  EXPECT_NE(a->stream_tx(), nullptr);
  EXPECT_NE(a->stream_rx(), nullptr);
  EXPECT_EQ(a->options().mode, ProtocolMode::kDynamic);
  EXPECT_TRUE(a->Quiescent());

  Simulation sim2(HardwareProfile::FdrInfiniBand(), 5, false);
  auto [c, d] = sim2.CreateConnectedPair(SocketType::kSeqPacket);
  (void)d;
  EXPECT_EQ(c->stream_tx(), nullptr);  // packet sockets have no stream half
}

TEST(SocketApi, MultiplePairsCoexistOnOneFabric) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 6, true);
  auto [a1, b1] = sim.CreateConnectedPair(SocketType::kStream);
  auto [a2, b2] = sim.CreateConnectedPair(SocketType::kSeqPacket);

  std::vector<std::uint8_t> s1(8192), r1(8192), s2(4096), r2(4096);
  FillPattern(s1.data(), s1.size(), 0, 1);
  FillPattern(s2.data(), s2.size(), 0, 2);
  b1->Recv(r1.data(), r1.size(), RecvFlags{.waitall = true});
  b2->Recv(r2.data(), r2.size());
  sim.RunFor(Microseconds(30));
  a1->Send(s1.data(), s1.size());
  a2->Send(s2.data(), s2.size());
  sim.Run();

  EXPECT_EQ(VerifyPattern(r1.data(), r1.size(), 0, 1), r1.size());
  EXPECT_EQ(VerifyPattern(r2.data(), r2.size(), 0, 2), r2.size());
}

TEST(SocketApi, DuplexSoakWithClosesBothWays) {
  // A long, randomized, full-duplex conversation that ends with both
  // directions closing; every byte accounted for, clean quiescence.
  Simulation sim(HardwareProfile::FdrInfiniBand(), 7, true);
  auto [a, b] = sim.CreateConnectedPair(SocketType::kStream);
  a->EnableTracing();
  b->EnableTracing();

  Rng rng(99);
  constexpr std::uint64_t kAtoB = 300 * 1024;
  constexpr std::uint64_t kBtoA = 200 * 1024;
  std::vector<std::uint8_t> ab_out(kAtoB), ab_in(kAtoB);
  std::vector<std::uint8_t> ba_out(kBtoA), ba_in(kBtoA);
  FillPattern(ab_out.data(), kAtoB, 0, 11);
  FillPattern(ba_out.data(), kBtoA, 0, 22);

  std::uint64_t ab_sent = 0, ab_posted = 0, ba_sent = 0, ba_posted = 0;
  std::uint64_t a_eof_events = 0, b_eof_events = 0;
  a->events().SetHandler([&](const Event& ev) {
    if (ev.type == EventType::kPeerClosed) ++a_eof_events;
  });
  b->events().SetHandler([&](const Event& ev) {
    if (ev.type == EventType::kPeerClosed) ++b_eof_events;
  });

  while (ab_sent < kAtoB || ba_sent < kBtoA || ab_posted < kAtoB ||
         ba_posted < kBtoA) {
    if (ab_sent < kAtoB && rng.NextBool()) {
      std::uint64_t n = std::min<std::uint64_t>(
          rng.NextInRange(1, 32 * 1024), kAtoB - ab_sent);
      a->Send(ab_out.data() + ab_sent, n);
      ab_sent += n;
      if (ab_sent == kAtoB) a->Close();
    }
    if (ba_sent < kBtoA && rng.NextBool()) {
      std::uint64_t n = std::min<std::uint64_t>(
          rng.NextInRange(1, 32 * 1024), kBtoA - ba_sent);
      b->Send(ba_out.data() + ba_sent, n);
      ba_sent += n;
      if (ba_sent == kBtoA) b->Close();
    }
    if (ab_posted < kAtoB && rng.NextBool()) {
      std::uint64_t n = std::min<std::uint64_t>(
          rng.NextInRange(1, 32 * 1024), kAtoB - ab_posted);
      b->Recv(ab_in.data() + ab_posted, n, RecvFlags{.waitall = true});
      ab_posted += n;
    }
    if (ba_posted < kBtoA && rng.NextBool()) {
      std::uint64_t n = std::min<std::uint64_t>(
          rng.NextInRange(1, 32 * 1024), kBtoA - ba_posted);
      a->Recv(ba_in.data() + ba_posted, n, RecvFlags{.waitall = true});
      ba_posted += n;
    }
    sim.RunFor(static_cast<SimDuration>(
        rng.NextInRange(0, static_cast<std::uint64_t>(Microseconds(25)))));
  }
  sim.Run();

  EXPECT_EQ(b->stats().bytes_received, kAtoB);
  EXPECT_EQ(a->stats().bytes_received, kBtoA);
  EXPECT_EQ(VerifyPattern(ab_in.data(), kAtoB, 0, 11), kAtoB);
  EXPECT_EQ(VerifyPattern(ba_in.data(), kBtoA, 0, 22), kBtoA);
  EXPECT_EQ(a_eof_events, 1u);
  EXPECT_EQ(b_eof_events, 1u);
  EXPECT_TRUE(a->Quiescent());
  EXPECT_TRUE(b->Quiescent());

  // Both directions' traces satisfy the paper's lemmas.
  auto ab = ValidateConnectionTraces(a->tx_trace().events(),
                                     b->rx_trace().events());
  EXPECT_TRUE(ab.ok()) << ab.Summary();
  auto ba = ValidateConnectionTraces(b->tx_trace().events(),
                                     a->rx_trace().events());
  EXPECT_TRUE(ba.ok()) << ba.Summary();
}

}  // namespace
}  // namespace exs
