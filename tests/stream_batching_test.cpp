// Hot-path batching through the stream protocol: doorbell batching of a
// pump pass's WWIs (StreamOptions::Batching::doorbell), vectored sends
// (Socket::Sendv) with gather-list coalescing instead of staging copies
// (sendv_aggregation — the zero-memcpy witness), and the MR registration
// cache pinning Sendv slices for exactly the life of their WRs.  Every
// test closes with the connection-level invariant audit, which now
// includes the per-rail gather-byte and doorbell conservation rules.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <tuple>
#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"
#include "exs/invariant_checker.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

StreamOptions AllBatchingOn() {
  StreamOptions opts;
  opts.coalesce.enabled = true;
  opts.batching.doorbell = true;
  opts.batching.max_wrs = 8;
  opts.batching.sendv_aggregation = true;
  opts.batching.mr_cache_entries = 16;
  return opts;
}

class StreamBatchingTest : public ::testing::Test {
 protected:
  Simulation sim_{HardwareProfile::FdrInfiniBand(), /*seed=*/13,
                  /*carry_payload=*/true};
};

// A burst of small sends under doorbell batching still delivers the exact
// byte stream, and the doorbell counters show the batch actually formed:
// fewer doorbells than WRs, every WR accounted.
TEST_F(StreamBatchingTest, DoorbellBatchingDeliversExactStream) {
  StreamOptions opts;
  opts.batching.doorbell = true;
  opts.batching.max_wrs = 8;
  opts.max_wwi_chunk = 512;  // force each send to split into many WWIs
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();

  std::vector<std::uint8_t> out(16 * kKiB), in(16 * kKiB, 0);
  FillPattern(out.data(), out.size(), 0, 17);
  client->Send(out.data(), out.size());
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();

  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 17), in.size());
  StreamStats stats = client->stats();
  EXPECT_GT(stats.doorbell_batches, 0u);
  EXPECT_GE(stats.batched_wrs, stats.doorbell_batches);
  // Batching must actually amortise: strictly fewer doorbells than WRs.
  EXPECT_LT(stats.doorbell_batches, stats.batched_wrs);

  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Sends submitted at one simulated instant share one deferred doorbell:
// the zero-delay flush event is FIFO-ordered after every same-instant
// pump pass, so sixteen back-to-back 512 B sends accumulate into full
// max_wrs batches instead of ringing per chunk.
TEST_F(StreamBatchingTest, SameInstantSendsShareTheDeferredDoorbell) {
  StreamOptions opts;
  opts.batching.doorbell = true;
  opts.batching.max_wrs = 8;
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();

  std::vector<std::uint8_t> out(16 * 512), in(16 * 512, 0);
  FillPattern(out.data(), out.size(), 0, 23);
  for (int i = 0; i < 16; ++i) client->Send(out.data() + i * 512, 512);
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();

  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 23), in.size());
  StreamStats stats = client->stats();
  EXPECT_GE(stats.batched_wrs, 16u);
  // All sixteen chunks were pumped at one instant: average batch depth
  // must be at least half the max_wrs bound.
  EXPECT_LE(stats.doorbell_batches * 4, stats.batched_wrs);

  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Batched CQ dispatch through the socket: with cq_drain armed the
// completion-clocked window refill happens in clumps, and the doorbell
// batches those clumped posts — the closed-loop mechanism ext_batching
// measures.  Off-path guarantee: cq_drain = 1 stays the default and is
// covered by DisabledBatchingMatchesDefaultWireCounts below.
TEST_F(StreamBatchingTest, CqDrainClumpsCompletionClockedSends) {
  StreamOptions opts;
  opts.batching.doorbell = true;
  opts.batching.max_wrs = 8;
  opts.batching.cq_drain = 16;
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();

  // A completion-clocked loop: every send completion immediately submits
  // a replacement, so clumped completion delivery produces clumped
  // submission.
  constexpr std::uint64_t kMessages = 256;
  constexpr std::uint64_t kSize = 512;
  std::vector<std::uint8_t> out(kSize);
  FillPattern(out.data(), out.size(), 0, 27);
  std::uint64_t submitted = 0;
  client->events().SetHandler([&](const Event& ev) {
    if (ev.type != EventType::kSendComplete) return;
    if (submitted < kMessages) {
      ++submitted;
      client->Send(out.data(), out.size());
    }
  });
  std::vector<std::uint8_t> in(64 * kKiB, 0);
  std::function<void()> repost = [&] {
    server->Recv(in.data(), in.size(), RecvFlags{});
  };
  server->events().SetHandler([&](const Event& ev) {
    if (ev.type == EventType::kRecvComplete) repost();
  });
  for (int i = 0; i < 32; ++i) {
    ++submitted;
    client->Send(out.data(), out.size());
  }
  repost();
  sim_.Run();

  StreamStats stats = client->stats();
  EXPECT_EQ(stats.sends_completed, kMessages);
  EXPECT_GT(stats.doorbell_batches, 0u);
  // The steady state must actually clump: strictly fewer doorbells than
  // WRs.  Under the stock interrupt-driven profile (notify latency and
  // jitter on) the clumping is marginal — this test pins the mechanism,
  // not the magnitude; ext_batching quantifies the polling-grade regime
  // (see EXPERIMENTS.md).
  EXPECT_LT(stats.doorbell_batches, stats.batched_wrs);
}

// Sendv gathers scattered slices into one stream write with zero staging
// memcpys: under sendv aggregation the coalesce path records gather-list
// references, so the staging-copy instrument must read exactly 0.
TEST_F(StreamBatchingTest, SendvAggregationIsZeroCopy) {
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, AllBatchingOn());
  client->EnableTracing();
  server->EnableTracing();

  // Three scattered slices forming one contiguous logical pattern.
  std::vector<std::uint8_t> s0(300), s1(500), s2(224);
  FillPattern(s0.data(), s0.size(), 0, 29);
  FillPattern(s1.data(), s1.size(), 300, 29);
  FillPattern(s2.data(), s2.size(), 800, 29);
  Socket::IoSlice iov[3] = {{s0.data(), s0.size()},
                            {s1.data(), s1.size()},
                            {s2.data(), s2.size()}};
  std::vector<std::uint8_t> in(1024, 0);
  client->Sendv(iov, 3);
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();

  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 29), in.size());
  StreamStats stats = client->stats();
  EXPECT_EQ(stats.sendv_calls, 1u);
  EXPECT_EQ(stats.coalesce_staging_copies, 0u);  // the zero-copy witness
  EXPECT_EQ(stats.bytes_sent, 1024u);
  EXPECT_EQ(stats.sends_completed, 1u);

  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// The same workload without aggregation pays one staging memcpy per
// staged send — the instrument separates the two regimes crisply.
TEST_F(StreamBatchingTest, StagingCopiesCountedWithoutAggregation) {
  StreamOptions opts;
  opts.coalesce.enabled = true;  // staging copies, no aggregation
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream, opts);

  std::vector<std::uint8_t> out(768), in(768, 0);
  FillPattern(out.data(), out.size(), 0, 31);
  client->Send(out.data(), 256);
  client->Send(out.data() + 256, 256);
  client->Send(out.data() + 512, 256);
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();

  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 31), in.size());
  StreamStats stats = client->stats();
  EXPECT_EQ(stats.coalesce_staging_copies, 3u);
  EXPECT_EQ(stats.coalesce_sg_flushes, 0u);
}

// Aggregated staged sends flush as one multi-SGE WWI and every staged
// member still completes individually, in submission order.
TEST_F(StreamBatchingTest, AggregatedFlushPreservesPerSendCompletions) {
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, AllBatchingOn());

  std::vector<Event> completions;
  client->events().SetHandler(
      [&](const Event& ev) { completions.push_back(ev); });

  std::vector<std::uint8_t> out(768), in(768, 0);
  FillPattern(out.data(), out.size(), 0, 37);
  std::uint64_t id0 = client->Send(out.data(), 256);
  std::uint64_t id1 = client->Send(out.data() + 256, 256);
  std::uint64_t id2 = client->Send(out.data() + 512, 256);
  // Past the coalesce delay budget plus the registration cost model the
  // armed MR cache brings in (setup registrations are charged too).
  sim_.RunFor(Microseconds(200));

  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0].id, id0);
  EXPECT_EQ(completions[1].id, id1);
  EXPECT_EQ(completions[2].id, id2);

  StreamStats stats = client->stats();
  EXPECT_EQ(stats.coalesced_sends, 3u);
  EXPECT_EQ(stats.coalesce_staging_copies, 0u);
  EXPECT_GE(stats.coalesce_sg_flushes, 1u);

  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 37), in.size());
}

// MR cache through the socket: repeated Sendv of the same slices pins
// warm registrations — registrations stay flat while hits climb.
TEST_F(StreamBatchingTest, SendvReusesCachedRegistrations) {
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, AllBatchingOn());
  client->EnableTracing();
  server->EnableTracing();

  std::vector<std::uint8_t> s0(512), s1(512);
  std::vector<std::uint8_t> in(1024, 0);
  constexpr std::uint64_t kRounds = 5;
  for (std::uint64_t round = 0; round < kRounds; ++round) {
    FillPattern(s0.data(), s0.size(), round * 1024, 41);
    FillPattern(s1.data(), s1.size(), round * 1024 + 512, 41);
    Socket::IoSlice iov[2] = {{s0.data(), s0.size()}, {s1.data(), s1.size()}};
    client->Sendv(iov, 2);
    server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
    sim_.Run();
    EXPECT_EQ(VerifyPattern(in.data(), in.size(), round * 1024, 41),
              in.size());
  }

  StreamStats stats = client->stats();
  EXPECT_EQ(stats.sendv_calls, kRounds);
  // Round 1 registers both slices; rounds 2..N pin them from the cache.
  EXPECT_GE(stats.mr_cache_hits, 2u * (kRounds - 1));

  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// A Sendv whose slices sum to zero bytes completes immediately with zero
// bytes and posts nothing, like a zero-length Send.
TEST_F(StreamBatchingTest, ZeroLengthSendvCompletesImmediately) {
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, AllBatchingOn());
  (void)server;

  std::vector<Event> completions;
  client->events().SetHandler(
      [&](const Event& ev) { completions.push_back(ev); });

  std::uint8_t byte = 0;
  Socket::IoSlice iov[2] = {{&byte, 0}, {&byte, 0}};
  std::uint64_t id = client->Sendv(iov, 2);
  sim_.Run();

  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].id, id);
  EXPECT_EQ(completions[0].type, EventType::kSendComplete);
  EXPECT_EQ(completions[0].bytes, 0u);
}

// Sendv works without any batching option armed: slices are staged or
// posted exactly like the equivalent Send calls, bytes land intact.
TEST_F(StreamBatchingTest, SendvWorksWithDefaultsOff) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  client->EnableTracing();
  server->EnableTracing();

  std::vector<std::uint8_t> s0(40 * kKiB), s1(24 * kKiB);
  FillPattern(s0.data(), s0.size(), 0, 43);
  FillPattern(s1.data(), s1.size(), s0.size(), 43);
  Socket::IoSlice iov[2] = {{s0.data(), s0.size()}, {s1.data(), s1.size()}};
  std::vector<std::uint8_t> in(64 * kKiB, 0);
  client->Sendv(iov, 2);
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();

  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 43), in.size());
  EXPECT_EQ(client->stats().sendv_calls, 1u);
  EXPECT_EQ(client->stats().doorbell_batches, 0u);  // batching stayed off

  auto report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Batching off must be bit-identical to the pre-batching protocol: the
// same workload with and without the whole Batching block armed produces
// byte-identical delivered streams and identical wire-level transfer
// counts with batching disabled vs. a default-constructed options set.
TEST_F(StreamBatchingTest, DisabledBatchingMatchesDefaultWireCounts) {
  auto run = [](StreamOptions opts) {
    Simulation sim{HardwareProfile::FdrInfiniBand(), /*seed=*/99,
                   /*carry_payload=*/true};
    auto [client, server] =
        sim.CreateConnectedPair(SocketType::kStream, opts);
    std::vector<std::uint8_t> out(32 * kKiB), in(32 * kKiB, 0);
    FillPattern(out.data(), out.size(), 0, 47);
    client->Send(out.data(), out.size());
    server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
    sim.Run();
    EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 47), in.size());
    StreamStats s = client->stats();
    return std::tuple{s.direct_transfers, s.indirect_transfers, s.bytes_sent,
                      sim.scheduler().Now()};
  };
  StreamOptions defaults;
  StreamOptions explicit_off;
  explicit_off.batching.doorbell = false;
  explicit_off.batching.sendv_aggregation = false;
  explicit_off.batching.mr_cache_entries = 0;
  EXPECT_EQ(run(defaults), run(explicit_off));
}

}  // namespace
}  // namespace exs
