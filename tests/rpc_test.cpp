// RPC tier directed tests: framing, the pipelined client, the sharded KV
// server with its fixed-slot slab, deadline/timeout/cancellation, and the
// request/response conservation invariant — including the conviction test
// proving CheckRpcConservation catches a forged double outcome.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "exs/exs.hpp"
#include "exs/invariant_checker.hpp"
#include "exs/loadgen/workload.hpp"
#include "exs/mux.hpp"
#include "exs/rpc/framing.hpp"
#include "exs/rpc/kv_server.hpp"
#include "exs/rpc/rpc_client.hpp"

namespace exs::rpc {
namespace {

// ---- framing ------------------------------------------------------------

TEST(Framing, HeaderRoundTrip) {
  MessageHeader h;
  h.type = MessageType::kResponse;
  h.op_or_status = static_cast<std::uint8_t>(Status::kNotFound);
  h.key_len = 0x1234;
  h.value_len = 0xdeadbeef % kMaxValueBytes;
  h.correlation_id = 0x0123456789abcdefULL;
  std::uint8_t wire[kHeaderBytes];
  EncodeHeader(h, wire);
  MessageHeader out;
  // key_len above exceeds kMaxKeyBytes, so decode must refuse it.
  EXPECT_FALSE(DecodeHeader(wire, &out));
  h.key_len = 17;
  h.value_len = 4096;
  EncodeHeader(h, wire);
  ASSERT_TRUE(DecodeHeader(wire, &out));
  EXPECT_EQ(out.type, h.type);
  EXPECT_EQ(out.op_or_status, h.op_or_status);
  EXPECT_EQ(out.key_len, h.key_len);
  EXPECT_EQ(out.value_len, h.value_len);
  EXPECT_EQ(out.correlation_id, h.correlation_id);
}

TEST(Framing, DecoderReassemblesAcrossArbitrarySplits) {
  std::vector<std::uint8_t> stream;
  std::vector<std::string> keys = {"alpha", "b", "curve-17"};
  std::vector<std::uint8_t> value(97);
  for (std::size_t i = 0; i < value.size(); ++i) {
    value[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto frame = EncodeMessage(MessageType::kRequest,
                               static_cast<std::uint8_t>(Op::kPut), i + 1,
                               keys[i], value.data(),
                               static_cast<std::uint32_t>(value.size()));
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  // Feed one byte at a time — the cruellest split.
  std::vector<MessageView> seen_headers;
  std::vector<std::string> seen_keys;
  std::vector<std::vector<std::uint8_t>> seen_values;
  FrameDecoder dec([&](const MessageView& v) {
    seen_headers.push_back(v);
    seen_keys.push_back(v.KeyString());
    seen_values.emplace_back(v.value, v.value + v.header.value_len);
  });
  for (std::uint8_t b : stream) dec.Feed(&b, 1);
  ASSERT_EQ(seen_keys.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(seen_keys[i], keys[i]);
    EXPECT_EQ(seen_headers[i].header.correlation_id, i + 1);
    EXPECT_EQ(seen_values[i], value);
  }
  EXPECT_TRUE(dec.Idle());
  EXPECT_FALSE(dec.Failed());
  EXPECT_EQ(dec.messages_decoded(), keys.size());
}

TEST(Framing, MalformedHeaderStopsDecoder) {
  std::uint8_t junk[kHeaderBytes] = {0x7f, 0, 0, 0, 0, 0, 0, 0,
                                     0,    0, 0, 0, 0, 0, 0, 0};
  std::string error;
  FrameDecoder dec([](const MessageView&) { FAIL() << "decoded junk"; },
                   [&](const std::string& e) { error = e; });
  dec.Feed(junk, sizeof junk);
  EXPECT_TRUE(dec.Failed());
  EXPECT_FALSE(error.empty());
}

// ---- end-to-end over a simulated pair -----------------------------------

struct Fixture {
  Simulation sim;
  Socket* client_sock = nullptr;
  Socket* server_sock = nullptr;
  KvServer server;
  std::optional<RpcClient> client;

  explicit Fixture(KvServerOptions sopts = {}, RpcClientOptions copts = {},
                   StreamOptions stream = {})
      : sim(simnet::HardwareProfile::FdrInfiniBand(), /*seed=*/7),
        server(sopts) {
    auto [a, b] = sim.CreateConnectedPair(SocketType::kStream, stream);
    client_sock = a;
    server_sock = b;
    a->EnableTracing(0);
    b->EnableTracing(0);
    server.Attach(*b);
    client.emplace(*a, sim.scheduler(), copts);
  }

  InvariantReport Check() {
    std::vector<const RpcLedger*> ledgers = {&client->ledger()};
    return CheckRpcConservation(ledgers, &server.counters());
  }
};

TEST(RpcKv, PutGetDelRoundTrip) {
  Fixture f;
  std::vector<std::uint8_t> value(300);
  loadgen::WorkloadGenerator::FillValue("door", value.data(),
                                        static_cast<std::uint32_t>(value.size()));
  std::vector<RpcClient::Result> results;
  auto cb = [&](const RpcClient::Result& r) { results.push_back(r); };
  f.client->Call(Op::kPut, "door", value.data(),
                 static_cast<std::uint32_t>(value.size()), cb);
  f.client->Call(Op::kGet, "door", nullptr, 0, cb);
  f.client->Call(Op::kDel, "door", nullptr, 0, cb);
  f.client->Call(Op::kGet, "door", nullptr, 0, cb);
  f.sim.Run();

  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].outcome, Outcome::kAnswered);
  EXPECT_EQ(results[0].status, Status::kOk);
  EXPECT_EQ(results[1].status, Status::kOk);
  EXPECT_EQ(results[1].value, value);  // byte-exact round trip
  EXPECT_EQ(results[2].status, Status::kOk);
  EXPECT_EQ(results[3].status, Status::kNotFound);
  EXPECT_EQ(results[3].outcome, Outcome::kAnswered);

  EXPECT_EQ(f.server.stats().hits, 2u);   // GET hit + DEL hit
  EXPECT_EQ(f.server.stats().misses, 1u);
  EXPECT_EQ(f.server.stats().sendv_responses, 1u);
  EXPECT_EQ(f.server.keys_stored(), 0u);
  EXPECT_EQ(f.server.slab().in_use(), 0u);

  InvariantReport report = f.Check();
  EXPECT_TRUE(report.ok()) << report.Summary();
  report = CheckConnection(*f.client_sock, *f.server_sock);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(RpcKv, PipelinedCallsResolveByCorrelation) {
  // Small receive chunks on both sides force frames to split and
  // reassemble across many completions.
  KvServerOptions sopts;
  sopts.recv_chunk_bytes = 48;
  RpcClientOptions copts;
  copts.recv_chunk_bytes = 32;
  StreamOptions stream;
  stream.max_wwi_chunk = 64;  // bulk sends split into many WWIs
  Fixture f(sopts, copts, stream);

  constexpr int kCalls = 32;
  std::vector<std::uint8_t> value(200, 0xab);
  int answered = 0;
  for (int i = 0; i < kCalls; ++i) {
    const std::string key = "k" + std::to_string(i % 8);
    const bool put = i % 2 == 0;
    const std::uint64_t expect_id = static_cast<std::uint64_t>(i) + 1;
    f.client->Call(
        put ? Op::kPut : Op::kGet, key, put ? value.data() : nullptr,
        put ? static_cast<std::uint32_t>(value.size()) : 0,
        [&, expect_id](const RpcClient::Result& r) {
          EXPECT_EQ(r.correlation_id, expect_id);
          EXPECT_EQ(r.outcome, Outcome::kAnswered);
          ++answered;
        });
  }
  f.sim.Run();
  EXPECT_EQ(answered, kCalls);
  EXPECT_EQ(f.client->pending_calls(), 0u);
  EXPECT_FALSE(f.client->framing_failed());
  EXPECT_EQ(f.client->answer_latencies().size(),
            static_cast<std::size_t>(kCalls));
  InvariantReport report = f.Check();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(RpcKv, DeadlineTimesOutAndLateResponseIsStale) {
  RpcClientOptions copts;
  copts.default_deadline = Microseconds(1);  // far below the FDR RTT
  Fixture f({}, copts);
  std::vector<RpcClient::Result> results;
  f.client->Call(Op::kGet, "nope", nullptr, 0,
                 [&](const RpcClient::Result& r) { results.push_back(r); });
  f.sim.Run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].outcome, Outcome::kTimedOut);
  // The server still answered; the answer arrived after the deadline.
  EXPECT_EQ(f.server.counters().responses_sent, 1u);
  EXPECT_EQ(f.client->ledger().stale_responses, 1u);
  EXPECT_EQ(f.client->ledger().Count(Outcome::kTimedOut), 1u);
  InvariantReport report = f.Check();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(RpcKv, ExplicitCancelResolvesOnce) {
  Fixture f;
  std::vector<RpcClient::Result> results;
  const std::uint64_t id =
      f.client->Call(Op::kGet, "x", nullptr, 0,
                     [&](const RpcClient::Result& r) { results.push_back(r); });
  f.client->Cancel(id);
  f.client->Cancel(id);  // idempotent
  f.sim.Run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].outcome, Outcome::kTimedOut);
  EXPECT_EQ(f.client->ledger().cancelled, 1u);
  EXPECT_EQ(f.client->ledger().stale_responses, 1u);
  InvariantReport report = f.Check();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(RpcKv, SlabExhaustionRefusesAndReleasesRecover) {
  KvServerOptions sopts;
  sopts.slab_slots = 2;
  sopts.slot_bytes = 64;
  Fixture f(sopts);
  std::uint8_t v[16] = {1};
  std::vector<RpcClient::Result> results;
  auto cb = [&](const RpcClient::Result& r) { results.push_back(r); };
  f.client->Call(Op::kPut, "a", v, sizeof v, cb);
  f.client->Call(Op::kPut, "b", v, sizeof v, cb);
  f.client->Call(Op::kPut, "c", v, sizeof v, cb);  // slab full -> refused
  f.client->Call(Op::kDel, "a", nullptr, 0, cb);
  f.client->Call(Op::kPut, "c", v, sizeof v, cb);  // slot freed -> ok
  std::uint8_t big[65] = {2};
  f.client->Call(Op::kPut, "d", big, sizeof big, cb);  // oversize -> refused
  f.sim.Run();

  ASSERT_EQ(results.size(), 6u);
  EXPECT_EQ(results[2].outcome, Outcome::kRefused);
  EXPECT_TRUE(results[2].refused_remotely);
  EXPECT_EQ(results[4].outcome, Outcome::kAnswered);
  EXPECT_EQ(results[5].outcome, Outcome::kRefused);
  EXPECT_EQ(f.server.stats().slab_full_refusals, 1u);
  EXPECT_EQ(f.server.stats().oversize_refusals, 1u);
  EXPECT_EQ(f.server.counters().refused, 2u);
  InvariantReport report = f.Check();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(RpcKv, PinnedSlotSurvivesRacingDelete) {
  Fixture f;
  std::vector<std::uint8_t> value(128);
  loadgen::WorkloadGenerator::FillValue("hot", value.data(), 128);
  std::vector<RpcClient::Result> results;
  auto cb = [&](const RpcClient::Result& r) { results.push_back(r); };
  f.client->Call(Op::kPut, "hot", value.data(), 128, cb);
  // GET and DEL land in the same server pass: the DEL zombies the slot
  // while the GET's Sendv is still reading it.
  f.client->Call(Op::kGet, "hot", nullptr, 0, cb);
  f.client->Call(Op::kDel, "hot", nullptr, 0, cb);
  f.sim.Run();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[1].status, Status::kOk);
  EXPECT_EQ(results[1].value, value);  // delivered intact despite the DEL
  EXPECT_EQ(results[2].status, Status::kOk);
  EXPECT_EQ(f.server.slab().in_use(), 0u);   // zombie freed at completion
  EXPECT_EQ(f.server.slab().zombies(), 0u);
  InvariantReport report = f.Check();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(RpcKv, LocalShedRefusesWithoutTouchingWire) {
  RpcClientOptions copts;
  copts.max_outstanding = 2;
  Fixture f({}, copts);
  std::vector<RpcClient::Result> results;
  auto cb = [&](const RpcClient::Result& r) { results.push_back(r); };
  f.client->Call(Op::kGet, "a", nullptr, 0, cb);
  f.client->Call(Op::kGet, "b", nullptr, 0, cb);
  f.client->Call(Op::kGet, "c", nullptr, 0, cb);  // over the window -> shed
  f.sim.Run();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].outcome, Outcome::kRefused);  // shed resolves first
  EXPECT_FALSE(results[0].refused_remotely);
  EXPECT_EQ(f.client->ledger().shed_local, 1u);
  EXPECT_EQ(f.server.counters().requests_received, 2u);
  InvariantReport report = f.Check();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(RpcKv, ShardingSpreadsKeys) {
  KvServerOptions sopts;
  sopts.shards = 4;
  Fixture f(sopts);
  std::uint8_t v[8] = {3};
  for (int i = 0; i < 32; ++i) {
    f.client->Call(Op::kPut, "key-" + std::to_string(i), v, sizeof v);
  }
  f.sim.Run();
  int used = 0;
  for (std::uint64_t n : f.server.shard_requests()) {
    if (n > 0) ++used;
  }
  EXPECT_GE(used, 3);  // FNV spreads 32 keys over at least 3 of 4 shards
  InvariantReport report = f.Check();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(RpcKv, MuxedTransportCarriesRpc) {
  Simulation sim(simnet::HardwareProfile::FdrInfiniBand(), /*seed=*/11);
  MuxOptions mopts;
  mopts.width = 2;
  MuxGroup g0(sim.device(0), mopts);
  MuxGroup g1(sim.device(1), mopts);
  MuxGroup::Connect(g0, g1);

  StreamOptions opts;
  opts.credits = 8;
  opts.intermediate_buffer_bytes = 2 * kKiB;
  opts.max_wwi_chunk = 2 * kKiB;

  KvServer server;
  std::vector<std::unique_ptr<RpcClient>> clients;
  std::vector<const RpcLedger*> ledgers;
  constexpr int kClients = 5;
  int answered = 0;
  std::uint8_t v[64] = {9};
  for (int c = 0; c < kClients; ++c) {
    auto [a, b] = sim.CreateMuxedPair(g0, g1, opts);
    server.Attach(*b);
    clients.push_back(std::make_unique<RpcClient>(*a, sim.scheduler()));
    RpcClient& cl = *clients.back();
    const std::string key = "m" + std::to_string(c);
    cl.Call(Op::kPut, key, v, sizeof v);
    cl.Call(Op::kGet, key, nullptr, 0,
            [&](const RpcClient::Result& r) {
              EXPECT_EQ(r.outcome, Outcome::kAnswered);
              EXPECT_EQ(r.status, Status::kOk);
              ++answered;
            });
  }
  sim.Run();
  EXPECT_EQ(answered, kClients);
  EXPECT_EQ(sim.device(1).QueuePairsCreated(), 2u);  // the mux budget
  for (const auto& cl : clients) ledgers.push_back(&cl->ledger());
  InvariantReport report = CheckRpcConservation(ledgers, &server.counters());
  EXPECT_TRUE(report.ok()) << report.Summary();
  report = CheckMuxGroupPair(g0, g1);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// ---- conviction: the checker catches forged books -----------------------

TEST(RpcConservation, ConvictsDoubleOutcome) {
  RpcLedger forged;
  const std::uint64_t id = forged.RecordIssue();
  forged.RecordOutcome(id, Outcome::kAnswered);
  forged.RecordOutcome(id, Outcome::kTimedOut);  // the double resolution
  std::vector<const RpcLedger*> ledgers = {&forged};
  InvariantReport report = CheckRpcConservation(ledgers);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("resolved 2 times"), std::string::npos)
      << report.Summary();
}

TEST(RpcConservation, ConvictsLostRequest) {
  RpcLedger forged;
  forged.RecordIssue();  // issued, never resolved
  std::vector<const RpcLedger*> ledgers = {&forged};
  InvariantReport report = CheckRpcConservation(ledgers);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("lost"), std::string::npos);
}

TEST(RpcConservation, ConvictsServerMismatch) {
  RpcLedger ledger;
  const std::uint64_t id = ledger.RecordIssue();
  ledger.RecordOutcome(id, Outcome::kAnswered);
  RpcServerCounters server;
  server.requests_received = 1;
  server.responses_sent = 2;  // one response vanished into thin air
  server.answered = 2;
  std::vector<const RpcLedger*> ledgers = {&ledger};
  InvariantReport report = CheckRpcConservation(ledgers, &server);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace exs::rpc
