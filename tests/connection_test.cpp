// Connection establishment over the wire: the listen/connect/accept
// handshake (REQ/REP/RTU), its timing, rejection, concurrency, and the
// readiness rules (client usable at REP, server delivered at RTU).
#include <gtest/gtest.h>

#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

TEST(ConnectionTest, HandshakeEstablishesWorkingStream) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 1, true);
  Listener* listener = sim.Listen(1, 4000, SocketType::kStream);

  Socket* server = nullptr;
  listener->SetAcceptHandler([&](Socket* s) { server = s; });
  Socket* client = nullptr;
  sim.Connect(0, 4000, SocketType::kStream, StreamOptions{},
              [&](Socket* s) { client = s; });
  sim.Run();

  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(listener->AcceptedCount(), 1u);

  std::vector<std::uint8_t> out(8192), in(8192);
  FillPattern(out.data(), out.size(), 0, 3);
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  client->Send(out.data(), out.size());
  sim.Run();
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 3), in.size());
}

TEST(ConnectionTest, HandshakeTakesAtLeastOneRoundTrip) {
  Simulation sim(HardwareProfile::RoCE10GWithDelay(Milliseconds(24)), 2,
                 false);
  sim.Listen(1, 4000, SocketType::kStream);
  SimTime connected_at = -1;
  sim.Connect(0, 4000, SocketType::kStream, StreamOptions{},
              [&](Socket* s) {
                ASSERT_NE(s, nullptr);
                connected_at = sim.Now();
              });
  sim.Run();
  // REQ out (24 ms) + REP back (24 ms): the client cannot learn of the
  // acceptance in less than the full round trip.
  EXPECT_GE(connected_at, Milliseconds(48));
}

TEST(ConnectionTest, ConnectToUnboundPortIsRejected) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 3, false);
  bool called = false;
  Socket* result = reinterpret_cast<Socket*>(1);
  sim.Connect(0, 9999, SocketType::kStream, StreamOptions{},
              [&](Socket* s) {
                called = true;
                result = s;
              });
  sim.Run();
  EXPECT_TRUE(called);
  EXPECT_EQ(result, nullptr);
}

TEST(ConnectionTest, TypeMismatchIsRejected) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 4, false);
  sim.Listen(1, 4000, SocketType::kSeqPacket);
  Socket* result = reinterpret_cast<Socket*>(1);
  sim.Connect(0, 4000, SocketType::kStream, StreamOptions{},
              [&](Socket* s) { result = s; });
  sim.Run();
  EXPECT_EQ(result, nullptr);
}

TEST(ConnectionTest, SocketRefusesIoBeforeEstablishment) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 5, false);
  sim.Listen(1, 4000, SocketType::kStream);
  Socket* client = sim.Connect(0, 4000, SocketType::kStream, StreamOptions{},
                               [](Socket*) {});
  std::vector<std::uint8_t> buf(64);
  // The handshake has not run (no simulated time has passed).
  EXPECT_THROW(client->Send(buf.data(), buf.size()), InvariantViolation);
  sim.Run();
  client->Send(buf.data(), buf.size());  // now fine
  sim.Run();
}

TEST(ConnectionTest, DuplicateListenThrows) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 6, false);
  sim.Listen(1, 4000, SocketType::kStream);
  EXPECT_THROW(sim.Listen(1, 4000, SocketType::kStream), InvariantViolation);
  // Same port on the other node is a different binding.
  sim.Listen(0, 4000, SocketType::kStream);
}

TEST(ConnectionTest, ManyConcurrentHandshakes) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 7, true);
  Listener* listener = sim.Listen(1, 4000, SocketType::kStream);
  std::vector<Socket*> servers, clients;
  listener->SetAcceptHandler([&](Socket* s) { servers.push_back(s); });
  constexpr int kConnections = 8;
  for (int i = 0; i < kConnections; ++i) {
    sim.Connect(0, 4000, SocketType::kStream, StreamOptions{},
                [&](Socket* s) {
                  ASSERT_NE(s, nullptr);
                  clients.push_back(s);
                });
  }
  sim.Run();
  ASSERT_EQ(clients.size(), static_cast<std::size_t>(kConnections));
  ASSERT_EQ(servers.size(), static_cast<std::size_t>(kConnections));
  EXPECT_EQ(sim.connections().ActiveHandshakes(), 0u);

  // Each connection is an independent byte stream.
  std::vector<std::vector<std::uint8_t>> outs(kConnections),
      ins(kConnections);
  for (int i = 0; i < kConnections; ++i) {
    outs[i].resize(4096);
    ins[i].resize(4096);
    FillPattern(outs[i].data(), 4096, 0, 100 + i);
    servers[i]->Recv(ins[i].data(), 4096, RecvFlags{.waitall = true});
    clients[i]->Send(outs[i].data(), 4096);
  }
  sim.Run();
  for (int i = 0; i < kConnections; ++i) {
    EXPECT_EQ(VerifyPattern(ins[i].data(), 4096, 0, 100 + i), 4096u)
        << "connection " << i;
  }
}

TEST(ConnectionTest, BacklogHoldsAcceptsUntilHandlerInstalled) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 8, false);
  Listener* listener = sim.Listen(1, 4000, SocketType::kStream);
  sim.Connect(0, 4000, SocketType::kStream, StreamOptions{}, [](Socket*) {});
  sim.Run();
  EXPECT_EQ(listener->AcceptedCount(), 1u);

  Socket* server = nullptr;
  listener->SetAcceptHandler([&](Socket* s) { server = s; });
  EXPECT_NE(server, nullptr);  // delivered from the backlog immediately
}

TEST(ConnectionTest, ClientCanSendImmediatelyAfterCallback) {
  // Data posted the instant the client learns of acceptance must not
  // outrun the server's RTU (in-order delivery guarantees it arrives
  // after the server half is ready).
  Simulation sim(HardwareProfile::FdrInfiniBand(), 9, true);
  Listener* listener = sim.Listen(1, 4000, SocketType::kStream);
  std::vector<std::uint8_t> out(2048), in(2048);
  FillPattern(out.data(), out.size(), 0, 77);
  Socket* server = nullptr;
  std::uint64_t received = 0;
  listener->SetAcceptHandler([&](Socket* s) {
    server = s;
    s->events().SetHandler([&](const Event& ev) { received += ev.bytes; });
    s->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  });
  sim.Connect(0, 4000, SocketType::kStream, StreamOptions{},
              [&](Socket* client) {
                ASSERT_NE(client, nullptr);
                client->Send(out.data(), out.size());
              });
  sim.Run();
  EXPECT_EQ(received, out.size());
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 77), in.size());
}

TEST(ConnectionTest, SeqPacketHandshake) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 10, true);
  Listener* listener = sim.Listen(1, 5000, SocketType::kSeqPacket);
  Socket* server = nullptr;
  listener->SetAcceptHandler([&](Socket* s) { server = s; });
  Socket* client = nullptr;
  sim.Connect(0, 5000, SocketType::kSeqPacket, StreamOptions{},
              [&](Socket* s) { client = s; });
  sim.Run();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);

  std::vector<std::uint8_t> out(512), in(512);
  FillPattern(out.data(), out.size(), 0, 88);
  server->Recv(in.data(), in.size());
  sim.RunFor(Microseconds(20));
  client->Send(out.data(), out.size());
  sim.Run();
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 88), in.size());
}

}  // namespace
}  // namespace exs
