// The per-socket event queue: polling vs handler delivery, ordering, and
// CPU cost accounting for handler-mode events.
#include <gtest/gtest.h>

#include <vector>

#include "exs/event_queue.hpp"

namespace exs {
namespace {

struct Harness {
  simnet::EventScheduler sched;
  simnet::Cpu cpu{sched};
  EventQueue eq{cpu, Microseconds(2)};
};

Event MakeEvent(std::uint64_t id, std::uint64_t bytes) {
  return Event{EventType::kRecvComplete, id, bytes, false};
}

TEST(EventQueue, PollModeIsFifo) {
  Harness h;
  h.eq.Push(MakeEvent(1, 10));
  h.eq.Push(MakeEvent(2, 20));
  EXPECT_EQ(h.eq.Depth(), 2u);
  Event ev;
  ASSERT_TRUE(h.eq.Poll(&ev));
  EXPECT_EQ(ev.id, 1u);
  ASSERT_TRUE(h.eq.Poll(&ev));
  EXPECT_EQ(ev.id, 2u);
  EXPECT_FALSE(h.eq.Poll(&ev));
  EXPECT_EQ(h.eq.TotalEvents(), 2u);
}

TEST(EventQueue, HandlerReceivesQueuedBacklogOnInstall) {
  Harness h;
  h.eq.Push(MakeEvent(1, 10));
  h.eq.Push(MakeEvent(2, 20));
  std::vector<std::uint64_t> seen;
  h.eq.SetHandler([&](const Event& ev) { seen.push_back(ev.id); });
  h.sched.Run();
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(h.eq.Depth(), 0u);
}

TEST(EventQueue, HandlerEventsChargeCpu) {
  Harness h;
  h.eq.SetHandler([](const Event&) {});
  h.eq.Push(MakeEvent(1, 0));
  h.eq.Push(MakeEvent(2, 0));
  h.sched.Run();
  // Two events, 2 us each, with the profile-free Cpu (no jitter).
  EXPECT_EQ(h.cpu.BusyTime(), Microseconds(4));
}

TEST(EventQueue, PollModeCostsNothing) {
  Harness h;
  h.eq.Push(MakeEvent(1, 0));
  Event ev;
  ASSERT_TRUE(h.eq.Poll(&ev));
  h.sched.Run();
  EXPECT_EQ(h.cpu.BusyTime(), 0);
}

TEST(EventQueue, ReadinessWatcherFiresOnlyOnEmptyToNonEmptyEdge) {
  Harness h;
  int fires = 0;
  h.eq.SetReadinessWatcher([&] { ++fires; });
  EXPECT_EQ(fires, 0);  // empty at install: nothing to signal
  h.eq.Push(MakeEvent(1, 0));
  EXPECT_EQ(fires, 1);  // the edge
  h.eq.Push(MakeEvent(2, 0));
  h.eq.Push(MakeEvent(3, 0));
  EXPECT_EQ(fires, 1);  // level stays high, no further edges

  Event ev;
  while (h.eq.Poll(&ev)) {
  }
  h.eq.Push(MakeEvent(4, 0));
  EXPECT_EQ(fires, 1);  // drained but not re-armed: still one edge
  h.eq.Poll(&ev);
  h.eq.RearmWatcher();
  h.eq.Push(MakeEvent(5, 0));
  EXPECT_EQ(fires, 2);  // re-armed: the next edge fires
}

TEST(EventQueue, WatcherInstalledOnBacklogFiresImmediately) {
  Harness h;
  h.eq.Push(MakeEvent(1, 0));
  int fires = 0;
  h.eq.SetReadinessWatcher([&] { ++fires; });
  EXPECT_EQ(fires, 1);
  Event ev;
  ASSERT_TRUE(h.eq.Poll(&ev));  // events stayed queued for polling
  EXPECT_EQ(ev.id, 1u);
}

TEST(EventQueue, CloseDiscardsPendingAndRejectsFuturePushes) {
  Harness h;
  int fires = 0;
  h.eq.SetReadinessWatcher([&] { ++fires; });
  h.eq.Push(MakeEvent(1, 0));
  h.eq.Push(MakeEvent(2, 0));
  EXPECT_EQ(fires, 1);

  h.eq.Close();
  EXPECT_TRUE(h.eq.Closed());
  EXPECT_EQ(h.eq.Depth(), 0u);
  EXPECT_EQ(h.eq.DroppedOnClose(), 2u);

  h.eq.Push(MakeEvent(3, 0));  // rejected, counted, never signalled
  EXPECT_EQ(h.eq.Depth(), 0u);
  EXPECT_EQ(h.eq.DroppedOnClose(), 3u);
  EXPECT_EQ(fires, 1);
  Event ev;
  EXPECT_FALSE(h.eq.Poll(&ev));
  h.eq.RearmWatcher();  // no-op on a closed queue
  h.eq.Push(MakeEvent(4, 0));
  EXPECT_EQ(fires, 1);
}

TEST(EventQueue, CloseCancelsPendingHandlerDispatch) {
  // A handler dispatch is charged to the CPU and runs later; closing the
  // queue in between must prevent the callback from firing into a socket
  // that is being torn down.
  Harness h;
  int handled = 0;
  h.eq.SetHandler([&](const Event&) { ++handled; });
  h.eq.Push(MakeEvent(1, 0));  // dispatch queued on the node CPU
  h.eq.Close();
  h.sched.Run();
  EXPECT_EQ(handled, 0);
}

TEST(EventQueue, HandlerMayPushMoreEvents) {
  Harness h;
  std::vector<std::uint64_t> seen;
  h.eq.SetHandler([&](const Event& ev) {
    seen.push_back(ev.id);
    if (ev.id < 3) h.eq.Push(MakeEvent(ev.id + 1, 0));
  });
  h.eq.Push(MakeEvent(1, 0));
  h.sched.Run();
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3}));
}

}  // namespace
}  // namespace exs
