#include <gtest/gtest.h>

#include <vector>

#include "simnet/fabric.hpp"
#include "simnet/link.hpp"

namespace exs::simnet {
namespace {

ChannelConfig OneGigabytePerSecond(SimDuration prop) {
  ChannelConfig c;
  c.bandwidth = Bandwidth::GigabytesPerSecond(1.0);  // 1000 bytes per us
  c.propagation = prop;
  return c;
}

TEST(SimplexChannel, DeliveryTimeIsSerializationPlusPropagation) {
  EventScheduler sched;
  SimplexChannel ch(sched, OneGigabytePerSecond(Microseconds(5)));
  SimTime arrival = ch.Transmit(1000, [] {});
  EXPECT_EQ(arrival, Microseconds(1) + Microseconds(5));
  SimTime delivered = -1;
  sched.Run();
  EXPECT_EQ(sched.Now(), arrival);
  (void)delivered;
}

TEST(SimplexChannel, BackToBackMessagesQueueOnTransmitter) {
  EventScheduler sched;
  SimplexChannel ch(sched, OneGigabytePerSecond(0));
  std::vector<SimTime> arrivals;
  ch.Transmit(1000, [&] { arrivals.push_back(sched.Now()); });
  ch.Transmit(1000, [&] { arrivals.push_back(sched.Now()); });
  ch.Transmit(500, [&] { arrivals.push_back(sched.Now()); });
  sched.Run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], Microseconds(1));
  EXPECT_EQ(arrivals[1], Microseconds(2));
  EXPECT_EQ(arrivals[2], Microseconds(2.5));
}

TEST(SimplexChannel, TransmitterFreesUpOverTime) {
  EventScheduler sched;
  SimplexChannel ch(sched, OneGigabytePerSecond(0));
  ch.Transmit(1000, [] {});
  EXPECT_EQ(ch.TxFreeAt(), Microseconds(1));
  sched.Run();
  // After the line idles, a new message starts immediately.
  SimTime arrival = ch.Transmit(1000, [] {});
  EXPECT_EQ(arrival, Microseconds(2));
}

TEST(SimplexChannel, NetemExtraDelayShiftsArrival) {
  EventScheduler sched;
  ChannelConfig cfg = OneGigabytePerSecond(Microseconds(1));
  cfg.netem.extra_delay = Milliseconds(24);  // the paper's 48 ms RTT
  SimplexChannel ch(sched, cfg);
  SimTime arrival = ch.Transmit(1000, [] {});
  EXPECT_EQ(arrival, Microseconds(2) + Milliseconds(24));
}

TEST(SimplexChannel, JitterVariesButPreservesOrder) {
  EventScheduler sched;
  ChannelConfig cfg = OneGigabytePerSecond(Microseconds(1));
  cfg.netem.jitter = Microseconds(10);
  SimplexChannel ch(sched, cfg, /*jitter_seed=*/3);
  std::vector<SimTime> arrivals;
  for (int i = 0; i < 50; ++i) {
    ch.Transmit(100, [&] { arrivals.push_back(sched.Now()); });
  }
  sched.Run();
  ASSERT_EQ(arrivals.size(), 50u);
  bool varied = false;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    // Reliable in-order transport: arrivals never go backwards.
    ASSERT_GE(arrivals[i], arrivals[i - 1]);
    SimDuration gap_a = arrivals[i] - arrivals[i - 1];
    varied |= gap_a != Nanoseconds(100);
  }
  EXPECT_TRUE(varied);
}

TEST(SimplexChannel, CountsTraffic) {
  EventScheduler sched;
  SimplexChannel ch(sched, OneGigabytePerSecond(0));
  ch.Transmit(100, [] {});
  ch.Transmit(200, [] {});
  sched.Run();
  EXPECT_EQ(ch.BytesCarried(), 300u);
  EXPECT_EQ(ch.MessagesCarried(), 2u);
}

TEST(Fabric, BuildsTwoNodesWithIndependentChannels) {
  Fabric fabric(HardwareProfile::FdrInfiniBand(), 1);
  EXPECT_EQ(fabric.node(0).name(), "node0");
  EXPECT_EQ(fabric.node(1).name(), "node1");
  EXPECT_NE(&fabric.channel_from(0), &fabric.channel_from(1));
  // FDR profile: 47 Gb/s effective.
  EXPECT_NEAR(fabric.profile().link_bandwidth.GigabitsPerSecondValue(), 47.0,
              1e-9);
}

TEST(Profiles, WanProfileCarriesDelay) {
  auto p = HardwareProfile::RoCE10GWithDelay(Milliseconds(24));
  EXPECT_EQ(p.netem.extra_delay, Milliseconds(24));
  EXPECT_NEAR(p.link_bandwidth.GigabitsPerSecondValue(), 9.4, 1e-9);
}

}  // namespace
}  // namespace exs::simnet
