// Hot-path batching at the verbs layer: bounded gather lists
// (SendWorkRequest::AddSge / kMaxSge), scatter-gather byte conservation,
// batched doorbells (QueuePair::PostSendBatch) with the amortised
// doorbell/per-WR cost model, batched completion draining
// (CompletionQueue::PollBatch), and the device-level MR registration
// cache (pin/unpin refcounts, LRU eviction, hit/miss accounting).
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"
#include "verbs/queue_pair.hpp"

namespace exs::verbs {
namespace {

class VerbsBatchingTest : public ::testing::Test {
 protected:
  VerbsBatchingTest()
      : fabric_(simnet::HardwareProfile::FdrInfiniBand(), 11),
        dev0_(fabric_, 0),
        dev1_(fabric_, 1),
        send_cq0_(dev0_.CreateCompletionQueue()),
        recv_cq0_(dev0_.CreateCompletionQueue()),
        send_cq1_(dev1_.CreateCompletionQueue()),
        recv_cq1_(dev1_.CreateCompletionQueue()),
        qp0_(dev0_, *send_cq0_, *recv_cq0_),
        qp1_(dev1_, *send_cq1_, *recv_cq1_) {
    QueuePair::ConnectPair(qp0_, qp1_);
  }

  static Sge MakeSge(const void* addr, std::uint32_t len, std::uint32_t key) {
    return Sge{reinterpret_cast<std::uint64_t>(addr), len, key};
  }

  simnet::Fabric fabric_;
  Device dev0_, dev1_;
  std::unique_ptr<CompletionQueue> send_cq0_, recv_cq0_, send_cq1_, recv_cq1_;
  QueuePair qp0_, qp1_;
};

// A three-element gather list delivers the concatenation of its slices;
// the QP's gather accounting ties SGE bytes to wire payload exactly.
TEST_F(VerbsBatchingTest, GatherListConcatenatesSlices) {
  std::vector<std::uint8_t> src(768), dst(768, 0);
  FillPattern(src.data(), src.size(), 0, 21);
  auto src_mr = dev0_.RegisterMemory(src.data(), src.size());
  auto dst_mr = dev1_.RegisterMemory(dst.data(), dst.size());

  qp1_.PostRecv({.wr_id = 1, .sge = MakeSge(dst.data(), 768, dst_mr->lkey())});
  SendWorkRequest wr;
  wr.wr_id = 2;
  wr.opcode = Opcode::kSend;
  wr.SetSgeList(MakeSge(src.data(), 256, src_mr->lkey()),
                MakeSge(src.data() + 256, 256, src_mr->lkey()),
                MakeSge(src.data() + 512, 256, src_mr->lkey()));
  EXPECT_EQ(wr.num_sge, 3u);
  EXPECT_EQ(wr.total_length(), 768u);
  qp0_.PostSend(wr);
  fabric_.scheduler().Run();

  WorkCompletion wc;
  ASSERT_TRUE(recv_cq1_->Poll(&wc));
  EXPECT_EQ(wc.byte_len, 768u);
  EXPECT_EQ(VerifyPattern(dst.data(), dst.size(), 0, 21), dst.size());

  const QueuePairStats& st = qp0_.stats();
  EXPECT_EQ(st.gather_wrs, 1u);
  EXPECT_EQ(st.sge_entries_posted, 3u);
  EXPECT_EQ(st.sge_bytes_posted, st.payload_bytes_sent);
}

// A zero-length middle element is legal padding (real HCAs accept it):
// it contributes no bytes and touches no memory, and the wire image is
// the concatenation of the non-empty slices.
TEST_F(VerbsBatchingTest, ZeroLengthMiddleSgeIsLegalPadding) {
  std::vector<std::uint8_t> src(512), dst(512, 0);
  FillPattern(src.data(), src.size(), 0, 33);
  auto src_mr = dev0_.RegisterMemory(src.data(), src.size());
  auto dst_mr = dev1_.RegisterMemory(dst.data(), dst.size());

  qp1_.PostRecv({.wr_id = 1, .sge = MakeSge(dst.data(), 512, dst_mr->lkey())});
  SendWorkRequest wr;
  wr.wr_id = 2;
  wr.opcode = Opcode::kSend;
  // The zero-length element deliberately names an unregistered address —
  // it must never be dereferenced or validated.
  wr.SetSgeList(MakeSge(src.data(), 256, src_mr->lkey()),
                Sge{0xdead0000, 0, 12345},
                MakeSge(src.data() + 256, 256, src_mr->lkey()));
  EXPECT_EQ(wr.total_length(), 512u);
  qp0_.PostSend(wr);
  fabric_.scheduler().Run();

  WorkCompletion wc;
  ASSERT_TRUE(recv_cq1_->Poll(&wc));
  EXPECT_EQ(wc.byte_len, 512u);
  EXPECT_EQ(VerifyPattern(dst.data(), dst.size(), 0, 33), dst.size());
  EXPECT_EQ(qp0_.stats().sge_entries_posted, 3u);
  EXPECT_EQ(qp0_.stats().sge_bytes_posted, qp0_.stats().payload_bytes_sent);
}

// The gather list is bounded: the kMaxSge-plus-first AddSge is refused as
// a local misuse, before the WR ever reaches a queue pair.
TEST_F(VerbsBatchingTest, AddSgeBeyondMaxIsRejected) {
  std::vector<std::uint8_t> buf(kMaxSge + 1);
  auto mr = dev0_.RegisterMemory(buf.data(), buf.size());
  SendWorkRequest wr;
  wr.sge = MakeSge(buf.data(), 1, mr->lkey());
  for (std::uint32_t i = 1; i < kMaxSge; ++i) {
    wr.AddSge(MakeSge(buf.data() + i, 1, mr->lkey()));
  }
  EXPECT_EQ(wr.num_sge, kMaxSge);
  EXPECT_THROW(wr.AddSge(MakeSge(buf.data() + kMaxSge, 1, mr->lkey())),
               std::invalid_argument);
}

// A gather list may span two independently registered regions — each
// element is validated against its own lkey.
TEST_F(VerbsBatchingTest, GatherListSpansTwoRegisteredRegions) {
  std::vector<std::uint8_t> a(256), b(256), dst(512, 0);
  FillPattern(a.data(), a.size(), 0, 9);
  FillPattern(b.data(), b.size(), 256, 9);  // continues a's pattern
  auto a_mr = dev0_.RegisterMemory(a.data(), a.size());
  auto b_mr = dev0_.RegisterMemory(b.data(), b.size());
  auto dst_mr = dev1_.RegisterMemory(dst.data(), dst.size());
  ASSERT_NE(a_mr->lkey(), b_mr->lkey());

  qp1_.PostRecv({.wr_id = 1, .sge = MakeSge(dst.data(), 512, dst_mr->lkey())});
  SendWorkRequest wr;
  wr.wr_id = 2;
  wr.opcode = Opcode::kSend;
  wr.SetSgeList(MakeSge(a.data(), 256, a_mr->lkey()),
                MakeSge(b.data(), 256, b_mr->lkey()));
  qp0_.PostSend(wr);
  fabric_.scheduler().Run();

  WorkCompletion wc;
  ASSERT_TRUE(recv_cq1_->Poll(&wc));
  EXPECT_EQ(wc.byte_len, 512u);
  EXPECT_EQ(VerifyPattern(dst.data(), dst.size(), 0, 9), dst.size());
}

// A slice whose lkey belongs to a different region than its address is
// rejected exactly like a fully unregistered single-SGE send.
TEST_F(VerbsBatchingTest, GatherElementOutsideItsRegionThrows) {
  std::vector<std::uint8_t> a(256), elsewhere(256);
  auto a_mr = dev0_.RegisterMemory(a.data(), a.size());
  SendWorkRequest wr;
  wr.opcode = Opcode::kSend;
  // Second element reuses a's lkey for memory a's region does not cover.
  wr.SetSgeList(MakeSge(a.data(), 256, a_mr->lkey()),
                MakeSge(elsewhere.data(), 256, a_mr->lkey()));
  EXPECT_THROW(qp0_.PostSend(wr), InvariantViolation);
}

// PostSendBatch rings one doorbell for N WRs: the batch pays
// doorbell_cost once plus per_wr_cost each, so it finishes posting sooner
// than N individually doorbelled sends of the same shape.  Both deliver
// identical bytes; PollBatch drains the completions in one call.
TEST_F(VerbsBatchingTest, BatchedPostAmortisesTheDoorbell) {
  constexpr std::size_t kN = 8;
  constexpr std::uint32_t kLen = 512;
  const auto& profile = dev0_.profile();
  ASSERT_GT(profile.doorbell_cost, SimDuration{0});
  ASSERT_GT(profile.per_wr_cost, SimDuration{0});

  std::vector<std::uint8_t> src(kN * kLen), dst(kN * kLen, 0);
  FillPattern(src.data(), src.size(), 0, 55);
  auto src_mr = dev0_.RegisterMemory(src.data(), src.size());
  auto dst_mr = dev1_.RegisterMemory(dst.data(), dst.size());

  std::vector<SendWorkRequest> wrs(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    qp1_.PostRecv({.wr_id = i,
                   .sge = MakeSge(dst.data() + i * kLen, kLen,
                                  dst_mr->lkey())});
    wrs[i].wr_id = 100 + i;
    wrs[i].opcode = Opcode::kSend;
    wrs[i].sge = MakeSge(src.data() + i * kLen, kLen, src_mr->lkey());
  }
  qp0_.PostSendBatch(wrs);
  fabric_.scheduler().Run();

  EXPECT_EQ(VerifyPattern(dst.data(), dst.size(), 0, 55), dst.size());
  const QueuePairStats& st = qp0_.stats();
  EXPECT_EQ(st.doorbells, 1u);
  EXPECT_EQ(st.batched_wrs, kN);
  EXPECT_EQ(st.sends_posted, kN);
  EXPECT_EQ(st.sge_bytes_posted, st.payload_bytes_sent);

  WorkCompletion wcs[kN];
  EXPECT_EQ(send_cq0_->PollBatch(wcs, kN), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(wcs[i].wr_id, 100 + i);  // batch order preserved
    EXPECT_EQ(wcs[i].status, WcStatus::kSuccess);
  }
  EXPECT_EQ(send_cq0_->PollBatch(wcs, kN), 0u);

  // The amortisation claim itself: the batch's posting CPU cost is
  // doorbell_cost + N * per_wr_cost, strictly less than what N lone
  // posts pay (N * send_wr_overhead under the FDR profile's decomposed
  // costs, where send_wr_overhead = doorbell_cost + per_wr_cost).
  SimDuration batch_cost = profile.doorbell_cost + kN * profile.per_wr_cost;
  SimDuration lone_cost = kN * (profile.doorbell_cost + profile.per_wr_cost);
  EXPECT_LT(batch_cost, lone_cost);
}

// With both decomposed costs zero, PostSendBatch degrades to exactly N
// single posts (send_wr_overhead each) — the off-switch for profiles that
// do not model doorbells, keeping timing bit-identical.
TEST_F(VerbsBatchingTest, BatchWithoutDoorbellModelMatchesSinglePosts) {
  simnet::HardwareProfile profile = simnet::HardwareProfile::FdrInfiniBand();
  profile.doorbell_cost = SimDuration{0};
  profile.per_wr_cost = SimDuration{0};

  constexpr std::size_t kN = 4;
  std::vector<std::uint8_t> src(kN * 128);
  FillPattern(src.data(), src.size(), 0, 2);

  auto run = [&](bool batch) {
    simnet::Fabric fab(profile, 3);
    Device sdev(fab, 0), rdev(fab, 1);
    auto scq = sdev.CreateCompletionQueue();
    auto srcq = sdev.CreateCompletionQueue();
    auto rcq = rdev.CreateCompletionQueue();
    auto rrcq = rdev.CreateCompletionQueue();
    QueuePair sqp(sdev, *scq, *srcq), rqp(rdev, *rcq, *rrcq);
    QueuePair::ConnectPair(sqp, rqp);

    std::vector<std::uint8_t> dst(kN * 128, 0);
    auto smr = sdev.RegisterMemory(src.data(), src.size());
    auto rmr = rdev.RegisterMemory(dst.data(), dst.size());
    std::vector<SendWorkRequest> wrs(kN);
    for (std::size_t i = 0; i < kN; ++i) {
      rqp.PostRecv({.wr_id = i,
                    .sge = MakeSge(dst.data() + i * 128, 128, rmr->lkey())});
      wrs[i].wr_id = i;
      wrs[i].opcode = Opcode::kSend;
      wrs[i].sge = MakeSge(src.data() + i * 128, 128, smr->lkey());
    }
    if (batch) {
      sqp.PostSendBatch(wrs);
      EXPECT_EQ(sqp.stats().doorbells, 1u);  // counted even when costless
    } else {
      for (const auto& wr : wrs) sqp.PostSend(wr);
    }
    fab.scheduler().Run();
    EXPECT_EQ(VerifyPattern(dst.data(), dst.size(), 0, 2), dst.size());
    return fab.scheduler().Now();
  };
  EXPECT_EQ(run(/*batch=*/true), run(/*batch=*/false));
}

// MR cache: the second pin of the same (addr, length) is a hit and does
// not re-register; distinct lengths are distinct entries; unpinned
// entries are evicted LRU-first once capacity is exceeded, while pinned
// entries survive any pressure.
TEST_F(VerbsBatchingTest, MrCachePinsHitsAndEvictsLru) {
  dev0_.EnableMrCache(2);
  std::vector<std::uint8_t> a(256), b(256), c(256);

  auto a_pin = dev0_.RegisterMemoryCached(a.data(), a.size());
  EXPECT_EQ(dev0_.mr_cache_stats().registrations, 1u);
  EXPECT_EQ(dev0_.mr_cache_stats().cache_hits, 0u);

  // Same buffer, same length: a hit, same region, no new registration.
  auto a_pin2 = dev0_.RegisterMemoryCached(a.data(), a.size());
  EXPECT_EQ(a_pin2.get(), a_pin.get());
  EXPECT_EQ(dev0_.mr_cache_stats().registrations, 1u);
  EXPECT_EQ(dev0_.mr_cache_stats().cache_hits, 1u);

  // Same buffer, different length: a different cache key.
  auto a_half = dev0_.RegisterMemoryCached(a.data(), a.size() / 2);
  EXPECT_NE(a_half.get(), a_pin.get());
  EXPECT_EQ(dev0_.mr_cache_stats().registrations, 2u);

  // Release all pins on `a` full-length, fill the cache past capacity:
  // the LRU unpinned entry goes, the still-pinned half-length stays hot.
  dev0_.UnpinCached(a_pin);
  dev0_.UnpinCached(a_pin2);
  auto b_pin = dev0_.RegisterMemoryCached(b.data(), b.size());
  dev0_.UnpinCached(b_pin);
  auto c_pin = dev0_.RegisterMemoryCached(c.data(), c.size());
  dev0_.UnpinCached(c_pin);
  EXPECT_GE(dev0_.mr_cache_stats().evictions, 1u);

  // The evicted full-length `a` re-registers; the pinned-then-unpinned
  // half entry may still be warm.
  dev0_.UnpinCached(a_half);
  std::uint64_t regs_before = dev0_.mr_cache_stats().registrations;
  auto a_again = dev0_.RegisterMemoryCached(a.data(), a.size());
  EXPECT_EQ(dev0_.mr_cache_stats().registrations, regs_before + 1);
  dev0_.UnpinCached(a_again);
}

// Batched dispatch (SetDispatchBatch) clumps handler delivery: one wake-up
// drains up to max_n completions in a single CPU pass, so their handlers
// all observe the same simulated instant — the precondition for doorbell-
// batching the posts they trigger.  Charges stay per-completion: a pass
// over k completions costs k * per_event_cpu, and the second pass pays no
// fresh notification latency (the thread is already awake).
TEST_F(VerbsBatchingTest, DispatchBatchClumpsHandlersAtOneInstant) {
  simnet::Cpu cpu(fabric_.scheduler());  // fresh core: no seeded jitter
  CompletionQueue cq(fabric_.scheduler(), cpu, Microseconds(1),
                     Nanoseconds(100));
  cq.SetDispatchBatch(4);
  std::vector<std::pair<SimTime, std::uint64_t>> seen;
  cq.SetHandler([&](const WorkCompletion& wc) {
    seen.emplace_back(fabric_.scheduler().Now(), wc.wr_id);
  });
  for (std::uint64_t i = 0; i < 6; ++i) {
    WorkCompletion wc;
    wc.wr_id = i;
    cq.Push(wc);
  }
  fabric_.scheduler().Run();

  ASSERT_EQ(seen.size(), 6u);
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(seen[i].second, i);
  // First pass: four completions at one instant, one notification plus a
  // four-event CPU charge.
  const SimTime first = Microseconds(1) + 4 * Nanoseconds(100);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(seen[i].first, first);
  // Second pass: the remaining two, 200 ns of CPU later.
  const SimTime second = first + 2 * Nanoseconds(100);
  for (int i = 4; i < 6; ++i) EXPECT_EQ(seen[i].first, second);
  EXPECT_EQ(cpu.BusyTime(), 6 * Nanoseconds(100));
}

}  // namespace
}  // namespace exs::verbs
