// Causal chunk tracing (common/spans.hpp): the collector stamps every
// stage in order, stage durations sum to the end-to-end latency (and
// CheckSpanConservation proves it can catch records where they don't),
// sampling is a pure function of the seed, attaching the collector leaves
// golden fingerprints bit-identical, and the timeline export links tx to
// rx with Perfetto flow events.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/spans.hpp"
#include "exs/exs.hpp"
#include "exs/invariant_checker.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;
using spans::ChunkRecord;
using spans::SpanCollector;
using spans::Stage;

// ---------------------------------------------------------------------------
// Collector unit behaviour.
// ---------------------------------------------------------------------------

TEST(SpanCollector, StampsEveryStageAndConservesByConstruction) {
  SpanCollector collector(/*seed=*/1);
  const std::uint64_t tx = collector.RegisterEndpoint("client.tx");
  const std::uint64_t rx = collector.RegisterEndpoint("server.rx");

  const std::uint64_t id = collector.BeginChunk(
      tx, /*submit=*/100, /*flush=*/140, /*post=*/200, /*len=*/4096,
      /*indirect=*/true, /*coalesced=*/true, /*rail=*/0);
  ASSERT_NE(id, 0u);
  collector.NoteTxComplete(id, 950);
  collector.NoteArrive(id, 1000, rx, 0);
  collector.NoteProcess(id, 1100);
  collector.NoteRingCopyStart(id, 1500);
  collector.NoteCopied(id, 1900);
  collector.NoteDeliver(id, 2000);

  const ChunkRecord* r = collector.Find(id);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->delivered());
  EXPECT_EQ(r->StageDuration(Stage::kTxStaging), 40);
  EXPECT_EQ(r->StageDuration(Stage::kTxQueue), 60);
  EXPECT_EQ(r->StageDuration(Stage::kWire), 800);
  EXPECT_EQ(r->StageDuration(Stage::kRxReorder), 100);
  EXPECT_EQ(r->StageDuration(Stage::kRxRing), 400);
  EXPECT_EQ(r->StageDuration(Stage::kRxCopy), 400);
  EXPECT_EQ(r->StageDuration(Stage::kRxDeliver), 100);
  EXPECT_EQ(r->EndToEnd(), 1900);

  SimDuration sum = 0;
  for (std::size_t s = 0; s < spans::kStageCount; ++s) {
    sum += r->StageDuration(static_cast<Stage>(s));
  }
  EXPECT_EQ(sum, r->EndToEnd());
  // t_tx_complete is the completion-fallacy comparator, not a stage.
  EXPECT_EQ(r->t_tx_complete, 950);

  EXPECT_TRUE(CheckSpanConservation(collector).ok());
}

TEST(SpanCollector, UnsampledIdZeroIsANoOpEverywhere) {
  SpanCollector collector(/*seed=*/1);
  collector.NoteArrive(0, 10, 1, 0);
  collector.NoteProcess(0, 20);
  collector.NoteDeliver(0, 30);
  EXPECT_EQ(collector.Find(0), nullptr);
  EXPECT_TRUE(collector.chunks().empty());
  EXPECT_TRUE(CheckSpanConservation(collector).ok());
}

TEST(SpanCollector, SamplingIsDeterministicPerSeed) {
  auto sampled_ordinals = [](std::uint64_t seed) {
    SpanCollector c(seed, /*sample_period=*/8);
    const std::uint64_t ep = c.RegisterEndpoint("tx");
    std::set<std::uint64_t> kept;
    for (std::uint64_t i = 0; i < 512; ++i) {
      if (c.BeginChunk(ep, 0, 0, 0, 64, false, false, 0) != 0) kept.insert(i);
    }
    EXPECT_EQ(c.chunks_seen(), 512u);
    return kept;
  };
  const auto a = sampled_ordinals(42);
  const auto b = sampled_ordinals(42);
  EXPECT_EQ(a, b);  // same seed → the same chunks, every run
  EXPECT_FALSE(a.empty());
  EXPECT_LT(a.size(), 512u);  // period 8 really thins the stream
  EXPECT_NE(a, sampled_ordinals(43));
}

// ---------------------------------------------------------------------------
// Conservation: clean end-to-end runs pass, tampered records are caught.
// ---------------------------------------------------------------------------

/// Mixed direct/indirect workload with spans attached; returns the sim so
/// callers can inspect the collector or the timeline.
void RunTracedWorkload(Simulation& sim, std::uint32_t rails = 1) {
  StreamOptions opts;
  opts.rails = rails;
  opts.intermediate_buffer_bytes = 64 * kKiB;
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();

  std::vector<std::uint8_t> out(96 * kKiB), in(96 * kKiB);
  // Small sends land indirect, the large tail goes direct once ADVERTs
  // catch up — both provenance paths get exercised.
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  std::uint64_t off = 0;
  for (std::uint64_t len : {2 * kKiB, 6 * kKiB, 24 * kKiB, 64 * kKiB}) {
    client->Send(out.data() + off, len);
    off += len;
  }
  client->Close();
  sim.Run();
}

TEST(SpanConservation, CleanRunPassesWithEveryChunkDelivered) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 9, false);
  SpanCollector& collector = sim.EnableChunkSpans();
  RunTracedWorkload(sim);

  ASSERT_FALSE(collector.chunks().empty());
  for (const ChunkRecord& r : collector.chunks()) {
    EXPECT_TRUE(r.delivered()) << "chunk " << r.id << " never delivered";
  }
  InvariantReport report = CheckSpanConservation(collector);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_TRUE(report.warnings.empty()) << report.Summary();
  EXPECT_EQ(report.events_checked, collector.chunks().size());

  spans::LatencyReport latency = collector.BuildReport();
  EXPECT_EQ(latency.chunks_delivered, collector.chunks().size());
  EXPECT_EQ(latency.end_to_end.count, latency.chunks_delivered);
}

TEST(SpanConservation, StripedRunPassesAndGroupsHolByRail) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 9, false);
  SpanCollector& collector = sim.EnableChunkSpans();
  RunTracedWorkload(sim, /*rails=*/2);

  InvariantReport report = CheckSpanConservation(collector);
  EXPECT_TRUE(report.ok()) << report.Summary();
  bool multi_rail = false;
  for (const ChunkRecord& r : collector.chunks()) {
    if (r.rx_rail > 0) multi_rail = true;
  }
  EXPECT_TRUE(multi_rail) << "striped run never used rail 1";
  EXPECT_GE(collector.BuildReport().reorder_by_rail.size(), 2u);
}

TEST(SpanConservation, CatchesMissingAndNonMonotonicStamps) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 9, false);
  SpanCollector& collector = sim.EnableChunkSpans();
  RunTracedWorkload(sim);
  ASSERT_TRUE(CheckSpanConservation(collector).ok());

  ChunkRecord* victim = collector.Find(collector.chunks().front().id);
  ASSERT_NE(victim, nullptr);

  // A skipped instrumentation site: one boundary never stamped.
  const SimTime saved = victim->t_ring_end;
  victim->t_ring_end = spans::kNoTime;
  EXPECT_FALSE(CheckSpanConservation(collector).ok());
  victim->t_ring_end = saved;
  ASSERT_TRUE(CheckSpanConservation(collector).ok());

  // An out-of-order stamp: processing "before" arrival.
  victim->t_process = victim->t_arrive - 1;
  EXPECT_FALSE(CheckSpanConservation(collector).ok());
}

TEST(SpanConservation, UndeliveredChunksWarnButDoNotFail) {
  SpanCollector collector(/*seed=*/1);
  const std::uint64_t ep = collector.RegisterEndpoint("tx");
  ASSERT_NE(collector.BeginChunk(ep, 0, 0, 10, 64, false, false, 0), 0u);
  InvariantReport report = CheckSpanConservation(collector);
  EXPECT_TRUE(report.ok());
  ASSERT_FALSE(report.warnings.empty());
  EXPECT_NE(report.warnings.front().find("never delivered"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Zero-perturbation: enabling spans cannot change what the protocol did.
// ---------------------------------------------------------------------------

TEST(SpanSampling, FingerprintsAreBitIdenticalWithSpansEnabled) {
  auto run = [](bool with_spans) {
    auto sim = std::make_unique<Simulation>(HardwareProfile::FdrInfiniBand(),
                                            17, false);
    if (with_spans) sim->EnableChunkSpans();
    StreamOptions opts;
    opts.intermediate_buffer_bytes = 64 * kKiB;
    auto [client, server] =
        sim->CreateConnectedPair(SocketType::kStream, opts);
    client->EnableTracing();
    server->EnableTracing();
    std::vector<std::uint8_t> out(48 * kKiB), in(48 * kKiB);
    server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
    for (std::uint64_t off = 0; off < out.size(); off += 8 * kKiB) {
      client->Send(out.data() + off, 8 * kKiB);
    }
    client->Close();
    sim->Run();
    return std::pair<std::uint64_t, std::string>(
        ConnectionFingerprint(*client, *server), sim->MetricsJson());
  };
  const auto off = run(false);
  const auto on = run(true);
  EXPECT_EQ(off.first, on.first);    // trace fingerprints: same protocol run
  EXPECT_EQ(off.second, on.second);  // metrics snapshot: same numbers
}

TEST(SpanReport, RendersBitIdenticallyAcrossRuns) {
  auto render = [] {
    Simulation sim(HardwareProfile::FdrInfiniBand(), 23, false);
    SpanCollector& collector = sim.EnableChunkSpans();
    RunTracedWorkload(sim);
    spans::LatencyReport report = collector.BuildReport();
    return report.ToText() + report.ToJson();
  };
  EXPECT_EQ(render(), render());
}

// ---------------------------------------------------------------------------
// Timeline: chunk slices and tx→rx flow events.
// ---------------------------------------------------------------------------

TEST(SpanTimeline, FlowEventsLinkTxToRx) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 9, false);
  sim.EnableChunkSpans();
  RunTracedWorkload(sim);

  json::Value root;
  std::string error;
  ASSERT_TRUE(json::Parse(sim.TimelineJson(), &root, &error)) << error;
  std::set<double> starts, finishes;
  std::size_t slices = 0;
  for (const json::Value& ev : root.Find("traceEvents")->array_items) {
    const std::string& ph = ev.Find("ph")->string_value;
    if (ph == "X") {
      ++slices;
      EXPECT_GE(ev.Find("dur")->number_value, 0.0);
    } else if (ph == "s") {
      starts.insert(ev.Find("id")->number_value);
    } else if (ph == "f") {
      finishes.insert(ev.Find("id")->number_value);
    }
  }
  EXPECT_GT(slices, 0u);
  EXPECT_FALSE(starts.empty());
  // Every flow arrow that starts on a tx track lands on an rx track.
  EXPECT_EQ(starts, finishes);
}

TEST(SpanTimeline, NoChunkEventsWithoutSpans) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 9, false);
  RunTracedWorkload(sim);
  json::Value root;
  std::string error;
  ASSERT_TRUE(json::Parse(sim.TimelineJson(), &root, &error)) << error;
  for (const json::Value& ev : root.Find("traceEvents")->array_items) {
    const std::string& ph = ev.Find("ph")->string_value;
    EXPECT_NE(ph, "X");
    EXPECT_NE(ph, "s");
    EXPECT_NE(ph, "f");
  }
}

}  // namespace
}  // namespace exs
