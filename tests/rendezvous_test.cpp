// The READ-rendezvous comparison engine: correctness of the pull protocol
// and the timing trade that explains why the paper's solution is
// sender-driven ("RDMA READ ... is not used in our solution", §II-B).
#include <gtest/gtest.h>

#include <vector>

#include "common/pattern.hpp"
#include "common/rng.hpp"
#include "exs/exs.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

StreamOptions Rendezvous() {
  StreamOptions opts;
  opts.mode = ProtocolMode::kReadRendezvous;
  return opts;
}

class RendezvousTest : public ::testing::Test {
 protected:
  Simulation sim_{HardwareProfile::FdrInfiniBand(), /*seed=*/23,
                  /*carry_payload=*/true};
};

TEST_F(RendezvousTest, SingleTransferDelivers) {
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, Rendezvous());
  std::vector<std::uint8_t> out(16 * 1024), in(16 * 1024);
  FillPattern(out.data(), out.size(), 0, 1);

  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  client->Send(out.data(), out.size());
  sim_.Run();

  EXPECT_EQ(server->stats().bytes_received, out.size());
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 1), in.size());
  EXPECT_EQ(client->stats().sends_completed, 1u);
  // The receiver pulled: its socket counts the READ as the zero-copy
  // transfer.
  EXPECT_GE(server->stats().direct_transfers, 1u);
  EXPECT_TRUE(client->Quiescent());
  EXPECT_TRUE(server->Quiescent());
}

TEST_F(RendezvousTest, SenderNeverWaitsForReceives) {
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, Rendezvous());
  std::vector<std::uint8_t> out(64 * 1024), in(64 * 1024);
  FillPattern(out.data(), out.size(), 0, 2);

  // Sends issued with nothing posted: source adverts depart immediately.
  client->Send(out.data(), 32 * 1024);
  client->Send(out.data() + 32 * 1024, 32 * 1024);
  sim_.RunFor(Microseconds(100));
  EXPECT_EQ(client->stats().adverts_sent, 2u);
  EXPECT_EQ(client->stats().sends_completed, 0u);  // nobody pulled yet

  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();
  EXPECT_EQ(client->stats().sends_completed, 2u);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 2), in.size());
}

TEST_F(RendezvousTest, StreamSplitsAcrossRecvBoundaries) {
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, Rendezvous());
  constexpr std::uint64_t kTotal = 96 * 1024;
  std::vector<std::uint8_t> out(kTotal), in(kTotal);
  FillPattern(out.data(), out.size(), 0, 3);

  // One big send, three waitall receives; and three small sends into one
  // big plain receive afterwards.
  for (int i = 0; i < 3; ++i) {
    server->Recv(in.data() + i * 16 * 1024, 16 * 1024,
                 RecvFlags{.waitall = true});
  }
  client->Send(out.data(), 48 * 1024);
  sim_.Run();
  EXPECT_EQ(server->stats().recvs_completed, 3u);

  for (int i = 0; i < 3; ++i) {
    client->Send(out.data() + 48 * 1024 + i * 16 * 1024, 16 * 1024);
  }
  sim_.RunFor(Microseconds(200));
  server->Recv(in.data() + 48 * 1024, 48 * 1024, RecvFlags{.waitall = true});
  sim_.Run();

  EXPECT_EQ(server->stats().bytes_received, kTotal);
  EXPECT_EQ(VerifyPattern(in.data(), kTotal, 0, 3), kTotal);
}

TEST_F(RendezvousTest, PlainRecvCompletesShortWhenSourcesDry) {
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, Rendezvous());
  std::vector<std::uint8_t> out(4 * 1024), in(64 * 1024);
  FillPattern(out.data(), out.size(), 0, 4);

  std::vector<Event> events;
  server->events().SetHandler([&](const Event& ev) { events.push_back(ev); });
  server->Recv(in.data(), in.size());  // plain, much larger than the data
  client->Send(out.data(), out.size());
  sim_.Run();

  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].bytes, 4096u);
  EXPECT_EQ(VerifyPattern(in.data(), 4096, 0, 4), 4096u);
}

TEST_F(RendezvousTest, RandomizedIntegrity) {
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, Rendezvous());
  Rng rng(77);
  constexpr std::uint64_t kTotal = 256 * 1024;
  std::vector<std::uint8_t> out(kTotal), in(kTotal);
  FillPattern(out.data(), out.size(), 0, 5);

  std::uint64_t sent = 0, posted = 0;
  while (sent < kTotal || posted < kTotal) {
    if (sent < kTotal && rng.NextBool()) {
      std::uint64_t n = std::min<std::uint64_t>(
          rng.NextInRange(1, 24 * 1024), kTotal - sent);
      client->Send(out.data() + sent, n);
      sent += n;
    }
    if (posted < kTotal && rng.NextBool()) {
      std::uint64_t n = std::min<std::uint64_t>(
          rng.NextInRange(1, 24 * 1024), kTotal - posted);
      server->Recv(in.data() + posted, n, RecvFlags{.waitall = true});
      posted += n;
    }
    sim_.RunFor(static_cast<SimDuration>(
        rng.NextInRange(0, static_cast<std::uint64_t>(Microseconds(30)))));
  }
  sim_.Run();

  EXPECT_EQ(server->stats().bytes_received, kTotal);
  EXPECT_EQ(VerifyPattern(in.data(), kTotal, 0, 5), kTotal);
  EXPECT_TRUE(client->Quiescent());
  EXPECT_TRUE(server->Quiescent());
}

TEST_F(RendezvousTest, CloseDeliversEofAfterAllPulls) {
  auto [client, server] =
      sim_.CreateConnectedPair(SocketType::kStream, Rendezvous());
  std::vector<std::uint8_t> out(32 * 1024), in(32 * 1024);
  FillPattern(out.data(), out.size(), 0, 6);

  std::vector<Event> events;
  server->events().SetHandler([&](const Event& ev) { events.push_back(ev); });
  client->Send(out.data(), out.size());
  client->Close();
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();

  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].bytes, out.size());
  EXPECT_EQ(events[1].type, EventType::kPeerClosed);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 6), in.size());
  EXPECT_THROW(client->Send(out.data(), 1), InvariantViolation);
}

TEST_F(RendezvousTest, DeliveryCostsAdvertPlusReadRoundTrip) {
  // The structural latency disadvantage: over a long RTT, data reaches
  // the receiver no earlier than SRC-ADVERT (one way) + READ round trip
  // = 1.5x RTT after the send — versus 0.5x RTT for a sender-driven WRITE
  // when a receive is already posted.
  StreamOptions opts = Rendezvous();
  Simulation sim(HardwareProfile::RoCE10GWithDelay(Milliseconds(24)), 3,
                 true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream, opts);
  std::vector<std::uint8_t> out(4096), in(4096);

  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  SimTime sent_at = sim.Now();
  client->Send(out.data(), out.size());
  SimTime done_at = 0;
  server->events().SetHandler(
      [&](const Event&) { done_at = sim.Now(); });
  sim.Run();
  EXPECT_GE(done_at - sent_at, Milliseconds(24 * 3));       // 1.5 RTT
  EXPECT_LT(done_at - sent_at, Milliseconds(24 * 3 + 10));  // and not more

  // Contrast: the dynamic protocol with a posted receive delivers in ~0.5
  // RTT once its ADVERT is at the sender.
  Simulation sim2(HardwareProfile::RoCE10GWithDelay(Milliseconds(24)), 4,
                  true);
  auto [c2, s2] = sim2.CreateConnectedPair(SocketType::kStream);
  s2->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim2.RunFor(Milliseconds(30));  // let the ADVERT cross
  SimTime t0 = sim2.Now();
  c2->Send(out.data(), out.size());
  SimTime t1 = 0;
  s2->events().SetHandler([&](const Event&) { t1 = sim2.Now(); });
  sim2.Run();
  EXPECT_LT(t1 - t0, Milliseconds(26));  // ~one way
}

}  // namespace
}  // namespace exs
