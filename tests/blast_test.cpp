// The blast measurement tool: data integrity under load, plausibility of
// the reported metrics, and the qualitative protocol behaviours the
// paper's evaluation rests on.
#include <gtest/gtest.h>

#include "blast/blast.hpp"

namespace exs::blast {
namespace {

BlastConfig SmallConfig() {
  BlastConfig c;
  c.message_count = 60;
  c.exponential_mean_bytes = 64.0 * 1024;
  c.max_message_bytes = 1 * kMiB;
  c.recv_buffer_bytes = 1 * kMiB;
  c.outstanding_sends = 4;
  c.outstanding_recvs = 8;
  c.carry_payload = true;
  c.verify_data = true;
  return c;
}

TEST(BlastTest, DeliversAndVerifiesEveryByte) {
  BlastResult r = RunBlast(SmallConfig());
  EXPECT_TRUE(r.data_verified);
  EXPECT_GT(r.bytes_transferred, 0u);
  EXPECT_EQ(r.messages_sent, 60u);
  EXPECT_GT(r.throughput_mbps, 0.0);
  EXPECT_GT(r.elapsed_seconds, 0.0);
  EXPECT_GT(r.receiver_cpu_percent, 0.0);
  EXPECT_LE(r.receiver_cpu_percent, 100.5);
}

TEST(BlastTest, FixedSizeMessagesAreExact) {
  BlastConfig c = SmallConfig();
  c.fixed_message_bytes = 128 * 1024;
  c.message_count = 40;
  BlastResult r = RunBlast(c);
  EXPECT_EQ(r.bytes_transferred, 40u * 128 * 1024);
}

TEST(BlastTest, DeterministicForSeed) {
  BlastConfig c = SmallConfig();
  c.verify_data = false;
  c.carry_payload = false;
  BlastResult a = RunBlast(c);
  BlastResult b = RunBlast(c);
  EXPECT_EQ(a.throughput_mbps, b.throughput_mbps);
  EXPECT_EQ(a.direct_transfers, b.direct_transfers);
  EXPECT_EQ(a.mode_switches, b.mode_switches);
}

TEST(BlastTest, CarryPayloadDoesNotChangeTiming) {
  // The timing model must be independent of whether real bytes move.
  BlastConfig c = SmallConfig();
  c.verify_data = false;
  BlastConfig no_payload = c;
  no_payload.carry_payload = false;
  BlastResult with_bytes = RunBlast(c);
  BlastResult without_bytes = RunBlast(no_payload);
  EXPECT_DOUBLE_EQ(with_bytes.throughput_mbps, without_bytes.throughput_mbps);
  EXPECT_EQ(with_bytes.direct_transfers, without_bytes.direct_transfers);
}

TEST(BlastTest, DirectOnlyBeatsIndirectOnlyOnFdr) {
  // The paper's headline LAN result: with copies slower than the wire,
  // direct-only throughput is well above indirect-only (Fig. 9).
  BlastConfig c;
  c.message_count = 150;
  c.outstanding_sends = 8;
  c.outstanding_recvs = 8;
  c.carry_payload = false;
  c.stream.mode = ProtocolMode::kDirectOnly;
  BlastResult direct = RunBlast(c);
  c.stream.mode = ProtocolMode::kIndirectOnly;
  BlastResult indirect = RunBlast(c);

  EXPECT_GT(direct.throughput_mbps, indirect.throughput_mbps);
  EXPECT_EQ(direct.indirect_transfers, 0u);
  EXPECT_EQ(indirect.direct_transfers, 0u);
  // And the CPU story (Fig. 10): buffering burns receiver CPU.
  EXPECT_GT(indirect.receiver_cpu_percent,
            direct.receiver_cpu_percent * 2.0);
}

TEST(BlastTest, EqualOutstandingCollapsesToIndirect) {
  // Fig. 9a / Table III: with equal outstanding operations the dynamic
  // protocol falls to indirect service almost immediately (about one mode
  // switch, tiny direct ratio).
  BlastConfig c;
  c.message_count = 200;
  c.outstanding_sends = 8;
  c.outstanding_recvs = 8;
  c.carry_payload = false;
  BlastResult r = RunBlast(c);
  EXPECT_LE(r.direct_ratio, 0.25);
  EXPECT_GE(r.indirect_transfers, 1u);
}

TEST(BlastTest, DoubleOutstandingRecvsStayDirect) {
  // Fig. 9b: with twice as many outstanding receives, ADVERTs always
  // arrive in time and the dynamic protocol stays fully direct.
  BlastConfig c;
  c.message_count = 200;
  c.outstanding_sends = 8;
  c.outstanding_recvs = 16;
  c.carry_payload = false;
  BlastResult r = RunBlast(c);
  EXPECT_GE(r.direct_ratio, 0.9);
}

TEST(BlastTest, RepeatedRunsAggregate) {
  BlastConfig c = SmallConfig();
  c.verify_data = false;
  c.carry_payload = false;
  c.message_count = 40;
  BlastSummary s = RunRepeated(c, 5);
  ASSERT_EQ(s.runs.size(), 5u);
  EXPECT_GT(s.throughput_mbps.mean, 0.0);
  EXPECT_GE(s.throughput_mbps.ci95, 0.0);
  EXPECT_GE(s.throughput_mbps.max, s.throughput_mbps.min);
  // Different seeds -> different workloads -> some variance.
  EXPECT_GT(s.throughput_mbps.max, s.throughput_mbps.min);
}

TEST(BlastTest, SeqPacketBlastWorks) {
  BlastConfig c = SmallConfig();
  c.socket_type = SocketType::kSeqPacket;
  c.message_count = 50;
  BlastResult r = RunBlast(c);
  EXPECT_TRUE(r.data_verified);
  EXPECT_EQ(r.direct_transfers, 50u);  // one WWI per message
  EXPECT_EQ(r.indirect_transfers, 0u);
}

TEST(BlastTest, WanProfileRuns) {
  BlastConfig c;
  c.profile = simnet::HardwareProfile::RoCE10GWithDelay(Milliseconds(24));
  c.message_count = 30;
  c.outstanding_sends = 4;
  c.outstanding_recvs = 4;
  c.carry_payload = false;
  BlastResult r = RunBlast(c);
  EXPECT_GT(r.throughput_mbps, 0.0);
  // 48 ms RTT: the run cannot possibly finish in under one RTT.
  EXPECT_GT(r.elapsed_seconds, 0.048);
}

}  // namespace
}  // namespace exs::blast
