// Reconstructions of the paper's protocol diagrams (Figs. 1, 6, 7, 8):
// the interleavings where naive ADVERT matching would put a direct
// transfer into the wrong memory, and the phase/sequence rules that
// prevent it.  The StreamRx arrival path asserts the safety property
// internally (direct transfers must match the head receive with an empty
// buffer), so these tests fail loudly if the rules are ever weakened.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"
#include "exs/invariant_checker.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

class ScenarioTest : public ::testing::Test {
 protected:
  /// Every scenario runs traced, and the trace is replayed through the
  /// invariant checker when the test ends: the diagrams reconstructed here
  /// are exactly the interleavings the checker's rules come from.
  std::pair<Socket*, Socket*> MakePair() {
    auto pair = sim_.CreateConnectedPair(SocketType::kStream);
    pair.first->EnableTracing();
    pair.second->EnableTracing();
    traced_ = pair;
    return pair;
  }

  void TearDown() override {
    if (traced_.first != nullptr) {
      InvariantReport report =
          CheckConnection(*traced_.first, *traced_.second);
      EXPECT_TRUE(report.ok()) << report.Summary();
    }
  }

  Simulation sim_{HardwareProfile::FdrInfiniBand(), /*seed=*/3,
                  /*carry_payload=*/true};
  std::pair<Socket*, Socket*> traced_{nullptr, nullptr};
};

// Fig. 1: an indirect transfer crosses with multiple ADVERTs flowing the
// other way.  The crossed ADVERTs are stale; when the sender next matches
// a send request they must all be discarded (not matched), and the data is
// served from the intermediate buffer instead.
TEST_F(ScenarioTest, Fig1_IndirectTransferCrossesAdverts) {
  auto [client, server] = MakePair();
  constexpr std::uint64_t kLen = 4 * 1024;
  std::vector<std::uint8_t> out(4 * kLen), in(4 * kLen);
  FillPattern(out.data(), out.size(), 0, 61);

  // Same instant: three receives (ADVERTs depart) and one send that covers
  // all of them (finds no ADVERT yet -> indirect).
  server->Recv(in.data() + 0 * kLen, kLen, RecvFlags{.waitall = true});
  server->Recv(in.data() + 1 * kLen, kLen, RecvFlags{.waitall = true});
  server->Recv(in.data() + 2 * kLen, kLen, RecvFlags{.waitall = true});
  client->Send(out.data(), 3 * kLen);
  sim_.Run();

  EXPECT_EQ(client->stats().indirect_transfers, 1u);
  EXPECT_EQ(client->stats().direct_transfers, 0u);
  EXPECT_EQ(client->stats().adverts_received, 3u);
  EXPECT_EQ(server->stats().recvs_completed, 3u);

  // After the buffer drains completely, a new receive resynchronises.  The
  // next send first discards the three crossed (stale) ADVERTs, then
  // matches the fresh one and the connection returns to direct transfers.
  server->Recv(in.data() + 3 * kLen, kLen, RecvFlags{.waitall = true});
  sim_.RunFor(Microseconds(20));
  client->Send(out.data() + 3 * kLen, kLen);
  sim_.Run();

  EXPECT_EQ(client->stats().adverts_discarded, 3u);
  EXPECT_EQ(client->stats().direct_transfers, 1u);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 61), in.size());
}

// Fig. 7 (the fix for Fig. 6): after an indirect transfer, the receiver
// must hold off new ADVERTs until every receive from the previous phase
// has been satisfied — otherwise ADVERT sequence numbers would be stale
// estimates and could be matched incorrectly.
TEST_F(ScenarioTest, Fig7_AdvertsHeldUntilPriorPhaseSatisfied) {
  auto [client, server] = MakePair();
  constexpr std::uint64_t kLen = 8 * 1024;
  std::vector<std::uint8_t> out(6 * kLen), in(6 * kLen);
  FillPattern(out.data(), out.size(), 0, 62);

  // Two receives whose ADVERTs will cross with an indirect transfer.
  server->Recv(in.data() + 0 * kLen, kLen, RecvFlags{.waitall = true});
  server->Recv(in.data() + 1 * kLen, kLen, RecvFlags{.waitall = true});
  // The send covers only half of the posted receives.
  client->Send(out.data(), kLen);
  sim_.RunFor(Microseconds(100));

  std::uint64_t adverts_before = server->stats().adverts_sent;
  EXPECT_EQ(adverts_before, 2u);
  EXPECT_EQ(server->stats().recvs_completed, 1u);  // first recv satisfied

  // Receive #2 is still pending from the previous phase (its ADVERT was
  // crossed).  New receives must NOT be advertised yet (Fig. 3's gate).
  server->Recv(in.data() + 2 * kLen, kLen, RecvFlags{.waitall = true});
  sim_.RunFor(Milliseconds(1));
  EXPECT_EQ(server->stats().adverts_sent, adverts_before)
      << "gate violated: ADVERT sent while a prior-phase receive is pending";

  // The sender's next data satisfies receives #2 and #3 indirectly.
  client->Send(out.data() + kLen, 2 * kLen);
  sim_.RunFor(Milliseconds(2));
  EXPECT_EQ(server->stats().recvs_completed, 3u);
  EXPECT_EQ(server->stats().adverts_sent, adverts_before);

  // Now the stream is fully drained: the next receive resynchronises with
  // an exact sequence number and direct service resumes.
  server->Recv(in.data() + 3 * kLen, kLen, RecvFlags{.waitall = true});
  sim_.RunFor(Microseconds(100));
  EXPECT_EQ(server->stats().adverts_sent, adverts_before + 1);
  client->Send(out.data() + 3 * kLen, kLen);
  sim_.Run();
  EXPECT_GE(client->stats().direct_transfers, 1u);
  EXPECT_EQ(VerifyPattern(in.data(), 4 * kLen, 0, 62), 4 * kLen);
}

// Fig. 8: when a stale ADVERT carries a *higher* phase, the sender must
// advance its own phase past it; otherwise a later ADVERT of that sequence
// whose estimated sequence number happens to equal S_s would be matched,
// directing a transfer into the wrong memory.
TEST_F(ScenarioTest, Fig8_SenderJumpsPhasePastStaleHigherPhaseAdvert) {
  auto [client, server] = MakePair();
  std::vector<std::uint8_t> out(64 * 1024), in(64 * 1024);
  FillPattern(out.data(), out.size(), 0, 63);
  std::uint64_t sent = 0;

  // Step 1: enter an indirect phase — send with nothing posted, drain it.
  client->Send(out.data(), 4096);
  sent += 4096;
  sim_.RunFor(Microseconds(100));
  server->Recv(in.data(), 4096, RecvFlags{.waitall = true});
  sim_.RunFor(Milliseconds(1));
  ASSERT_EQ(server->stats().recvs_completed, 1u);
  ASSERT_EQ(client->stream_tx()->phase(), 1u);

  // Step 2: the receiver resynchronises and emits a *sequence* of phase-2
  // ADVERTs: the first exact (seq 4096), the second an estimate one byte
  // higher (seq 4097).  Concurrently — before those ADVERTs can arrive —
  // the sender pushes one more byte indirectly, so S_s becomes 4097:
  // exactly the second ADVERT's sequence.  This is the Fig. 8 trap.
  server->Recv(in.data() + 4096, 4096);         // ADVERT seq = 4096
  server->Recv(in.data() + 8192, 4096);         // ADVERT seq = 4097 (est.)
  client->Send(out.data() + sent, 1);           // indirect, S_s = 4097
  sent += 1;
  sim_.Run();
  EXPECT_EQ(server->stats().recvs_completed, 2u);  // byte from the buffer
  EXPECT_EQ(client->stats().adverts_received, 2u);

  // Step 3: the next send processes the queued ADVERTs.  The first is
  // discarded by sequence and jumps the sender's phase past phase 2; the
  // second — whose sequence equals S_s and would otherwise match — is then
  // discarded by phase.  The transfer goes indirect.
  client->Send(out.data() + sent, 2000);
  sent += 2000;
  sim_.RunFor(Milliseconds(2));
  EXPECT_EQ(client->stats().adverts_discarded, 2u);
  EXPECT_EQ(client->stats().direct_transfers, 0u);
  EXPECT_GE(client->stream_tx()->phase(), 3u);
  EXPECT_EQ(server->stats().recvs_completed, 3u);
  // The receive completed with the bytes that were really next in the
  // stream (offsets 4097..6097), despite the matching trap.
  EXPECT_EQ(VerifyPattern(in.data() + 8192, 2000, 4097, 63), 2000u);

  // Step 4: clean resynchronisation and return to direct service.
  server->Recv(in.data() + 12288, 4096, RecvFlags{.waitall = true});
  sim_.RunFor(Microseconds(100));
  client->Send(out.data() + sent, 4096);
  sent += 4096;
  sim_.Run();
  EXPECT_GE(client->stats().direct_transfers, 1u);
  EXPECT_EQ(VerifyPattern(in.data() + 12288, 4096, 6097, 63), 4096u);
  EXPECT_EQ(client->stream_tx()->sequence(), sent);
  EXPECT_EQ(server->stream_rx()->sequence(), sent);
  EXPECT_EQ(server->stream_rx()->sequence_estimate(), sent);
}

// Determinism: identical seeds give bit-identical protocol outcomes —
// the property that makes every scenario in this file reproducible.
TEST(ScenarioDeterminism, SameSeedSameOutcome) {
  auto run = [](std::uint64_t seed) {
    Simulation sim(HardwareProfile::FdrInfiniBand(), seed, true);
    auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
    client->EnableTracing();
    server->EnableTracing();
    std::vector<std::uint8_t> out(128 * 1024), in(128 * 1024);
    client->Send(out.data(), 40 * 1024);
    for (int i = 0; i < 8; ++i) {
      server->Recv(in.data() + i * 16 * 1024, 16 * 1024,
                   RecvFlags{.waitall = true});
      sim.RunFor(Microseconds(35));
      client->Send(out.data() + 40 * 1024 + i * 11 * 1024,
                   i == 7 ? 128 * 1024 - 40 * 1024 - 7 * 11 * 1024
                          : 11 * 1024);
    }
    sim.Run();
    return std::make_tuple(client->stats().direct_transfers,
                           client->stats().indirect_transfers,
                           client->stats().mode_switches,
                           client->stats().adverts_discarded, sim.Now(),
                           ConnectionFingerprint(*client, *server));
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_EQ(run(6), run(6));
}

}  // namespace
}  // namespace exs
