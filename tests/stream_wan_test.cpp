// Stream behaviour over the emulated wide-area path (10 GbE RoCE through
// a 48 ms round-trip delay): correctness is unaffected by distance, the
// intermediate buffer acts as the indirect path's flow-control window, and
// jitter does not break ordering.
#include <gtest/gtest.h>

#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

TEST(StreamWan, IntegrityOverDistance) {
  Simulation sim(HardwareProfile::RoCE10GWithDelay(Milliseconds(24)), 1,
                 true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
  constexpr std::uint64_t kTotal = 2 * kMiB;
  std::vector<std::uint8_t> out(kTotal), in(kTotal);
  FillPattern(out.data(), out.size(), 0, 5);

  client->Send(out.data(), kTotal);
  server->Recv(in.data(), kTotal, RecvFlags{.waitall = true});
  sim.Run();

  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 5), in.size());
  // One-way delivery cannot beat the emulator's one-way delay.
  EXPECT_GE(sim.Now(), Milliseconds(24));
}

TEST(StreamWan, DirectTransferWaitsFullRoundTrip) {
  StreamOptions opts;
  opts.mode = ProtocolMode::kDirectOnly;
  Simulation sim(HardwareProfile::RoCE10GWithDelay(Milliseconds(24)), 2,
                 true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream, opts);
  std::vector<std::uint8_t> out(4096), in(4096);

  // Send posted first: the data cannot leave until the ADVERT has crossed
  // the 24 ms one-way path, so delivery takes at least a full RTT.
  client->Send(out.data(), out.size());
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  SimTime start = sim.Now();
  sim.Run();
  EXPECT_GE(sim.Now() - start, Milliseconds(48));
}

TEST(StreamWan, IndirectAvoidsTheAdvertLeg) {
  StreamOptions opts;
  opts.mode = ProtocolMode::kIndirectOnly;
  Simulation sim(HardwareProfile::RoCE10GWithDelay(Milliseconds(24)), 3,
                 true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream, opts);
  std::vector<std::uint8_t> out(4096), in(4096);
  FillPattern(out.data(), out.size(), 0, 9);

  client->Send(out.data(), out.size());
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  SimTime start = sim.Now();
  std::uint64_t done_bytes = 0;
  SimTime done_at = 0;
  server->events().SetHandler([&](const Event& ev) {
    done_bytes = ev.bytes;
    done_at = sim.Now();
  });
  sim.Run();

  EXPECT_EQ(done_bytes, 4096u);
  // One-way plus processing, but well under a full round trip.
  EXPECT_GE(done_at - start, Milliseconds(24));
  EXPECT_LT(done_at - start, Milliseconds(40));
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 9), in.size());
}

TEST(StreamWan, BufferBoundsInFlightData) {
  StreamOptions opts;
  opts.mode = ProtocolMode::kIndirectOnly;
  opts.intermediate_buffer_bytes = 1 * kMiB;
  Simulation sim(HardwareProfile::RoCE10GWithDelay(Milliseconds(24)), 4,
                 true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream, opts);
  constexpr std::uint64_t kTotal = 8 * kMiB;
  std::vector<std::uint8_t> out(kTotal), in(kTotal);
  FillPattern(out.data(), out.size(), 0, 11);

  client->Send(out.data(), kTotal);
  for (int i = 0; i < 8; ++i) {
    server->Recv(in.data() + i * kMiB, kMiB, RecvFlags{.waitall = true});
  }
  SimTime start = sim.Now();
  sim.Run();

  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 11), in.size());
  // 8 MiB through a 1 MiB window over a 48 ms loop: at least ~7 ACK round
  // trips must have elapsed.
  EXPECT_GE(sim.Now() - start, Milliseconds(48 * 4));
  EXPECT_GE(server->stats().acks_sent, 7u);
}

TEST(StreamWan, JitterPreservesByteOrder) {
  Simulation sim(
      HardwareProfile::RoCE10GWithDelay(Milliseconds(24), Milliseconds(5)),
      5, true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
  constexpr std::uint64_t kTotal = 1 * kMiB;
  constexpr std::uint64_t kChunk = 64 * kKiB;
  std::vector<std::uint8_t> out(kTotal), in(kTotal);
  FillPattern(out.data(), out.size(), 0, 13);

  for (std::uint64_t off = 0; off < kTotal; off += kChunk) {
    client->Send(out.data() + off, kChunk);
    server->Recv(in.data() + off, kChunk, RecvFlags{.waitall = true});
  }
  sim.Run();
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 13), in.size());
  EXPECT_EQ(server->stats().bytes_received, kTotal);
}

TEST(StreamWan, QdrProfileNarrowsDirectIndirectGap) {
  // The paper notes indirect compares much more favourably on QDR, whose
  // wire rate is not dramatically above memcpy throughput.  Check the
  // relative gap orders correctly across profiles.
  auto run = [](const HardwareProfile& profile, ProtocolMode mode) {
    StreamOptions opts;
    opts.mode = mode;
    Simulation sim(profile, 6, false);
    auto [client, server] = sim.CreateConnectedPair(SocketType::kStream,
                                                    opts);
    constexpr std::uint64_t kTotal = 16 * kMiB;
    static std::vector<std::uint8_t> out(kTotal), in(kTotal);
    SimTime start = sim.Now();
    for (int i = 0; i < 16; ++i) {
      server->Recv(in.data() + i * kMiB, kMiB, RecvFlags{.waitall = true});
    }
    client->Send(out.data(), kTotal);
    sim.Run();
    return ThroughputMbps(kTotal, sim.Now() - start);
  };
  double fdr_direct = run(HardwareProfile::FdrInfiniBand(),
                          ProtocolMode::kDirectOnly);
  double fdr_indirect = run(HardwareProfile::FdrInfiniBand(),
                            ProtocolMode::kIndirectOnly);
  double qdr_direct = run(HardwareProfile::QdrInfiniBand(),
                          ProtocolMode::kDirectOnly);
  double qdr_indirect = run(HardwareProfile::QdrInfiniBand(),
                            ProtocolMode::kIndirectOnly);
  EXPECT_GT(fdr_direct / fdr_indirect, qdr_direct / qdr_indirect);
  EXPECT_GT(qdr_direct, qdr_indirect * 0.8);  // near parity on QDR
}

}  // namespace
}  // namespace exs
