// Dynamic direct/indirect switching: phase transitions, stale-ADVERT
// discarding, resynchronisation, buffer backpressure, and the protocol
// invariants the paper proves.
#include <gtest/gtest.h>

#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"
#include "exs/invariant_checker.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

class StreamDynamicTest : public ::testing::Test {
 protected:
  /// All pairs run traced; TearDown replays the traces through the
  /// invariant checker so every switching scenario in this file also
  /// proves the safety theorem held.
  std::pair<Socket*, Socket*> MakePair(const StreamOptions& opts = {}) {
    auto pair = sim_.CreateConnectedPair(SocketType::kStream, opts);
    pair.first->EnableTracing();
    pair.second->EnableTracing();
    traced_ = pair;
    return pair;
  }

  void TearDown() override {
    if (traced_.first != nullptr) {
      InvariantReport report =
          CheckConnection(*traced_.first, *traced_.second);
      EXPECT_TRUE(report.ok()) << report.Summary();
    }
  }

  Simulation sim_{HardwareProfile::FdrInfiniBand(), /*seed=*/21,
                  /*carry_payload=*/true};
  std::pair<Socket*, Socket*> traced_{nullptr, nullptr};
};

TEST_F(StreamDynamicTest, SwitchesFromIndirectBackToDirect) {
  auto [client, server] = MakePair();
  std::vector<std::uint8_t> out(32 * 1024), in(32 * 1024);
  FillPattern(out.data(), out.size(), 0, 1);

  // Phase 1: send with no receive posted -> indirect.
  client->Send(out.data(), 16 * 1024);
  sim_.RunFor(Microseconds(100));
  EXPECT_EQ(client->stream_tx()->phase() % 2, 1u) << "sender phase is odd";

  // Receiver drains it, then posts a fresh receive -> new ADVERT.
  server->Recv(in.data(), 16 * 1024, RecvFlags{.waitall = true});
  sim_.RunFor(Milliseconds(1));
  EXPECT_TRUE(server->stream_rx()->Quiescent());

  server->Recv(in.data() + 16 * 1024, 16 * 1024);
  sim_.RunFor(Milliseconds(1));

  // Phase 2: the sender accepted the new ADVERT and returned to direct.
  FillPattern(out.data() + 16 * 1024, 16 * 1024, 16 * 1024, 1);
  client->Send(out.data() + 16 * 1024, 16 * 1024);
  sim_.Run();

  EXPECT_GE(client->stats().indirect_transfers, 1u);
  EXPECT_GE(client->stats().direct_transfers, 1u);
  EXPECT_EQ(client->stats().mode_switches, 2u);  // direct->indirect->direct
  EXPECT_EQ(client->stream_tx()->phase() % 2, 0u);
  EXPECT_EQ(VerifyPattern(in.data(), 32 * 1024, 0, 1), 32u * 1024);
}

TEST_F(StreamDynamicTest, StaleAdvertIsDiscarded) {
  auto [client, server] = MakePair();
  std::vector<std::uint8_t> out(64 * 1024), in(64 * 1024);
  FillPattern(out.data(), out.size(), 0, 2);

  // The receive is posted but its ADVERT is still in flight when the send
  // is issued, so the sender goes indirect; the ADVERT then arrives stale
  // and must be discarded — which happens when the next send request runs
  // the matching loop (Fig. 2 runs per send, not per ADVERT arrival).
  server->Recv(in.data(), 32 * 1024);
  client->Send(out.data(), 16 * 1024);  // same instant: no ADVERT yet
  sim_.Run();
  EXPECT_EQ(server->stats().bytes_received, 16u * 1024);
  EXPECT_EQ(client->stats().adverts_received, 1u);

  client->Send(out.data() + 16 * 1024, 16 * 1024);
  sim_.RunFor(Microseconds(5));
  EXPECT_GE(client->stats().adverts_discarded, 1u);
  EXPECT_EQ(client->stats().direct_transfers, 0u);

  server->Recv(in.data() + 16 * 1024, 16 * 1024,
               RecvFlags{.waitall = true});
  sim_.Run();
  EXPECT_EQ(server->stats().bytes_received, 32u * 1024);
  EXPECT_EQ(VerifyPattern(in.data(), 32 * 1024, 0, 2), 32u * 1024);
}

TEST_F(StreamDynamicTest, ResynchronisationAfterIndirectBurst) {
  auto [client, server] = MakePair();
  constexpr std::uint64_t kChunk = 8 * 1024;
  constexpr int kChunks = 16;
  std::vector<std::uint8_t> out(kChunks * kChunk), in(kChunks * kChunk);
  FillPattern(out.data(), out.size(), 0, 3);

  // Burst of sends with receives racing behind them: a mix of direct and
  // indirect service with several phase changes.
  for (int i = 0; i < kChunks; ++i) {
    client->Send(out.data() + i * kChunk, kChunk);
    server->Recv(in.data() + i * kChunk, kChunk, RecvFlags{.waitall = true});
    sim_.RunFor(Microseconds(30));
  }
  sim_.Run();

  EXPECT_EQ(server->stats().bytes_received, out.size());
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 3), in.size());
  // Sequence agreement once quiescent: S_s == S_r == S'_r == total bytes.
  EXPECT_EQ(client->stream_tx()->sequence(), out.size());
  EXPECT_EQ(server->stream_rx()->sequence(), out.size());
  EXPECT_EQ(server->stream_rx()->sequence_estimate(), out.size());
}

TEST_F(StreamDynamicTest, BufferFullBlocksSenderUntilAck) {
  StreamOptions opts;
  opts.mode = ProtocolMode::kIndirectOnly;
  opts.intermediate_buffer_bytes = 64 * 1024;
  auto [client, server] = MakePair(opts);
  std::vector<std::uint8_t> out(256 * 1024), in(256 * 1024);
  FillPattern(out.data(), out.size(), 0, 4);

  // Four buffers' worth with no receive posted: the sender can place at
  // most the buffer capacity.
  client->Send(out.data(), out.size());
  sim_.RunFor(Milliseconds(2));
  EXPECT_EQ(client->stats().indirect_bytes, 64u * 1024);
  EXPECT_EQ(client->stream_tx()->RemoteRingFree(), 0u);

  // Draining the buffer lets the rest flow.
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();
  EXPECT_EQ(client->stats().indirect_bytes, out.size());
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 4), in.size());
}

TEST_F(StreamDynamicTest, IndirectDataWrapsAroundRing) {
  StreamOptions opts;
  opts.mode = ProtocolMode::kIndirectOnly;
  opts.intermediate_buffer_bytes = 24 * 1024;  // forces many wraps
  auto [client, server] = MakePair(opts);
  constexpr std::uint64_t kTotal = 256 * 1024;
  std::vector<std::uint8_t> out(kTotal), in(kTotal);
  FillPattern(out.data(), out.size(), 0, 5);

  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  client->Send(out.data(), out.size());
  sim_.Run();

  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 5), in.size());
  // Wrap splits mean strictly more transfers than buffers' worth.
  EXPECT_GT(client->stats().indirect_transfers, kTotal / (24 * 1024));
}

TEST_F(StreamDynamicTest, PhasesAreMonotone) {
  auto [client, server] = MakePair();
  std::vector<std::uint8_t> out(128 * 1024), in(128 * 1024);
  FillPattern(out.data(), out.size(), 0, 6);

  std::uint64_t last_tx_phase = 0, last_rx_phase = 0;
  std::uint64_t sent = 0, recvd = 0;
  constexpr std::uint64_t kStep = 8 * 1024;
  while (recvd < out.size()) {
    if (sent < out.size()) {
      client->Send(out.data() + sent, kStep);
      sent += kStep;
    }
    server->Recv(in.data() + recvd, kStep, RecvFlags{.waitall = true});
    recvd += kStep;
    sim_.RunFor(Microseconds(40));
    std::uint64_t tx_phase = client->stream_tx()->phase();
    std::uint64_t rx_phase = server->stream_rx()->phase();
    ASSERT_GE(tx_phase, last_tx_phase);
    ASSERT_GE(rx_phase, last_rx_phase);
    last_tx_phase = tx_phase;
    last_rx_phase = rx_phase;
  }
  sim_.Run();
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 6), in.size());
}

TEST_F(StreamDynamicTest, MixedDirectThenIndirectFillOfWaitallRecv) {
  auto [client, server] = MakePair();
  constexpr std::uint64_t kRecvSize = 64 * 1024;
  std::vector<std::uint8_t> out(kRecvSize), in(kRecvSize);
  FillPattern(out.data(), out.size(), 0, 7);

  // The WAITALL receive is advertised; the first half arrives directly.
  server->Recv(in.data(), kRecvSize, RecvFlags{.waitall = true});
  sim_.RunFor(Microseconds(20));
  client->Send(out.data(), kRecvSize / 2);
  sim_.Run();
  EXPECT_EQ(server->stats().recvs_completed, 0u);
  EXPECT_EQ(client->stats().direct_transfers, 1u);

  // A second receive posted behind it can't advertise past the WAITALL
  // head... but the remaining half still flows (directly, same ADVERT).
  client->Send(out.data() + kRecvSize / 2, kRecvSize / 2);
  sim_.Run();
  EXPECT_EQ(server->stats().recvs_completed, 1u);
  EXPECT_EQ(VerifyPattern(in.data(), kRecvSize, 0, 7), kRecvSize);
}

TEST_F(StreamDynamicTest, SmallBufferStillMakesProgressDynamically) {
  StreamOptions opts;
  opts.intermediate_buffer_bytes = 4 * 1024;  // tiny
  auto [client, server] = MakePair(opts);
  constexpr std::uint64_t kTotal = 512 * 1024;
  std::vector<std::uint8_t> out(kTotal), in(kTotal);
  FillPattern(out.data(), out.size(), 0, 8);

  client->Send(out.data(), kTotal);
  // Receives trickle in while the buffer thrashes.
  for (std::uint64_t off = 0; off < kTotal; off += 16 * 1024) {
    server->Recv(in.data() + off, 16 * 1024, RecvFlags{.waitall = true});
    sim_.RunFor(Microseconds(25));
  }
  sim_.Run();

  EXPECT_EQ(server->stats().bytes_received, kTotal);
  EXPECT_EQ(VerifyPattern(in.data(), kTotal, 0, 8), kTotal);
}

TEST_F(StreamDynamicTest, ChunkCapSplitsTransfers) {
  StreamOptions opts;
  opts.max_wwi_chunk = 4 * 1024;
  auto [client, server] = MakePair(opts);
  std::vector<std::uint8_t> out(64 * 1024), in(64 * 1024);
  FillPattern(out.data(), out.size(), 0, 9);

  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.RunFor(Microseconds(20));
  client->Send(out.data(), out.size());
  sim_.Run();

  EXPECT_EQ(client->stats().direct_transfers, 16u);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 9), in.size());
}

TEST_F(StreamDynamicTest, StatsAccountingIsConsistent) {
  auto [client, server] = MakePair();
  std::vector<std::uint8_t> out(96 * 1024), in(96 * 1024);
  FillPattern(out.data(), out.size(), 0, 10);

  client->Send(out.data(), 48 * 1024);  // indirect (no recv yet)
  sim_.RunFor(Microseconds(100));
  server->Recv(in.data(), 48 * 1024, RecvFlags{.waitall = true});
  sim_.RunFor(Milliseconds(1));
  server->Recv(in.data() + 48 * 1024, 48 * 1024, RecvFlags{.waitall = true});
  sim_.RunFor(Milliseconds(1));
  client->Send(out.data() + 48 * 1024, 48 * 1024);  // direct
  sim_.Run();

  const StreamStats& cs = client->stats();
  const StreamStats& ss = server->stats();
  EXPECT_EQ(cs.direct_bytes + cs.indirect_bytes, out.size());
  EXPECT_EQ(cs.bytes_sent, out.size());
  EXPECT_EQ(ss.bytes_received, out.size());
  EXPECT_EQ(ss.direct_bytes_received, cs.direct_bytes);
  EXPECT_EQ(ss.indirect_bytes_received, cs.indirect_bytes);
  EXPECT_EQ(ss.bytes_copied_out, cs.indirect_bytes);
  EXPECT_EQ(cs.sends_completed, 2u);
  EXPECT_EQ(ss.recvs_completed, 2u);
  EXPECT_GE(ss.acks_sent, 1u);
}

}  // namespace
}  // namespace exs
