// The blast tool's workload-shaping features: bursty traffic and mid-run
// message-size shifts (used by the §VI future-work extension benches).
#include <gtest/gtest.h>

#include "blast/blast.hpp"

namespace exs::blast {
namespace {

TEST(BlastWorkload, BurstsDeliverEverythingAndStretchElapsed) {
  BlastConfig base;
  base.message_count = 60;
  base.fixed_message_bytes = 64 * kKiB;
  base.recv_buffer_bytes = 64 * kKiB;
  base.outstanding_sends = 4;
  base.outstanding_recvs = 4;
  base.carry_payload = true;
  base.verify_data = true;

  BlastResult continuous = RunBlast(base);

  BlastConfig bursty = base;
  bursty.burst_messages = 10;
  bursty.burst_idle = Milliseconds(1);
  BlastResult r = RunBlast(bursty);

  EXPECT_TRUE(r.data_verified);
  EXPECT_EQ(r.bytes_transferred, 60u * 64 * kKiB);
  // Five idle gaps of 1 ms each must show up in the elapsed time.
  EXPECT_GT(r.elapsed_seconds, continuous.elapsed_seconds + 0.004);
}

TEST(BlastWorkload, BurstGapsLetDynamicProtocolResync) {
  // Equal windows lock a continuous blast into indirect service; with long
  // idle gaps the receiver drains and each burst can restart direct.
  BlastConfig c;
  c.message_count = 120;
  c.outstanding_sends = 4;
  c.outstanding_recvs = 4;
  c.exponential_mean_bytes = 64.0 * kKiB;
  c.max_message_bytes = 256 * kKiB;
  c.recv_buffer_bytes = 256 * kKiB;
  c.carry_payload = false;
  BlastResult continuous = RunBlast(c);

  c.burst_messages = 4;
  c.burst_idle = Milliseconds(2);
  BlastResult bursty = RunBlast(c);

  EXPECT_LE(continuous.direct_ratio, 0.2);
  // With generous idle gaps each burst restarts in direct service; the
  // ratio recovers dramatically (a tiny burst may even stay at 1.0 with
  // zero switches — that is ideal adaptation, not a missing transition).
  EXPECT_GT(bursty.direct_ratio, 0.5);
}

TEST(BlastWorkload, SizeShiftChangesSecondHalf) {
  BlastConfig c;
  c.message_count = 100;
  c.exponential_mean_bytes = 4.0 * kKiB;
  c.shifted_mean_bytes = 512.0 * kKiB;
  c.shift_at_message = 50;
  c.max_message_bytes = 2 * kMiB;
  c.recv_buffer_bytes = 2 * kMiB;
  c.outstanding_sends = 2;
  c.outstanding_recvs = 4;
  c.carry_payload = true;
  c.verify_data = true;
  BlastResult r = RunBlast(c);
  EXPECT_TRUE(r.data_verified);
  // Second-half mean is 128x the first: the total must be dominated by it.
  EXPECT_GT(r.bytes_transferred, 50u * 100 * kKiB);
}

TEST(BlastWorkload, SeqPacketRejectsNothingUnderBursts) {
  BlastConfig c;
  c.socket_type = SocketType::kSeqPacket;
  c.message_count = 40;
  c.fixed_message_bytes = 16 * kKiB;
  c.recv_buffer_bytes = 16 * kKiB;
  c.outstanding_sends = 2;
  c.outstanding_recvs = 4;
  c.burst_messages = 8;
  c.burst_idle = Microseconds(300);
  c.carry_payload = true;
  c.verify_data = true;
  BlastResult r = RunBlast(c);
  EXPECT_TRUE(r.data_verified);
  EXPECT_EQ(r.direct_transfers, 40u);
}

}  // namespace
}  // namespace exs::blast
