// Property sweep for SOCK_SEQPACKET: random message sizes and posting
// interleavings; boundaries must be preserved exactly (no coalescing, no
// splitting), in order, with truncation only when a message exceeds its
// buffer.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/pattern.hpp"
#include "common/rng.hpp"
#include "exs/exs.hpp"
#include "exs/invariant_checker.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

class SeqPacketPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SeqPacketPropertyTest, BoundariesSurviveRandomInterleavings) {
  const std::uint64_t seed = GetParam();
  Simulation sim(HardwareProfile::FdrInfiniBand(), seed, true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kSeqPacket);
  client->EnableTracing();
  server->EnableTracing();

  Rng rng(seed * 17 + 5);
  constexpr int kMessages = 120;
  constexpr std::uint64_t kBufSize = 8 * 1024;

  // Message sizes; some deliberately exceed the receive buffers.
  std::vector<std::uint64_t> sizes(kMessages);
  std::uint64_t payload_offset = 0;
  std::vector<std::uint64_t> offsets(kMessages);
  for (int i = 0; i < kMessages; ++i) {
    sizes[i] = rng.NextBool(0.1) ? rng.NextInRange(kBufSize + 1, 2 * kBufSize)
                                 : rng.NextInRange(1, kBufSize);
    offsets[i] = payload_offset;
    payload_offset += sizes[i];
  }
  std::vector<std::uint8_t> out(payload_offset);
  FillPattern(out.data(), out.size(), 0, seed);

  // Receive side: a pool of equal buffers, reposted on completion.
  constexpr int kPool = 5;
  std::vector<std::vector<std::uint8_t>> pool(
      kPool, std::vector<std::uint8_t>(kBufSize));
  std::vector<std::size_t> free_pool;
  for (std::size_t i = 0; i < kPool; ++i) free_pool.push_back(i);
  std::unordered_map<std::uint64_t, std::size_t> posted;

  int completed = 0;
  server->events().SetHandler([&](const Event& ev) {
    ASSERT_EQ(ev.type, EventType::kRecvComplete);
    auto it = posted.find(ev.id);
    ASSERT_NE(it, posted.end());
    std::size_t idx = it->second;
    posted.erase(it);
    // Message `completed` arrives as exactly min(size, buffer) bytes of
    // the right payload — boundary preservation.
    std::uint64_t expect =
        std::min<std::uint64_t>(sizes[completed], kBufSize);
    ASSERT_EQ(ev.bytes, expect) << "message " << completed;
    ASSERT_EQ(VerifyPattern(pool[idx].data(), ev.bytes, offsets[completed],
                            seed),
              ev.bytes);
    ++completed;
    free_pool.push_back(idx);
  });

  std::vector<bool> truncated_events(kMessages, false);
  client->events().SetHandler([&](const Event& ev) {
    if (ev.type == EventType::kSendComplete && ev.truncated) {
      truncated_events[ev.id - 1] = true;  // ids are 1-based in order
    }
  });

  int sent = 0;
  std::uint64_t recv_posted_count = 0;
  std::uint64_t guard = 0;
  while (completed < kMessages) {
    ASSERT_LT(++guard, 100000u);
    if (sent < kMessages && rng.NextBool()) {
      client->Send(out.data() + offsets[sent], sizes[sent]);
      ++sent;
    }
    if (recv_posted_count < static_cast<std::uint64_t>(kMessages) &&
        !free_pool.empty() && rng.NextBool()) {
      std::size_t idx = free_pool.back();
      free_pool.pop_back();
      std::uint64_t id = server->Recv(pool[idx].data(), kBufSize);
      posted.emplace(id, idx);
      ++recv_posted_count;
    }
    sim.RunFor(static_cast<SimDuration>(
        rng.NextInRange(0, static_cast<std::uint64_t>(Microseconds(20)))));
  }
  sim.Run();

  EXPECT_EQ(completed, kMessages);
  EXPECT_TRUE(client->Quiescent());
  // Every oversize message (and only those) reported truncation.
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(truncated_events[i], sizes[i] > kBufSize) << "message " << i;
  }
  // The §II-C invariants (ordered loss-free ADVERTs, byte/message
  // conservation) held throughout.
  InvariantReport invariants = CheckConnection(*client, *server);
  EXPECT_TRUE(invariants.ok()) << invariants.Summary();
}

INSTANTIATE_TEST_SUITE_P(Sweep, SeqPacketPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace exs
