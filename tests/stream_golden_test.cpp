// Golden-trace regression suite: a fixed corpus of trace fingerprints for
// deterministic workloads, coalescing off and on.  The simulator is
// bit-reproducible (ps-resolution clock, tie-broken scheduler, seeded
// RNG), so the FNV-1a hash over every recorded trace field
// (TraceFingerprint) is a total summary of one run's protocol behaviour:
// any change to message ordering, chunking, phase transitions, or
// coalescing decisions moves the fingerprint.
//
// Each config also runs twice in-process and must fingerprint identically
// — the determinism witness that makes the corpus meaningful.
//
// When a protocol change is *intentional*, regenerate the corpus with
//
//   EXS_UPDATE_GOLDEN=1 ./exs_test --gtest_filter='StreamGolden*'
//
// and review the rewritten tests/data/stream_golden.txt in the diff: one
// line per config, so the blast radius of a change is visible at a glance.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/pattern.hpp"
#include "common/rng.hpp"
#include "exs/exs.hpp"
#include "exs/invariant_checker.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

constexpr const char* kCorpusPath = EXS_TEST_DATA_DIR "/stream_golden.txt";

struct GoldenConfig {
  const char* name;
  std::uint64_t seed;
  bool coalesce;
};

constexpr GoldenConfig kConfigs[] = {
    {"fdr_dynamic_seed1_plain", 1, false},
    {"fdr_dynamic_seed2_plain", 2, false},
    {"fdr_dynamic_seed3_plain", 3, false},
    {"fdr_dynamic_seed1_coalesce", 1, true},
    {"fdr_dynamic_seed2_coalesce", 2, true},
    {"fdr_dynamic_seed3_coalesce", 3, true},
};

// A compact randomized small-message workload (the coalescing target
// regime), checked for integrity before its fingerprint is taken — a
// corpus entry for a corrupted run would be worse than none.
std::uint64_t RunGoldenWorkload(const GoldenConfig& cfg) {
  StreamOptions opts;
  opts.intermediate_buffer_bytes = 64 * kKiB;
  opts.coalesce.enabled = cfg.coalesce;

  Simulation sim(HardwareProfile::FdrInfiniBand(), cfg.seed,
                 /*carry_payload=*/true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();

  Rng rng(cfg.seed);
  constexpr std::uint64_t kMaxSize = 2 * 1024;
  constexpr std::uint64_t kTotal = 48 * 1024;

  std::vector<std::uint8_t> out(kTotal);
  FillPattern(out.data(), out.size(), 0, cfg.seed);
  std::vector<std::uint8_t> in(kTotal, 0);

  constexpr std::size_t kScratch = 4;
  std::vector<std::vector<std::uint8_t>> scratch(
      kScratch, std::vector<std::uint8_t>(kMaxSize));
  std::vector<std::size_t> free_scratch;
  for (std::size_t i = 0; i < kScratch; ++i) free_scratch.push_back(i);

  struct Posted {
    std::size_t scratch_index;
    std::uint64_t len;
  };
  std::map<std::uint64_t, Posted> posted;

  std::uint64_t send_off = 0;
  std::uint64_t recv_done = 0;
  std::uint64_t pending_posted = 0;

  server->events().SetHandler([&](const Event& ev) {
    ASSERT_EQ(ev.type, EventType::kRecvComplete);
    auto it = posted.find(ev.id);
    ASSERT_NE(it, posted.end());
    Posted rec = it->second;
    posted.erase(it);
    std::memcpy(in.data() + recv_done, scratch[rec.scratch_index].data(),
                ev.bytes);
    recv_done += ev.bytes;
    pending_posted -= rec.len;
    free_scratch.push_back(rec.scratch_index);
  });

  std::uint64_t guard = 0;
  while (recv_done < kTotal) {
    if (++guard >= 100000u) {
      ADD_FAILURE() << cfg.name << ": protocol stuck at " << recv_done << "/"
                    << kTotal;
      return 0;
    }
    bool can_send = send_off < kTotal;
    bool can_recv =
        !free_scratch.empty() && recv_done + pending_posted < kTotal;
    if (can_send && (rng.NextBool() || !can_recv)) {
      std::uint64_t s = rng.NextInRange(1, kMaxSize);
      s = std::min(s, kTotal - send_off);
      client->Send(out.data() + send_off, s);
      send_off += s;
    } else if (can_recv) {
      std::uint64_t r = rng.NextInRange(1, kMaxSize);
      r = std::min(r, kTotal - recv_done - pending_posted);
      bool waitall = rng.NextBool(0.4);
      std::size_t idx = free_scratch.back();
      free_scratch.pop_back();
      std::uint64_t id =
          server->Recv(scratch[idx].data(), r, RecvFlags{.waitall = waitall});
      posted.emplace(id, Posted{idx, r});
      pending_posted += r;
    }
    sim.RunFor(static_cast<SimDuration>(
        rng.NextInRange(0, static_cast<std::uint64_t>(Microseconds(30)))));
    if (!can_send && !can_recv) sim.Run();
  }
  sim.Run();

  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, cfg.seed), in.size())
      << cfg.name;
  EXPECT_TRUE(client->Quiescent()) << cfg.name;
  if (cfg.coalesce) {
    EXPECT_GT(client->stats().coalesced_sends, 0u) << cfg.name;
  }
  InvariantReport report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << cfg.name << ": " << report.Summary();
  return ConnectionFingerprint(*client, *server);
}

std::string Hex(std::uint64_t v) {
  std::ostringstream oss;
  oss << "0x" << std::hex << v;
  return oss.str();
}

std::map<std::string, std::string> LoadCorpus() {
  std::map<std::string, std::string> corpus;
  std::ifstream file(kCorpusPath);
  std::string name, fp;
  while (file >> name >> fp) {
    if (!name.empty() && name[0] == '#') {
      std::string rest;
      std::getline(file, rest);  // skip the remainder of a comment line
      continue;
    }
    corpus[name] = fp;
  }
  return corpus;
}

TEST(StreamGoldenTest, FingerprintsMatchCorpus) {
  const bool update = std::getenv("EXS_UPDATE_GOLDEN") != nullptr;

  std::map<std::string, std::string> actual;
  for (const GoldenConfig& cfg : kConfigs) {
    std::uint64_t first = RunGoldenWorkload(cfg);
    std::uint64_t second = RunGoldenWorkload(cfg);
    // Determinism witness: without run-to-run reproducibility the corpus
    // would pin noise, not behaviour.
    ASSERT_EQ(first, second)
        << cfg.name << ": two identical runs fingerprinted differently — "
        << "the simulator has a nondeterminism bug; fix that before "
        << "trusting any golden value";
    actual[cfg.name] = Hex(first);
  }

  if (update) {
    std::ofstream file(kCorpusPath, std::ios::trunc);
    ASSERT_TRUE(file.good()) << "cannot write " << kCorpusPath;
    file << "# Golden trace fingerprints (stream_golden_test.cpp).\n"
         << "# Regenerate: EXS_UPDATE_GOLDEN=1 ./exs_test "
         << "--gtest_filter='StreamGolden*'\n";
    for (const auto& [name, fp] : actual) file << name << " " << fp << "\n";
    GTEST_SKIP() << "corpus regenerated at " << kCorpusPath
                 << " — review the diff and rerun without EXS_UPDATE_GOLDEN";
  }

  std::map<std::string, std::string> expected = LoadCorpus();
  ASSERT_FALSE(expected.empty())
      << "missing or empty corpus " << kCorpusPath
      << " — generate it with EXS_UPDATE_GOLDEN=1";
  // One assertion per config with a diff-friendly message; stale corpus
  // entries (configs that no longer exist) are flagged too.
  for (const auto& [name, fp] : actual) {
    auto it = expected.find(name);
    if (it == expected.end()) {
      ADD_FAILURE() << "config " << name << " has no corpus entry (got " << fp
                    << ") — regenerate with EXS_UPDATE_GOLDEN=1";
      continue;
    }
    EXPECT_EQ(it->second, fp)
        << "golden fingerprint mismatch for " << name << "\n  expected: "
        << it->second << "\n  actual:   " << fp
        << "\nThe protocol's observable behaviour changed. If intentional, "
        << "regenerate with EXS_UPDATE_GOLDEN=1 and review the corpus diff.";
  }
  for (const auto& [name, fp] : expected) {
    EXPECT_TRUE(actual.count(name))
        << "stale corpus entry " << name << " (" << fp
        << ") — regenerate with EXS_UPDATE_GOLDEN=1";
  }
}

}  // namespace
}  // namespace exs
