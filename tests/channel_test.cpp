// The control channel's credit scheme (§II-B): the pre-posted receive pool
// bounds outstanding messages, consumed receives are recycled and credits
// returned (piggybacked or standalone), and the receiver-not-ready error
// can never fire through the EXS layer.
#include <gtest/gtest.h>

#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

TEST(ChannelTest, TinyCreditPoolStillDeliversEverything) {
  // With only a handful of credits, the sender must repeatedly stall on
  // credit returns; correctness must be unaffected and no RNR can occur.
  StreamOptions opts;
  opts.credits = 4;  // minimum viable pool
  opts.max_wwi_chunk = 2 * 1024;  // many chunks -> many credits consumed
  Simulation sim(HardwareProfile::FdrInfiniBand(), 2, true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream, opts);

  constexpr std::uint64_t kTotal = 128 * 1024;
  std::vector<std::uint8_t> out(kTotal), in(kTotal);
  FillPattern(out.data(), out.size(), 0, 7);

  client->Send(out.data(), kTotal);
  server->Recv(in.data(), kTotal, RecvFlags{.waitall = true});
  sim.Run();

  EXPECT_EQ(server->stats().bytes_received, kTotal);
  EXPECT_EQ(VerifyPattern(in.data(), kTotal, 0, 7), kTotal);
  EXPECT_EQ(client->channel().qp_stats().rnr_errors, 0u);
  EXPECT_EQ(server->channel().qp_stats().rnr_errors, 0u);
}

TEST(ChannelTest, CreditsAreConservedAtQuiescence) {
  StreamOptions opts;
  opts.credits = 16;
  Simulation sim(HardwareProfile::FdrInfiniBand(), 3, true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream, opts);

  std::vector<std::uint8_t> out(64 * 1024), in(64 * 1024);
  for (int round = 0; round < 5; ++round) {
    client->Send(out.data(), 8 * 1024);
    server->Recv(in.data(), 8 * 1024, RecvFlags{.waitall = true});
    sim.Run();
  }
  // All traffic acknowledged: both sides should have their full view of
  // the peer's pool back (allowing credits still owed but unreported).
  EXPECT_GE(client->channel().remote_credits() , opts.credits / 2);
  EXPECT_GE(server->channel().remote_credits(), opts.credits / 2);
  EXPECT_LE(client->channel().remote_credits(), opts.credits);
  EXPECT_LE(server->channel().remote_credits(), opts.credits);
}

TEST(ChannelTest, StandaloneCreditMessagesFlowWhenTrafficIsOneSided) {
  // A long one-directional indirect stream: the client consumes server
  // receives with data WWIs while the server's control traffic (ACKs) is
  // sparse relative to chunk count, so the server must eventually return
  // credits with standalone CREDIT messages.
  StreamOptions opts;
  opts.credits = 8;
  opts.max_wwi_chunk = 1024;
  opts.mode = ProtocolMode::kIndirectOnly;
  opts.ack_threshold_bytes = 1 * kMiB;  // suppress ACK piggybacking
  Simulation sim(HardwareProfile::FdrInfiniBand(), 4, true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream, opts);

  constexpr std::uint64_t kTotal = 64 * 1024;
  std::vector<std::uint8_t> out(kTotal), in(kTotal);
  FillPattern(out.data(), out.size(), 0, 8);
  client->Send(out.data(), kTotal);
  server->Recv(in.data(), kTotal, RecvFlags{.waitall = true});
  sim.Run();

  EXPECT_EQ(VerifyPattern(in.data(), kTotal, 0, 8), kTotal);
  EXPECT_GT(server->channel().credit_messages_sent(), 0u);
}

TEST(ChannelTest, TooSmallPoolIsRejected) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 5, true);
  StreamOptions opts;
  opts.credits = 2;
  EXPECT_THROW(Socket(sim.device(0), SocketType::kStream, opts, "x"),
               InvariantViolation);
}

TEST(ChannelTest, ControlTrafficCountsAppearInQpStats) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 6, true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
  std::vector<std::uint8_t> out(4 * 1024), in(4 * 1024);
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim.RunFor(Microseconds(20));
  client->Send(out.data(), out.size());
  sim.Run();

  // Server sent at least one ADVERT; client sent exactly one data WWI.
  EXPECT_GE(server->channel().qp_stats().sends_posted, 1u);
  EXPECT_GE(client->channel().qp_stats().sends_posted, 1u);
  EXPECT_GE(client->channel().qp_stats().payload_bytes_sent, 4096u);
  // Wire accounting includes header overhead.
  EXPECT_GT(client->channel().qp_stats().wire_bytes_sent,
            client->channel().qp_stats().payload_bytes_sent);
}

}  // namespace
}  // namespace exs
