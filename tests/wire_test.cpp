// Wire-format encoding: the control-message POD and the 32-bit immediate
// that classifies data WWIs.
#include <gtest/gtest.h>

#include <cstring>

#include "exs/wire.hpp"

namespace exs::wire {
namespace {

TEST(WireImm, RoundTripsKindAndLength) {
  for (bool indirect : {false, true}) {
    for (std::uint64_t len :
         {std::uint64_t{1}, std::uint64_t{511}, std::uint64_t{4096},
          kMaxWwiChunk}) {
      std::uint32_t imm = EncodeDataImm(indirect, len);
      EXPECT_EQ(ImmIsIndirect(imm), indirect);
      EXPECT_EQ(ImmLength(imm), len);
    }
  }
}

TEST(WireImm, RejectsOutOfRangeLengths) {
  EXPECT_THROW(EncodeDataImm(false, 0), InvariantViolation);
  EXPECT_THROW(EncodeDataImm(true, kMaxWwiChunk + 1), InvariantViolation);
}

TEST(WireImm, KindBitDoesNotCollideWithLength) {
  std::uint32_t direct = EncodeDataImm(false, kMaxWwiChunk);
  std::uint32_t indirect = EncodeDataImm(true, kMaxWwiChunk);
  EXPECT_NE(direct, indirect);
  EXPECT_EQ(ImmLength(direct), ImmLength(indirect));
}

TEST(WireControl, SerializeParseRoundTrip) {
  ControlMessage msg;
  msg.type = static_cast<std::uint8_t>(ControlType::kAdvert);
  msg.waitall = 1;
  msg.credit_return = 7;
  msg.addr = 0xdeadbeefcafef00dULL;
  msg.rkey = 0x1234;
  msg.set_phase(0x1'0000'0002ULL);  // exercises the split phase field
  msg.seq = 0x42424242ULL;
  msg.len = 65536;
  msg.freed = 99;

  std::uint8_t buf[kControlSlotBytes] = {};
  Serialize(msg, buf);
  ControlMessage parsed = Parse(buf, sizeof(buf));

  EXPECT_EQ(parsed.type, msg.type);
  EXPECT_EQ(parsed.waitall, 1);
  EXPECT_EQ(parsed.credit_return, 7u);
  EXPECT_EQ(parsed.addr, msg.addr);
  EXPECT_EQ(parsed.rkey, msg.rkey);
  EXPECT_EQ(parsed.phase(), 0x1'0000'0002ULL);
  EXPECT_EQ(parsed.seq, msg.seq);
  EXPECT_EQ(parsed.len, msg.len);
  EXPECT_EQ(parsed.freed, 99u);
}

TEST(WireControl, PhaseSplitFieldCoversFullRange) {
  ControlMessage msg;
  for (std::uint64_t phase :
       {0ull, 1ull, 0xffffffffull, 0x100000000ull, ~0ull}) {
    msg.set_phase(phase);
    EXPECT_EQ(msg.phase(), phase);
  }
}

TEST(WireControl, ShortBufferRejected) {
  std::uint8_t buf[8] = {};
  EXPECT_THROW(Parse(buf, sizeof(buf)), InvariantViolation);
}

TEST(WireControl, FitsInOneSlot) {
  EXPECT_LE(sizeof(ControlMessage), kControlSlotBytes);
}

}  // namespace
}  // namespace exs::wire
