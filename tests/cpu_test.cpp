#include <gtest/gtest.h>

#include <vector>

#include "simnet/cpu.hpp"

namespace exs::simnet {
namespace {

TEST(Cpu, SingleTaskRunsAfterCost) {
  EventScheduler sched;
  Cpu cpu(sched);
  SimTime done = -1;
  cpu.Submit(100, [&] { done = sched.Now(); });
  sched.Run();
  EXPECT_EQ(done, 100);
  EXPECT_EQ(cpu.BusyTime(), 100);
  EXPECT_EQ(cpu.CompletedTasks(), 1u);
  EXPECT_TRUE(cpu.Idle());
}

TEST(Cpu, TasksSerializeFifo) {
  EventScheduler sched;
  Cpu cpu(sched);
  std::vector<std::pair<int, SimTime>> done;
  cpu.Submit(100, [&] { done.emplace_back(1, sched.Now()); });
  cpu.Submit(50, [&] { done.emplace_back(2, sched.Now()); });
  cpu.Submit(10, [&] { done.emplace_back(3, sched.Now()); });
  sched.Run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], std::make_pair(1, SimTime{100}));
  EXPECT_EQ(done[1], std::make_pair(2, SimTime{150}));
  EXPECT_EQ(done[2], std::make_pair(3, SimTime{160}));
  EXPECT_EQ(cpu.BusyTime(), 160);
}

TEST(Cpu, IdleGapsDoNotCountAsBusy) {
  EventScheduler sched;
  Cpu cpu(sched);
  cpu.Submit(10, [] {});
  sched.Run();
  // Queue a second task much later.
  sched.ScheduleAt(1000, [&] { cpu.Submit(10, [] {}); });
  sched.Run();
  EXPECT_EQ(sched.Now(), 1010);
  EXPECT_EQ(cpu.BusyTime(), 20);  // busy 20 of 1010
}

TEST(Cpu, WorkSubmittingWorkQueuesBehind) {
  EventScheduler sched;
  Cpu cpu(sched);
  std::vector<int> order;
  cpu.Submit(10, [&] {
    order.push_back(1);
    cpu.Submit(10, [&] { order.push_back(3); });
  });
  cpu.Submit(10, [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Cpu, ZeroCostTaskStillRunsInOrder) {
  EventScheduler sched;
  Cpu cpu(sched);
  std::vector<int> order;
  cpu.Submit(0, [&] { order.push_back(1); });
  cpu.Submit(5, [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(cpu.BusyTime(), 5);
}

TEST(Cpu, QueueDepthTracksBacklog) {
  EventScheduler sched;
  Cpu cpu(sched);
  EXPECT_EQ(cpu.QueueDepth(), 0u);
  cpu.Submit(10, [] {});
  cpu.Submit(10, [] {});
  EXPECT_EQ(cpu.QueueDepth(), 2u);
  sched.Run();
  EXPECT_EQ(cpu.QueueDepth(), 0u);
}

}  // namespace
}  // namespace exs::simnet
