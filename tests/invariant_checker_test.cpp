// Positive and negative coverage of the trace invariant checker: clean
// runs must pass, and every checker rule must fire on a trace that breaks
// it — including end-to-end runs where a test-only sabotage hook disables
// one of the protocol's safety rules and the checker has to notice.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"
#include "exs/invariant_checker.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

bool HasViolation(const InvariantReport& report, const std::string& needle) {
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [&](const std::string& v) {
                       return v.find(needle) != std::string::npos;
                     });
}

TraceEvent Ev(TraceEventType type, std::uint64_t seq, std::uint64_t phase,
              std::uint64_t len, std::uint64_t msg_seq = 0,
              std::uint64_t msg_phase = 0) {
  TraceEvent ev;
  ev.time = Microseconds(1);
  ev.type = type;
  ev.seq = seq;
  ev.phase = phase;
  ev.len = len;
  ev.msg_seq = msg_seq;
  ev.msg_phase = msg_phase;
  return ev;
}

// ---------------------------------------------------------------------------
// Positive coverage: healthy end-to-end runs produce clean reports.
// ---------------------------------------------------------------------------

TEST(InvariantCheckerTest, CleanStreamRunPasses) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 5, true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
  client->EnableTracing();
  server->EnableTracing();
  std::vector<std::uint8_t> out(64 * 1024), in(64 * 1024);
  FillPattern(out.data(), out.size(), 0, 1);

  client->Send(out.data(), 32 * 1024);  // indirect leg
  sim.RunFor(Microseconds(100));
  server->Recv(in.data(), 32 * 1024, RecvFlags{.waitall = true});
  sim.RunFor(Milliseconds(1));
  server->Recv(in.data() + 32 * 1024, 32 * 1024, RecvFlags{.waitall = true});
  sim.RunFor(Milliseconds(1));
  client->Send(out.data() + 32 * 1024, 32 * 1024);  // direct leg
  sim.Run();

  InvariantReport report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.events_checked, 0u);
  EXPECT_EQ(report.dropped_events, 0u);
  EXPECT_NE(report.Summary().find("invariants hold"), std::string::npos);
}

TEST(InvariantCheckerTest, CleanSeqPacketRunPasses) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 6, true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kSeqPacket);
  client->EnableTracing();
  server->EnableTracing();
  std::vector<std::uint8_t> out(8 * 1024), in(8 * 1024);
  FillPattern(out.data(), out.size(), 0, 2);

  for (int i = 0; i < 4; ++i) {
    server->Recv(in.data() + i * 2048, 2048);
    client->Send(out.data() + i * 2048, 2048);
    sim.RunFor(Microseconds(50));
  }
  sim.Run();

  InvariantReport report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 2), in.size());
}

// ---------------------------------------------------------------------------
// Negative coverage, rule by rule, on synthetic traces.
// ---------------------------------------------------------------------------

TEST(InvariantCheckerTest, NotEnabledIsReported) {
  TraceLog log;  // never enabled
  InvariantReport report = CheckStreamSenderTrace(log);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, "tracing was not enabled"));
}

TEST(InvariantCheckerTest, StaleAdvertAcceptanceFires) {
  TraceLog log;
  log.Enable();
  // Sender sits in indirect phase 1; the accepted ADVERT still carries
  // direct phase 0 — exactly the Fig. 8 staleness the filter must stop.
  log.Record(Ev(TraceEventType::kAdvertAccepted, 0, 1, 4096, 0, 0));
  InvariantReport report = CheckStreamSenderTrace(log);
  EXPECT_TRUE(HasViolation(report, "stale ADVERT accepted"));
}

TEST(InvariantCheckerTest, PostedByteGapFires) {
  TraceLog log;
  log.Enable();
  log.Record(Ev(TraceEventType::kDirectPosted, 0, 0, 100));
  log.Record(Ev(TraceEventType::kDirectPosted, 150, 0, 10));  // gap of 50
  InvariantReport report = CheckStreamSenderTrace(log);
  EXPECT_TRUE(HasViolation(report, "posted byte sequence not contiguous"));
}

TEST(InvariantCheckerTest, ZeroLengthPostFires) {
  TraceLog log;
  log.Enable();
  log.Record(Ev(TraceEventType::kIndirectPosted, 0, 1, 0));
  EXPECT_TRUE(
      HasViolation(CheckStreamSenderTrace(log), "zero-length transfer"));
}

TEST(InvariantCheckerTest, ReceivedByteGapFires) {
  TraceLog log;
  log.Enable();
  log.Record(Ev(TraceEventType::kDirectArrived, 100, 0, 100));
  log.Record(Ev(TraceEventType::kDirectArrived, 250, 0, 100));  // gap of 50
  InvariantReport report = CheckStreamReceiverTrace(log);
  EXPECT_TRUE(HasViolation(report, "received byte sequence not contiguous"));
}

TEST(InvariantCheckerTest, RingOverflowFires) {
  TraceLog log;
  log.Enable();
  log.Record(Ev(TraceEventType::kIndirectArrived, 0, 1, 300));
  InvariantCheckOptions opts;
  opts.rx_ring_capacity = 256;
  InvariantReport report = CheckStreamReceiverTrace(log, opts);
  EXPECT_TRUE(HasViolation(report, "intermediate buffer overflow"));
}

TEST(InvariantCheckerTest, CopyOutBeyondOccupancyFires) {
  TraceLog log;
  log.Enable();
  log.Record(Ev(TraceEventType::kCopyOut, 50, 1, 50));  // nothing buffered
  InvariantReport report = CheckStreamReceiverTrace(log);
  EXPECT_TRUE(HasViolation(report, "copy-out of more bytes"));
}

TEST(InvariantCheckerTest, AdvertWhileBufferedFires) {
  TraceLog log;
  log.Enable();
  log.Record(Ev(TraceEventType::kIndirectArrived, 0, 1, 64));
  log.Record(Ev(TraceEventType::kAdvertSent, 0, 2, 4096, 0, 2));
  InvariantReport report = CheckStreamReceiverTrace(log);
  EXPECT_TRUE(HasViolation(report, "Fig. 3 gate violated"));
}

TEST(InvariantCheckerTest, DirectArrivalWhileBufferedFires) {
  TraceLog log;
  log.Enable();
  log.Record(Ev(TraceEventType::kIndirectArrived, 0, 1, 64));
  log.Record(Ev(TraceEventType::kDirectArrived, 32, 2, 32));
  InvariantReport report = CheckStreamReceiverTrace(log);
  EXPECT_TRUE(HasViolation(report, "safety theorem violated"));
}

TEST(InvariantCheckerTest, SeqPacketAdvertCounterGapFires) {
  TraceLog log;
  log.Enable();
  log.Record(Ev(TraceEventType::kAdvertSent, 0, 0, 2048, 1));
  log.Record(Ev(TraceEventType::kAdvertSent, 0, 0, 2048, 3));  // skipped 2
  InvariantReport report = CheckSeqPacketReceiverTrace(log);
  EXPECT_TRUE(HasViolation(report, "ADVERT counter gap"));
}

TEST(InvariantCheckerTest, SeqPacketRejectsStreamOnlyEvents) {
  TraceLog log;
  log.Enable();
  log.Record(Ev(TraceEventType::kCopyOut, 64, 0, 64));
  InvariantReport report = CheckSeqPacketReceiverTrace(log);
  EXPECT_TRUE(HasViolation(report, "stream-only event"));
}

TEST(InvariantCheckerTest, SeqPacketRejectsNonzeroPhase) {
  TraceLog log;
  log.Enable();
  log.Record(Ev(TraceEventType::kDirectPosted, 0, 2, 64));
  InvariantReport report = CheckSeqPacketSenderTrace(log);
  EXPECT_TRUE(HasViolation(report, "nonzero phase"));
}

TEST(InvariantCheckerTest, SeqPacketWrongHalfFires) {
  TraceLog log;
  log.Enable();
  log.Record(Ev(TraceEventType::kDirectArrived, 64, 0, 64));
  InvariantReport report = CheckSeqPacketSenderTrace(log);
  EXPECT_TRUE(HasViolation(report, "wrong connection half"));
}

TEST(InvariantCheckerTest, SeqPacketConservationFires) {
  TraceLog tx, rx;
  tx.Enable();
  rx.Enable();
  tx.Record(Ev(TraceEventType::kAdvertReceived, 0, 0, 2048, 1));
  tx.Record(Ev(TraceEventType::kDirectPosted, 0, 0, 2048));
  tx.Record(Ev(TraceEventType::kDirectPosted, 2048, 0, 2048));
  rx.Record(Ev(TraceEventType::kAdvertSent, 0, 0, 2048, 1));
  rx.Record(Ev(TraceEventType::kDirectArrived, 2048, 0, 2048));
  InvariantReport report = CheckSeqPacketPair(tx, rx);
  EXPECT_TRUE(HasViolation(report, "SEQPACKET message conservation failed"));
  EXPECT_TRUE(HasViolation(report, "SEQPACKET byte conservation failed"));
}

// ---------------------------------------------------------------------------
// Truncation: the TraceLog drop counter must surface as a diagnostic.
// ---------------------------------------------------------------------------

TEST(InvariantCheckerTest, TruncatedTraceIsRefusedWithDiagnostic) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 9, true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
  client->EnableTracing(/*capacity=*/2);  // far too small on purpose
  server->EnableTracing(/*capacity=*/2);
  std::vector<std::uint8_t> out(64 * 1024), in(64 * 1024);
  FillPattern(out.data(), out.size(), 0, 3);
  for (int i = 0; i < 4; ++i) {
    server->Recv(in.data() + i * 16 * 1024, 16 * 1024,
                 RecvFlags{.waitall = true});
    sim.RunFor(Microseconds(20));
    client->Send(out.data() + i * 16 * 1024, 16 * 1024);
    sim.RunFor(Microseconds(100));
  }
  sim.Run();

  ASSERT_GT(client->tx_trace().dropped(), 0u);
  InvariantReport report = CheckConnection(*client, *server);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, "trace truncated"));
  EXPECT_TRUE(HasViolation(report, "widen the TraceLog capacity"));
  EXPECT_GT(report.dropped_events, 0u);

  // Opting in to partial validation silences the truncation violation.
  InvariantCheckOptions allow;
  allow.allow_truncated = true;
  InvariantReport partial = CheckStreamSenderTrace(client->tx_trace(), allow);
  EXPECT_FALSE(HasViolation(partial, "trace truncated"));
}

// ---------------------------------------------------------------------------
// End-to-end sabotage: disable a protocol safety rule via the test-only
// hooks and prove the checker catches the resulting violation.
// ---------------------------------------------------------------------------

TEST(InvariantCheckerTest, SabotagedStalenessFilterIsCaught) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 21, true);
  StreamOptions opts;
  opts.sabotage.accept_stale_adverts = true;
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();
  std::vector<std::uint8_t> out(64 * 1024), in(64 * 1024);
  FillPattern(out.data(), out.size(), 0, 4);

  // The StaleAdvertIsDiscarded race: the receive's ADVERT is in flight
  // when the send goes out, so it arrives stale — and the sabotaged
  // sender accepts it instead of discarding.
  try {
    server->Recv(in.data(), 32 * 1024);
    client->Send(out.data(), 16 * 1024);
    sim.Run();
    client->Send(out.data() + 16 * 1024, 16 * 1024);
    sim.Run();
  } catch (const InvariantViolation&) {
    // Runtime checks downstream of the sabotage may fire first; the trace
    // recorded up to that point is what the checker judges.
  }

  InvariantReport report = CheckConnection(*client, *server);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, "stale ADVERT accepted"))
      << report.Summary();
}

TEST(InvariantCheckerTest, SabotagedAdvertGateIsCaught) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 22, true);
  StreamOptions opts;
  opts.sabotage.advertise_without_gate = true;
  opts.intermediate_buffer_bytes = 32 * 1024;
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();
  std::vector<std::uint8_t> out(64 * 1024), in(64 * 1024);
  FillPattern(out.data(), out.size(), 0, 5);

  try {
    // Fill the intermediate buffer first, then post a receive: the
    // sabotaged receiver advertises straight through the Fig. 3 gate.
    client->Send(out.data(), 32 * 1024);
    sim.RunFor(Milliseconds(1));
    server->Recv(in.data(), 8 * 1024);
    sim.RunFor(Microseconds(50));
    client->Send(out.data() + 32 * 1024, 32 * 1024);
    server->Recv(in.data() + 8 * 1024, 56 * 1024, RecvFlags{.waitall = true});
    sim.Run();
  } catch (const InvariantViolation&) {
  }

  InvariantReport report = CheckConnection(*client, *server);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, "Fig. 3 gate violated"))
      << report.Summary();
}

// ---------------------------------------------------------------------------
// Fingerprints: stable for identical traces, sensitive to any field.
// ---------------------------------------------------------------------------

TEST(InvariantCheckerTest, FingerprintIsFieldSensitive) {
  TraceLog a, b;
  a.Enable();
  b.Enable();
  a.Record(Ev(TraceEventType::kDirectPosted, 0, 0, 100));
  b.Record(Ev(TraceEventType::kDirectPosted, 0, 0, 100));
  EXPECT_EQ(TraceFingerprint(a), TraceFingerprint(b));

  b.Record(Ev(TraceEventType::kDirectPosted, 100, 0, 100));
  EXPECT_NE(TraceFingerprint(a), TraceFingerprint(b));

  TraceLog c;
  c.Enable();
  c.Record(Ev(TraceEventType::kDirectPosted, 0, 0, 101));  // len differs
  EXPECT_NE(TraceFingerprint(a), TraceFingerprint(c));
}

}  // namespace
}  // namespace exs
