// Deeper simnet coverage: jitter determinism and bounds, profile sanity,
// multi-flow channel sharing, and CPU accounting under jitter.
#include <gtest/gtest.h>

#include <vector>

#include "simnet/cpu.hpp"
#include "simnet/fabric.hpp"
#include "simnet/link.hpp"
#include "simnet/profile.hpp"

namespace exs::simnet {
namespace {

TEST(CpuJitter, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    EventScheduler sched;
    Cpu cpu(sched);
    cpu.SetJitter(0.3, seed);
    for (int i = 0; i < 50; ++i) cpu.Submit(Microseconds(1), [] {});
    sched.Run();
    return cpu.BusyTime();
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(CpuJitter, StaysWithinConfiguredBounds) {
  EventScheduler sched;
  Cpu cpu(sched);
  cpu.SetJitter(0.25, 3);
  SimDuration nominal = Microseconds(10);
  for (int i = 0; i < 200; ++i) {
    SimDuration before = cpu.BusyTime();
    cpu.Submit(nominal, [] {});
    sched.Run();
    SimDuration cost = cpu.BusyTime() - before;
    EXPECT_GE(cost, static_cast<SimDuration>(nominal * 0.75) - 1);
    EXPECT_LE(cost, static_cast<SimDuration>(nominal * 1.25) + 1);
  }
}

TEST(CpuJitter, ZeroJitterIsExact) {
  EventScheduler sched;
  Cpu cpu(sched);
  for (int i = 0; i < 10; ++i) cpu.Submit(Microseconds(2), [] {});
  sched.Run();
  EXPECT_EQ(cpu.BusyTime(), Microseconds(20));
}

TEST(Profiles, RelativeBandwidthOrdering) {
  auto fdr = HardwareProfile::FdrInfiniBand();
  auto qdr = HardwareProfile::QdrInfiniBand();
  auto roce = HardwareProfile::RoCE10G();
  EXPECT_GT(fdr.link_bandwidth.bytes_per_second,
            qdr.link_bandwidth.bytes_per_second);
  EXPECT_GT(qdr.link_bandwidth.bytes_per_second,
            roce.link_bandwidth.bytes_per_second);
  // FDR wire rate is above memcpy; that gap powers Fig. 9.
  EXPECT_GT(fdr.link_bandwidth.bytes_per_second,
            fdr.memcpy_bandwidth.bytes_per_second);
}

TEST(Profiles, SmallTransferLatencyMatchesPaper) {
  // ib_write_lat for 64 B: ~0.76 us one-way on the FDR testbed.
  auto p = HardwareProfile::FdrInfiniBand();
  SimDuration t = p.send_wr_overhead +
                  p.link_bandwidth.TransmissionTime(64 + 30) +
                  p.propagation + p.recv_delivery_overhead;
  EXPECT_NEAR(ToMicroseconds(t), 0.76, 0.08);
}

TEST(Profiles, BusyPollingVariantKeepsEverythingElse) {
  auto base = HardwareProfile::FdrInfiniBand();
  auto poll = base.WithBusyPolling();
  EXPECT_TRUE(poll.busy_polling);
  EXPECT_FALSE(base.busy_polling);
  EXPECT_EQ(poll.link_bandwidth.bytes_per_second,
            base.link_bandwidth.bytes_per_second);
}

TEST(Profiles, IwarpEmulationFlag) {
  EXPECT_FALSE(HardwareProfile::RoCE10G().emulate_wwi_with_send);
  EXPECT_TRUE(HardwareProfile::Iwarp10G().emulate_wwi_with_send);
}

TEST(Channel, InterleavedFlowsShareBandwidthFifo) {
  // Two logical flows on one channel: serialisation is strictly FIFO, so
  // a burst from flow A delays flow B by exactly A's serialisation time.
  EventScheduler sched;
  ChannelConfig cfg;
  cfg.bandwidth = Bandwidth::GigabytesPerSecond(1.0);
  SimplexChannel ch(sched, cfg);
  std::vector<std::pair<char, SimTime>> arrivals;
  ch.Transmit(10000, [&] { arrivals.emplace_back('A', sched.Now()); });
  ch.Transmit(100, [&] { arrivals.emplace_back('B', sched.Now()); });
  sched.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0].first, 'A');
  EXPECT_EQ(arrivals[0].second, Microseconds(10));
  EXPECT_EQ(arrivals[1].second, Microseconds(10.1));
}

TEST(Channel, ZeroByteMessageStillTravels) {
  EventScheduler sched;
  ChannelConfig cfg;
  cfg.bandwidth = Bandwidth::GigabytesPerSecond(1.0);
  cfg.propagation = Microseconds(3);
  SimplexChannel ch(sched, cfg);
  SimTime arrival = ch.Transmit(0, [] {});
  EXPECT_EQ(arrival, Microseconds(3));
}

TEST(Fabric, SeedsPropagateToChannels) {
  // Different fabric seeds give different jitter streams (visible through
  // delivery times when jitter is on).
  auto profile = HardwareProfile::RoCE10GWithDelay(0, Microseconds(50));
  auto deliveries = [&](std::uint64_t seed) {
    Fabric f(profile, seed);
    std::vector<SimTime> times;
    for (int i = 0; i < 10; ++i) {
      f.channel_from(0).Transmit(
          100, [&] { times.push_back(f.scheduler().Now()); });
    }
    f.scheduler().Run();
    return times;
  };
  EXPECT_NE(deliveries(1), deliveries(2));
  EXPECT_EQ(deliveries(3), deliveries(3));
}

TEST(Fabric, NodesHaveIndependentCpus) {
  Fabric f(HardwareProfile::FdrInfiniBand(), 1);
  f.node(0).cpu().Submit(Microseconds(5), [] {});
  f.scheduler().Run();
  EXPECT_GT(f.node(0).cpu().BusyTime(), 0);
  EXPECT_EQ(f.node(1).cpu().BusyTime(), 0);
}

}  // namespace
}  // namespace exs::simnet
