// Traffic-generator determinism and distribution tests.
//
// The golden pins freeze the exact sample trains at fixed seeds: the
// arrival processes and samplers are pure functions of an Rng, so any
// change to draw order or arithmetic shows up as a golden mismatch here
// before it silently shifts every bench result.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "exs/loadgen/arrivals.hpp"
#include "exs/loadgen/popularity.hpp"
#include "exs/loadgen/workload.hpp"

namespace exs::loadgen {
namespace {

// ---- golden pins --------------------------------------------------------

TEST(PoissonGolden, FirstGapsAtSeed42) {
  Rng rng(42);
  PoissonProcess poisson(Microseconds(1));
  const std::vector<SimDuration> expected = {
      87589, 476392, 1139569, 2586181, 4804098, 1468543, 1270321, 1897176,
  };
  std::vector<SimDuration> got;
  for (std::size_t i = 0; i < expected.size(); ++i) got.push_back(poisson.Next(rng));
  EXPECT_EQ(got, expected);
}

TEST(OnOffGolden, BurstTrainAtSeed7) {
  Rng rng(7);
  OnOffBurstProcess proc(OnOffBurstProcess::Options{});
  const std::vector<SimDuration> expected = {
      1205896, 1830255, 4695125, 62675,  517022, 779506,
      2796317, 600421,  296652,  170195, 188049, 1100974,
  };
  std::vector<SimDuration> got;
  for (std::size_t i = 0; i < expected.size(); ++i) got.push_back(proc.Next(rng));
  EXPECT_EQ(got, expected);
  EXPECT_EQ(proc.bursts_started(), 1u);
}

TEST(ZipfGolden, FirstRanksAtSeed99) {
  Rng rng(99);
  ZipfSampler zipf(1024, 0.99);
  const std::vector<std::uint64_t> expected = {
      6, 36, 8, 344, 202, 2, 3, 0, 320, 43, 143, 1,
  };
  std::vector<std::uint64_t> got;
  for (std::size_t i = 0; i < expected.size(); ++i) got.push_back(zipf.Sample(rng));
  EXPECT_EQ(got, expected);
}

TEST(WorkloadGolden, RequestTrainAtSeed1234) {
  WorkloadGenerator gen(WorkloadOptions{}, 1234);
  struct Pin {
    rpc::Op op;
    const char* key;
    std::uint32_t value_len;
  };
  const std::vector<Pin> expected = {
      {rpc::Op::kPut, "k0", 256},  {rpc::Op::kGet, "k1305", 0},
      {rpc::Op::kGet, "k1603", 0}, {rpc::Op::kGet, "k2", 0},
      {rpc::Op::kGet, "k180", 0},  {rpc::Op::kGet, "k3", 0},
      {rpc::Op::kGet, "k178", 0},  {rpc::Op::kGet, "k945", 0},
  };
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const WorkloadGenerator::Request r = gen.Next();
    EXPECT_EQ(static_cast<int>(r.op), static_cast<int>(expected[i].op))
        << "request " << i;
    EXPECT_EQ(r.key, expected[i].key) << "request " << i;
    EXPECT_EQ(r.value_len, expected[i].value_len) << "request " << i;
  }
}

// ---- properties ---------------------------------------------------------

TEST(PoissonProperty, MeanAndVarianceMatchExponential) {
  Rng rng(2024);
  const SimDuration mean = Microseconds(2);
  PoissonProcess poisson(mean);
  constexpr int kSamples = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double g = static_cast<double>(poisson.Next(rng));
    sum += g;
    sum_sq += g * g;
  }
  const double m = sum / kSamples;
  const double var = sum_sq / kSamples - m * m;
  const double target = static_cast<double>(mean);
  EXPECT_NEAR(m, target, 0.02 * target);
  // Exponential: variance == mean^2.
  EXPECT_NEAR(var, target * target, 0.05 * target * target);
}

TEST(OnOffProperty, BurstSizeMatchesGeometricMean) {
  Rng rng(5150);
  OnOffBurstProcess::Options opts;
  opts.mean_burst_size = 8.0;
  OnOffBurstProcess proc(opts);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) proc.Next(rng);
  const double mean_burst =
      static_cast<double>(kSamples) / static_cast<double>(proc.bursts_started());
  EXPECT_NEAR(mean_burst, 8.0, 0.5);
}

TEST(ZipfProperty, RankFrequencyDecreasesAndTopMatches) {
  Rng rng(77);
  ZipfSampler zipf(256, 0.99);
  constexpr int kSamples = 200000;
  std::vector<std::uint64_t> counts(256, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(rng)];
  // Head ranks strictly dominate the tail.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[7]);
  EXPECT_GT(counts[7], counts[255]);
  const double top = static_cast<double>(counts[0]) / kSamples;
  EXPECT_NEAR(top, zipf.TopProbability(), 0.01);
}

TEST(ZipfProperty, ThetaZeroIsUniform) {
  Rng rng(31);
  ZipfSampler zipf(64, 0.0);
  constexpr int kSamples = 128000;
  std::vector<std::uint64_t> counts(64, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(rng)];
  for (std::uint64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kSamples / 64.0, 0.15 * kSamples / 64.0);
  }
}

TEST(SizeMixProperty, FrequenciesTrackWeights) {
  Rng rng(11);
  SizeMix mix({{64, 6.0}, {256, 3.0}, {480, 1.0}});
  EXPECT_EQ(mix.MaxBytes(), 480u);
  EXPECT_NEAR(mix.MeanBytes(), (64 * 6.0 + 256 * 3.0 + 480 * 1.0) / 10.0, 1e-9);
  constexpr int kSamples = 100000;
  std::map<std::uint32_t, int> counts;
  for (int i = 0; i < kSamples; ++i) ++counts[mix.Sample(rng)];
  EXPECT_NEAR(counts[64] / double(kSamples), 0.6, 0.02);
  EXPECT_NEAR(counts[256] / double(kSamples), 0.3, 0.02);
  EXPECT_NEAR(counts[480] / double(kSamples), 0.1, 0.02);
}

TEST(WorkloadProperty, OpMixAndDeterminism) {
  WorkloadOptions opts;
  WorkloadGenerator a(opts, 555), b(opts, 555), c(opts, 556);
  constexpr int kSamples = 50000;
  int gets = 0, puts = 0, dels = 0, diverged = 0;
  for (int i = 0; i < kSamples; ++i) {
    const auto ra = a.Next();
    const auto rb = b.Next();
    const auto rc = c.Next();
    EXPECT_EQ(ra.key, rb.key);
    EXPECT_EQ(static_cast<int>(ra.op), static_cast<int>(rb.op));
    EXPECT_EQ(ra.value_len, rb.value_len);
    if (ra.key != rc.key || ra.op != rc.op) ++diverged;
    switch (ra.op) {
      case rpc::Op::kGet: ++gets; break;
      case rpc::Op::kPut:
        ++puts;
        EXPECT_GT(ra.value_len, 0u);
        break;
      case rpc::Op::kDel: ++dels; break;
    }
  }
  EXPECT_GT(diverged, kSamples / 2);  // different seed, different train
  EXPECT_NEAR(gets / double(kSamples), 0.70, 0.02);
  EXPECT_NEAR(puts / double(kSamples), 0.25, 0.02);
  EXPECT_NEAR(dels / double(kSamples), 0.05, 0.02);
}

TEST(WorkloadProperty, FillValueIsDeterministicAndKeyed) {
  std::uint8_t a1[64], a2[64], b[64];
  WorkloadGenerator::FillValue("k17", a1, sizeof a1);
  WorkloadGenerator::FillValue("k17", a2, sizeof a2);
  WorkloadGenerator::FillValue("k18", b, sizeof b);
  EXPECT_EQ(0, std::memcmp(a1, a2, sizeof a1));
  EXPECT_NE(0, std::memcmp(a1, b, sizeof a1));
  // A prefix fill matches the prefix of a longer fill (byte i depends
  // only on (key, i)).
  std::uint8_t short_fill[16];
  WorkloadGenerator::FillValue("k17", short_fill, sizeof short_fill);
  EXPECT_EQ(0, std::memcmp(a1, short_fill, sizeof short_fill));
}

}  // namespace
}  // namespace exs::loadgen
