// The software verbs layer: registration/keys, SEND/RECV channel
// semantics, RDMA WRITE (WITH IMM), RDMA READ, inline data, in-order
// delivery, receiver-not-ready errors, and completion timing.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"
#include "verbs/queue_pair.hpp"

namespace exs::verbs {
namespace {

class VerbsTest : public ::testing::Test {
 protected:
  VerbsTest()
      : fabric_(simnet::HardwareProfile::FdrInfiniBand(), 5),
        dev0_(fabric_, 0),
        dev1_(fabric_, 1),
        send_cq0_(dev0_.CreateCompletionQueue()),
        recv_cq0_(dev0_.CreateCompletionQueue()),
        send_cq1_(dev1_.CreateCompletionQueue()),
        recv_cq1_(dev1_.CreateCompletionQueue()),
        qp0_(dev0_, *send_cq0_, *recv_cq0_),
        qp1_(dev1_, *send_cq1_, *recv_cq1_) {
    QueuePair::ConnectPair(qp0_, qp1_);
  }

  static Sge MakeSge(const void* addr, std::uint32_t len, std::uint32_t key) {
    return Sge{reinterpret_cast<std::uint64_t>(addr), len, key};
  }

  simnet::Fabric fabric_;
  Device dev0_, dev1_;
  std::unique_ptr<CompletionQueue> send_cq0_, recv_cq0_, send_cq1_, recv_cq1_;
  QueuePair qp0_, qp1_;
};

TEST_F(VerbsTest, RegistrationProducesDistinctKeys) {
  std::vector<std::uint8_t> buf(128);
  auto mr = dev0_.RegisterMemory(buf.data(), buf.size());
  EXPECT_NE(mr->lkey(), mr->rkey());
  EXPECT_EQ(dev0_.FindByLkey(mr->lkey()), mr.get());
  EXPECT_EQ(dev0_.FindByRkey(mr->rkey()), mr.get());
  EXPECT_TRUE(mr->Covers(reinterpret_cast<std::uint64_t>(buf.data()), 128));
  EXPECT_FALSE(mr->Covers(reinterpret_cast<std::uint64_t>(buf.data()) + 1,
                          128));
  dev0_.DeregisterMemory(mr);
  EXPECT_EQ(dev0_.FindByLkey(mr->lkey()), nullptr);
  EXPECT_TRUE(mr->invalidated());
}

TEST_F(VerbsTest, SendRecvMovesBytes) {
  std::vector<std::uint8_t> src(1024), dst(1024, 0);
  FillPattern(src.data(), src.size(), 0, 42);
  auto src_mr = dev0_.RegisterMemory(src.data(), src.size());
  auto dst_mr = dev1_.RegisterMemory(dst.data(), dst.size());

  qp1_.PostRecv({.wr_id = 7, .sge = MakeSge(dst.data(), 1024, dst_mr->lkey())});
  qp0_.PostSend({.wr_id = 9,
                 .opcode = Opcode::kSend,
                 .sge = MakeSge(src.data(), 1024, src_mr->lkey())});
  fabric_.scheduler().Run();

  WorkCompletion wc;
  ASSERT_TRUE(recv_cq1_->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 7u);
  EXPECT_EQ(wc.opcode, WcOpcode::kRecv);
  EXPECT_EQ(wc.status, WcStatus::kSuccess);
  EXPECT_EQ(wc.byte_len, 1024u);
  EXPECT_EQ(VerifyPattern(dst.data(), dst.size(), 0, 42), dst.size());

  ASSERT_TRUE(send_cq0_->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 9u);
  EXPECT_EQ(wc.opcode, WcOpcode::kSend);
  EXPECT_EQ(wc.status, WcStatus::kSuccess);
}

TEST_F(VerbsTest, RdmaWriteIsInvisibleToReceiverQueue) {
  std::vector<std::uint8_t> src(512), dst(512, 0);
  FillPattern(src.data(), src.size(), 0, 8);
  auto src_mr = dev0_.RegisterMemory(src.data(), src.size());
  auto dst_mr = dev1_.RegisterMemory(dst.data(), dst.size());

  SendWorkRequest wr;
  wr.wr_id = 1;
  wr.opcode = Opcode::kRdmaWrite;
  wr.sge = MakeSge(src.data(), 512, src_mr->lkey());
  wr.remote_addr = reinterpret_cast<std::uint64_t>(dst.data());
  wr.rkey = dst_mr->rkey();
  qp0_.PostSend(wr);
  fabric_.scheduler().Run();

  EXPECT_EQ(VerifyPattern(dst.data(), dst.size(), 0, 8), dst.size());
  WorkCompletion wc;
  EXPECT_FALSE(recv_cq1_->Poll(&wc));  // receiver completely passive
  ASSERT_TRUE(send_cq0_->Poll(&wc));
  EXPECT_EQ(wc.status, WcStatus::kSuccess);
}

TEST_F(VerbsTest, WriteWithImmConsumesRecvAndCarriesImm) {
  std::vector<std::uint8_t> src(256), dst(256, 0), unused(16);
  FillPattern(src.data(), src.size(), 0, 3);
  auto src_mr = dev0_.RegisterMemory(src.data(), src.size());
  auto dst_mr = dev1_.RegisterMemory(dst.data(), dst.size());
  auto unused_mr = dev1_.RegisterMemory(unused.data(), unused.size());

  qp1_.PostRecv(
      {.wr_id = 5, .sge = MakeSge(unused.data(), 16, unused_mr->lkey())});

  SendWorkRequest wr;
  wr.wr_id = 2;
  wr.opcode = Opcode::kRdmaWriteWithImm;
  wr.sge = MakeSge(src.data(), 256, src_mr->lkey());
  wr.remote_addr = reinterpret_cast<std::uint64_t>(dst.data());
  wr.rkey = dst_mr->rkey();
  wr.has_imm = true;
  wr.imm = 0xdeadbeef;
  qp0_.PostSend(wr);
  fabric_.scheduler().Run();

  WorkCompletion wc;
  ASSERT_TRUE(recv_cq1_->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 5u);
  EXPECT_EQ(wc.opcode, WcOpcode::kRecvRdmaWithImm);
  EXPECT_TRUE(wc.has_imm);
  EXPECT_EQ(wc.imm, 0xdeadbeefu);
  EXPECT_EQ(wc.byte_len, 256u);
  // Data landed in the RDMA target, not the posted receive buffer.
  EXPECT_EQ(VerifyPattern(dst.data(), dst.size(), 0, 3), dst.size());
  EXPECT_EQ(qp1_.PostedRecvCount(), 0u);
}

TEST_F(VerbsTest, RdmaReadFetchesRemoteMemory) {
  std::vector<std::uint8_t> remote(2048), local(2048, 0);
  FillPattern(remote.data(), remote.size(), 0, 77);
  auto remote_mr = dev1_.RegisterMemory(remote.data(), remote.size());
  auto local_mr = dev0_.RegisterMemory(local.data(), local.size());

  SendWorkRequest wr;
  wr.wr_id = 3;
  wr.opcode = Opcode::kRdmaRead;
  wr.sge = MakeSge(local.data(), 2048, local_mr->lkey());
  wr.remote_addr = reinterpret_cast<std::uint64_t>(remote.data());
  wr.rkey = remote_mr->rkey();
  qp0_.PostSend(wr);
  fabric_.scheduler().Run();

  WorkCompletion wc;
  ASSERT_TRUE(send_cq0_->Poll(&wc));
  EXPECT_EQ(wc.opcode, WcOpcode::kRdmaRead);
  EXPECT_EQ(wc.status, WcStatus::kSuccess);
  EXPECT_EQ(VerifyPattern(local.data(), local.size(), 0, 77), local.size());
}

TEST_F(VerbsTest, InlineSendDoesNotNeedRegistration) {
  std::uint8_t payload[64];
  FillPattern(payload, sizeof(payload), 0, 1);
  std::vector<std::uint8_t> dst(64, 0);
  auto dst_mr = dev1_.RegisterMemory(dst.data(), dst.size());
  qp1_.PostRecv({.wr_id = 1, .sge = MakeSge(dst.data(), 64, dst_mr->lkey())});

  SendWorkRequest wr;
  wr.opcode = Opcode::kSend;
  wr.inline_data = true;
  wr.sge = MakeSge(payload, sizeof(payload), /*lkey=*/0);
  qp0_.PostSend(wr);
  // The payload was captured at post time; scribbling on it now is safe.
  std::memset(payload, 0, sizeof(payload));
  fabric_.scheduler().Run();

  EXPECT_EQ(VerifyPattern(dst.data(), dst.size(), 0, 1), dst.size());
}

TEST_F(VerbsTest, OversizeInlineThrows) {
  std::vector<std::uint8_t> payload(dev0_.max_inline() + 1);
  SendWorkRequest wr;
  wr.opcode = Opcode::kSend;
  wr.inline_data = true;
  wr.sge = MakeSge(payload.data(),
                   static_cast<std::uint32_t>(payload.size()), 0);
  EXPECT_THROW(qp0_.PostSend(wr), InvariantViolation);
}

TEST_F(VerbsTest, UnregisteredSendThrows) {
  std::vector<std::uint8_t> buf(128);
  SendWorkRequest wr;
  wr.opcode = Opcode::kSend;
  wr.sge = MakeSge(buf.data(), 128, /*bogus lkey=*/4242);
  EXPECT_THROW(qp0_.PostSend(wr), InvariantViolation);
}

TEST_F(VerbsTest, ArrivalWithoutRecvIsRnrError) {
  std::vector<std::uint8_t> src(64);
  auto src_mr = dev0_.RegisterMemory(src.data(), src.size());
  qp0_.PostSend({.wr_id = 11,
                 .opcode = Opcode::kSend,
                 .sge = MakeSge(src.data(), 64, src_mr->lkey())});
  fabric_.scheduler().Run();

  WorkCompletion wc;
  ASSERT_TRUE(send_cq0_->Poll(&wc));
  EXPECT_EQ(wc.status, WcStatus::kRnrError);
  EXPECT_EQ(qp1_.stats().rnr_errors, 1u);
}

TEST_F(VerbsTest, SendLargerThanRecvBufferIsLengthError) {
  std::vector<std::uint8_t> src(256), dst(64);
  auto src_mr = dev0_.RegisterMemory(src.data(), src.size());
  auto dst_mr = dev1_.RegisterMemory(dst.data(), dst.size());
  qp1_.PostRecv({.wr_id = 1, .sge = MakeSge(dst.data(), 64, dst_mr->lkey())});
  qp0_.PostSend({.wr_id = 2,
                 .opcode = Opcode::kSend,
                 .sge = MakeSge(src.data(), 256, src_mr->lkey())});
  fabric_.scheduler().Run();

  WorkCompletion wc;
  ASSERT_TRUE(recv_cq1_->Poll(&wc));
  EXPECT_EQ(wc.status, WcStatus::kLocalLengthError);
  ASSERT_TRUE(send_cq0_->Poll(&wc));
  EXPECT_EQ(wc.status, WcStatus::kLocalLengthError);
}

TEST_F(VerbsTest, BadRkeyIsRemoteAccessError) {
  std::vector<std::uint8_t> src(64), dst(64);
  auto src_mr = dev0_.RegisterMemory(src.data(), src.size());
  SendWorkRequest wr;
  wr.opcode = Opcode::kRdmaWrite;
  wr.sge = MakeSge(src.data(), 64, src_mr->lkey());
  wr.remote_addr = reinterpret_cast<std::uint64_t>(dst.data());
  wr.rkey = 999999;
  qp0_.PostSend(wr);
  fabric_.scheduler().Run();

  WorkCompletion wc;
  ASSERT_TRUE(send_cq0_->Poll(&wc));
  EXPECT_EQ(wc.status, WcStatus::kRemoteAccessError);
}

TEST_F(VerbsTest, DeliveriesStayInOrder) {
  constexpr int kMessages = 64;
  std::vector<std::uint8_t> src(kMessages), dst(kMessages, 0xff);
  auto src_mr = dev0_.RegisterMemory(src.data(), src.size());
  auto dst_mr = dev1_.RegisterMemory(dst.data(), dst.size());
  for (int i = 0; i < kMessages; ++i) {
    src[i] = static_cast<std::uint8_t>(i);
    qp1_.PostRecv({.wr_id = static_cast<std::uint64_t>(i),
                   .sge = MakeSge(dst.data() + i, 1, dst_mr->lkey())});
  }
  for (int i = 0; i < kMessages; ++i) {
    qp0_.PostSend({.wr_id = static_cast<std::uint64_t>(i),
                   .opcode = Opcode::kSend,
                   .sge = MakeSge(src.data() + i, 1, src_mr->lkey())});
  }
  fabric_.scheduler().Run();

  WorkCompletion wc;
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(recv_cq1_->Poll(&wc));
    EXPECT_EQ(wc.wr_id, static_cast<std::uint64_t>(i));
  }
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(dst[i], static_cast<std::uint8_t>(i));
  }
}

TEST_F(VerbsTest, CompletionHandlerPaysNotificationLatency) {
  std::vector<std::uint8_t> src(64), dst(64);
  auto src_mr = dev0_.RegisterMemory(src.data(), src.size());
  auto dst_mr = dev1_.RegisterMemory(dst.data(), dst.size());

  SimTime handled_at = -1;
  recv_cq1_->SetHandler([&](const WorkCompletion&) {
    handled_at = fabric_.scheduler().Now();
  });
  qp1_.PostRecv({.wr_id = 1, .sge = MakeSge(dst.data(), 64, dst_mr->lkey())});
  qp0_.PostSend({.wr_id = 2,
                 .opcode = Opcode::kSend,
                 .sge = MakeSge(src.data(), 64, src_mr->lkey())});
  fabric_.scheduler().Run();

  const auto& p = fabric_.profile();
  // Arrival + delivery overhead + notify wake-up + per-event CPU, with
  // both the notification delay and the CPU cost subject to their
  // modelled jitter fractions.
  double floor_factor = (1.0 - p.notify_jitter);
  SimTime expected_min =
      p.send_wr_overhead + p.link_bandwidth.TransmissionTime(64) +
      p.propagation + p.recv_delivery_overhead +
      static_cast<SimTime>(
          static_cast<double>(p.completion_notify_delay) * floor_factor) +
      static_cast<SimTime>(static_cast<double>(p.per_event_cpu) *
                           (1.0 - p.cpu_jitter));
  EXPECT_GE(handled_at, expected_min);
  EXPECT_EQ(recv_cq1_->TotalCompletions(), 1u);
}

TEST_F(VerbsTest, WanAckDelaysSendCompletion) {
  // Over the emulated 48 ms RTT path, a send completion waits for the
  // transport ACK: roughly one-way data + one-way ack.
  simnet::Fabric wan(simnet::HardwareProfile::RoCE10GWithDelay(
                         Milliseconds(24)),
                     1);
  Device d0(wan, 0), d1(wan, 1);
  auto scq = d0.CreateCompletionQueue();
  auto rcq0 = d0.CreateCompletionQueue();
  auto scq1 = d1.CreateCompletionQueue();
  auto rcq = d1.CreateCompletionQueue();
  QueuePair q0(d0, *scq, *rcq0), q1(d1, *scq1, *rcq);
  QueuePair::ConnectPair(q0, q1);

  std::vector<std::uint8_t> src(1000), dst(1000);
  auto src_mr = d0.RegisterMemory(src.data(), src.size());
  auto dst_mr = d1.RegisterMemory(dst.data(), dst.size());
  q1.PostRecv({.wr_id = 1, .sge = MakeSge(dst.data(), 1000, dst_mr->lkey())});
  q0.PostSend({.wr_id = 2,
               .opcode = Opcode::kSend,
               .sge = MakeSge(src.data(), 1000, src_mr->lkey())});
  wan.scheduler().Run();

  WorkCompletion wc;
  ASSERT_TRUE(scq->Poll(&wc));
  EXPECT_GE(wan.scheduler().Now(), Milliseconds(48));
}

}  // namespace
}  // namespace exs::verbs
