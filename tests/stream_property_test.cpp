// Property-based validation of the safety theorem: under randomized send
// and receive patterns — arbitrary sizes, timing offsets, WAITALL mixes,
// and forced-mode baselines — every byte of the receive stream equals the
// corresponding byte of the send stream, and the endpoints agree on
// sequence numbers once quiescent.
//
// The position-dependent payload pattern detects loss, duplication, and
// reordering, not just corruption; a single misrouted direct transfer
// (the failure Figs. 6 and 8 illustrate) fails these sweeps immediately.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/pattern.hpp"
#include "common/rng.hpp"
#include "exs/exs.hpp"
#include "exs/invariant_checker.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

struct PropertyParams {
  std::uint64_t seed;
  ProtocolMode mode;
  std::uint64_t buffer_bytes;
  bool small_messages;
  bool coalesce = false;
};

std::string ParamName(const ::testing::TestParamInfo<PropertyParams>& info) {
  const auto& p = info.param;
  std::string mode = ToString(p.mode);
  std::replace(mode.begin(), mode.end(), '-', '_');
  return "seed" + std::to_string(p.seed) + "_" + mode + "_buf" +
         std::to_string(p.buffer_bytes / 1024) + "k" +
         (p.small_messages ? "_small" : "_large") +
         (p.coalesce ? "_coal" : "");
}

class StreamPropertyTest : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(StreamPropertyTest, RandomizedStreamIntegrity) {
  const PropertyParams& p = GetParam();
  StreamOptions opts;
  opts.mode = p.mode;
  opts.intermediate_buffer_bytes = p.buffer_bytes;
  opts.coalesce.enabled = p.coalesce;

  Simulation sim(HardwareProfile::FdrInfiniBand(), p.seed,
                 /*carry_payload=*/true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();

  Rng rng(p.seed);
  const std::uint64_t max_size = p.small_messages ? 2 * 1024 : 64 * 1024;
  const std::uint64_t total = p.small_messages ? 64 * 1024 : 768 * 1024;

  std::vector<std::uint8_t> out(total);
  FillPattern(out.data(), out.size(), 0, p.seed);
  std::vector<std::uint8_t> in(total, 0);

  // A byte stream does not align to application buffers, so the receive
  // side drains into scratch buffers and appends completed bytes to `in`
  // in completion order — exactly how a sockets application consumes a
  // stream.
  constexpr std::size_t kScratch = 6;
  std::vector<std::vector<std::uint8_t>> scratch(
      kScratch, std::vector<std::uint8_t>(max_size));
  std::vector<std::size_t> free_scratch;
  for (std::size_t i = 0; i < kScratch; ++i) free_scratch.push_back(i);

  struct Posted {
    std::size_t scratch_index;
    std::uint64_t len;
  };
  std::unordered_map<std::uint64_t, Posted> posted;

  std::uint64_t send_off = 0;
  std::uint64_t recv_done = 0;
  std::uint64_t pending_posted = 0;  // invariant: recv_done + pending <= total

  server->events().SetHandler([&](const Event& ev) {
    ASSERT_EQ(ev.type, EventType::kRecvComplete);
    auto it = posted.find(ev.id);
    ASSERT_NE(it, posted.end());
    Posted rec = it->second;
    posted.erase(it);
    ASSERT_LE(ev.bytes, rec.len);
    std::memcpy(in.data() + recv_done, scratch[rec.scratch_index].data(),
                ev.bytes);
    recv_done += ev.bytes;
    pending_posted -= rec.len;
    free_scratch.push_back(rec.scratch_index);
  });

  // Interleave postings with short runs of simulated time so the relative
  // order of sends, receives and control traffic varies by seed.
  std::uint64_t guard = 0;
  while (recv_done < total) {
    ASSERT_LT(++guard, 500000u) << "no progress — protocol stuck at "
                                << recv_done << "/" << total;
    bool can_send = send_off < total;
    bool can_recv =
        !free_scratch.empty() && recv_done + pending_posted < total;

    if (can_send && (rng.NextBool() || !can_recv)) {
      std::uint64_t s = rng.NextInRange(1, max_size);
      s = std::min(s, total - send_off);
      client->Send(out.data() + send_off, s);
      send_off += s;
    } else if (can_recv) {
      std::uint64_t room = total - recv_done - pending_posted;
      std::uint64_t r = rng.NextInRange(1, max_size);
      r = std::min(r, room);
      bool waitall = rng.NextBool(0.4);
      std::size_t idx = free_scratch.back();
      free_scratch.pop_back();
      std::uint64_t id =
          server->Recv(scratch[idx].data(), r, RecvFlags{.waitall = waitall});
      posted.emplace(id, Posted{idx, r});
      pending_posted += r;
    }
    sim.RunFor(static_cast<SimDuration>(
        rng.NextInRange(0, static_cast<std::uint64_t>(Microseconds(30)))));
    if (!can_send && !can_recv) sim.Run();
  }
  sim.Run();

  // The properties: exact delivery, in order, no loss or duplication...
  ASSERT_EQ(recv_done, total);
  ASSERT_EQ(VerifyPattern(in.data(), in.size(), 0, p.seed), in.size());
  // ...full quiescence...
  EXPECT_TRUE(client->Quiescent());
  EXPECT_TRUE(server->Quiescent());
  // ...and sequence agreement (S_s == S_r == S'_r == stream length).
  EXPECT_EQ(client->stream_tx()->sequence(), total);
  EXPECT_EQ(server->stream_rx()->sequence(), total);
  EXPECT_EQ(server->stream_rx()->sequence_estimate(), total);
  // Byte accounting across the pair matches.
  EXPECT_EQ(client->stats().direct_bytes + client->stats().indirect_bytes,
            total);
  EXPECT_EQ(server->stats().direct_bytes_received,
            client->stats().direct_bytes);
  EXPECT_EQ(server->stats().indirect_bytes_received,
            client->stats().indirect_bytes);
  // ...and every invariant of the safety theorem held throughout the run.
  InvariantReport invariants = CheckConnection(*client, *server);
  EXPECT_TRUE(invariants.ok()) << invariants.Summary();
  // Coalescing sweeps must actually exercise the staging path: small
  // messages with sparse ADVERTs are its target regime.
  if (p.coalesce && p.small_messages) {
    EXPECT_GT(client->stats().coalesced_sends, 0u);
    EXPECT_GT(client->stats().coalesce_flushes, 0u);
  }
}

std::vector<PropertyParams> MakeParams() {
  std::vector<PropertyParams> params;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull, 7ull, 8ull}) {
    params.push_back({seed, ProtocolMode::kDynamic, 64 * 1024, false});
  }
  for (std::uint64_t seed : {11ull, 12ull, 13ull, 14ull}) {
    params.push_back({seed, ProtocolMode::kDynamic, 8 * 1024, true});
  }
  for (std::uint64_t seed : {21ull, 22ull}) {
    params.push_back({seed, ProtocolMode::kDirectOnly, 64 * 1024, false});
    params.push_back({seed, ProtocolMode::kIndirectOnly, 64 * 1024, false});
  }
  // Pathologically small buffer: maximal wrap and backpressure pressure.
  for (std::uint64_t seed : {31ull, 32ull}) {
    params.push_back({seed, ProtocolMode::kDynamic, 1024, true});
  }
  // Coalescing on: the staging buffer and ACK piggyback must preserve
  // every property above, in their target regime (small messages) and
  // under wrap pressure and large transfers alike.
  for (std::uint64_t seed : {41ull, 42ull, 43ull, 44ull}) {
    params.push_back({seed, ProtocolMode::kDynamic, 8 * 1024, true, true});
  }
  for (std::uint64_t seed : {51ull, 52ull}) {
    params.push_back({seed, ProtocolMode::kDynamic, 64 * 1024, false, true});
  }
  for (std::uint64_t seed : {61ull, 62ull}) {
    params.push_back({seed, ProtocolMode::kDynamic, 1024, true, true});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, StreamPropertyTest,
                         ::testing::ValuesIn(MakeParams()), ParamName);

}  // namespace
}  // namespace exs
