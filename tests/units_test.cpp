#include <gtest/gtest.h>

#include "common/units.hpp"

namespace exs {
namespace {

TEST(Units, ConversionsRoundTrip) {
  EXPECT_EQ(Microseconds(1.0), 1'000'000);
  EXPECT_EQ(Milliseconds(1.0), 1'000'000'000);
  EXPECT_DOUBLE_EQ(ToSeconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(ToMicroseconds(Microseconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(ToMilliseconds(Milliseconds(48.0)), 48.0);
}

TEST(Units, BandwidthTransmissionTime) {
  // 1 GB/s: 1000 bytes serialise in 1 us.
  Bandwidth bw = Bandwidth::GigabytesPerSecond(1.0);
  EXPECT_EQ(bw.TransmissionTime(1000), Microseconds(1.0));
}

TEST(Units, GigabitConstruction) {
  Bandwidth fdr = Bandwidth::GigabitsPerSecond(54.24);
  EXPECT_NEAR(fdr.bytes_per_second, 54.24e9 / 8.0, 1.0);
  EXPECT_NEAR(fdr.GigabitsPerSecondValue(), 54.24, 1e-9);
}

TEST(Units, ZeroBandwidthIsInstant) {
  Bandwidth zero{};
  EXPECT_EQ(zero.TransmissionTime(1 << 20), 0);
}

TEST(Units, ThroughputMbpsMatchesDefinition) {
  // 1 MiB in 1 ms = 8 * 1.048576 Gb/s = 8388.608 Mb/s.
  EXPECT_NEAR(ThroughputMbps(kMiB, Milliseconds(1.0)), 8388.608, 1e-6);
  EXPECT_EQ(ThroughputMbps(123, 0), 0.0);
}

TEST(Units, TransmissionTimeScalesLinearly) {
  Bandwidth bw = Bandwidth::GigabitsPerSecond(10.0);
  SimDuration one = bw.TransmissionTime(1250);  // 1 us at 10 Gb/s
  EXPECT_EQ(one, Microseconds(1.0));
  EXPECT_EQ(bw.TransmissionTime(12500), Microseconds(10.0));
}

}  // namespace
}  // namespace exs
