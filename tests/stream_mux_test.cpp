// Shared-QP stream multiplexing (exs/mux.hpp): directed pins for the mux
// tier — stream-id demultiplexing under interleaved traffic, the
// per-stream credit window parking bulk streams without starving
// cohabitants, bit-exactness of the classic path when the tier is off,
// mid-flight teardown of a muxed socket, virtual kill/resume of one
// stream on a shared QP — plus a seeds x profiles x widths property sweep
// asserting that dedicated and muxed transports deliver byte-identical
// per-stream payloads, all under the invariant checker's mux conservation
// rules (CheckMuxGroupPair).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/pattern.hpp"
#include "common/rng.hpp"
#include "exs/engine/acceptor.hpp"
#include "exs/engine/progress_engine.hpp"
#include "exs/exs.hpp"
#include "exs/invariant_checker.hpp"
#include "exs/mux.hpp"
#include "simnet/faults.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

std::uint64_t CounterValue(Socket* s, const char* name, const char* unit) {
  return s->metrics_registry().GetCounter(name, unit).value();
}

/// FNV-1a over delivered bytes — the equality the dedicated-vs-muxed
/// property is stated over (trace fingerprints legitimately differ: the
/// muxed arm shares QPs, so its completion interleaving differs).
std::uint64_t PayloadFnv(const std::uint8_t* data, std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void ExpectCleanChecker(Socket* client, Socket* server) {
  InvariantReport report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.events_checked, 0u);
}

void ExpectCleanMuxPair(const MuxGroup& a, const MuxGroup& b) {
  InvariantReport report = CheckMuxGroupPair(a, b);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.events_checked, 0u);
}

// ---------------------------------------------------------------------------
// Directed pins.
// ---------------------------------------------------------------------------

// Four streams on one shared QP, chunks posted round-robin so their WWIs
// interleave on the wire: every byte must land at the stream that sent it
// (the stream-id demux), with per-stream continuity and conservation
// audited by the checker.
TEST(StreamMuxTest, InterleavedChunksDemuxToOwningStreams) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), /*seed=*/41);
  MuxOptions mopts;
  mopts.width = 1;
  MuxGroup g0(sim.device(0), mopts);
  MuxGroup g1(sim.device(1), mopts);
  MuxGroup::Connect(g0, g1);

  constexpr int kStreams = 4;
  constexpr std::uint64_t kChunk = 4 * 1024;
  constexpr int kChunks = 8;
  std::vector<std::pair<Socket*, Socket*>> pairs;
  std::vector<std::vector<std::uint8_t>> out(kStreams), in(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    pairs.push_back(sim.CreateMuxedPair(g0, g1));
    pairs[s].first->EnableTracing();
    pairs[s].second->EnableTracing();
    out[s].resize(kChunks * kChunk);
    in[s].resize(kChunks * kChunk);
    FillPattern(out[s].data(), out[s].size(), 0, 100 + s);
    pairs[s].second->Recv(in[s].data(), in[s].size(),
                          RecvFlags{.waitall = true});
  }
  ASSERT_EQ(sim.device(1).QueuePairsCreated(), mopts.width)
      << "muxed pairs must not create per-stream queue pairs";

  // Round-robin posting: chunk i of every stream is in flight together.
  for (int c = 0; c < kChunks; ++c) {
    for (int s = 0; s < kStreams; ++s) {
      pairs[s].first->Send(out[s].data() + c * kChunk, kChunk);
    }
    sim.RunFor(Microseconds(20));
  }
  sim.Run();

  for (int s = 0; s < kStreams; ++s) {
    EXPECT_EQ(VerifyPattern(in[s].data(), in[s].size(), 0, 100 + s),
              in[s].size())
        << "stream " << s << " delivered another stream's bytes";
    EXPECT_TRUE(pairs[s].first->Quiescent() && pairs[s].second->Quiescent());
    ExpectCleanChecker(pairs[s].first, pairs[s].second);
  }
  EXPECT_GT(g0.stats().data_posted, 0u);
  ExpectCleanMuxPair(g0, g1);
}

// A one-WWI per-stream window: both bulk streams repeatedly exhaust their
// own credit and park while the slot QP itself still has §II-B credits —
// the cohabitant keeps flowing, the parked stream wakes on its completion,
// and the waits are accounted in mux.hol_wait / mux.parks.
TEST(StreamMuxTest, PerStreamCreditExhaustionParksWithoutStarving) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), /*seed=*/42);
  MuxOptions mopts;
  mopts.width = 1;
  mopts.per_stream_credits = 1;  // exhausted by every single chunk
  MuxGroup g0(sim.device(0), mopts);
  MuxGroup g1(sim.device(1), mopts);
  MuxGroup::Connect(g0, g1);

  StreamOptions opts;
  opts.max_wwi_chunk = 4 * 1024;  // 24 chunks against a 1-WWI window
  auto [a_tx, a_rx] = sim.CreateMuxedPair(g0, g1, opts);
  auto [b_tx, b_rx] = sim.CreateMuxedPair(g0, g1, opts);
  a_tx->EnableTracing();
  a_rx->EnableTracing();
  b_tx->EnableTracing();
  b_rx->EnableTracing();

  constexpr std::uint64_t kTotal = 96 * 1024;
  std::vector<std::uint8_t> a_out(kTotal), a_in(kTotal);
  std::vector<std::uint8_t> b_out(kTotal), b_in(kTotal);
  FillPattern(a_out.data(), kTotal, 0, 7);
  FillPattern(b_out.data(), kTotal, 0, 8);
  a_rx->Recv(a_in.data(), kTotal, RecvFlags{.waitall = true});
  b_rx->Recv(b_in.data(), kTotal, RecvFlags{.waitall = true});
  a_tx->Send(a_out.data(), kTotal);
  b_tx->Send(b_out.data(), kTotal);

  // The per-stream window must bound outstanding WWIs at every instant,
  // not just at quiescence.
  bool a_parked_seen = false;
  for (int step = 0; step < 4000 && !(a_rx->Quiescent() && b_rx->Quiescent());
       ++step) {
    sim.RunFor(Microseconds(5));
    ASSERT_LE(a_tx->mux_stream()->outstanding(), mopts.per_stream_credits);
    ASSERT_LE(b_tx->mux_stream()->outstanding(), mopts.per_stream_credits);
    a_parked_seen = a_parked_seen || a_tx->mux_stream()->parked();
  }
  sim.Run();

  EXPECT_EQ(VerifyPattern(a_in.data(), kTotal, 0, 7), kTotal);
  EXPECT_EQ(VerifyPattern(b_in.data(), kTotal, 0, 8), kTotal);
  EXPECT_TRUE(a_parked_seen)
      << "a 1-credit window never parked a 96 KiB bulk stream";
  EXPECT_GT(CounterValue(a_tx, "mux.parks", "events"), 0u);
  EXPECT_GT(a_tx->metrics_registry().GetHistogram("mux.hol_wait", "ps").count(),
            0u);
  ExpectCleanChecker(a_tx, a_rx);
  ExpectCleanChecker(b_tx, b_rx);
  ExpectCleanMuxPair(g0, g1);
}

// The tier is strictly opt-in: a classic (dedicated-QP) connection must
// produce the byte-identical trace fingerprint whether or not the same
// simulation hosts connected mux groups with live muxed traffic.  This is
// the "mux off = bit-exact" pin — the wire-format extensions
// (ControlMessage mux fields, the WR mux header) cost classic connections
// nothing.  The mux machinery is created AFTER the classic pair: CQ
// notify-jitter streams are seeded by per-device creation order (a
// pre-existing property independent of this tier — any extra socket
// created first shifts them the same way), and the classic golden-corpus
// suite already pins the classic wire image absolutely.
TEST(StreamMuxTest, MuxOffIsBitIdenticalToClassic) {
  constexpr std::uint64_t kTotal = 64 * 1024;
  auto run_classic = [&](bool with_mux_traffic) {
    Simulation sim(HardwareProfile::FdrInfiniBand(), /*seed=*/43);
    auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
    client->EnableTracing();
    server->EnableTracing();

    std::unique_ptr<MuxGroup> g0, g1;
    Socket* mux_tx = nullptr;
    Socket* mux_rx = nullptr;
    std::vector<std::uint8_t> mux_out(kTotal), mux_in(kTotal);
    if (with_mux_traffic) {
      MuxOptions mopts;
      mopts.width = 2;
      g0 = std::make_unique<MuxGroup>(sim.device(0), mopts);
      g1 = std::make_unique<MuxGroup>(sim.device(1), mopts);
      MuxGroup::Connect(*g0, *g1);
      std::tie(mux_tx, mux_rx) = sim.CreateMuxedPair(*g0, *g1);
      FillPattern(mux_out.data(), kTotal, 0, 10);
    }

    std::vector<std::uint8_t> out(kTotal), in(kTotal);
    FillPattern(out.data(), kTotal, 0, 9);
    server->Recv(in.data(), kTotal, RecvFlags{.waitall = true});
    client->Send(out.data(), kTotal);
    sim.Run();
    EXPECT_EQ(VerifyPattern(in.data(), kTotal, 0, 9), kTotal);
    EXPECT_FALSE(client->Muxed());
    std::uint64_t fp = ConnectionFingerprint(*client, *server);

    if (with_mux_traffic) {
      // Muxed traffic after the classic stream quiesced: shared links and
      // CPUs, zero effect on the already-recorded classic traces.
      mux_rx->Recv(mux_in.data(), kTotal, RecvFlags{.waitall = true});
      mux_tx->Send(mux_out.data(), kTotal);
      sim.Run();
      EXPECT_EQ(VerifyPattern(mux_in.data(), kTotal, 0, 10), kTotal);
      EXPECT_EQ(fp, ConnectionFingerprint(*client, *server))
          << "muxed traffic mutated a quiesced classic connection's trace";
    }
    return fp;
  };
  std::uint64_t pristine = run_classic(false);
  std::uint64_t cohabiting = run_classic(true);
  EXPECT_EQ(pristine, cohabiting)
      << "coexisting mux machinery perturbed a classic connection's trace";
}

// A muxed socket torn down mid-flight (PR-5 zombie/lease rules): its
// in-flight arrivals become accounted orphans, its send completions drain
// through the slot FIFO as orphan completions, and the cohabitant stream
// on the same slot finishes untouched.  Conservation must still balance.
TEST(StreamMuxTest, MuxedTeardownMidFlightLeavesCohabitantIntact) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), /*seed=*/44);
  MuxOptions mopts;
  mopts.width = 1;
  MuxGroup g0(sim.device(0), mopts);
  MuxGroup g1(sim.device(1), mopts);
  MuxGroup::Connect(g0, g1);

  // Built outside the Simulation facade so the test owns the lifetimes.
  SocketWiring wa0, wa1, wc0, wc1;
  wa0.mux_stream = g0.AttachStream(0);
  wa1.mux_stream = g1.AttachStream(0);
  wc0.mux_stream = g0.AttachStream(1);
  wc1.mux_stream = g1.AttachStream(1);
  StreamOptions opts;
  auto a_tx = std::make_unique<Socket>(sim.device(0), SocketType::kStream,
                                       opts, "doomed-tx", std::move(wa0));
  auto a_rx = std::make_unique<Socket>(sim.device(1), SocketType::kStream,
                                       opts, "doomed-rx", std::move(wa1));
  auto c_tx = std::make_unique<Socket>(sim.device(0), SocketType::kStream,
                                       opts, "keeper-tx", std::move(wc0));
  auto c_rx = std::make_unique<Socket>(sim.device(1), SocketType::kStream,
                                       opts, "keeper-rx", std::move(wc1));
  Socket::ConnectPair(*a_tx, *a_rx);
  Socket::ConnectPair(*c_tx, *c_rx);
  c_tx->EnableTracing();
  c_rx->EnableTracing();

  constexpr std::uint64_t kTotal = 64 * 1024;
  std::vector<std::uint8_t> a_out(kTotal), a_in(kTotal);
  std::vector<std::uint8_t> c_out(kTotal), c_in(kTotal);
  FillPattern(a_out.data(), kTotal, 0, 11);
  FillPattern(c_out.data(), kTotal, 0, 12);
  a_rx->Recv(a_in.data(), kTotal, RecvFlags{.waitall = true});
  c_rx->Recv(c_in.data(), kTotal, RecvFlags{.waitall = true});
  a_tx->Send(a_out.data(), kTotal);
  c_tx->Send(c_out.data(), kTotal);
  sim.RunFor(Microseconds(15));  // both streams mid-flight on the slot

  ASSERT_EQ(g0.AttachedStreams(), 2u);
  a_tx.reset();  // chunks and control from/for stream 0 are still in flight
  a_rx.reset();
  EXPECT_EQ(g0.AttachedStreams(), 1u);
  EXPECT_EQ(g1.AttachedStreams(), 1u);
  sim.Run();

  EXPECT_EQ(VerifyPattern(c_in.data(), kTotal, 0, 12), kTotal)
      << "teardown of a cohabitant corrupted the surviving stream";
  EXPECT_TRUE(c_tx->Quiescent() && c_rx->Quiescent());
  // Whatever stream 0 had in flight at teardown is accounted, not lost.
  EXPECT_GT(g1.stats().orphan_drops + g0.stats().orphan_drops +
                g0.stats().orphan_completions + g1.stats().orphan_completions,
            0u)
      << "mid-flight teardown should have produced orphaned traffic";
  ExpectCleanChecker(c_tx.get(), c_rx.get());
  ExpectCleanMuxPair(g0, g1);
}

// Group-before-stream destruction order (either side may die first, the
// ControlSlotSource idiom): a stream outliving its group must go inert,
// not crash.
TEST(StreamMuxTest, StreamOutlivingGroupIsInert) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), /*seed=*/45);
  auto g0 = std::make_unique<MuxGroup>(sim.device(0), MuxOptions{});
  auto g1 = std::make_unique<MuxGroup>(sim.device(1), MuxOptions{});
  MuxGroup::Connect(*g0, *g1);
  std::unique_ptr<MuxStream> s = g0->AttachStream(0);
  ASSERT_TRUE(s->GroupAlive());
  g0.reset();
  g1.reset();
  EXPECT_FALSE(s->GroupAlive());
  EXPECT_FALSE(s->CanSend());
  s.reset();  // must not touch the dead group
}

// Virtual kill of one stream on a shared QP: the victim dies with real
// fault semantics (local flush now, peer discovery one ack delay later),
// the cohabitant on the same slot never notices, and kill/resume at the
// delivered frontier (PR-7 recovery) replays the victim to a byte-perfect
// stream.
TEST(StreamMuxTest, KillResumeOnSharedQpLeavesCohabitantUndisturbed) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), /*seed=*/46);
  MuxOptions mopts;
  mopts.width = 1;
  MuxGroup g0(sim.device(0), mopts);
  MuxGroup g1(sim.device(1), mopts);
  MuxGroup::Connect(g0, g1);

  StreamOptions opts;
  opts.recovery.enabled = true;
  opts.max_wwi_chunk = 8 * 1024;  // keep chunks in flight around the kill
  auto [a_tx, a_rx] = sim.CreateMuxedPair(g0, g1, opts);
  auto [b_tx, b_rx] = sim.CreateMuxedPair(g0, g1, opts);
  a_tx->EnableTracing();
  a_rx->EnableTracing();
  b_tx->EnableTracing();
  b_rx->EnableTracing();

  constexpr std::uint64_t kTotal = 96 * 1024;
  std::vector<std::uint8_t> a_out(kTotal), a_in(kTotal);
  std::vector<std::uint8_t> b_out(kTotal), b_in(kTotal);
  FillPattern(a_out.data(), kTotal, 0, 21);
  FillPattern(b_out.data(), kTotal, 0, 22);
  a_rx->Recv(a_in.data(), kTotal, RecvFlags{.waitall = true});
  b_rx->Recv(b_in.data(), kTotal, RecvFlags{.waitall = true});
  a_tx->Send(a_out.data(), kTotal);
  b_tx->Send(b_out.data(), kTotal);

  // Kill stream A mid-transfer, in flight on both directions.
  for (int i = 0; i < 100000 && a_rx->stream_rx()->sequence() < 8 * 1024;
       ++i) {
    sim.RunFor(Microseconds(2));
  }
  ASSERT_LT(a_rx->stream_rx()->sequence(), kTotal);
  ASSERT_TRUE(a_tx->KillTransport());
  EXPECT_TRUE(a_tx->TransportDead());
  EXPECT_FALSE(b_tx->TransportDead()) << "virtual kill leaked to a cohabitant";
  EXPECT_FALSE(g0.slot(0).dead()) << "virtual kill killed the shared QP";

  // The peer stream discovers the death with transport timing.
  sim.RunUntil([&] { return a_rx->TransportDead(); });
  EXPECT_FALSE(b_rx->TransportDead());

  Socket::ResumePair(*a_tx, *a_rx);
  sim.Run();

  EXPECT_EQ(VerifyPattern(a_in.data(), kTotal, 0, 21), kTotal)
      << "kill/resume on the shared QP lost or duplicated victim bytes";
  EXPECT_EQ(VerifyPattern(b_in.data(), kTotal, 0, 22), kTotal)
      << "kill/resume of a cohabitant corrupted the undisturbed stream";
  EXPECT_EQ(g0.stats().virtual_kills, 1u);
  EXPECT_EQ(g0.stats().revives, 1u);
  EXPECT_EQ(g1.stats().revives, 1u);
  EXPECT_EQ(CounterValue(a_tx, "recovery.transport_kills", "kills"), 1u);
  EXPECT_EQ(CounterValue(a_tx, "recovery.resumes", "resumes"), 1u);
  ExpectCleanChecker(b_tx, b_rx);
  ExpectCleanMuxPair(g0, g1);
}

// The engine path end to end: a server Acceptor with a QpPool, clients
// connecting with wiring-borne MuxStreams through the real handshake.
// Accepted streams ride the pool's shared QPs; a REQ beyond max_streams is
// refused with the same REJECT as memory pressure.
TEST(StreamMuxTest, AcceptorQpPoolAdmitsOverSharedQps) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), /*seed=*/47);
  metrics::Registry registry;
  engine::ProgressEngine engine(sim.fabric().node(1).cpu(),
                                engine::ProgressEngineOptions{});
  StreamOptions opts;
  opts.credits = 8;
  opts.intermediate_buffer_bytes = 16 * 1024;

  engine::AcceptorOptions aopts;
  aopts.pool = {.pool_bytes = 4 * 16 * 1024, .lease_bytes = 16 * 1024};
  aopts.control_slots = 64;
  engine::QpPoolOptions popts;
  popts.mux.width = 2;
  popts.max_streams = 3;  // the fourth muxed connect must be refused
  aopts.mux = popts;
  engine::Acceptor acceptor(sim.device(1), engine, aopts, &registry);
  ASSERT_NE(acceptor.qp_pool(), nullptr);

  // The client side keeps its own group, wired to the pool's once.
  MuxGroup client_group(sim.device(0), popts.mux);
  MuxGroup::Connect(client_group, acceptor.qp_pool()->group());
  const std::uint64_t qps_before = sim.device(1).QueuePairsCreated();

  constexpr std::uint64_t kTotal = 8 * 1024;
  struct Rx {
    std::vector<std::uint8_t> data;
    std::uint64_t received = 0;
  };
  std::vector<std::unique_ptr<Rx>> rxs;
  acceptor.Listen(
      sim.connections(), 4000, opts,
      [&](Socket&, const Event&) {},
      [&](Socket& s) {
        auto rx = std::make_unique<Rx>();
        rx->data.resize(kTotal);
        s.Recv(rx->data.data(), kTotal, RecvFlags{.waitall = true});
        rxs.push_back(std::move(rx));
      });

  std::vector<Socket*> clients;
  int rejected = 0;
  for (int i = 0; i < 4; ++i) {
    std::uint32_t id = client_group.AllocateStreamId();
    SocketWiring wiring;
    wiring.mux_stream = client_group.AttachStream(id);
    sim.Connect(0, 4000, SocketType::kStream, opts, std::move(wiring),
                [&](Socket* s) {
                  if (s == nullptr) {
                    ++rejected;
                  } else {
                    clients.push_back(s);
                  }
                });
    sim.Run();  // complete each handshake before the next REQ
  }
  ASSERT_EQ(clients.size(), 3u);
  EXPECT_EQ(rejected, 1);
  EXPECT_EQ(acceptor.qp_pool()->AdmissionRefusals(), 1u);
  EXPECT_EQ(acceptor.qp_pool()->LiveStreams(), 3u);
  EXPECT_EQ(sim.device(1).QueuePairsCreated(), qps_before)
      << "accepting muxed connections must not create queue pairs";

  std::vector<std::vector<std::uint8_t>> outs;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    outs.emplace_back(kTotal);
    FillPattern(outs[i].data(), kTotal, 0, 300 + i);
    clients[i]->Send(outs[i].data(), kTotal);
  }
  sim.Run();
  ASSERT_EQ(rxs.size(), 3u);
  for (std::size_t i = 0; i < rxs.size(); ++i) {
    EXPECT_EQ(VerifyPattern(rxs[i]->data.data(), kTotal, 0, 300 + i), kTotal)
        << "engine-accepted muxed stream " << i;
  }
  ExpectCleanMuxPair(client_group, acceptor.qp_pool()->group());
}

// ---------------------------------------------------------------------------
// Property sweep: dedicated and muxed transports are payload-equivalent.
// ---------------------------------------------------------------------------

struct SweepConfig {
  std::uint64_t seed;
  const char* profile;  // "fdr" | "wan"
  int streams;
  std::uint32_t width;  // muxed arm's slot count
};

HardwareProfile SweepProfile(const std::string& name) {
  if (name == "wan") {
    return HardwareProfile::RoCE10GWithDelay(Milliseconds(24));
  }
  return HardwareProfile::FdrInfiniBand();
}

/// One arm of the property: run `streams` concurrent one-direction
/// transfers with a seed-derived interleave, dedicated or muxed, and
/// return the per-stream delivered-payload FNV fingerprints.  Checker
/// must be clean in both arms.
std::vector<std::uint64_t> RunSweepArm(const SweepConfig& cfg, bool muxed) {
  Simulation sim(SweepProfile(cfg.profile), cfg.seed);
  std::unique_ptr<MuxGroup> g0, g1;
  if (muxed) {
    MuxOptions mopts;
    mopts.width = cfg.width;
    g0 = std::make_unique<MuxGroup>(sim.device(0), mopts);
    g1 = std::make_unique<MuxGroup>(sim.device(1), mopts);
    MuxGroup::Connect(*g0, *g1);
  }

  const std::uint64_t per_stream = 24 * 1024;
  std::vector<std::pair<Socket*, Socket*>> pairs;
  std::vector<std::vector<std::uint8_t>> out(cfg.streams), in(cfg.streams);
  for (int s = 0; s < cfg.streams; ++s) {
    pairs.push_back(muxed
                        ? sim.CreateMuxedPair(*g0, *g1)
                        : sim.CreateConnectedPair(SocketType::kStream));
    pairs[s].first->EnableTracing();
    pairs[s].second->EnableTracing();
    out[s].resize(per_stream);
    in[s].resize(per_stream);
    FillPattern(out[s].data(), per_stream, 0, cfg.seed * 1000 + s);
    pairs[s].second->Recv(in[s].data(), per_stream,
                          RecvFlags{.waitall = true});
  }

  // Identical seed-derived posting interleave in both arms: the payload
  // byte streams must match chunk for chunk regardless of transport.
  Rng rng(SplitMix64(cfg.seed ^ 0x3a6d0f5b9ull).Next());
  std::vector<std::uint64_t> sent(cfg.streams, 0);
  bool remaining = true;
  while (remaining) {
    remaining = false;
    for (int s = 0; s < cfg.streams; ++s) {
      if (sent[s] >= per_stream) continue;
      std::uint64_t n = rng.NextInRange(1, 6 * 1024);
      if (n > per_stream - sent[s]) n = per_stream - sent[s];
      pairs[s].first->Send(out[s].data() + sent[s], n);
      sent[s] += n;
      remaining = remaining || sent[s] < per_stream;
    }
    sim.RunFor(static_cast<SimDuration>(
        rng.NextInRange(0, static_cast<std::uint64_t>(Microseconds(40)))));
  }
  sim.Run();

  std::vector<std::uint64_t> fps;
  for (int s = 0; s < cfg.streams; ++s) {
    EXPECT_TRUE(pairs[s].first->Quiescent() && pairs[s].second->Quiescent())
        << (muxed ? "muxed" : "dedicated") << " stream " << s << " seed "
        << cfg.seed;
    InvariantReport report =
        CheckConnection(*pairs[s].first, *pairs[s].second);
    EXPECT_TRUE(report.ok())
        << (muxed ? "muxed" : "dedicated") << " stream " << s << " seed "
        << cfg.seed << ": " << report.Summary();
    fps.push_back(PayloadFnv(in[s].data(), per_stream));
  }
  if (muxed) {
    InvariantReport report = CheckMuxGroupPair(*g0, *g1);
    EXPECT_TRUE(report.ok()) << "seed " << cfg.seed << ": "
                             << report.Summary();
  }
  return fps;
}

TEST(StreamMuxPropertyTest, DedicatedAndMuxedDeliverIdenticalPayloads) {
  std::vector<SweepConfig> sweep;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    for (const char* profile : {"fdr", "wan"}) {
      // Width and stream count derived from the seed, ids crossing slots.
      std::uint64_t bits = SplitMix64(seed ^ 0x9e3779b97f4a7c15ull).Next();
      sweep.push_back(SweepConfig{seed, profile,
                                  /*streams=*/2 + static_cast<int>(bits % 5),
          /*width=*/static_cast<std::uint32_t>(1 + (bits >> 8) % 3)});
    }
  }
  for (const SweepConfig& cfg : sweep) {
    SCOPED_TRACE(std::string("seed ") + std::to_string(cfg.seed) + " " +
                 cfg.profile + " streams " + std::to_string(cfg.streams) +
                 " width " + std::to_string(cfg.width));
    std::vector<std::uint64_t> dedicated = RunSweepArm(cfg, /*muxed=*/false);
    std::vector<std::uint64_t> muxed = RunSweepArm(cfg, /*muxed=*/true);
    ASSERT_EQ(dedicated.size(), muxed.size());
    for (std::size_t s = 0; s < dedicated.size(); ++s) {
      EXPECT_EQ(dedicated[s], muxed[s])
          << "stream " << s
          << ": muxed transport delivered different bytes than dedicated";
    }
  }
}

}  // namespace
}  // namespace exs
