// Fatal-fault recovery: directed kill/resume pins, the already-dead-QP
// no-op regression, the resume-aware invariant rules, and the equivalence
// property — for any (seed, kill point, workload variant) the delivered
// byte stream of a killed-and-resumed run is byte-identical to the
// unkilled golden run (the twin harness in tools/torture.cpp compares FNV
// fingerprints of the delivered payloads).  A recorded corpus of twin-run
// fingerprints pins the recovery schedule itself; regenerate after an
// intentional protocol change with
//
//   EXS_UPDATE_GOLDEN=1 ./fault_test --gtest_filter='StreamRecoveryGolden*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/pattern.hpp"
#include "common/rng.hpp"
#include "exs/engine/acceptor.hpp"
#include "exs/engine/progress_engine.hpp"
#include "exs/exs.hpp"
#include "exs/invariant_checker.hpp"
#include "simnet/faults.hpp"
#include "torture.hpp"

namespace exs {
namespace {

using simnet::FaultInjector;
using simnet::FaultKind;
using simnet::FaultPlan;
using simnet::HardwareProfile;

StreamOptions RecoveryOpts() {
  StreamOptions opts;
  opts.recovery.enabled = true;
  opts.intermediate_buffer_bytes = 64 * 1024;
  return opts;
}

/// The kill flushes one side instantly; the peer's QPs die one ack delay
/// later.  Pump simulated time until both transport halves are down.
void AwaitBothDead(Simulation& sim, Socket* a, Socket* b) {
  for (int i = 0; i < 1000 && !(a->TransportDead() && b->TransportDead());
       ++i) {
    sim.RunFor(Microseconds(50));
  }
  ASSERT_TRUE(a->TransportDead());
  ASSERT_TRUE(b->TransportDead());
}

void ExpectCleanChecker(Socket* client, Socket* server) {
  InvariantReport report = CheckConnection(*client, *server);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.events_checked, 0u);
}

std::uint64_t CounterValue(Socket* s, const char* name, const char* unit) {
  return s->metrics_registry().GetCounter(name, unit).value();
}

// Kill the connection before the receiver has ever advertised: the resume
// handshake must cope with a zero delivered frontier and untouched ring
// cursors, and the stream must then run to completion normally.
TEST(StreamRecoveryTest, KillBeforeFirstAdvert) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), /*seed=*/5,
                 /*carry_payload=*/true);
  auto [client, server] =
      sim.CreateConnectedPair(SocketType::kStream, RecoveryOpts());
  client->EnableTracing();
  server->EnableTracing();

  ASSERT_TRUE(client->KillTransport());
  AwaitBothDead(sim, client, server);
  Socket::ResumePair(*client, *server);

  constexpr std::uint64_t kTotal = 64 * 1024;
  std::vector<std::uint8_t> out(kTotal), in(kTotal, 0);
  FillPattern(out.data(), out.size(), 0, 5);
  server->Recv(in.data(), kTotal, RecvFlags{.waitall = true});
  client->Send(out.data(), kTotal);
  sim.Run();

  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 5), in.size());
  EXPECT_EQ(server->stream_rx()->sequence(), kTotal);
  EXPECT_EQ(CounterValue(client, "recovery.transport_kills", "kills"), 1u);
  EXPECT_EQ(CounterValue(client, "recovery.resumes", "resumes"), 1u);
  ExpectCleanChecker(client, server);
}

// Kill while WWI chunks are in flight: the sender's completed-but-
// undelivered suffix (the completion fallacy — a send completion is not
// delivery) must be retransmitted from the staging log, and the receiver
// must end gap-free and duplicate-free at exactly `total` bytes.
TEST(StreamRecoveryTest, KillMidChunkRetransmitsUndeliveredSuffix) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), /*seed=*/11,
                 /*carry_payload=*/true);
  auto [client, server] =
      sim.CreateConnectedPair(SocketType::kStream, RecoveryOpts());
  client->EnableTracing();
  server->EnableTracing();

  constexpr std::uint64_t kTotal = 192 * 1024;
  std::vector<std::uint8_t> out(kTotal), in(kTotal, 0);
  FillPattern(out.data(), out.size(), 0, 11);
  server->Recv(in.data(), kTotal, RecvFlags{.waitall = true});
  client->Send(out.data(), kTotal);

  // Advance until delivery is mid-stream AND posted bytes run ahead of the
  // delivered frontier — chunks are in flight, so the kill strands a
  // completed-but-undelivered suffix that only retransmission can recover.
  bool armed = false;
  for (int i = 0; i < 400000 && !armed; ++i) {
    sim.RunFor(Nanoseconds(500));
    armed = server->stream_rx()->sequence() >= 16 * 1024 &&
            client->stream_tx()->sequence() >
                server->stream_rx()->DeliveredFrontier();
  }
  ASSERT_TRUE(armed) << "no instant with chunks in flight mid-stream";
  ASSERT_LT(server->stream_rx()->sequence(), kTotal);
  ASSERT_TRUE(client->KillTransport());
  AwaitBothDead(sim, client, server);
  Socket::ResumePair(*client, *server);
  sim.Run();

  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 11), in.size());
  EXPECT_EQ(client->stream_tx()->sequence(), kTotal);
  EXPECT_EQ(server->stream_rx()->sequence(), kTotal);
  EXPECT_GT(CounterValue(client, "recovery.retransmitted_bytes", "bytes"), 0u);
  ExpectCleanChecker(client, server);
}

// Striped connection killed while the receiver's stripe reorder buffer
// holds chunks that arrived ahead of sequence: resume must discard the
// partial reassembly state, restart stripe numbering at zero, and still
// deliver the stream intact.
TEST(StreamRecoveryTest, KillWithOccupiedStripeReorderBuffer) {
  StreamOptions opts = RecoveryOpts();
  opts.rails = 4;
  opts.max_wwi_chunk = 4 * 1024;
  Simulation sim(HardwareProfile::FdrInfiniBand(), /*seed=*/23,
                 /*carry_payload=*/true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();

  constexpr std::uint64_t kTotal = 256 * 1024;
  std::vector<std::uint8_t> out(kTotal), in(kTotal, 0);
  FillPattern(out.data(), out.size(), 0, 23);
  client->Send(out.data(), kTotal);

  // Step in small slices until chunks are parked in the reorder buffer
  // (rails drain unevenly, so a later stripe overtakes an earlier one).
  std::size_t deepest = 0;
  for (int i = 0; i < 200000 && deepest == 0; ++i) {
    sim.RunFor(Nanoseconds(500));
    deepest = std::max(deepest, server->stream_rx()->StripeReorderDepth());
  }
  EXPECT_GT(deepest, 0u)
      << "workload never parked a chunk in the stripe reorder buffer";

  ASSERT_TRUE(server->KillTransport());
  AwaitBothDead(sim, client, server);
  Socket::ResumePair(*client, *server);
  server->Recv(in.data(), kTotal, RecvFlags{.waitall = true});
  sim.Run();

  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 23), in.size());
  EXPECT_EQ(server->stream_rx()->sequence(), kTotal);
  EXPECT_EQ(client->effective_rails(), 4u);
  ExpectCleanChecker(client, server);
}

// A second kill landing immediately after ResumePair — while the resume
// handshake's re-sent control traffic is still in flight — must flush
// cleanly and allow a second resume to finish the stream.
TEST(StreamRecoveryTest, DoubleKillDuringResume) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), /*seed=*/31,
                 /*carry_payload=*/true);
  auto [client, server] =
      sim.CreateConnectedPair(SocketType::kStream, RecoveryOpts());
  client->EnableTracing();
  server->EnableTracing();

  constexpr std::uint64_t kTotal = 128 * 1024;
  std::vector<std::uint8_t> out(kTotal), in(kTotal, 0);
  FillPattern(out.data(), out.size(), 0, 31);
  server->Recv(in.data(), kTotal, RecvFlags{.waitall = true});
  client->Send(out.data(), kTotal);
  for (int i = 0; i < 100000 && server->stream_rx()->sequence() < 8 * 1024;
       ++i) {
    sim.RunFor(Microseconds(5));
  }
  ASSERT_TRUE(client->KillTransport());
  AwaitBothDead(sim, client, server);
  Socket::ResumePair(*client, *server);

  // No simulated time has passed since the resume: everything it re-sent
  // is still in flight when the second kill lands — this time on the
  // other side, so both kill directions are covered.
  ASSERT_TRUE(server->KillTransport());
  AwaitBothDead(sim, client, server);
  Socket::ResumePair(*client, *server);
  sim.Run();

  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 31), in.size());
  EXPECT_EQ(server->stream_rx()->sequence(), kTotal);
  EXPECT_EQ(CounterValue(client, "recovery.transport_kills", "kills"), 2u);
  EXPECT_EQ(CounterValue(client, "recovery.resumes", "resumes"), 2u);
  ExpectCleanChecker(client, server);
}

// Rail failover: a 4-rail striped stream resumes onto 2 surviving rails.
// The unacknowledged suffix is re-chunked across the new rail set with
// stripe numbering restarted at zero; the checker's resume-aware rules
// accept the shrunken rail count and the stream must arrive intact.
TEST(StreamRecoveryTest, RailFailoverRechunksAcrossSurvivingRails) {
  StreamOptions opts = RecoveryOpts();
  opts.rails = 4;
  opts.max_wwi_chunk = 8 * 1024;
  Simulation sim(HardwareProfile::FdrInfiniBand(), /*seed=*/41,
                 /*carry_payload=*/true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream, opts);
  client->EnableTracing();
  server->EnableTracing();
  ASSERT_EQ(client->effective_rails(), 4u);

  constexpr std::uint64_t kTotal = 256 * 1024;
  std::vector<std::uint8_t> out(kTotal), in(kTotal, 0);
  FillPattern(out.data(), out.size(), 0, 41);
  server->Recv(in.data(), kTotal, RecvFlags{.waitall = true});
  client->Send(out.data(), kTotal);
  for (int i = 0; i < 100000 && server->stream_rx()->sequence() < 32 * 1024;
       ++i) {
    sim.RunFor(Microseconds(5));
  }
  ASSERT_LT(server->stream_rx()->sequence(), kTotal);
  ASSERT_TRUE(client->KillTransport());
  AwaitBothDead(sim, client, server);
  Socket::ResumePair(*client, *server, /*max_rails=*/2);
  EXPECT_EQ(client->effective_rails(), 2u);
  EXPECT_EQ(server->effective_rails(), 2u);
  sim.Run();

  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 41), in.size());
  EXPECT_EQ(server->stream_rx()->sequence(), kTotal);
  ExpectCleanChecker(client, server);
}

// Regression: a fault scheduled against an already-dead transport is a
// guaranteed no-op — not a second flush, not a dangling callback.  Both
// the direct API and the FaultInjector path must agree, and a kill
// arriving after a resume must land on the *new* queue pairs.
TEST(StreamRecoveryTest, KillOnDeadTransportIsNoOp) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), /*seed=*/47,
                 /*carry_payload=*/true);
  auto [client, server] =
      sim.CreateConnectedPair(SocketType::kStream, RecoveryOpts());
  client->EnableTracing();
  server->EnableTracing();

  FaultInjector injector(sim.fabric());
  injector.AttachKillTarget(0, client);
  injector.AttachKillTarget(1, server);
  FaultPlan plan;
  simnet::FaultEvent ev;
  ev.kind = FaultKind::kQpKill;
  ev.target = 0;
  ev.at = sim.Now() + Microseconds(10);
  plan.events.push_back(ev);          // lands on a dead transport: no-op
  ev.at = sim.Now() + Microseconds(20);
  plan.events.push_back(ev);          // ditto — double-scheduled kill
  ev.at = sim.Now() + Milliseconds(2);
  plan.events.push_back(ev);          // lands after the resume: applies
  injector.Arm(plan);

  // Manual kill first: both planned near-term kills then hit a corpse.
  ASSERT_TRUE(client->KillTransport());
  EXPECT_FALSE(client->KillTransport());
  AwaitBothDead(sim, client, server);
  sim.RunFor(Microseconds(100));
  EXPECT_EQ(injector.KillsApplied(), 0u);
  EXPECT_EQ(injector.FaultsApplied(), 2u);

  Socket::ResumePair(*client, *server);
  constexpr std::uint64_t kTotal = 96 * 1024;
  std::vector<std::uint8_t> out(kTotal), in(kTotal, 0);
  FillPattern(out.data(), out.size(), 0, 47);
  server->Recv(in.data(), kTotal, RecvFlags{.waitall = true});
  client->Send(out.data(), kTotal);
  sim.Run();  // the third kill fires mid-run against the fresh QPs

  EXPECT_EQ(injector.KillsApplied(), 1u);
  AwaitBothDead(sim, client, server);
  Socket::ResumePair(*client, *server);
  sim.Run();

  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 47), in.size());
  EXPECT_EQ(server->stream_rx()->sequence(), kTotal);
  ExpectCleanChecker(client, server);
}

// The resume-aware gap-free/duplicate-free rule: the receiver-side byte
// continuity check runs *through* kill/resume markers unreset, so a
// duplicated delivery after a resume is still a violation.
TEST(StreamRecoveryTest, CheckerRejectsDuplicateDeliveryAcrossResume) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), /*seed=*/53,
                 /*carry_payload=*/true);
  auto [client, server] =
      sim.CreateConnectedPair(SocketType::kStream, RecoveryOpts());
  client->EnableTracing();
  server->EnableTracing();

  constexpr std::uint64_t kTotal = 64 * 1024;
  std::vector<std::uint8_t> out(kTotal), in(kTotal, 0);
  FillPattern(out.data(), out.size(), 0, 53);
  server->Recv(in.data(), kTotal, RecvFlags{.waitall = true});
  client->Send(out.data(), kTotal);
  for (int i = 0; i < 100000 && server->stream_rx()->sequence() < 8 * 1024;
       ++i) {
    sim.RunFor(Microseconds(5));
  }
  ASSERT_TRUE(client->KillTransport());
  AwaitBothDead(sim, client, server);
  Socket::ResumePair(*client, *server);
  sim.Run();

  // The honest trace is clean...
  InvariantCheckOptions opts;
  opts.rx_ring_capacity = server->stream_rx()->ring_capacity();
  EXPECT_TRUE(CheckStreamReceiverTrace(server->rx_trace(), opts).ok());

  // ...but replaying one delivery event (a duplicate byte range, exactly
  // what a resume that ignored the delivered frontier would produce) must
  // be convicted by the continuity rule.
  TraceLog forged;
  forged.Enable();
  const TraceEvent* last_delivery = nullptr;
  for (const TraceEvent& ev : server->rx_trace().events()) {
    forged.Record(ev);
    if (ev.type == TraceEventType::kDirectArrived ||
        ev.type == TraceEventType::kCopyOut) {
      last_delivery = &ev;
    }
  }
  ASSERT_NE(last_delivery, nullptr);
  forged.Record(*last_delivery);
  InvariantReport report = CheckStreamReceiverTrace(forged, opts);
  EXPECT_FALSE(report.ok());
  bool continuity_conviction = false;
  for (const std::string& v : report.violations) {
    if (v.find("not contiguous") != std::string::npos) {
      continuity_conviction = true;
    }
  }
  EXPECT_TRUE(continuity_conviction) << report.Summary();
}

// Engine-accepted sockets (shared buffer pool + SRQ-backed control slots)
// recover too: the resumed channel re-adopts its slot reservation instead
// of re-reserving, the untouched second stream is not perturbed, and both
// leases return to the pool after EOF.
TEST(StreamRecoveryTest, EngineSocketResumesWithSharedSlotReservation) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), /*seed=*/61,
                 /*carry_payload=*/true);
  engine::ProgressEngine engine(sim.fabric().node(1).cpu(),
                                engine::ProgressEngineOptions{});
  StreamOptions opts = RecoveryOpts();
  opts.credits = 8;
  engine::AcceptorOptions aopts;
  aopts.pool = {.pool_bytes = 2 * opts.intermediate_buffer_bytes,
                .lease_bytes = opts.intermediate_buffer_bytes,
                .high_watermark = 1.0,
                .low_watermark = 1.0};
  aopts.control_slots = 2 * opts.credits;
  engine::Acceptor acceptor(sim.device(1), engine, aopts);

  constexpr std::uint64_t kPerStream = 96 * 1024;
  struct Rx {
    Socket* socket = nullptr;
    std::vector<std::uint8_t> data;
    std::uint64_t received = 0;
    bool eof = false;
  };
  std::vector<std::unique_ptr<Rx>> rxs;
  std::unordered_map<Socket*, Rx*> rx_by_socket;
  acceptor.Listen(
      sim.connections(), 4000, opts,
      [&](Socket& s, const Event& ev) {
        auto it = rx_by_socket.find(&s);
        if (it == rx_by_socket.end()) return;
        if (ev.type == EventType::kRecvComplete) {
          it->second->received += ev.bytes;
        }
        if (ev.type == EventType::kPeerClosed) it->second->eof = true;
      },
      [&](Socket& s) {
        auto rx = std::make_unique<Rx>();
        rx->socket = &s;
        rx->data.resize(kPerStream);
        s.Recv(rx->data.data(), kPerStream, RecvFlags{.waitall = true});
        rx_by_socket.emplace(&s, rx.get());
        rxs.push_back(std::move(rx));
      });

  std::vector<Socket*> clients;
  for (int i = 0; i < 2; ++i) {
    clients.push_back(sim.Connect(0, 4000, SocketType::kStream, opts,
                                  [](Socket*) {}));
  }
  sim.Run();
  ASSERT_EQ(rxs.size(), 2u);

  std::vector<std::vector<std::uint8_t>> payloads(2);
  for (int i = 0; i < 2; ++i) {
    payloads[i].resize(kPerStream);
    FillPattern(payloads[i].data(), kPerStream, 0, 61 + i);
    clients[i]->Send(payloads[i].data(), kPerStream);
  }
  for (int i = 0; i < 100000 && rxs[0]->socket->stream_rx()->sequence() <
                                    8 * 1024;
       ++i) {
    sim.RunFor(Microseconds(5));
  }
  ASSERT_TRUE(clients[0]->KillTransport());
  AwaitBothDead(sim, clients[0], rxs[0]->socket);
  Socket::ResumePair(*clients[0], *rxs[0]->socket);
  sim.Run();
  for (int i = 0; i < 2; ++i) {
    clients[i]->Close();
  }
  sim.Run();

  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(rxs[i]->received, kPerStream) << "stream " << i;
    EXPECT_EQ(VerifyPattern(rxs[i]->data.data(), kPerStream, 0, 61 + i),
              kPerStream)
        << "stream " << i;
    EXPECT_TRUE(rxs[i]->eof) << "stream " << i;
  }
  EXPECT_EQ(acceptor.pool().LeasesActive(), 0u)
      << "leases must return to the pool after EOF, resume included";
}

// ---------------------------------------------------------------------------
// The equivalence property, swept: kill offsets × profiles × workload
// variants (classic dynamic, coalesce, striped).  Each case is a twin run
// — unkilled golden and killed/resumed — and passes only when both legs
// deliver the byte-identical stream (payload FNV fingerprints equal).
// ---------------------------------------------------------------------------

// The kill-mode harness derives its workload variant from the seed with
// this exact domain separation; mirror it to pick one seed per variant so
// the sweep provably covers all three chunking disciplines.
std::uint64_t KillVariantForSeed(std::uint64_t seed) {
  return SplitMix64(seed ^ 0x4b111f7e57a7e5ull).Next() % 3;
}

TEST(StreamRecoveryProperty, KilledRunsMatchUnkilledGoldenFingerprints) {
  std::uint64_t variant_seed[3] = {0, 0, 0};
  int found = 0;
  for (std::uint64_t seed = 1; seed <= 64 && found < 3; ++seed) {
    std::uint64_t v = KillVariantForSeed(seed);
    if (variant_seed[v] == 0) {
      variant_seed[v] = seed;
      ++found;
    }
  }
  ASSERT_EQ(found, 3) << "no seed in 1..64 produced every workload variant";

  std::vector<torture::TortureConfig> cases;
  for (std::uint64_t seed : variant_seed) {
    for (std::uint32_t permille : {80u, 250u, 400u}) {
      torture::TortureConfig cfg;
      cfg.seed = seed;
      cfg.mode = "kill";
      cfg.profile = "fdr";
      cfg.kill_permille = permille;
      cases.push_back(cfg);
    }
  }
  {
    // Pinned rails (forced stripe) and the WAN profile, one case each.
    torture::TortureConfig cfg;
    cfg.seed = 7;
    cfg.mode = "kill";
    cfg.profile = "fdr";
    cfg.rails = 2;
    cfg.kill_permille = 250;
    cases.push_back(cfg);
    cfg.rails = 0;
    cfg.profile = "wan";
    cases.push_back(cfg);
  }

  for (const torture::TortureConfig& cfg : cases) {
    torture::TortureResult res = torture::RunTorture(cfg);
    EXPECT_TRUE(res.ok) << torture::EncodeCorpusEntry(cfg) << "\n"
                        << res.Describe();
    EXPECT_EQ(res.kills_applied, 1u) << torture::EncodeCorpusEntry(cfg);
  }
}

// ---------------------------------------------------------------------------
// Recorded twin-run fingerprints (the stream_golden_test convention): the
// corpus file pins the exact recovery schedule — retransmission postings,
// resume markers, and both delivered payloads — per configuration.  Each
// entry also runs twice in-process as the determinism witness.
// ---------------------------------------------------------------------------

constexpr const char* kRecoveryCorpusPath =
    EXS_TEST_DATA_DIR "/recovery_golden.txt";

std::vector<torture::TortureConfig> RecoveryGoldenConfigs() {
  std::vector<torture::TortureConfig> cfgs;
  for (std::uint64_t seed : {1, 2, 3, 4}) {
    torture::TortureConfig cfg;
    cfg.seed = seed;
    cfg.mode = "kill";
    cfg.profile = "fdr";
    cfg.kill_permille = static_cast<std::uint32_t>(100 + 70 * seed);
    cfgs.push_back(cfg);
  }
  torture::TortureConfig cfg;
  cfg.seed = 5;
  cfg.mode = "kill";
  cfg.profile = "fdr";
  cfg.rails = 2;
  cfg.kill_permille = 250;
  cfgs.push_back(cfg);
  cfg.rails = 0;
  cfg.seed = 1;
  cfg.profile = "wan";
  cfg.kill_permille = 200;
  cfgs.push_back(cfg);
  return cfgs;
}

TEST(StreamRecoveryGolden, TwinRunFingerprintsMatchCorpus) {
  if (std::getenv("EXS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream header(kRecoveryCorpusPath, std::ios::trunc);
    ASSERT_TRUE(header.good()) << "cannot rewrite " << kRecoveryCorpusPath;
    header << "# Twin-run recovery fingerprints (kill mode): chained FNV of\n"
              "# the golden payload, the killed payload, and the killed\n"
              "# leg's trace fingerprint.  Regenerate with\n"
              "# EXS_UPDATE_GOLDEN=1 (see stream_recovery_test.cpp).\n";
    header.close();
    for (const torture::TortureConfig& cfg : RecoveryGoldenConfigs()) {
      torture::TortureResult res = torture::RunTorture(cfg);
      ASSERT_TRUE(res.ok) << torture::EncodeCorpusEntry(cfg) << "\n"
                          << res.Describe();
      torture::AppendCorpusEntry(kRecoveryCorpusPath, cfg, res.fingerprint);
    }
    GTEST_SKIP() << "corpus regenerated at " << kRecoveryCorpusPath;
  }

  std::vector<torture::TortureConfig> entries =
      torture::LoadCorpus(kRecoveryCorpusPath);
  ASSERT_FALSE(entries.empty());
  for (const torture::TortureConfig& cfg : entries) {
    torture::TortureResult first = torture::RunTorture(cfg);
    torture::TortureResult second = torture::RunTorture(cfg);
    EXPECT_TRUE(first.ok) << torture::EncodeCorpusEntry(cfg) << "\n"
                          << first.Describe();
    EXPECT_EQ(first.fingerprint, second.fingerprint)
        << "nondeterministic twin run: " << torture::EncodeCorpusEntry(cfg);
    EXPECT_EQ(first.fingerprint, cfg.expect_fingerprint)
        << "recovery schedule drifted from the recorded corpus entry: "
        << torture::EncodeCorpusEntry(cfg)
        << " (intentional change? regenerate with EXS_UPDATE_GOLDEN=1)";
  }
}

}  // namespace
}  // namespace exs
