// Rendezvous-mode integration with the rest of the stack: the timed
// listen/connect/accept handshake, full-duplex operation, WAN profiles,
// and coexistence with WRITE-based connections on the same fabric.
#include <gtest/gtest.h>

#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

StreamOptions Rendezvous() {
  StreamOptions opts;
  opts.mode = ProtocolMode::kReadRendezvous;
  return opts;
}

TEST(RendezvousIntegration, WorksThroughTheHandshake) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 31, true);
  Listener* listener = sim.Listen(1, 6000, SocketType::kStream, Rendezvous());
  Socket* server = nullptr;
  listener->SetAcceptHandler([&](Socket* s) { server = s; });
  Socket* client = nullptr;
  sim.Connect(0, 6000, SocketType::kStream, Rendezvous(),
              [&](Socket* s) { client = s; });
  sim.Run();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);

  std::vector<std::uint8_t> out(24 * 1024), in(24 * 1024);
  FillPattern(out.data(), out.size(), 0, 41);
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  client->Send(out.data(), out.size());
  sim.Run();
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 41), in.size());
}

TEST(RendezvousIntegration, FullDuplexPulls) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 32, true);
  auto [a, b] = sim.CreateConnectedPair(SocketType::kStream, Rendezvous());
  std::vector<std::uint8_t> ab_out(16 * 1024), ab_in(16 * 1024);
  std::vector<std::uint8_t> ba_out(12 * 1024), ba_in(12 * 1024);
  FillPattern(ab_out.data(), ab_out.size(), 0, 51);
  FillPattern(ba_out.data(), ba_out.size(), 0, 52);

  b->Recv(ab_in.data(), ab_in.size(), RecvFlags{.waitall = true});
  a->Recv(ba_in.data(), ba_in.size(), RecvFlags{.waitall = true});
  a->Send(ab_out.data(), ab_out.size());
  b->Send(ba_out.data(), ba_out.size());
  sim.Run();

  EXPECT_EQ(VerifyPattern(ab_in.data(), ab_in.size(), 0, 51), ab_in.size());
  EXPECT_EQ(VerifyPattern(ba_in.data(), ba_in.size(), 0, 52), ba_in.size());
  EXPECT_TRUE(a->Quiescent());
  EXPECT_TRUE(b->Quiescent());
}

TEST(RendezvousIntegration, CoexistsWithWriteBasedConnection) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 33, true);
  auto [a1, b1] = sim.CreateConnectedPair(SocketType::kStream);  // dynamic
  auto [a2, b2] = sim.CreateConnectedPair(SocketType::kStream, Rendezvous());

  std::vector<std::uint8_t> s1(32 * 1024), r1(32 * 1024);
  std::vector<std::uint8_t> s2(32 * 1024), r2(32 * 1024);
  FillPattern(s1.data(), s1.size(), 0, 61);
  FillPattern(s2.data(), s2.size(), 0, 62);

  b1->Recv(r1.data(), r1.size(), RecvFlags{.waitall = true});
  b2->Recv(r2.data(), r2.size(), RecvFlags{.waitall = true});
  a1->Send(s1.data(), s1.size());
  a2->Send(s2.data(), s2.size());
  sim.Run();

  EXPECT_EQ(VerifyPattern(r1.data(), r1.size(), 0, 61), r1.size());
  EXPECT_EQ(VerifyPattern(r2.data(), r2.size(), 0, 62), r2.size());
}

TEST(RendezvousIntegration, SurvivesJitteredWanPath) {
  Simulation sim(
      HardwareProfile::RoCE10GWithDelay(Milliseconds(24), Milliseconds(2)),
      34, true);
  auto [client, server] =
      sim.CreateConnectedPair(SocketType::kStream, Rendezvous());
  constexpr std::uint64_t kTotal = 512 * 1024;
  std::vector<std::uint8_t> out(kTotal), in(kTotal);
  FillPattern(out.data(), out.size(), 0, 71);

  for (int i = 0; i < 8; ++i) {
    client->Send(out.data() + i * 64 * 1024, 64 * 1024);
    server->Recv(in.data() + i * 64 * 1024, 64 * 1024,
                 RecvFlags{.waitall = true});
  }
  client->Close();
  std::uint64_t eof_seen = 0;
  server->events().SetHandler([&](const Event& ev) {
    if (ev.type == EventType::kPeerClosed) ++eof_seen;
  });
  sim.Run();

  EXPECT_EQ(server->stats().bytes_received, kTotal);
  EXPECT_EQ(VerifyPattern(in.data(), kTotal, 0, 71), kTotal);
  EXPECT_EQ(eof_seen, 1u);
}

TEST(RendezvousIntegration, LegacyIwarpReadsStillWork) {
  // RDMA READ is native even on the legacy profile (only WWI is emulated);
  // the rendezvous engine must be unaffected by the emulation flag.
  Simulation sim(HardwareProfile::Iwarp10G(), 35, true);
  auto [client, server] =
      sim.CreateConnectedPair(SocketType::kStream, Rendezvous());
  std::vector<std::uint8_t> out(8 * 1024), in(8 * 1024);
  FillPattern(out.data(), out.size(), 0, 81);
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  client->Send(out.data(), out.size());
  sim.Run();
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 81), in.size());
}

}  // namespace
}  // namespace exs
