// Deeper verbs coverage: multiple queue pairs sharing one link, work-
// request pipelining, zero-length receives, registration lifecycle, and
// accounting.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"
#include "verbs/queue_pair.hpp"

namespace exs::verbs {
namespace {

struct Endpoint {
  explicit Endpoint(Device& dev)
      : send_cq(dev.CreateCompletionQueue()),
        recv_cq(dev.CreateCompletionQueue()) {}
  std::unique_ptr<CompletionQueue> send_cq;
  std::unique_ptr<CompletionQueue> recv_cq;
  std::unique_ptr<QueuePair> qp;
};

class VerbsExtraTest : public ::testing::Test {
 protected:
  VerbsExtraTest()
      : fabric_(simnet::HardwareProfile::FdrInfiniBand(), 9),
        dev0_(fabric_, 0),
        dev1_(fabric_, 1) {}

  std::pair<Endpoint*, Endpoint*> MakeConnectedPair() {
    auto a = std::make_unique<Endpoint>(dev0_);
    auto b = std::make_unique<Endpoint>(dev1_);
    a->qp = std::make_unique<QueuePair>(dev0_, *a->send_cq, *a->recv_cq);
    b->qp = std::make_unique<QueuePair>(dev1_, *b->send_cq, *b->recv_cq);
    QueuePair::ConnectPair(*a->qp, *b->qp);
    endpoints_.push_back(std::move(a));
    endpoints_.push_back(std::move(b));
    return {endpoints_[endpoints_.size() - 2].get(),
            endpoints_.back().get()};
  }

  static Sge MakeSge(const void* addr, std::uint32_t len, std::uint32_t k) {
    return Sge{reinterpret_cast<std::uint64_t>(addr), len, k};
  }

  simnet::Fabric fabric_;
  Device dev0_, dev1_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

TEST_F(VerbsExtraTest, TwoQueuePairsShareTheLinkFairlyFifo) {
  auto [a1, b1] = MakeConnectedPair();
  auto [a2, b2] = MakeConnectedPair();

  std::vector<std::uint8_t> buf(1024);
  auto mr0 = dev0_.RegisterMemory(buf.data(), buf.size());
  auto mr1 = dev1_.RegisterMemory(buf.data(), buf.size());

  for (int i = 0; i < 8; ++i) {
    b1->qp->PostRecv({.wr_id = 100u + i,
                      .sge = MakeSge(buf.data(), 1024, mr1->lkey())});
    b2->qp->PostRecv({.wr_id = 200u + i,
                      .sge = MakeSge(buf.data(), 1024, mr1->lkey())});
  }
  // Interleave posts across the two connections.
  for (int i = 0; i < 8; ++i) {
    a1->qp->PostSend({.wr_id = 100u + i,
                      .opcode = Opcode::kSend,
                      .sge = MakeSge(buf.data(), 1024, mr0->lkey())});
    a2->qp->PostSend({.wr_id = 200u + i,
                      .opcode = Opcode::kSend,
                      .sge = MakeSge(buf.data(), 1024, mr0->lkey())});
  }
  fabric_.scheduler().Run();

  // Both connections deliver everything, each in its own order.
  WorkCompletion wc;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(b1->recv_cq->Poll(&wc));
    EXPECT_EQ(wc.wr_id, 100u + i);
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(b2->recv_cq->Poll(&wc));
    EXPECT_EQ(wc.wr_id, 200u + i);
  }
}

TEST_F(VerbsExtraTest, ZeroLengthRecvConsumedByWwi) {
  auto [a, b] = MakeConnectedPair();
  std::vector<std::uint8_t> src(128), dst(128);
  auto src_mr = dev0_.RegisterMemory(src.data(), src.size());
  auto dst_mr = dev1_.RegisterMemory(dst.data(), dst.size());
  FillPattern(src.data(), src.size(), 0, 12);

  b->qp->PostRecv({.wr_id = 1, .sge = Sge{}});  // no buffer at all
  SendWorkRequest wr;
  wr.opcode = Opcode::kRdmaWriteWithImm;
  wr.sge = MakeSge(src.data(), 128, src_mr->lkey());
  wr.remote_addr = reinterpret_cast<std::uint64_t>(dst.data());
  wr.rkey = dst_mr->rkey();
  wr.has_imm = true;
  wr.imm = 5;
  a->qp->PostSend(wr);
  fabric_.scheduler().Run();

  WorkCompletion wc;
  ASSERT_TRUE(b->recv_cq->Poll(&wc));
  EXPECT_EQ(wc.status, WcStatus::kSuccess);
  EXPECT_EQ(wc.byte_len, 128u);
  EXPECT_EQ(VerifyPattern(dst.data(), dst.size(), 0, 12), dst.size());
}

TEST_F(VerbsExtraTest, SendsPipelineBackToBack) {
  // N equal messages posted at once must finish in ~N serialisation
  // times, not N round trips: the HCA pipeline never idles.
  auto [a, b] = MakeConnectedPair();
  constexpr int kMessages = 16;
  constexpr std::uint32_t kSize = 64 * 1024;
  std::vector<std::uint8_t> buf(kSize);
  auto mr0 = dev0_.RegisterMemory(buf.data(), buf.size());
  auto mr1 = dev1_.RegisterMemory(buf.data(), buf.size());
  for (int i = 0; i < kMessages; ++i) {
    b->qp->PostRecv({.wr_id = static_cast<std::uint64_t>(i),
                     .sge = MakeSge(buf.data(), kSize, mr1->lkey())});
  }
  for (int i = 0; i < kMessages; ++i) {
    a->qp->PostSend({.wr_id = static_cast<std::uint64_t>(i),
                     .opcode = Opcode::kSend,
                     .sge = MakeSge(buf.data(), kSize, mr0->lkey())});
  }
  fabric_.scheduler().Run();

  const auto& p = fabric_.profile();
  SimDuration serial =
      p.link_bandwidth.TransmissionTime(
          static_cast<std::uint64_t>(kMessages) * (kSize + 30));
  SimDuration slack = p.propagation * 4 + p.send_wr_overhead * kMessages +
                      p.recv_delivery_overhead + Microseconds(2);
  EXPECT_LE(fabric_.scheduler().Now(), serial + slack);
  EXPECT_EQ(b->qp->stats().messages_delivered,
            static_cast<std::uint64_t>(kMessages));
}

TEST_F(VerbsExtraTest, DeregisteredMemoryRejectsNewWork) {
  auto [a, b] = MakeConnectedPair();
  (void)b;
  std::vector<std::uint8_t> buf(64);
  auto mr = dev0_.RegisterMemory(buf.data(), buf.size());
  std::uint32_t lkey = mr->lkey();
  dev0_.DeregisterMemory(mr);
  SendWorkRequest wr;
  wr.opcode = Opcode::kSend;
  wr.sge = MakeSge(buf.data(), 64, lkey);
  EXPECT_THROW(a->qp->PostSend(wr), InvariantViolation);
}

TEST_F(VerbsExtraTest, RemoteDeregistrationCausesAccessError) {
  auto [a, b] = MakeConnectedPair();
  (void)b;
  std::vector<std::uint8_t> src(64), dst(64);
  auto src_mr = dev0_.RegisterMemory(src.data(), src.size());
  auto dst_mr = dev1_.RegisterMemory(dst.data(), dst.size());
  std::uint32_t rkey = dst_mr->rkey();
  dev1_.DeregisterMemory(dst_mr);

  SendWorkRequest wr;
  wr.wr_id = 5;
  wr.opcode = Opcode::kRdmaWrite;
  wr.sge = MakeSge(src.data(), 64, src_mr->lkey());
  wr.remote_addr = reinterpret_cast<std::uint64_t>(dst.data());
  wr.rkey = rkey;
  a->qp->PostSend(wr);
  fabric_.scheduler().Run();

  WorkCompletion wc;
  ASSERT_TRUE(a->send_cq->Poll(&wc));
  EXPECT_EQ(wc.status, WcStatus::kRemoteAccessError);
}

TEST_F(VerbsExtraTest, StatsAccumulateAcrossOperations) {
  auto [a, b] = MakeConnectedPair();
  std::vector<std::uint8_t> buf(256);
  auto mr0 = dev0_.RegisterMemory(buf.data(), buf.size());
  auto mr1 = dev1_.RegisterMemory(buf.data(), buf.size());
  for (int i = 0; i < 3; ++i) {
    b->qp->PostRecv({.wr_id = 0,
                     .sge = MakeSge(buf.data(), 256, mr1->lkey())});
    a->qp->PostSend({.wr_id = 0,
                     .opcode = Opcode::kSend,
                     .sge = MakeSge(buf.data(), 256, mr0->lkey())});
  }
  fabric_.scheduler().Run();
  EXPECT_EQ(a->qp->stats().sends_posted, 3u);
  EXPECT_EQ(a->qp->stats().payload_bytes_sent, 768u);
  EXPECT_EQ(a->qp->stats().wire_bytes_sent, 3u * (256 + 30));
  EXPECT_EQ(b->qp->stats().recvs_posted, 3u);
  EXPECT_EQ(b->qp->stats().messages_delivered, 3u);
}

TEST_F(VerbsExtraTest, ReconnectingAConnectedPairThrows) {
  auto [a, b] = MakeConnectedPair();
  EXPECT_THROW(QueuePair::ConnectPair(*a->qp, *b->qp), InvariantViolation);
}

TEST_F(VerbsExtraTest, SameNodeConnectionIsRejected) {
  Endpoint x(dev0_), y(dev0_);
  x.qp = std::make_unique<QueuePair>(dev0_, *x.send_cq, *x.recv_cq);
  y.qp = std::make_unique<QueuePair>(dev0_, *y.send_cq, *y.recv_cq);
  EXPECT_THROW(QueuePair::ConnectPair(*x.qp, *y.qp), InvariantViolation);
}

TEST_F(VerbsExtraTest, PostOnUnconnectedQpThrows) {
  Endpoint x(dev0_);
  x.qp = std::make_unique<QueuePair>(dev0_, *x.send_cq, *x.recv_cq);
  std::vector<std::uint8_t> buf(16);
  EXPECT_THROW(
      x.qp->PostRecv({.wr_id = 0, .sge = MakeSge(buf.data(), 16, 1)}),
      InvariantViolation);
}

}  // namespace
}  // namespace exs::verbs
