// Orderly close (shutdown-write) and end-of-stream semantics: the
// SHUTDOWN trails all queued data, outstanding receives complete with what
// they hold, later receives return zero bytes, and the two directions
// close independently.
#include <gtest/gtest.h>

#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

class CloseTest : public ::testing::Test {
 protected:
  Simulation sim_{HardwareProfile::FdrInfiniBand(), /*seed=*/17,
                  /*carry_payload=*/true};
};

TEST_F(CloseTest, CloseFlushesQueuedDataFirst) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  constexpr std::uint64_t kTotal = 128 * 1024;
  std::vector<std::uint8_t> out(kTotal), in(kTotal);
  FillPattern(out.data(), out.size(), 0, 1);

  // Send a burst and close immediately — the data must all arrive before
  // the peer observes end-of-stream.
  client->Send(out.data(), kTotal);
  client->Close();
  EXPECT_TRUE(client->CloseRequested());

  std::vector<Event> events;
  server->events().SetHandler([&](const Event& ev) {
    events.push_back(ev);
    if (ev.type == EventType::kRecvComplete && ev.bytes > 0) {
      // keep consuming the stream
    }
  });
  server->Recv(in.data(), kTotal, RecvFlags{.waitall = true});
  sim_.Run();

  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[0].type, EventType::kRecvComplete);
  EXPECT_EQ(events[0].bytes, kTotal);
  EXPECT_EQ(events.back().type, EventType::kPeerClosed);
  EXPECT_EQ(VerifyPattern(in.data(), kTotal, 0, 1), kTotal);
}

TEST_F(CloseTest, WaitallRecvCompletesPartialAtEof) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  std::vector<std::uint8_t> out(4096), in(8192);
  FillPattern(out.data(), out.size(), 0, 2);

  std::vector<Event> events;
  server->events().SetHandler([&](const Event& ev) { events.push_back(ev); });
  // The WAITALL receive wants 8 KiB but only 4 KiB will ever come.
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.RunFor(Microseconds(20));
  client->Send(out.data(), out.size());
  client->Close();
  sim_.Run();

  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, EventType::kRecvComplete);
  EXPECT_EQ(events[0].bytes, 4096u);  // partial delivery at EOF
  EXPECT_EQ(events[1].type, EventType::kPeerClosed);
  EXPECT_EQ(VerifyPattern(in.data(), 4096, 0, 2), 4096u);
}

TEST_F(CloseTest, RecvAfterEofReturnsZeroBytes) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  (void)client;
  client->Close();
  sim_.Run();

  std::vector<Event> events;
  server->events().SetHandler([&](const Event& ev) { events.push_back(ev); });
  std::vector<std::uint8_t> buf(256);
  server->Recv(buf.data(), buf.size());
  sim_.Run();
  // The kPeerClosed event was queued when the SHUTDOWN arrived (before the
  // handler existed); the late receive then completes with zero bytes.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, EventType::kPeerClosed);
  EXPECT_EQ(events[1].type, EventType::kRecvComplete);
  EXPECT_EQ(events[1].bytes, 0u);
}

TEST_F(CloseTest, SendAfterCloseThrows) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  (void)server;
  client->Close();
  std::vector<std::uint8_t> buf(64);
  EXPECT_THROW(client->Send(buf.data(), buf.size()), InvariantViolation);
}

TEST_F(CloseTest, CloseIsIdempotent) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  (void)server;
  client->Close();
  client->Close();  // no-op, no throw
  sim_.Run();
  EXPECT_EQ(server->stats().recvs_completed, 0u);
}

TEST_F(CloseTest, DirectionsCloseIndependently) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream);
  std::vector<std::uint8_t> out(2048), in(2048);
  FillPattern(out.data(), out.size(), 0, 3);

  // Client closes its sending side; the server can still send to it.
  client->Close();
  client->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.RunFor(Microseconds(20));
  server->Send(out.data(), out.size());
  sim_.Run();
  EXPECT_EQ(client->stats().bytes_received, 2048u);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 3), in.size());
}

TEST_F(CloseTest, EofDrainsBufferedDataBeforeDelivery) {
  // Data parked in the intermediate buffer at close time must still reach
  // the application before the EOF fires.
  StreamOptions opts;
  opts.mode = ProtocolMode::kIndirectOnly;
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream, opts);
  std::vector<std::uint8_t> out(64 * 1024), in(64 * 1024);
  FillPattern(out.data(), out.size(), 0, 4);

  client->Send(out.data(), out.size());
  client->Close();
  sim_.RunFor(Milliseconds(1));  // data sits in the receiver's buffer

  std::vector<Event> events;
  server->events().SetHandler([&](const Event& ev) { events.push_back(ev); });
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();

  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].bytes, out.size());
  EXPECT_EQ(events[1].type, EventType::kPeerClosed);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 4), in.size());
}

TEST_F(CloseTest, SeqPacketClose) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kSeqPacket);
  std::vector<std::uint8_t> out(512), in(512);
  FillPattern(out.data(), out.size(), 0, 5);

  std::vector<Event> events;
  server->events().SetHandler([&](const Event& ev) { events.push_back(ev); });
  server->Recv(in.data(), in.size());
  sim_.RunFor(Microseconds(20));
  client->Send(out.data(), out.size());
  client->Close();
  sim_.Run();

  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].bytes, 512u);  // the message, then EOF
  EXPECT_EQ(events[1].type, EventType::kPeerClosed);
  EXPECT_THROW(client->Send(out.data(), 1), InvariantViolation);
}

TEST_F(CloseTest, SeqPacketPendingRecvsReturnZeroAtEof) {
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kSeqPacket);
  std::vector<std::uint8_t> in(256);
  std::vector<Event> events;
  server->events().SetHandler([&](const Event& ev) { events.push_back(ev); });
  server->Recv(in.data(), in.size());
  server->Recv(in.data(), in.size());
  client->Close();
  sim_.Run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].bytes, 0u);
  EXPECT_EQ(events[1].bytes, 0u);
  EXPECT_EQ(events[2].type, EventType::kPeerClosed);
}

TEST_F(CloseTest, CloseWaitsForCreditWhenPoolIsTight) {
  StreamOptions opts;
  opts.credits = 4;
  opts.max_wwi_chunk = 1024;
  auto [client, server] = sim_.CreateConnectedPair(SocketType::kStream, opts);
  std::vector<std::uint8_t> out(32 * 1024), in(32 * 1024);
  FillPattern(out.data(), out.size(), 0, 6);

  std::vector<Event> events;
  server->events().SetHandler([&](const Event& ev) { events.push_back(ev); });
  client->Send(out.data(), out.size());  // 32 chunks through 4 credits
  client->Close();
  server->Recv(in.data(), in.size(), RecvFlags{.waitall = true});
  sim_.Run();

  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].bytes, out.size());
  EXPECT_EQ(events[1].type, EventType::kPeerClosed);
  EXPECT_EQ(VerifyPattern(in.data(), in.size(), 0, 6), in.size());
}

}  // namespace
}  // namespace exs
