// The observability exporters, end to end: a dynamic-mode run must render
// to a well-formed Chrome trace-event timeline (parsed, not
// string-matched), repeated fixed-seed runs must produce bit-identical
// snapshots, and the registry's named counters must agree with the
// TraceLog — the independent record of the same run.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "blast/blast.hpp"
#include "common/json.hpp"
#include "exs/exs.hpp"
#include "exs/invariant_checker.hpp"
#include "exs/timeline.hpp"
#include "exs/trace.hpp"

namespace exs {
namespace {

using simnet::HardwareProfile;

/// A small mixed direct/indirect workload with tracing enabled.
blast::BlastConfig DynamicCaptureConfig() {
  blast::BlastConfig config;
  config.message_count = 60;
  config.outstanding_sends = 4;
  config.outstanding_recvs = 2;
  config.seed = 7;
  config.capture_metrics = true;
  config.capture_timeline = true;
  return config;
}

TEST(Timeline, DynamicRunExportsValidChromeTrace) {
  blast::BlastResult result = blast::RunBlast(DynamicCaptureConfig());
  ASSERT_FALSE(result.timeline_json.empty());

  json::Value root;
  std::string error;
  ASSERT_TRUE(json::Parse(result.timeline_json, &root, &error)) << error;
  const json::Value* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());
  ASSERT_FALSE(events->array_items.empty());

  // Timestamps non-decreasing, and duration spans balanced with
  // stack discipline per (pid, tid) track.
  double last_ts = -1.0;
  std::map<std::pair<double, double>, std::vector<std::string>> span_stack;
  bool saw_span = false, saw_instant = false, saw_counter = false;
  for (const json::Value& ev : events->array_items) {
    ASSERT_TRUE(ev.IsObject());
    const json::Value* ph = ev.Find("ph");
    ASSERT_NE(ph, nullptr);
    const std::string& kind = ph->string_value;
    if (kind == "M") continue;  // metadata carries no timestamp

    const json::Value* ts = ev.Find("ts");
    ASSERT_NE(ts, nullptr);
    ASSERT_TRUE(ts->IsNumber());
    EXPECT_GE(ts->number_value, last_ts);
    last_ts = ts->number_value;

    double pid = ev.Find("pid")->number_value;
    double tid = ev.Find("tid") != nullptr ? ev.Find("tid")->number_value : -1;
    const std::string& name = ev.Find("name")->string_value;
    if (kind == "B") {
      saw_span = true;
      span_stack[{pid, tid}].push_back(name);
    } else if (kind == "E") {
      auto& stack = span_stack[{pid, tid}];
      ASSERT_FALSE(stack.empty()) << "E without B for " << name;
      EXPECT_EQ(stack.back(), name);
      stack.pop_back();
    } else if (kind == "i") {
      saw_instant = true;
      ASSERT_NE(ev.Find("args"), nullptr);
      EXPECT_NE(ev.Find("args")->Find("seq"), nullptr);
    } else if (kind == "C") {
      saw_counter = true;
      ASSERT_NE(ev.Find("args")->Find("value"), nullptr);
    }
  }
  for (const auto& [track, stack] : span_stack) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on pid " << track.first;
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
}

TEST(Timeline, FixedSeedRunsProduceBitIdenticalSnapshots) {
  blast::BlastResult a = blast::RunBlast(DynamicCaptureConfig());
  blast::BlastResult b = blast::RunBlast(DynamicCaptureConfig());
  ASSERT_FALSE(a.metrics_json.empty());
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.timeline_json, b.timeline_json);
}

TEST(Timeline, MetricsSnapshotParsesAndNamesEverySocket) {
  blast::BlastResult result = blast::RunBlast(DynamicCaptureConfig());
  json::Value root;
  std::string error;
  ASSERT_TRUE(json::Parse(result.metrics_json, &root, &error)) << error;
  ASSERT_NE(root.Find("sim_time_ps"), nullptr);
  const json::Value* sockets = root.Find("sockets");
  ASSERT_NE(sockets, nullptr);
  ASSERT_EQ(sockets->array_items.size(), 2u);
  EXPECT_EQ(sockets->array_items[0].Find("name")->string_value, "client");
  EXPECT_EQ(sockets->array_items[1].Find("name")->string_value, "server");
  const json::Value* metrics = sockets->array_items[0].Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const json::Value* bytes_sent =
      metrics->Find("counters")->Find("tx.bytes_sent");
  ASSERT_NE(bytes_sent, nullptr);
  EXPECT_EQ(bytes_sent->Find("value")->number_value,
            static_cast<double>(result.client_stats.bytes_sent));
}

TEST(Metrics, RegistryCountersAgreeWithTraceLog) {
  // The TraceLog is an independent record of every posted transfer; the
  // registry's byte counters (which also feed Socket::stats()) must match
  // it exactly — the refactor away from ad-hoc stats pokes cannot have
  // changed the totals.
  Simulation sim(HardwareProfile::FdrInfiniBand(), 5, false);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
  client->EnableTracing();
  server->EnableTracing();
  std::vector<std::uint8_t> out(512 * 1024), in(512 * 1024);
  client->Send(out.data(), out.size());  // buffered first: indirect phase
  for (int i = 0; i < 8; ++i) {
    server->Recv(in.data() + i * 64 * 1024, 64 * 1024,
                 RecvFlags{.waitall = true});
    sim.RunFor(Microseconds(50));
  }
  sim.Run();

  // One more exchange with the receive posted first, so its ADVERT reaches
  // the sender and the transfer lands direct (samples rx.advert_rtt).
  std::vector<std::uint8_t> extra(64 * 1024);
  server->Recv(in.data(), extra.size(), RecvFlags{.waitall = true});
  sim.RunFor(Microseconds(50));
  client->Send(extra.data(), extra.size());
  sim.Run();

  std::uint64_t traced_direct = 0, traced_indirect = 0;
  for (const TraceEvent& ev : client->tx_trace().events()) {
    if (ev.type == TraceEventType::kDirectPosted) traced_direct += ev.len;
    if (ev.type == TraceEventType::kIndirectPosted) traced_indirect += ev.len;
  }
  StreamStats stats = client->stats();
  EXPECT_GT(traced_direct, 0u);
  EXPECT_GT(traced_indirect, 0u);
  EXPECT_EQ(stats.direct_bytes, traced_direct);
  EXPECT_EQ(stats.indirect_bytes, traced_indirect);
  EXPECT_EQ(stats.direct_bytes + stats.indirect_bytes,
            out.size() + extra.size());

  // The same numbers under their registry names.
  const auto& counters = client->metrics_registry().counters();
  EXPECT_EQ(counters.at("tx.direct_bytes").instrument->value(),
            traced_direct);
  EXPECT_EQ(counters.at("tx.indirect_bytes").instrument->value(),
            traced_indirect);

  // Time-resolved signals actually observed the run.
  const auto& series = client->metrics_registry().series();
  EXPECT_GT(series.at("tx.inflight_wwis").instrument->count(), 0u);
  EXPECT_GT(series.at("channel.send_credits").instrument->count(), 0u);
  const auto& rx_series = server->metrics_registry().series();
  EXPECT_GT(rx_series.at("rx.ring_occupancy").instrument->max(), 0.0);
  const auto& rx_hists = server->metrics_registry().histograms();
  EXPECT_GT(rx_hists.at("rx.advert_rtt").instrument->count(), 0u);
}

TEST(TraceLogCap, BoundedLogDropsAndCounts) {
  Simulation sim(HardwareProfile::FdrInfiniBand(), 9, false);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
  client->EnableTracing(/*capacity=*/8);
  server->EnableTracing(/*capacity=*/8);
  std::vector<std::uint8_t> buf(64 * 1024);
  for (int i = 0; i < 16; ++i) {
    server->Recv(buf.data(), buf.size(), RecvFlags{.waitall = true});
    sim.RunFor(Microseconds(30));
    client->Send(buf.data(), buf.size());
    sim.Run();
  }
  EXPECT_EQ(client->tx_trace().events().size(), 8u);
  EXPECT_GT(client->tx_trace().dropped(), 0u);
  // The retained prefix is still a sound (shorter) run for the validators.
  auto result = ValidateSenderTrace(client->tx_trace().events());
  EXPECT_TRUE(result.ok()) << result.Summary();
}

TEST(TraceLogCap, DropsSurfaceInTheMetricsSnapshot) {
  // Satellite of the provenance work: a truncated trace must be visible
  // in the ordinary metrics exports, not only via TraceLog::dropped().
  Simulation sim(HardwareProfile::FdrInfiniBand(), 9, false);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
  client->EnableTracing(/*capacity=*/8);
  server->EnableTracing(/*capacity=*/8);
  std::vector<std::uint8_t> buf(64 * 1024);
  for (int i = 0; i < 16; ++i) {
    server->Recv(buf.data(), buf.size(), RecvFlags{.waitall = true});
    sim.RunFor(Microseconds(30));
    client->Send(buf.data(), buf.size());
    sim.Run();
  }
  ASSERT_GT(client->tx_trace().dropped(), 0u);
  const auto& counters = client->metrics_registry().counters();
  ASSERT_TRUE(counters.count("trace.dropped_tx"));
  EXPECT_EQ(counters.at("trace.dropped_tx").instrument->value(),
            client->tx_trace().dropped());
  ASSERT_TRUE(counters.count("trace.dropped_rx"));
  EXPECT_EQ(counters.at("trace.dropped_rx").instrument->value(),
            client->rx_trace().dropped());

  // And the checker, when told to tolerate the truncation, must say so
  // out loud instead of silently passing on the retained prefix.
  InvariantCheckOptions opts;
  opts.allow_truncated = true;
  InvariantReport report = CheckStreamSenderTrace(client->tx_trace(), opts);
  EXPECT_TRUE(report.ok()) << report.Summary();
  ASSERT_FALSE(report.warnings.empty());
  EXPECT_NE(report.warnings.front().find("truncated"), std::string::npos);
  EXPECT_NE(report.Summary().find("warning"), std::string::npos);
}

TEST(TraceLogCap, UnboundedByDefaultAndClearResetsDropCount) {
  TraceLog log;
  log.Enable();
  EXPECT_EQ(log.capacity(), 0u);
  for (int i = 0; i < 100; ++i) log.Record(TraceEvent{});
  EXPECT_EQ(log.events().size(), 100u);
  EXPECT_EQ(log.dropped(), 0u);

  log.Clear();
  log.SetCapacity(10);
  for (int i = 0; i < 100; ++i) log.Record(TraceEvent{});
  EXPECT_EQ(log.events().size(), 10u);
  EXPECT_EQ(log.dropped(), 90u);
  log.Clear();
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_TRUE(log.events().empty());
}

}  // namespace
}  // namespace exs
