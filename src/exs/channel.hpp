// The connection's transport plumbing, shared by both socket modes.
//
// A ControlChannel owns the queue pair and implements the credit scheme of
// §II-B: each side pre-posts `credits` receive work requests backed by a
// slab of small registered buffers; every SEND (control message) or RDMA
// WRITE WITH IMM (data chunk) consumes one credit at the destination, and
// consumed receives are reposted immediately and returned to the peer as
// `credit_return` piggybacked on control traffic — with a standalone
// CREDIT message when enough accumulate and nothing else is flowing.  One
// credit is held in reserve so a CREDIT message can always be sent,
// which keeps the scheme deadlock-free.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/metrics.hpp"
#include "exs/wire.hpp"
#include "simnet/faults.hpp"
#include "verbs/device.hpp"
#include "verbs/queue_pair.hpp"

namespace exs {

/// Source of shared control-receive slots for channels whose queue pair
/// draws from a verbs SharedReceiveQueue instead of a private pool.
/// Implemented by the engine's ControlSlotPool; the interface lives here so
/// exs core never includes engine headers.  Slot identity is the receive's
/// wr_id — a global index into the pool's slab, valid across every channel
/// attached to the same source.
class ControlSlotSource {
 public:
  virtual ~ControlSlotSource() = default;
  virtual verbs::SharedReceiveQueue& srq() = 0;
  /// Account `n` pool slots to a new channel.  False when the pool cannot
  /// cover them — the acceptor's admission control refuses the connection
  /// instead of risking RNR on an established one.
  virtual bool ReserveSlots(std::uint32_t n) = 0;
  virtual void UnreserveSlots(std::uint32_t n) = 0;
  /// Memory backing a consumed slot.
  virtual const std::uint8_t* SlotMem(std::uint64_t slot) const = 0;
  /// Recycle a consumed slot's receive back into the shared pool.
  virtual void RepostSlot(std::uint64_t slot) = 0;

  /// Expires when this source is destroyed.  A socket may legitimately
  /// outlive the pool it drew from (the ConnectionService owns accepted
  /// sockets, and typically outlives the acceptor); teardown paths that
  /// would call back into the source — the channel's destructor refunding
  /// its slot reservation — must check this first, making the refund a
  /// no-op once there is no pool left to refund.
  std::weak_ptr<void> LivenessToken() const { return liveness_; }

 private:
  std::shared_ptr<void> liveness_ = std::make_shared<char>(0);
};

/// One source slice of a vectored data post: the channel-layer face of a
/// verbs gather element.  A PostDataWwiV slice list becomes the work
/// request's SGE list, so it is bounded by verbs::kMaxSge entries.
struct SendSlice {
  const void* addr = nullptr;
  std::uint32_t length = 0;
  std::uint32_t lkey = 0;
};

/// The transport surface a protocol half (StreamTx/StreamRx/SeqPacket*/
/// Rendezvous*) drives.  Two implementations: ControlChannel — a dedicated
/// queue pair per connection (classic) — and MuxStream (exs/mux.hpp) — one
/// stream of a shared-QP MuxGroup, layering a per-stream credit window and
/// fair dispatch over the shared channel's §II-B credits.  The protocol
/// halves are written against this interface only, so multiplexing never
/// touches the stream algorithms themselves.
class ChannelEndpoint {
 public:
  struct Callbacks {
    /// An ADVERT or ACK arrived (CREDIT messages are absorbed internally).
    std::function<void(const wire::ControlMessage&)> on_control;
    /// A data WWI arrived: kind and chunk length decoded from the imm,
    /// plus the stripe sequence number when the sender striped the stream
    /// across multiple rails (has_stripe_seq == false on classic
    /// single-rail connections).  `trace_ctx` is the causal-tracing
    /// correlation id carried as work-request metadata (0 = untraced).
    std::function<void(bool indirect, std::uint64_t len, bool has_stripe_seq,
                       std::uint64_t stripe_seq, std::uint64_t trace_ctx)>
        on_data;
    /// Raw variant of on_data: when set, it is invoked INSTEAD of on_data
    /// with the undecoded work completion (imm, stripe and mux extensions
    /// included).  The slot channels of a MuxGroup hook this to demultiplex
    /// arrivals by stream id before decoding; everything else leaves it
    /// unset and keeps the decoded callback.
    std::function<void(const verbs::WorkCompletion&)> on_data_raw;
    /// A locally posted data WWI completed (transport-acknowledged).
    std::function<void(std::uint64_t wr_id)> on_data_sent;
    /// A locally posted RDMA READ completed (data landed here).
    std::function<void(std::uint64_t wr_id, std::uint64_t bytes)>
        on_read_done;
    /// Our send credit increased; blocked work may be retried.
    std::function<void()> on_credit_available;
    /// The transport died: the queue pair entered the fatal error state
    /// (killed locally, or its retries exhausted against a dead peer).
    /// Invoked exactly once per death; after it fires CanSend() is false
    /// until the channel is reconnected (Socket::ResumePair).
    std::function<void(verbs::WcStatus)> on_fatal;
  };

  virtual ~ChannelEndpoint() = default;

  virtual void set_callbacks(Callbacks callbacks) = 0;
  /// Can a normal message (control or data) be sent right now?
  virtual bool CanSend() const = 0;
  /// The endpoint can accept no traffic until reconnected/revived.
  virtual bool dead() const = 0;
  /// Send an ADVERT or ACK; fills in the piggybacked credit return (and,
  /// for mux endpoints, the stream id).  Caller must have checked CanSend().
  virtual void SendControl(wire::ControlMessage msg) = 0;
  /// Post a data chunk as RDMA WRITE WITH IMM into peer memory.  Caller
  /// must have checked CanSend().  `wr_id` is returned via on_data_sent.
  /// When `has_stripe_seq`, the chunk carries `stripe_seq` in an extended
  /// wire header (multi-rail striping) at kStripeHeaderBytes extra cost.
  /// `trace_ctx` rides as zero-cost work-request metadata and surfaces in
  /// the peer's on_data callback (0 = untraced).
  virtual void PostDataWwi(std::uint64_t wr_id, const void* src,
                           std::uint32_t lkey, std::uint64_t len,
                           std::uint64_t remote_addr, std::uint32_t rkey,
                           bool indirect, bool has_stripe_seq = false,
                           std::uint64_t stripe_seq = 0,
                           std::uint64_t trace_ctx = 0) = 0;
  /// Vectored PostDataWwi: the chunk's `len` payload bytes are gathered
  /// from `n` slices (1 <= n <= verbs::kMaxSge, slice lengths summing to
  /// exactly `len`) by the HCA — one work request, one wire chunk, no
  /// staging copy.  Semantics otherwise identical to PostDataWwi.
  virtual void PostDataWwiV(std::uint64_t wr_id, const SendSlice* slices,
                            std::uint32_t n, std::uint64_t len,
                            std::uint64_t remote_addr, std::uint32_t rkey,
                            bool indirect, bool has_stripe_seq = false,
                            std::uint64_t stripe_seq = 0,
                            std::uint64_t trace_ctx = 0) = 0;
  /// Ring the doorbell for any data posts this endpoint is holding back
  /// under doorbell batching (StreamOptions::Batching::doorbell).  A no-op
  /// on endpoints that post eagerly — the default everywhere.
  virtual void FlushPostedWrs() {}
  /// Any posts currently held back awaiting a doorbell?  Senders use this
  /// to decide whether a deferred flush event is worth scheduling.
  virtual bool HasPendingPostedWrs() const { return false; }
  /// Pull `len` bytes from peer memory with RDMA READ (rendezvous mode).
  /// READs consume no receive at the target, hence no credit.  Mux
  /// endpoints refuse this — rendezvous sockets keep dedicated channels.
  virtual void PostRead(std::uint64_t wr_id, void* dst, std::uint32_t lkey,
                        std::uint64_t len, std::uint64_t remote_addr,
                        std::uint32_t rkey) = 0;
  /// The device whose memory registrations cover this endpoint's traffic.
  virtual verbs::Device& device() = 0;
};

class ControlChannel : public ChannelEndpoint,
                       public simnet::IncomingHoldTarget {
 public:
  /// Extra wire metadata stamped on data WWIs posted through a MuxStream;
  /// absent (present == false) on every classic post.
  struct MuxTag {
    bool present = false;
    std::uint32_t stream = 0;
    std::uint64_t seq = 0;
    std::uint8_t epoch = 0;
  };

  /// `shared_slots` switches the receive side to SRQ mode: no private
  /// slab is allocated; Connect attaches the queue pair to the source's
  /// shared receive queue and reserves `credits` pool slots (the per-peer
  /// credit grant the reservation must cover).  Null keeps the classic
  /// private pool.  `slots_pre_reserved` means the admission point
  /// already made that reservation (atomically with its admission check)
  /// and this channel adopts it: Connect reserves nothing, the destructor
  /// still refunds.
  ControlChannel(verbs::Device& device, std::uint32_t credits,
                 ControlSlotSource* shared_slots = nullptr,
                 bool slots_pre_reserved = false);
  ~ControlChannel() override;

  ControlChannel(const ControlChannel&) = delete;
  ControlChannel& operator=(const ControlChannel&) = delete;

  /// Wire two channels on opposite nodes together and pre-post the credit
  /// pool on both.  Calling Connect again on a pair of *dead* channels
  /// reconnects them: fresh queue pairs are built (the dead ones are parked
  /// until teardown so their in-flight flush callbacks stay safe), the
  /// receive pool is re-posted, and the credit scheme restarts from full.
  /// A shared-slot channel keeps its admission-time reservation across the
  /// reconnect — resuming is not a new admission.
  static void Connect(ControlChannel& a, ControlChannel& b);

  /// Force the transport into the fatal error state (fault injection).
  /// Returns false when the channel is already dead — the kill is a no-op,
  /// never a dangling callback.
  bool Kill();
  bool dead() const override { return dead_; }

  void set_callbacks(Callbacks callbacks) override {
    callbacks_ = std::move(callbacks);
  }

  /// Attach observability instruments: `credits` samples the send-credit
  /// balance whenever it changes; `credit_messages` counts standalone
  /// CREDIT messages.  Either may be null.
  void SetInstruments(metrics::TimeWeightedSeries* credits,
                      metrics::Counter* credit_messages);

  /// Attach per-queue-pair instruments ("rail<i>.*" in the registry) plus
  /// a series sampling this channel's outstanding send-queue work
  /// requests.  Must be called before Connect so the queue pair is born
  /// instrumented; all pointers may be null.
  void SetQpInstruments(const verbs::QueuePairInstruments& inst,
                        metrics::TimeWeightedSeries* inflight_wrs);

  /// Can a normal message (control or data) be sent right now?  One credit
  /// is reserved for CREDIT messages; a dead transport can send nothing.
  bool CanSend() const override { return !dead_ && remote_credits_ >= 2; }

  /// Send an ADVERT or ACK; fills in the piggybacked credit return.
  /// Caller must have checked CanSend().
  void SendControl(wire::ControlMessage msg) override;

  void PostDataWwi(std::uint64_t wr_id, const void* src, std::uint32_t lkey,
                   std::uint64_t len, std::uint64_t remote_addr,
                   std::uint32_t rkey, bool indirect,
                   bool has_stripe_seq = false, std::uint64_t stripe_seq = 0,
                   std::uint64_t trace_ctx = 0) override;

  /// PostDataWwi with a stream-multiplexing tag stamped on the work
  /// request (kMuxHeaderBytes extra wire cost when present).  The plain
  /// virtual overload forwards here with an absent tag.
  void PostDataWwiTagged(std::uint64_t wr_id, const void* src,
                         std::uint32_t lkey, std::uint64_t len,
                         std::uint64_t remote_addr, std::uint32_t rkey,
                         bool indirect, bool has_stripe_seq,
                         std::uint64_t stripe_seq, std::uint64_t trace_ctx,
                         const MuxTag& tag);

  void PostDataWwiV(std::uint64_t wr_id, const SendSlice* slices,
                    std::uint32_t n, std::uint64_t len,
                    std::uint64_t remote_addr, std::uint32_t rkey,
                    bool indirect, bool has_stripe_seq = false,
                    std::uint64_t stripe_seq = 0,
                    std::uint64_t trace_ctx = 0) override;

  /// Vectored variant of PostDataWwiTagged: the work request's gather list
  /// is built from `slices` (lengths must sum to exactly `len`).
  void PostDataWwiVTagged(std::uint64_t wr_id, const SendSlice* slices,
                          std::uint32_t n, std::uint64_t len,
                          std::uint64_t remote_addr, std::uint32_t rkey,
                          bool indirect, bool has_stripe_seq,
                          std::uint64_t stripe_seq, std::uint64_t trace_ctx,
                          const MuxTag& tag);

  /// Arm doorbell batching: data WWIs accumulate in a pending list and are
  /// posted through QueuePair::PostSendBatch — one doorbell per batch —
  /// when `max_wrs` accumulate, when FlushPostedWrs() is called, or before
  /// any operation that must not reorder around them (SendControl,
  /// PostRead: RC FIFO order says control must not overtake batched data).
  /// 0 disables (the default): every post rings its own doorbell
  /// immediately, timing bit-identical to pre-batching builds.
  void SetSendBatching(std::uint32_t max_wrs) { batch_max_wrs_ = max_wrs; }
  /// Arm batched completion dispatch on both of this channel's CQs: up to
  /// `max_n` completions per CPU pass, handlers clumped at one instant
  /// (verbs::CompletionQueue::SetDispatchBatch).
  void SetCqDispatchBatch(std::uint32_t max_n) {
    send_cq_->SetDispatchBatch(max_n);
    recv_cq_->SetDispatchBatch(max_n);
  }
  void FlushPostedWrs() override { FlushSendBatch(); }
  bool HasPendingPostedWrs() const override { return !pending_wrs_.empty(); }
  std::size_t PendingBatchedWrs() const { return pending_wrs_.size(); }

  void PostRead(std::uint64_t wr_id, void* dst, std::uint32_t lkey,
                std::uint64_t len, std::uint64_t remote_addr,
                std::uint32_t rkey) override;

  /// Fault injection (simnet/faults.hpp): freeze incoming completion
  /// dispatch for `hold`, then release the backlog strictly in arrival
  /// order.  Models delayed control/ADVERT delivery while honouring RC
  /// in-order semantics: everything behind a held message waits too.
  /// Deferring the whole dispatch (including the slot repost) is safe —
  /// an unprocessed slot's receive is not reposted, so its slab bytes
  /// stay intact, and the credit scheme throttles the peer before the
  /// pool could be oversubscribed.
  void HoldIncoming(SimDuration hold) override;

  /// Completions currently frozen by HoldIncoming.
  std::size_t HeldCompletions() const { return deferred_.size(); }

  verbs::Device& device() override { return *device_; }
  /// Transport ack / death-propagation delay of the underlying queue pair
  /// (valid once connected).  The mux tier's virtual per-stream kill uses
  /// it so peer discovery keeps real-QP timing.
  SimDuration AckReturnDelay() const { return qp_->AckReturnDelay(); }
  bool UsesSharedSlots() const { return shared_slots_ != nullptr; }
  std::uint32_t remote_credits() const { return remote_credits_; }
  std::uint32_t credit_pool_size() const { return credits_; }
  /// Reposted receives not yet reported to the peer.  At quiescence
  /// `peer.remote_credits() + owed_credits() == credit_pool_size()` — the
  /// conservation law the mux invariant checker audits per slot.
  std::uint32_t owed_credits() const { return owed_credits_; }
  /// Whether the channel owns a queue pair yet (false before Connect);
  /// qp_stats()/AckReturnDelay() are only valid when this holds.
  bool HasQueuePair() const { return qp_ != nullptr; }
  const verbs::QueuePairStats& qp_stats() const { return qp_->stats(); }
  std::uint64_t credit_messages_sent() const { return credit_messages_sent_; }

 private:
  void FlushSendBatch();
  void EnqueueOrPost(const verbs::SendWorkRequest& wr);
  void OnSendCompletion(const verbs::WorkCompletion& wc);
  void OnRecvCompletion(const verbs::WorkCompletion& wc);
  void ProcessRecvCompletion(const verbs::WorkCompletion& wc);
  void MarkDead(verbs::WcStatus reason);
  void ResetForResume();
  void DrainDeferred();
  void AttachReceivePool();
  void PostSlotRecv(std::uint32_t slot);
  void ConsumeCredit();
  void ReturnConsumedSlot();
  void MaybeSendStandaloneCredit();
  std::uint32_t TakeCreditReturn();
  void SampleCredits();
  void SampleInflightWrs();

  verbs::Device* device_;
  std::uint32_t credits_;
  ControlSlotSource* shared_slots_;  ///< null = classic private pool
  std::weak_ptr<void> slots_liveness_;  ///< guards the dtor's refund
  bool slots_reserved_ = false;
  std::unique_ptr<verbs::CompletionQueue> send_cq_;
  std::unique_ptr<verbs::CompletionQueue> recv_cq_;
  std::unique_ptr<verbs::QueuePair> qp_;
  /// Killed queue pairs from before a reconnect, kept alive so scheduler
  /// closures they captured stay valid; their late completions are dropped
  /// by the wc.qp identity check in the CQ handlers.
  std::vector<std::unique_ptr<verbs::QueuePair>> dead_qps_;
  bool dead_ = false;
  bool fatal_notified_ = false;
  std::vector<std::uint8_t> slab_;  ///< empty in shared-slot mode
  verbs::MemoryRegionPtr slab_mr_;
  Callbacks callbacks_;

  SimTime hold_until_ = 0;  ///< incoming dispatch frozen before this time
  std::deque<verbs::WorkCompletion> deferred_;  ///< held, in arrival order

  std::uint32_t remote_credits_ = 0;  ///< peer receives we may consume
  std::uint32_t owed_credits_ = 0;    ///< reposted receives not yet reported
  std::uint64_t credit_messages_sent_ = 0;
  metrics::TimeWeightedSeries* credit_series_ = nullptr;
  metrics::Counter* credit_message_counter_ = nullptr;
  verbs::QueuePairInstruments qp_inst_;
  metrics::TimeWeightedSeries* inflight_wr_series_ = nullptr;
  std::uint64_t outstanding_wrs_ = 0;  ///< posted sends awaiting completion

  std::uint32_t batch_max_wrs_ = 0;  ///< 0 = doorbell batching off
  /// Data WRs built but not yet posted (doorbell batching).  Always empty
  /// when batch_max_wrs_ == 0.
  std::vector<verbs::SendWorkRequest> pending_wrs_;

  /// Work-request id marking internal control sends on the send CQ.
  static constexpr std::uint64_t kControlWrId = ~std::uint64_t{0};
};

}  // namespace exs
