// Wire formats of the EXS stream protocol.
//
// Control traffic (ADVERT, ACK, CREDIT) travels as small inline SENDs;
// data travels as RDMA WRITE WITH IMM ("WWI") either into advertised user
// memory (direct) or into the peer's intermediate circular buffer
// (indirect).  The 32-bit immediate carries the transfer kind and chunk
// length, which is all the receiver needs: by the paper's safety theorem a
// direct transfer always belongs to the receive at the head of the queue,
// and an indirect transfer always lands at the receiver's fill cursor.
#pragma once

#include <cstdint>
#include <cstring>

#include "common/check.hpp"

namespace exs::wire {

enum class ControlType : std::uint8_t {
  kAdvert = 1,
  kAck = 2,
  kCredit = 3,
  kShutdown = 4,   ///< orderly end-of-stream for the sending direction
  kSrcAdvert = 5,  ///< rendezvous: sender exposes source memory for READ
  kReadDone = 6,   ///< rendezvous: oldest source fully consumed (freed=bytes)
};

/// One POD covers all control messages; unused fields are zero.  Every
/// control message piggybacks `credit_return`: the number of receive work
/// requests this side has reposted since it last told the peer (§II-B's
/// periodic credit return).
struct ControlMessage {
  std::uint8_t type = 0;
  std::uint8_t waitall = 0;       // ADVERT: MSG_WAITALL was set
  std::uint8_t ack_piggyback = 0; // ADVERT: `freed` carries an ACK count
  /// Shared-QP multiplexing (StreamOptions::mux): the stream's reconnect
  /// epoch; a message whose epoch trails the stream's current one predates
  /// a virtual kill and is dropped.  Always 0 on unmuxed connections (this
  /// byte was previously reserved, so classic wire bytes are unchanged).
  std::uint8_t mux_epoch = 0;
  /// §II-B piggybacked credit return.  Narrowed to 16 bits so the adjacent
  /// half-word can carry the mux stream id in the same four header bytes;
  /// the channel constructor caps the credit pool at 65535 accordingly.
  std::uint16_t credit_return = 0;
  /// Shared-QP multiplexing: which stream of the shared channel this
  /// message belongs to.  Always 0 on unmuxed connections, keeping the
  /// classic wire image bit-identical (the field occupies what was the
  /// upper half of the old 32-bit credit_return, which never exceeded the
  /// credit pool size and so never used those bits).
  std::uint16_t stream_id = 0;

  // ADVERT fields (Fig. 3): where to write, how much fits, and the
  // receiver's expected sequence number and phase.
  std::uint64_t addr = 0;
  std::uint32_t rkey = 0;
  std::uint32_t phase_lo = 0;     // low half of the 64-bit phase
  std::uint64_t phase_hi = 0;
  std::uint64_t seq = 0;
  std::uint64_t len = 0;

  // ACK field (Fig. 5): bytes drained from the intermediate buffer since
  // the previous ACK.  An ADVERT never uses this field for itself, so with
  // `ack_piggyback` set it doubles as a piggybacked ACK count — the
  // steady-state indirect loop then resynchronises with one control
  // message instead of an ACK + ADVERT pair.
  std::uint64_t freed = 0;

  // Recovery (StreamOptions::recovery): the receiver's delivered-byte
  // frontier — the contiguous stream prefix it has taken into custody
  // (placed for the application or buffered in its ring).  Rides on ACKs
  // and ADVERTs so the sender can prune its retransmission log; always 0
  // when recovery is off, which keeps the wire bytes (and so all golden
  // fingerprints) unchanged — control slots were already padded to
  // kControlSlotBytes.
  std::uint64_t delivered = 0;

  std::uint64_t phase() const {
    return (phase_hi << 32) | phase_lo;
  }
  void set_phase(std::uint64_t p) {
    phase_lo = static_cast<std::uint32_t>(p & 0xffffffffULL);
    phase_hi = p >> 32;
  }
};
/// Receive-slot size; control messages must fit.
inline constexpr std::uint32_t kControlSlotBytes = 64;
static_assert(sizeof(ControlMessage) <= kControlSlotBytes,
              "control message fits one slot");
static_assert(sizeof(ControlMessage) == 64,
              "splitting credit_return must not change the wire image — the "
              "mux fields pack into bytes that were zero before");

inline void Serialize(const ControlMessage& msg, void* out) {
  std::memcpy(out, &msg, sizeof(msg));
}

inline ControlMessage Parse(const void* in, std::size_t len) {
  EXS_CHECK_MSG(len >= sizeof(ControlMessage), "short control message");
  ControlMessage msg;
  std::memcpy(&msg, in, sizeof(msg));
  return msg;
}

// ---- Immediate-data encoding for data WWIs --------------------------------

inline constexpr std::uint32_t kImmIndirectBit = 0x80000000u;
inline constexpr std::uint32_t kImmLengthMask = 0x7fffffffu;

/// Largest chunk a single WWI may carry under this encoding (2 GiB - 1).
inline constexpr std::uint64_t kMaxWwiChunk = kImmLengthMask;

inline std::uint32_t EncodeDataImm(bool indirect, std::uint64_t length) {
  EXS_CHECK_MSG(length > 0 && length <= kMaxWwiChunk,
                "WWI chunk length out of range");
  return (indirect ? kImmIndirectBit : 0u) |
         static_cast<std::uint32_t>(length);
}

inline bool ImmIsIndirect(std::uint32_t imm) {
  return (imm & kImmIndirectBit) != 0;
}

inline std::uint64_t ImmLength(std::uint32_t imm) {
  return imm & kImmLengthMask;
}

}  // namespace exs::wire
