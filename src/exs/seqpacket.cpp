#include "exs/seqpacket.hpp"

#include "common/check.hpp"

namespace exs {

void SeqPacketTx::Submit(std::uint64_t id, const void* buf, std::uint64_t len,
                         std::uint32_t lkey) {
  EXS_CHECK_MSG(!shutdown_requested_, "send after Close()");
  EXS_CHECK_MSG(len > 0, "empty SEQPACKET message");
  EXS_CHECK_MSG(len <= wire::kMaxWwiChunk,
                "SEQPACKET message exceeds the single-WWI limit");
  PendingSend s;
  s.id = id;
  s.base = static_cast<const std::uint8_t*>(buf);
  s.len = len;
  s.lkey = lkey;
  sends_.push_back(s);
  Pump();
}

void SeqPacketTx::OnAdvert(const wire::ControlMessage& msg) {
  adverts_.push_back(Advert{msg.addr, msg.rkey, msg.len});
  ctx_.metrics->adverts_received->Increment();
  Trace(TraceEventType::kAdvertReceived, msg.len, msg.seq);
  Pump();
}

void SeqPacketTx::RequestShutdown() {
  shutdown_requested_ = true;
  Pump();
}

void SeqPacketTx::Pump() {
  // Message mode: one ADVERT, one WWI, one message — sends wait for
  // adverts and never fall back to buffering.
  while (!sends_.empty() && !adverts_.empty()) {
    if (!ctx_.channel->CanSend()) return;
    PendingSend s = sends_.front();
    Advert a = adverts_.front();
    sends_.pop_front();
    adverts_.pop_front();

    std::uint64_t bytes = s.len < a.len ? s.len : a.len;
    bool truncated = s.len > a.len;
    ctx_.metrics->direct_transfers->Increment();
    ctx_.metrics->direct_bytes->Add(bytes);
    // Traced before seq_ advances, like the stream sender: ev.seq is the
    // cumulative byte count *before* this message.
    Trace(TraceEventType::kDirectPosted, bytes);
    seq_ += bytes;
    awaiting_ack_.push_back(Sent{s.id, bytes, truncated});
    ctx_.channel->PostDataWwi(s.id, s.base, s.lkey, bytes, a.addr, a.rkey,
                              /*indirect=*/false);
  }

  // Orderly close once every queued message has been posted.
  if (shutdown_requested_ && !shutdown_sent_ && sends_.empty() &&
      ctx_.channel->CanSend()) {
    wire::ControlMessage msg;
    msg.type = static_cast<std::uint8_t>(wire::ControlType::kShutdown);
    ctx_.channel->SendControl(msg);
    shutdown_sent_ = true;
  }
}

void SeqPacketTx::OnWwiComplete(std::uint64_t wr_id) {
  EXS_CHECK(!awaiting_ack_.empty());
  Sent sent = awaiting_ack_.front();
  EXS_CHECK_MSG(sent.id == wr_id, "SEQPACKET completions arrive in order");
  awaiting_ack_.pop_front();
  ctx_.metrics->sends_completed->Increment();
  ctx_.metrics->bytes_sent->Add(sent.bytes);
  ctx_.events->Push(
      Event{EventType::kSendComplete, sent.id, sent.bytes, sent.truncated});
}

void SeqPacketRx::OnShutdown() {
  EXS_CHECK_MSG(!peer_closed_, "duplicate SHUTDOWN");
  peer_closed_ = true;
  // Message mode has no buffering: every sent message was delivered
  // before the SHUTDOWN; waiting receives can never be matched now.
  while (!pending_.empty()) {
    PendingRecv rec = pending_.front();
    pending_.pop_front();
    ctx_.metrics->recvs_completed->Increment();
    ctx_.events->Push(Event{EventType::kRecvComplete, rec.id, 0, false});
  }
  ctx_.events->Push(Event{EventType::kPeerClosed, 0, 0, false});
}

void SeqPacketRx::Submit(std::uint64_t id, void* buf, std::uint64_t len,
                         std::uint32_t rkey) {
  EXS_CHECK_MSG(len > 0, "zero-length receive is not meaningful");
  if (peer_closed_) {
    ctx_.metrics->recvs_completed->Increment();
    ctx_.events->Push(Event{EventType::kRecvComplete, id, 0, false});
    return;
  }
  PendingRecv rec;
  rec.id = id;
  rec.base = static_cast<std::uint8_t*>(buf);
  rec.len = len;
  rec.rkey = rkey;
  pending_.push_back(rec);
  AdvertisePending();
}

void SeqPacketRx::AdvertisePending() {
  for (auto& rec : pending_) {
    if (rec.adverted) continue;
    if (!ctx_.channel->CanSend()) return;
    wire::ControlMessage msg;
    msg.type = static_cast<std::uint8_t>(wire::ControlType::kAdvert);
    msg.addr = reinterpret_cast<std::uint64_t>(rec.base);
    msg.rkey = rec.rkey;
    msg.len = rec.len;
    // Message mode has no stream sequence; the otherwise-unused seq field
    // carries a monotone ADVERT counter so the invariant checker can
    // verify ordered, loss-free ADVERT delivery.
    msg.seq = ++advert_seq_;
    ctx_.channel->SendControl(msg);
    rec.adverted = true;
    ctx_.metrics->adverts_sent->Increment();
    Trace(TraceEventType::kAdvertSent, rec.len, advert_seq_);
  }
}

void SeqPacketRx::OnData(bool indirect, std::uint64_t len) {
  EXS_CHECK_MSG(!indirect, "SEQPACKET connections have no indirect path");
  EXS_CHECK_MSG(!pending_.empty(), "message arrived with no pending receive");
  PendingRecv rec = pending_.front();
  EXS_CHECK_MSG(rec.adverted, "message arrived for un-advertised receive");
  pending_.pop_front();
  ctx_.metrics->recvs_completed->Increment();
  ctx_.metrics->bytes_received->Add(len);
  ctx_.metrics->direct_bytes_received->Add(len);
  // Traced after seq_ advances, like the stream receiver: ev.seq is the
  // cumulative byte count *including* this message.
  seq_ += len;
  Trace(TraceEventType::kDirectArrived, len);
  ctx_.events->Push(Event{EventType::kRecvComplete, rec.id, len, false});
}

}  // namespace exs
