#include "exs/mux.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace exs {

// ---------------------------------------------------------------------------
// MuxGroup
// ---------------------------------------------------------------------------

MuxGroup::MuxGroup(verbs::Device& device, MuxOptions options)
    : device_(&device), options_(options) {
  EXS_CHECK_MSG(options_.width >= 1, "a mux group needs at least one slot");
  EXS_CHECK_MSG(options_.per_stream_credits >= 1,
                "per-stream window must admit at least one WWI");
  EXS_CHECK_MSG(options_.drr_quantum >= 1, "zero quantum would never wake");
  slots_.reserve(options_.width);
  for (std::uint32_t i = 0; i < options_.width; ++i) {
    slots_.push_back(
        std::make_unique<ControlChannel>(device, options_.qp_credits));
  }
  slot_fifo_.resize(slots_.size());
  slot_streams_.resize(slots_.size());
  slot_dead_ids_.resize(slots_.size(), 0);
  slot_cursor_.resize(slots_.size(), 0);
  slot_in_round_.resize(slots_.size(), false);
  for (std::size_t i = 0; i < slots_.size(); ++i) WireSlot(i);
}

MuxGroup::~MuxGroup() = default;

void MuxGroup::Connect(MuxGroup& a, MuxGroup& b) {
  EXS_CHECK_MSG(a.slots_.size() == b.slots_.size(),
                "mux groups must agree on pool width");
  a.peer_ = &b;
  b.peer_ = &a;
  for (std::size_t i = 0; i < a.slots_.size(); ++i) {
    ControlChannel::Connect(*a.slots_[i], *b.slots_[i]);
    // Reconnect path: posts flushed by the slot's death never complete, so
    // their FIFO records are stale (cleared at the fatal too — this keeps
    // a partial-death reconnect consistent).
    a.slot_fifo_[i].clear();
    b.slot_fifo_[i].clear();
  }
}

std::unique_ptr<MuxStream> MuxGroup::AttachStream(std::uint32_t stream_id) {
  EXS_CHECK_MSG(stream_id <= 0xffff,
                "mux stream id exceeds the 16-bit wire field");
  EXS_CHECK_MSG(routes_.find(stream_id) == routes_.end(),
                "stream id " << stream_id << " already attached");
  std::unique_ptr<MuxStream> stream(new MuxStream(*this, stream_id));
  routes_.emplace(stream_id, stream.get());
  slot_streams_[SlotIndex(stream_id)].push_back(stream_id);
  ++stats_.streams_attached;
  if (stream_id >= next_stream_id_) next_stream_id_ = stream_id + 1;
  return stream;
}

MuxStream* MuxGroup::FindStream(std::uint32_t stream_id) {
  auto it = routes_.find(stream_id);
  return it == routes_.end() ? nullptr : it->second;
}

const MuxStream* MuxGroup::FindStream(std::uint32_t stream_id) const {
  auto it = routes_.find(stream_id);
  return it == routes_.end() ? nullptr : it->second;
}

std::vector<std::uint32_t> MuxGroup::StreamIds() const {
  std::vector<std::uint32_t> ids;
  ids.reserve(routes_.size());
  for (const auto& [id, stream] : routes_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void MuxGroup::Detach(std::uint32_t stream_id) {
  auto it = routes_.find(stream_id);
  if (it == routes_.end()) return;
  routes_.erase(it);
  ++stats_.streams_detached;
  std::size_t slot = SlotIndex(stream_id);
  // Lazy removal from the dispatch rotation: compact once dead ids
  // outnumber live ones, so mass teardown stays linear overall.
  if (++slot_dead_ids_[slot] * 2 > slot_streams_[slot].size()) {
    auto& ids = slot_streams_[slot];
    std::erase_if(ids, [this](std::uint32_t id) {
      return routes_.find(id) == routes_.end();
    });
    slot_dead_ids_[slot] = 0;
    slot_cursor_[slot] = 0;
  }
}

void MuxGroup::WireSlot(std::size_t slot) {
  ChannelEndpoint::Callbacks cb;
  cb.on_data_raw = [this, slot](const verbs::WorkCompletion& wc) {
    OnSlotDataRaw(slot, wc);
  };
  cb.on_control = [this](const wire::ControlMessage& msg) {
    OnSlotControl(msg);
  };
  cb.on_data_sent = [this, slot](std::uint64_t wr_id) {
    OnSlotDataSent(slot, wr_id);
  };
  cb.on_read_done = [](std::uint64_t, std::uint64_t) {
    EXS_CHECK_MSG(false, "RDMA READ completion on a mux slot");
  };
  cb.on_credit_available = [this, slot] { DispatchSlot(slot); };
  cb.on_fatal = [this, slot](verbs::WcStatus status) {
    OnSlotFatal(slot, status);
  };
  slots_[slot]->set_callbacks(std::move(cb));
}

void MuxGroup::OnSlotDataRaw(std::size_t /*slot*/,
                             const verbs::WorkCompletion& wc) {
  EXS_CHECK_MSG(wc.has_mux, "untagged data WWI on a mux slot");
  auto it = routes_.find(wc.mux_stream);
  if (it == routes_.end()) {
    ++stats_.orphan_drops;
    return;
  }
  MuxStream* stream = it->second;
  if (stream->dead_ || wc.mux_epoch != stream->epoch_) {
    ++stats_.stale_data_drops;
    return;
  }
  // Per-stream continuity through the shared QP: RC FIFO delivery means
  // each stream's arrivals are an in-order subsequence of its slot's.
  EXS_CHECK_MSG(wc.mux_seq == stream->rx_expect_,
                "mux stream " << stream->id_ << " delivery out of order: got "
                              << wc.mux_seq << ", expected "
                              << stream->rx_expect_);
  ++stream->rx_expect_;
  ++stats_.data_delivered;
  if (stream->callbacks_.on_data) {
    stream->callbacks_.on_data(wire::ImmIsIndirect(wc.imm),
                               wire::ImmLength(wc.imm), wc.has_stripe_seq,
                               wc.stripe_seq, wc.trace_ctx);
  }
}

void MuxGroup::OnSlotControl(const wire::ControlMessage& msg) {
  auto it = routes_.find(msg.stream_id);
  if (it == routes_.end()) {
    ++stats_.orphan_drops;
    return;
  }
  MuxStream* stream = it->second;
  if (stream->dead_ || msg.mux_epoch != stream->epoch_) {
    ++stats_.stale_control_drops;
    return;
  }
  if (stream->callbacks_.on_control) stream->callbacks_.on_control(msg);
}

void MuxGroup::OnSlotDataSent(std::size_t slot, std::uint64_t wr_id) {
  EXS_CHECK_MSG(!slot_fifo_[slot].empty(),
                "send completion with no posted record");
  PostRecord rec = slot_fifo_[slot].front();
  slot_fifo_[slot].pop_front();
  EXS_CHECK_MSG(rec.wr_id == wr_id, "send completions out of post order");
  auto it = routes_.find(rec.stream);
  if (it == routes_.end()) {
    ++stats_.orphan_completions;
    return;
  }
  MuxStream* stream = it->second;
  if (rec.epoch != stream->epoch_) return;  // pre-revive post; window reset
  stream->NoteDataSent(wr_id);
}

void MuxGroup::OnSlotFatal(std::size_t slot, verbs::WcStatus status) {
  // A real slot-QP death takes every stream riding the slot with it.  The
  // flushed posts never complete, so their FIFO records are dropped here
  // (late success completions racing the death are already dropped inside
  // the slot channel).
  slot_fifo_[slot].clear();
  for (std::uint32_t id : slot_streams_[slot]) {
    auto it = routes_.find(id);
    if (it != routes_.end() && !it->second->dead_) it->second->MarkDead(status);
  }
}

void MuxGroup::DispatchSlot(std::size_t slot) {
  if (slot_in_round_[slot]) return;  // re-entered from a woken pump
  auto& ids = slot_streams_[slot];
  if (ids.empty()) return;
  ++stats_.dispatch_rounds;
  slot_in_round_[slot] = true;
  const std::size_t n = ids.size();
  const std::size_t start = slot_cursor_[slot] % n;
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t idx = (start + k) % n;
    auto it = routes_.find(ids[idx]);
    if (it == routes_.end()) continue;
    MuxStream* stream = it->second;
    if (stream->dead_ || !stream->parked_) continue;
    stream->deficit_ = options_.drr_quantum;
    ++stats_.dispatch_wakes;
    stream->FireCreditAvailable();
    if (slots_[slot]->dead() || !slots_[slot]->CanSend()) {
      // Shared credits exhausted mid-round (or the slot died under us):
      // resume after this stream next time.
      slot_cursor_[slot] = (idx + 1) % n;
      slot_in_round_[slot] = false;
      return;
    }
  }
  slot_cursor_[slot] = (start + 1) % n;
  slot_in_round_[slot] = false;
}

// ---------------------------------------------------------------------------
// MuxStream
// ---------------------------------------------------------------------------

MuxStream::MuxStream(MuxGroup& group, std::uint32_t id)
    : group_(&group),
      group_alive_(group.liveness_),
      slot_(group.slots_[group.SlotIndex(id)].get()),
      slot_index_(group.SlotIndex(id)),
      id_(id) {}

MuxStream::~MuxStream() {
  if (!group_alive_.expired()) group_->Detach(id_);
}

bool MuxStream::CanSend() const {
  if (group_alive_.expired() || dead_) return false;
  bool ok = slot_->CanSend() &&
            outstanding_ < group_->options_.per_stream_credits;
  if (ok && group_->slot_in_round_[slot_index_]) ok = deficit_ > 0;
  if (!ok) NotePark();
  return ok;
}

void MuxStream::SendControl(wire::ControlMessage msg) {
  EXS_CHECK_MSG(!group_alive_.expired(), "send on a stream whose group died");
  EXS_CHECK_MSG(!dead_, "send on a dead mux stream");
  NoteUnblocked();
  msg.stream_id = static_cast<std::uint16_t>(id_);
  msg.mux_epoch = epoch_;
  slot_->SendControl(msg);
}

void MuxStream::PostDataWwi(std::uint64_t wr_id, const void* src,
                            std::uint32_t lkey, std::uint64_t len,
                            std::uint64_t remote_addr, std::uint32_t rkey,
                            bool indirect, bool has_stripe_seq,
                            std::uint64_t stripe_seq,
                            std::uint64_t trace_ctx) {
  EXS_CHECK_MSG(!group_alive_.expired(), "post on a stream whose group died");
  EXS_CHECK_MSG(!dead_, "post on a dead mux stream");
  NoteUnblocked();
  ControlChannel::MuxTag tag;
  tag.present = true;
  tag.stream = id_;
  tag.seq = tx_seq_++;
  tag.epoch = epoch_;
  group_->slot_fifo_[slot_index_].push_back({id_, wr_id, epoch_});
  ++outstanding_;
  ++group_->stats_.data_posted;
  if (group_->slot_in_round_[slot_index_]) {
    deficit_ -= std::min(deficit_, len);
  }
  slot_->PostDataWwiTagged(wr_id, src, lkey, len, remote_addr, rkey, indirect,
                           has_stripe_seq, stripe_seq, trace_ctx, tag);
}

void MuxStream::PostDataWwiV(std::uint64_t wr_id, const SendSlice* slices,
                             std::uint32_t n, std::uint64_t len,
                             std::uint64_t remote_addr, std::uint32_t rkey,
                             bool indirect, bool has_stripe_seq,
                             std::uint64_t stripe_seq,
                             std::uint64_t trace_ctx) {
  EXS_CHECK_MSG(!group_alive_.expired(), "post on a stream whose group died");
  EXS_CHECK_MSG(!dead_, "post on a dead mux stream");
  NoteUnblocked();
  ControlChannel::MuxTag tag;
  tag.present = true;
  tag.stream = id_;
  tag.seq = tx_seq_++;
  tag.epoch = epoch_;
  group_->slot_fifo_[slot_index_].push_back({id_, wr_id, epoch_});
  ++outstanding_;
  ++group_->stats_.data_posted;
  if (group_->slot_in_round_[slot_index_]) {
    deficit_ -= std::min(deficit_, len);
  }
  slot_->PostDataWwiVTagged(wr_id, slices, n, len, remote_addr, rkey, indirect,
                            has_stripe_seq, stripe_seq, trace_ctx, tag);
}

void MuxStream::PostRead(std::uint64_t, void*, std::uint32_t, std::uint64_t,
                         std::uint64_t, std::uint32_t) {
  EXS_CHECK_MSG(false, "RDMA READ on a muxed connection — rendezvous "
                       "sockets keep dedicated channels");
}

verbs::Device& MuxStream::device() { return slot_->device(); }

bool MuxStream::Kill() {
  if (group_alive_.expired() || dead_) return false;
  ++group_->stats_.virtual_kills;
  MarkDead(verbs::WcStatus::kWrFlushError);
  MuxGroup* peer_group = group_->peer_;
  if (peer_group != nullptr) {
    // Peer discovery rides the same clock a real QP death would: one
    // transport ack delay.  Guarded by the peer group's liveness — the
    // whole fixture may be torn down before the closure runs.
    std::weak_ptr<void> peer_alive = peer_group->liveness_;
    std::uint32_t id = id_;
    group_->device_->scheduler().ScheduleAfter(
        slot_->AckReturnDelay(), [peer_group, peer_alive, id] {
          if (peer_alive.expired()) return;
          MuxStream* peer = peer_group->FindStream(id);
          if (peer == nullptr || peer->dead_) return;
          peer->MarkDead(verbs::WcStatus::kRetryExceededError);
        });
  }
  return true;
}

void MuxStream::Revive() {
  EXS_CHECK_MSG(!group_alive_.expired(), "revive on a destroyed group");
  EXS_CHECK_MSG(dead_, "revive a live mux stream");
  EXS_CHECK_MSG(!slot_->dead(),
                "slot transport dead — reconnect the groups first");
  ++group_->stats_.revives;
  dead_ = false;
  fatal_notified_ = false;
  ++epoch_;
  outstanding_ = 0;
  tx_seq_ = 0;
  rx_expect_ = 0;
  deficit_ = 0;
  parked_ = false;
}

void MuxStream::MarkDead(verbs::WcStatus status) {
  dead_ = true;
  parked_ = false;
  if (fatal_notified_) return;
  fatal_notified_ = true;
  if (callbacks_.on_fatal) callbacks_.on_fatal(status);
}

void MuxStream::NoteDataSent(std::uint64_t wr_id) {
  EXS_CHECK(outstanding_ > 0);
  --outstanding_;
  if (dead_) return;  // completion racing a virtual kill: account, drop
  if (callbacks_.on_data_sent) callbacks_.on_data_sent(wr_id);
  // The freed window slot may unblock this stream without any shared
  // credit returning; wake it directly (outside rounds the deficit gate
  // is off, so the wake cannot be starved).
  FireCreditAvailable();
}

void MuxStream::FireCreditAvailable() {
  if (dead_) return;
  if (callbacks_.on_credit_available) callbacks_.on_credit_available();
}

void MuxStream::NotePark() const {
  if (parked_) return;
  parked_ = true;
  park_since_ = slot_->device().scheduler().Now();
  if (parks_ != nullptr) parks_->Increment();
}

void MuxStream::NoteUnblocked() {
  if (!parked_) return;
  parked_ = false;
  if (hol_wait_ != nullptr) {
    SimTime now = slot_->device().scheduler().Now();
    hol_wait_->Record(static_cast<std::uint64_t>(
        now >= park_since_ ? now - park_since_ : 0));
  }
}

}  // namespace exs
