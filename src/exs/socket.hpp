// The EXS socket: the public, sockets-like face of the library.
//
// Mirrors the ES-API shape the paper describes: sockets are created with a
// type (SOCK_STREAM or SOCK_SEQPACKET), I/O memory can be registered
// explicitly for zero-copy transfers, Send()/Recv() are asynchronous and
// return a request id immediately, and completions are retrieved from the
// socket's event queue.  Connection establishment is collapsed into
// ConnectPair() — the simulated stand-in for the listen/connect/accept
// exchange, during which the peers trade intermediate-buffer credentials.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "exs/channel.hpp"
#include "exs/event_queue.hpp"
#include "exs/instruments.hpp"
#include "exs/mux.hpp"
#include "exs/rendezvous.hpp"
#include "exs/seqpacket.hpp"
#include "exs/stream.hpp"
#include "exs/trace.hpp"
#include "exs/types.hpp"
#include "verbs/device.hpp"

namespace exs {

/// Optional shared-resource plumbing for engine-managed sockets.  A plain
/// (default-constructed) wiring reproduces the classic socket exactly: a
/// private receiver ring and a private control-slot slab per channel.
struct SocketWiring {
  /// Receiver ring carved from a shared BufferPool (see StreamContext).
  RingLease ring_lease;
  /// Control receive slots drawn from a shared SRQ-backed pool instead of
  /// a per-channel slab.  Requires rails == 1 (engine sockets never
  /// stripe; the shared pool reserves per-connection, not per-rail).
  ControlSlotSource* shared_slots = nullptr;
  /// The admission point already reserved `credits` slots against
  /// `shared_slots` (check and commitment are atomic there); the channel
  /// adopts that reservation — refunding it at teardown — instead of
  /// reserving again at Connect time.
  bool slots_reserved = false;
  /// Shared-QP multiplexing (docs/PROTOCOL.md §13): the socket rides this
  /// stream of a MuxGroup instead of owning a dedicated control channel —
  /// no queue pair, completion queues, or credit slab are created per
  /// connection.  Stream sockets only; rails and shared_slots must stay
  /// at their defaults.  Null (the default) is the classic dedicated
  /// transport, bit-identical to pre-mux builds.
  std::unique_ptr<MuxStream> mux_stream;
};

class Socket : public simnet::TransportKillTarget {
 public:
  Socket(verbs::Device& device, SocketType type, StreamOptions options,
         std::string name, SocketWiring wiring = {});

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Establish the connection between two sockets of the same type on
  /// opposite nodes (stands in for exs_connect()/exs_accept()).
  static void ConnectPair(Socket& a, Socket& b);

  /// Wire the transport between two sockets: the control channel plus the
  /// extra data rails both sides provisioned (the minimum of the two
  /// counts).  Shared by ConnectPair and the ConnectionService handshake;
  /// the rail count each side committed to rides in RingCredentials.
  static void ConnectTransport(Socket& a, Socket& b);

  /// Explicitly register I/O memory (exs_mregister()).  Buffers passed to
  /// Send()/Recv() must be covered by a registration; with
  /// options.auto_register_memory the library registers them on first use.
  verbs::MemoryRegionPtr RegisterMemory(void* addr, std::size_t len);

  /// Asynchronous send; returns the request id reported by the completion
  /// event.  The buffer must stay untouched until then (zero-copy).
  std::uint64_t Send(const void* buf, std::uint64_t len, SendFlags flags = {});

  /// One element of a vectored send (exs_sendv) — the library's iovec.
  struct IoSlice {
    const void* addr = nullptr;
    std::uint64_t len = 0;
  };

  /// Vectored asynchronous send (exs_sendv): one logical send — one
  /// request id, one completion — whose payload is gathered from up to
  /// verbs::kMaxSge slices by the HCA, with no host-side copy.  Stream
  /// sockets only.  Every slice buffer must stay untouched until the
  /// completion, exactly like Send's.  When the MR registration cache is
  /// armed (StreamOptions::Batching::mr_cache_entries), slice
  /// registrations are pinned through the cache and unpinned at
  /// completion, so repeated sends from the same buffers hit warm
  /// registrations.
  std::uint64_t Sendv(const IoSlice* iov, std::uint32_t n,
                      SendFlags flags = {});

  /// Asynchronous receive; RecvFlags::waitall requests MSG_WAITALL
  /// semantics (complete only when the buffer is full).
  std::uint64_t Recv(void* buf, std::uint64_t len, RecvFlags flags = {});

  /// Orderly close of this socket's *sending* direction (shutdown-write):
  /// queued sends flush first, then the peer observes end-of-stream — its
  /// outstanding receives complete with whatever they hold and it gets a
  /// kPeerClosed event.  Receiving on this socket remains possible until
  /// the peer closes its own sending side.  Sending after Close() throws.
  void Close();
  bool CloseRequested() const;

  EventQueue& events() { return *events_; }
  /// Legacy aggregate view, rebuilt on demand from the metrics registry —
  /// the registry's named instruments are the single source of truth.
  StreamStats stats() const;
  /// Every named counter/gauge/histogram/series this socket maintains.
  /// Names and units are catalogued in docs/OBSERVABILITY.md.
  const metrics::Registry& metrics_registry() const { return registry_; }
  metrics::Registry& metrics_registry() { return registry_; }

  /// Attach causal chunk tracing (common/spans.hpp): registers
  /// "<name>.tx"/"<name>.rx" endpoints and hands the collector to both
  /// stream halves.  No-op outside stream mode; never perturbs timing.
  void EnableChunkSpans(spans::SpanCollector* collector);
  /// Endpoint ids registered by EnableChunkSpans (0 until then); the
  /// timeline exporter uses them to pick this socket's chunks out of the
  /// shared collector.
  std::uint64_t tx_span_endpoint() const { return span_tx_endpoint_; }
  std::uint64_t rx_span_endpoint() const { return span_rx_endpoint_; }
  SocketType type() const { return type_; }
  const StreamOptions& options() const { return options_; }
  const std::string& name() const { return name_; }
  verbs::Device& device() { return *device_; }
  /// Dedicated control channel — classic sockets only (null on a muxed
  /// socket, whose transport is mux_stream()).
  const ControlChannel& channel() const { return *channel_; }
  /// The mux endpoint this socket rides, or null on a classic socket.
  MuxStream* mux_stream() { return mux_.get(); }
  const MuxStream* mux_stream() const { return mux_.get(); }
  bool Muxed() const { return mux_ != nullptr; }

  /// Protocol-state introspection (tests, invariant checks, examples).
  StreamTx* stream_tx() { return tx_.get(); }
  StreamRx* stream_rx() { return rx_.get(); }

  /// Engine reaping: hand a pool-leased receiver ring back once the
  /// incoming stream has hit EOF and drained (no-op on classic sockets
  /// and while the ring is still live).
  bool TryReleaseRxRing() { return rx_ ? rx_->TryReleaseRing() : false; }

  /// Record protocol traces for this socket (off by default).  The
  /// outgoing stream's sender events and the incoming stream's receiver
  /// events are kept separately so the lemma validators in exs/trace.hpp
  /// can run on each.  `capacity` bounds each log (0 = unbounded); see
  /// TraceLog::SetCapacity for the drop semantics.
  void EnableTracing(std::size_t capacity = 0) {
    tx_trace_.SetCapacity(capacity);
    rx_trace_.SetCapacity(capacity);
    // Surface capacity drops in the metrics snapshot so a truncated trace
    // is visible without polling dropped() (see docs/OBSERVABILITY.md).
    tx_trace_.SetDropCounter(
        &registry_.GetCounter("trace.dropped_tx", "events"));
    rx_trace_.SetDropCounter(
        &registry_.GetCounter("trace.dropped_rx", "events"));
    tx_trace_.Enable();
    rx_trace_.Enable();
  }
  const TraceLog& tx_trace() const { return tx_trace_; }
  const TraceLog& rx_trace() const { return rx_trace_; }

  /// True when no requests are pending in either direction.
  bool Quiescent() const;

  // ---- Fatal faults and recovery (StreamOptions::recovery) --------------

  /// Force every transport channel this connection uses (control plus
  /// effective data rails) into the fatal error state: in-flight WRs flush
  /// with error completions, new posts are refused, and the peer's QPs die
  /// after the transport's ack delay.  Returns false when the transport is
  /// already dead — the kill is a no-op, never a second flush.
  /// (Implements the FaultInjector's simnet::TransportKillTarget, the
  /// kQpKill fault's landing point.)
  bool KillTransport() override;

  /// True once every channel the connection uses is dead.  The peer halves
  /// die one ack-delay later than the killed side; resume requires both.
  bool TransportDead() const;

  /// Reconnect two killed stream sockets and resume both byte streams at
  /// the exact delivered frontier (docs/PROTOCOL.md §12): fresh queue
  /// pairs, a sequence handshake re-basing each sender on its peer
  /// receiver's delivered bytes and ring cursors, retransmission of the
  /// unacknowledged suffix from the senders' logs, and — when `max_rails`
  /// is nonzero — rail failover onto the first `max_rails` surviving rails.
  /// Requires StreamOptions::recovery.enabled on both sockets and both
  /// transports dead.  Delivered byte content is unchanged by any
  /// kill/resume: the equivalence harness in tests/stream_recovery_test
  /// holds the delivered FNV fingerprint byte-identical to an unkilled run.
  static void ResumePair(Socket& a, Socket& b, std::size_t max_rails = 0);

  // ---- Connection-establishment internals -------------------------------
  // Used by ConnectPair() and by the ConnectionService handshake
  // (exs/connection.hpp); not part of the application API.

  /// Intermediate-buffer credentials this socket's incoming stream
  /// advertises to its peer (zeros for SOCK_SEQPACKET), plus the number of
  /// data rails this side provisioned — the striping negotiation settles
  /// on the minimum of both sides' counts.
  struct RingCredentials {
    std::uint64_t addr = 0;
    std::uint32_t rkey = 0;
    std::uint64_t capacity = 0;
    std::uint32_t rails = 1;
  };
  RingCredentials LocalRingCredentials() const;

  /// Install the peer's intermediate-buffer credentials and open the
  /// socket for I/O.  The control channels must already be linked.
  void CompleteEstablishment(const RingCredentials& peer_ring);

  ControlChannel& channel_internal() { return *channel_; }

  /// Rails this socket built at construction (1 + extra data channels).
  std::size_t ProvisionedRails() const { return 1 + data_rails_.size(); }
  /// Rails the connection actually stripes across after negotiation; 1
  /// until CompleteEstablishment, and forever on classic connections.
  std::size_t effective_rails() const { return effective_rails_; }
  const ControlChannel& data_rail(std::size_t i) const {
    return *data_rails_[i];
  }

 private:
  const verbs::MemoryRegion* FindOrRegister(const void* addr,
                                            std::uint64_t len);
  StreamContext MakeContext(TraceLog* trace);
  void WireCallbacks();
  void WireRailCallbacks(std::size_t rail);
  /// First channel death of a (possibly multi-rail) transport kill: trace
  /// markers on both halves, one kError event, the kill counter.
  void OnTransportFatal(verbs::WcStatus status);
  /// Register "rail<i>.*" instruments and attach them to the channel
  /// carrying that rail (rail 0 is the control channel itself).
  void InstrumentRail(std::size_t rail, ControlChannel& channel);
  /// The transport the protocol halves drive: the mux stream when wired,
  /// else the dedicated control channel.
  ChannelEndpoint* endpoint() {
    return mux_ ? static_cast<ChannelEndpoint*>(mux_.get()) : channel_.get();
  }

  verbs::Device* device_;
  SocketType type_;
  StreamOptions options_;
  std::string name_;
  SocketWiring wiring_;
  metrics::Registry registry_;
  SocketInstruments inst_;
  /// "rail<i>.hol_wait" histograms, index = rail (built by InstrumentRail,
  /// handed to the receiver half at construction).
  std::vector<metrics::Histogram*> rail_hol_inst_;
  std::uint64_t span_tx_endpoint_ = 0;
  std::uint64_t span_rx_endpoint_ = 0;
  std::unique_ptr<ControlChannel> channel_;  ///< null on muxed sockets
  std::unique_ptr<MuxStream> mux_;           ///< null on classic sockets
  /// Extra data-only rails 1..N-1 (empty on classic single-rail sockets).
  std::vector<std::unique_ptr<ControlChannel>> data_rails_;
  std::size_t effective_rails_ = 1;
  std::unique_ptr<EventQueue> events_;
  std::unique_ptr<StreamTx> tx_;
  std::unique_ptr<StreamRx> rx_;
  std::unique_ptr<SeqPacketTx> packet_tx_;
  std::unique_ptr<SeqPacketRx> packet_rx_;
  std::unique_ptr<RendezvousTx> rendezvous_tx_;
  std::unique_ptr<RendezvousRx> rendezvous_rx_;
  std::map<std::uint64_t, verbs::MemoryRegionPtr> regions_by_start_;
  TraceLog tx_trace_;
  TraceLog rx_trace_;
  std::uint64_t next_request_id_ = 1;
  bool connected_ = false;
  /// Recovery: one kError event per transport death (reset at resume so a
  /// second kill reports again), and when the death was observed (resume
  /// latency histogram).
  bool fatal_event_raised_ = false;
  SimTime death_time_ = 0;
};

}  // namespace exs
