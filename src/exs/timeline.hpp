// Chrome trace-event export: renders a connection's TraceLogs and metric
// time-series as a timeline loadable in Perfetto / chrome://tracing.
//
// Each socket becomes a "process" (pid) with two threads: tid 0 is the
// sender half (outgoing stream), tid 1 the receiver half.  Phase intervals
// are reconstructed from the *PhaseChanged trace events and rendered as
// named duration spans ("B"/"E"), every other trace event becomes a
// thread-scoped instant ("i") carrying its sequence/phase/length args, and
// registry time-series (buffer occupancy, credits, in-flight WRs) become
// counter tracks ("C").  Timestamps are the simulation's picoseconds
// converted to the format's microseconds.
#pragma once

#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/spans.hpp"
#include "exs/trace.hpp"

namespace exs {

/// One socket's worth of timeline input.  Any pointer may be null; null
/// logs/registries simply contribute no events.
struct TimelineSource {
  std::string process;  ///< track-group name (socket name)
  const TraceLog* tx = nullptr;
  const TraceLog* rx = nullptr;
  const metrics::Registry* registry = nullptr;
  /// Causal chunk tracing (common/spans.hpp): when set, every delivered
  /// sampled chunk belonging to this socket contributes "X" slices (tx
  /// residence, wire flight, rx residence) and Perfetto flow events
  /// ("s"/"f", id = chunk trace id) that link the sender-side slice to the
  /// receiver-side slice across processes in the timeline.  Null — or
  /// endpoint ids left 0 — emits nothing, keeping legacy output
  /// byte-identical.
  const spans::SpanCollector* spans = nullptr;
  std::uint64_t tx_endpoint = 0;  ///< this socket's ".tx" endpoint id
  std::uint64_t rx_endpoint = 0;  ///< this socket's ".rx" endpoint id
};

/// Serialize the sources as a Chrome trace-event JSON object
/// (`{"traceEvents":[...],"displayTimeUnit":"ms"}`).  Events are sorted by
/// timestamp, so viewers that require monotonic input accept the file
/// as-is.  Deterministic: depends only on the inputs.
std::string ExportChromeTrace(const std::vector<TimelineSource>& sources);

}  // namespace exs
