// Top-level facade: a two-node RDMA testbed with EXS sockets on it.
//
//   exs::Simulation sim(exs::simnet::HardwareProfile::FdrInfiniBand());
//   auto [client, server] = sim.CreateConnectedPair(exs::SocketType::kStream);
//   client->Send(buf, len);
//   server->Recv(out, len);
//   sim.Run();
//
// The Simulation owns the fabric (clock, links, CPUs), one verbs device per
// node, and every socket created on it.  Time only advances inside
// Run()/RunFor()/RunUntil().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "exs/connection.hpp"
#include "exs/socket.hpp"
#include "exs/timeline.hpp"
#include "simnet/fabric.hpp"
#include "verbs/device.hpp"

namespace exs {

class Simulation {
 public:
  /// `carry_payload` moves real bytes through every transfer (keep on for
  /// correctness checks; benchmarks turn it off — timing is unaffected).
  explicit Simulation(simnet::HardwareProfile profile, std::uint64_t seed = 1,
                      bool carry_payload = true)
      : seed_(seed),
        fabric_(std::move(profile), seed),
        device0_(fabric_, 0, carry_payload),
        device1_(fabric_, 1, carry_payload) {
    // Stamp EXS_LOG lines with the simulated time while this simulation is
    // live (most recent simulation wins if several coexist).
    SetLogClock(&fabric_.scheduler());
  }

  ~Simulation() {
    if (GetLogClock() == &fabric_.scheduler()) SetLogClock(nullptr);
  }

  /// Create a connected socket pair: first on node 0 ("client"), second on
  /// node 1 ("server").
  std::pair<Socket*, Socket*> CreateConnectedPair(
      SocketType type, StreamOptions options = StreamOptions{}) {
    return CreateConnectedPair(type, options, options);
  }

  /// Asymmetric-options variant (e.g. striping negotiation: the two sides
  /// may provision different rail counts and settle on the minimum).
  std::pair<Socket*, Socket*> CreateConnectedPair(
      SocketType type, StreamOptions client_options,
      StreamOptions server_options) {
    return CreateConnectedPair(type, std::move(client_options),
                               std::move(server_options), SocketWiring{},
                               SocketWiring{}, "client", "server");
  }

  /// Wiring-explicit variant: pre-provisioned transports (a MuxStream from
  /// a shared-QP group) or engine-pool resources on either side.
  std::pair<Socket*, Socket*> CreateConnectedPair(
      SocketType type, StreamOptions client_options,
      StreamOptions server_options, SocketWiring client_wiring,
      SocketWiring server_wiring, std::string client_name = "client",
      std::string server_name = "server") {
    sockets_.push_back(std::make_unique<Socket>(device0_, type, client_options,
                                                std::move(client_name),
                                                std::move(client_wiring)));
    Socket* a = sockets_.back().get();
    sockets_.push_back(std::make_unique<Socket>(device1_, type, server_options,
                                                std::move(server_name),
                                                std::move(server_wiring)));
    Socket* b = sockets_.back().get();
    if (spans_) {
      a->EnableChunkSpans(spans_.get());
      b->EnableChunkSpans(spans_.get());
    }
    Socket::ConnectPair(*a, *b);
    return {a, b};
  }

  /// A stream pair multiplexed over already-Connect()ed MuxGroups (`g0` on
  /// node 0, `g1` on node 1): attaches the next free stream id on both
  /// sides and wires the sockets over it.  No queue pairs are created —
  /// that is the point of the tier.
  std::pair<Socket*, Socket*> CreateMuxedPair(
      MuxGroup& g0, MuxGroup& g1, StreamOptions options = StreamOptions{}) {
    std::uint32_t id = g0.AllocateStreamId();
    SocketWiring w0;
    w0.mux_stream = g0.AttachStream(id);
    SocketWiring w1;
    w1.mux_stream = g1.AttachStream(id);
    return CreateConnectedPair(SocketType::kStream, options, options,
                               std::move(w0), std::move(w1),
                               "client-s" + std::to_string(id),
                               "server-s" + std::to_string(id));
  }

  /// Attach causal chunk tracing (common/spans.hpp) to every pair-created
  /// socket, existing and future.  `sample_period` keeps ~1 in N chunks,
  /// chosen deterministically from this simulation's seed; the collector
  /// never schedules events or charges CPU, so enabling it cannot change
  /// timing (golden fingerprints stay bit-identical).
  spans::SpanCollector& EnableChunkSpans(std::uint64_t sample_period = 1) {
    if (!spans_) {
      spans_ = std::make_unique<spans::SpanCollector>(seed_, sample_period);
      for (auto& socket : sockets_) socket->EnableChunkSpans(spans_.get());
    }
    return *spans_;
  }
  const spans::SpanCollector* chunk_spans() const { return spans_.get(); }

  /// Realistic connection establishment (listen/connect/accept with a
  /// timed handshake over the wire); see exs/connection.hpp.  The zero-
  /// time CreateConnectedPair above remains for tests that don't care.
  Listener* Listen(std::size_t node_index, std::uint16_t port,
                   SocketType type, StreamOptions options = StreamOptions{}) {
    return connections().Listen(node_index, port, type, std::move(options));
  }
  Socket* Connect(std::size_t node_index, std::uint16_t port, SocketType type,
                  StreamOptions options,
                  std::function<void(Socket*)> on_complete) {
    return connections().Connect(node_index, port, type, std::move(options),
                                 std::move(on_complete));
  }
  /// Wiring-carrying connect: a muxed client attaches a stream from its
  /// local group and the REQ asks the server's QP pool for the match.
  Socket* Connect(std::size_t node_index, std::uint16_t port, SocketType type,
                  StreamOptions options, SocketWiring wiring,
                  std::function<void(Socket*)> on_complete) {
    return connections().Connect(node_index, port, type, std::move(options),
                                 std::move(wiring), std::move(on_complete));
  }
  ConnectionService& connections() {
    if (!connections_) {
      connections_ = std::make_unique<ConnectionService>(fabric_, device0_,
                                                         device1_);
    }
    return *connections_;
  }

  simnet::EventScheduler& scheduler() { return fabric_.scheduler(); }
  simnet::Fabric& fabric() { return fabric_; }
  verbs::Device& device(std::size_t i) { return i == 0 ? device0_ : device1_; }
  SimTime Now() { return fabric_.scheduler().Now(); }

  /// Run until the event queue drains (the system is fully quiescent).
  void Run() { fabric_.scheduler().Run(); }
  void RunFor(SimDuration d) { fabric_.scheduler().RunFor(d); }
  bool RunUntil(const std::function<bool()>& done) {
    return fabric_.scheduler().RunUntilPredicate(done);
  }

  /// Metrics snapshot of every CreateConnectedPair socket:
  /// {"sim_time_ps":N,"sockets":[{"name":...,"metrics":{...}}]}.  An array
  /// keeps duplicate socket names unambiguous.
  std::string MetricsJson() {
    const SimTime now = Now();
    std::string json = "{\"sim_time_ps\":" + std::to_string(now);
    json += ",\"sockets\":[";
    for (std::size_t i = 0; i < sockets_.size(); ++i) {
      if (i != 0) json += ",";
      json += "{\"name\":";
      metrics::AppendJsonString(&json, sockets_[i]->name());
      json += ",\"metrics\":";
      json += sockets_[i]->metrics_registry().ToJson(now);
      json += "}";
    }
    json += "]}";
    return json;
  }

  /// Chrome trace-event timeline of every CreateConnectedPair socket (see
  /// exs/timeline.hpp).  Sockets must have tracing enabled to contribute
  /// spans and instants; metric series contribute counter tracks always.
  std::string TimelineJson() {
    std::vector<TimelineSource> sources;
    for (const auto& socket : sockets_) {
      TimelineSource src;
      src.process = socket->name();
      src.tx = &socket->tx_trace();
      src.rx = &socket->rx_trace();
      src.registry = &socket->metrics_registry();
      src.spans = spans_.get();
      src.tx_endpoint = socket->tx_span_endpoint();
      src.rx_endpoint = socket->rx_span_endpoint();
      sources.push_back(std::move(src));
    }
    return ExportChromeTrace(sources);
  }

 private:
  std::uint64_t seed_;
  simnet::Fabric fabric_;
  verbs::Device device0_;
  verbs::Device device1_;
  std::vector<std::unique_ptr<Socket>> sockets_;
  std::unique_ptr<ConnectionService> connections_;
  std::unique_ptr<spans::SpanCollector> spans_;
};

}  // namespace exs
