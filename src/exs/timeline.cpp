#include "exs/timeline.hpp"

#include <algorithm>
#include <cstdio>

#include "exs/types.hpp"

namespace exs {
namespace {

/// One serialized trace event, kept sortable by timestamp.  The sort is
/// stable, so events emitted in order at the same instant (metadata first,
/// then an "E" closing a span before the "B" opening the next) stay in
/// stack-consistent order.
struct Emitted {
  SimTime ts = 0;
  std::string json;
};

std::string FormatTs(SimTime ps) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", static_cast<double>(ps) / 1e6);
  return buf;
}

std::string PhaseSpanName(std::uint64_t phase) {
  std::string name = "phase ";
  name += std::to_string(phase);
  name += PhaseIsDirect(phase) ? " (direct)" : " (indirect)";
  return name;
}

void EmitMetadata(std::vector<Emitted>& out, const std::string& name,
                  int pid, int tid, const std::string& value) {
  std::string j = "{\"name\":";
  metrics::AppendJsonString(&j, name);
  j += ",\"ph\":\"M\",\"pid\":" + std::to_string(pid);
  if (tid >= 0) j += ",\"tid\":" + std::to_string(tid);
  j += ",\"args\":{\"name\":";
  metrics::AppendJsonString(&j, value);
  j += "}}";
  out.push_back(Emitted{0, std::move(j)});
}

void EmitSpanEdge(std::vector<Emitted>& out, char ph, SimTime ts,
                  const std::string& name, int pid, int tid) {
  std::string j = "{\"name\":";
  metrics::AppendJsonString(&j, name);
  j += ",\"ph\":\"";
  j += ph;
  j += "\",\"ts\":" + FormatTs(ts);
  j += ",\"pid\":" + std::to_string(pid);
  j += ",\"tid\":" + std::to_string(tid) + "}";
  out.push_back(Emitted{ts, std::move(j)});
}

void EmitInstant(std::vector<Emitted>& out, const TraceEvent& e, int pid,
                 int tid) {
  std::string j = "{\"name\":";
  metrics::AppendJsonString(&j, ToString(e.type));
  j += ",\"ph\":\"i\",\"s\":\"t\"";
  j += ",\"ts\":" + FormatTs(e.time);
  j += ",\"pid\":" + std::to_string(pid);
  j += ",\"tid\":" + std::to_string(tid);
  j += ",\"args\":{\"seq\":" + std::to_string(e.seq);
  j += ",\"phase\":" + std::to_string(e.phase);
  j += ",\"len\":" + std::to_string(e.len);
  j += ",\"msg_seq\":" + std::to_string(e.msg_seq);
  j += ",\"msg_phase\":" + std::to_string(e.msg_phase);
  j += "}}";
  out.push_back(Emitted{e.time, std::move(j)});
}

void EmitCounter(std::vector<Emitted>& out, const std::string& name,
                 SimTime ts, double value, int pid) {
  std::string j = "{\"name\":";
  metrics::AppendJsonString(&j, name);
  j += ",\"ph\":\"C\",\"ts\":" + FormatTs(ts);
  j += ",\"pid\":" + std::to_string(pid);
  j += ",\"args\":{\"value\":" + metrics::FormatJsonNumber(value) + "}}";
  out.push_back(Emitted{ts, std::move(j)});
}

/// A complete ("X") slice for one leg of a chunk's journey, tagged with
/// the chunk's provenance so the Perfetto UI shows it on hover.
void EmitChunkSlice(std::vector<Emitted>& out, const std::string& name,
                    SimTime ts, SimDuration dur, int pid, int tid,
                    const spans::ChunkRecord& c) {
  std::string j = "{\"name\":";
  metrics::AppendJsonString(&j, name);
  j += ",\"cat\":\"chunk\",\"ph\":\"X\"";
  j += ",\"ts\":" + FormatTs(ts);
  j += ",\"dur\":" + FormatTs(dur);
  j += ",\"pid\":" + std::to_string(pid);
  j += ",\"tid\":" + std::to_string(tid);
  j += ",\"args\":{\"chunk\":" + std::to_string(c.id);
  j += ",\"len\":" + std::to_string(c.len);
  j += ",\"indirect\":";
  j += c.indirect ? "true" : "false";
  j += ",\"coalesced\":";
  j += c.coalesced ? "true" : "false";
  j += ",\"rail\":" + std::to_string(c.tx_rail);
  j += "}}";
  out.push_back(Emitted{ts, std::move(j)});
}

/// A flow edge: 's' starts the arrow inside the sender-side slice at post
/// time, 'f' lands it inside the receiver-side slice at arrival.  Flows
/// bind by (cat, id); the id is the chunk trace id.
void EmitChunkFlow(std::vector<Emitted>& out, char ph, SimTime ts,
                   std::uint64_t id, int pid, int tid) {
  std::string j = "{\"name\":\"chunk\",\"cat\":\"chunk\",\"ph\":\"";
  j += ph;
  j += "\",\"id\":" + std::to_string(id);
  j += ",\"ts\":" + FormatTs(ts);
  j += ",\"pid\":" + std::to_string(pid);
  j += ",\"tid\":" + std::to_string(tid);
  if (ph == 'f') j += ",\"bp\":\"e\"";
  j += "}";
  out.push_back(Emitted{ts, std::move(j)});
}

/// Chunk slices + flow events for the sources' collector (no-op when the
/// source carries no collector or no endpoint ids).
void EmitChunkSpans(std::vector<Emitted>& out, const TimelineSource& src,
                    int pid) {
  if (src.spans == nullptr) return;
  for (const spans::ChunkRecord& c : src.spans->chunks()) {
    if (!c.delivered()) continue;
    const std::string label = "chunk " + std::to_string(c.id);
    if (src.tx_endpoint != 0 && c.tx_endpoint == src.tx_endpoint) {
      EmitChunkSlice(out, label + " tx", c.t_submit, c.t_post - c.t_submit,
                     pid, /*tid=*/0, c);
      EmitChunkSlice(out, label + " wire", c.t_post, c.t_arrive - c.t_post,
                     pid, /*tid=*/0, c);
      EmitChunkFlow(out, 's', c.t_post, c.id, pid, /*tid=*/0);
    }
    if (src.rx_endpoint != 0 && c.rx_endpoint == src.rx_endpoint) {
      EmitChunkSlice(out, label + " rx", c.t_arrive, c.t_deliver - c.t_arrive,
                     pid, /*tid=*/1, c);
      EmitChunkFlow(out, 'f', c.t_arrive, c.id, pid, /*tid=*/1);
    }
  }
}

bool IsPhaseChange(TraceEventType type) {
  return type == TraceEventType::kSenderPhaseChanged ||
         type == TraceEventType::kReceiverPhaseChanged;
}

/// Render one half's log: phase duration spans plus instants for every
/// non-phase event.  PhaseChanged events carry the *new* phase; the span
/// for the initial phase starts at the first event's timestamp.
void EmitHalf(std::vector<Emitted>& out, const TraceLog& log, int pid,
              int tid) {
  const auto& events = log.events();
  if (events.empty()) return;

  bool span_open = false;
  std::uint64_t span_phase = 0;
  for (const TraceEvent& e : events) {
    if (!span_open) {
      span_phase = e.phase;
      EmitSpanEdge(out, 'B', e.time, PhaseSpanName(span_phase), pid, tid);
      span_open = true;
    }
    if (IsPhaseChange(e.type)) {
      EmitSpanEdge(out, 'E', e.time, PhaseSpanName(span_phase), pid, tid);
      span_phase = e.phase;
      EmitSpanEdge(out, 'B', e.time, PhaseSpanName(span_phase), pid, tid);
      continue;
    }
    EmitInstant(out, e, pid, tid);
  }
  EmitSpanEdge(out, 'E', events.back().time, PhaseSpanName(span_phase), pid,
               tid);
}

}  // namespace

std::string ExportChromeTrace(const std::vector<TimelineSource>& sources) {
  std::vector<Emitted> out;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const TimelineSource& src = sources[i];
    const int pid = static_cast<int>(i) + 1;
    EmitMetadata(out, "process_name", pid, -1, src.process);
    EmitMetadata(out, "thread_name", pid, 0, "tx (outgoing stream)");
    EmitMetadata(out, "thread_name", pid, 1, "rx (incoming stream)");
    if (src.tx != nullptr) EmitHalf(out, *src.tx, pid, /*tid=*/0);
    if (src.rx != nullptr) EmitHalf(out, *src.rx, pid, /*tid=*/1);
    EmitChunkSpans(out, src, pid);
    if (src.registry != nullptr) {
      for (const auto& [name, named] : src.registry->series()) {
        for (const auto& sample : named.instrument->samples()) {
          EmitCounter(out, name, sample.time, sample.value, pid);
        }
      }
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const Emitted& a, const Emitted& b) {
                     return a.ts < b.ts;
                   });

  std::string json = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i != 0) json += ",\n";
    json += out[i].json;
  }
  json += "],\"displayTimeUnit\":\"ms\"}";
  return json;
}

}  // namespace exs
