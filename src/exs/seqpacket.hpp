// SOCK_SEQPACKET: the message-oriented mode (§II-C of the paper).
//
// The protocol is deliberately simple and is the baseline the stream mode
// grew out of: every exs_recv() sends an ADVERT; every exs_send() waits for
// an ADVERT and pushes the whole message with a single WWI directly into
// the advertised user memory.  Message boundaries are preserved; a message
// larger than the advertised buffer is truncated — the data-loss hazard of
// porting stream programs to message transports that §I describes, and the
// behaviour the stream mode exists to fix.
#pragma once

#include <cstdint>
#include <deque>

#include "exs/channel.hpp"
#include "exs/event_queue.hpp"
#include "exs/stream.hpp"
#include "exs/types.hpp"
#include "exs/wire.hpp"

namespace exs {

class SeqPacketTx {
 public:
  explicit SeqPacketTx(StreamContext ctx) : ctx_(std::move(ctx)) {}

  void Submit(std::uint64_t id, const void* buf, std::uint64_t len,
              std::uint32_t lkey);
  void OnAdvert(const wire::ControlMessage& msg);
  void OnCreditAvailable() { Pump(); }
  void OnWwiComplete(std::uint64_t wr_id);
  void RequestShutdown();
  bool ShutdownRequested() const { return shutdown_requested_; }

  bool Quiescent() const { return sends_.empty() && awaiting_ack_.empty(); }

 private:
  struct PendingSend {
    std::uint64_t id = 0;
    const std::uint8_t* base = nullptr;
    std::uint64_t len = 0;
    std::uint32_t lkey = 0;
  };
  struct Sent {
    std::uint64_t id = 0;
    std::uint64_t bytes = 0;
    bool truncated = false;
  };
  struct Advert {
    std::uint64_t addr = 0;
    std::uint32_t rkey = 0;
    std::uint64_t len = 0;
  };

  void Pump();
  void Trace(TraceEventType type, std::uint64_t len = 0,
             std::uint64_t msg_seq = 0) {
    // Message mode has no phases; events carry phase 0 (direct parity)
    // and the cumulative byte count as the sequence.
    if (ctx_.trace != nullptr && ctx_.trace->enabled()) {
      ctx_.trace->Record(
          TraceEvent{ctx_.scheduler->Now(), type, seq_, 0, len, msg_seq, 0});
    }
  }

  StreamContext ctx_;
  std::uint64_t seq_ = 0;  ///< cumulative bytes posted (trace bookkeeping)
  std::deque<PendingSend> sends_;
  std::deque<Advert> adverts_;
  std::deque<Sent> awaiting_ack_;  ///< posted WWIs, completion pending
  bool shutdown_requested_ = false;
  bool shutdown_sent_ = false;
};

class SeqPacketRx {
 public:
  explicit SeqPacketRx(StreamContext ctx) : ctx_(std::move(ctx)) {}

  void Submit(std::uint64_t id, void* buf, std::uint64_t len,
              std::uint32_t rkey);
  void OnData(bool indirect, std::uint64_t len);
  void OnCreditAvailable() { AdvertisePending(); }
  void OnShutdown();
  bool PeerClosed() const { return peer_closed_; }

  std::size_t PendingRecvs() const { return pending_.size(); }
  bool Quiescent() const { return pending_.empty(); }

 private:
  struct PendingRecv {
    std::uint64_t id = 0;
    std::uint8_t* base = nullptr;
    std::uint64_t len = 0;
    std::uint32_t rkey = 0;
    bool adverted = false;
  };

  void AdvertisePending();
  void Trace(TraceEventType type, std::uint64_t len = 0,
             std::uint64_t msg_seq = 0) {
    if (ctx_.trace != nullptr && ctx_.trace->enabled()) {
      ctx_.trace->Record(
          TraceEvent{ctx_.scheduler->Now(), type, seq_, 0, len, msg_seq, 0});
    }
  }

  StreamContext ctx_;
  std::uint64_t seq_ = 0;        ///< cumulative bytes received
  std::uint64_t advert_seq_ = 0; ///< monotone ADVERT counter, sent on the wire
  std::deque<PendingRecv> pending_;
  bool peer_closed_ = false;
};

}  // namespace exs
