#include "exs/connection.hpp"

#include "common/check.hpp"
#include "common/logging.hpp"

namespace exs {

ConnectionService::ConnectionService(simnet::Fabric& fabric,
                                     verbs::Device& device0,
                                     verbs::Device& device1)
    : fabric_(&fabric), device0_(&device0), device1_(&device1) {}

Listener* ConnectionService::Listen(std::size_t node_index,
                                    std::uint16_t port, SocketType type,
                                    StreamOptions options) {
  auto key = std::make_pair(node_index, port);
  EXS_CHECK_MSG(listeners_.find(key) == listeners_.end(),
                "port " << port << " already has a listener on node "
                        << node_index);
  auto listener = std::unique_ptr<Listener>(
      new Listener(node_index, port, type, std::move(options)));
  Listener* raw = listener.get();
  listeners_.emplace(key, std::move(listener));
  return raw;
}

Socket* ConnectionService::Connect(std::size_t node_index,
                                   std::uint16_t port, SocketType type,
                                   StreamOptions options,
                                   std::function<void(Socket*)> on_complete) {
  return Connect(node_index, port, type, std::move(options), SocketWiring{},
                 std::move(on_complete));
}

Socket* ConnectionService::Connect(std::size_t node_index,
                                   std::uint16_t port, SocketType type,
                                   StreamOptions options, SocketWiring wiring,
                                   std::function<void(Socket*)> on_complete) {
  std::uint64_t id = next_id_++;
  auto socket = std::make_unique<Socket>(device(node_index), type, options,
                                         "active-" + std::to_string(id),
                                         std::move(wiring));
  Socket* raw = socket.get();

  HandshakeMessage req;
  req.kind = HandshakeMessage::Kind::kReq;
  req.id = id;
  req.port = port;
  req.type = type;
  if (raw->Muxed()) {
    req.mux = true;
    req.mux_stream = raw->mux_stream()->stream_id();
  }
  req.ring = raw->LocalRingCredentials();

  pending_.emplace(id, Pending{id, std::move(socket), type,
                               std::move(on_complete)});
  Transmit(node_index, req);
  return raw;
}

void ConnectionService::Transmit(std::size_t from_node,
                                 const HandshakeMessage& msg) {
  std::size_t to_node = 1 - from_node;
  fabric_->channel_from(from_node).Transmit(
      kHandshakeWireBytes,
      [this, to_node, msg] { OnMessage(to_node, msg); });
}

void ConnectionService::OnMessage(std::size_t at_node,
                                  const HandshakeMessage& msg) {
  switch (msg.kind) {
    case HandshakeMessage::Kind::kReq:
      HandleReq(at_node, msg);
      break;
    case HandshakeMessage::Kind::kRep:
    case HandshakeMessage::Kind::kReject:
      HandleRepOrReject(msg);
      break;
    case HandshakeMessage::Kind::kRtu:
      HandleRtu(msg);
      break;
  }
}

void ConnectionService::HandleReq(std::size_t at_node,
                                  const HandshakeMessage& msg) {
  auto it = listeners_.find(std::make_pair(at_node, msg.port));
  if (it == listeners_.end() || it->second->type_ != msg.type) {
    EXS_DEBUG("rejecting connection to port " << msg.port << " on node "
                                              << at_node);
    HandshakeMessage reject;
    reject.kind = HandshakeMessage::Kind::kReject;
    reject.id = msg.id;
    Transmit(at_node, reject);
    return;
  }
  Listener* listener = it->second.get();

  std::unique_ptr<Socket> socket;
  std::string name = "passive-" + std::to_string(msg.id);
  AcceptMeta meta;
  meta.mux = msg.mux;
  meta.mux_stream = msg.mux_stream;
  if (meta.mux && !listener->gate_) {
    // A plain listener has no shared-QP pool to attach the stream to; the
    // client sees the same REJECT a dead port produces.
    ++listener->refused_count_;
    EXS_DEBUG("rejecting muxed connection " << msg.id << ": listener on node "
                                            << at_node << " has no QP pool");
    HandshakeMessage reject;
    reject.kind = HandshakeMessage::Kind::kReject;
    reject.id = msg.id;
    Transmit(at_node, reject);
    return;
  }
  if (listener->gate_) {
    socket = listener->gate_(device(at_node), msg.type, listener->options_,
                             name, meta);
    if (socket == nullptr) {
      // Admission control refused: same REJECT the client would see for a
      // dead port, sent before any transport state was committed.
      ++listener->refused_count_;
      EXS_DEBUG("admission control refused connection " << msg.id
                                                        << " on node "
                                                        << at_node);
      HandshakeMessage reject;
      reject.kind = HandshakeMessage::Kind::kReject;
      reject.id = msg.id;
      Transmit(at_node, reject);
      return;
    }
  } else {
    socket = std::make_unique<Socket>(device(at_node), msg.type,
                                      listener->options_, name);
  }

  // Wire the endpoints now: queue pairs connected, receive pools posted —
  // the state both sides prepare before the handshake concludes.  The
  // peer's Socket object is reachable because the service brokered the
  // REQ; only *timing* flows through the wire.
  auto pending_it = pending_.find(msg.id);
  EXS_CHECK_MSG(pending_it != pending_.end(),
                "REQ for an unknown pending connection");
  Socket::ConnectTransport(*pending_it->second.socket, *socket);

  HandshakeMessage rep;
  rep.kind = HandshakeMessage::Kind::kRep;
  rep.id = msg.id;
  rep.ring = socket->LocalRingCredentials();

  // The server half finishes when the RTU arrives.
  ServerPending sp;
  sp.id = msg.id;
  sp.socket = std::move(socket);
  // Pass the REQ's credentials through whole: they carry the client's
  // provisioned rail count, which both sides must see to agree on the
  // effective striping width.
  sp.socket->CompleteEstablishment(msg.ring);
  sp.listener = listener;
  server_pending_.emplace(msg.id, std::move(sp));

  Transmit(at_node, rep);
}

void ConnectionService::HandleRepOrReject(const HandshakeMessage& msg) {
  auto it = pending_.find(msg.id);
  EXS_CHECK_MSG(it != pending_.end(), "REP for an unknown connection");
  Pending pending = std::move(it->second);
  pending_.erase(it);

  if (msg.kind == HandshakeMessage::Kind::kReject) {
    if (pending.on_complete) pending.on_complete(nullptr);
    return;  // the socket is discarded with the Pending record
  }

  pending.socket->CompleteEstablishment(msg.ring);
  Socket* raw = pending.socket.get();
  std::size_t client_node = raw->device().node_index();
  established_.push_back(std::move(pending.socket));

  HandshakeMessage rtu;
  rtu.kind = HandshakeMessage::Kind::kRtu;
  rtu.id = msg.id;
  Transmit(client_node, rtu);

  if (pending.on_complete) pending.on_complete(raw);
}

void ConnectionService::HandleRtu(const HandshakeMessage& msg) {
  auto it = server_pending_.find(msg.id);
  EXS_CHECK_MSG(it != server_pending_.end(), "RTU for an unknown connection");
  Socket* raw = it->second.socket.get();
  Listener* listener = it->second.listener;
  established_.push_back(std::move(it->second.socket));
  server_pending_.erase(it);
  listener->Deliver(raw);
}

}  // namespace exs
