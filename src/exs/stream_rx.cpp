// Receiver half of the dynamic stream protocol — Figs. 3 (ADVERT send),
// 4 (transfer arrival) and 5 (copy-out) of the paper.
#include "exs/stream.hpp"

#include <cstring>

#include "common/check.hpp"
#include "common/logging.hpp"

namespace exs {

StreamRx::StreamRx(StreamContext ctx)
    : ctx_(std::move(ctx)),
      ring_mem_(ctx_.ring_lease.valid()
                    ? 0
                    : ctx_.options.intermediate_buffer_bytes),
      ring_(ctx_.ring_lease.valid() ? ctx_.ring_lease.bytes()
                                    : ctx_.options.intermediate_buffer_bytes) {
  if (ctx_.ring_lease.valid()) {
    // Pool-leased ring: the backing carve and its (pool-wide) registration
    // come from the engine's BufferPool; nothing to allocate here.
    ring_base_ = ctx_.ring_lease.mem();
    ring_mr_ = ctx_.ring_lease.mr();
    EXS_CHECK_MSG(ring_mr_ != nullptr, "ring lease carries no registration");
  } else {
    EXS_CHECK_MSG(ctx_.options.intermediate_buffer_bytes > 0,
                  "intermediate buffer must have nonzero capacity");
    ring_base_ = ring_mem_.data();
    ring_mr_ = ctx_.channel->device().RegisterMemory(ring_mem_.data(),
                                                     ring_mem_.size());
  }
  if (ctx_.metrics != nullptr) {
    ring_.SetOccupancyProbe(ctx_.metrics->rx_ring_occupancy, ctx_.scheduler);
  }
}

std::uint64_t StreamRx::ring_addr() const {
  return reinterpret_cast<std::uint64_t>(ring_base_);
}

void StreamRx::AdvancePhaseTo(std::uint64_t phase) {
  const SimTime now = ctx_.scheduler->Now();
  const SimDuration dwell = now - phase_start_;
  if (PhaseIsDirect(phase_)) {
    ctx_.metrics->rx_phase_dwell_direct->Record(
        static_cast<std::uint64_t>(dwell));
  } else {
    ctx_.metrics->rx_phase_dwell_indirect->Record(
        static_cast<std::uint64_t>(dwell));
  }
  phase_ = phase;
  phase_start_ = now;
  ctx_.metrics->rx_phase->Set(static_cast<double>(phase_));
  Trace(TraceEventType::kReceiverPhaseChanged);
}

void StreamRx::Submit(std::uint64_t id, void* buf, std::uint64_t len,
                      std::uint32_t rkey, bool waitall) {
  EXS_CHECK_MSG(len > 0, "zero-length receive is not meaningful");
  if (eof_delivered_) {
    // End-of-stream already reached: classic sockets semantics, the
    // receive completes immediately with zero bytes.
    ctx_.metrics->recvs_completed->Increment();
    ctx_.events->Push(Event{EventType::kRecvComplete, id, 0, false});
    return;
  }
  PendingRecv rec;
  rec.id = id;
  rec.base = static_cast<std::uint8_t*>(buf);
  rec.len = len;
  rec.rkey = rkey;
  rec.waitall = waitall;
  pending_.push_back(rec);
  // Buffered data may already be waiting for this receive; otherwise see
  // whether the new receive can be advertised (Fig. 3).
  DrainRing();
  TryAdvertise();
}

void StreamRx::TryAdvertise() {
  if (ctx_.options.mode == ProtocolMode::kIndirectOnly) return;
  while (true) {
    // The un-adverted receives form a suffix of the pending queue (they
    // are advertised strictly in order); find its start.
    std::size_t first_unadverted = pending_.size();
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (!pending_[i].adverted) {
        first_unadverted = i;
        break;
      }
    }
    if (first_unadverted == pending_.size()) return;  // nothing to advertise

    // Fig. 3 line 1, the gate: no ADVERT while buffered bytes remain
    // (b_r > 0) ...  The sabotage hook drops the gate so the trace records
    // the violation for the invariant checker to catch.
    if (!ctx_.options.sabotage.advertise_without_gate &&
        (ring_.used() > 0 || copy_in_progress_)) {
      return;
    }

    // ... or while any earlier receive still holds an ADVERT from a prior
    // phase (k_a > 0).  Earlier receives with *no* ADVERT (k_b) cannot
    // occur here because we advertise in order.
    std::uint64_t candidate_phase =
        PhaseIsIndirect(phase_) ? NextPhase(phase_) : phase_;
    for (std::size_t i = 0; i < first_unadverted; ++i) {
      if (pending_[i].advert_phase != candidate_phase) return;
    }

    if (!ctx_.channel->CanSend()) return;  // resumed by credit return

    if (PhaseIsIndirect(phase_)) {
      // Resuming direct service after an indirect phase (Fig. 3 lines 5-7).
      // At this point the buffer is empty and every prior receive was
      // satisfied, so seq_est_ has been corrected to equal seq_ exactly.
      // (Skipped under sabotage: with the gate dropped the buffer need not
      // be empty, and the point is to emit the bad ADVERT into the trace.)
      if (!ctx_.options.sabotage.advertise_without_gate) {
        EXS_CHECK_MSG(first_unadverted == 0 ? seq_est_ == seq_ : true,
                      "resynchronisation invariant: S'_r == S_r at the first "
                      "ADVERT of a new phase");
      }
      AdvancePhaseTo(NextPhase(phase_));
    }

    PendingRecv& r = pending_[first_unadverted];
    wire::ControlMessage msg;
    msg.type = static_cast<std::uint8_t>(wire::ControlType::kAdvert);
    msg.addr = reinterpret_cast<std::uint64_t>(r.base) + r.filled;
    msg.rkey = r.rkey;
    msg.len = r.len - r.filled;
    msg.seq = seq_est_;
    msg.set_phase(phase_);
    msg.waitall = r.waitall ? 1 : 0;
    if (RecoveryOn()) msg.delivered = DeliveredFrontier();
    if (PiggybackAcks() && pending_ack_bytes_ > 0) {
      // The ADVERT never uses `freed` for itself, so the pending ACK count
      // rides along and the standalone ACK is saved entirely.  The sender
      // releases the space before matching the ADVERT, preserving the
      // order a separate ACK would have imposed.
      msg.ack_piggyback = 1;
      msg.freed = pending_ack_bytes_;
      Trace(TraceEventType::kAckPiggybacked, pending_ack_bytes_);
      ctx_.metrics->acks_piggybacked->Increment();
      pending_ack_bytes_ = 0;
    }
    Trace(TraceEventType::kAdvertSent, r.len - r.filled, seq_est_, phase_);
    ctx_.channel->SendControl(msg);
    ctx_.metrics->adverts_sent->Increment();

    r.adverted = true;
    r.advert_phase = phase_;
    r.advert_time = ctx_.scheduler->Now();
    r.rtt_pending = true;
    // Advance the next-expected estimate (Fig. 3 lines 10-14): by the full
    // remaining length under MSG_WAITALL, else by the minimum bytes that
    // can complete the receive (one).
    seq_est_ += r.waitall ? (r.len - r.filled) : 1;
  }
}

void StreamRx::SetStriping(std::uint32_t rails) {
  EXS_CHECK_MSG(rails > 1, "striping needs at least two rails");
  EXS_CHECK_MSG(seq_ == 0 && next_stripe_seq_ == 0,
                "striping must be enabled before any data moves");
  rails_ = rails;
}

void StreamRx::OnData(bool indirect, std::uint64_t len, bool has_stripe_seq,
                      std::uint64_t stripe_seq, std::size_t rail,
                      std::uint64_t trace_ctx) {
  if (spans_ != nullptr && trace_ctx != 0) {
    spans_->NoteArrive(trace_ctx, ctx_.scheduler->Now(), span_endpoint_,
                       static_cast<std::uint32_t>(rail));
  }
  if (rails_ <= 1) {
    EXS_CHECK_MSG(!has_stripe_seq,
                  "stripe sequence on a single-rail connection");
    // Never parked: zero reorder wait, recorded so per-rail counts stay
    // comparable across striped and classic runs.
    RecordHolWait(
        StripedChunk{indirect, len, rail, ctx_.scheduler->Now(), trace_ctx});
    ProcessData(indirect, len, /*striped=*/false, 0, rail, trace_ctx);
    return;
  }
  // Striped connection: park the notification until every predecessor in
  // the delivery sequence has been processed, then drain the contiguous
  // prefix.  The payload is already in place (the sender computed the
  // destination address at post time, independent of the rail), so the
  // wait re-orders bookkeeping only — exs_recv() completion order and the
  // phase machinery see exactly the sender's submission order.
  EXS_CHECK_MSG(has_stripe_seq, "striped connection requires a stripe seq");
  EXS_CHECK_MSG(stripe_seq >= next_stripe_seq_, "stripe sequence regressed");
  bool inserted =
      stripe_reorder_
          .emplace(stripe_seq, StripedChunk{indirect, len, rail,
                                            ctx_.scheduler->Now(), trace_ctx})
          .second;
  EXS_CHECK_MSG(inserted, "duplicate stripe sequence " << stripe_seq);
  while (!stripe_reorder_.empty() &&
         stripe_reorder_.begin()->first == next_stripe_seq_) {
    StripedChunk chunk = stripe_reorder_.begin()->second;
    stripe_reorder_.erase(stripe_reorder_.begin());
    ++next_stripe_seq_;
    RecordHolWait(chunk);
    ProcessData(chunk.indirect, chunk.len, /*striped=*/true,
                next_stripe_seq_ - 1, chunk.rail, chunk.trace_ctx);
  }
}

void StreamRx::ProcessData(bool indirect, std::uint64_t len, bool striped,
                           std::uint64_t stripe_seq, std::size_t rail,
                           std::uint64_t trace_ctx) {
  SpanNoteProcessed(trace_ctx, indirect, len);
  if (!indirect) {
    // Direct arrival (Fig. 4 lines 1-6).  By Theorem 1 it belongs to the
    // receive at the head of the queue; these checks *are* the safety
    // property and fail loudly if the matching logic is ever wrong.
    EXS_CHECK_MSG(!pending_.empty(),
                  "direct transfer with no pending receive");
    PendingRecv& r = pending_.front();
    EXS_CHECK_MSG(r.adverted, "direct transfer into un-advertised receive");
    EXS_CHECK_MSG(ring_.used() == 0 && !copy_in_progress_,
                  "direct transfer while the intermediate buffer is in use");
    EXS_CHECK_MSG(r.filled + len <= r.len, "direct transfer overfills");
    if (r.rtt_pending) {
      // ADVERT round trip: from the ADVERT leaving to the first byte it
      // solicited landing in user memory (the latency the paper's direct
      // path trades against the indirect path's copy).
      ctx_.metrics->advert_rtt->Record(
          static_cast<std::uint64_t>(ctx_.scheduler->Now() - r.advert_time));
      r.rtt_pending = false;
    }
    r.filled += len;
    seq_ += len;
    // Fig. 4 lines 3-5: a non-WAITALL ADVERT estimated one byte; the
    // receive completes with this transfer, so correct the estimate with
    // the actual length.  A WAITALL estimate was already exact.
    if (!r.waitall) seq_est_ += len - 1;
    ctx_.metrics->direct_bytes_received->Add(len);
    // Striped arrivals log (stripe_seq, rail) in the trace's spare fields
    // for the invariant checker's reassembly audit (kept zero single-rail
    // so golden fingerprints are unchanged).
    Trace(TraceEventType::kDirectArrived, len, striped ? stripe_seq : 0,
          striped ? rail : 0);
    if (!r.waitall || r.filled == r.len) CompleteFront();
    TryAdvertise();
    return;
  }

  // Indirect arrival (Fig. 4 lines 7-11): data is already in the ring at
  // our fill cursor; account for it and move to an indirect phase.
  if (PhaseIsDirect(phase_)) {
    AdvancePhaseTo(NextPhase(phase_));
  }
  Trace(TraceEventType::kIndirectArrived, len, striped ? stripe_seq : 0,
        striped ? rail : 0);
  EXS_CHECK_MSG(len <= ring_.ContiguousWritable(),
                "indirect transfer overruns the intermediate buffer — the "
                "sender's b_s view must prevent this");
  ring_.CommitWrite(len);
  ctx_.metrics->indirect_bytes_received->Add(len);
  DrainRing();
}

void StreamRx::DrainRing() {
  if (copy_in_progress_) return;
  if (ring_.used() == 0 || pending_.empty()) {
    if (ring_.used() == 0) {
      if (PiggybackAcks() && !peer_closed_) {
        // Give an outgoing ADVERT first claim on the pending ACK count; a
        // standalone ACK below then only covers the no-ADVERT case.
        TryAdvertise();
      }
      MaybeSendAck();
      MaybeFinishEof();
    }
    TryAdvertise();
    return;
  }
  PendingRecv& r = pending_.front();
  std::uint64_t n = ring_.ContiguousReadable();
  if (r.len - r.filled < n) n = r.len - r.filled;
  EXS_CHECK(n > 0);

  // Fig. 5: the copy occupies the CPU at memcpy bandwidth — this is the
  // "higher CPU usage at the receiver" the paper trades for latency.
  copy_in_progress_ = true;
  SpanNoteCopyPassStart(n);
  SimDuration cost = ctx_.memcpy_bandwidth.TransmissionTime(n);
  ctx_.metrics->copy_busy_time->Add(static_cast<std::uint64_t>(cost));
  ctx_.cpu->Submit(cost, [this, n] {
    copy_in_progress_ = false;
    EXS_CHECK(!pending_.empty());
    PendingRecv& front = pending_.front();
    if (ctx_.carry_payload) {
      std::memcpy(front.base + front.filled,
                  ring_base_ + ring_.read_offset(), n);
    }
    ring_.CommitRead(n);
    front.filled += n;
    seq_ += n;
    // Fig. 5 lines 5-7: keep the next-expected estimate in step with what
    // was actually consumed.  A receive that never advertised contributed
    // no estimate, so S'_r tracks S_r directly; an advertised non-WAITALL
    // receive estimated one byte and completes with this copy; an
    // advertised WAITALL estimate was already exact.
    if (!front.adverted) {
      seq_est_ += n;
    } else if (!front.waitall) {
      seq_est_ += n - 1;
    }
    pending_ack_bytes_ += n;
    ctx_.metrics->bytes_copied_out->Add(n);
    Trace(TraceEventType::kCopyOut, n);
    SpanNoteCopyPassDone(n);
    // A plain receive completes with whatever one pass delivered; a
    // MSG_WAITALL receive keeps waiting until full.
    if (!front.waitall || front.filled == front.len) CompleteFront();
    MaybeSendAck();
    DrainRing();
  });
}

void StreamRx::CompleteFront() {
  PendingRecv r = pending_.front();
  pending_.pop_front();
  ctx_.metrics->recvs_completed->Increment();
  ctx_.metrics->bytes_received->Add(r.filled);
  ctx_.events->Push(Event{EventType::kRecvComplete, r.id, r.filled, false});
  SpanNoteDelivered(r.filled);
}

void StreamRx::MaybeSendAck() {
  if (pending_ack_bytes_ == 0) return;
  // Fig. 5 line 2, batched: ACK when enough space has been freed, when the
  // sender's view of the buffer must be exhausted (it is certainly
  // blocked), or when the connection has gone idle here (no pending
  // receives and nothing buffered) and the freed space should be returned
  // promptly rather than parked.
  bool sender_view_full =
      ring_.used() + pending_ack_bytes_ >= ring_.capacity();
  bool idle_flush = ring_.used() == 0 && pending_.empty();
  bool due = pending_ack_bytes_ >= ctx_.options.ResolvedAckThreshold() ||
             sender_view_full || idle_flush;
  if (!due) return;
  if (!ctx_.channel->CanSend()) return;  // resumed by credit return
  wire::ControlMessage msg;
  msg.type = static_cast<std::uint8_t>(wire::ControlType::kAck);
  msg.freed = pending_ack_bytes_;
  if (RecoveryOn()) msg.delivered = DeliveredFrontier();
  ctx_.channel->SendControl(msg);
  Trace(TraceEventType::kAckSent, pending_ack_bytes_);
  pending_ack_bytes_ = 0;
  ctx_.metrics->acks_sent->Increment();
}

void StreamRx::OnShutdown() {
  EXS_CHECK_MSG(!peer_closed_, "duplicate SHUTDOWN");
  peer_closed_ = true;
  // In-order delivery guarantees every data WWI of the stream has already
  // arrived; what remains may still sit in the intermediate buffer.
  MaybeFinishEof();
}

void StreamRx::MaybeFinishEof() {
  if (!peer_closed_ || eof_delivered_) return;
  if (ring_.used() > 0 || copy_in_progress_) return;  // still draining
  // Striping: chunks parked in the reorder buffer are delivered data the
  // stream has not yet accounted; EOF waits for them (the sender's gate —
  // SHUTDOWN only after all local WWI completions — makes this transient).
  if (!stripe_reorder_.empty()) return;
  eof_delivered_ = true;
  // Outstanding receives complete with whatever they hold — including
  // MSG_WAITALL ones, which can never fill now (partial data at EOF).
  while (!pending_.empty()) {
    PendingRecv r = pending_.front();
    pending_.pop_front();
    ctx_.metrics->recvs_completed->Increment();
    ctx_.metrics->bytes_received->Add(r.filled);
    ctx_.events->Push(Event{EventType::kRecvComplete, r.id, r.filled,
                            false});
    SpanNoteDelivered(r.filled);
  }
  ctx_.events->Push(Event{EventType::kPeerClosed, 0, 0, false});
  TryReleaseRing();
}

bool StreamRx::TryReleaseRing() {
  if (ring_released_) return true;
  if (!ctx_.ring_lease.HasRelease()) return false;  // private ring: no-op
  if (!eof_delivered_ || ring_.used() > 0 || copy_in_progress_) return false;
  ring_released_ = true;
  ctx_.ring_lease.Release();
  return true;
}

void StreamRx::OnCreditAvailable() {
  MaybeSendAck();
  TryAdvertise();
}

void StreamRx::ResumeRx(std::uint64_t resume_phase, std::uint32_t rails) {
  EXS_CHECK_MSG(RecoveryOn(), "resume on a socket without recovery enabled");
  EXS_CHECK_MSG(PhaseIsIndirect(resume_phase),
                "resume re-enters the protocol in an indirect phase");
  // Marker first: seq field = S_r (which never rewinds), len = the
  // delivered frontier the sender is resuming at.
  Trace(TraceEventType::kResumeRx, DeliveredFrontier(), 0, resume_phase);

  // The next-expected estimate re-bases on hard state.  Not the frontier:
  // ring bytes drained into un-advertised receives advance S'_r by their
  // count in DrainRing, so starting from S_r counts them exactly once.
  seq_est_ = seq_;

  // Chunks parked behind a missing stripe predecessor were never taken
  // into custody; the sender retransmits them (and restarts its stripe
  // sequence space to match).
  stripe_reorder_.clear();
  next_stripe_seq_ = 0;
  rails_ = rails;

  // Every outstanding ADVERT died with the transport: revert the pending
  // queue to un-advertised so TryAdvertise re-issues them in order, exact
  // continuation addresses included (filled bytes stay delivered).
  for (PendingRecv& r : pending_) {
    r.adverted = false;
    r.advert_phase = 0;
    r.rtt_pending = false;
  }

  // The sender adopts our cursors directly in its ResumeTx, so free space
  // already drained needs no ACK — and an ACK for it would double-free.
  pending_ack_bytes_ = 0;

  // Chunk spans across a resume are best-effort: entries waiting on
  // dropped chunks would never close.
  span_deliver_wait_.clear();
  span_ring_wait_.clear();

  if (phase_ < resume_phase) AdvancePhaseTo(resume_phase);

  // Restart delivery: drain buffered bytes into the (preserved) pending
  // receives, then re-advertise — the first post-resume ADVERT carries the
  // exact frontier sequence, which is what lets the sender's indirect-phase
  // exact-sequence rule accept it.
  DrainRing();
  TryAdvertise();
}

// --- Causal chunk tracing ---------------------------------------------------
//
// Processing (ProcessData), ring copy-out passes and receive completions
// each happen strictly in stream-byte order, so three cumulative byte
// counters are enough to pair a sampled chunk with the copy pass and the
// receive completion that retire its last byte.  None of these helpers
// schedule events or charge CPU: attaching a collector cannot perturb the
// simulation, which is what keeps golden fingerprints bit-identical.

void StreamRx::SpanNoteProcessed(std::uint64_t trace_ctx, bool indirect,
                                 std::uint64_t len) {
  if (spans_ == nullptr) return;
  span_stream_off_ += len;
  if (indirect) {
    span_ring_fill_ += len;
    if (trace_ctx != 0) {
      span_ring_wait_.push_back(
          SpanRingWait{trace_ctx, span_ring_fill_ - len, span_ring_fill_});
    }
  }
  if (trace_ctx != 0) {
    spans_->NoteProcess(trace_ctx, ctx_.scheduler->Now());
    span_deliver_wait_.push_back(
        SpanDeliverWait{trace_ctx, span_stream_off_});
  }
}

void StreamRx::SpanNoteCopyPassStart(std::uint64_t pass_bytes) {
  if (spans_ == nullptr || span_ring_wait_.empty()) return;
  // The pass consumes the FIFO prefix [span_ring_copied_, copied_after) of
  // everything ever written to the ring: any chunk overlapping that window
  // leaves ring residence now (the collector ignores repeats for chunks
  // already marked by an earlier partial pass).
  const SimTime now = ctx_.scheduler->Now();
  const std::uint64_t copied_after = span_ring_copied_ + pass_bytes;
  for (const SpanRingWait& w : span_ring_wait_) {
    if (w.fill_start >= copied_after) break;
    spans_->NoteRingCopyStart(w.id, now);
  }
}

void StreamRx::SpanNoteCopyPassDone(std::uint64_t pass_bytes) {
  if (spans_ == nullptr) return;
  const SimTime now = ctx_.scheduler->Now();
  span_ring_copied_ += pass_bytes;
  while (!span_ring_wait_.empty() &&
         span_ring_wait_.front().fill_end <= span_ring_copied_) {
    spans_->NoteCopied(span_ring_wait_.front().id, now);
    span_ring_wait_.pop_front();
  }
}

void StreamRx::SpanNoteDelivered(std::uint64_t bytes) {
  if (spans_ == nullptr || bytes == 0) return;
  const SimTime now = ctx_.scheduler->Now();
  span_delivered_ += bytes;
  while (!span_deliver_wait_.empty() &&
         span_deliver_wait_.front().end_off <= span_delivered_) {
    spans_->NoteDeliver(span_deliver_wait_.front().id, now);
    span_deliver_wait_.pop_front();
  }
}

void StreamRx::RecordHolWait(const StripedChunk& chunk) {
  if (chunk.rail >= rail_hol_.size() ||
      rail_hol_[chunk.rail] == nullptr) {
    return;
  }
  rail_hol_[chunk.rail]->Record(
      static_cast<std::uint64_t>(ctx_.scheduler->Now() - chunk.arrive_time));
}

}  // namespace exs
