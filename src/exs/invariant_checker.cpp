#include "exs/invariant_checker.hpp"

#include <algorithm>
#include <iterator>
#include <sstream>

#include "exs/mux.hpp"
#include "exs/socket.hpp"

namespace exs {

std::string InvariantReport::Summary() const {
  std::ostringstream oss;
  if (violations.empty()) {
    oss << "invariants hold (" << events_checked << " events checked)";
  } else {
    oss << violations.size() << " invariant violation(s) over "
        << events_checked << " events:";
    for (const auto& v : violations) oss << "\n  " << v;
  }
  for (const auto& w : warnings) oss << "\n  warning: " << w;
  return oss.str();
}

void InvariantReport::Merge(const InvariantReport& other) {
  violations.insert(violations.end(), other.violations.begin(),
                    other.violations.end());
  warnings.insert(warnings.end(), other.warnings.begin(),
                  other.warnings.end());
  events_checked += other.events_checked;
  dropped_events += other.dropped_events;
}

namespace {

void Violation(InvariantReport& report, const TraceEvent& ev,
               const std::string& what) {
  std::ostringstream oss;
  oss << "t=" << ToMicroseconds(ev.time) << "us " << ToString(ev.type) << ": "
      << what;
  report.violations.push_back(oss.str());
}

/// Truncation / not-enabled gate shared by every entry point.  Returns
/// false when the log cannot be meaningfully checked at all.
bool AdmitLog(const TraceLog& log, const InvariantCheckOptions& opts,
              const char* label, InvariantReport& report) {
  if (!log.enabled()) {
    report.violations.push_back(std::string(label) +
                                ": tracing was not enabled — nothing to "
                                "check (call Socket::EnableTracing)");
    return false;
  }
  report.events_checked += log.events().size();
  report.dropped_events += log.dropped();
  if (log.dropped() > 0 && !opts.allow_truncated) {
    std::ostringstream oss;
    oss << label << ": trace truncated (" << log.dropped()
        << " events dropped): widen the TraceLog capacity "
           "(Socket::EnableTracing / TraceLog::SetCapacity) — a partial "
           "trace cannot prove the safety theorem";
    report.violations.push_back(oss.str());
  } else if (log.dropped() > 0) {
    // Tolerated truncation must still be *loud*: only the retained prefix
    // was validated, so a clean report proves less than it appears to.
    std::ostringstream oss;
    oss << label << ": trace truncated (" << log.dropped()
        << " events dropped) — only the retained prefix of "
        << log.events().size() << " events was checked";
    report.warnings.push_back(oss.str());
  }
  return true;
}

void MergeLemmas(InvariantReport& report, const TraceCheckResult& lemmas) {
  report.violations.insert(report.violations.end(),
                           lemmas.violations.begin(),
                           lemmas.violations.end());
}

/// True when the trace records a transport kill or a resume — the recovery
/// path (docs/PROTOCOL.md §12).  Several rules change shape across a
/// resume: posting re-bases at the delivered frontier, stripe numbering
/// restarts at zero, and the rail count may shrink (failover), so the
/// static rail bound and the cross-log rail/ACK conservation no longer
/// apply to the whole trace.
bool HasRecoveryMarkers(const std::vector<TraceEvent>& events) {
  for (const auto& ev : events) {
    switch (ev.type) {
      case TraceEventType::kTransportKilled:
      case TraceEventType::kResumeTx:
      case TraceEventType::kResumeRx:
        return true;
      default:
        break;
    }
  }
  return false;
}

/// Checker-specific sender rules beyond the PR-1 lemma validators:
/// ADVERT-freshness at acceptance and posted-byte continuity, plus the
/// striping numbering rules when the connection ran multi-rail.
InvariantReport StreamSenderExtras(const std::vector<TraceEvent>& events,
                                   const InvariantCheckOptions& opts) {
  InvariantReport report;
  const bool resumed = HasRecoveryMarkers(events);
  std::uint64_t cum = 0;  // bytes posted so far (direct + indirect)
  std::uint64_t next_stripe = 0;  // expected next delivery sequence
  std::uint64_t staged_bytes = 0;    // staged since the last coalesce flush
  std::uint64_t staged_members = 0;  // sends staged since the last flush
  for (const auto& ev : events) {
    switch (ev.type) {
      case TraceEventType::kResumeTx:
        // The sender re-based on its peer's delivered frontier: posting
        // restarts from the marker's seq (the unacknowledged suffix is
        // retransmitted from there) and stripe numbering restarts at zero
        // on the surviving rails.
        cum = ev.seq;
        next_stripe = 0;
        break;
      case TraceEventType::kSendStaged:
        // Coalescing conservation, first half: every staged byte is
        // accounted until the flush that emits it.
        if (ev.len == 0) {
          Violation(report, ev, "zero-length send staged for coalescing");
        }
        staged_bytes += ev.len;
        ++staged_members;
        break;
      case TraceEventType::kCoalesceFlushed:
        // Second half: a flush emits exactly the bytes (and the member
        // count) staged since the previous flush — the merged WWI neither
        // drops nor invents stream bytes.
        if (ev.len == 0) {
          Violation(report, ev, "coalesce flush with no staged bytes");
        }
        if (ev.len != staged_bytes) {
          Violation(report, ev,
                    "coalesce flush length " + std::to_string(ev.len) +
                        " disagrees with the " + std::to_string(staged_bytes) +
                        " byte(s) staged since the last flush");
        }
        if (ev.msg_seq != staged_members) {
          Violation(report, ev,
                    "coalesce flush member count " +
                        std::to_string(ev.msg_seq) + " disagrees with the " +
                        std::to_string(staged_members) + " send(s) staged");
        }
        staged_bytes = 0;
        staged_members = 0;
        break;
      case TraceEventType::kAdvertAccepted:
        // Freshness (Fig. 8): an accepted ADVERT never carries a phase
        // below the sender's.  The direct-phase equality and the
        // indirect-phase exact-sequence facts are Lemma 4 / Theorem 1 in
        // the base validators; this catches the plain stale case those
        // formulations assume away.
        if (ev.msg_phase < ev.phase) {
          Violation(report, ev,
                    "stale ADVERT accepted: message phase " +
                        std::to_string(ev.msg_phase) +
                        " below sender phase " + std::to_string(ev.phase));
        }
        break;
      case TraceEventType::kDirectPosted:
      case TraceEventType::kIndirectPosted:
        // Posting events record S_s *before* it advances, so a gap-free
        // byte stream shows ev.seq == cumulative posted bytes.
        if (ev.len == 0) {
          Violation(report, ev, "zero-length transfer posted");
        }
        if (ev.seq != cum) {
          Violation(report, ev,
                    "posted byte sequence not contiguous: event at seq " +
                        std::to_string(ev.seq) + ", expected " +
                        std::to_string(cum));
        }
        cum += ev.len;
        if (opts.rails > 1) {
          // Striping: delivery sequence numbers are handed out densely in
          // posting order, and every chunk names a real rail.
          if (ev.msg_seq != next_stripe) {
            Violation(report, ev,
                      "stripe sequence gap at posting: got " +
                          std::to_string(ev.msg_seq) + ", expected " +
                          std::to_string(next_stripe));
          }
          next_stripe = ev.msg_seq + 1;
          // The static rail bound only holds on a connection whose rail
          // count never changed; failover shrinks it mid-trace.
          if (!resumed && ev.msg_phase >= opts.rails) {
            Violation(report, ev,
                      "chunk posted on rail " + std::to_string(ev.msg_phase) +
                          " of a " + std::to_string(opts.rails) +
                          "-rail connection");
          }
        }
        break;
      default:
        break;
    }
  }
  return report;
}

/// Checker-specific receiver rules: consumed-byte continuity and the
/// replayed intermediate-buffer occupancy with the safety-theorem
/// emptiness conditions.  On striped connections, additionally: arrivals
/// are *processed* in exact stripe order — the reassembly guarantee that
/// makes the rest of the receiver rules oblivious to rail choice.
InvariantReport StreamReceiverExtras(const std::vector<TraceEvent>& events,
                                     const InvariantCheckOptions& opts) {
  InvariantReport report;
  const bool resumed = HasRecoveryMarkers(events);
  std::uint64_t cum = 0;        // bytes landed in user memory so far
  std::int64_t occupancy = 0;   // replayed intermediate-buffer bytes
  std::uint64_t next_stripe = 0;  // expected next processed stripe seq
  for (const auto& ev : events) {
    if (ev.type == TraceEventType::kResumeRx) {
      // Stripe reassembly restarts on the surviving rails.  The delivered
      // byte counter `cum` deliberately runs through unreset: a resumed
      // stream must stay gap-free and duplicate-free in user memory, so
      // the continuity rules below hold across the marker unchanged.
      next_stripe = 0;
      continue;
    }
    if (opts.rails > 1 && (ev.type == TraceEventType::kDirectArrived ||
                           ev.type == TraceEventType::kIndirectArrived)) {
      if (ev.msg_seq != next_stripe) {
        Violation(report, ev,
                  "stripe reassembly out of order: processed stripe " +
                      std::to_string(ev.msg_seq) + ", expected " +
                      std::to_string(next_stripe));
      }
      next_stripe = ev.msg_seq + 1;
      if (!resumed && ev.msg_phase >= opts.rails) {
        Violation(report, ev,
                  "chunk arrived on rail " + std::to_string(ev.msg_phase) +
                      " of a " + std::to_string(opts.rails) +
                      "-rail connection");
      }
    }
    switch (ev.type) {
      case TraceEventType::kDirectArrived:
      case TraceEventType::kCopyOut:
        // Arrival/copy events record S_r *after* it advances, so a
        // gap-free stream shows ev.seq == cumulative + this event.
        if (ev.len == 0) {
          Violation(report, ev, "zero-length arrival or copy");
        }
        if (ev.seq != cum + ev.len) {
          Violation(report, ev,
                    "received byte sequence not contiguous: event ends at "
                    "seq " +
                        std::to_string(ev.seq) + ", expected " +
                        std::to_string(cum + ev.len));
        }
        cum = ev.seq;
        break;
      default:
        break;
    }

    switch (ev.type) {
      case TraceEventType::kIndirectArrived:
        occupancy += static_cast<std::int64_t>(ev.len);
        if (opts.rx_ring_capacity != 0 &&
            occupancy >
                static_cast<std::int64_t>(opts.rx_ring_capacity)) {
          Violation(report, ev,
                    "intermediate buffer overflow: occupancy " +
                        std::to_string(occupancy) + " exceeds capacity " +
                        std::to_string(opts.rx_ring_capacity));
        }
        break;
      case TraceEventType::kCopyOut:
        occupancy -= static_cast<std::int64_t>(ev.len);
        if (occupancy < 0) {
          Violation(report, ev,
                    "copy-out of more bytes than the buffer holds "
                    "(occupancy " +
                        std::to_string(occupancy) + ")");
        }
        break;
      case TraceEventType::kAdvertSent:
        // Fig. 3 gate, observable form: no ADVERT leaves while buffered
        // bytes remain.
        if (occupancy != 0) {
          Violation(report, ev,
                    "ADVERT sent while the intermediate buffer holds " +
                        std::to_string(occupancy) +
                        " byte(s) — Fig. 3 gate violated");
        }
        break;
      case TraceEventType::kAckPiggybacked:
        // A piggybacked ACK rides an ADVERT, so it inherits the ADVERT's
        // gate: the buffer must be empty when it leaves.
        if (occupancy != 0) {
          Violation(report, ev,
                    "ACK piggybacked onto an ADVERT while the intermediate "
                    "buffer holds " +
                        std::to_string(occupancy) + " byte(s)");
        }
        break;
      case TraceEventType::kDirectArrived:
        // Theorem 1, observable form: a direct transfer lands only when
        // nothing is buffered ahead of it.
        if (occupancy != 0) {
          Violation(report, ev,
                    "direct transfer arrived while the intermediate buffer "
                    "holds " +
                        std::to_string(occupancy) +
                        " byte(s) — safety theorem violated");
        }
        break;
      default:
        break;
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// SOCK_SEQPACKET rules (§II-C): no phases, no indirect path, and ADVERT
// counters must arrive gap-free in order (RC is reliable and in-order).
// ---------------------------------------------------------------------------

bool IsReceiverSideType(TraceEventType type) {
  switch (type) {
    case TraceEventType::kAdvertSent:
    case TraceEventType::kDirectArrived:
    case TraceEventType::kIndirectArrived:
    case TraceEventType::kCopyOut:
    case TraceEventType::kAckSent:
    case TraceEventType::kReceiverPhaseChanged:
      return true;
    default:
      return false;
  }
}

InvariantReport SeqPacketCommon(const std::vector<TraceEvent>& events,
                                bool receiver_side) {
  InvariantReport report;
  std::uint64_t cum = 0;
  std::uint64_t last_advert_counter = 0;
  for (const auto& ev : events) {
    if (ev.phase != 0) {
      Violation(report, ev, "SEQPACKET event carries a nonzero phase");
    }
    if (IsReceiverSideType(ev.type) != receiver_side) {
      Violation(report, ev, "event from the wrong connection half");
    }
    switch (ev.type) {
      case TraceEventType::kIndirectArrived:
      case TraceEventType::kIndirectPosted:
      case TraceEventType::kCopyOut:
        Violation(report, ev,
                  "stream-only event in a SEQPACKET trace — message mode "
                  "has no indirect path");
        break;
      case TraceEventType::kAdvertSent:
      case TraceEventType::kAdvertReceived:
        // Counters start at 1 and advance by exactly one: RC delivery is
        // reliable and in-order, so any gap or repeat is a protocol bug.
        if (ev.msg_seq != last_advert_counter + 1) {
          Violation(report, ev,
                    "ADVERT counter gap: got " + std::to_string(ev.msg_seq) +
                        ", expected " +
                        std::to_string(last_advert_counter + 1) +
                        " — lost, duplicated, or reordered ADVERT");
        }
        last_advert_counter = ev.msg_seq;
        break;
      case TraceEventType::kDirectPosted:
        if (ev.seq != cum) {
          Violation(report, ev,
                    "posted byte sequence not contiguous: event at seq " +
                        std::to_string(ev.seq) + ", expected " +
                        std::to_string(cum));
        }
        cum += ev.len;
        break;
      case TraceEventType::kDirectArrived:
        if (ev.seq != cum + ev.len) {
          Violation(report, ev,
                    "received byte sequence not contiguous: event ends at "
                    "seq " +
                        std::to_string(ev.seq) + ", expected " +
                        std::to_string(cum + ev.len));
        }
        cum = ev.seq;
        break;
      default:
        break;
    }
  }
  return report;
}

struct KindTotals {
  std::uint64_t direct_bytes = 0;
  std::uint64_t direct_count = 0;
  std::uint64_t indirect_bytes = 0;
  std::uint64_t adverts = 0;
};

KindTotals Tally(const std::vector<TraceEvent>& events) {
  KindTotals t;
  for (const auto& ev : events) {
    switch (ev.type) {
      case TraceEventType::kDirectPosted:
      case TraceEventType::kDirectArrived:
        t.direct_bytes += ev.len;
        ++t.direct_count;
        break;
      case TraceEventType::kIndirectPosted:
      case TraceEventType::kIndirectArrived:
        t.indirect_bytes += ev.len;
        break;
      case TraceEventType::kAdvertSent:
      case TraceEventType::kAdvertReceived:
        ++t.adverts;
        break;
      default:
        break;
    }
  }
  return t;
}

}  // namespace

InvariantReport CheckStreamSenderTrace(const TraceLog& log,
                                       const InvariantCheckOptions& opts) {
  InvariantReport report;
  if (!AdmitLog(log, opts, "sender", report)) return report;
  MergeLemmas(report, ValidateSenderTrace(log.events()));
  report.Merge(StreamSenderExtras(log.events(), opts));
  return report;
}

InvariantReport CheckStreamReceiverTrace(const TraceLog& log,
                                         const InvariantCheckOptions& opts) {
  InvariantReport report;
  if (!AdmitLog(log, opts, "receiver", report)) return report;
  MergeLemmas(report, ValidateReceiverTrace(log.events()));
  report.Merge(StreamReceiverExtras(log.events(), opts));
  return report;
}

InvariantReport CheckStreamPair(const TraceLog& sender_log,
                                const TraceLog& receiver_log,
                                const InvariantCheckOptions& opts) {
  InvariantReport report;
  bool sender_ok = AdmitLog(sender_log, opts, "sender", report);
  bool receiver_ok = AdmitLog(receiver_log, opts, "receiver", report);
  if (!sender_ok || !receiver_ok) return report;

  // The pair validator runs both per-side lemma sets plus conservation.
  MergeLemmas(report, ValidateConnectionTraces(sender_log.events(),
                                               receiver_log.events()));
  report.Merge(StreamSenderExtras(sender_log.events(), opts));
  report.Merge(StreamReceiverExtras(receiver_log.events(), opts));

  // Across a kill/resume the cross-log conservation rules no longer hold
  // as stated: retransmitted chunks are posted twice (so per-rail arrivals
  // are not a prefix of per-rail posts), failover renumbers rails, and
  // ACKs in flight at the kill are lost while the resume handshake restores
  // the sender's ring view without a kAckReceived event.  The per-side
  // rules above — including delivered-byte continuity — still ran; skip
  // only the pairwise ones, loudly.
  if (HasRecoveryMarkers(sender_log.events()) ||
      HasRecoveryMarkers(receiver_log.events())) {
    report.warnings.push_back(
        "kill/resume markers present: rail and ACK conservation "
        "cross-checks skipped (delivered-byte equivalence is proven by the "
        "recovery harness's payload fingerprints instead)");
    return report;
  }

  if (opts.rails > 1) {
    // Per-rail conservation: the chunks that arrived on a rail are exactly
    // a prefix of the chunks posted on it, in order, with matching length
    // and kind.  (A prefix, not equality: chunks may still be in flight
    // when a trace ends.)
    struct RailChunk {
      std::uint64_t stripe;
      std::uint64_t len;
      bool indirect;
    };
    std::vector<std::vector<RailChunk>> posted(opts.rails);
    std::vector<std::vector<RailChunk>> arrived(opts.rails);
    for (const auto& ev : sender_log.events()) {
      if ((ev.type == TraceEventType::kDirectPosted ||
           ev.type == TraceEventType::kIndirectPosted) &&
          ev.msg_phase < opts.rails) {
        posted[ev.msg_phase].push_back(
            {ev.msg_seq, ev.len,
             ev.type == TraceEventType::kIndirectPosted});
      }
    }
    for (const auto& ev : receiver_log.events()) {
      if ((ev.type == TraceEventType::kDirectArrived ||
           ev.type == TraceEventType::kIndirectArrived) &&
          ev.msg_phase < opts.rails) {
        arrived[ev.msg_phase].push_back(
            {ev.msg_seq, ev.len,
             ev.type == TraceEventType::kIndirectArrived});
      }
    }
    for (std::uint32_t rail = 0; rail < opts.rails; ++rail) {
      if (arrived[rail].size() > posted[rail].size()) {
        report.violations.push_back(
            "rail " + std::to_string(rail) + " delivered " +
            std::to_string(arrived[rail].size()) +
            " chunk(s) but only " + std::to_string(posted[rail].size()) +
            " were posted on it");
        continue;
      }
      for (std::size_t i = 0; i < arrived[rail].size(); ++i) {
        const RailChunk& p = posted[rail][i];
        const RailChunk& r = arrived[rail][i];
        if (p.stripe != r.stripe || p.len != r.len ||
            p.indirect != r.indirect) {
          report.violations.push_back(
              "rail " + std::to_string(rail) + " chunk " +
              std::to_string(i) + " mismatch: posted (stripe " +
              std::to_string(p.stripe) + ", " + std::to_string(p.len) +
              " bytes, " + (p.indirect ? "indirect" : "direct") +
              "), arrived (stripe " + std::to_string(r.stripe) + ", " +
              std::to_string(r.len) + " bytes, " +
              (r.indirect ? "indirect" : "direct") + ")");
          break;
        }
      }
    }
  }

  // ACK conservation: the sender can never learn of more freed buffer
  // space than the receiver reported — whether the count travelled as a
  // standalone ACK or rode an ADVERT.  (Equality need not hold: ACKs may
  // still be in flight when a trace ends.)
  std::uint64_t freed_reported = 0;
  for (const auto& ev : receiver_log.events()) {
    if (ev.type == TraceEventType::kAckSent ||
        ev.type == TraceEventType::kAckPiggybacked) {
      freed_reported += ev.len;
    }
  }
  std::uint64_t freed_learned = 0;
  for (const auto& ev : sender_log.events()) {
    if (ev.type == TraceEventType::kAckReceived) freed_learned += ev.len;
  }
  if (freed_learned > freed_reported) {
    report.violations.push_back(
        "ACK conservation failed: sender released " +
        std::to_string(freed_learned) +
        " byte(s) of buffer space but the receiver only reported " +
        std::to_string(freed_reported));
  }
  return report;
}

InvariantReport CheckSeqPacketSenderTrace(const TraceLog& log,
                                          const InvariantCheckOptions& opts) {
  InvariantReport report;
  if (!AdmitLog(log, opts, "sender", report)) return report;
  report.Merge(SeqPacketCommon(log.events(), /*receiver_side=*/false));
  return report;
}

InvariantReport CheckSeqPacketReceiverTrace(
    const TraceLog& log, const InvariantCheckOptions& opts) {
  InvariantReport report;
  if (!AdmitLog(log, opts, "receiver", report)) return report;
  report.Merge(SeqPacketCommon(log.events(), /*receiver_side=*/true));
  return report;
}

InvariantReport CheckSeqPacketPair(const TraceLog& sender_log,
                                   const TraceLog& receiver_log,
                                   const InvariantCheckOptions& opts) {
  InvariantReport report;
  bool sender_ok = AdmitLog(sender_log, opts, "sender", report);
  bool receiver_ok = AdmitLog(receiver_log, opts, "receiver", report);
  if (!sender_ok || !receiver_ok) return report;
  report.Merge(SeqPacketCommon(sender_log.events(), /*receiver_side=*/false));
  report.Merge(
      SeqPacketCommon(receiver_log.events(), /*receiver_side=*/true));

  // Conservation across the wire: every posted message arrived, whole.
  KindTotals tx = Tally(sender_log.events());
  KindTotals rx = Tally(receiver_log.events());
  if (tx.direct_count != rx.direct_count) {
    report.violations.push_back(
        "SEQPACKET message conservation failed: posted " +
        std::to_string(tx.direct_count) + " message(s), delivered " +
        std::to_string(rx.direct_count));
  }
  if (tx.direct_bytes != rx.direct_bytes) {
    report.violations.push_back(
        "SEQPACKET byte conservation failed: posted " +
        std::to_string(tx.direct_bytes) + " byte(s), delivered " +
        std::to_string(rx.direct_bytes));
  }
  if (tx.adverts > rx.adverts) {
    report.violations.push_back(
        "SEQPACKET ADVERT conservation failed: sender consumed " +
        std::to_string(tx.adverts) + " ADVERT(s), receiver sent only " +
        std::to_string(rx.adverts));
  }
  return report;
}

namespace {

/// Hot-path batching conservation for one socket's send rails, audited at
/// quiescence from verbs-layer ground truth (QueuePairStats):
///   - gather byte conservation: the summed SGE lengths of every posted
///     send WR equal the wire payload those WRs carried — a gather list
///     never sends more or fewer bytes than its slices name;
///   - doorbell accounting: WRs posted through batched doorbells are a
///     subset of all posted sends, and every doorbell ring covered at
///     least one WR (PostSendBatch refuses empty batches);
///   - flush discipline: no WR may still be parked behind an un-rung
///     doorbell once the connection is quiescent — a batched post that
///     never flushed is a send that silently never happened.
/// Holds identically with batching off (all batch counters are zero).
void CheckBatchingConservation(InvariantReport& report, const char* label,
                               const Socket& s) {
  // Mux slots post through the group owner's shared channels and are
  // audited by CheckMuxGroupPair; rails here are classic per-socket QPs.
  if (s.Muxed()) return;
  for (std::size_t rail = 0; rail < s.effective_rails(); ++rail) {
    const ControlChannel& ch =
        rail == 0 ? s.channel() : s.data_rail(rail - 1);
    if (!ch.HasQueuePair()) continue;  // never connected: nothing posted
    ++report.events_checked;
    const verbs::QueuePairStats& qp = ch.qp_stats();
    if (qp.sge_bytes_posted != qp.payload_bytes_sent) {
      std::ostringstream oss;
      oss << label << " rail " << rail
          << ": gather byte conservation broken — posted SGE lists sum to "
          << qp.sge_bytes_posted << " byte(s) but the WRs carried "
          << qp.payload_bytes_sent
          << " payload byte(s); a scatter-gather WR lost or invented bytes";
      report.violations.push_back(oss.str());
    }
    if (qp.batched_wrs > qp.sends_posted) {
      std::ostringstream oss;
      oss << label << " rail " << rail
          << ": doorbell accounting broken — " << qp.batched_wrs
          << " WR(s) attributed to batched doorbells but only "
          << qp.sends_posted
          << " send(s) were ever posted; a WR was double-counted";
      report.violations.push_back(oss.str());
    }
    if (qp.doorbells > qp.batched_wrs) {
      std::ostringstream oss;
      oss << label << " rail " << rail << ": " << qp.doorbells
          << " doorbell ring(s) covered only " << qp.batched_wrs
          << " WR(s); an empty batch rang the doorbell";
      report.violations.push_back(oss.str());
    }
    if (ch.PendingBatchedWrs() != 0) {
      std::ostringstream oss;
      oss << label << " rail " << rail << ": " << ch.PendingBatchedWrs()
          << " WR(s) still parked behind an un-rung doorbell at "
             "quiescence — a pump pass exited without flushing its batch";
      report.violations.push_back(oss.str());
    }
  }
}

}  // namespace

InvariantReport CheckConnection(Socket& a, Socket& b) {
  InvariantReport report;
  if (a.type() == SocketType::kSeqPacket) {
    report.Merge(CheckSeqPacketPair(a.tx_trace(), b.rx_trace()));
    report.Merge(CheckSeqPacketPair(b.tx_trace(), a.rx_trace()));
    return report;
  }
  InvariantCheckOptions a_to_b;
  if (b.stream_rx() != nullptr) {
    a_to_b.rx_ring_capacity = b.stream_rx()->ring_capacity();
  }
  a_to_b.rails = static_cast<std::uint32_t>(a.effective_rails());
  InvariantCheckOptions b_to_a;
  if (a.stream_rx() != nullptr) {
    b_to_a.rx_ring_capacity = a.stream_rx()->ring_capacity();
  }
  b_to_a.rails = static_cast<std::uint32_t>(b.effective_rails());
  report.Merge(CheckStreamPair(a.tx_trace(), b.rx_trace(), a_to_b));
  report.Merge(CheckStreamPair(b.tx_trace(), a.rx_trace(), b_to_a));
  CheckBatchingConservation(report, "a->b", a);
  CheckBatchingConservation(report, "b->a", b);
  return report;
}

namespace {

/// One direction of rule (a): everything `tx` posted is accounted at `rx`.
void CheckMuxConservation(InvariantReport& report, const char* label,
                          const MuxGroupStats& tx, const MuxGroupStats& rx) {
  ++report.events_checked;
  std::uint64_t accounted =
      rx.data_delivered + rx.stale_data_drops + rx.orphan_drops;
  if (tx.data_posted != accounted) {
    std::ostringstream oss;
    oss << label << ": mux data conservation broken — " << tx.data_posted
        << " WWI(s) posted but peer accounts " << accounted << " ("
        << rx.data_delivered << " delivered + " << rx.stale_data_drops
        << " epoch-stale + " << rx.orphan_drops
        << " orphaned); a message vanished inside the mux layer (or the "
           "groups were not quiescent when checked)";
    report.violations.push_back(oss.str());
  }
}

/// One direction of rule (c) for one slot: `tx`'s view of its peer slot
/// `rx`'s credits, plus what `rx` still owes, equals `rx`'s pool.
void CheckMuxSlotCredits(InvariantReport& report, const char* label,
                         std::size_t slot, const ControlChannel& tx,
                         const ControlChannel& rx) {
  ++report.events_checked;
  if (tx.dead() || rx.dead()) return;  // a dead slot's window is void
  std::uint32_t seen = tx.remote_credits() + rx.owed_credits();
  if (seen != rx.credit_pool_size()) {
    std::ostringstream oss;
    oss << label << " slot " << slot << ": credit conservation broken — "
        << "sender sees " << tx.remote_credits() << " credit(s), receiver "
        << "owes " << rx.owed_credits() << ", pool is "
        << rx.credit_pool_size()
        << "; the mux layer minted or leaked shared-QP credits";
    report.violations.push_back(oss.str());
  }
}

/// Rules (b) for one stream pair, one direction.
void CheckMuxStreamPair(InvariantReport& report, const char* label,
                        std::uint32_t id, const MuxStream& tx,
                        const MuxStream& rx) {
  ++report.events_checked;
  if (tx.outstanding() != 0) {
    std::ostringstream oss;
    oss << label << " stream " << id << ": " << tx.outstanding()
        << " data WWI(s) still outstanding at quiescence — a send "
           "completion never came back through the slot FIFO";
    report.violations.push_back(oss.str());
  }
  if (tx.dead() || rx.dead() || tx.epoch() != rx.epoch()) {
    // Killed or mid-revive: continuity is re-established by the resume
    // machinery, not asserted here.
    return;
  }
  if (tx.tx_seq() != rx.rx_expect()) {
    std::ostringstream oss;
    oss << label << " stream " << id << ": per-stream continuity broken — "
        << "sender sequence is at " << tx.tx_seq()
        << " but receiver expects " << rx.rx_expect()
        << "; the shared QP reordered or dropped within a stream";
    report.violations.push_back(oss.str());
  }
}

}  // namespace

InvariantReport CheckMuxGroupPair(const MuxGroup& a, const MuxGroup& b) {
  InvariantReport report;
  if (a.peer() != &b || b.peer() != &a) {
    report.violations.push_back(
        "mux groups are not connected peers (MuxGroup::Connect)");
    return report;
  }
  if (a.width() != b.width()) {
    report.violations.push_back("mux group widths differ");
    return report;
  }
  CheckMuxConservation(report, "a->b", a.stats(), b.stats());
  CheckMuxConservation(report, "b->a", b.stats(), a.stats());
  for (std::size_t slot = 0; slot < a.width(); ++slot) {
    CheckMuxSlotCredits(report, "a->b", slot, a.slot(slot), b.slot(slot));
    CheckMuxSlotCredits(report, "b->a", slot, b.slot(slot), a.slot(slot));
  }
  // Rule (b) runs over stream pairs attached on both sides; a one-sided
  // stream is legal mid-teardown but its counters prove nothing.
  for (std::uint32_t id : a.StreamIds()) {
    const MuxStream* sa = a.FindStream(id);
    const MuxStream* sb = b.FindStream(id);
    if (sa == nullptr || sb == nullptr) continue;
    CheckMuxStreamPair(report, "a->b", id, *sa, *sb);
    CheckMuxStreamPair(report, "b->a", id, *sb, *sa);
  }
  return report;
}

InvariantReport CheckSpanConservation(const spans::SpanCollector& collector,
                                      SimDuration slack_ps) {
  InvariantReport report;
  // The eight boundary timestamps, in chunk order.  The seven stages are
  // exactly the adjacent differences, so when every boundary is stamped
  // and ordered the stage sum telescopes to t_deliver − t_submit; any
  // residue (beyond the granted slack) convicts the instrumentation.
  struct Boundary {
    const char* name;
    SimTime spans::ChunkRecord::* field;
  };
  static constexpr Boundary kBoundaries[] = {
      {"submit", &spans::ChunkRecord::t_submit},
      {"flush", &spans::ChunkRecord::t_flush},
      {"post", &spans::ChunkRecord::t_post},
      {"arrive", &spans::ChunkRecord::t_arrive},
      {"process", &spans::ChunkRecord::t_process},
      {"ring_end", &spans::ChunkRecord::t_ring_end},
      {"copied", &spans::ChunkRecord::t_copied},
      {"deliver", &spans::ChunkRecord::t_deliver},
  };
  std::uint64_t undelivered = 0;
  for (const spans::ChunkRecord& c : collector.chunks()) {
    if (!c.delivered()) {
      // Legal for chunks still in flight when the run stopped; counted so
      // a harness that expects full delivery can notice.
      ++undelivered;
      continue;
    }
    ++report.events_checked;
    bool complete = true;
    for (const Boundary& b : kBoundaries) {
      if (c.*(b.field) == spans::kNoTime) {
        std::ostringstream oss;
        oss << "chunk " << c.id << ": delivered but boundary '" << b.name
            << "' was never stamped";
        report.violations.push_back(oss.str());
        complete = false;
      }
    }
    if (!complete) continue;
    bool ordered = true;
    for (std::size_t i = 1; i < std::size(kBoundaries); ++i) {
      SimTime prev = c.*(kBoundaries[i - 1].field);
      SimTime cur = c.*(kBoundaries[i].field);
      if (cur < prev) {
        std::ostringstream oss;
        oss << "chunk " << c.id << ": boundary '" << kBoundaries[i].name
            << "' (" << cur << "ps) precedes '" << kBoundaries[i - 1].name
            << "' (" << prev << "ps)";
        report.violations.push_back(oss.str());
        ordered = false;
      }
    }
    if (!ordered) continue;
    SimDuration sum = 0;
    for (std::size_t s = 0; s < spans::kStageCount; ++s) {
      sum += c.StageDuration(static_cast<spans::Stage>(s));
    }
    const SimDuration e2e = c.EndToEnd();
    const SimDuration residue = sum > e2e ? sum - e2e : e2e - sum;
    if (residue > slack_ps) {
      std::ostringstream oss;
      oss << "chunk " << c.id << ": stage sum " << sum
          << "ps != end-to-end " << e2e << "ps (residue " << residue
          << "ps exceeds slack " << slack_ps << "ps)";
      report.violations.push_back(oss.str());
    }
  }
  if (undelivered > 0) {
    std::ostringstream oss;
    oss << "span conservation: " << undelivered << " sampled chunk(s) were "
        << "never delivered — conservation checked on the delivered "
        << collector.chunks().size() - undelivered << " only";
    report.warnings.push_back(oss.str());
  }
  return report;
}

InvariantReport CheckPoolConservation(
    const std::vector<const TraceLog*>& receiver_logs,
    const PoolCheckOptions& opts) {
  InvariantReport report;
  InvariantCheckOptions admit;
  admit.allow_truncated = opts.allow_truncated;

  // Ring deltas from every log, tagged for the cross-stream merge below.
  struct Delta {
    decltype(TraceEvent::time) time;
    std::int64_t bytes;  // +arrival / -copy-out
    const TraceEvent* ev;
  };
  std::vector<Delta> deltas;

  for (std::size_t i = 0; i < receiver_logs.size(); ++i) {
    const TraceLog* log = receiver_logs[i];
    std::string label = "pool receiver[" + std::to_string(i) + "]";
    if (log == nullptr) {
      report.violations.push_back(label + ": null trace log");
      continue;
    }
    if (!AdmitLog(*log, admit, label.c_str(), report)) continue;
    // Per-stream replay: conservation (never negative) and the lease
    // bound (a stream can never occupy more slab than it leased).
    std::int64_t occupancy = 0;
    bool over_lease = false;
    for (const auto& ev : log->events()) {
      switch (ev.type) {
        case TraceEventType::kIndirectArrived:
          occupancy += static_cast<std::int64_t>(ev.len);
          deltas.push_back({ev.time, static_cast<std::int64_t>(ev.len), &ev});
          if (opts.lease_bytes > 0 &&
              occupancy > static_cast<std::int64_t>(opts.lease_bytes)) {
            if (!over_lease) {
              Violation(report, ev,
                        label + ": ring occupancy " +
                            std::to_string(occupancy) +
                            " exceeds its lease of " +
                            std::to_string(opts.lease_bytes) + " byte(s)");
            }
            over_lease = true;
          }
          break;
        case TraceEventType::kCopyOut:
          occupancy -= static_cast<std::int64_t>(ev.len);
          deltas.push_back({ev.time, -static_cast<std::int64_t>(ev.len), &ev});
          if (occupancy < 0) {
            Violation(report, ev,
                      label + ": copied out " + std::to_string(ev.len) +
                          " byte(s) more than ever arrived (occupancy " +
                          std::to_string(occupancy) + ")");
          }
          if (opts.lease_bytes > 0 &&
              occupancy <= static_cast<std::int64_t>(opts.lease_bytes)) {
            over_lease = false;
          }
          break;
        default:
          break;
      }
    }
  }

  // Aggregate replay: merge every stream's deltas by time, draining
  // before filling at equal timestamps (the conservative tie-break — at
  // one instant the slab held at most the post-drain sum, so this order
  // cannot manufacture a false overshoot).  The summed occupancy staying
  // under the slab size is the O(pool) memory claim itself.
  if (opts.pool_capacity_bytes > 0) {
    std::stable_sort(deltas.begin(), deltas.end(),
                     [](const Delta& a, const Delta& b) {
                       if (a.time != b.time) return a.time < b.time;
                       return a.bytes < b.bytes;
                     });
    std::int64_t total = 0;
    bool over_pool = false;
    for (const auto& d : deltas) {
      total += d.bytes;
      if (total > static_cast<std::int64_t>(opts.pool_capacity_bytes)) {
        if (!over_pool) {
          Violation(report, *d.ev,
                    "aggregate pool occupancy " + std::to_string(total) +
                        " exceeds the shared slab of " +
                        std::to_string(opts.pool_capacity_bytes) +
                        " byte(s) across " +
                        std::to_string(receiver_logs.size()) + " stream(s)");
        }
        over_pool = true;
      } else {
        over_pool = false;
      }
    }
  }
  return report;
}

InvariantReport CheckRpcConservation(
    const std::vector<const rpc::RpcLedger*>& clients,
    const rpc::RpcServerCounters* server) {
  InvariantReport report;
  std::uint64_t issued = 0;
  std::uint64_t shed = 0;
  std::uint64_t answered = 0;
  std::uint64_t refused = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t stale = 0;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    const rpc::RpcLedger& ledger = *clients[c];
    issued += ledger.issued();
    shed += ledger.shed_local;
    stale += ledger.stale_responses;
    std::uint64_t client_timed_out = 0;
    for (std::size_t i = 0; i < ledger.outcome.size(); ++i) {
      ++report.events_checked;
      const auto o = static_cast<rpc::Outcome>(ledger.outcome[i]);
      const std::uint8_t attempts = ledger.outcome_count[i];
      if (o == rpc::Outcome::kPending || attempts == 0) {
        report.violations.push_back(
            "rpc: client " + std::to_string(c) + " request " +
            std::to_string(i + 1) +
            " lost: no terminal outcome at quiescence");
        continue;
      }
      if (attempts != 1) {
        report.violations.push_back(
            "rpc: client " + std::to_string(c) + " request " +
            std::to_string(i + 1) + " resolved " + std::to_string(attempts) +
            " times (outcome must be exactly one of "
            "answered/timed-out/refused)");
      }
      switch (o) {
        case rpc::Outcome::kAnswered: ++answered; break;
        case rpc::Outcome::kRefused: ++refused; break;
        case rpc::Outcome::kTimedOut:
          ++timed_out;
          ++client_timed_out;
          break;
        case rpc::Outcome::kPending: break;
      }
    }
    if (ledger.cancelled > client_timed_out) {
      report.violations.push_back(
          "rpc: client " + std::to_string(c) + " records " +
          std::to_string(ledger.cancelled) + " cancellations but only " +
          std::to_string(client_timed_out) + " timed-out outcomes");
    }
  }
  if (shed > refused) {
    report.violations.push_back(
        "rpc: " + std::to_string(shed) + " locally shed request(s) exceed " +
        std::to_string(refused) + " refused outcome(s)");
  }
  if (server != nullptr) {
    const std::uint64_t on_wire = issued - (shed < issued ? shed : issued);
    if (server->requests_received != on_wire) {
      report.violations.push_back(
          "rpc: server received " + std::to_string(server->requests_received) +
          " request(s) but clients put " + std::to_string(on_wire) +
          " on the wire (" + std::to_string(issued) + " issued - " +
          std::to_string(shed) + " shed)");
    }
    const std::uint64_t refused_remote = refused - (shed < refused ? shed : refused);
    const std::uint64_t accounted = answered + refused_remote + stale;
    if (server->responses_sent != accounted) {
      report.violations.push_back(
          "rpc: server sent " + std::to_string(server->responses_sent) +
          " response(s) but clients account " + std::to_string(accounted) +
          " (" + std::to_string(answered) + " answered + " +
          std::to_string(refused_remote) + " refused + " +
          std::to_string(stale) + " stale)");
    }
    if (server->responses_sent != server->answered + server->refused) {
      report.violations.push_back(
          "rpc: server response split broken: " +
          std::to_string(server->responses_sent) + " sent != " +
          std::to_string(server->answered) + " answered + " +
          std::to_string(server->refused) + " refused");
    }
  }
  return report;
}

std::uint64_t TraceFingerprint(const TraceLog& log) {
  // FNV-1a over every recorded field, in order.  Traces carry no memory
  // addresses, so the hash is stable across processes and ASLR.
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  mix(log.events().size());
  mix(log.dropped());
  for (const auto& ev : log.events()) {
    mix(static_cast<std::uint64_t>(ev.time));
    mix(static_cast<std::uint64_t>(ev.type));
    mix(ev.seq);
    mix(ev.phase);
    mix(ev.len);
    mix(ev.msg_seq);
    mix(ev.msg_phase);
  }
  return h;
}

std::uint64_t ConnectionFingerprint(const Socket& a, const Socket& b) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  mix(TraceFingerprint(a.tx_trace()));
  mix(TraceFingerprint(a.rx_trace()));
  mix(TraceFingerprint(b.tx_trace()));
  mix(TraceFingerprint(b.rx_trace()));
  return h;
}

}  // namespace exs
