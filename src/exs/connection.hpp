// Connection establishment: the simulated stand-in for the rdma_cm
// listen/connect/accept machinery the real library runs on.
//
// The ConnectionService implements a three-way handshake whose messages
// travel over the fabric's links with real timing:
//
//   REQ  (client -> server)  port, socket type, credit-pool size, and the
//                            client's intermediate-buffer credentials;
//   REP  (server -> client)  the accepting socket's credentials — or a
//                            REJECT when nothing listens on the port or
//                            the socket types mismatch;
//   RTU  (client -> server)  "ready to use": the server side opens.
//
// The client socket becomes usable when REP arrives; the server socket
// when RTU arrives — so, as on real fabrics, the connecting side can send
// immediately after its callback fires and the data cannot outrun the
// server's readiness (in-order delivery behind the RTU).  The queue pairs
// and their pre-posted receive pools are wired when the REQ is accepted,
// which models the endpoints each side prepares before the handshake
// completes.
//
// `Socket::ConnectPair` remains available as the zero-time rendezvous for
// tests that do not care about establishment timing.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "exs/socket.hpp"
#include "simnet/fabric.hpp"
#include "verbs/device.hpp"

namespace exs {

class ConnectionService;

/// What the REQ's private data says about the connection beyond its port
/// and type.  A muxed client asks the server to carry the stream over its
/// shared-QP pool under `mux_stream` instead of a dedicated transport; the
/// accept gate either attaches a matching MuxStream or refuses.
struct AcceptMeta {
  bool mux = false;
  std::uint32_t mux_stream = 0;
};

/// A passive endpoint bound to (node, port).  Accepted sockets are handed
/// to the handler once their handshake completes.
class Listener {
 public:
  using AcceptHandler = std::function<void(Socket*)>;
  /// Constructs the passive socket for an incoming REQ — or returns null
  /// to refuse it (the client sees a REJECT).  This is where the engine's
  /// admission control hooks in: under memory pressure it declines the
  /// connection *before* any resources are committed, instead of letting
  /// an accepted socket starve the shared pools.
  using AcceptGate = std::function<std::unique_ptr<Socket>(
      verbs::Device& device, SocketType type, const StreamOptions& options,
      const std::string& name, const AcceptMeta& meta)>;

  void SetAcceptHandler(AcceptHandler handler) {
    handler_ = std::move(handler);
    DrainBacklog();
  }

  /// Install an admission gate; null restores the default construction.
  void SetAcceptGate(AcceptGate gate) { gate_ = std::move(gate); }

  std::uint16_t port() const { return port_; }
  std::size_t node_index() const { return node_index_; }
  std::size_t AcceptedCount() const { return accepted_count_; }
  std::size_t RefusedCount() const { return refused_count_; }

 private:
  friend class ConnectionService;
  Listener(std::size_t node_index, std::uint16_t port, SocketType type,
           StreamOptions options)
      : node_index_(node_index), port_(port), type_(type),
        options_(std::move(options)) {}

  void Deliver(Socket* socket) {
    ++accepted_count_;
    if (handler_) {
      handler_(socket);
    } else {
      backlog_.push_back(socket);
    }
  }
  void DrainBacklog() {
    while (handler_ && !backlog_.empty()) {
      Socket* s = backlog_.front();
      backlog_.pop_front();
      handler_(s);
    }
  }

  std::size_t node_index_;
  std::uint16_t port_;
  SocketType type_;
  StreamOptions options_;
  AcceptHandler handler_;
  AcceptGate gate_;
  std::deque<Socket*> backlog_;
  std::size_t accepted_count_ = 0;
  std::size_t refused_count_ = 0;
};

class ConnectionService {
 public:
  /// One service per testbed; `devices` are the per-node verbs devices.
  ConnectionService(simnet::Fabric& fabric, verbs::Device& device0,
                    verbs::Device& device1);

  ConnectionService(const ConnectionService&) = delete;
  ConnectionService& operator=(const ConnectionService&) = delete;

  /// Bind a listener at (node, port).  Throws if the port is taken.
  Listener* Listen(std::size_t node_index, std::uint16_t port,
                   SocketType type, StreamOptions options = StreamOptions{});

  /// Asynchronously connect from `node_index` to the peer node's `port`.
  /// The callback receives the connected socket, or nullptr on rejection.
  /// The socket object exists immediately (so the caller may keep the
  /// pointer) but refuses I/O until the handshake completes.
  Socket* Connect(std::size_t node_index, std::uint16_t port,
                  SocketType type, StreamOptions options,
                  std::function<void(Socket*)> on_complete);

  /// As above, but the client socket is built with pre-provisioned wiring.
  /// When the wiring carries a MuxStream the REQ advertises the stream id
  /// so the server's accept gate can attach the matching stream from its
  /// own shared-QP pool (the two MuxGroups must already be connected —
  /// that is the point: the queue pairs are established once, then every
  /// handshake rides them).
  Socket* Connect(std::size_t node_index, std::uint16_t port,
                  SocketType type, StreamOptions options,
                  SocketWiring wiring,
                  std::function<void(Socket*)> on_complete);

  std::size_t ActiveHandshakes() const { return pending_.size(); }

 private:
  struct Pending {
    std::uint64_t id;
    std::unique_ptr<Socket> socket;
    SocketType type;
    std::function<void(Socket*)> on_complete;
  };
  struct ServerPending {
    std::uint64_t id;
    std::unique_ptr<Socket> socket;
    Listener* listener;
  };

  /// Wire-level handshake message (what rdma_cm carries as MAD private
  /// data); ~64 bytes on the wire.
  struct HandshakeMessage {
    enum class Kind : std::uint8_t { kReq, kRep, kReject, kRtu };
    Kind kind = Kind::kReq;
    std::uint64_t id = 0;
    std::uint16_t port = 0;
    SocketType type = SocketType::kStream;
    /// REQ: client asks for shared-QP multiplexing under this stream id.
    /// Fits the private data — two bytes of flag + id in the real MAD.
    bool mux = false;
    std::uint32_t mux_stream = 0;
    Socket::RingCredentials ring;
  };
  static constexpr std::uint64_t kHandshakeWireBytes = 64;

  void Transmit(std::size_t from_node, const HandshakeMessage& msg);
  void OnMessage(std::size_t at_node, const HandshakeMessage& msg);
  void HandleReq(std::size_t at_node, const HandshakeMessage& msg);
  void HandleRepOrReject(const HandshakeMessage& msg);
  void HandleRtu(const HandshakeMessage& msg);

  verbs::Device& device(std::size_t node) {
    return node == 0 ? *device0_ : *device1_;
  }

  simnet::Fabric* fabric_;
  verbs::Device* device0_;
  verbs::Device* device1_;
  std::map<std::pair<std::size_t, std::uint16_t>,
           std::unique_ptr<Listener>> listeners_;
  std::map<std::uint64_t, Pending> pending_;
  std::map<std::uint64_t, ServerPending> server_pending_;
  std::vector<std::unique_ptr<Socket>> established_;
  std::uint64_t next_id_ = 1;
};

}  // namespace exs
