// Shared-QP stream multiplexing: many EXS streams over a bounded QP pool.
//
// The classic library dedicates one RC queue pair (plus its pre-posted
// credit pool) to every connection, so verbs state grows linearly with
// stream count.  A MuxGroup instead owns a small fixed pool of "slot"
// ControlChannels and carries any number of MuxStreams over them: each
// stream is pinned to slot (id % width), every message it sends is stamped
// with its stream id (control messages in the header's stream_id field,
// data WWIs in the kMuxHeaderBytes extended-header extension), and the
// group demultiplexes arrivals back to the owning stream.  Because an RC
// QP delivers in FIFO order, each stream's messages form an in-order
// subsequence of its slot's traffic — no reorder buffer is needed, and the
// per-stream mux_seq carried on data WWIs lets the receive side *audit*
// that continuity (the invariant checker's per-stream rule).
//
// Flow control is layered: the slot channel keeps the §II-B credit scheme
// for the shared QP, and each stream additionally bounds its own
// outstanding data WWIs (per_stream_credits) so one bulk stream cannot
// monopolise the shared send window.  When shared credits return, the
// group runs a deficit-round-robin dispatch round over the slot's parked
// streams (the ProgressEngine's DRR idiom): each visited stream gets
// drr_quantum bytes of deficit and is woken; during the round CanSend()
// additionally requires deficit, so a woken stream posts at most
// quantum-plus-one-chunk before the next stream runs.  Outside rounds the
// deficit gate is off — a stream woken by its own completion is throttled
// only by its window — which keeps the scheme deadlock-free: any credit
// return reaches every parked stream.
//
// Faults: MuxStream::Kill() is a *virtual* kill — the shared QP stays
// healthy (its other streams are undisturbed) while this stream behaves
// exactly like a dead transport: on_fatal fires, CanSend() is false, and
// the peer stream discovers the death one transport ack delay later, the
// same timing a real QP kill propagates with.  In-flight messages from
// before the kill still land (the transport is alive) and are dropped by
// the reconnect-epoch gate; that is safe because RC FIFO ordering lands
// them before any post-revive retransmission, and under recovery the
// retransmitted bytes are identical anyway.  Revive() (driven by
// Socket::ResumePair) bumps the epoch and resets the per-stream counters;
// the delivered-frontier resume machinery of docs/PROTOCOL.md §12 then
// replays the unacknowledged suffix as on a dedicated transport.
//
// See docs/PROTOCOL.md §13 for the wire framing and credit layering.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/metrics.hpp"
#include "exs/channel.hpp"

namespace exs {

class MuxStream;

struct MuxOptions {
  /// Slot channels (shared queue pairs) in the pool.  Streams pin to slot
  /// (stream_id % width).
  std::uint32_t width = 1;
  /// §II-B credit pool per slot queue pair (pre-posted receives shared by
  /// every stream on the slot).
  std::uint32_t qp_credits = 256;
  /// Data WWIs one stream may have outstanding on its slot — the
  /// per-stream window layered over the shared credits.
  std::uint32_t per_stream_credits = 8;
  /// Deficit granted to each parked stream per dispatch-round visit.  Any
  /// positive deficit admits one post of any size, so a stream posts at
  /// most quantum + one chunk per visit (standard DRR slack).
  std::uint64_t drr_quantum = 16 * 1024;
};

/// Counter-conservation surface for the invariant checker: at quiescence
/// every data WWI group A posted is accounted at its peer B as delivered,
/// epoch-stale, or orphaned — data_posted(A) == data_delivered(B) +
/// stale_data_drops(B) + orphan_drops(B).
struct MuxGroupStats {
  std::uint64_t streams_attached = 0;
  std::uint64_t streams_detached = 0;
  std::uint64_t data_posted = 0;
  std::uint64_t data_delivered = 0;
  /// Arrivals for an attached stream whose epoch trails (in flight across
  /// a virtual kill) or that is currently dead.
  std::uint64_t stale_data_drops = 0;
  std::uint64_t stale_control_drops = 0;
  /// Arrivals for a stream id with no attached stream (torn down).
  std::uint64_t orphan_drops = 0;
  /// Send completions whose stream detached before they returned.
  std::uint64_t orphan_completions = 0;
  std::uint64_t dispatch_rounds = 0;
  std::uint64_t dispatch_wakes = 0;
  std::uint64_t virtual_kills = 0;
  std::uint64_t revives = 0;
};

/// A pool of slot ControlChannels shared by many streams.  Build one per
/// endpoint, wire two with Connect (slot i to slot i), then attach streams
/// pairwise with matching ids.  The group does not own its streams — a
/// MuxStream is owned by the socket riding it and detaches itself on
/// destruction (guarded by a liveness token, so either side may die
/// first, matching the ControlSlotSource teardown idiom).
class MuxGroup {
 public:
  MuxGroup(verbs::Device& device, MuxOptions options);
  ~MuxGroup();

  MuxGroup(const MuxGroup&) = delete;
  MuxGroup& operator=(const MuxGroup&) = delete;

  /// Wire two groups on opposite nodes slot-for-slot.  Calling it again on
  /// a pair whose slot transports died reconnects them (the slots'
  /// ControlChannel::Connect reconnect path); attached streams must then
  /// be revived individually.
  static void Connect(MuxGroup& a, MuxGroup& b);

  /// Next unused stream id (both endpoints must attach the same id for a
  /// connection; the engine handshake carries it in the REQ).
  std::uint32_t AllocateStreamId() { return next_stream_id_; }

  /// Attach a stream.  The returned endpoint is owned by the caller
  /// (typically via SocketWiring::mux_stream) and detaches itself at
  /// destruction.  Ids must fit the 16-bit wire field.
  std::unique_ptr<MuxStream> AttachStream(std::uint32_t stream_id);

  const MuxOptions& options() const { return options_; }
  std::uint32_t width() const {
    return static_cast<std::uint32_t>(slots_.size());
  }
  MuxGroup* peer() { return peer_; }
  const MuxGroup* peer() const { return peer_; }
  MuxStream* FindStream(std::uint32_t stream_id);
  const MuxStream* FindStream(std::uint32_t stream_id) const;
  std::size_t AttachedStreams() const { return routes_.size(); }
  /// Attached stream ids, ascending (checker and harness iteration).
  std::vector<std::uint32_t> StreamIds() const;
  const MuxGroupStats& stats() const { return stats_; }
  verbs::Device& device() { return *device_; }
  /// Slot access for fault hooks (HoldIncoming) and credit-conservation
  /// checks; index < width().
  ControlChannel& slot(std::size_t i) { return *slots_[i]; }
  const ControlChannel& slot(std::size_t i) const { return *slots_[i]; }

 private:
  friend class MuxStream;

  /// Per-slot FIFO of posted data WWIs: RC completes sends in post order,
  /// so the front record always names the completing WR's stream.
  struct PostRecord {
    std::uint32_t stream = 0;
    std::uint64_t wr_id = 0;
    std::uint8_t epoch = 0;
  };

  std::size_t SlotIndex(std::uint32_t stream_id) const {
    return stream_id % slots_.size();
  }
  void WireSlot(std::size_t slot);
  void Detach(std::uint32_t stream_id);
  void OnSlotDataRaw(std::size_t slot, const verbs::WorkCompletion& wc);
  void OnSlotControl(const wire::ControlMessage& msg);
  void OnSlotDataSent(std::size_t slot, std::uint64_t wr_id);
  void OnSlotFatal(std::size_t slot, verbs::WcStatus status);
  /// DRR dispatch round over the slot's parked streams.
  void DispatchSlot(std::size_t slot);

  verbs::Device* device_;
  MuxOptions options_;
  MuxGroup* peer_ = nullptr;
  std::vector<std::unique_ptr<ControlChannel>> slots_;
  std::vector<std::deque<PostRecord>> slot_fifo_;
  /// Attach-order stream ids per slot (the dispatch rotation).  Detached
  /// ids are skipped lazily and compacted once they outnumber live ones.
  std::vector<std::vector<std::uint32_t>> slot_streams_;
  std::vector<std::size_t> slot_dead_ids_;
  std::vector<std::size_t> slot_cursor_;
  std::vector<bool> slot_in_round_;  ///< deficit gate + re-entrancy guard
  std::unordered_map<std::uint32_t, MuxStream*> routes_;
  std::uint32_t next_stream_id_ = 0;
  MuxGroupStats stats_;
  /// Expires at group destruction; guards stream detach and the scheduled
  /// peer half of a virtual kill.
  std::shared_ptr<void> liveness_ = std::make_shared<char>(0);
};

/// One stream of a MuxGroup: the ChannelEndpoint a muxed socket's protocol
/// halves drive.  Owned by the socket, routed by the group.
class MuxStream : public ChannelEndpoint {
 public:
  ~MuxStream() override;

  MuxStream(const MuxStream&) = delete;
  MuxStream& operator=(const MuxStream&) = delete;

  // ---- ChannelEndpoint ---------------------------------------------------
  void set_callbacks(Callbacks callbacks) override {
    callbacks_ = std::move(callbacks);
  }
  /// Sendable when the group lives, the stream is not (virtually) dead,
  /// the slot has a shared credit, the per-stream window has room, and —
  /// during a dispatch round — this stream holds deficit.  A false return
  /// on a live stream parks it: the next dispatch round will wake it, and
  /// the park-to-next-send wait feeds the mux.hol_wait histogram.
  bool CanSend() const override;
  bool dead() const override { return dead_; }
  void SendControl(wire::ControlMessage msg) override;
  void PostDataWwi(std::uint64_t wr_id, const void* src, std::uint32_t lkey,
                   std::uint64_t len, std::uint64_t remote_addr,
                   std::uint32_t rkey, bool indirect,
                   bool has_stripe_seq = false, std::uint64_t stripe_seq = 0,
                   std::uint64_t trace_ctx = 0) override;
  void PostDataWwiV(std::uint64_t wr_id, const SendSlice* slices,
                    std::uint32_t n, std::uint64_t len,
                    std::uint64_t remote_addr, std::uint32_t rkey,
                    bool indirect, bool has_stripe_seq = false,
                    std::uint64_t stripe_seq = 0,
                    std::uint64_t trace_ctx = 0) override;
  /// Rendezvous sockets keep dedicated channels; a muxed READ would bypass
  /// the credit layering entirely.
  void PostRead(std::uint64_t wr_id, void* dst, std::uint32_t lkey,
                std::uint64_t len, std::uint64_t remote_addr,
                std::uint32_t rkey) override;
  verbs::Device& device() override;

  // ---- Mux-tier controls -------------------------------------------------

  /// Virtual kill: this stream dies (on_fatal fires synchronously, as a
  /// local QP kill's would) while the shared slot QP — and every other
  /// stream on it — stays healthy.  The peer stream is marked dead one
  /// transport ack delay later with kRetryExceededError, mirroring how a
  /// real peer discovers a QP death.  Returns false when already dead.
  bool Kill();

  /// Undo a virtual kill (Socket::ResumePair): bump the reconnect epoch —
  /// in-flight pre-kill messages are dropped by the epoch gate — and reset
  /// the per-stream window and sequence counters.  The slot transport must
  /// be alive (after a real slot death, reconnect the groups first).
  void Revive();

  /// Attach observability: the park-to-send head-of-line wait histogram
  /// ("mux.hol_wait") and the park counter ("mux.parks").  Either null.
  void SetInstruments(metrics::Histogram* hol_wait, metrics::Counter* parks) {
    hol_wait_ = hol_wait;
    parks_ = parks;
  }

  // Introspection (tests, invariant checker).
  std::uint32_t stream_id() const { return id_; }
  std::uint8_t epoch() const { return epoch_; }
  std::uint32_t outstanding() const { return outstanding_; }
  std::uint64_t tx_seq() const { return tx_seq_; }
  std::uint64_t rx_expect() const { return rx_expect_; }
  bool parked() const { return parked_; }
  bool GroupAlive() const { return !group_alive_.expired(); }
  MuxGroup& group() { return *group_; }
  ControlChannel& slot_channel() { return *slot_; }

 private:
  friend class MuxGroup;
  MuxStream(MuxGroup& group, std::uint32_t id);

  void MarkDead(verbs::WcStatus status);
  void NoteDataSent(std::uint64_t wr_id);
  void FireCreditAvailable();
  /// CanSend() returned false on a live stream: start (or continue) the
  /// park.  Mutable bookkeeping — blocking is observed at the const gate.
  void NotePark() const;
  /// A send went through: close the park window into the HoL histogram.
  void NoteUnblocked();

  MuxGroup* group_;
  std::weak_ptr<void> group_alive_;
  ControlChannel* slot_;
  std::size_t slot_index_;
  std::uint32_t id_;
  Callbacks callbacks_;
  bool dead_ = false;
  bool fatal_notified_ = false;
  /// Reconnect epoch stamped on every message; bumped by Revive().  Eight
  /// bits wrap after 256 revives — safe because pre-kill messages are in
  /// flight for one round trip, vastly shorter than 256 kill/resume
  /// cycles of the same stream.
  std::uint8_t epoch_ = 0;
  std::uint32_t outstanding_ = 0;  ///< data WWIs posted, not yet completed
  std::uint64_t tx_seq_ = 0;       ///< next per-stream delivery sequence
  std::uint64_t rx_expect_ = 0;    ///< next sequence the peer must show
  std::uint64_t deficit_ = 0;      ///< DRR allowance during dispatch rounds
  mutable bool parked_ = false;
  mutable SimTime park_since_ = 0;
  metrics::Histogram* hol_wait_ = nullptr;
  metrics::Counter* parks_ = nullptr;
};

}  // namespace exs
