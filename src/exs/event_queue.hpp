// The per-socket completion event queue.
//
// Almost every EXS call is asynchronous: the request is queued and control
// returns immediately; the completion arrives here (§II-A).  Two consumer
// styles are supported, mirroring the library the paper describes:
//
//   * handler mode — the application installs a callback; each event costs
//     the profile's per-event CPU time on the node, which is how
//     application reaction time (e.g. reposting a receive) enters the
//     timing model;
//   * polling mode — tests and simple examples poll Poll() directly with
//     no modelled cost.
#pragma once

#include <deque>
#include <functional>

#include "common/units.hpp"
#include "simnet/cpu.hpp"
#include "exs/types.hpp"

namespace exs {

class EventQueue {
 public:
  EventQueue(simnet::Cpu& cpu, SimDuration per_event_cpu)
      : cpu_(&cpu), per_event_cpu_(per_event_cpu) {}

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Install a handler; queued events are flushed to it.  Events delivered
  /// through the handler are charged to the node CPU.
  void SetHandler(std::function<void(const Event&)> handler) {
    handler_ = std::move(handler);
    while (handler_ && !queue_.empty()) {
      Event ev = queue_.front();
      queue_.pop_front();
      Dispatch(ev);
    }
  }

  bool Poll(Event* out) {
    if (queue_.empty()) return false;
    *out = queue_.front();
    queue_.pop_front();
    return true;
  }

  std::size_t Depth() const { return queue_.size(); }
  std::uint64_t TotalEvents() const { return total_; }

  /// Internal: called by the socket machinery when a request completes.
  void Push(const Event& ev) {
    ++total_;
    if (handler_) {
      Dispatch(ev);
    } else {
      queue_.push_back(ev);
    }
  }

 private:
  void Dispatch(const Event& ev) {
    cpu_->Submit(per_event_cpu_, [this, ev] { handler_(ev); });
  }

  simnet::Cpu* cpu_;
  SimDuration per_event_cpu_;
  std::function<void(const Event&)> handler_;
  std::deque<Event> queue_;
  std::uint64_t total_ = 0;
};

}  // namespace exs
