// The per-socket completion event queue.
//
// Almost every EXS call is asynchronous: the request is queued and control
// returns immediately; the completion arrives here (§II-A).  Two consumer
// styles are supported, mirroring the library the paper describes:
//
//   * handler mode — the application installs a callback; each event costs
//     the profile's per-event CPU time on the node, which is how
//     application reaction time (e.g. reposting a receive) enters the
//     timing model;
//   * polling mode — tests and simple examples poll Poll() directly with
//     no modelled cost.
//
// A third consumer sits on top of polling mode: the engine's epoll-like
// readiness API.  A readiness watcher fires exactly on the empty→non-empty
// edge (never while events remain queued), which is what lets the progress
// engine keep one ready-list instead of scanning every socket per tick.
#pragma once

#include <deque>
#include <functional>

#include "common/units.hpp"
#include "simnet/cpu.hpp"
#include "exs/types.hpp"

namespace exs {

class EventQueue {
 public:
  EventQueue(simnet::Cpu& cpu, SimDuration per_event_cpu)
      : cpu_(&cpu), per_event_cpu_(per_event_cpu) {}

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Install a handler; queued events are flushed to it.  Events delivered
  /// through the handler are charged to the node CPU.
  void SetHandler(std::function<void(const Event&)> handler) {
    handler_ = std::move(handler);
    while (handler_ && !queue_.empty()) {
      Event ev = queue_.front();
      queue_.pop_front();
      Dispatch(ev);
    }
  }

  bool Poll(Event* out) {
    if (queue_.empty()) return false;
    *out = queue_.front();
    queue_.pop_front();
    return true;
  }

  /// Edge-triggered readiness for polling consumers: fires once when the
  /// queue goes empty→non-empty, then re-arms only after the consumer has
  /// drained it (Poll() returning false).  Installing a watcher on a
  /// non-empty queue fires immediately.  Mutually exclusive with handler
  /// mode — a handler never leaves events queued, so there is no edge.
  void SetReadinessWatcher(std::function<void()> watcher) {
    watcher_ = std::move(watcher);
    watcher_armed_ = true;
    if (watcher_ && !queue_.empty() && !closed_) FireWatcher();
  }

  /// Discard pending events and reject future pushes.  A closed queue
  /// never signals readiness again; Poll() returns false forever.  Used
  /// when a socket is torn down while events are still queued — the
  /// progress engine must not dispatch into a dead socket.
  void Close() {
    closed_ = true;
    dropped_on_close_ += queue_.size();
    queue_.clear();
    watcher_ = nullptr;
  }

  bool Closed() const { return closed_; }
  std::size_t Depth() const { return queue_.size(); }
  std::uint64_t TotalEvents() const { return total_; }
  std::uint64_t DroppedOnClose() const { return dropped_on_close_; }

  /// Internal: called by the socket machinery when a request completes.
  void Push(const Event& ev) {
    if (closed_) {
      ++dropped_on_close_;
      return;
    }
    ++total_;
    if (handler_) {
      Dispatch(ev);
      return;
    }
    bool was_empty = queue_.empty();
    queue_.push_back(ev);
    if (was_empty && watcher_ && watcher_armed_) FireWatcher();
  }

  /// Internal: the progress engine calls this after draining the queue so
  /// the next Push fires the watcher again.
  void RearmWatcher() {
    if (!closed_) watcher_armed_ = true;
  }

 private:
  void Dispatch(const Event& ev) {
    cpu_->Submit(per_event_cpu_, [this, ev] {
      if (!closed_) handler_(ev);
    });
  }

  void FireWatcher() {
    watcher_armed_ = false;  // one edge per drain cycle
    watcher_();
  }

  simnet::Cpu* cpu_;
  SimDuration per_event_cpu_;
  std::function<void(const Event&)> handler_;
  std::function<void()> watcher_;
  bool watcher_armed_ = true;
  bool closed_ = false;
  std::deque<Event> queue_;
  std::uint64_t total_ = 0;
  std::uint64_t dropped_on_close_ = 0;
};

}  // namespace exs
