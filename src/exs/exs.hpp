// Umbrella header: the public API of the EXS stream-over-RDMA library.
#pragma once

#include "exs/event_queue.hpp"   // IWYU pragma: export
#include "exs/simulation.hpp"    // IWYU pragma: export
#include "exs/socket.hpp"        // IWYU pragma: export
#include "exs/types.hpp"         // IWYU pragma: export
#include "simnet/profile.hpp"    // IWYU pragma: export
