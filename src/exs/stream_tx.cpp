// Sender half of the dynamic stream protocol — the algorithm of Fig. 2,
// plus the small-transfer coalescing stage (StreamOptions::coalesce).
#include "exs/stream.hpp"

#include <cstring>

#include "common/check.hpp"
#include "common/logging.hpp"

namespace exs {

void StreamTx::SetRemoteRing(std::uint64_t addr, std::uint32_t rkey,
                             std::uint64_t capacity) {
  remote_ring_addr_ = addr;
  remote_ring_rkey_ = rkey;
  remote_ring_ = RingCursor(capacity);
  // Re-attach the occupancy probe: assignment above replaced the cursor.
  if (ctx_.metrics != nullptr) {
    remote_ring_.SetOccupancyProbe(ctx_.metrics->tx_remote_ring_used,
                                   ctx_.scheduler);
  }
}

void StreamTx::SetDataRails(std::vector<ChannelEndpoint*> rails) {
  EXS_CHECK_MSG(!rails.empty() && rails[0] == ctx_.channel,
                "rail 0 must be the control channel");
  EXS_CHECK_MSG(inflight_.empty() && stripe_seq_ == 0,
                "rails must be attached before any data moves");
  rails_ = std::move(rails);
  rail_outstanding_.assign(rails_.size(), 0);
  rail_fifo_.assign(rails_.size(), {});
}

std::size_t StreamTx::PickRail() const {
  if (rails_.empty()) return ctx_.channel->CanSend() ? 0 : kNoRail;
  if (ctx_.options.rail_scheduler == RailScheduler::kRoundRobin) {
    // First sendable rail at or after the cursor, wrapping once.
    for (std::size_t i = 0; i < rails_.size(); ++i) {
      std::size_t rail = (next_rail_ + i) % rails_.size();
      if (rails_[rail]->CanSend()) return rail;
    }
    return kNoRail;
  }
  // Shortest-outstanding-bytes: adapts to rail asymmetry (a rail stuck
  // behind a long chunk or short on credits accumulates bytes and is
  // avoided); ties break to the lowest index for determinism.
  std::size_t best = kNoRail;
  for (std::size_t rail = 0; rail < rails_.size(); ++rail) {
    if (!rails_[rail]->CanSend()) continue;
    if (best == kNoRail || rail_outstanding_[rail] < rail_outstanding_[best]) {
      best = rail;
    }
  }
  return best;
}

void StreamTx::NoteStripePosted(std::size_t rail, std::uint64_t len) {
  if (!Striping()) return;
  ++stripe_seq_;
  rail_outstanding_[rail] += len;
  rail_fifo_[rail].push_back(len);
  next_rail_ = rail + 1 == rails_.size() ? 0 : rail + 1;
}

void StreamTx::Submit(std::uint64_t id, const void* buf, std::uint64_t len,
                      std::uint32_t lkey) {
  EXS_CHECK_MSG(!shutdown_requested_, "send after Close()");

  if (len == 0) {
    // Zero-length sends complete immediately; a byte stream carries no
    // message boundaries, so there is nothing to transfer.  The trace still
    // records the submission — an invisible code path would be beyond the
    // reach of the golden-trace and invariant suites.
    Trace(TraceEventType::kZeroLengthSend);
    ctx_.metrics->sends_completed->Increment();
    ctx_.events->Push(Event{EventType::kSendComplete, id, 0, false});
    return;
  }

  if (ShouldStage(len)) {
    StageCoalesced(id, buf, len, lkey);
    Pump();  // a max-bytes flush may just have queued an aggregate
    return;
  }
  if (!staged_.empty()) {
    // Staged bytes precede this send in the stream, so they must reach the
    // chunk queue first.
    FlushCoalesced(CoalesceFlushReason::kOrdering);
  }

  auto rec = std::make_shared<PendingSend>();
  rec->id = id;
  rec->base = static_cast<const std::uint8_t*>(buf);
  rec->len = len;
  rec->lkey = lkey;
  rec->submit_time = ctx_.scheduler->Now();
  rec->flush_time = rec->submit_time;  // never staged
  if (RecoveryOn()) {
    // Snapshot the payload: the application's buffer is released at send
    // completion, but retransmission after a kill may need the bytes long
    // after that (the completion fallacy — completion is not delivery).
    rec->owned.resize(len);
    if (ctx_.carry_payload) std::memcpy(rec->owned.data(), buf, len);
    rec->owned_mr =
        ctx_.channel->device().RegisterMemory(rec->owned.data(), len);
    rec->base = rec->owned.data();
    rec->lkey = rec->owned_mr->lkey();
  }
  inflight_.emplace(id, rec);
  chunk_queue_.push_back(rec);
  NoteQueued(rec);
  Pump();
}

void StreamTx::SubmitV(std::uint64_t id, const SendSlice* slices,
                       std::uint32_t n,
                       std::vector<verbs::MemoryRegionPtr> pins) {
  EXS_CHECK_MSG(!shutdown_requested_, "send after Close()");
  EXS_CHECK_MSG(n >= 1 && n <= verbs::kMaxSge,
                "Sendv arity must be 1.." << verbs::kMaxSge << ", got " << n);
  ctx_.metrics->sendv_calls->Increment();

  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < n; ++i) total += slices[i].length;
  if (total == 0) {
    for (const auto& mr : pins) ctx_.channel->device().UnpinCached(mr);
    Trace(TraceEventType::kZeroLengthSend);
    ctx_.metrics->sends_completed->Increment();
    ctx_.events->Push(Event{EventType::kSendComplete, id, 0, false});
    return;
  }
  if (!staged_.empty()) {
    // Staged bytes precede this send in the stream.
    FlushCoalesced(CoalesceFlushReason::kOrdering);
  }

  auto rec = std::make_shared<PendingSend>();
  rec->id = id;
  rec->len = total;
  rec->submit_time = ctx_.scheduler->Now();
  rec->flush_time = rec->submit_time;
  if (RecoveryOn()) {
    // The retransmission log needs an owned snapshot anyway, so recovery
    // mode gathers the slices host-side into a contiguous record — the
    // vectored call keeps its semantics, not its zero-copy.
    rec->owned.resize(total);
    std::uint64_t off = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (ctx_.carry_payload && slices[i].length > 0) {
        std::memcpy(rec->owned.data() + off, slices[i].addr,
                    slices[i].length);
      }
      off += slices[i].length;
    }
    rec->owned_mr =
        ctx_.channel->device().RegisterMemory(rec->owned.data(), total);
    rec->base = rec->owned.data();
    rec->lkey = rec->owned_mr->lkey();
  } else {
    rec->slices.assign(slices, slices + n);
  }
  rec->pinned = std::move(pins);
  inflight_.emplace(id, rec);
  chunk_queue_.push_back(rec);
  NoteQueued(rec);
  Pump();
}

void StreamTx::NoteQueued(const std::shared_ptr<PendingSend>& rec) {
  if (!RecoveryOn()) return;
  rec->stream_off = next_stream_off_;
  next_stream_off_ += rec->len;
  sent_log_.push_back(rec);
}

void StreamTx::NoteDelivered(std::uint64_t delivered) {
  if (!RecoveryOn() || delivered <= peer_delivered_) return;
  peer_delivered_ = delivered;
  // Prune records the receiver has fully taken into custody — but only
  // once their completion event has gone out: a delivered record whose
  // local WR completion is still in flight must survive a kill so the
  // resume path can raise the event it will never receive.
  while (!sent_log_.empty()) {
    const PendingSend& front = *sent_log_.front();
    if (front.stream_off + front.len > peer_delivered_) break;
    if (!front.completion_reported) break;
    sent_log_.pop_front();
  }
}

bool StreamTx::ShouldStage(std::uint64_t len) const {
  const auto& knobs = ctx_.options.coalesce;
  if (!knobs.enabled || len > knobs.max_bytes) return false;
  // Never hold back a send that could go straight into advertised memory:
  // coalescing targets the small-indirect regime and must not add latency
  // to the direct path.
  if (!advert_queue_.empty()) return false;
  return true;
}

void StreamTx::StageCoalesced(std::uint64_t id, const void* buf,
                              std::uint64_t len, std::uint32_t lkey) {
  const auto& knobs = ctx_.options.coalesce;
  if (staged_bytes_ + len > knobs.max_bytes) {
    // Would overflow the staging buffer: flush what is held, then stage
    // this send into the fresh buffer (the overflow split).
    FlushCoalesced(CoalesceFlushReason::kMaxBytes);
  }
  if (!AggregationOn()) {
    // Classic staging: copy the member into the owned buffer.  Under sendv
    // aggregation the member is held by reference instead and the flush
    // gathers it with an SGE — no buffer, no registration, no memcpy.
    if (staging_mem_.empty()) {
      // Each flush hands the buffer's ownership to its aggregate (the bytes
      // must stay put until the merged WWI completes), so staging restarts
      // with a fresh registered region.
      staging_mem_.resize(knobs.max_bytes);
      staging_mr_ = ctx_.channel->device().RegisterMemory(
          staging_mem_.data(), staging_mem_.size());
    }
    ctx_.metrics->coalesce_staging_copies->Increment();
    if (ctx_.carry_payload) {
      std::memcpy(staging_mem_.data() + staged_bytes_, buf, len);
    }
  }
  if (staged_.empty()) staged_first_time_ = ctx_.scheduler->Now();
  staged_.push_back(
      StagedSend{id, len, static_cast<const std::uint8_t*>(buf), lkey});
  staged_bytes_ += len;
  ctx_.metrics->coalesced_sends->Increment();
  ctx_.metrics->coalesced_bytes->Add(len);
  Trace(TraceEventType::kSendStaged, len);
  if (staged_.size() == 1) {
    flush_timer_ = ctx_.scheduler->ScheduleAfter(knobs.max_delay, [this] {
      if (staged_.empty()) return;  // a flush beat the timer
      FlushCoalesced(CoalesceFlushReason::kTimeout);
      Pump();
    });
  }
  if (staged_bytes_ == knobs.max_bytes) {
    // Exactly full: nothing further can merge, flush now (the caller's
    // Pump() posts it).
    FlushCoalesced(CoalesceFlushReason::kMaxBytes);
  }
}

void StreamTx::FlushCoalesced(CoalesceFlushReason reason) {
  if (staged_.empty()) return;
  flush_timer_.Cancel();
  auto rec = std::make_shared<PendingSend>();
  rec->id = staged_.front().id;  // WWI wr_ids resolve to the aggregate
  if (AggregationOn()) {
    // Zero-copy flush: the aggregate's payload stays in the members'
    // buffers, gathered on the wire as an SGE list.
    rec->slices.reserve(staged_.size());
    for (const StagedSend& m : staged_) {
      rec->slices.push_back(
          SendSlice{m.base, static_cast<std::uint32_t>(m.len), m.lkey});
    }
    rec->len = staged_bytes_;
    ctx_.metrics->coalesce_sg_flushes->Increment();
  } else {
    rec->owned = std::move(staging_mem_);
    rec->owned_mr = std::move(staging_mr_);
    rec->base = rec->owned.data();
    rec->len = staged_bytes_;
    rec->lkey = rec->owned_mr->lkey();
  }
  rec->members = std::move(staged_);
  // The aggregate's staging span starts when its oldest member entered
  // the buffer and ends now.
  rec->submit_time = staged_first_time_;
  rec->flush_time = ctx_.scheduler->Now();
  rec->coalesced = true;
  staging_mem_.clear();
  staging_mr_.reset();
  staged_.clear();
  staged_bytes_ = 0;
  Trace(TraceEventType::kCoalesceFlushed, rec->len, rec->members.size(),
        static_cast<std::uint64_t>(reason));
  switch (reason) {
    case CoalesceFlushReason::kMaxBytes:
      ctx_.metrics->coalesce_flush_maxbytes->Increment();
      break;
    case CoalesceFlushReason::kTimeout:
      ctx_.metrics->coalesce_flush_timeout->Increment();
      break;
    case CoalesceFlushReason::kAdvert:
      ctx_.metrics->coalesce_flush_advert->Increment();
      break;
    case CoalesceFlushReason::kPhaseChange:
      ctx_.metrics->coalesce_flush_phase->Increment();
      break;
    case CoalesceFlushReason::kClose:
      ctx_.metrics->coalesce_flush_close->Increment();
      break;
    case CoalesceFlushReason::kOrdering:
      ctx_.metrics->coalesce_flush_ordering->Increment();
      break;
  }
  inflight_.emplace(rec->id, rec);
  NoteQueued(rec);  // the aggregate already owns its payload
  chunk_queue_.push_back(std::move(rec));
}

void StreamTx::OnAdvert(const wire::ControlMessage& msg) {
  NoteDelivered(msg.delivered);
  if (msg.ack_piggyback != 0) {
    // The ADVERT doubles as an ACK (Coalesce::piggyback_acks): release the
    // freed buffer space first, exactly as the standalone ACK it replaces
    // would have been processed first (it would have been sent earlier).
    remote_ring_.ReleaseFree(msg.freed);
    Trace(TraceEventType::kAckReceived, msg.freed);
  }
  if (!staged_.empty()) {
    // Direct service may resume: merged bytes can ride the new ADVERT
    // instead of waiting out the delay budget.
    FlushCoalesced(CoalesceFlushReason::kAdvert);
  }
  Advert advert;
  advert.addr = msg.addr;
  advert.rkey = msg.rkey;
  advert.len = msg.len;
  advert.seq = msg.seq;
  advert.phase = msg.phase();
  advert.waitall = msg.waitall != 0;
  EXS_CHECK_MSG(PhaseIsDirect(advert.phase),
                "Lemma 1: every ADVERT carries a direct phase number");
  advert_queue_.push_back(advert);
  ctx_.metrics->adverts_received->Increment();
  Trace(TraceEventType::kAdvertReceived, advert.len, advert.seq,
        advert.phase);
  Pump();
}

void StreamTx::OnAck(std::uint64_t freed, std::uint64_t delivered) {
  NoteDelivered(delivered);
  remote_ring_.ReleaseFree(freed);
  Trace(TraceEventType::kAckReceived, freed);
  Pump();
}

void StreamTx::RequestShutdown() {
  shutdown_requested_ = true;
  if (!staged_.empty()) {
    // The SHUTDOWN must trail every staged byte on the wire.
    FlushCoalesced(CoalesceFlushReason::kClose);
  }
  Pump();
}

void StreamTx::AdvancePhaseTo(std::uint64_t phase) {
  if (!staged_.empty()) {
    // A phase switch with bytes still staged: flush so the merged WWI
    // joins this burst rather than waiting out the delay budget.  The
    // flush only appends behind the queued send driving the switch, so
    // byte order is preserved.
    FlushCoalesced(CoalesceFlushReason::kPhaseChange);
  }
  const SimTime now = ctx_.scheduler->Now();
  const SimDuration dwell = now - phase_start_;
  if (PhaseIsDirect(phase_)) {
    ctx_.metrics->tx_phase_dwell_direct->Record(
        static_cast<std::uint64_t>(dwell));
  } else {
    ctx_.metrics->tx_phase_dwell_indirect->Record(
        static_cast<std::uint64_t>(dwell));
  }
  phase_ = phase;
  phase_start_ = now;
  ctx_.metrics->tx_phase->Set(static_cast<double>(phase_));
  Trace(TraceEventType::kSenderPhaseChanged);
}

void StreamTx::NoteWwisInFlight(std::int64_t delta) {
  wwis_in_flight_ = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(wwis_in_flight_) + delta);
  ctx_.metrics->tx_inflight_wwis->Record(
      ctx_.scheduler->Now(), static_cast<double>(wwis_in_flight_));
}

void StreamTx::Pump() {
  PumpChunks();
  if (!ctx_.options.batching.doorbell) return;
  // Hold the doorbell across every pump pass of this simulated instant: a
  // burst of Submits (or a window refill) lands as several pump passes at
  // one timestamp, and flushing per pass would ring a doorbell per chunk.
  // Instead a zero-delay flush event — FIFO-ordered after everything else
  // queued at this instant — rings one doorbell per rail for the lot.  A
  // batch that reaches max_wrs still posts inline (EnqueueOrPost), so the
  // deferred ring only ever covers the partial tail.  No simulated time
  // passes with the doorbell held, so the posts carry the same timestamp
  // eager flushing would give them.
  if (doorbell_flush_.Pending()) return;
  bool pending = false;
  for (std::size_t rail = 0; rail < RailCount() && !pending; ++rail) {
    pending = Rail(rail)->HasPendingPostedWrs();
  }
  if (!pending) return;
  doorbell_flush_ = ctx_.scheduler->ScheduleAfter(0, [this] {
    for (std::size_t rail = 0; rail < RailCount(); ++rail) {
      Rail(rail)->FlushPostedWrs();
    }
  });
}

void StreamTx::PumpChunks() {
  while (!chunk_queue_.empty()) {
    PendingSend& s = *chunk_queue_.front();
    EXS_CHECK(s.sent < s.len);

    if (!advert_queue_.empty()) {
      Advert& advert = advert_queue_.front();
      if (PhaseIsIndirect(phase_) &&
          !ctx_.options.sabotage.accept_stale_adverts &&
          (advert.phase < phase_ || advert.seq < seq_)) {
        // Stale ADVERT (Fig. 2 lines 3-7).  If it carries a *higher* phase
        // its whole sequence is based on estimates we have outrun; jump our
        // phase past it so the rest of that burst is discarded too (the
        // Fig. 8 rule).
        Trace(TraceEventType::kAdvertDiscarded, advert.len, advert.seq,
              advert.phase);
        if (phase_ < advert.phase) {
          AdvancePhaseTo(NextPhase(advert.phase));
        }
        advert_queue_.pop_front();
        ctx_.metrics->adverts_discarded->Increment();
        continue;
      }
      std::size_t rail = PickRail();
      if (rail == kNoRail) return;  // resumed by credit return on any rail
      if (advert.filled == 0) {
        // First chunk into this ADVERT: record the match with the sender
        // state *before* any phase advance (the validators rely on it).
        Trace(TraceEventType::kAdvertAccepted, advert.len, advert.seq,
              advert.phase);
      }
      if (PhaseIsIndirect(phase_)) {
        // Accepting an ADVERT ends the indirect phase (Fig. 2 lines 9-11).
        // The receiver resynchronised before sending it, so its sequence
        // number is exact (Theorem 1).  The sabotage hook disables the
        // check so the trace records the stale acceptance for the
        // invariant checker to catch.
        if (!ctx_.options.sabotage.accept_stale_adverts) {
          EXS_CHECK_MSG(advert.seq == seq_,
                        "accepted ADVERT must carry the exact next sequence ("
                            << advert.seq << " vs " << seq_ << ")");
        }
        AdvancePhaseTo(advert.phase);
      }
      std::uint64_t len =
          NextChunkLen(s.len - s.sent, advert.len - advert.filled, MaxChunk());
      len = ClipChunkToSges(s, len);
      PostDirect(s, advert, len, rail);
      seq_ += len;
      s.sent += len;
      advert.filled += len;
      // A non-WAITALL receive completes on its first chunk, so its ADVERT
      // is consumed even when partially filled; a WAITALL ADVERT stays at
      // the head until all of it has been transferred (§II-C).
      if (!advert.waitall || advert.filled == advert.len) {
        advert_queue_.pop_front();
      }
    } else if (ctx_.options.mode != ProtocolMode::kDirectOnly &&
               remote_ring_.free() > 0) {
      std::size_t rail = PickRail();
      if (rail == kNoRail) return;
      std::uint64_t len = NextChunkLen(
          s.len - s.sent, remote_ring_.ContiguousWritable(), MaxChunk());
      len = ClipChunkToSges(s, len);
      if (PhaseIsDirect(phase_)) {
        // First indirect transfer of a burst (Fig. 2 lines 18-20).
        AdvancePhaseTo(NextPhase(phase_));
      }
      PostIndirect(s, len, rail);
      seq_ += len;
      s.sent += len;
    } else {
      return;  // wait for an ADVERT or an ACK freeing buffer space
    }

    if (s.sent == s.len) {
      s.fully_chunked = true;
      auto rec = chunk_queue_.front();
      chunk_queue_.pop_front();
      if (rec->wwis_outstanding == 0) {
        // All chunks already completed locally (possible with inline-fast
        // paths); report completion now.
        CompleteSend(std::move(rec));
      }
    }
  }

  // Orderly close: the SHUTDOWN goes out only once every queued send has
  // been fully chunked (staged bytes flush in RequestShutdown), so it
  // trails all stream data on the wire.  Under striping the wire-order
  // argument breaks down — the SHUTDOWN rides rail 0 and could overtake
  // data still flying on other rails — so it additionally waits for every
  // data WWI to complete locally (a local completion proves delivery, and
  // a SHUTDOWN sent afterwards cannot arrive before a chunk already
  // delivered).
  if (shutdown_requested_ && !shutdown_sent_ && staged_.empty() &&
      (!Striping() || wwis_in_flight_ == 0) && ctx_.channel->CanSend()) {
    wire::ControlMessage msg;
    msg.type = static_cast<std::uint8_t>(wire::ControlType::kShutdown);
    ctx_.channel->SendControl(msg);
    shutdown_sent_ = true;
  }
}

void StreamTx::PostDirect(PendingSend& s, Advert& advert, std::uint64_t len,
                          std::size_t rail) {
  // Striped posts log (stripe_seq, rail) in the trace's spare fields so
  // the invariant checker can audit reassembly; single-rail posts keep the
  // classic zeros and an unchanged golden fingerprint.
  Trace(TraceEventType::kDirectPosted, len, Striping() ? stripe_seq_ : 0,
        Striping() ? rail : 0);
  NoteTransfer(/*indirect=*/false);
  ctx_.metrics->direct_transfers->Increment();
  ctx_.metrics->direct_bytes->Add(len);
  ++s.wwis_outstanding;
  NoteWwisInFlight(+1);
  std::uint64_t trace_ctx = 0;
  if (spans_ != nullptr) {
    trace_ctx = spans_->BeginChunk(
        span_endpoint_, s.submit_time, s.flush_time, ctx_.scheduler->Now(),
        len, /*indirect=*/false, s.coalesced,
        static_cast<std::uint32_t>(rail));
    if (span_tx_fifo_.size() <= rail) span_tx_fifo_.resize(rail + 1);
    span_tx_fifo_[rail].push_back(trace_ctx);
  }
  PostWwiChunk(s, len, advert.addr + advert.filled, advert.rkey,
               /*indirect=*/false, rail, trace_ctx);
  NoteStripePosted(rail, len);
}

void StreamTx::PostIndirect(PendingSend& s, std::uint64_t len,
                            std::size_t rail) {
  Trace(TraceEventType::kIndirectPosted, len, Striping() ? stripe_seq_ : 0,
        Striping() ? rail : 0);
  NoteTransfer(/*indirect=*/true);
  ctx_.metrics->indirect_transfers->Increment();
  ctx_.metrics->indirect_bytes->Add(len);
  ++s.wwis_outstanding;
  NoteWwisInFlight(+1);
  std::uint64_t offset = remote_ring_.write_offset();
  remote_ring_.CommitWrite(len);
  std::uint64_t trace_ctx = 0;
  if (spans_ != nullptr) {
    trace_ctx = spans_->BeginChunk(
        span_endpoint_, s.submit_time, s.flush_time, ctx_.scheduler->Now(),
        len, /*indirect=*/true, s.coalesced,
        static_cast<std::uint32_t>(rail));
    if (span_tx_fifo_.size() <= rail) span_tx_fifo_.resize(rail + 1);
    span_tx_fifo_[rail].push_back(trace_ctx);
  }
  PostWwiChunk(s, len, remote_ring_addr_ + offset, remote_ring_rkey_,
               /*indirect=*/true, rail, trace_ctx);
  NoteStripePosted(rail, len);
}

void StreamTx::PostWwiChunk(PendingSend& s, std::uint64_t len,
                            std::uint64_t remote_addr, std::uint32_t rkey,
                            bool indirect, std::size_t rail,
                            std::uint64_t trace_ctx) {
  if (s.slices.empty()) {
    Rail(rail)->PostDataWwi(s.id, s.base + s.sent, s.lkey, len, remote_addr,
                            rkey, indirect, Striping(), stripe_seq_,
                            trace_ctx);
    return;
  }
  SendSlice window[verbs::kMaxSge];
  std::uint32_t n = BuildSliceWindow(s, s.sent, len, window);
  Rail(rail)->PostDataWwiV(s.id, window, n, len, remote_addr, rkey, indirect,
                           Striping(), stripe_seq_, trace_ctx);
}

std::uint64_t StreamTx::ClipChunkToSges(const PendingSend& s,
                                        std::uint64_t len) const {
  if (s.slices.empty() || len == 0) return len;
  // Walk the slice list from the chunk's start offset, accumulating bytes
  // until either `len` is covered or a kMaxSge-entry window is full; the
  // chunk is clipped to what one work request can gather.  Zero-length
  // slices consume no entry (BuildSliceWindow skips them).
  std::uint64_t pos = 0;
  std::size_t i = 0;
  while (i < s.slices.size() && pos + s.slices[i].length <= s.sent) {
    pos += s.slices[i].length;
    ++i;
  }
  std::uint32_t entries = 0;
  std::uint64_t avail = 0;
  for (; i < s.slices.size() && entries < verbs::kMaxSge; ++i) {
    std::uint64_t skip = s.sent > pos ? s.sent - pos : 0;
    std::uint64_t take = s.slices[i].length - skip;
    pos += s.slices[i].length;
    if (take == 0) continue;
    ++entries;
    avail += take;
    if (avail >= len) return len;
  }
  return avail < len ? avail : len;
}

std::uint32_t StreamTx::BuildSliceWindow(const PendingSend& s,
                                         std::uint64_t off, std::uint64_t len,
                                         SendSlice* out) const {
  std::uint32_t n = 0;
  std::uint64_t pos = 0;
  for (const SendSlice& slice : s.slices) {
    if (len == 0) break;
    std::uint64_t end = pos + slice.length;
    if (end > off) {
      std::uint64_t skip = off - pos;
      std::uint64_t take = slice.length - skip;
      if (take > len) take = len;
      if (take > 0) {
        EXS_CHECK(n < verbs::kMaxSge);  // guaranteed by ClipChunkToSges
        out[n++] = SendSlice{
            static_cast<const std::uint8_t*>(slice.addr) + skip,
            static_cast<std::uint32_t>(take), slice.lkey};
        off += take;
        len -= take;
      }
    }
    pos = end;
  }
  EXS_CHECK_MSG(len == 0, "slice window ran past the record's payload");
  return n;
}

void StreamTx::NoteTransfer(bool indirect) {
  if (indirect != last_transfer_indirect_) {
    ctx_.metrics->mode_switches->Increment();
    last_transfer_indirect_ = indirect;
  }
}

void StreamTx::OnWwiComplete(std::uint64_t wr_id, std::size_t rail) {
  auto it = inflight_.find(wr_id);
  EXS_CHECK_MSG(it != inflight_.end(), "completion for unknown send");
  PendingSend& s = *it->second;
  EXS_CHECK(s.wwis_outstanding > 0);
  --s.wwis_outstanding;
  NoteWwisInFlight(-1);
  if (spans_ != nullptr && rail < span_tx_fifo_.size() &&
      !span_tx_fifo_[rail].empty()) {
    // Per-QP completions return in post order: the FIFO head is the chunk
    // this completion retires (empty only if tracing attached mid-run).
    spans_->NoteTxComplete(span_tx_fifo_[rail].front(),
                           ctx_.scheduler->Now());
    span_tx_fifo_[rail].pop_front();
  }
  if (Striping()) {
    // Per-QP completions return in post order, so the head of the rail's
    // FIFO is exactly the chunk that completed.
    EXS_CHECK(!rail_fifo_[rail].empty());
    std::uint64_t len = rail_fifo_[rail].front();
    rail_fifo_[rail].pop_front();
    EXS_CHECK(rail_outstanding_[rail] >= len);
    rail_outstanding_[rail] -= len;
  }
  if (s.fully_chunked && s.wwis_outstanding == 0) {
    CompleteSend(it->second);
  }
  if (Striping() && shutdown_requested_ && !shutdown_sent_ &&
      wwis_in_flight_ == 0) {
    Pump();  // the striped SHUTDOWN waits for the last local completion
  }
}

void StreamTx::CompleteSend(std::shared_ptr<PendingSend> rec) {
  inflight_.erase(rec->id);
  // A record can reach here twice under recovery: once normally, and once
  // when a resume finds it fully delivered (its flushed WR completions can
  // never arrive).  The application sees exactly one event either way.
  if (rec->completion_reported) return;
  rec->completion_reported = true;
  if (!rec->pinned.empty()) {
    for (const auto& mr : rec->pinned) {
      ctx_.channel->device().UnpinCached(mr);
    }
    rec->pinned.clear();
  }
  if (rec->members.empty()) {
    ctx_.metrics->sends_completed->Increment();
    ctx_.metrics->bytes_sent->Add(rec->len);
    ctx_.events->Push(
        Event{EventType::kSendComplete, rec->id, rec->len, false});
    return;
  }
  // Coalesced aggregate: fan completion out to every member, in the order
  // the application submitted them — callers cannot tell their sends were
  // merged on the wire.
  for (const StagedSend& m : rec->members) {
    ctx_.metrics->sends_completed->Increment();
    ctx_.metrics->bytes_sent->Add(m.len);
    ctx_.events->Push(Event{EventType::kSendComplete, m.id, m.len, false});
  }
}

void StreamTx::ResumeTx(const ResumeInfo& info) {
  EXS_CHECK_MSG(RecoveryOn(), "resume on a socket without recovery enabled");
  EXS_CHECK_MSG(PhaseIsIndirect(info.resume_phase),
                "resume re-enters the protocol in an indirect phase");
  // The marker leads: it records the frontier we rewind to and resets the
  // validators' sequence baseline, so everything after it is checked
  // against the resumed state.
  seq_ = info.delivered;
  if (peer_delivered_ < info.delivered) peer_delivered_ = info.delivered;
  Trace(TraceEventType::kResumeTx, info.delivered, 0, info.resume_phase);

  // The receiver's cursors are authoritative: writes we posted past its
  // commit point were never taken into custody and will be re-posted.
  remote_ring_.Restore(info.ring_write, info.ring_read, info.ring_used);

  // ADVERTs from before the kill name a handshake that no longer exists;
  // the receiver re-advertises everything outstanding.
  advert_queue_.clear();

  // Local WR completions for in-flight WWIs were flushed with error status
  // and consumed by the dead channel; none will ever be dispatched here.
  if (wwis_in_flight_ != 0) {
    NoteWwisInFlight(-static_cast<std::int64_t>(wwis_in_flight_));
  }

  // Rail failover: adopt the surviving rail set and restart the stripe
  // sequence space (the receiver restarts its reorder expectation too).
  rails_ = info.rails;
  stripe_seq_ = 0;
  next_rail_ = 0;
  rail_outstanding_.assign(rails_.empty() ? 1 : rails_.size(), 0);
  rail_fifo_.assign(rails_.empty() ? 0 : rails_.size(), {});
  span_tx_fifo_.clear();  // chunk spans across a resume are best-effort

  // Rebuild the chunk queue from the retransmission log.  Records wholly
  // below the frontier are done — but the kill may have flushed the WR
  // completion that would have raised their event, so raise it now
  // (CompleteSend dedups).  Records straddling or beyond the frontier are
  // re-queued to retransmit their unacknowledged suffix.
  chunk_queue_.clear();
  inflight_.clear();
  std::uint64_t retransmit = 0;
  std::deque<std::shared_ptr<PendingSend>> survivors;
  for (auto& rec : sent_log_) {
    if (rec->stream_off + rec->len <= info.delivered) {
      rec->sent = rec->len;
      rec->fully_chunked = true;
      rec->wwis_outstanding = 0;
      CompleteSend(rec);
      continue;
    }
    std::uint64_t new_sent =
        info.delivered > rec->stream_off ? info.delivered - rec->stream_off
                                         : 0;
    if (rec->sent > new_sent) retransmit += rec->sent - new_sent;
    rec->sent = new_sent;
    rec->fully_chunked = false;
    rec->wwis_outstanding = 0;
    inflight_.emplace(rec->id, rec);
    chunk_queue_.push_back(rec);
    survivors.push_back(rec);
  }
  sent_log_ = std::move(survivors);
  ctx_.metrics->retransmitted_bytes->Add(retransmit);

  // A SHUTDOWN the receiver never consumed died with the transport; Pump
  // re-sends it behind the retransmitted data.
  if (!info.peer_closed) shutdown_sent_ = false;

  if (phase_ < info.resume_phase) AdvancePhaseTo(info.resume_phase);
  // The socket kicks Pump() once both directions have resumed.
}

}  // namespace exs
