#include "exs/rendezvous.hpp"

#include "common/check.hpp"

namespace exs {

// ---------------------------------------------------------------------------
// Sender half: advertise sources, wait for READ-DONE.
// ---------------------------------------------------------------------------

void RendezvousTx::Submit(std::uint64_t id, const void* buf,
                          std::uint64_t len, std::uint32_t rkey) {
  EXS_CHECK_MSG(!shutdown_requested_, "send after Close()");
  if (len == 0) {
    ctx_.metrics->sends_completed->Increment();
    ctx_.events->Push(Event{EventType::kSendComplete, id, 0, false});
    return;
  }
  PendingSend s;
  s.id = id;
  s.addr = reinterpret_cast<std::uint64_t>(buf);
  s.len = len;
  s.rkey = rkey;
  unadvertised_.push_back(s);
  Pump();
}

void RendezvousTx::Pump() {
  while (!unadvertised_.empty() && ctx_.channel->CanSend()) {
    PendingSend s = unadvertised_.front();
    unadvertised_.pop_front();
    wire::ControlMessage msg;
    msg.type = static_cast<std::uint8_t>(wire::ControlType::kSrcAdvert);
    msg.addr = s.addr;
    msg.rkey = s.rkey;
    msg.len = s.len;
    msg.seq = seq_;
    ctx_.channel->SendControl(msg);
    seq_ += s.len;
    ctx_.metrics->adverts_sent->Increment();  // source advertisements, this direction
    awaiting_.push_back(s);
  }
  if (shutdown_requested_ && !shutdown_sent_ && unadvertised_.empty() &&
      ctx_.channel->CanSend()) {
    wire::ControlMessage msg;
    msg.type = static_cast<std::uint8_t>(wire::ControlType::kShutdown);
    ctx_.channel->SendControl(msg);
    shutdown_sent_ = true;
  }
}

void RendezvousTx::OnReadDone(std::uint64_t bytes) {
  EXS_CHECK_MSG(!awaiting_.empty(), "READ-DONE with nothing outstanding");
  PendingSend s = awaiting_.front();
  EXS_CHECK_MSG(bytes == s.len, "READ-DONE must cover the whole source");
  awaiting_.pop_front();
  ctx_.metrics->sends_completed->Increment();
  ctx_.metrics->bytes_sent->Add(s.len);
  ctx_.events->Push(Event{EventType::kSendComplete, s.id, s.len, false});
}

void RendezvousTx::RequestShutdown() {
  shutdown_requested_ = true;
  Pump();
}

// ---------------------------------------------------------------------------
// Receiver half: pull with RDMA READ, confirm with READ-DONE.
// ---------------------------------------------------------------------------

void RendezvousRx::Submit(std::uint64_t id, void* buf, std::uint64_t len,
                          std::uint32_t lkey, bool waitall) {
  EXS_CHECK_MSG(len > 0, "zero-length receive is not meaningful");
  if (eof_delivered_) {
    ctx_.metrics->recvs_completed->Increment();
    ctx_.events->Push(Event{EventType::kRecvComplete, id, 0, false});
    return;
  }
  PendingRecv r;
  r.id = id;
  r.addr = reinterpret_cast<std::uint64_t>(buf);
  r.len = len;
  r.lkey = lkey;
  r.waitall = waitall;
  pending_.push_back(r);
  PumpReads();
}

void RendezvousRx::OnSrcAdvert(const wire::ControlMessage& msg) {
  Source src;
  src.addr = msg.addr;
  src.len = msg.len;
  src.rkey = msg.rkey;
  EXS_CHECK_MSG(msg.seq == adverts_seen_seq_, "source adverts out of order");
  adverts_seen_seq_ += msg.len;
  sources_.push_back(src);
  ctx_.metrics->adverts_received->Increment();
  PumpReads();
}

void RendezvousRx::PumpReads() {
  // Claim spans pairing the oldest unclaimed receive bytes with the oldest
  // unclaimed source bytes; both sides progress strictly FIFO, so READ
  // completions (which arrive in order) attribute unambiguously.
  while (true) {
    PendingRecv* recv = nullptr;
    for (auto& r : pending_) {
      if (r.claimed < r.len) {
        recv = &r;
        break;
      }
    }
    Source* src = nullptr;
    for (auto& s : sources_) {
      if (s.claimed < s.len) {
        src = &s;
        break;
      }
    }
    if (recv == nullptr || src == nullptr) break;

    std::uint64_t n = recv->len - recv->claimed;
    if (src->len - src->claimed < n) n = src->len - src->claimed;
    ctx_.channel->PostRead(next_read_id_++,
                           reinterpret_cast<void*>(recv->addr + recv->claimed),
                           recv->lkey, n, src->addr + src->claimed,
                           src->rkey);
    recv->claimed += n;
    src->claimed += n;
    ++outstanding_reads_;
    ctx_.metrics->direct_transfers->Increment();  // READs are zero-copy transfers
    ctx_.metrics->direct_bytes->Add(n);
  }
}

void RendezvousRx::OnReadComplete(std::uint64_t /*wr_id*/,
                                  std::uint64_t bytes) {
  EXS_CHECK(outstanding_reads_ > 0);
  --outstanding_reads_;
  seq_ += bytes;
  ctx_.metrics->direct_bytes_received->Add(bytes);

  // Attribute to the oldest receive still waiting for claimed bytes.
  EXS_CHECK(!pending_.empty());
  PendingRecv* recv = nullptr;
  for (auto& r : pending_) {
    if (r.filled < r.claimed) {
      recv = &r;
      break;
    }
  }
  EXS_CHECK_MSG(recv != nullptr, "READ completion with no waiting receive");
  recv->filled += bytes;

  // And to the oldest source still being drained; confirm when done.
  EXS_CHECK(!sources_.empty());
  Source& src = sources_.front();
  EXS_CHECK(src.completed + bytes <= src.len);
  src.completed += bytes;
  if (src.completed == src.len) {
    done_queue_.push_back(src.len);
    sources_.pop_front();
    FlushDones();
  }

  // Complete receives from the front.
  while (!pending_.empty()) {
    PendingRecv& front = pending_.front();
    bool full = front.filled == front.len;
    bool short_ok = !front.waitall && front.filled > 0 &&
                    front.filled == front.claimed && sources_.empty();
    if (!full && !short_ok) break;
    ctx_.metrics->recvs_completed->Increment();
    ctx_.metrics->bytes_received->Add(front.filled);
    ctx_.events->Push(
        Event{EventType::kRecvComplete, front.id, front.filled, false});
    pending_.pop_front();
  }

  PumpReads();
  MaybeFinishEof();
}

void RendezvousRx::FlushDones() {
  while (!done_queue_.empty() && ctx_.channel->CanSend()) {
    wire::ControlMessage msg;
    msg.type = static_cast<std::uint8_t>(wire::ControlType::kReadDone);
    msg.freed = done_queue_.front();
    done_queue_.pop_front();
    ctx_.channel->SendControl(msg);
    ctx_.metrics->acks_sent->Increment();  // confirmations, this direction
  }
}

void RendezvousRx::OnShutdown() {
  EXS_CHECK_MSG(!peer_closed_, "duplicate SHUTDOWN");
  peer_closed_ = true;
  MaybeFinishEof();
}

void RendezvousRx::MaybeFinishEof() {
  if (!peer_closed_ || eof_delivered_) return;
  if (!sources_.empty() || outstanding_reads_ > 0) return;  // still pulling
  eof_delivered_ = true;
  while (!pending_.empty()) {
    PendingRecv r = pending_.front();
    pending_.pop_front();
    ctx_.metrics->recvs_completed->Increment();
    ctx_.metrics->bytes_received->Add(r.filled);
    ctx_.events->Push(
        Event{EventType::kRecvComplete, r.id, r.filled, false});
  }
  ctx_.events->Push(Event{EventType::kPeerClosed, 0, 0, false});
}

}  // namespace exs
