#include "exs/socket.hpp"

#include "common/check.hpp"

namespace exs {

const char* ToString(ProtocolMode mode) {
  switch (mode) {
    case ProtocolMode::kDynamic: return "dynamic";
    case ProtocolMode::kDirectOnly: return "direct-only";
    case ProtocolMode::kIndirectOnly: return "indirect-only";
    case ProtocolMode::kReadRendezvous: return "read-rendezvous";
  }
  return "?";
}

Socket::Socket(verbs::Device& device, SocketType type, StreamOptions options,
               std::string name)
    : device_(&device),
      type_(type),
      options_(options),
      name_(std::move(name)) {
  inst_ = SocketInstruments::Create(registry_);
  channel_ = std::make_unique<ControlChannel>(device, options_.credits);
  channel_->SetInstruments(inst_.send_credits, inst_.credit_messages_sent);
  events_ = std::make_unique<EventQueue>(device.node().cpu(),
                                         device.profile().per_event_cpu);
  if (type_ == SocketType::kStream &&
      options_.mode == ProtocolMode::kReadRendezvous) {
    rendezvous_tx_ = std::make_unique<RendezvousTx>(MakeContext(&tx_trace_));
    rendezvous_rx_ = std::make_unique<RendezvousRx>(MakeContext(&rx_trace_));
  } else if (type_ == SocketType::kStream) {
    tx_ = std::make_unique<StreamTx>(MakeContext(&tx_trace_));
    rx_ = std::make_unique<StreamRx>(MakeContext(&rx_trace_));
  } else {
    packet_tx_ = std::make_unique<SeqPacketTx>(MakeContext(&tx_trace_));
    packet_rx_ = std::make_unique<SeqPacketRx>(MakeContext(&rx_trace_));
  }
  WireCallbacks();
}

StreamContext Socket::MakeContext(TraceLog* trace) {
  StreamContext ctx;
  ctx.trace = trace;
  ctx.channel = channel_.get();
  ctx.scheduler = &device_->scheduler();
  ctx.cpu = &device_->node().cpu();
  ctx.events = events_.get();
  ctx.metrics = &inst_;
  ctx.options = options_;
  ctx.memcpy_bandwidth = device_->profile().memcpy_bandwidth;
  ctx.carry_payload = device_->carry_payload();
  ctx.debug_name = name_;
  return ctx;
}

void Socket::WireCallbacks() {
  ControlChannel::Callbacks cb;
  cb.on_control = [this](const wire::ControlMessage& msg) {
    switch (static_cast<wire::ControlType>(msg.type)) {
      case wire::ControlType::kAdvert:
        if (tx_) tx_->OnAdvert(msg);
        if (packet_tx_) packet_tx_->OnAdvert(msg);
        break;
      case wire::ControlType::kAck:
        EXS_CHECK_MSG(tx_ != nullptr, "ACK only exists in stream mode");
        tx_->OnAck(msg.freed);
        break;
      case wire::ControlType::kCredit:
        break;  // absorbed by the channel
      case wire::ControlType::kSrcAdvert:
        EXS_CHECK_MSG(rendezvous_rx_ != nullptr,
                      "SRC-ADVERT outside rendezvous mode");
        rendezvous_rx_->OnSrcAdvert(msg);
        break;
      case wire::ControlType::kReadDone:
        EXS_CHECK_MSG(rendezvous_tx_ != nullptr,
                      "READ-DONE outside rendezvous mode");
        rendezvous_tx_->OnReadDone(msg.freed);
        break;
      case wire::ControlType::kShutdown:
        if (rx_) {
          rx_->OnShutdown();
        } else if (rendezvous_rx_) {
          rendezvous_rx_->OnShutdown();
        } else {
          packet_rx_->OnShutdown();
        }
        break;
    }
  };
  cb.on_data = [this](bool indirect, std::uint64_t len) {
    if (rx_) {
      rx_->OnData(indirect, len);
    } else {
      EXS_CHECK_MSG(packet_rx_ != nullptr,
                    "data WWI on a rendezvous connection");
      packet_rx_->OnData(indirect, len);
    }
  };
  cb.on_data_sent = [this](std::uint64_t wr_id) {
    if (tx_) {
      tx_->OnWwiComplete(wr_id);
    } else {
      packet_tx_->OnWwiComplete(wr_id);
    }
  };
  cb.on_read_done = [this](std::uint64_t wr_id, std::uint64_t bytes) {
    EXS_CHECK_MSG(rendezvous_rx_ != nullptr,
                  "READ completion outside rendezvous mode");
    rendezvous_rx_->OnReadComplete(wr_id, bytes);
  };
  cb.on_credit_available = [this] {
    if (tx_) tx_->OnCreditAvailable();
    if (rx_) rx_->OnCreditAvailable();
    if (packet_tx_) packet_tx_->OnCreditAvailable();
    if (packet_rx_) packet_rx_->OnCreditAvailable();
    if (rendezvous_tx_) rendezvous_tx_->OnCreditAvailable();
    if (rendezvous_rx_) rendezvous_rx_->OnCreditAvailable();
  };
  channel_->set_callbacks(std::move(cb));
}

Socket::RingCredentials Socket::LocalRingCredentials() const {
  if (rx_ == nullptr) return RingCredentials{};
  return RingCredentials{rx_->ring_addr(), rx_->ring_rkey(),
                         rx_->ring_capacity()};
}

void Socket::CompleteEstablishment(const RingCredentials& peer_ring) {
  EXS_CHECK_MSG(!connected_, "socket already connected");
  if (tx_) {
    tx_->SetRemoteRing(peer_ring.addr, peer_ring.rkey, peer_ring.capacity);
  }
  connected_ = true;
}

void Socket::ConnectPair(Socket& a, Socket& b) {
  EXS_CHECK_MSG(a.type_ == b.type_, "socket types must match");
  EXS_CHECK_MSG(!a.connected_ && !b.connected_, "socket already connected");
  ControlChannel::Connect(*a.channel_, *b.channel_);
  // Exchange intermediate-buffer credentials, as the real library does in
  // the connection handshake's private data.
  a.CompleteEstablishment(b.LocalRingCredentials());
  b.CompleteEstablishment(a.LocalRingCredentials());
}

verbs::MemoryRegionPtr Socket::RegisterMemory(void* addr, std::size_t len) {
  auto mr = device_->RegisterMemory(addr, len);
  regions_by_start_.emplace(reinterpret_cast<std::uint64_t>(addr), mr);
  return mr;
}

const verbs::MemoryRegion* Socket::FindOrRegister(const void* addr,
                                                  std::uint64_t len) {
  auto start = reinterpret_cast<std::uint64_t>(addr);
  auto it = regions_by_start_.upper_bound(start);
  if (it != regions_by_start_.begin()) {
    --it;
    if (it->second->Covers(start, len)) return it->second.get();
  }
  EXS_CHECK_MSG(options_.auto_register_memory,
                "buffer not registered and auto-registration is off");
  return RegisterMemory(const_cast<void*>(addr), len).get();
}

std::uint64_t Socket::Send(const void* buf, std::uint64_t len,
                           SendFlags /*flags*/) {
  EXS_CHECK_MSG(connected_, "Send on unconnected socket");
  std::uint64_t id = next_request_id_++;
  const verbs::MemoryRegion* mr = len > 0 ? FindOrRegister(buf, len) : nullptr;
  if (tx_) {
    tx_->Submit(id, buf, len, mr ? mr->lkey() : 0);
  } else if (rendezvous_tx_) {
    // The peer pulls with RDMA READ, so the *remote* key travels.
    rendezvous_tx_->Submit(id, buf, len, mr ? mr->rkey() : 0);
  } else {
    packet_tx_->Submit(id, buf, len, mr ? mr->lkey() : 0);
  }
  return id;
}

std::uint64_t Socket::Recv(void* buf, std::uint64_t len, RecvFlags flags) {
  EXS_CHECK_MSG(connected_, "Recv on unconnected socket");
  std::uint64_t id = next_request_id_++;
  const verbs::MemoryRegion* mr = FindOrRegister(buf, len);
  if (rx_) {
    rx_->Submit(id, buf, len, mr->rkey(), flags.waitall);
  } else if (rendezvous_rx_) {
    // READ responses land locally, so the *local* key is needed.
    rendezvous_rx_->Submit(id, buf, len, mr->lkey(), flags.waitall);
  } else {
    packet_rx_->Submit(id, buf, len, mr->rkey());
  }
  return id;
}

void Socket::Close() {
  EXS_CHECK_MSG(connected_, "Close on unconnected socket");
  if (CloseRequested()) return;  // idempotent
  if (tx_) {
    tx_->RequestShutdown();
  } else if (rendezvous_tx_) {
    rendezvous_tx_->RequestShutdown();
  } else {
    packet_tx_->RequestShutdown();
  }
}

bool Socket::CloseRequested() const {
  if (tx_) return tx_->ShutdownRequested();
  if (rendezvous_tx_) return rendezvous_tx_->ShutdownRequested();
  return packet_tx_->ShutdownRequested();
}

StreamStats Socket::stats() const {
  StreamStats s;
  s.direct_transfers = inst_.direct_transfers->value();
  s.indirect_transfers = inst_.indirect_transfers->value();
  s.direct_bytes = inst_.direct_bytes->value();
  s.indirect_bytes = inst_.indirect_bytes->value();
  s.mode_switches = inst_.mode_switches->value();
  s.adverts_received = inst_.adverts_received->value();
  s.adverts_discarded = inst_.adverts_discarded->value();
  s.sender_phase = static_cast<std::uint64_t>(inst_.tx_phase->value());
  s.coalesced_sends = inst_.coalesced_sends->value();
  s.coalesced_bytes = inst_.coalesced_bytes->value();
  s.coalesce_flushes = inst_.coalesce_flush_maxbytes->value() +
                       inst_.coalesce_flush_timeout->value() +
                       inst_.coalesce_flush_advert->value() +
                       inst_.coalesce_flush_phase->value() +
                       inst_.coalesce_flush_close->value() +
                       inst_.coalesce_flush_ordering->value();
  s.adverts_sent = inst_.adverts_sent->value();
  s.acks_sent = inst_.acks_sent->value();
  s.acks_piggybacked = inst_.acks_piggybacked->value();
  s.credit_messages_sent = inst_.credit_messages_sent->value();
  s.bytes_copied_out = inst_.bytes_copied_out->value();
  s.direct_bytes_received = inst_.direct_bytes_received->value();
  s.indirect_bytes_received = inst_.indirect_bytes_received->value();
  s.receiver_phase = static_cast<std::uint64_t>(inst_.rx_phase->value());
  s.sends_completed = inst_.sends_completed->value();
  s.recvs_completed = inst_.recvs_completed->value();
  s.bytes_sent = inst_.bytes_sent->value();
  s.bytes_received = inst_.bytes_received->value();
  return s;
}

bool Socket::Quiescent() const {
  if (tx_ && rx_) return tx_->Quiescent() && rx_->Quiescent();
  if (rendezvous_tx_) {
    return rendezvous_tx_->Quiescent() && rendezvous_rx_->Quiescent();
  }
  return packet_tx_->Quiescent() && packet_rx_->Quiescent();
}

}  // namespace exs
