#include "exs/socket.hpp"

#include <algorithm>
#include <string>

#include "common/check.hpp"

namespace exs {

const char* ToString(ProtocolMode mode) {
  switch (mode) {
    case ProtocolMode::kDynamic: return "dynamic";
    case ProtocolMode::kDirectOnly: return "direct-only";
    case ProtocolMode::kIndirectOnly: return "indirect-only";
    case ProtocolMode::kReadRendezvous: return "read-rendezvous";
  }
  return "?";
}

const char* ToString(RailScheduler scheduler) {
  switch (scheduler) {
    case RailScheduler::kRoundRobin: return "round-robin";
    case RailScheduler::kShortestOutstanding: return "shortest-outstanding";
  }
  return "?";
}

namespace {
/// An implementation guard, not a protocol limit: catches garbage rail
/// counts before they allocate hundreds of queue pairs.
constexpr std::uint32_t kMaxRails = 16;
}  // namespace

Socket::Socket(verbs::Device& device, SocketType type, StreamOptions options,
               std::string name, SocketWiring wiring)
    : device_(&device),
      type_(type),
      options_(options),
      name_(std::move(name)),
      wiring_(std::move(wiring)) {
  EXS_CHECK_MSG(options_.rails >= 1 && options_.rails <= kMaxRails,
                "rails must be in [1, " << kMaxRails << "]");
  // Striping only applies to the dynamic/forced stream protocol: a
  // SEQPACKET message or a rendezvous READ never splits into chunks, so
  // there is nothing to stripe.  Clamp before the contexts are built so
  // every component sees the effective option.
  if (type_ != SocketType::kStream ||
      options_.mode == ProtocolMode::kReadRendezvous) {
    options_.rails = 1;
  }
  EXS_CHECK_MSG(wiring_.shared_slots == nullptr || options_.rails == 1,
                "shared control slots require a single-rail socket");
  EXS_CHECK_MSG(!options_.recovery.enabled ||
                    (type_ == SocketType::kStream &&
                     options_.mode != ProtocolMode::kReadRendezvous),
                "recovery supports stream sockets only");
  inst_ = SocketInstruments::Create(registry_);
  mux_ = std::move(wiring_.mux_stream);
  if (mux_ != nullptr) {
    EXS_CHECK_MSG(type_ == SocketType::kStream &&
                      options_.mode != ProtocolMode::kReadRendezvous,
                  "mux requires a stream socket (rendezvous READs bypass "
                  "the credit layering)");
    EXS_CHECK_MSG(options_.rails == 1, "muxed sockets are single-rail");
    EXS_CHECK_MSG(wiring_.shared_slots == nullptr,
                  "mux slots already share receives; shared_slots does not "
                  "compose with a muxed socket");
    // No dedicated channel: the shared slot QPs live in the MuxGroup.
    // Per-socket mux telemetry replaces the rail0 instruments.
    mux_->SetInstruments(&registry_.GetHistogram("mux.hol_wait", "ps"),
                         &registry_.GetCounter("mux.parks", "events"));
  } else {
    channel_ = std::make_unique<ControlChannel>(device, options_.credits,
                                                wiring_.shared_slots,
                                                wiring_.slots_reserved);
    channel_->SetInstruments(inst_.send_credits, inst_.credit_messages_sent);
    InstrumentRail(0, *channel_);
    for (std::uint32_t rail = 1; rail < options_.rails; ++rail) {
      data_rails_.push_back(
          std::make_unique<ControlChannel>(device, options_.credits));
      InstrumentRail(rail, *data_rails_.back());
    }
  }
  // Hot-path batching (StreamOptions::batching).  Doorbell batching needs
  // the pump-exit flush discipline only StreamTx implements, so it is
  // stream-only and never muxed (a MuxStream posts through a shared slot
  // whose other streams would be held hostage by a pending batch).
  bool stream_proto = type_ == SocketType::kStream &&
                      options_.mode != ProtocolMode::kReadRendezvous;
  if (options_.batching.doorbell) {
    EXS_CHECK_MSG(stream_proto && mux_ == nullptr,
                  "doorbell batching requires a classic stream socket");
    EXS_CHECK_MSG(options_.batching.max_wrs >= 1,
                  "doorbell batching needs max_wrs >= 1");
    channel_->SetSendBatching(options_.batching.max_wrs);
    for (auto& rail : data_rails_) {
      rail->SetSendBatching(options_.batching.max_wrs);
    }
  }
  if (options_.batching.cq_drain > 1) {
    EXS_CHECK_MSG(stream_proto && mux_ == nullptr,
                  "batched CQ dispatch requires a classic stream socket");
    channel_->SetCqDispatchBatch(options_.batching.cq_drain);
    for (auto& rail : data_rails_) {
      rail->SetCqDispatchBatch(options_.batching.cq_drain);
    }
  }
  if (options_.batching.mr_cache_entries > 0) {
    // Arm the device-level LRU registration cache plus the registration
    // cost model, and mirror the device's traffic into this socket's
    // mr.* instruments.
    device.EnableMrCache(options_.batching.mr_cache_entries);
    device.EnableMrCostModel();
    device.SetMrInstruments(inst_.mr_registrations, inst_.mr_cache_hits);
  }
  events_ = std::make_unique<EventQueue>(device.node().cpu(),
                                         device.profile().per_event_cpu);
  if (type_ == SocketType::kStream &&
      options_.mode == ProtocolMode::kReadRendezvous) {
    rendezvous_tx_ = std::make_unique<RendezvousTx>(MakeContext(&tx_trace_));
    rendezvous_rx_ = std::make_unique<RendezvousRx>(MakeContext(&rx_trace_));
  } else if (type_ == SocketType::kStream) {
    tx_ = std::make_unique<StreamTx>(MakeContext(&tx_trace_));
    StreamContext rx_ctx = MakeContext(&rx_trace_);
    // Only the receiver half owns the leased ring (and its release).
    rx_ctx.ring_lease = std::move(wiring_.ring_lease);
    rx_ = std::make_unique<StreamRx>(std::move(rx_ctx));
  } else {
    packet_tx_ = std::make_unique<SeqPacketTx>(MakeContext(&tx_trace_));
    packet_rx_ = std::make_unique<SeqPacketRx>(MakeContext(&rx_trace_));
  }
  if (rx_) rx_->SetRailHolInstruments(rail_hol_inst_);
  WireCallbacks();
  for (std::size_t rail = 1; rail < ProvisionedRails(); ++rail) {
    WireRailCallbacks(rail);
  }
}

void Socket::EnableChunkSpans(spans::SpanCollector* collector) {
  // Stream mode only: SEQPACKET and rendezvous transfers are outside the
  // chunk provenance model.  Registration order (tx before rx, sockets in
  // call order) is deterministic, so endpoint ids are stable across runs.
  if (collector == nullptr || tx_ == nullptr) return;
  span_tx_endpoint_ = collector->RegisterEndpoint(name_ + ".tx");
  span_rx_endpoint_ = collector->RegisterEndpoint(name_ + ".rx");
  tx_->SetSpanCollector(collector, span_tx_endpoint_);
  rx_->SetSpanCollector(collector, span_rx_endpoint_);
}

void Socket::InstrumentRail(std::size_t rail, ControlChannel& channel) {
  // Per-queue-pair telemetry (satellite of the striping work): the verbs
  // QueuePairStats counters become named registry instruments so per-rail
  // activity shows up in the metrics JSON and — via the inflight_wrs
  // series — as counter tracks in the Perfetto timeline export.
  std::string prefix = "rail" + std::to_string(rail) + ".";
  verbs::QueuePairInstruments qp;
  qp.sends_posted = &registry_.GetCounter(prefix + "sends_posted", "wrs");
  qp.recvs_posted = &registry_.GetCounter(prefix + "recvs_posted", "wrs");
  qp.payload_bytes_sent =
      &registry_.GetCounter(prefix + "payload_bytes_sent", "bytes");
  qp.wire_bytes_sent =
      &registry_.GetCounter(prefix + "wire_bytes_sent", "bytes");
  qp.messages_delivered =
      &registry_.GetCounter(prefix + "messages_delivered", "messages");
  qp.completion_latency =
      &registry_.GetHistogram(prefix + "completion_latency", "ps");
  // Doorbell batching aggregates socket-wide: every rail shares the
  // doorbell.* counters, so the socket's achieved batch depth is simply
  // doorbell.wrs_batched / doorbell.batches.
  qp.doorbells = inst_.doorbell_batches;
  qp.batched_wrs = inst_.doorbell_wrs;
  channel.SetQpInstruments(
      qp, &registry_.GetSeries(prefix + "inflight_wrs", "wrs"));
  // Head-of-line blocking per rail: time an arriving chunk sat in the
  // stripe reorder buffer behind an earlier-sequence chunk (always 0 on a
  // single-rail connection, recorded anyway so counts stay comparable).
  rail_hol_inst_.push_back(&registry_.GetHistogram(prefix + "hol_wait", "ps"));
}

StreamContext Socket::MakeContext(TraceLog* trace) {
  StreamContext ctx;
  ctx.trace = trace;
  ctx.channel = endpoint();
  ctx.scheduler = &device_->scheduler();
  ctx.cpu = &device_->node().cpu();
  ctx.events = events_.get();
  ctx.metrics = &inst_;
  ctx.options = options_;
  ctx.memcpy_bandwidth = device_->profile().memcpy_bandwidth;
  ctx.carry_payload = device_->carry_payload();
  ctx.debug_name = name_;
  return ctx;
}

void Socket::WireCallbacks() {
  ChannelEndpoint::Callbacks cb;
  cb.on_control = [this](const wire::ControlMessage& msg) {
    switch (static_cast<wire::ControlType>(msg.type)) {
      case wire::ControlType::kAdvert:
        if (tx_) tx_->OnAdvert(msg);
        if (packet_tx_) packet_tx_->OnAdvert(msg);
        break;
      case wire::ControlType::kAck:
        EXS_CHECK_MSG(tx_ != nullptr, "ACK only exists in stream mode");
        tx_->OnAck(msg.freed, msg.delivered);
        break;
      case wire::ControlType::kCredit:
        break;  // absorbed by the channel
      case wire::ControlType::kSrcAdvert:
        EXS_CHECK_MSG(rendezvous_rx_ != nullptr,
                      "SRC-ADVERT outside rendezvous mode");
        rendezvous_rx_->OnSrcAdvert(msg);
        break;
      case wire::ControlType::kReadDone:
        EXS_CHECK_MSG(rendezvous_tx_ != nullptr,
                      "READ-DONE outside rendezvous mode");
        rendezvous_tx_->OnReadDone(msg.freed);
        break;
      case wire::ControlType::kShutdown:
        if (rx_) {
          rx_->OnShutdown();
        } else if (rendezvous_rx_) {
          rendezvous_rx_->OnShutdown();
        } else {
          packet_rx_->OnShutdown();
        }
        break;
    }
  };
  cb.on_data = [this](bool indirect, std::uint64_t len, bool has_stripe_seq,
                      std::uint64_t stripe_seq, std::uint64_t trace_ctx) {
    if (rx_) {
      rx_->OnData(indirect, len, has_stripe_seq, stripe_seq, /*rail=*/0,
                  trace_ctx);
    } else {
      EXS_CHECK_MSG(packet_rx_ != nullptr,
                    "data WWI on a rendezvous connection");
      EXS_CHECK_MSG(!has_stripe_seq, "stripe seq on a SEQPACKET connection");
      packet_rx_->OnData(indirect, len);
    }
  };
  cb.on_data_sent = [this](std::uint64_t wr_id) {
    if (tx_) {
      tx_->OnWwiComplete(wr_id);
    } else {
      packet_tx_->OnWwiComplete(wr_id);
    }
  };
  cb.on_read_done = [this](std::uint64_t wr_id, std::uint64_t bytes) {
    EXS_CHECK_MSG(rendezvous_rx_ != nullptr,
                  "READ completion outside rendezvous mode");
    rendezvous_rx_->OnReadComplete(wr_id, bytes);
  };
  cb.on_credit_available = [this] {
    if (tx_) tx_->OnCreditAvailable();
    if (rx_) rx_->OnCreditAvailable();
    if (packet_tx_) packet_tx_->OnCreditAvailable();
    if (packet_rx_) packet_rx_->OnCreditAvailable();
    if (rendezvous_tx_) rendezvous_tx_->OnCreditAvailable();
    if (rendezvous_rx_) rendezvous_rx_->OnCreditAvailable();
  };
  cb.on_fatal = [this](verbs::WcStatus status) { OnTransportFatal(status); };
  endpoint()->set_callbacks(std::move(cb));
}

void Socket::WireRailCallbacks(std::size_t rail) {
  // Data rails carry WWI chunks and the CREDIT messages the channel
  // absorbs internally; ADVERT/ACK/SHUTDOWN stay on rail 0 where their
  // ordering relative to single-rail traffic is defined.
  ChannelEndpoint::Callbacks cb;
  cb.on_control = [](const wire::ControlMessage&) {
    EXS_CHECK_MSG(false, "control message on a data rail");
  };
  cb.on_data = [this, rail](bool indirect, std::uint64_t len,
                            bool has_stripe_seq, std::uint64_t stripe_seq,
                            std::uint64_t trace_ctx) {
    EXS_CHECK_MSG(rx_ != nullptr, "data rail on a non-stream socket");
    rx_->OnData(indirect, len, has_stripe_seq, stripe_seq, rail, trace_ctx);
  };
  cb.on_data_sent = [this, rail](std::uint64_t wr_id) {
    tx_->OnWwiComplete(wr_id, rail);
  };
  cb.on_credit_available = [this] {
    // A rail credit unblocks the sender's rail pick; the receiver's
    // control traffic never waits on data-rail credits.
    if (tx_) tx_->OnCreditAvailable();
  };
  cb.on_fatal = [this](verbs::WcStatus status) { OnTransportFatal(status); };
  data_rails_[rail - 1]->set_callbacks(std::move(cb));
}

Socket::RingCredentials Socket::LocalRingCredentials() const {
  RingCredentials creds;
  creds.rails = static_cast<std::uint32_t>(ProvisionedRails());
  if (rx_ == nullptr) return creds;
  creds.addr = rx_->ring_addr();
  creds.rkey = rx_->ring_rkey();
  creds.capacity = rx_->ring_capacity();
  return creds;
}

void Socket::CompleteEstablishment(const RingCredentials& peer_ring) {
  EXS_CHECK_MSG(!connected_, "socket already connected");
  if (tx_) {
    tx_->SetRemoteRing(peer_ring.addr, peer_ring.rkey, peer_ring.capacity);
    // Striping negotiation: both sides stripe across the minimum of the
    // two provisioned counts (a rails=1 peer — or one predating the field,
    // whose credentials decode as rails=0 — pins the connection to the
    // classic single-rail protocol).
    std::size_t peer_rails = peer_ring.rails == 0 ? 1 : peer_ring.rails;
    effective_rails_ = std::min(ProvisionedRails(), peer_rails);
    if (effective_rails_ > 1) {
      std::vector<ChannelEndpoint*> rails;
      rails.push_back(channel_.get());
      for (std::size_t r = 1; r < effective_rails_; ++r) {
        rails.push_back(data_rails_[r - 1].get());
      }
      tx_->SetDataRails(std::move(rails));
      rx_->SetStriping(static_cast<std::uint32_t>(effective_rails_));
    }
  }
  connected_ = true;
}

void Socket::ConnectTransport(Socket& a, Socket& b) {
  if (a.mux_ != nullptr || b.mux_ != nullptr) {
    // Muxed connections: the slot queue pairs were wired when the two
    // MuxGroups connected; per-connection establishment only checks that
    // the sockets ride matching streams of peered groups.
    EXS_CHECK_MSG(a.mux_ != nullptr && b.mux_ != nullptr,
                  "both sockets of a muxed pair must be muxed");
    EXS_CHECK_MSG(a.mux_->GroupAlive() && b.mux_->GroupAlive(),
                  "muxed connect after group teardown");
    EXS_CHECK_MSG(a.mux_->group().peer() == &b.mux_->group(),
                  "muxed sockets belong to groups that are not peers");
    EXS_CHECK_MSG(a.mux_->stream_id() == b.mux_->stream_id(),
                  "muxed peers must ride the same stream id");
    return;
  }
  ControlChannel::Connect(*a.channel_, *b.channel_);
  std::size_t rails = std::min(a.ProvisionedRails(), b.ProvisionedRails());
  for (std::size_t r = 1; r < rails; ++r) {
    ControlChannel::Connect(*a.data_rails_[r - 1], *b.data_rails_[r - 1]);
  }
}

void Socket::ConnectPair(Socket& a, Socket& b) {
  EXS_CHECK_MSG(a.type_ == b.type_, "socket types must match");
  EXS_CHECK_MSG(!a.connected_ && !b.connected_, "socket already connected");
  ConnectTransport(a, b);
  // Exchange intermediate-buffer credentials, as the real library does in
  // the connection handshake's private data.
  a.CompleteEstablishment(b.LocalRingCredentials());
  b.CompleteEstablishment(a.LocalRingCredentials());
}

verbs::MemoryRegionPtr Socket::RegisterMemory(void* addr, std::size_t len) {
  auto mr = device_->RegisterMemory(addr, len);
  regions_by_start_.emplace(reinterpret_cast<std::uint64_t>(addr), mr);
  return mr;
}

const verbs::MemoryRegion* Socket::FindOrRegister(const void* addr,
                                                  std::uint64_t len) {
  auto start = reinterpret_cast<std::uint64_t>(addr);
  auto it = regions_by_start_.upper_bound(start);
  if (it != regions_by_start_.begin()) {
    --it;
    if (it->second->Covers(start, len)) return it->second.get();
  }
  EXS_CHECK_MSG(options_.auto_register_memory,
                "buffer not registered and auto-registration is off");
  return RegisterMemory(const_cast<void*>(addr), len).get();
}

std::uint64_t Socket::Send(const void* buf, std::uint64_t len,
                           SendFlags /*flags*/) {
  EXS_CHECK_MSG(connected_, "Send on unconnected socket");
  std::uint64_t id = next_request_id_++;
  const verbs::MemoryRegion* mr = len > 0 ? FindOrRegister(buf, len) : nullptr;
  if (tx_) {
    tx_->Submit(id, buf, len, mr ? mr->lkey() : 0);
  } else if (rendezvous_tx_) {
    // The peer pulls with RDMA READ, so the *remote* key travels.
    rendezvous_tx_->Submit(id, buf, len, mr ? mr->rkey() : 0);
  } else {
    packet_tx_->Submit(id, buf, len, mr ? mr->lkey() : 0);
  }
  return id;
}

std::uint64_t Socket::Sendv(const IoSlice* iov, std::uint32_t n,
                            SendFlags /*flags*/) {
  EXS_CHECK_MSG(connected_, "Sendv on unconnected socket");
  EXS_CHECK_MSG(tx_ != nullptr, "Sendv is stream-only");
  EXS_CHECK_MSG(n >= 1 && n <= verbs::kMaxSge,
                "Sendv arity must be 1.." << verbs::kMaxSge << ", got " << n);
  std::uint64_t id = next_request_id_++;
  SendSlice slices[verbs::kMaxSge];
  std::vector<verbs::MemoryRegionPtr> pins;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t lkey = 0;
    if (iov[i].len > 0) {
      if (device_->mr_cache_enabled()) {
        auto mr = device_->RegisterMemoryCached(
            const_cast<void*>(iov[i].addr), iov[i].len);
        lkey = mr->lkey();
        pins.push_back(std::move(mr));
      } else {
        lkey = FindOrRegister(iov[i].addr, iov[i].len)->lkey();
      }
    }
    slices[i] = SendSlice{iov[i].addr,
                          static_cast<std::uint32_t>(iov[i].len), lkey};
  }
  tx_->SubmitV(id, slices, n, std::move(pins));
  return id;
}

std::uint64_t Socket::Recv(void* buf, std::uint64_t len, RecvFlags flags) {
  EXS_CHECK_MSG(connected_, "Recv on unconnected socket");
  std::uint64_t id = next_request_id_++;
  const verbs::MemoryRegion* mr = FindOrRegister(buf, len);
  if (rx_) {
    rx_->Submit(id, buf, len, mr->rkey(), flags.waitall);
  } else if (rendezvous_rx_) {
    // READ responses land locally, so the *local* key is needed.
    rendezvous_rx_->Submit(id, buf, len, mr->lkey(), flags.waitall);
  } else {
    packet_rx_->Submit(id, buf, len, mr->rkey());
  }
  return id;
}

void Socket::Close() {
  EXS_CHECK_MSG(connected_, "Close on unconnected socket");
  if (CloseRequested()) return;  // idempotent
  if (tx_) {
    tx_->RequestShutdown();
  } else if (rendezvous_tx_) {
    rendezvous_tx_->RequestShutdown();
  } else {
    packet_tx_->RequestShutdown();
  }
}

bool Socket::CloseRequested() const {
  if (tx_) return tx_->ShutdownRequested();
  if (rendezvous_tx_) return rendezvous_tx_->ShutdownRequested();
  return packet_tx_->ShutdownRequested();
}

StreamStats Socket::stats() const {
  StreamStats s;
  s.direct_transfers = inst_.direct_transfers->value();
  s.indirect_transfers = inst_.indirect_transfers->value();
  s.direct_bytes = inst_.direct_bytes->value();
  s.indirect_bytes = inst_.indirect_bytes->value();
  s.mode_switches = inst_.mode_switches->value();
  s.adverts_received = inst_.adverts_received->value();
  s.adverts_discarded = inst_.adverts_discarded->value();
  s.sender_phase = static_cast<std::uint64_t>(inst_.tx_phase->value());
  s.coalesced_sends = inst_.coalesced_sends->value();
  s.coalesced_bytes = inst_.coalesced_bytes->value();
  s.coalesce_flushes = inst_.coalesce_flush_maxbytes->value() +
                       inst_.coalesce_flush_timeout->value() +
                       inst_.coalesce_flush_advert->value() +
                       inst_.coalesce_flush_phase->value() +
                       inst_.coalesce_flush_close->value() +
                       inst_.coalesce_flush_ordering->value();
  s.doorbell_batches = inst_.doorbell_batches->value();
  s.batched_wrs = inst_.doorbell_wrs->value();
  s.sendv_calls = inst_.sendv_calls->value();
  s.coalesce_staging_copies = inst_.coalesce_staging_copies->value();
  s.coalesce_sg_flushes = inst_.coalesce_sg_flushes->value();
  // Device-level truth (the registry mirrors only arm with the cache):
  // actual registrations and cache-served pins on this socket's device.
  s.mr_registrations = device_->mr_cache_stats().registrations;
  s.mr_cache_hits = device_->mr_cache_stats().cache_hits;
  s.adverts_sent = inst_.adverts_sent->value();
  s.acks_sent = inst_.acks_sent->value();
  s.acks_piggybacked = inst_.acks_piggybacked->value();
  s.credit_messages_sent = inst_.credit_messages_sent->value();
  s.bytes_copied_out = inst_.bytes_copied_out->value();
  s.direct_bytes_received = inst_.direct_bytes_received->value();
  s.indirect_bytes_received = inst_.indirect_bytes_received->value();
  s.receiver_phase = static_cast<std::uint64_t>(inst_.rx_phase->value());
  s.sends_completed = inst_.sends_completed->value();
  s.recvs_completed = inst_.recvs_completed->value();
  s.bytes_sent = inst_.bytes_sent->value();
  s.bytes_received = inst_.bytes_received->value();
  return s;
}

bool Socket::Quiescent() const {
  if (tx_ && rx_) return tx_->Quiescent() && rx_->Quiescent();
  if (rendezvous_tx_) {
    return rendezvous_tx_->Quiescent() && rendezvous_rx_->Quiescent();
  }
  return packet_tx_->Quiescent() && packet_rx_->Quiescent();
}

void Socket::OnTransportFatal(verbs::WcStatus /*status*/) {
  // A multi-rail kill fires once per channel; the application sees one
  // death per transport incident.
  if (fatal_event_raised_) return;
  fatal_event_raised_ = true;
  death_time_ = device_->scheduler().Now();
  inst_.transport_kills->Increment();
  if (tx_) tx_->NoteTransportKilled();
  if (rx_) rx_->NoteTransportKilled();
  events_->Push(Event{EventType::kError, 0, 0, false});
}

bool Socket::KillTransport() {
  EXS_CHECK_MSG(connected_, "KillTransport on unconnected socket");
  if (mux_ != nullptr) return mux_->Kill();  // virtual: the slot QP lives on
  bool any = channel_->Kill();
  for (std::size_t r = 1; r < effective_rails_; ++r) {
    any = data_rails_[r - 1]->Kill() || any;
  }
  return any;
}

bool Socket::TransportDead() const {
  if (!connected_) return false;
  if (mux_ != nullptr) return mux_->dead();
  if (!channel_->dead()) return false;
  for (std::size_t r = 1; r < effective_rails_; ++r) {
    if (!data_rails_[r - 1]->dead()) return false;
  }
  return true;
}

void Socket::ResumePair(Socket& a, Socket& b, std::size_t max_rails) {
  EXS_CHECK_MSG(a.tx_ != nullptr && b.tx_ != nullptr,
                "resume is stream-only");
  EXS_CHECK_MSG(a.options_.recovery.enabled && b.options_.recovery.enabled,
                "resume requires StreamOptions::recovery on both sockets");
  EXS_CHECK_MSG(a.connected_ && b.connected_, "resume before establishment");
  EXS_CHECK_MSG(a.TransportDead() && b.TransportDead(),
                "resume requires both transports dead");

  // Rail failover: reconnect only the surviving rails (callers model an
  // N -> N-1 rail loss by capping; 0 keeps the pre-kill count).  Rail 0 is
  // the control channel and always survives as a channel object — only
  // its queue pair is replaced.
  std::size_t rails = std::min(a.effective_rails_, b.effective_rails_);
  if (max_rails != 0) rails = std::min(rails, max_rails);
  if (a.mux_ != nullptr || b.mux_ != nullptr) {
    // Muxed resume: the slot transport never died (virtual kill), so no
    // queue pairs are rebuilt — Revive bumps each stream's epoch (stale
    // in-flight messages drop on arrival) and resets its window; the
    // frontier handshake below is unchanged.
    EXS_CHECK_MSG(a.mux_ != nullptr && b.mux_ != nullptr,
                  "both sockets of a muxed pair must be muxed");
    a.mux_->Revive();
    b.mux_->Revive();
    rails = 1;
  } else {
    ControlChannel::Connect(*a.channel_, *b.channel_);
    for (std::size_t r = 1; r < rails; ++r) {
      ControlChannel::Connect(*a.data_rails_[r - 1], *b.data_rails_[r - 1]);
    }
  }
  a.effective_rails_ = rails;
  b.effective_rails_ = rails;
  a.fatal_event_raised_ = false;
  b.fatal_event_raised_ = false;

  const SimTime now = a.device_->scheduler().Now();
  a.inst_.resumes->Increment();
  b.inst_.resumes->Increment();
  a.inst_.resume_latency->Record(static_cast<std::uint64_t>(
      now >= a.death_time_ ? now - a.death_time_ : 0));
  b.inst_.resume_latency->Record(static_cast<std::uint64_t>(
      now >= b.death_time_ ? now - b.death_time_ : 0));

  // Each direction re-synchronises independently: the sender rewinds to
  // its peer receiver's delivered frontier, both halves adopt a common
  // indirect resume phase at or past where either stood.
  auto rail_list = [rails](Socket& s) {
    std::vector<ChannelEndpoint*> list;
    if (rails > 1) {
      list.push_back(s.channel_.get());
      for (std::size_t r = 1; r < rails; ++r) {
        list.push_back(s.data_rails_[r - 1].get());
      }
    }
    return list;
  };
  auto resume_phase = [](const StreamTx& tx, const StreamRx& rx) {
    std::uint64_t p = std::max(tx.phase(), rx.phase());
    return PhaseIsIndirect(p) ? p : NextPhase(p);
  };
  auto make_info = [&](Socket& tx_side, StreamRx& rx) {
    StreamTx::ResumeInfo info;
    info.delivered = rx.DeliveredFrontier();
    info.ring_write = rx.RingWriteOffset();
    info.ring_read = rx.RingReadOffset();
    info.ring_used = rx.RingBytes();
    info.peer_closed = rx.PeerClosed();
    info.rails = rail_list(tx_side);
    return info;
  };
  std::uint64_t phase_ab = resume_phase(*a.tx_, *b.rx_);
  std::uint64_t phase_ba = resume_phase(*b.tx_, *a.rx_);
  StreamTx::ResumeInfo info_ab = make_info(a, *b.rx_);
  info_ab.resume_phase = phase_ab;
  StreamTx::ResumeInfo info_ba = make_info(b, *a.rx_);
  info_ba.resume_phase = phase_ba;

  // Senders first (state only), then receivers (which re-advertise and
  // restart the drain), then both pumps: by the time data can move, every
  // half is in the resumed state.
  a.tx_->ResumeTx(info_ab);
  b.tx_->ResumeTx(info_ba);
  a.rx_->ResumeRx(phase_ba, static_cast<std::uint32_t>(rails));
  b.rx_->ResumeRx(phase_ab, static_cast<std::uint32_t>(rails));
  a.tx_->OnCreditAvailable();
  b.tx_->OnCreditAvailable();
}

}  // namespace exs
