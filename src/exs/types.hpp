// Public vocabulary of the EXS library: socket types, protocol modes,
// per-request flags, completion events, and statistics.
//
// Naming follows the paper: a connection's outgoing byte stream has a
// "sender" half (phase P_s, sequence S_s, remote-buffer view b_s, ADVERT
// queue q_A) and its incoming stream a "receiver" half (phase P_r,
// sequences S_r / S'_r, intermediate buffer b_r).  Both halves exist on
// both sockets — connections are full duplex.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace exs {

enum class SocketType {
  kStream,     ///< SOCK_STREAM: byte-stream semantics (the paper's subject)
  kSeqPacket,  ///< SOCK_SEQPACKET: message semantics (§II-C)
};

/// Transfer-selection policy.  The paper's evaluation compares the dynamic
/// algorithm against two forced baselines (§IV-B).
enum class ProtocolMode {
  kDynamic,       ///< switch between direct and indirect per conditions
  kDirectOnly,    ///< always wait for an ADVERT; never touch the buffer
  kIndirectOnly,  ///< receiver sends no ADVERTs; everything is buffered
  /// Receiver-driven alternative the paper chose *not* to use ("A similar
  /// RDMA READ operation works in the opposite direction, but is not used
  /// in our solution", §II-B): the sender exposes its source memory and
  /// the receiver pulls with RDMA READ.  Zero-copy and never waits for
  /// receive-side ADVERTs — but every transfer costs an extra wire
  /// crossing, which is ruinous over distance.  Implemented as a
  /// comparison engine (exs/rendezvous.hpp); the ext_rendezvous bench
  /// quantifies the trade.
  kReadRendezvous,
};

const char* ToString(ProtocolMode mode);

/// How the sender spreads chunks across the data rails when
/// StreamOptions::rails > 1.
enum class RailScheduler : std::uint8_t {
  kRoundRobin,           ///< cycle through sendable rails in index order
  kShortestOutstanding,  ///< rail with the fewest un-completed bytes
};

const char* ToString(RailScheduler scheduler);

struct StreamOptions {
  ProtocolMode mode = ProtocolMode::kDynamic;

  /// Capacity of the hidden circular receive buffer (per direction).
  std::uint64_t intermediate_buffer_bytes = 8 * kMiB;

  /// Send an ACK once this many bytes have been copied out of the buffer
  /// since the last ACK.  0 means intermediate_buffer_bytes / 8.  The
  /// buffer becoming empty always triggers an ACK.
  std::uint64_t ack_threshold_bytes = 0;

  /// Receive work requests pre-posted per side at connection setup — the
  /// credit pool for SENDs and RDMA-WRITE-WITH-IMMs (§II-B).
  std::uint32_t credits = 128;

  /// Upper bound on a single WWI chunk; 0 means unbounded.  Useful in
  /// tests to force sends to split.
  std::uint64_t max_wwi_chunk = 0;

  /// Data queue pairs ("rails") the connection stripes its chunk stream
  /// across.  1 (the default) is the classic single-QP protocol and is
  /// wire-byte-identical to it.  With N > 1, rail 0 carries control plus
  /// data and rails 1..N-1 carry data only; every chunk additionally
  /// carries a per-stream delivery sequence number so the receiver
  /// reassembles the exact submission order regardless of which rail each
  /// chunk rode (docs/PROTOCOL.md §10).  The effective count is the
  /// minimum of both endpoints' settings.  Ignored (clamped to 1) for
  /// SOCK_SEQPACKET and read-rendezvous sockets.
  std::uint32_t rails = 1;

  /// Rail choice policy when rails > 1.
  RailScheduler rail_scheduler = RailScheduler::kShortestOutstanding;

  /// Register send/receive buffers on first use instead of requiring an
  /// explicit RegisterMemory() call.
  bool auto_register_memory = true;

  /// Small-transfer coalescing (off by default).  When enabled, the sender
  /// stages consecutive small sends that would otherwise each pay a full
  /// WWI posting, and emits them as one merged WWI; the receiver
  /// piggybacks pending ACK free-counts onto outgoing ADVERTs so the
  /// steady-state indirect loop costs one control message instead of two.
  /// Per-send completion events and exact byte continuity are preserved.
  struct Coalesce {
    bool enabled = false;
    /// Staging capacity; only sends of at most this size are staged.
    std::uint64_t max_bytes = 4 * kKiB;
    /// Longest a staged byte may wait before the buffer is flushed.
    SimDuration max_delay = Microseconds(5);
    /// Fold pending ACK free-counts into outgoing ADVERTs.
    bool piggyback_acks = true;
  } coalesce;

  /// Fatal-fault recovery (off by default).  When enabled, the sender
  /// snapshots every submitted payload into a retransmission log pruned by
  /// the receiver's delivered-byte frontier (piggybacked on ACKs/ADVERTs),
  /// so a killed transport can be reconnected with Socket::ResumePair: the
  /// resume handshake re-synchronises both halves at the exact delivered
  /// boundary — not the completed-WR boundary, which Borrill's "completion
  /// fallacy" shows may lie beyond what ever arrived — and the sender
  /// replays the unacknowledged suffix.  Off, the protocol is bit-identical
  /// to pre-recovery builds (wire bytes, timing, and trace fingerprints).
  struct Recovery {
    bool enabled = false;
  } recovery;

  /// Test-only sabotage hooks proving the invariant checker can catch real
  /// protocol bugs (tests/invariant_checker_test.cpp, exs_torture
  /// --sabotage).  Each disables one safety rule the paper's theorem rests
  /// on; production code never sets them.
  struct Sabotage {
    /// Sender skips the Fig. 2/8 staleness filter and acceptance check: a
    /// prior-phase or behind-sequence ADVERT is consumed as if fresh.
    bool accept_stale_adverts = false;
    /// Receiver skips the Fig. 3 gate and advertises while the
    /// intermediate buffer still holds bytes.
    bool advertise_without_gate = false;
  } sabotage;

  std::uint64_t ResolvedAckThreshold() const {
    return ack_threshold_bytes != 0 ? ack_threshold_bytes
                                    : intermediate_buffer_bytes / 8;
  }
};

struct SendFlags {};

struct RecvFlags {
  /// MSG_WAITALL: complete only once the buffer is completely full.
  bool waitall = false;
};

enum class EventType : std::uint8_t {
  kSendComplete,
  kRecvComplete,
  /// The peer closed its sending direction; all stream data has been
  /// delivered.  Outstanding and future receives complete with whatever
  /// bytes they already hold (possibly zero) — classic end-of-stream.
  kPeerClosed,
  kError,
};

/// Completion event delivered on a socket's event queue, the asynchronous
/// half of the ES-API: requests return immediately and finish here.
struct Event {
  EventType type = EventType::kError;
  std::uint64_t id = 0;      ///< request id returned by Send()/Recv()
  std::uint64_t bytes = 0;   ///< bytes transferred
  bool truncated = false;    ///< SEQPACKET only: message exceeded the buffer
};

/// Counters the paper reports (Table III and the transfer-ratio figures)
/// plus supporting protocol detail.  Direction-specific: a socket has one
/// set for its outgoing stream ("tx") and the peer socket observes the
/// matching receiver-side counts for its incoming stream ("rx").
struct StreamStats {
  // Sender half (this socket's outgoing stream).
  std::uint64_t direct_transfers = 0;
  std::uint64_t indirect_transfers = 0;
  std::uint64_t direct_bytes = 0;
  std::uint64_t indirect_bytes = 0;
  /// Transitions between consecutive transfers of different kinds; starting
  /// with an indirect transfer counts as one switch (the connection begins
  /// in a direct phase).
  std::uint64_t mode_switches = 0;
  std::uint64_t adverts_received = 0;
  std::uint64_t adverts_discarded = 0;
  std::uint64_t sender_phase = 0;
  /// Coalescing: sends that passed through the staging buffer, the bytes
  /// they carried, and how many merged WWIs flushed them out.
  std::uint64_t coalesced_sends = 0;
  std::uint64_t coalesced_bytes = 0;
  std::uint64_t coalesce_flushes = 0;

  // Receiver half (this socket's incoming stream).
  std::uint64_t adverts_sent = 0;
  std::uint64_t acks_sent = 0;
  /// ACK free-counts that rode an outgoing ADVERT instead of their own
  /// control message (StreamOptions::Coalesce::piggyback_acks).
  std::uint64_t acks_piggybacked = 0;
  std::uint64_t credit_messages_sent = 0;
  std::uint64_t bytes_copied_out = 0;  ///< drained from intermediate buffer
  std::uint64_t direct_bytes_received = 0;
  std::uint64_t indirect_bytes_received = 0;
  std::uint64_t receiver_phase = 0;

  // Application-visible totals.
  std::uint64_t sends_completed = 0;
  std::uint64_t recvs_completed = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;

  std::uint64_t TotalTransfers() const {
    return direct_transfers + indirect_transfers;
  }
  double DirectTransferRatio() const {
    std::uint64_t total = TotalTransfers();
    return total == 0 ? 0.0
                      : static_cast<double>(direct_transfers) /
                            static_cast<double>(total);
  }
};

/// Phase parity per the paper: even phases are direct, odd are indirect.
constexpr bool PhaseIsDirect(std::uint64_t phase) { return (phase & 1) == 0; }
constexpr bool PhaseIsIndirect(std::uint64_t phase) { return (phase & 1) == 1; }
constexpr std::uint64_t NextPhase(std::uint64_t phase) { return phase + 1; }

}  // namespace exs
