// Public vocabulary of the EXS library: socket types, protocol modes,
// per-request flags, completion events, and statistics.
//
// Naming follows the paper: a connection's outgoing byte stream has a
// "sender" half (phase P_s, sequence S_s, remote-buffer view b_s, ADVERT
// queue q_A) and its incoming stream a "receiver" half (phase P_r,
// sequences S_r / S'_r, intermediate buffer b_r).  Both halves exist on
// both sockets — connections are full duplex.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace exs {

enum class SocketType {
  kStream,     ///< SOCK_STREAM: byte-stream semantics (the paper's subject)
  kSeqPacket,  ///< SOCK_SEQPACKET: message semantics (§II-C)
};

/// Transfer-selection policy.  The paper's evaluation compares the dynamic
/// algorithm against two forced baselines (§IV-B).
enum class ProtocolMode {
  kDynamic,       ///< switch between direct and indirect per conditions
  kDirectOnly,    ///< always wait for an ADVERT; never touch the buffer
  kIndirectOnly,  ///< receiver sends no ADVERTs; everything is buffered
  /// Receiver-driven alternative the paper chose *not* to use ("A similar
  /// RDMA READ operation works in the opposite direction, but is not used
  /// in our solution", §II-B): the sender exposes its source memory and
  /// the receiver pulls with RDMA READ.  Zero-copy and never waits for
  /// receive-side ADVERTs — but every transfer costs an extra wire
  /// crossing, which is ruinous over distance.  Implemented as a
  /// comparison engine (exs/rendezvous.hpp); the ext_rendezvous bench
  /// quantifies the trade.
  kReadRendezvous,
};

const char* ToString(ProtocolMode mode);

/// How the sender spreads chunks across the data rails when
/// StreamOptions::rails > 1.
enum class RailScheduler : std::uint8_t {
  kRoundRobin,           ///< cycle through sendable rails in index order
  kShortestOutstanding,  ///< rail with the fewest un-completed bytes
};

const char* ToString(RailScheduler scheduler);

struct StreamOptions {
  ProtocolMode mode = ProtocolMode::kDynamic;

  /// Capacity of the hidden circular receive buffer (per direction).
  std::uint64_t intermediate_buffer_bytes = 8 * kMiB;

  /// Send an ACK once this many bytes have been copied out of the buffer
  /// since the last ACK.  0 means intermediate_buffer_bytes / 8.  The
  /// buffer becoming empty always triggers an ACK.
  std::uint64_t ack_threshold_bytes = 0;

  /// Receive work requests pre-posted per side at connection setup — the
  /// credit pool for SENDs and RDMA-WRITE-WITH-IMMs (§II-B).
  std::uint32_t credits = 128;

  /// Upper bound on a single WWI chunk; 0 means unbounded.  Useful in
  /// tests to force sends to split.
  std::uint64_t max_wwi_chunk = 0;

  /// Data queue pairs ("rails") the connection stripes its chunk stream
  /// across.  1 (the default) is the classic single-QP protocol and is
  /// wire-byte-identical to it.  With N > 1, rail 0 carries control plus
  /// data and rails 1..N-1 carry data only; every chunk additionally
  /// carries a per-stream delivery sequence number so the receiver
  /// reassembles the exact submission order regardless of which rail each
  /// chunk rode (docs/PROTOCOL.md §10).  The effective count is the
  /// minimum of both endpoints' settings.  Ignored (clamped to 1) for
  /// SOCK_SEQPACKET and read-rendezvous sockets.
  std::uint32_t rails = 1;

  /// Rail choice policy when rails > 1.
  RailScheduler rail_scheduler = RailScheduler::kShortestOutstanding;

  /// Register send/receive buffers on first use instead of requiring an
  /// explicit RegisterMemory() call.
  bool auto_register_memory = true;

  /// Small-transfer coalescing (off by default).  When enabled, the sender
  /// stages consecutive small sends that would otherwise each pay a full
  /// WWI posting, and emits them as one merged WWI; the receiver
  /// piggybacks pending ACK free-counts onto outgoing ADVERTs so the
  /// steady-state indirect loop costs one control message instead of two.
  /// Per-send completion events and exact byte continuity are preserved.
  struct Coalesce {
    bool enabled = false;
    /// Staging capacity; only sends of at most this size are staged.
    std::uint64_t max_bytes = 4 * kKiB;
    /// Longest a staged byte may wait before the buffer is flushed.
    SimDuration max_delay = Microseconds(5);
    /// Fold pending ACK free-counts into outgoing ADVERTs.
    bool piggyback_acks = true;
  } coalesce;

  /// Hot-path batching (off by default; everything here is opt-in and the
  /// defaults are bit-identical to pre-batching builds).  Three
  /// independently armable pieces:
  ///   - doorbell batching: the WWIs one sender pump pass produces are
  ///     posted behind a single doorbell (QueuePair::PostSendBatch), so a
  ///     burst of small chunks pays one doorbell_cost plus per_wr_cost
  ///     each instead of send_wr_overhead each — the WR-bound-regime
  ///     optimisation (RDMAbox-style WR merging);
  ///   - sendv aggregation: the coalescing stage records staged members as
  ///     gather-list references instead of memcpy-ing them into a staging
  ///     buffer, and flushes them as one multi-SGE WWI — zero staging
  ///     copies on the coalesce path (requires coalesce.enabled; falls
  ///     back to staging copies while recovery is on, which needs an owned
  ///     snapshot anyway);
  ///   - MR registration cache: arms the device-level LRU cache
  ///     (verbs::Device::EnableMrCache) plus the registration cost model,
  ///     so Sendv slice registration and staging-buffer reuse hit warm
  ///     registrations instead of re-pinning.
  struct Batching {
    /// Post the chunks of one pump pass behind a single doorbell.
    bool doorbell = false;
    /// Bound on WRs per doorbell ring (the batch depth the benches sweep).
    std::uint32_t max_wrs = 8;
    /// Completions handed to this socket's channels per CPU pass — the
    /// ibv_poll_cq drain-loop idiom (verbs::CompletionQueue::
    /// SetDispatchBatch).  Per-event CPU still accrues per completion;
    /// what changes is that a drained clump's handlers run at one
    /// simulated instant, so the sends they trigger land in one doorbell
    /// batch.  1 (the default) keeps one-completion-per-pass dispatch,
    /// bit-identical to pre-batching builds.
    std::uint32_t cq_drain = 1;
    /// Coalesce by gather-list aggregation instead of staging copies.
    bool sendv_aggregation = false;
    /// Unpinned entries the device MR cache retains; 0 leaves it off.
    std::size_t mr_cache_entries = 0;
  } batching;

  /// Fatal-fault recovery (off by default).  When enabled, the sender
  /// snapshots every submitted payload into a retransmission log pruned by
  /// the receiver's delivered-byte frontier (piggybacked on ACKs/ADVERTs),
  /// so a killed transport can be reconnected with Socket::ResumePair: the
  /// resume handshake re-synchronises both halves at the exact delivered
  /// boundary — not the completed-WR boundary, which Borrill's "completion
  /// fallacy" shows may lie beyond what ever arrived — and the sender
  /// replays the unacknowledged suffix.  Off, the protocol is bit-identical
  /// to pre-recovery builds (wire bytes, timing, and trace fingerprints).
  struct Recovery {
    bool enabled = false;
  } recovery;

  /// Test-only sabotage hooks proving the invariant checker can catch real
  /// protocol bugs (tests/invariant_checker_test.cpp, exs_torture
  /// --sabotage).  Each disables one safety rule the paper's theorem rests
  /// on; production code never sets them.
  struct Sabotage {
    /// Sender skips the Fig. 2/8 staleness filter and acceptance check: a
    /// prior-phase or behind-sequence ADVERT is consumed as if fresh.
    bool accept_stale_adverts = false;
    /// Receiver skips the Fig. 3 gate and advertises while the
    /// intermediate buffer still holds bytes.
    bool advertise_without_gate = false;
  } sabotage;

  std::uint64_t ResolvedAckThreshold() const {
    return ack_threshold_bytes != 0 ? ack_threshold_bytes
                                    : intermediate_buffer_bytes / 8;
  }
};

struct SendFlags {};

struct RecvFlags {
  /// MSG_WAITALL: complete only once the buffer is completely full.
  bool waitall = false;
};

enum class EventType : std::uint8_t {
  kSendComplete,
  kRecvComplete,
  /// The peer closed its sending direction; all stream data has been
  /// delivered.  Outstanding and future receives complete with whatever
  /// bytes they already hold (possibly zero) — classic end-of-stream.
  kPeerClosed,
  kError,
};

/// Completion event delivered on a socket's event queue, the asynchronous
/// half of the ES-API: requests return immediately and finish here.
struct Event {
  EventType type = EventType::kError;
  std::uint64_t id = 0;      ///< request id returned by Send()/Recv()
  std::uint64_t bytes = 0;   ///< bytes transferred
  bool truncated = false;    ///< SEQPACKET only: message exceeded the buffer
};

/// Counters the paper reports (Table III and the transfer-ratio figures)
/// plus supporting protocol detail.  Direction-specific: a socket has one
/// set for its outgoing stream ("tx") and the peer socket observes the
/// matching receiver-side counts for its incoming stream ("rx").
struct StreamStats {
  // Sender half (this socket's outgoing stream).
  std::uint64_t direct_transfers = 0;
  std::uint64_t indirect_transfers = 0;
  std::uint64_t direct_bytes = 0;
  std::uint64_t indirect_bytes = 0;
  /// Transitions between consecutive transfers of different kinds; starting
  /// with an indirect transfer counts as one switch (the connection begins
  /// in a direct phase).
  std::uint64_t mode_switches = 0;
  std::uint64_t adverts_received = 0;
  std::uint64_t adverts_discarded = 0;
  std::uint64_t sender_phase = 0;
  /// Coalescing: sends that passed through the staging buffer, the bytes
  /// they carried, and how many merged WWIs flushed them out.
  std::uint64_t coalesced_sends = 0;
  std::uint64_t coalesced_bytes = 0;
  std::uint64_t coalesce_flushes = 0;
  /// Hot-path batching: doorbells rung through batched posting and the
  /// work requests they covered (tx side, all rails); vectored Sendv()
  /// calls; staging-buffer memcpys performed on the coalesce path (exactly
  /// 0 when sendv aggregation is active — the zero-copy witness); merged
  /// flushes emitted as one multi-SGE gather WWI.
  std::uint64_t doorbell_batches = 0;
  std::uint64_t batched_wrs = 0;
  std::uint64_t sendv_calls = 0;
  std::uint64_t coalesce_staging_copies = 0;
  std::uint64_t coalesce_sg_flushes = 0;
  /// MR registration traffic on the socket's device: actual registrations
  /// performed and pins served from the registration cache.
  std::uint64_t mr_registrations = 0;
  std::uint64_t mr_cache_hits = 0;

  // Receiver half (this socket's incoming stream).
  std::uint64_t adverts_sent = 0;
  std::uint64_t acks_sent = 0;
  /// ACK free-counts that rode an outgoing ADVERT instead of their own
  /// control message (StreamOptions::Coalesce::piggyback_acks).
  std::uint64_t acks_piggybacked = 0;
  std::uint64_t credit_messages_sent = 0;
  std::uint64_t bytes_copied_out = 0;  ///< drained from intermediate buffer
  std::uint64_t direct_bytes_received = 0;
  std::uint64_t indirect_bytes_received = 0;
  std::uint64_t receiver_phase = 0;

  // Application-visible totals.
  std::uint64_t sends_completed = 0;
  std::uint64_t recvs_completed = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;

  std::uint64_t TotalTransfers() const {
    return direct_transfers + indirect_transfers;
  }
  double DirectTransferRatio() const {
    std::uint64_t total = TotalTransfers();
    return total == 0 ? 0.0
                      : static_cast<double>(direct_transfers) /
                            static_cast<double>(total);
  }
};

/// Phase parity per the paper: even phases are direct, odd are indirect.
constexpr bool PhaseIsDirect(std::uint64_t phase) { return (phase & 1) == 0; }
constexpr bool PhaseIsIndirect(std::uint64_t phase) { return (phase & 1) == 1; }
constexpr std::uint64_t NextPhase(std::uint64_t phase) { return phase + 1; }

}  // namespace exs
