// Receiver-driven rendezvous: the RDMA READ alternative the paper
// deliberately did not use (§II-B).
//
// Protocol per direction of the byte stream:
//
//   sender:    exs_send() -> SRC-ADVERT { addr, rkey, len } and wait;
//   receiver:  match source advertisements against pending receives FIFO,
//              pull each span with RDMA READ straight into user memory,
//              and send READ-DONE once a source is fully consumed;
//   sender:    READ-DONE completes the exs_send (memory reusable).
//
// Like the dynamic protocol's direct path this is zero-copy, and like the
// indirect path the sender never stalls waiting for receive-side
// ADVERTs.  The price is wire crossings: data arrives only after
// SRC-ADVERT (half trip) plus a full READ round trip, and the sender's
// completion waits yet another crossing — which is exactly why a
// WAN-oriented stream library prefers sender-driven WRITEs.  The
// ext_rendezvous bench measures the trade on both fabrics.
#pragma once

#include <cstdint>
#include <deque>

#include "exs/channel.hpp"
#include "exs/event_queue.hpp"
#include "exs/stream.hpp"
#include "exs/types.hpp"
#include "exs/wire.hpp"

namespace exs {

class RendezvousTx {
 public:
  explicit RendezvousTx(StreamContext ctx) : ctx_(std::move(ctx)) {}

  /// `rkey` names the registered region covering the source bytes — the
  /// peer reads them remotely.
  void Submit(std::uint64_t id, const void* buf, std::uint64_t len,
              std::uint32_t rkey);
  void OnReadDone(std::uint64_t bytes);  ///< READ-DONE control message
  void OnCreditAvailable() { Pump(); }
  void RequestShutdown();
  bool ShutdownRequested() const { return shutdown_requested_; }

  std::uint64_t sequence() const { return seq_; }
  bool Quiescent() const { return unadvertised_.empty() && awaiting_.empty(); }

 private:
  struct PendingSend {
    std::uint64_t id = 0;
    std::uint64_t addr = 0;
    std::uint64_t len = 0;
    std::uint64_t done = 0;  ///< bytes the peer has confirmed reading
    std::uint32_t rkey = 0;
  };

  void Pump();

  StreamContext ctx_;
  std::uint64_t seq_ = 0;
  std::deque<PendingSend> unadvertised_;
  std::deque<PendingSend> awaiting_;  ///< advertised, not fully READ-DONE
  bool shutdown_requested_ = false;
  bool shutdown_sent_ = false;
};

class RendezvousRx {
 public:
  explicit RendezvousRx(StreamContext ctx) : ctx_(std::move(ctx)) {}

  /// `lkey` covers the destination buffer — READ responses land there.
  void Submit(std::uint64_t id, void* buf, std::uint64_t len,
              std::uint32_t lkey, bool waitall);
  void OnSrcAdvert(const wire::ControlMessage& msg);
  void OnReadComplete(std::uint64_t wr_id, std::uint64_t bytes);
  void OnCreditAvailable() {
    FlushDones();
    PumpReads();
  }
  void OnShutdown();
  bool PeerClosed() const { return peer_closed_; }

  std::uint64_t sequence() const { return seq_; }
  bool Quiescent() const {
    return pending_.empty() && sources_.empty() && outstanding_reads_ == 0;
  }

 private:
  struct PendingRecv {
    std::uint64_t id = 0;
    std::uint64_t addr = 0;
    std::uint64_t len = 0;
    std::uint64_t filled = 0;    ///< bytes landed (reads completed)
    std::uint64_t claimed = 0;   ///< bytes covered by issued reads
    std::uint32_t lkey = 0;
    bool waitall = false;
  };
  struct Source {
    std::uint64_t addr = 0;
    std::uint64_t len = 0;
    std::uint64_t claimed = 0;   ///< bytes covered by issued reads
    std::uint64_t completed = 0; ///< bytes whose reads finished
    std::uint32_t rkey = 0;
  };

  /// Issue READs covering min(head receive space, head source remainder).
  void PumpReads();
  /// Send queued READ-DONE confirmations as credits allow.
  void FlushDones();
  void MaybeFinishEof();

  StreamContext ctx_;
  std::uint64_t seq_ = 0;
  std::uint64_t adverts_seen_seq_ = 0;  ///< ordering check on SRC-ADVERTs
  std::deque<PendingRecv> pending_;
  std::deque<Source> sources_;
  std::deque<std::uint64_t> done_queue_;
  std::uint32_t outstanding_reads_ = 0;
  std::uint64_t next_read_id_ = 1;
  bool peer_closed_ = false;
  bool eof_delivered_ = false;
};

}  // namespace exs
