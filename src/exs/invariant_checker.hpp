// Trace-replay invariant checker: the paper's safety theorem, validated
// against what actually happened on every run.
//
// The PR-1 lemma validators (exs/trace.hpp) check the statements of §IV-A
// event by event.  This layer builds on them with the *stateful* facts the
// safety proof rests on — reconstructed by replaying the TraceLog:
//
//   truncation    — a TraceLog that dropped events is refused outright
//                   (a partial trace can hide exactly the violation being
//                   hunted), with a diagnostic naming the remedy;
//   staleness     — an accepted ADVERT never carries a phase below the
//                   sender's (no stale-sequence acceptance, Fig. 8);
//   continuity    — posted/arrived/copied byte sequences advance by
//                   exactly the event's length, gap-free and overlap-free;
//   occupancy     — the intermediate buffer, replayed from indirect
//                   arrivals and copy-outs, never exceeds its capacity
//                   nor goes negative, and is *empty* at every ADVERT
//                   send and direct arrival — the observable form of
//                   "a direct transfer always lands at the head of the
//                   receive queue" (Theorem 1).
//
// CheckConnection() dispatches on socket type: SOCK_SEQPACKET traces are
// checked against the simpler §II-C rules (no phases, no indirect path,
// ordered loss-free ADVERT counters).
//
// TraceFingerprint() hashes every recorded field of a trace; the torture
// harness compares fingerprints across replays to prove byte-for-byte
// determinism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/spans.hpp"
#include "exs/rpc/ledger.hpp"
#include "exs/trace.hpp"
#include "exs/types.hpp"

namespace exs {

class MuxGroup;
class Socket;

struct InvariantCheckOptions {
  /// Capacity of the receiver's intermediate ring, for the occupancy
  /// bound.  0 disables the upper-bound check (occupancy is still
  /// replayed for the emptiness rules).
  std::uint64_t rx_ring_capacity = 0;
  /// Accept a truncated trace and check the retained prefix instead of
  /// reporting the truncation as a violation.  Off by default: silent
  /// partial validation is how real bugs slip through.
  bool allow_truncated = false;
  /// Rails the connection striped across (StreamOptions::rails after
  /// negotiation).  Above 1 the posted/arrived events carry
  /// (stripe_seq, rail) in their msg_seq/msg_phase fields and three extra
  /// rule sets activate: sender stripe numbering is dense, receiver
  /// processing follows the stripe order exactly, and each rail's arrival
  /// list is a prefix of what was posted on it.
  std::uint32_t rails = 1;
};

/// Outcome of replaying one or more traces through the checker.
struct InvariantReport {
  std::vector<std::string> violations;
  /// Non-fatal caveats about the *scope* of the check — most importantly
  /// "this trace was truncated by its capacity, only the retained prefix
  /// was validated".  A run with warnings still passes ok(), but silent
  /// partial validation is exactly how bugs hide, so Summary() surfaces
  /// them and harnesses are expected to print it.
  std::vector<std::string> warnings;
  std::uint64_t events_checked = 0;
  std::uint64_t dropped_events = 0;

  bool ok() const { return violations.empty(); }
  std::string Summary() const;
  void Merge(const InvariantReport& other);
};

/// Check the sender half of a stream connection (a socket's tx_trace).
InvariantReport CheckStreamSenderTrace(const TraceLog& log,
                                       const InvariantCheckOptions& opts = {});

/// Check the receiver half of a stream connection (a socket's rx_trace).
InvariantReport CheckStreamReceiverTrace(
    const TraceLog& log, const InvariantCheckOptions& opts = {});

/// Check one stream direction end to end: the sender trace of one socket
/// against the receiver trace of its peer.
InvariantReport CheckStreamPair(const TraceLog& sender_log,
                                const TraceLog& receiver_log,
                                const InvariantCheckOptions& opts = {});

/// SOCK_SEQPACKET counterparts (§II-C rules).
InvariantReport CheckSeqPacketSenderTrace(
    const TraceLog& log, const InvariantCheckOptions& opts = {});
InvariantReport CheckSeqPacketReceiverTrace(
    const TraceLog& log, const InvariantCheckOptions& opts = {});
InvariantReport CheckSeqPacketPair(const TraceLog& sender_log,
                                   const TraceLog& receiver_log,
                                   const InvariantCheckOptions& opts = {});

/// Options for the engine's shared-pool conservation check.
struct PoolCheckOptions {
  /// Total bytes in the shared indirect slab all leases were carved from.
  /// 0 disables the aggregate bound (per-stream rules still apply).
  std::uint64_t pool_capacity_bytes = 0;
  /// Bytes of each per-stream ring lease.  0 disables the per-stream
  /// occupancy bound (conservation and non-negativity still apply).
  std::uint64_t lease_bytes = 0;
  /// Accept truncated traces (see InvariantCheckOptions::allow_truncated).
  bool allow_truncated = false;
};

/// Engine pool conservation: replay the receiver traces of every socket
/// leasing from one shared BufferPool and check that
///   (a) each stream's ring occupancy (indirect arrivals minus copy-outs)
///       never goes negative and never exceeds its lease, and
///   (b) the summed occupancy across all streams never exceeds the pool —
///       receiver memory really is O(pool), not O(streams).
/// Cross-log events are merged by timestamp with drains credited before
/// fills at equal times (the conservative order: it cannot manufacture a
/// false overshoot).
InvariantReport CheckPoolConservation(
    const std::vector<const TraceLog*>& receiver_logs,
    const PoolCheckOptions& opts = {});

/// Check both directions of a connected socket pair.  Requires tracing to
/// have been enabled on both sockets (reported as a violation otherwise);
/// ring capacities are taken from the sockets themselves.  Dispatches on
/// the sockets' type.  For stream sockets, additionally audits hot-path
/// batching conservation per send rail from verbs-layer ground truth:
/// summed SGE lengths equal wire payload for every posted WR, batched-WR
/// and doorbell counts balance, and no WR sits behind an un-rung doorbell
/// at quiescence (docs/PROTOCOL.md §14).
InvariantReport CheckConnection(Socket& a, Socket& b);

/// Shared-QP multiplexing conservation (exs/mux.hpp), checked on a
/// *quiescent* connected group pair — call only when no messages are in
/// flight (the simulator's event queue drained):
///   (a) every data WWI one group posted is accounted at its peer as
///       delivered, epoch-stale, or orphaned — nothing vanishes inside the
///       mux layer (both directions);
///   (b) per-stream continuity: for every live stream pair in the same
///       epoch, the sender's tx_seq equals the receiver's rx_expect (the
///       shared QP's FIFO preserved each stream's subsequence), and no
///       data WWIs remain outstanding;
///   (c) per-slot §II-B credit conservation across the mux layer: each
///       side's view of its peer slot's credits plus the credits the peer
///       still owes equals the slot's pre-posted pool — multiplexing
///       borrows the window, it never mints or leaks credits.
InvariantReport CheckMuxGroupPair(const MuxGroup& a, const MuxGroup& b);

/// Stage-attribution conservation (causal chunk tracing, common/spans.hpp):
/// every delivered chunk record must carry a complete, monotonically
/// ordered set of stage timestamps, and the seven stage durations must sum
/// to the end-to-end latency within `slack_ps` (one engine tick quantum in
/// engine-driven runs, 0 elsewhere).  The stages partition [submit,
/// deliver] by construction, so any discrepancy means an instrumentation
/// site was skipped or stamped out of order — the observability analogue
/// of the byte-continuity rules above.
InvariantReport CheckSpanConservation(const spans::SpanCollector& collector,
                                      SimDuration slack_ps = 0);

/// RPC request/response conservation (src/exs/rpc/), audited at
/// quiescence over the clients' ledgers and (optionally) the server's
/// counters:
///   (a) exactly-one-outcome: every issued request carries exactly one
///       terminal outcome — answered, timed out, or refused; a pending
///       request at quiescence is a *lost* request, and an outcome
///       recorded twice (even agreeing) is a double resolution — the
///       ledger counts attempts precisely so forged duplicates convict;
///   (b) wire conservation against the server: requests received equal
///       requests issued minus the ones shed client-side before touching
///       the wire, and responses sent equal the responses the clients
///       accounted — answered + remotely-refused + stale (a post-timeout
///       answer is counted, never re-resolved);
///   (c) the server's own split holds: responses == answered + refused.
InvariantReport CheckRpcConservation(
    const std::vector<const rpc::RpcLedger*>& clients,
    const rpc::RpcServerCounters* server = nullptr);

/// Order-sensitive FNV-1a hash over every recorded field of the trace.
/// Two runs with identical protocol behaviour produce identical
/// fingerprints — the determinism witness used by the replay harness.
/// (No addresses are traced, so fingerprints are stable across processes.)
std::uint64_t TraceFingerprint(const TraceLog& log);

/// Combined fingerprint of all four logs of a connected pair.
std::uint64_t ConnectionFingerprint(const Socket& a, const Socket& b);

}  // namespace exs
