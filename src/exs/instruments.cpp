#include "exs/instruments.hpp"

namespace exs {

SocketInstruments SocketInstruments::Create(metrics::Registry& registry) {
  SocketInstruments inst;

  inst.sends_completed = &registry.GetCounter("tx.sends_completed", "ops");
  inst.bytes_sent = &registry.GetCounter("tx.bytes_sent", "bytes");
  inst.direct_transfers = &registry.GetCounter("tx.direct_transfers", "transfers");
  inst.indirect_transfers =
      &registry.GetCounter("tx.indirect_transfers", "transfers");
  inst.direct_bytes = &registry.GetCounter("tx.direct_bytes", "bytes");
  inst.indirect_bytes = &registry.GetCounter("tx.indirect_bytes", "bytes");
  inst.mode_switches = &registry.GetCounter("tx.mode_switches", "switches");
  inst.adverts_received = &registry.GetCounter("tx.adverts_received", "messages");
  inst.adverts_discarded =
      &registry.GetCounter("tx.adverts_discarded", "messages");
  inst.tx_phase = &registry.GetGauge("tx.phase", "phase");
  inst.tx_phase_dwell_direct =
      &registry.GetHistogram("tx.phase_dwell_direct", "ps");
  inst.tx_phase_dwell_indirect =
      &registry.GetHistogram("tx.phase_dwell_indirect", "ps");
  inst.tx_inflight_wwis = &registry.GetSeries("tx.inflight_wwis", "wrs");
  inst.tx_remote_ring_used = &registry.GetSeries("tx.remote_ring_used", "bytes");
  inst.coalesced_sends = &registry.GetCounter("tx.coalesced_sends", "ops");
  inst.coalesced_bytes = &registry.GetCounter("tx.coalesced_bytes", "bytes");
  inst.coalesce_flush_maxbytes =
      &registry.GetCounter("tx.coalesce_flush_maxbytes", "flushes");
  inst.coalesce_flush_timeout =
      &registry.GetCounter("tx.coalesce_flush_timeout", "flushes");
  inst.coalesce_flush_advert =
      &registry.GetCounter("tx.coalesce_flush_advert", "flushes");
  inst.coalesce_flush_phase =
      &registry.GetCounter("tx.coalesce_flush_phase", "flushes");
  inst.coalesce_flush_close =
      &registry.GetCounter("tx.coalesce_flush_close", "flushes");
  inst.coalesce_flush_ordering =
      &registry.GetCounter("tx.coalesce_flush_ordering", "flushes");
  inst.doorbell_batches = &registry.GetCounter("doorbell.batches", "doorbells");
  inst.doorbell_wrs = &registry.GetCounter("doorbell.wrs_batched", "wrs");
  inst.sendv_calls = &registry.GetCounter("tx.sendv_calls", "ops");
  inst.coalesce_staging_copies =
      &registry.GetCounter("tx.coalesce_staging_copies", "copies");
  inst.coalesce_sg_flushes =
      &registry.GetCounter("tx.coalesce_sg_flushes", "flushes");
  inst.mr_registrations = &registry.GetCounter("mr.registrations", "regions");
  inst.mr_cache_hits = &registry.GetCounter("mr.cache_hits", "pins");

  inst.recvs_completed = &registry.GetCounter("rx.recvs_completed", "ops");
  inst.bytes_received = &registry.GetCounter("rx.bytes_received", "bytes");
  inst.adverts_sent = &registry.GetCounter("rx.adverts_sent", "messages");
  inst.acks_sent = &registry.GetCounter("rx.acks_sent", "messages");
  inst.acks_piggybacked =
      &registry.GetCounter("rx.acks_piggybacked", "messages");
  inst.direct_bytes_received =
      &registry.GetCounter("rx.direct_bytes_received", "bytes");
  inst.indirect_bytes_received =
      &registry.GetCounter("rx.indirect_bytes_received", "bytes");
  inst.bytes_copied_out = &registry.GetCounter("rx.bytes_copied_out", "bytes");
  inst.copy_busy_time = &registry.GetCounter("rx.copy_busy_time", "ps");
  inst.advert_rtt = &registry.GetHistogram("rx.advert_rtt", "ps");
  inst.rx_phase = &registry.GetGauge("rx.phase", "phase");
  inst.rx_phase_dwell_direct =
      &registry.GetHistogram("rx.phase_dwell_direct", "ps");
  inst.rx_phase_dwell_indirect =
      &registry.GetHistogram("rx.phase_dwell_indirect", "ps");
  inst.rx_ring_occupancy = &registry.GetSeries("rx.ring_occupancy", "bytes");

  inst.send_credits = &registry.GetSeries("channel.send_credits", "credits");
  inst.credit_messages_sent =
      &registry.GetCounter("channel.credit_messages_sent", "messages");

  inst.transport_kills =
      &registry.GetCounter("recovery.transport_kills", "kills");
  inst.resumes = &registry.GetCounter("recovery.resumes", "resumes");
  inst.retransmitted_bytes =
      &registry.GetCounter("recovery.retransmitted_bytes", "bytes");
  inst.resume_latency = &registry.GetHistogram("recovery.resume_latency", "ps");

  return inst;
}

}  // namespace exs
