// Pre-resolved protocol instruments — the socket's single source of truth
// for every counter the paper reports (Table III, the transfer-ratio
// figures) plus the time-resolved signals its evaluation reasons about:
// ADVERT round trips, phase dwell, intermediate-buffer pressure, credit
// and in-flight WR depth, and copy-out cost.
//
// The hot paths (stream_tx/stream_rx/seqpacket/rendezvous/channel) poke
// these pointers directly; Socket::stats() folds the registry back into
// the legacy StreamStats snapshot, so there is exactly one place a number
// can come from.  Metric names, units, and the paper artefact each one
// explains are catalogued in docs/OBSERVABILITY.md.
#pragma once

#include "common/metrics.hpp"

namespace exs {

struct SocketInstruments {
  // Sender half (this socket's outgoing stream).
  metrics::Counter* sends_completed = nullptr;
  metrics::Counter* bytes_sent = nullptr;
  metrics::Counter* direct_transfers = nullptr;
  metrics::Counter* indirect_transfers = nullptr;
  metrics::Counter* direct_bytes = nullptr;
  metrics::Counter* indirect_bytes = nullptr;
  metrics::Counter* mode_switches = nullptr;
  metrics::Counter* adverts_received = nullptr;
  metrics::Counter* adverts_discarded = nullptr;
  metrics::Gauge* tx_phase = nullptr;
  metrics::Histogram* tx_phase_dwell_direct = nullptr;    ///< ps per phase
  metrics::Histogram* tx_phase_dwell_indirect = nullptr;  ///< ps per phase
  metrics::TimeWeightedSeries* tx_inflight_wwis = nullptr;
  metrics::TimeWeightedSeries* tx_remote_ring_used = nullptr;  ///< b_s view
  // Coalescing (StreamOptions::coalesce): staged sends/bytes and flushes
  // broken down by trigger (CoalesceFlushReason).
  metrics::Counter* coalesced_sends = nullptr;
  metrics::Counter* coalesced_bytes = nullptr;
  metrics::Counter* coalesce_flush_maxbytes = nullptr;
  metrics::Counter* coalesce_flush_timeout = nullptr;
  metrics::Counter* coalesce_flush_advert = nullptr;
  metrics::Counter* coalesce_flush_phase = nullptr;
  metrics::Counter* coalesce_flush_close = nullptr;
  metrics::Counter* coalesce_flush_ordering = nullptr;
  // Hot-path batching (StreamOptions::batching): doorbells rung through
  // batched posting and the WRs they covered; vectored Sendv() calls;
  // staging-buffer memcpys on the coalesce path (exactly 0 while sendv
  // aggregation is active — the zero-copy witness); flushes emitted as one
  // multi-SGE gather WWI instead of a staged copy.
  metrics::Counter* doorbell_batches = nullptr;
  metrics::Counter* doorbell_wrs = nullptr;
  metrics::Counter* sendv_calls = nullptr;
  metrics::Counter* coalesce_staging_copies = nullptr;
  metrics::Counter* coalesce_sg_flushes = nullptr;
  // MR registration traffic on the socket's device (mirrored from
  // verbs::Device counters: actual registrations vs cache-served pins).
  metrics::Counter* mr_registrations = nullptr;
  metrics::Counter* mr_cache_hits = nullptr;

  // Receiver half (this socket's incoming stream).
  metrics::Counter* recvs_completed = nullptr;
  metrics::Counter* bytes_received = nullptr;
  metrics::Counter* adverts_sent = nullptr;
  metrics::Counter* acks_sent = nullptr;
  metrics::Counter* acks_piggybacked = nullptr;  ///< ACKs riding ADVERTs
  metrics::Counter* direct_bytes_received = nullptr;
  metrics::Counter* indirect_bytes_received = nullptr;
  metrics::Counter* bytes_copied_out = nullptr;
  metrics::Counter* copy_busy_time = nullptr;  ///< ps the CPU spent copying
  metrics::Histogram* advert_rtt = nullptr;    ///< ADVERT -> first direct byte
  metrics::Gauge* rx_phase = nullptr;
  metrics::Histogram* rx_phase_dwell_direct = nullptr;
  metrics::Histogram* rx_phase_dwell_indirect = nullptr;
  metrics::TimeWeightedSeries* rx_ring_occupancy = nullptr;  ///< b_r

  // Control channel (shared by both halves).
  metrics::TimeWeightedSeries* send_credits = nullptr;
  metrics::Counter* credit_messages_sent = nullptr;

  // Fatal-fault recovery (StreamOptions::recovery; docs/FAULTS.md).
  metrics::Counter* transport_kills = nullptr;   ///< fatal transport deaths
  metrics::Counter* resumes = nullptr;           ///< successful resumes
  metrics::Counter* retransmitted_bytes = nullptr;  ///< re-sent after resume
  metrics::Histogram* resume_latency = nullptr;  ///< ps, kill -> resume

  /// Create (or re-resolve) every instrument in `registry`.
  static SocketInstruments Create(metrics::Registry& registry);
};

}  // namespace exs
