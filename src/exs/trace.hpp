// Protocol tracing and runtime verification of the paper's lemmas.
//
// When enabled on a socket, every protocol-relevant action — ADVERTs sent,
// received, accepted and discarded; direct and indirect transfers posted
// and arriving; copies; ACKs; phase changes — is recorded with its
// timestamp and the live sequence/phase values.  The validators below then
// check the statements the paper *proves* (§IV-A) against what actually
// happened:
//
//   Lemma 1  — every ADVERT carries a direct (even) phase number;
//   Lemma 2  — between indirect arrivals, all ADVERTs carry one phase;
//   Lemma 3  — a direct sender phase implies the most recent transfer
//              was direct;
//   Lemma 4  — an ADVERT accepted while the sender is direct carries
//              exactly the sender's phase;
//   plus the monotonicity and sequence-continuity facts the proofs use.
//
// This is cheaper than it sounds and is exercised by randomized property
// tests: a protocol change that falsifies a lemma fails those sweeps even
// if no byte happens to be misdelivered in the sampled runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/units.hpp"

namespace exs {

enum class TraceEventType : std::uint8_t {
  // Sender-side (outgoing stream).
  kAdvertReceived,
  kAdvertAccepted,
  kAdvertDiscarded,
  kDirectPosted,
  kIndirectPosted,
  kSenderPhaseChanged,
  kAckReceived,
  // Receiver-side (incoming stream).
  kAdvertSent,
  kDirectArrived,
  kIndirectArrived,
  kCopyOut,
  kAckSent,
  kReceiverPhaseChanged,
  // Coalescing (appended so earlier numeric values — and with them any
  // recorded golden fingerprints — stay stable).
  kSendStaged,       ///< sender: a small send entered the staging buffer
  kCoalesceFlushed,  ///< sender: staged bytes merged into one queued WWI
                     ///< (len = merged bytes, msg_seq = member count,
                     ///<  msg_phase = CoalesceFlushReason)
  kAckPiggybacked,   ///< receiver: ACK count folded into an ADVERT
  kZeroLengthSend,   ///< sender: zero-length Submit (completes instantly)
  // Fatal-fault recovery (appended — earlier values stay stable).
  kTransportKilled,  ///< either half: the transport entered the error state
  kResumeTx,         ///< sender resumed: seq = delivered frontier it rewound
                     ///< to, len = frontier, msg_phase = resume phase
  kResumeRx,         ///< receiver resumed: seq = S_r at resume, len =
                     ///< delivered frontier, msg_phase = resume phase
};

const char* ToString(TraceEventType type);

/// Why a coalescing staging buffer was flushed; recorded in the msg_phase
/// field of kCoalesceFlushed events and counted per reason in the metrics
/// registry (tx.coalesce_flush_*).
enum class CoalesceFlushReason : std::uint8_t {
  kMaxBytes,     ///< staging buffer filled (or a stage would overflow it)
  kTimeout,      ///< Coalesce::max_delay expired
  kAdvert,       ///< an ADVERT arrived — merged bytes may now go direct
  kPhaseChange,  ///< the sender phase advanced with bytes still staged
  kClose,        ///< Close(): the SHUTDOWN must trail all staged data
  kOrdering,     ///< a non-eligible send arrived; staged bytes go first
};

const char* ToString(CoalesceFlushReason reason);

struct TraceEvent {
  SimTime time = 0;
  TraceEventType type = TraceEventType::kAdvertSent;
  /// Local sequence number (S_s or S_r) when the event was recorded.
  std::uint64_t seq = 0;
  /// Local phase (P_s or P_r) when the event was recorded.
  std::uint64_t phase = 0;
  /// Event payload: transfer/copy length, or the ADVERT's length.
  std::uint64_t len = 0;
  /// ADVERT events: the sequence number carried in the message.
  std::uint64_t msg_seq = 0;
  /// ADVERT events: the phase carried in the message.
  std::uint64_t msg_phase = 0;
};

class TraceLog {
 public:
  /// Tracing is off until enabled; recording to a disabled log is a no-op.
  void Enable() { enabled_ = true; }
  bool enabled() const { return enabled_; }

  /// Bound the log to `capacity` events (0 = unbounded, the default).
  /// Once full, further events are counted in dropped() and discarded, so
  /// the retained prefix stays contiguous — the lemma validators remain
  /// sound on a truncated log, they just see a shorter run.
  void SetCapacity(std::size_t capacity) { capacity_ = capacity; }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Mirror the capacity-drop count into a registry counter so truncation
  /// is visible in metrics snapshots (JSON/CSV), not only to code that
  /// polls dropped().  May be null to detach.
  void SetDropCounter(metrics::Counter* counter) { drop_counter_ = counter; }

  void Record(const TraceEvent& event) {
    if (!enabled_) return;
    if (capacity_ != 0 && events_.size() >= capacity_) {
      ++dropped_;
      if (drop_counter_ != nullptr) drop_counter_->Increment();
      return;
    }
    events_.push_back(event);
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// Human-readable dump (debugging aid and example output).
  std::string Format() const;

 private:
  bool enabled_ = false;
  std::size_t capacity_ = 0;
  std::uint64_t dropped_ = 0;
  metrics::Counter* drop_counter_ = nullptr;
  std::vector<TraceEvent> events_;
};

/// Result of checking one run's traces against the paper's statements.
struct TraceCheckResult {
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

/// Validate a *sender-side* trace (the outgoing half of one socket).
TraceCheckResult ValidateSenderTrace(const std::vector<TraceEvent>& events);

/// Validate a *receiver-side* trace (the incoming half of one socket).
TraceCheckResult ValidateReceiverTrace(const std::vector<TraceEvent>& events);

/// Validate the pair: sender trace of one socket against the receiver
/// trace of its peer (cross-checks byte totals and phase agreement).
TraceCheckResult ValidateConnectionTraces(
    const std::vector<TraceEvent>& sender_events,
    const std::vector<TraceEvent>& receiver_events);

}  // namespace exs
