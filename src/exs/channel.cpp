#include "exs/channel.hpp"

#include "common/check.hpp"
#include "common/logging.hpp"
#include "verbs/srq.hpp"

namespace exs {

ControlChannel::ControlChannel(verbs::Device& device, std::uint32_t credits,
                               ControlSlotSource* shared_slots,
                               bool slots_pre_reserved)
    : device_(&device),
      credits_(credits),
      shared_slots_(shared_slots),
      send_cq_(device.CreateCompletionQueue()),
      recv_cq_(device.CreateCompletionQueue()),
      slab_(shared_slots == nullptr
                ? static_cast<std::size_t>(credits) * wire::kControlSlotBytes
                : 0) {
  EXS_CHECK_MSG(credits >= 4, "credit pool too small to make progress");
  EXS_CHECK_MSG(credits <= 65535,
                "credit pool exceeds the 16-bit wire credit_return field");
  EXS_CHECK_MSG(shared_slots != nullptr || !slots_pre_reserved,
                "a slot reservation needs a pool to be reserved against");
  if (shared_slots_ == nullptr) {
    slab_mr_ = device.RegisterMemory(slab_.data(), slab_.size());
  } else {
    slots_liveness_ = shared_slots_->LivenessToken();
    // Adopting an admission-time reservation here (not at Connect) keeps
    // the refund correct even if the channel is torn down before it was
    // ever wired.
    slots_reserved_ = slots_pre_reserved;
  }
  send_cq_->SetHandler(
      [this](const verbs::WorkCompletion& wc) { OnSendCompletion(wc); });
  recv_cq_->SetHandler(
      [this](const verbs::WorkCompletion& wc) { OnRecvCompletion(wc); });
}

ControlChannel::~ControlChannel() {
  // Refund the slot reservation — unless the pool itself is already gone
  // (accepted sockets are owned by the ConnectionService and routinely
  // outlive the acceptor that admitted them).
  if (shared_slots_ != nullptr && slots_reserved_ &&
      !slots_liveness_.expired()) {
    shared_slots_->UnreserveSlots(credits_);
  }
}

void ControlChannel::Connect(ControlChannel& a, ControlChannel& b) {
  if (a.qp_ != nullptr || b.qp_ != nullptr) {
    // Reconnect path: only a pair of dead channels may be re-wired, and
    // both must reset together so the credit grants below stay symmetric.
    EXS_CHECK_MSG(a.qp_ != nullptr && b.qp_ != nullptr && a.dead_ && b.dead_,
                  "Connect on live channels — kill both before reconnecting");
    a.ResetForResume();
    b.ResetForResume();
  }
  a.qp_ = std::make_unique<verbs::QueuePair>(*a.device_, *a.send_cq_,
                                             *a.recv_cq_);
  b.qp_ = std::make_unique<verbs::QueuePair>(*b.device_, *b.send_cq_,
                                             *b.recv_cq_);
  verbs::QueuePair::ConnectPair(*a.qp_, *b.qp_);
  a.qp_->SetInstruments(a.qp_inst_);
  b.qp_->SetInstruments(b.qp_inst_);
  a.qp_->SetErrorHandler([ch = &a](verbs::WcStatus s) { ch->MarkDead(s); });
  b.qp_->SetErrorHandler([ch = &b](verbs::WcStatus s) { ch->MarkDead(s); });
  // Pre-post the full pool on both sides before any traffic (§II-B: "each
  // side will post n RECV transactions at startup, prior to connection
  // establishment") and grant the matching credits to the peer.  An
  // SRQ-mode side posts nothing of its own — its grant is covered by a
  // reservation against the shared pool, whose receives were posted when
  // the pool was built (the acceptor's admission control guarantees the
  // reservation fits, so the check here cannot fire on an accepted path).
  a.AttachReceivePool();
  b.AttachReceivePool();
  a.remote_credits_ = b.credits_;
  b.remote_credits_ = a.credits_;
  a.SampleCredits();
  b.SampleCredits();
}

void ControlChannel::MarkDead(verbs::WcStatus reason) {
  dead_ = true;
  // Unposted batched WRs flush into the (now error-state) queue pair: each
  // gets an immediate flush completion, keeping outstanding_wrs_ sound.
  FlushSendBatch();
  if (fatal_notified_) return;
  fatal_notified_ = true;
  if (callbacks_.on_fatal) callbacks_.on_fatal(reason);
}

bool ControlChannel::Kill() {
  if (dead_) return false;  // already dead: killing again is a no-op
  if (qp_ != nullptr && !qp_->killed()) {
    qp_->Kill();  // the error handler marks us dead synchronously
  } else {
    MarkDead(verbs::WcStatus::kWrFlushError);  // never connected
  }
  return true;
}

void ControlChannel::ResetForResume() {
  // Park the dead QP instead of destroying it: scheduler closures it
  // captured (guarded transmits, in-flight flush completions) must stay
  // safe to run.  Its late completions fail the wc.qp identity check.
  dead_qps_.push_back(std::move(qp_));
  dead_ = false;
  fatal_notified_ = false;
  hold_until_ = 0;
  pending_wrs_.clear();  // MarkDead already flushed; belt and braces
  deferred_.clear();
  owed_credits_ = 0;
  remote_credits_ = 0;
  outstanding_wrs_ = 0;
  SampleInflightWrs();
}

void ControlChannel::AttachReceivePool() {
  if (shared_slots_ != nullptr) {
    qp_->SetSharedReceiveQueue(&shared_slots_->srq());
    // The acceptor path reserves at admission (atomically with the
    // admission check) and arrives here with the reservation already
    // adopted; only channels built directly against a slot source — tests,
    // bespoke wiring — still reserve at attach time.
    if (!slots_reserved_) {
      EXS_CHECK_MSG(shared_slots_->ReserveSlots(credits_),
                    "shared control-slot pool cannot cover the credit grant; "
                    "reserve at the admission point to refuse instead");
      slots_reserved_ = true;
    }
    return;
  }
  for (std::uint32_t slot = 0; slot < credits_; ++slot) PostSlotRecv(slot);
}

void ControlChannel::PostSlotRecv(std::uint32_t slot) {
  verbs::RecvWorkRequest wr;
  wr.wr_id = slot;
  wr.sge.addr = reinterpret_cast<std::uint64_t>(
      slab_.data() + static_cast<std::size_t>(slot) * wire::kControlSlotBytes);
  wr.sge.length = wire::kControlSlotBytes;
  wr.sge.lkey = slab_mr_->lkey();
  qp_->PostRecv(wr);
}

void ControlChannel::SetInstruments(metrics::TimeWeightedSeries* credits,
                                    metrics::Counter* credit_messages) {
  credit_series_ = credits;
  credit_message_counter_ = credit_messages;
  SampleCredits();
}

void ControlChannel::SampleCredits() {
  if (credit_series_ != nullptr) {
    credit_series_->Record(device_->scheduler().Now(),
                           static_cast<double>(remote_credits_));
  }
}

void ControlChannel::SetQpInstruments(const verbs::QueuePairInstruments& inst,
                                      metrics::TimeWeightedSeries* inflight) {
  qp_inst_ = inst;
  inflight_wr_series_ = inflight;
  if (qp_ != nullptr) qp_->SetInstruments(qp_inst_);
  SampleInflightWrs();
}

void ControlChannel::SampleInflightWrs() {
  if (inflight_wr_series_ != nullptr) {
    inflight_wr_series_->Record(device_->scheduler().Now(),
                                static_cast<double>(outstanding_wrs_));
  }
}

void ControlChannel::ConsumeCredit() {
  EXS_CHECK_MSG(remote_credits_ > 0, "send attempted with no credits");
  --remote_credits_;
  SampleCredits();
}

std::uint32_t ControlChannel::TakeCreditReturn() {
  std::uint32_t owed = owed_credits_;
  owed_credits_ = 0;
  return owed;
}

void ControlChannel::SendControl(wire::ControlMessage msg) {
  // RC delivers in post order: a control message must not ring its own
  // doorbell ahead of data WRs still waiting in the batch.
  FlushSendBatch();
  ConsumeCredit();
  // Fits: the constructor caps the pool at 65535 and at most the whole
  // pool can be owed at once.
  msg.credit_return = static_cast<std::uint16_t>(TakeCreditReturn());

  // Control messages travel inline: the payload is captured at post time,
  // so the stack-local serialisation buffer below is safe.
  std::uint8_t buf[wire::kControlSlotBytes] = {};
  wire::Serialize(msg, buf);

  verbs::SendWorkRequest wr;
  wr.wr_id = kControlWrId;
  wr.opcode = verbs::Opcode::kSend;
  wr.inline_data = true;
  wr.sge.addr = reinterpret_cast<std::uint64_t>(buf);
  wr.sge.length = wire::kControlSlotBytes;
  ++outstanding_wrs_;
  SampleInflightWrs();
  qp_->PostSend(wr);
}

void ControlChannel::PostDataWwi(std::uint64_t wr_id, const void* src,
                                 std::uint32_t lkey, std::uint64_t len,
                                 std::uint64_t remote_addr, std::uint32_t rkey,
                                 bool indirect, bool has_stripe_seq,
                                 std::uint64_t stripe_seq,
                                 std::uint64_t trace_ctx) {
  PostDataWwiTagged(wr_id, src, lkey, len, remote_addr, rkey, indirect,
                    has_stripe_seq, stripe_seq, trace_ctx, MuxTag{});
}

void ControlChannel::PostDataWwiTagged(std::uint64_t wr_id, const void* src,
                                       std::uint32_t lkey, std::uint64_t len,
                                       std::uint64_t remote_addr,
                                       std::uint32_t rkey, bool indirect,
                                       bool has_stripe_seq,
                                       std::uint64_t stripe_seq,
                                       std::uint64_t trace_ctx,
                                       const MuxTag& tag) {
  EXS_CHECK(wr_id != kControlWrId);
  ConsumeCredit();

  verbs::SendWorkRequest wr;
  wr.wr_id = wr_id;
  wr.opcode = verbs::Opcode::kRdmaWriteWithImm;
  wr.sge.addr = reinterpret_cast<std::uint64_t>(src);
  wr.sge.length = static_cast<std::uint32_t>(len);
  wr.sge.lkey = lkey;
  wr.remote_addr = remote_addr;
  wr.rkey = rkey;
  wr.has_imm = true;
  wr.imm = wire::EncodeDataImm(indirect, len);
  wr.has_stripe_seq = has_stripe_seq;
  wr.stripe_seq = stripe_seq;
  wr.has_mux = tag.present;
  wr.mux_stream = tag.stream;
  wr.mux_seq = tag.seq;
  wr.mux_epoch = tag.epoch;
  wr.trace_ctx = trace_ctx;
  ++outstanding_wrs_;
  SampleInflightWrs();
  EnqueueOrPost(wr);
}

void ControlChannel::PostDataWwiV(std::uint64_t wr_id, const SendSlice* slices,
                                  std::uint32_t n, std::uint64_t len,
                                  std::uint64_t remote_addr,
                                  std::uint32_t rkey, bool indirect,
                                  bool has_stripe_seq, std::uint64_t stripe_seq,
                                  std::uint64_t trace_ctx) {
  PostDataWwiVTagged(wr_id, slices, n, len, remote_addr, rkey, indirect,
                     has_stripe_seq, stripe_seq, trace_ctx, MuxTag{});
}

void ControlChannel::PostDataWwiVTagged(
    std::uint64_t wr_id, const SendSlice* slices, std::uint32_t n,
    std::uint64_t len, std::uint64_t remote_addr, std::uint32_t rkey,
    bool indirect, bool has_stripe_seq, std::uint64_t stripe_seq,
    std::uint64_t trace_ctx, const MuxTag& tag) {
  EXS_CHECK(wr_id != kControlWrId);
  EXS_CHECK_MSG(n >= 1 && n <= verbs::kMaxSge,
                "vectored post needs 1.." << verbs::kMaxSge << " slices, got "
                                          << n);
  ConsumeCredit();

  verbs::SendWorkRequest wr;
  wr.wr_id = wr_id;
  wr.opcode = verbs::Opcode::kRdmaWriteWithImm;
  wr.sge.addr = reinterpret_cast<std::uint64_t>(slices[0].addr);
  wr.sge.length = slices[0].length;
  wr.sge.lkey = slices[0].lkey;
  for (std::uint32_t i = 1; i < n; ++i) {
    wr.AddSge(verbs::Sge{reinterpret_cast<std::uint64_t>(slices[i].addr),
                         slices[i].length, slices[i].lkey});
  }
  EXS_CHECK_MSG(wr.total_length() == len,
                "gather list carries " << wr.total_length()
                                       << " bytes but the chunk frames "
                                       << len);
  wr.remote_addr = remote_addr;
  wr.rkey = rkey;
  wr.has_imm = true;
  wr.imm = wire::EncodeDataImm(indirect, len);
  wr.has_stripe_seq = has_stripe_seq;
  wr.stripe_seq = stripe_seq;
  wr.has_mux = tag.present;
  wr.mux_stream = tag.stream;
  wr.mux_seq = tag.seq;
  wr.mux_epoch = tag.epoch;
  wr.trace_ctx = trace_ctx;
  ++outstanding_wrs_;
  SampleInflightWrs();
  EnqueueOrPost(wr);
}

void ControlChannel::EnqueueOrPost(const verbs::SendWorkRequest& wr) {
  if (batch_max_wrs_ == 0) {
    qp_->PostSend(wr);
    return;
  }
  pending_wrs_.push_back(wr);
  if (pending_wrs_.size() >= batch_max_wrs_) FlushSendBatch();
}

void ControlChannel::FlushSendBatch() {
  if (pending_wrs_.empty()) return;
  // Posting into a killed QP is deliberate: each WR gets an immediate
  // flush completion, which keeps outstanding_wrs_ accounting sound.
  qp_->PostSendBatch(pending_wrs_);
  pending_wrs_.clear();
}

void ControlChannel::PostRead(std::uint64_t wr_id, void* dst,
                              std::uint32_t lkey, std::uint64_t len,
                              std::uint64_t remote_addr,
                              std::uint32_t rkey) {
  EXS_CHECK(wr_id != kControlWrId);
  // READs bypass the batch but must not overtake batched WWIs (RC FIFO).
  FlushSendBatch();
  verbs::SendWorkRequest wr;
  wr.wr_id = wr_id;
  wr.opcode = verbs::Opcode::kRdmaRead;
  wr.sge.addr = reinterpret_cast<std::uint64_t>(dst);
  wr.sge.length = static_cast<std::uint32_t>(len);
  wr.sge.lkey = lkey;
  wr.remote_addr = remote_addr;
  wr.rkey = rkey;
  ++outstanding_wrs_;
  SampleInflightWrs();
  qp_->PostSend(wr);
}

void ControlChannel::OnSendCompletion(const verbs::WorkCompletion& wc) {
  if (wc.qp != qp_.get()) return;  // late completion from a parked dead QP
  if (wc.status != verbs::WcStatus::kSuccess) {
    // Fatal transport statuses (flush, retry-exceeded) mark the channel
    // dead and dispatch nothing: the resume handshake re-drives the stream
    // from the delivered frontier, not from partial post-mortem reports.
    // Anything else is still a protocol bug the credit scheme must prevent.
    EXS_CHECK_MSG(wc.status == verbs::WcStatus::kWrFlushError ||
                      wc.status == verbs::WcStatus::kRetryExceededError,
                  "send failed: " << verbs::ToString(wc.status)
                                  << " — the credit scheme should prevent this");
    MarkDead(wc.status);
    if (outstanding_wrs_ > 0) {
      --outstanding_wrs_;
      SampleInflightWrs();
    }
    return;
  }
  if (dead_) {
    // Success completion racing the death (acknowledged just before the
    // kill): account it, dispatch nothing.
    if (outstanding_wrs_ > 0) {
      --outstanding_wrs_;
      SampleInflightWrs();
    }
    return;
  }
  EXS_CHECK(outstanding_wrs_ > 0);
  --outstanding_wrs_;
  SampleInflightWrs();
  if (wc.wr_id == kControlWrId) return;
  if (wc.opcode == verbs::WcOpcode::kRdmaRead) {
    if (callbacks_.on_read_done) {
      callbacks_.on_read_done(wc.wr_id, wc.byte_len);
    }
    return;
  }
  if (callbacks_.on_data_sent) callbacks_.on_data_sent(wc.wr_id);
}

void ControlChannel::OnRecvCompletion(const verbs::WorkCompletion& wc) {
  if (wc.qp != qp_.get()) return;  // late completion from a parked dead QP
  // The deferred-queue check keeps arrival order: once anything is held,
  // everything behind it queues too, even after the hold window expires.
  if (device_->scheduler().Now() < hold_until_ || !deferred_.empty()) {
    deferred_.push_back(wc);
    return;
  }
  ProcessRecvCompletion(wc);
}

void ControlChannel::HoldIncoming(SimDuration hold) {
  EXS_CHECK(hold >= 0);
  if (dead_) return;  // a fault hook on a dead transport is a no-op
  SimTime until = device_->scheduler().Now() + hold;
  if (until <= hold_until_) return;  // already covered by a longer hold
  hold_until_ = until;
  device_->scheduler().ScheduleAt(until, [this]() { DrainDeferred(); });
}

void ControlChannel::DrainDeferred() {
  if (device_->scheduler().Now() < hold_until_) return;  // superseded
  while (!deferred_.empty()) {
    verbs::WorkCompletion wc = deferred_.front();
    deferred_.pop_front();
    ProcessRecvCompletion(wc);
  }
}

void ControlChannel::ProcessRecvCompletion(const verbs::WorkCompletion& wc) {
  if (wc.status != verbs::WcStatus::kSuccess || dead_) {
    // A flushed receive, or a delivery racing the QP's death.  Recycle a
    // successfully consumed shared slot so the pool never leaks (flushed
    // private receives belong to the dead QP and are simply gone — the
    // reconnect re-posts a full pool); dispatch nothing.
    if (wc.status != verbs::WcStatus::kSuccess) {
      EXS_CHECK_MSG(wc.status == verbs::WcStatus::kWrFlushError,
                    "receive failed: " << verbs::ToString(wc.status));
      MarkDead(wc.status);
    } else if (shared_slots_ != nullptr) {
      shared_slots_->RepostSlot(wc.wr_id);
    }
    return;
  }
  // Recycle the consumed slot right away so the pool never shrinks.  In
  // shared-slot mode the recycled receive goes back to the SRQ tail; its
  // slab bytes stay intact until some future arrival consumes that slot
  // again, which is strictly after the Parse below.
  auto slot = static_cast<std::uint32_t>(wc.wr_id);
  if (shared_slots_ != nullptr) {
    shared_slots_->RepostSlot(wc.wr_id);
  } else {
    PostSlotRecv(slot);
  }
  ++owed_credits_;

  if (wc.opcode == verbs::WcOpcode::kRecvRdmaWithImm) {
    EXS_CHECK(wc.has_imm);
    // The raw hook (mux demultiplexing) replaces the decoded callback:
    // credit accounting above already happened either way, so the mux
    // layer may drop a stale arrival without disturbing conservation.
    if (callbacks_.on_data_raw) {
      callbacks_.on_data_raw(wc);
    } else if (callbacks_.on_data) {
      callbacks_.on_data(wire::ImmIsIndirect(wc.imm), wire::ImmLength(wc.imm),
                         wc.has_stripe_seq, wc.stripe_seq, wc.trace_ctx);
    }
    MaybeSendStandaloneCredit();
    return;
  }

  EXS_CHECK(wc.opcode == verbs::WcOpcode::kRecv);
  const std::uint8_t* slot_mem =
      shared_slots_ != nullptr
          ? shared_slots_->SlotMem(wc.wr_id)
          : slab_.data() +
                static_cast<std::size_t>(slot) * wire::kControlSlotBytes;
  wire::ControlMessage msg = wire::Parse(slot_mem, wc.byte_len);

  bool credits_grew = msg.credit_return > 0;
  remote_credits_ += msg.credit_return;
  if (credits_grew) SampleCredits();

  if (static_cast<wire::ControlType>(msg.type) != wire::ControlType::kCredit &&
      callbacks_.on_control) {
    callbacks_.on_control(msg);
  }
  if (credits_grew && callbacks_.on_credit_available) {
    callbacks_.on_credit_available();
  }
  MaybeSendStandaloneCredit();
}

void ControlChannel::MaybeSendStandaloneCredit() {
  // Return credits proactively once half the pool is owed and no other
  // message has carried them back.  The reserved credit guarantees this
  // can always go out.
  if (dead_) return;
  if (owed_credits_ >= credits_ / 2 && remote_credits_ >= 1) {
    wire::ControlMessage msg;
    msg.type = static_cast<std::uint8_t>(wire::ControlType::kCredit);
    ++credit_messages_sent_;
    if (credit_message_counter_ != nullptr) {
      credit_message_counter_->Increment();
    }
    SendControl(msg);
  }
}

}  // namespace exs
